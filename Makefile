# Convenience targets for the Apollo reproduction.

GO ?= go

.PHONY: all build lint test race stress bench results quick-results cover clean serve-smoke loop-smoke flight-smoke fleet-smoke compile-smoke lineage-smoke vet-bench vet-diff

all: build lint vet-diff test race flight-smoke fleet-smoke compile-smoke lineage-smoke

build:
	$(GO) build ./...
	$(GO) vet ./...

# apollo-vet enforces the project invariants — hot-path no-alloc /
# lock-free, 386 atomic alignment, schema-hash drift, lock-rank order,
# goroutine-leak freedom, deterministic serialization, copy-on-write
# publication discipline, failure-path hygiene (error sinks, cancellable
# blocking, spawn/stop pairing, HTTP deadlines), and live waivers — over
# the whole module; the 386 cross-build keeps the alignment analyzer
# honest against the real compiler.
lint:
	$(GO) run ./cmd/apollo-vet ./...
	GOARCH=386 $(GO) build ./...

# The CI ratchet: fail on any diagnostic not in the committed baseline,
# so the module's finding count can only go down.
vet-diff:
	GO=$(GO) bash scripts/vet_diff.sh

# Self-run benchmark: the full analyzer suite over this module, with the
# machine-readable summary (per-analyzer counts, live waivers, wall
# time) written next to the other results.
vet-bench:
	$(GO) run ./cmd/apollo-vet -summary-out results/vet_summary.json ./...
	@cat results/vet_summary.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Scheduler stress: the closed-loop e2e scenario repeated under the
# race detector across a GOMAXPROCS sweep, multiplying the goroutine
# interleavings the single-shot race run explores.
STRESS_COUNT ?= 3
stress:
	$(GO) test -race -count=$(STRESS_COUNT) -run 'ClosedLoop' .

# One benchmark per paper table/figure plus overhead/ablation benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
results:
	$(GO) run ./cmd/apollo-bench -exp all | tee results/full_results.txt

quick-results:
	$(GO) run ./cmd/apollo-bench -exp all -quick

cover:
	$(GO) test -cover ./...

# End-to-end smoke test of the model service against a real daemon:
# record -> train -> push -> predict -> metrics -> shutdown.
serve-smoke:
	GO="$(GO)" ./scripts/serve_smoke.sh

# End-to-end smoke test of the closed training loop against real
# daemons: a stale champion mispredicts a live run, telemetry flows to
# the service spool, apollo-traind retrains and publishes a challenger,
# and the running tuner hot-swaps to it before exiting.
loop-smoke:
	GO="$(GO)" ./scripts/loop_smoke.sh

# End-to-end smoke test of the flight recorder: capture a timed Chrome
# trace and a decision capture from the live debug endpoints of running
# daemons, then validate both with apollo-inspect.
flight-smoke:
	GO="$(GO)" ./scripts/flight_smoke.sh

# End-to-end smoke test of the fleet layer: three replicas with peer
# delta sync, a champion converging to one version/ETag everywhere, a
# synthetic client fleet surviving a kill of the ring-owner replica with
# zero failed predicts, and a collective retrain over the merged spools.
fleet-smoke:
	GO="$(GO)" ./scripts/fleet_smoke.sh

# End-to-end smoke test of the compiled decision path: train -> publish
# (registry compiles) -> apollo-inspect models -verify differentially
# checks compiled vs interpreted predictions locally and through the
# live /predict endpoint.
compile-smoke:
	GO="$(GO)" ./scripts/compile_smoke.sh

# End-to-end smoke test of closed-loop lineage tracing: three replicas,
# apollo-traind, and apollo-tune journal loop events into one directory;
# one forced drift cycle must stitch into a complete causal timeline
# with a nonzero loop reaction time, and the publish replica must export
# the apollo_model_lineage info-series.
lineage-smoke:
	GO="$(GO)" ./scripts/lineage_smoke.sh

clean:
	$(GO) clean ./...
