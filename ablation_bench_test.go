package apollo_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
// decision cost as a function of tree depth and feature count (the
// paper's model-reduction rationale, Section IV-B), worker-team fork/join
// cost versus team size (the overhead the machine model calibrates), and
// the harness's ablation experiments themselves.

import (
	"fmt"
	"testing"

	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/raja"
	"apollo/internal/team"
	"apollo/internal/tuner"
)

// deepModelData builds a noisy multi-threshold dataset that induces deep
// trees, over the full Table I schema.
func deepModelData(b *testing.B, n int) (*core.LabeledSet, *features.Schema) {
	b.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	rng := dataset.NewRNG(17)
	ni := schema.Index(features.NumIndices)
	fs := schema.Index(features.FuncSize)
	ts := schema.Index(features.Timestep)
	for i := 0; i < n; i++ {
		iters := float64(rng.Intn(1 << 18))
		size := float64(rng.Intn(100) + 5)
		step := float64(rng.Intn(50))
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni], row[fs], row[ts] = iters, size, step
			row[schema.Len()] = float64(pol)
			noise := 0.9 + 0.2*rng.Float64()
			if pol == raja.SeqExec {
				row[schema.Len()+2] = iters * size * 0.2 * noise
			} else {
				row[schema.Len()+2] = (7000 + iters*size*0.2/16) * noise
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		b.Fatal(err)
	}
	return set, schema
}

// BenchmarkAblationPredictByDepth measures decision cost at the depth
// caps of Fig. 10 — the direct payoff of depth pruning.
func BenchmarkAblationPredictByDepth(b *testing.B) {
	set, schema := deepModelData(b, 800)
	full, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		b.Fatal(err)
	}
	// A spread of query points so every run exercises varied tree paths.
	rng := dataset.NewRNG(23)
	queries := make([][]float64, 64)
	for i := range queries {
		x := make([]float64, schema.Len())
		x[schema.Index(features.NumIndices)] = float64(rng.Intn(1 << 18))
		x[schema.Index(features.FuncSize)] = float64(rng.Intn(100) + 5)
		x[schema.Index(features.Timestep)] = float64(rng.Intn(50))
		queries[i] = x
	}
	for _, depth := range []int{1, 3, 5, 15, 25} {
		pruned := full.Tree.PruneToDepth(depth)
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += pruned.Predict(queries[i&63])
			}
			_ = sink
		})
	}
}

// BenchmarkAblationExtractByFeatures measures the per-launch feature
// extraction cost at different schema sizes — the measurement cost the
// paper's feature reduction (Fig. 9) trades accuracy against.
func BenchmarkAblationExtractByFeatures(b *testing.B) {
	full := features.TableI()
	ann := caliper.New()
	ann.Set(features.Timestep, 5)
	k := raja.NewKernel("ablation::extract", nil)
	iset := raja.NewRange(0, 4096)
	for _, cnt := range []int{1, 3, 5, 10, full.Len()} {
		schema := features.NewSchema(full.Names()[:cnt]...)
		b.Run(fmt.Sprintf("features%d", cnt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				schema.Extract(k, iset, ann)
			}
		})
	}
}

// BenchmarkAblationTeamForkJoin measures the real fork/join cost versus
// team size: the overhead that makes sequential execution win small
// launches.
func BenchmarkAblationTeamForkJoin(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			tm := team.New(workers)
			defer tm.Close()
			body := func(int) {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm.ParallelFor(0, workers, 1, body)
			}
		})
	}
}

// BenchmarkAblationForestVsTree compares decision cost of the single
// tree against the bagged-forest extension.
func BenchmarkAblationForestVsTree(b *testing.B) {
	set, schema := deepModelData(b, 400)
	tree, err := dtree.Train(set.X, set.Y, 2, dtree.Config{})
	if err != nil {
		b.Fatal(err)
	}
	forest, err := dtree.TrainForest(set.X, set.Y, 2, dtree.ForestConfig{Size: 15, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, schema.Len())
	x[schema.Index(features.NumIndices)] = 30000
	b.Run("tree", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += tree.Predict(x)
		}
		_ = sink
	})
	b.Run("forest15", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += forest.Predict(x)
		}
		_ = sink
	})
}

// BenchmarkAblationRecorderOverhead measures the per-launch cost of
// running with the recorder installed — the training-run perturbation
// the paper keeps low by limiting collected features.
func BenchmarkAblationRecorderOverhead(b *testing.B) {
	schema := features.TableI()
	ann := caliper.New()
	rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: raja.SeqExec})
	ctx := &raja.Context{Default: raja.Params{Policy: raja.SeqExec}, Hooks: rec}
	k := raja.NewKernel("ablation::recorded", nil)
	iset := raja.NewRange(0, 64)
	body := func(int) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raja.ForAll(ctx, k, iset, body)
	}
}

// Ablation experiments from the harness, as benchmarks.

func BenchmarkAblMachineSensitivity(b *testing.B) { benchExperiment(b, "abl-machine") }
func BenchmarkAblClassifierChoice(b *testing.B)   { benchExperiment(b, "abl-classifier") }
func BenchmarkAblNoiseRobustness(b *testing.B)    { benchExperiment(b, "abl-noise") }
