package apollo_test

// End-to-end test of the closed training loop: a LULESH run starts on a
// stale model (parallel everywhere), the live tuner records sampled
// telemetry with exploration flips and uploads it to the service's
// spool, the continuous trainer detects the mispredicts, retrains a
// challenger on the spooled window, the challenger wins the holdout duel
// and is published — and the running tuner hot-swaps to it mid-run, so
// small launches flip from omp to seq with no restart. This is the
// paper's workflow running as a loop instead of a one-shot pipeline.

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/client"
	"apollo/internal/drift"
	"apollo/internal/features"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/registry"
	"apollo/internal/server"
	"apollo/internal/telemetry"
	"apollo/internal/trainer"
	"apollo/internal/tuner"
)

func TestClosedLoopRetrainsAndHotSwapsMidRun(t *testing.T) {
	runClosedLoopScenario(t)
}

// runClosedLoopScenario drives one full closed-loop pass. It is shared
// with the scheduler stress test, which re-runs it under -race with a
// GOMAXPROCS sweep to shake out interleavings between the tuner's
// launch path, the source poller, the uploader, and the trainer.
func runClosedLoopScenario(t *testing.T) {
	schema := features.TableI()
	machine := platform.SandyBridgeNode()
	desc := descFor(t, "LULESH")
	const modelName = "lulesh/execution_policy"

	// Service with telemetry ingestion enabled.
	regDir, spoolDir := t.TempDir(), t.TempDir()
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.WithTelemetryDir(spoolDir))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Deploy a stale champion: omp wins everywhere (wrong for the many
	// small kernels a size-10 LULESH run launches).
	c := client.New(ts.URL, client.Options{})
	if v, err := c.Push(modelName, trainOmpEverywhereModel(t, schema)); err != nil || v != 1 {
		t.Fatalf("push stale champion: version=%d err=%v", v, err)
	}

	// The application process: tuner + model source + telemetry capture
	// + uploader, exactly as apollo-tune wires them.
	ann := caliper.New()
	src := client.NewSource(c, schema, modelName, "")
	if err := src.Refresh(); err != nil {
		t.Fatal(err)
	}
	stopPoll := src.StartPolling(2 * time.Millisecond)
	defer stopPoll()

	rec := telemetry.NewRecorder(schema, ann, telemetry.Options{SampleEvery: 1, Capacity: 1 << 16})
	up := client.NewUploader(c, modelName, rec, client.UploaderOptions{MaxPending: 1 << 17})
	upCtx, upCancel := context.WithCancel(context.Background())
	upDone := up.Start(upCtx, 2*time.Millisecond)
	defer func() { upCancel(); <-upDone }()

	tn := tuner.NewTuner(schema, ann, desc.DefaultParams).
		UseSource(src).
		UseTelemetry(rec).
		ExploreEvery(4)

	probe := func() raja.Policy {
		p, ok := tn.Begin(raja.NewKernel("probe", nil), raja.NewRange(0, 8))
		if !ok {
			t.Fatal("tuner declined the probe launch")
		}
		return p.Policy
	}
	// Probe until the exploration cadence is off the flip: 2 tries max.
	stableProbe := func() raja.Policy {
		a, b := probe(), probe()
		if a == b {
			return a
		}
		return probe()
	}
	if got := stableProbe(); got != raja.OmpParallelForExec {
		t.Fatalf("stale-champion probe policy = %v, want omp", got)
	}

	clk := platform.NewSimClock(machine, 0.05, 7)
	ctx := raja.NewSimContext(clk, desc.DefaultParams)
	ctx.Hooks = tn
	sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: "sedov", Size: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		sim.Step()
	}
	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Errorf("telemetry ring dropped %d samples", rec.Dropped())
	}
	if up.Rows() == 0 {
		t.Fatal("no telemetry reached the service")
	}
	if tn.Explored() == 0 {
		t.Fatal("exploration never fired; telemetry carries no counterfactuals")
	}

	// Freeze the spool: everything the trainer should see is shipped, so
	// stop the uploader now. Left running, it races the post-swap
	// launches' rows into the window between the two trainer steps, and
	// their advanced sim-time feature can legitimately re-trigger the
	// shift detector — a schedule-dependent flap, not the regression the
	// final assertion is after.
	upCancel()
	<-upDone

	// The continuous trainer tails the spool the service wrote.
	tr, err := trainer.New(
		telemetry.NewCursor(filepath.Join(spoolDir, "lulesh", "execution_policy")),
		trainer.NewClientPublisher(client.New(ts.URL, client.Options{})),
		trainer.Config{
			Name:   modelName,
			Schema: schema,
			Drift:  drift.Config{MinRows: 4},
			Logf:   t.Logf,
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.NewRows == 0 {
		t.Fatal("trainer saw no spooled rows")
	}
	if res.Trigger == nil || res.Trigger.Reason != "mispredict" {
		t.Fatalf("drift trigger = %v, want mispredict (stale champion)", res.Trigger)
	}
	if !res.Retrained || !res.Published || res.Version != 2 {
		t.Fatalf("retrain step = %+v, want published v2", res)
	}
	if res.ChallengerNS > res.ChampionNS {
		t.Errorf("published challenger %.0fns regressed champion %.0fns", res.ChallengerNS, res.ChampionNS)
	}

	// The running tuner's poller must pick the challenger up and flip
	// live decisions — the loop is closed.
	deadline := time.Now().Add(10 * time.Second)
	for src.Swaps() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if src.Swaps() < 2 {
		t.Fatal("running tuner never swapped to the retrained model")
	}
	if got := stableProbe(); got != raja.SeqExec {
		t.Fatalf("post-retrain probe policy = %v, want seq", got)
	}

	// Same process keeps launching on the new model.
	decisions := tn.Decisions()
	for i := 0; i < 2; i++ {
		sim.Step()
	}
	if tn.Decisions() <= decisions {
		t.Error("tuner stopped deciding after the swap")
	}

	// A second trainer step on the same telemetry must not flap: the new
	// champion agrees with the window.
	res, err = tr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Published {
		t.Errorf("trainer flapped: republished on unchanged telemetry: %+v", res)
	}
}
