#!/usr/bin/env bash
# Smoke-test the Apollo model service end to end against a real daemon:
# build the tools, record a small training run, start apollo-serve on a
# random port, train-and-push a model, evaluate it over HTTP, scrape
# /metrics, and shut down cleanly. Exits non-zero on any failure.
set -euo pipefail

GO="${GO:-go}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
SERVE_PID=""

cleanup() {
    if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fetch() { # fetch URL [curl-extra-args...]
    url="$1"; shift
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$@" "$url"
    else
        wget -qO- "$url"
    fi
}

echo "== build"
(cd "$ROOT" && $GO build -o "$WORK/bin/" ./cmd/apollo-serve ./cmd/apollo-record ./cmd/apollo-train)

echo "== record training data (simulated LULESH, one run per policy)"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 8 -steps 3 \
    -policy seq_exec -out "$WORK/seq.csv"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 8 -steps 3 \
    -policy omp_parallel_for_exec -out "$WORK/omp.csv"

echo "== start apollo-serve on a random port"
"$WORK/bin/apollo-serve" -addr 127.0.0.1:0 -dir "$WORK/registry" \
    -poll 100ms >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's/^apollo-serve: listening on \(http:\/\/[^ ]*\).*/\1/p' "$WORK/serve.log" | head -n1)"
    [[ -n "$BASE" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log"; echo "FAIL: daemon died"; exit 1; }
    sleep 0.1
done
[[ -n "$BASE" ]] || { cat "$WORK/serve.log"; echo "FAIL: never saw listen line"; exit 1; }
echo "   daemon at $BASE"

echo "== healthz"
fetch "$BASE/healthz" | grep -q ok

echo "== train and push"
"$WORK/bin/apollo-train" -data "$WORK/seq.csv,$WORK/omp.csv" -cv 0 \
    -out "$WORK/model.json" -push "$BASE" -push-name smoke/policy | tail -n1

echo "== model list and conditional fetch"
fetch "$BASE/models" | grep -q '"smoke/policy"'
test -f "$WORK/registry/smoke/policy.v1.json" || { echo "FAIL: model not persisted"; exit 1; }

echo "== predict over HTTP"
PREDICT='{"model":"smoke/policy","features":{"num_indices":64}}'
if command -v curl >/dev/null 2>&1; then
    OUT="$(curl -fsS -X POST -d "$PREDICT" "$BASE/predict")"
else
    OUT="$(wget -qO- --post-data "$PREDICT" "$BASE/predict")"
fi
echo "   $OUT"
echo "$OUT" | grep -q '"class"'

echo "== metrics"
METRICS="$(fetch "$BASE/metrics")"
echo "$METRICS" | grep -q 'apollo_http_requests_total'
echo "$METRICS" | grep -q 'apollo_predictions_total'
echo "$METRICS" | grep -q 'apollo_model_version{model="smoke/policy"} 1'

echo "== shutdown"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
grep -q "shutting down" "$WORK/serve.log"

echo "PASS: serve smoke"
