#!/usr/bin/env bash
# Smoke-test closed-loop lineage tracing end to end against real
# daemons: three apollo-serve replicas (peer sync + loop journals), an
# apollo-traind, and an apollo-tune run whose stale champion forces one
# drift-triggered retrain. Every process journals loop events into one
# directory; apollo-inspect loop must stitch them into a complete
# drift -> retrain -> publish -> fleet-converged timeline with a nonzero
# loop reaction time. Exits non-zero on any failure.
#
# Set LINEAGE_SMOKE_OUT to a directory to keep the journals and the
# stitched JSON report (CI uploads them as artifacts).
set -euo pipefail

GO="${GO:-go}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
PIDS=()
TRAIND_PID=""

cleanup() {
    for pid in "${TRAIND_PID:-}" "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fetch() { # fetch URL
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

pick_port() {
    local p
    while :; do
        p=$((20000 + RANDOM % 20000))
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            echo "$p"
            return
        fi
        exec 3>&- 2>/dev/null || true
    done
}

echo "== build"
(cd "$ROOT" && $GO build -o "$WORK/bin/" \
    ./cmd/apollo-serve ./cmd/apollo-record ./cmd/apollo-train \
    ./cmd/apollo-traind ./cmd/apollo-tune ./cmd/apollo-inspect)

JOURNAL="$WORK/loopjournal"
mkdir -p "$JOURNAL"

echo "== start 3 replicas with peer sync and loop journals"
P1="$(pick_port)"; P2="$(pick_port)"; P3="$(pick_port)"
PEERS="r1=http://127.0.0.1:$P1,r2=http://127.0.0.1:$P2,r3=http://127.0.0.1:$P3"
for i in 1 2 3; do
    port_var="P$i"
    "$WORK/bin/apollo-serve" -addr "127.0.0.1:${!port_var}" -dir "$WORK/registry$i" \
        -telemetry "$WORK/spool$i" -poll 200ms -id "r$i" -peers "$PEERS" -sync 200ms \
        -loop-journal "$JOURNAL" >"$WORK/serve$i.log" 2>&1 &
    PIDS+=($!)
done
for i in 1 2 3; do
    port_var="P$i"
    for _ in $(seq 1 100); do
        fetch "http://127.0.0.1:${!port_var}/healthz" >/dev/null 2>&1 && break
        sleep 0.1
    done
    fetch "http://127.0.0.1:${!port_var}/healthz" >/dev/null \
        || { cat "$WORK/serve$i.log"; echo "FAIL: replica r$i never came up"; exit 1; }
done
echo "   replicas at ports $P1 $P2 $P3"

echo "== push a stale champion to r1 (recorded at size 40; it will mispredict size 8)"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 40 -steps 3 \
    -policy seq_exec -out "$WORK/seq.csv"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 40 -steps 3 \
    -policy omp_parallel_for_exec -out "$WORK/omp.csv"
"$WORK/bin/apollo-train" -data "$WORK/seq.csv,$WORK/omp.csv" -cv 0 \
    -out "$WORK/stale.json" -push "http://127.0.0.1:$P1" -push-name lineage/policy | tail -n1

echo "== start apollo-traind on r1's spool with loop tracing"
"$WORK/bin/apollo-traind" -server "http://127.0.0.1:$P1" -spool "$WORK/spool1" \
    -model lineage/policy -interval 300ms -loop-journal "$JOURNAL" \
    >"$WORK/traind.log" 2>&1 &
TRAIND_PID=$!

echo "== run apollo-tune at size 8 until the retrained model hot-swaps in"
"$WORK/bin/apollo-tune" -server "http://127.0.0.1:$P1" -model lineage/policy \
    -app LULESH -problem sedov -size 8 -steps 20 -wait-swaps 1 \
    -poll 100ms -flush 100ms -loop-journal "$JOURNAL" | tee "$WORK/tune.log"

echo "== wait for the retrained model to converge on all replicas (sync-pull leg)"
CONVERGED=""
for _ in $(seq 1 100); do
    ALL=1
    for i in 1 2 3; do
        port_var="P$i"
        V="$(fetch "http://127.0.0.1:${!port_var}/metrics" 2>/dev/null \
            | sed -n 's/^apollo_model_version{model="lineage\/policy"} //p')"
        [[ "${V:-0}" -ge 2 ]] || ALL=""
    done
    [[ -n "$ALL" ]] && { CONVERGED=1; break; }
    sleep 0.1
done
[[ -n "$CONVERGED" ]] || { echo "FAIL: retrained model never converged on the fleet"; exit 1; }

echo "== lineage metrics on the publish replica"
METRICS="$(fetch "http://127.0.0.1:$P1/metrics")"
echo "$METRICS" | grep 'apollo_model_lineage{model="lineage/policy"' \
    || { echo "FAIL: no apollo_model_lineage info-series on r1"; exit 1; }
echo "$METRICS" | grep -q '^apollo_flight_drops_total ' \
    || { echo "FAIL: no apollo_flight_drops_total on r1"; exit 1; }
echo "$METRICS" | grep -q 'apollo_flight_ring_used{shard="0"}' \
    || { echo "FAIL: no apollo_flight_ring_used series on r1"; exit 1; }

echo "== shut daemons down so every journal flushes"
kill "$TRAIND_PID"; wait "$TRAIND_PID" 2>/dev/null || true; TRAIND_PID=""
for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
done
PIDS=()

echo "== stitch the journals"
"$WORK/bin/apollo-inspect" loop -dir "$JOURNAL" | tee "$WORK/timeline.txt"
"$WORK/bin/apollo-inspect" loop -dir "$JOURNAL" -json >"$WORK/loop_report.json"

COMPLETE="$(grep -o '"complete_loops": [0-9]*' "$WORK/loop_report.json" | grep -o '[0-9]*')"
[[ "${COMPLETE:-0}" -ge 1 ]] \
    || { cat "$WORK/timeline.txt"; echo "FAIL: no complete loop in the stitched report"; exit 1; }
P50="$(grep -A4 '"reaction"' "$WORK/loop_report.json" | sed -n 's/.*"p50_ns": \([0-9.e+]*\).*/\1/p' | head -n1)"
[[ -n "$P50" && "$P50" != "0" ]] \
    || { cat "$WORK/timeline.txt"; echo "FAIL: loop reaction p50 is zero or missing"; exit 1; }
grep -q 'drift-fired' "$WORK/timeline.txt" || { echo "FAIL: timeline lacks drift-fired"; exit 1; }
grep -q 'sync-pull' "$WORK/timeline.txt" || { echo "FAIL: timeline lacks sync-pull"; exit 1; }
grep -q 'client-swap' "$WORK/timeline.txt" || { echo "FAIL: timeline lacks client-swap"; exit 1; }
grep 'loop reaction time' "$WORK/timeline.txt"

if [[ -n "${LINEAGE_SMOKE_OUT:-}" ]]; then
    mkdir -p "$LINEAGE_SMOKE_OUT"
    cp "$JOURNAL"/loop-*.jsonl "$WORK/loop_report.json" "$WORK/timeline.txt" "$LINEAGE_SMOKE_OUT/"
    echo "   journals and report copied to $LINEAGE_SMOKE_OUT"
fi

echo "PASS: lineage smoke"
