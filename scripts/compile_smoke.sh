#!/usr/bin/env bash
# Smoke-test the compiled decision path end to end against a real
# daemon: record training data, start apollo-serve, train-and-push a
# model (the registry compiles it at publish), then run apollo-inspect
# models -verify, which differentially checks the compiled walk against
# the interpreted tree on boundary and random vectors AND against the
# live /predict endpoint (single and batch). Exits non-zero on any
# disagreement.
set -euo pipefail

GO="${GO:-go}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
SERVE_PID=""

cleanup() {
    if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fetch() { # fetch URL
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

echo "== build"
(cd "$ROOT" && $GO build -o "$WORK/bin/" \
    ./cmd/apollo-serve ./cmd/apollo-record ./cmd/apollo-train ./cmd/apollo-inspect)

echo "== record training data (simulated LULESH, one run per policy)"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 8 -steps 3 \
    -policy seq_exec -out "$WORK/seq.csv"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 8 -steps 3 \
    -policy omp_parallel_for_exec -out "$WORK/omp.csv"

echo "== start apollo-serve on a random port"
"$WORK/bin/apollo-serve" -addr 127.0.0.1:0 -dir "$WORK/registry" \
    -poll 100ms >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's/^apollo-serve: listening on \(http:\/\/[^ ]*\).*/\1/p' "$WORK/serve.log" | head -n1)"
    [[ -n "$BASE" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log"; echo "FAIL: daemon died"; exit 1; }
    sleep 0.1
done
[[ -n "$BASE" ]] || { cat "$WORK/serve.log"; echo "FAIL: never saw listen line"; exit 1; }
echo "   daemon at $BASE"

echo "== train and push (publish-time compile happens in the registry)"
"$WORK/bin/apollo-train" -data "$WORK/seq.csv,$WORK/omp.csv" -cv 0 \
    -out "$WORK/model.json" -push "$BASE" -push-name smoke/policy | tail -n1

echo "== model listing exposes compilation stats"
fetch "$BASE/models" | grep -q '"kind"'
fetch "$BASE/models" | grep -q '"flat_bytes"'

echo "== compiled report + differential verification (local and live)"
OUT="$("$WORK/bin/apollo-inspect" models -url "$BASE" -verify)"
echo "$OUT"
echo "$OUT" | grep -q 'smoke/policy'
echo "$OUT" | grep -q 'compiled == interpreted'

echo "== registry-directory report agrees"
DIROUT="$("$WORK/bin/apollo-inspect" models -dir "$WORK/registry" -verify)"
echo "$DIROUT" | grep -q 'compiled == interpreted'

echo "== shutdown"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "PASS: compile smoke"
