#!/usr/bin/env bash
# vet_diff.sh — the apollo-vet CI ratchet.
#
# Runs apollo-vet -json over the module and compares the diagnostic
# stream against the committed baseline. Any diagnostic not in the
# baseline fails the run, so the finding count can only go down;
# diagnostics that disappeared are reported as a hint to re-baseline
# (shrinking the baseline is a separate, deliberate commit).
#
# Usage: scripts/vet_diff.sh [baseline.json [target-dir]]
#
# Baseline format: the raw apollo-vet -json stream (one JSON object per
# diagnostic, then one {"summary":true,...} record). A clean module's
# baseline is a single summary line. Re-baseline with:
#
#   go run ./cmd/apollo-vet -json ./... > results/VET_BASELINE.json
#
# Exit codes: 0 no new diagnostics, 1 ratchet regression, 2 vet itself
# failed to load the module.
set -u -o pipefail

baseline="${1:-results/VET_BASELINE.json}"
target="${2:-./...}"
GO="${GO:-go}"

if [ ! -f "$baseline" ]; then
    echo "vet_diff: baseline $baseline not found" >&2
    exit 2
fi

root="$(cd "$(dirname "$0")/.." && pwd)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$GO" run "$root/cmd/apollo-vet" -json "$target" >"$tmp/run.json" 2>"$tmp/run.err"
status=$?
if [ "$status" -ge 2 ]; then
    echo "vet_diff: apollo-vet failed to analyze $target" >&2
    cat "$tmp/run.err" >&2
    exit 2
fi

# Keep only diagnostic records, normalize absolute paths to repo-relative
# so the baseline is machine-independent, and sort for set comparison.
normalize() {
    grep -v '"summary":true' "$1" | sed "s|\"file\":\"$root/|\"file\":\"|" | sort
}
normalize "$baseline" >"$tmp/base.txt"
normalize "$tmp/run.json" >"$tmp/now.txt"

new="$(comm -13 "$tmp/base.txt" "$tmp/now.txt")"
gone="$(comm -23 "$tmp/base.txt" "$tmp/now.txt")"

if [ -n "$new" ]; then
    echo "vet_diff: NEW diagnostics not in $baseline:" >&2
    printf '%s\n' "$new" >&2
    echo "vet_diff: fix them or waive with a justified //apollo: directive" >&2
    exit 1
fi
if [ -n "$gone" ]; then
    count="$(printf '%s\n' "$gone" | wc -l)"
    echo "vet_diff: $count baseline diagnostic(s) no longer reported; consider re-baselining:"
    echo "  $GO run ./cmd/apollo-vet -json ./... > $baseline"
fi
echo "vet_diff: no new diagnostics ($(wc -l <"$tmp/now.txt") total, baseline $(wc -l <"$tmp/base.txt"))"
