#!/usr/bin/env bash
# Smoke-test the flight recorder end to end against real daemons: train
# a model, serve it with a debug listener, run apollo-tune with its own
# debug listener, capture a timed Chrome trace and a flight capture from
# the live endpoints while the tuner is deciding, and require that
# apollo-inspect validates the trace and renders the decision analyses.
# Exits non-zero on any failure.
set -euo pipefail

GO="${GO:-go}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
SERVE_PID=""
TUNE_PID=""

cleanup() {
    for pid in "$TUNE_PID" "$SERVE_PID"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fetch() { # fetch URL [outfile]
    if command -v curl >/dev/null 2>&1; then
        curl -fsS ${2:+-o "$2"} "$1"
    else
        wget -qO "${2:--}" "$1"
    fi
}

post() { # post URL JSON-BODY
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -H 'Content-Type: application/json' -d "$2" "$1"
    else
        wget -qO- --header='Content-Type: application/json' --post-data="$2" "$1"
    fi
}

wait_line() { # wait_line LOGFILE SED-PATTERN PID -> echoes first match
    local out=""
    for _ in $(seq 1 100); do
        out="$(sed -n "$2" "$1" | head -n1)"
        [[ -n "$out" ]] && { echo "$out"; return 0; }
        kill -0 "$3" 2>/dev/null || { cat "$1" >&2; echo "FAIL: daemon died" >&2; return 1; }
        sleep 0.1
    done
    cat "$1" >&2; echo "FAIL: never saw expected line" >&2; return 1
}

echo "== build"
(cd "$ROOT" && $GO build -o "$WORK/bin/" \
    ./cmd/apollo-serve ./cmd/apollo-record ./cmd/apollo-train \
    ./cmd/apollo-tune ./cmd/apollo-inspect)

echo "== train a policy model"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 16 -steps 3 \
    -policy seq_exec -out "$WORK/seq.csv"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 16 -steps 3 \
    -policy omp_parallel_for_exec -out "$WORK/omp.csv"

echo "== start apollo-serve with a debug listener"
"$WORK/bin/apollo-serve" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 \
    -dir "$WORK/registry" -poll 100ms >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
BASE="$(wait_line "$WORK/serve.log" \
    's/^apollo-serve: listening on \(http:\/\/[^ ]*\).*/\1/p' "$SERVE_PID")"
SERVE_DEBUG="$(wait_line "$WORK/serve.log" \
    's/^apollo-serve: debug on \(http:\/\/[^/]*\).*/\1/p' "$SERVE_PID")"
echo "   api at $BASE, debug at $SERVE_DEBUG"

"$WORK/bin/apollo-train" -data "$WORK/seq.csv,$WORK/omp.csv" -cv 0 \
    -out "$WORK/model.json" -push "$BASE" -push-name flight/policy | tail -n1

echo "== server-side flight records from /predict decisions"
post "$BASE/predict" '{"model":"flight/policy","features":{"num_indices":64}}' >/dev/null
post "$BASE/predict" '{"model":"flight/policy","features":{"num_indices":65536}}' >/dev/null
fetch "$SERVE_DEBUG/debug/apollo/flight" "$WORK/serve-flight.json"
"$WORK/bin/apollo-inspect" flight -in "$WORK/serve-flight.json" | tee "$WORK/serve-flight.txt"
grep -q 'flight capture: [1-9]' "$WORK/serve-flight.txt" || {
    echo "FAIL: serve flight capture holds no records"; exit 1; }

echo "== run apollo-tune with a debug listener and capture a live trace"
"$WORK/bin/apollo-tune" -server "$BASE" -model flight/policy \
    -app LULESH -problem sedov -size 8 -steps 500000 \
    -debug-addr 127.0.0.1:0 -poll 100ms -flush 100ms >"$WORK/tune.log" 2>&1 &
TUNE_PID=$!
TUNE_DEBUG="$(wait_line "$WORK/tune.log" \
    's/^apollo-tune: debug on \(http:\/\/[^/]*\).*/\1/p' "$TUNE_PID")"
echo "   tuner debug at $TUNE_DEBUG"

# A timed capture: the endpoint blocks for the window, then returns every
# decision that landed on the recorder as Chrome trace-event JSON.
fetch "$TUNE_DEBUG/debug/apollo/trace?sec=1" "$WORK/trace.json"
fetch "$TUNE_DEBUG/debug/apollo/flight" "$WORK/tune-flight.json"
kill "$TUNE_PID"; wait "$TUNE_PID" 2>/dev/null || true; TUNE_PID=""

echo "== validate the captured trace and flight analyses"
"$WORK/bin/apollo-inspect" trace -in "$WORK/trace.json" | tee "$WORK/trace.txt"
grep -q 'valid chrome trace: [1-9][0-9]* events' "$WORK/trace.txt" || {
    echo "FAIL: trace capture is empty or invalid"; exit 1; }
grep -q 'decision' "$WORK/trace.txt" || {
    echo "FAIL: trace carries no decision-phase spans"; exit 1; }
"$WORK/bin/apollo-inspect" flight -in "$WORK/tune-flight.json" | tee "$WORK/tune-flight.txt"
grep -q 'flight capture: [1-9]' "$WORK/tune-flight.txt" || {
    echo "FAIL: tuner flight capture holds no records"; exit 1; }
grep -q 'distinct paths' "$WORK/tune-flight.txt" || {
    echo "FAIL: no decision-path histogram"; exit 1; }

echo "== shutdown"
kill "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true; SERVE_PID=""

echo "PASS: flight smoke"
