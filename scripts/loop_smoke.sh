#!/usr/bin/env bash
# Smoke-test the closed training loop end to end against real daemons:
# train a stale champion from a large-problem recording, start
# apollo-serve with telemetry ingestion and apollo-traind against its
# spool, then run apollo-tune on a small problem the champion mispredicts
# and require the full cycle — telemetry upload, drift trigger, retrain,
# champion/challenger publish, live hot-swap — before the run ends.
# Exits non-zero on any failure.
set -euo pipefail

GO="${GO:-go}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
SERVE_PID=""
TRAIND_PID=""

cleanup() {
    for pid in "$TRAIND_PID" "$SERVE_PID"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fetch() { # fetch URL
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

echo "== build"
(cd "$ROOT" && $GO build -o "$WORK/bin/" \
    ./cmd/apollo-serve ./cmd/apollo-record ./cmd/apollo-train \
    ./cmd/apollo-traind ./cmd/apollo-tune)

echo "== train a stale champion (recorded at size 40; it will mispredict size 8)"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 40 -steps 3 \
    -policy seq_exec -out "$WORK/seq.csv"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 40 -steps 3 \
    -policy omp_parallel_for_exec -out "$WORK/omp.csv"

echo "== start apollo-serve with telemetry ingestion"
"$WORK/bin/apollo-serve" -addr 127.0.0.1:0 -dir "$WORK/registry" \
    -telemetry "$WORK/spool" -poll 100ms >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's/^apollo-serve: listening on \(http:\/\/[^ ]*\).*/\1/p' "$WORK/serve.log" | head -n1)"
    [[ -n "$BASE" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log"; echo "FAIL: daemon died"; exit 1; }
    sleep 0.1
done
[[ -n "$BASE" ]] || { cat "$WORK/serve.log"; echo "FAIL: never saw listen line"; exit 1; }
echo "   daemon at $BASE"

"$WORK/bin/apollo-train" -data "$WORK/seq.csv,$WORK/omp.csv" -cv 0 \
    -out "$WORK/stale.json" -push "$BASE" -push-name loop/policy | tail -n1

echo "== start apollo-traind on the spool"
"$WORK/bin/apollo-traind" -server "$BASE" -spool "$WORK/spool" \
    -model loop/policy -interval 300ms >"$WORK/traind.log" 2>&1 &
TRAIND_PID=$!

echo "== run apollo-tune at size 8 until the retrained model hot-swaps in"
"$WORK/bin/apollo-tune" -server "$BASE" -model loop/policy \
    -app LULESH -problem sedov -size 8 -steps 20 -wait-swaps 1 \
    -poll 100ms -flush 100ms | tee "$WORK/tune.log"

echo "== loop evidence"
grep -q "published=true" "$WORK/traind.log" || {
    cat "$WORK/traind.log"; echo "FAIL: trainer never published"; exit 1; }
fetch "$BASE/models" | grep -q '"loop/policy"'
METRICS="$(fetch "$BASE/metrics")"
echo "$METRICS" | grep -q 'apollo_telemetry_batches_total{model="loop/policy"}'
echo "$METRICS" | grep -q 'apollo_telemetry_rows_total{model="loop/policy"}'
VERSION="$(echo "$METRICS" | sed -n 's/^apollo_model_version{model="loop\/policy"} //p')"
[[ "${VERSION:-1}" -ge 2 ]] || { echo "FAIL: model version $VERSION, want >= 2"; exit 1; }
ls "$WORK"/spool/loop/policy/seg-*.jsonl >/dev/null || { echo "FAIL: no spool segments"; exit 1; }

echo "== shutdown"
kill "$TRAIND_PID"; wait "$TRAIND_PID" 2>/dev/null || true; TRAIND_PID=""
kill "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true; SERVE_PID=""
grep -q "shutting down" "$WORK/traind.log"

echo "PASS: loop smoke"
