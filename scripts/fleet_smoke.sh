#!/usr/bin/env bash
# Smoke-test the fleet layer end to end against real daemons: three
# apollo-serve replicas syncing models peer-to-peer, a champion pushed to
# one replica converging on all of them (same version, same ETag), a
# synthetic client fleet (apollo-fleet) surviving a mid-run replica kill
# with zero failed predicts, and a collective apollo-traind retraining
# from the replicas' merged telemetry spools behind the incumbent publish
# gate. Exits non-zero on any failure.
set -euo pipefail

GO="${GO:-go}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
PIDS=()
TRAIND_PID=""

cleanup() {
    for pid in "${TRAIND_PID:-}" "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fetch() { # fetch URL
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# pick_port finds a free TCP port. The bind race between picking and the
# daemon's listen is tolerated: collisions just fail the smoke loudly.
pick_port() {
    local p
    while :; do
        p=$((20000 + RANDOM % 20000))
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            echo "$p"
            return
        fi
        exec 3>&- 2>/dev/null || true
    done
}

echo "== build"
(cd "$ROOT" && $GO build -o "$WORK/bin/" \
    ./cmd/apollo-serve ./cmd/apollo-record ./cmd/apollo-train \
    ./cmd/apollo-traind ./cmd/apollo-fleet ./cmd/apollo-inspect)

echo "== start 3 replicas with peer sync"
P1="$(pick_port)"; P2="$(pick_port)"; P3="$(pick_port)"
PEERS="r1=http://127.0.0.1:$P1,r2=http://127.0.0.1:$P2,r3=http://127.0.0.1:$P3"
for i in 1 2 3; do
    port_var="P$i"
    "$WORK/bin/apollo-serve" -addr "127.0.0.1:${!port_var}" -dir "$WORK/registry$i" \
        -telemetry "$WORK/spool$i" -poll 200ms -id "r$i" -peers "$PEERS" -sync 200ms \
        >"$WORK/serve$i.log" 2>&1 &
    PIDS+=($!)
done
for i in 1 2 3; do
    port_var="P$i"
    for _ in $(seq 1 100); do
        fetch "http://127.0.0.1:${!port_var}/healthz" >/dev/null 2>&1 && break
        sleep 0.1
    done
    fetch "http://127.0.0.1:${!port_var}/healthz" >/dev/null \
        || { cat "$WORK/serve$i.log"; echo "FAIL: replica r$i never came up"; exit 1; }
done
echo "   replicas at ports $P1 $P2 $P3"

echo "== push a stale champion to r1 only (recorded at size 40)"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 40 -steps 3 \
    -policy seq_exec -out "$WORK/seq.csv"
"$WORK/bin/apollo-record" -app LULESH -problem sedov -size 40 -steps 3 \
    -policy omp_parallel_for_exec -out "$WORK/omp.csv"
"$WORK/bin/apollo-train" -data "$WORK/seq.csv,$WORK/omp.csv" -cv 0 \
    -out "$WORK/stale.json" -push "http://127.0.0.1:$P1" -push-name fleet/policy | tail -n1

echo "== wait for the champion to converge on all replicas (delta sync)"
CONVERGED=""
for _ in $(seq 1 100); do
    if "$WORK/bin/apollo-inspect" fleet -replicas "$PEERS" >"$WORK/converge.log" 2>&1; then
        CONVERGED=1
        break
    fi
    sleep 0.1
done
[[ -n "$CONVERGED" ]] || { cat "$WORK/converge.log"; echo "FAIL: model never converged"; exit 1; }
grep "converged" "$WORK/converge.log"

echo "== start collective apollo-traind over the merged spools"
# traind publishes to r2: r1 is the ring owner of fleet/policy and is the
# replica the harness run below kills, so the publish target must survive.
APOLLO_COLLECTIVE_TRAINING=1 "$WORK/bin/apollo-traind" \
    -server "http://127.0.0.1:$P2" \
    -spools "r1=$WORK/spool1,r2=$WORK/spool2,r3=$WORK/spool3" \
    -replicas "$PEERS" \
    -model fleet/policy -interval 300ms >"$WORK/traind.log" 2>&1 &
TRAIND_PID=$!

echo "== run the client fleet at size 8, killing replica r1 mid-run"
# r1 is the consistent-hash owner of fleet/policy (the ring walk for that
# key prefers r1, then r3, then r2), so killing it forces real failover:
# predicts and telemetry posts must land on the next ring member.
"$WORK/bin/apollo-fleet" -replicas "$PEERS" -model fleet/policy \
    -app LULESH -problem sedov -size 8 -clients 4 -steps 20 -duration 6s \
    -poll 100ms -flush 100ms -health 150ms >"$WORK/fleet.log" 2>&1 &
FLEET_PID=$!
sleep 2
kill "${PIDS[0]}" 2>/dev/null || true
wait "${PIDS[0]}" 2>/dev/null || true
echo "   killed r1"
wait "$FLEET_PID" || { cat "$WORK/fleet.log"; echo "FAIL: fleet harness errored"; exit 1; }
SUMMARY="$(grep '^apollo-fleet: done' "$WORK/fleet.log")"
echo "   $SUMMARY"

field() { echo "$SUMMARY" | sed -n "s/.*$1=\([0-9.]*\).*/\1/p"; }
[[ "$(field failed_predicts)" == "0" ]] \
    || { cat "$WORK/fleet.log"; echo "FAIL: predicts failed during replica kill"; exit 1; }
[[ "$(field exhausted)" == "0" ]] \
    || { cat "$WORK/fleet.log"; echo "FAIL: requests exhausted every replica"; exit 1; }
[[ "$(field failovers)" -gt 0 || "$(field evictions)" -gt 0 ]] \
    || { cat "$WORK/fleet.log"; echo "FAIL: kill left no failover/eviction trace"; exit 1; }
[[ "$(field rows)" -gt 0 ]] \
    || { cat "$WORK/fleet.log"; echo "FAIL: no telemetry uploaded"; exit 1; }

echo "== wait for the collective retrain to publish"
PUBLISHED=""
for _ in $(seq 1 100); do
    if grep -q "published=true" "$WORK/traind.log"; then
        PUBLISHED=1
        break
    fi
    sleep 0.1
done
[[ -n "$PUBLISHED" ]] || { cat "$WORK/traind.log"; echo "FAIL: collective trainer never published"; exit 1; }

echo "== retrained champion converges on the surviving replicas"
SURVIVORS="r2=http://127.0.0.1:$P2,r3=http://127.0.0.1:$P3"
CONVERGED=""
for _ in $(seq 1 100); do
    if "$WORK/bin/apollo-inspect" fleet -replicas "$SURVIVORS" >"$WORK/converge2.log" 2>&1 \
        && grep -q "fleet/policy" "$WORK/converge2.log"; then
        CONVERGED=1
        break
    fi
    sleep 0.1
done
[[ -n "$CONVERGED" ]] || { cat "$WORK/converge2.log"; echo "FAIL: retrained model never converged"; exit 1; }
grep "converged" "$WORK/converge2.log"
V2="$(fetch "http://127.0.0.1:$P2/metrics" | sed -n 's/^apollo_model_version{model="fleet\/policy"} //p')"
[[ "${V2:-1}" -ge 2 ]] || { echo "FAIL: model version $V2 on r2, want >= 2"; exit 1; }

echo "== spool evidence: telemetry landed on more than one replica or failed over"
ls "$WORK"/spool*/fleet/policy/seg-*.jsonl >/dev/null \
    || { echo "FAIL: no spool segments anywhere"; exit 1; }

echo "PASS: fleet smoke"
