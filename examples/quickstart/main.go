// Quickstart: the complete Apollo workflow on one synthetic kernel.
//
// The example mirrors Fig. 3 of the paper on a single input-dependent
// kernel: (1) training runs record a feature vector and runtime per
// launch, once per execution policy; (2) the recorded samples are labeled
// with the fastest variant and a decision tree is trained; (3) the model
// is saved to JSON, reloaded, and installed as a runtime tuner, which
// picks sequential execution for small launches and parallel execution
// for large ones — beating both static choices.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"apollo"
)

// launchSizes is an input-dependent workload: many tiny launches and a
// few huge ones, as an AMR code's patch population produces.
var launchSizes = buildWorkload()

func buildWorkload() []int {
	var sizes []int
	small := []int{32, 48, 64, 96, 128, 256, 512, 1024, 2048}
	for rep := 0; rep < 300; rep++ {
		sizes = append(sizes, small[rep%len(small)]+rep)
	}
	sizes = append(sizes, 100000, 250000, 500000, 1000000, 150000, 800000)
	return sizes
}

func main() {
	schema := apollo.TableISchema()
	ann := apollo.NewAnnotations()
	machine := apollo.SandyBridgeNode()
	clk := apollo.NewSimClock(machine, 0.05, 42)

	kernel := apollo.NewKernel("quickstart::axpy", apollo.NewMix().
		With(apollo.OpMovsd, 3).With(apollo.OpMulpd, 1).With(apollo.OpAdd, 1))

	runAll := func(ctx *apollo.Context) {
		for _, n := range launchSizes {
			apollo.ForAll(ctx, kernel, apollo.NewRange(0, n), func(i int) {})
		}
	}

	// --- 1. Record: one training run per execution policy. ---
	var all *apollo.Frame
	for _, pol := range []apollo.Policy{apollo.SeqExec, apollo.OmpParallelForExec} {
		rec := apollo.NewRecorder(schema, ann, apollo.Params{Policy: pol})
		ctx := apollo.NewSimContext(clk, apollo.Params{})
		ctx.Hooks = rec
		runAll(ctx)
		if all == nil {
			all = rec.Frame()
		} else {
			all.Append(rec.Frame())
		}
		fmt.Printf("recorded %2d samples under %v\n", rec.Samples(), pol)
	}

	// --- 2. Train: label fastest variants, fit a decision tree. ---
	set, err := apollo.Label(all, schema, apollo.ExecutionPolicy)
	if err != nil {
		log.Fatal(err)
	}
	model, err := apollo.Train(set, apollo.TreeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	cv, err := apollo.CrossValidate(set, 5, 1, apollo.TreeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrained on %d unique launch configs; 5-fold CV accuracy %.0f%%\n",
		set.Len(), cv.MeanAccuracy*100)
	fmt.Println("\ndecision model:")
	fmt.Println(model.Tree.String())

	// --- 3. Deploy: save, reload, and tune. ---
	dir, err := os.MkdirTemp("", "apollo-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "policy-model.json")
	if err := model.Save(path); err != nil {
		log.Fatal(err)
	}
	loaded, err := apollo.LoadModel(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved to and reloaded from %s\n\n", path)

	timeWith := func(hooks apollo.Hooks, def apollo.Params) float64 {
		c := apollo.NewSimClock(machine, 0, 0)
		ctx := apollo.NewSimContext(c, def)
		ctx.Hooks = hooks
		runAll(ctx)
		return c.NowNS()
	}
	seqTime := timeWith(nil, apollo.Params{Policy: apollo.SeqExec})
	ompTime := timeWith(nil, apollo.Params{Policy: apollo.OmpParallelForExec})
	tuned := timeWith(
		apollo.NewTuner(schema, ann, apollo.Params{}).UsePolicyModel(loaded),
		apollo.Params{})

	fmt.Printf("always sequential: %8.2f ms\n", seqTime/1e6)
	fmt.Printf("always parallel:   %8.2f ms\n", ompTime/1e6)
	fmt.Printf("Apollo tuned:      %8.2f ms  (%.2fx vs best static)\n",
		tuned/1e6, minf(seqTime, ompTime)/tuned)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
