// Kokkos port: the same Apollo models tune a second portability
// framework.
//
// The paper closes by noting that "the techniques for separating the
// concerns of implementation and tuning are general, and we plan to apply
// these techniques to other performance portability frameworks." This
// example demonstrates that generality: a stencil mini-app written
// against the Kokkos-style frontend (internal/kokkos — ParallelFor,
// ParallelReduce, MDRangePolicy) is tuned by a model trained from
// RAJA-frontend recordings, with no retraining, because both frontends
// emit identical Table I feature vectors.
//
// Run with: go run ./examples/kokkosport
package main

import (
	"fmt"
	"log"

	"apollo"
	"apollo/internal/kokkos"
	"apollo/internal/raja"
)

// stencilMix describes the 5-point stencil body.
var stencilMix = apollo.NewMix().
	With(apollo.OpMovsd, 6).With(apollo.OpAdd, 4).With(apollo.OpMulpd, 2)

// patchSizes is the input-dependent workload: an AMR-like patch
// population — hundreds of small patches plus a few large ones.
var patchSizes = buildPatches()

func buildPatches() [][2]int {
	var out [][2]int
	small := [][2]int{{8, 8}, {12, 10}, {16, 8}, {10, 12}, {14, 14}, {16, 16}, {12, 8}, {8, 10}}
	for rep := 0; rep < 40; rep++ {
		out = append(out, small[rep%len(small)])
	}
	out = append(out, [2]int{640, 512}, [2]int{768, 640}, [2]int{512, 512})
	return out
}

func main() {
	schema := apollo.TableISchema()
	ann := apollo.NewAnnotations()
	machine := apollo.SandyBridgeNode()

	// --- Train from the RAJA frontend (as the applications do). ---
	trainKernel := apollo.NewKernel("kokkosport::train", stencilMix.Clone())
	var all *apollo.Frame
	for _, pol := range []apollo.Policy{apollo.SeqExec, apollo.OmpParallelForExec} {
		rec := apollo.NewRecorder(schema, ann, apollo.Params{Policy: pol})
		clk := apollo.NewSimClock(machine, 0.05, 9)
		ctx := apollo.NewSimContext(clk, apollo.Params{})
		ctx.Hooks = rec
		for n := 32; n <= 1<<20; n *= 4 {
			apollo.ForAll(ctx, trainKernel, apollo.NewRange(0, n), func(int) {})
		}
		if all == nil {
			all = rec.Frame()
		} else {
			all.Append(rec.Frame())
		}
	}
	set, err := apollo.Label(all, schema, apollo.ExecutionPolicy)
	if err != nil {
		log.Fatal(err)
	}
	model, err := apollo.Train(set, apollo.TreeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy model trained from RAJA-frontend recordings")

	// --- Deploy against the Kokkos frontend. ---
	runStencil := func(hooks apollo.Hooks, space kokkos.ExecSpace) float64 {
		clk := apollo.NewSimClock(machine, 0, 0)
		ctx := apollo.NewSimContext(clk, apollo.Params{})
		ctx.Hooks = hooks
		for _, sz := range patchSizes {
			nx, ny := sz[0], sz[1]
			grid := make([]float64, nx*ny)
			kokkos.ParallelForMD(ctx, "kokkosport::stencil", stencilMix.Clone(),
				kokkos.MDRangePolicy{Space: space, End0: ny, End1: nx},
				func(j, i int) {
					c := grid[j*nx+i]
					grid[j*nx+i] = 0.5*c + 0.125*float64(i+j)
				})
			sum, _ := kokkos.ParallelReduce(ctx, "kokkosport::norm", stencilMix.Clone(),
				kokkos.RangePolicy{Space: space, End: nx * ny},
				func(k int) float64 { return grid[k] * grid[k] })
			_ = sum
		}
		return clk.NowNS()
	}

	serial := runStencil(nil, kokkos.Serial)
	parallel := runStencil(nil, kokkos.OpenMP)
	tuned := runStencil(
		apollo.NewTuner(schema, ann, apollo.Params{}).UsePolicyModel(model),
		kokkos.DefaultExecSpace)

	fmt.Printf("\n%-34s %10s\n", "execution space", "total")
	fmt.Printf("%-34s %8.2fms\n", "Kokkos Serial everywhere", serial/1e6)
	fmt.Printf("%-34s %8.2fms\n", "Kokkos OpenMP everywhere", parallel/1e6)
	fmt.Printf("%-34s %8.2fms  (%.2fx vs best static)\n",
		"DefaultExecSpace + Apollo", tuned/1e6, minf(serial, parallel)/tuned)

	fmt.Printf("\n%d Kokkos kernel sites registered through the shared tuning core\n",
		len(kokkos.Kernels()))
	_ = raja.NumPolicies // both frontends share the same policy space
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
