// AMR patches: tune the CleverLeaf proxy's dynamically sized patches.
//
// This example reproduces the paper's central CleverLeaf story end to
// end: the Sedov blast drives adaptive mesh refinement, the regridding
// algorithm produces patches of widely varying sizes, and the fixed
// OpenMP-everywhere default wastes a parallel-region spawn on every
// small patch and boundary strip. Apollo records one training run per
// execution policy, trains a decision tree, and then tunes every kernel
// launch, choosing sequential execution for the small patches.
//
// Run with: go run ./examples/amrpatches
package main

import (
	"fmt"
	"log"
	"sort"

	"apollo"
	ccapp "apollo/internal/app"
	"apollo/internal/cleverleaf"
	"apollo/internal/tuner"
)

const (
	problem = "sedov"
	size    = 64
	steps   = 16
)

func main() {
	schema := apollo.TableISchema()
	machine := apollo.SandyBridgeNode()

	// --- Record under each execution policy. ---
	var all *apollo.Frame
	for _, pol := range []apollo.Policy{apollo.SeqExec, apollo.OmpParallelForExec} {
		ann := apollo.NewAnnotations()
		rec := apollo.NewRecorder(schema, ann, apollo.Params{Policy: pol})
		clk := apollo.NewSimClock(machine, 0.05, 7)
		ctx := apollo.NewSimContext(clk, apollo.Params{})
		ctx.Hooks = rec
		sim, err := cleverleaf.New(ccapp.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			sim.Step()
		}
		if all == nil {
			all = rec.Frame()
		} else {
			all.Append(rec.Frame())
		}
		fmt.Printf("recorded %5d samples under %v (%d AMR patches at end)\n",
			rec.Samples(), pol, sim.Hierarchy().NumPatches())
	}

	// --- Train the policy model. ---
	set, err := apollo.Label(all, schema, apollo.ExecutionPolicy)
	if err != nil {
		log.Fatal(err)
	}
	model, err := apollo.Train(set, apollo.TreeConfig{MaxDepth: 15})
	if err != nil {
		log.Fatal(err)
	}
	cv, err := apollo.CrossValidate(set, 10, 3, apollo.TreeConfig{MaxDepth: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npolicy model: %d unique launch configs, 10-fold CV accuracy %.0f%%\n",
		set.Len(), cv.MeanAccuracy*100)

	// --- Compare default OpenMP-everywhere against Apollo. ---
	runWith := func(hooks func(ann *apollo.Annotations) apollo.Hooks, def apollo.Params) (float64, map[string]tuner.KernelStat) {
		ann := apollo.NewAnnotations()
		clk := apollo.NewSimClock(machine, 0, 0)
		ctx := apollo.NewSimContext(clk, def)
		col := tuner.NewCollector(hooks(ann))
		ctx.Hooks = col
		sim, err := cleverleaf.New(ccapp.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			sim.Step()
		}
		return clk.NowNS(), col.Stats()
	}

	defTime, defStats := runWith(
		func(*apollo.Annotations) apollo.Hooks { return nil },
		apollo.Params{Policy: apollo.OmpParallelForExec})
	tunedTime, tunedStats := runWith(
		func(ann *apollo.Annotations) apollo.Hooks {
			return apollo.NewTuner(schema, ann, apollo.Params{}).UsePolicyModel(model)
		},
		apollo.Params{})

	fmt.Printf("\nstatic OpenMP everywhere: %7.2f ms\n", defTime/1e6)
	fmt.Printf("Apollo dynamic tuning:    %7.2f ms  (speedup %.2fx)\n\n",
		tunedTime/1e6, defTime/tunedTime)

	// --- Per-kernel breakdown: where did the time go? ---
	type row struct {
		name     string
		def, tun float64
	}
	var rows []row
	for name, st := range defStats {
		rows = append(rows, row{name, st.TotalNS, tunedStats[name].TotalNS})
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].def-rows[i].tun > rows[j].def-rows[j].tun
	})
	fmt.Println("top kernels by absolute improvement:")
	fmt.Printf("%-36s %10s %10s %8s\n", "kernel", "default", "apollo", "speedup")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		fmt.Printf("%-36s %8.2fms %8.2fms %7.2fx\n",
			r.name, r.def/1e6, r.tun/1e6, r.def/r.tun)
	}
}
