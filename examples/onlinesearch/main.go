// Online search vs Apollo: why pre-trained models beat run-time search
// on input-dependent code.
//
// The paper's key argument against empirical on-line tuners
// (ActiveHarmony-style) is twofold: they must execute every candidate —
// paying for the slow ones — and they converge per kernel, so they
// cannot follow inputs that change from launch to launch. This example
// drives one kernel through three workload phases (small launches, large
// launches, then rapidly alternating sizes) and compares four tuners:
// the static default, the empirical on-line searcher, Apollo's
// classifier, and the per-launch oracle.
//
// Run with: go run ./examples/onlinesearch
package main

import (
	"fmt"
	"log"

	"apollo"
	"apollo/internal/search"
)

func workload() []int {
	var sizes []int
	for i := 0; i < 250; i++ { // phase 1: small patches
		sizes = append(sizes, 64+i)
	}
	for i := 0; i < 40; i++ { // phase 2: large patches
		sizes = append(sizes, 120000+1000*i)
	}
	for i := 0; i < 360; i++ { // phase 3: alternating per launch
		if i%3 != 0 {
			sizes = append(sizes, 96+i)
		} else {
			sizes = append(sizes, 150000+500*i)
		}
	}
	return sizes
}

func main() {
	schema := apollo.TableISchema()
	machine := apollo.SandyBridgeNode()
	mix := apollo.NewMix().
		With(apollo.OpMovsd, 6).With(apollo.OpMulpd, 4).With(apollo.OpAdd, 4)
	sizes := workload()

	// Train Apollo's model on a short generic sweep (not the test
	// workload): sizes spanning the crossover.
	kTrain := apollo.NewKernel("search-demo::train", mix)
	var all *apollo.Frame
	for _, pol := range []apollo.Policy{apollo.SeqExec, apollo.OmpParallelForExec} {
		ann := apollo.NewAnnotations()
		rec := apollo.NewRecorder(schema, ann, apollo.Params{Policy: pol})
		clk := apollo.NewSimClock(machine, 0.05, 5)
		ctx := apollo.NewSimContext(clk, apollo.Params{})
		ctx.Hooks = rec
		for n := 32; n <= 1<<20; n *= 2 {
			apollo.ForAll(ctx, kTrain, apollo.NewRange(0, n), func(int) {})
		}
		if all == nil {
			all = rec.Frame()
		} else {
			all.Append(rec.Frame())
		}
	}
	set, err := apollo.Label(all, schema, apollo.ExecutionPolicy)
	if err != nil {
		log.Fatal(err)
	}
	model, err := apollo.Train(set, apollo.TreeConfig{})
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, hooks func(ann *apollo.Annotations) apollo.Hooks, def apollo.Params) float64 {
		ann := apollo.NewAnnotations()
		clk := apollo.NewSimClock(machine, 0, 0)
		ctx := apollo.NewSimContext(clk, def)
		ctx.Hooks = hooks(ann)
		k := apollo.NewKernel("search-demo::"+label, mix)
		for _, n := range sizes {
			apollo.ForAll(ctx, k, apollo.NewRange(0, n), func(int) {})
		}
		return clk.NowNS()
	}

	static := run("static", func(*apollo.Annotations) apollo.Hooks { return nil },
		apollo.Params{Policy: apollo.OmpParallelForExec})
	searched := run("searched", func(*apollo.Annotations) apollo.Hooks {
		return search.New(search.Config{TrialsPerCandidate: 2, ReexploreEvery: 25})
	}, apollo.Params{})
	tuned := run("tuned", func(ann *apollo.Annotations) apollo.Hooks {
		return apollo.NewTuner(schema, ann, apollo.Params{}).UsePolicyModel(model)
	}, apollo.Params{})

	// Oracle: the best policy per launch, computed from the model-free
	// machine timings.
	var oracle float64
	for _, n := range sizes {
		seq := machine.SeqTimeNS(mix, n)
		omp := machine.OMPTimeNS(mix, n, 0)
		if seq < omp {
			oracle += seq
		} else {
			oracle += omp
		}
	}

	fmt.Printf("workload: %d launches across three input phases\n\n", len(sizes))
	fmt.Printf("%-28s %10s %12s\n", "tuner", "total", "vs oracle")
	for _, row := range []struct {
		name string
		ns   float64
	}{
		{"static OpenMP everywhere", static},
		{"on-line empirical search", searched},
		{"Apollo classifier", tuned},
		{"oracle (per-launch best)", oracle},
	} {
		fmt.Printf("%-28s %8.2fms %11.2fx\n", row.name, row.ns/1e6, row.ns/oracle)
	}
	fmt.Println("\nThe searcher converges per kernel, so it cannot follow the per-launch")
	fmt.Println("alternation of phase 3; Apollo decides per launch from the features.")
}
