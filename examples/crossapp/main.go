// Cross-application models: train on LULESH, tune CleverLeaf and ARES.
//
// The paper's Table III shows that Apollo's models are reusable across
// applications: a model trained only on LULESH's kernels predicts good
// execution policies for CleverLeaf and ARES, because the features it
// consumes (iteration counts, instruction mixes, segment structure) are
// application-agnostic. This example trains a policy model exclusively on
// LULESH training data and then installs it — unchanged — as the tuner
// for the other two applications, reporting transfer accuracy and the
// resulting end-to-end speedups over each application's default.
//
// Run with: go run ./examples/crossapp
package main

import (
	"fmt"
	"log"

	"apollo"
	appcfg "apollo/internal/app"
	"apollo/internal/ares"
	"apollo/internal/cleverleaf"
	"apollo/internal/lulesh"
)

func main() {
	schema := apollo.TableISchema()
	machine := apollo.SandyBridgeNode()

	record := func(desc appcfg.Descriptor, problem string, size, steps int) *apollo.Frame {
		var all *apollo.Frame
		for _, pol := range []apollo.Policy{apollo.SeqExec, apollo.OmpParallelForExec} {
			ann := apollo.NewAnnotations()
			rec := apollo.NewRecorder(schema, ann, apollo.Params{Policy: pol})
			clk := apollo.NewSimClock(machine, 0.05, 21)
			ctx := apollo.NewSimContext(clk, apollo.Params{})
			ctx.Hooks = rec
			sim, err := desc.New(appcfg.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < steps; i++ {
				sim.Step()
			}
			if all == nil {
				all = rec.Frame()
			} else {
				all.Append(rec.Frame())
			}
		}
		return all
	}

	// --- Train only on LULESH, across several problem sizes. ---
	ldesc := lulesh.Descriptor()
	var ltrain *apollo.Frame
	for _, size := range []int{8, 16, 24, 32} {
		f := record(ldesc, "sedov", size, 8)
		if ltrain == nil {
			ltrain = f
		} else {
			ltrain.Append(f)
		}
	}
	lset, err := apollo.Label(ltrain, schema, apollo.ExecutionPolicy)
	if err != nil {
		log.Fatal(err)
	}
	model, err := apollo.Train(lset, apollo.TreeConfig{MaxDepth: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LULESH-only model trained on %d unique launch configs\n\n", lset.Len())

	// --- Evaluate transfer accuracy and end-to-end speedup. ---
	targets := []struct {
		desc    appcfg.Descriptor
		problem string
		size    int
		steps   int
	}{
		{cleverleaf.Descriptor(), "sedov", 64, 12},
		{cleverleaf.Descriptor(), "triple_pt", 64, 12},
		{ares.Descriptor(), "hotspot", 48, 8},
	}
	fmt.Printf("%-12s %-10s %16s %16s\n", "application", "problem", "transfer acc.", "speedup vs def.")
	for _, tgt := range targets {
		frame := record(tgt.desc, tgt.problem, tgt.size, tgt.steps)
		set, err := apollo.Label(frame, schema, apollo.ExecutionPolicy)
		if err != nil {
			log.Fatal(err)
		}
		acc := model.Evaluate(set)

		run := func(hooks func(ann *apollo.Annotations) apollo.Hooks, def apollo.Params) float64 {
			ann := apollo.NewAnnotations()
			clk := apollo.NewSimClock(machine, 0, 0)
			ctx := apollo.NewSimContext(clk, def)
			ctx.Hooks = hooks(ann)
			sim, err := tgt.desc.New(appcfg.Config{Ctx: ctx, Ann: ann, Problem: tgt.problem, Size: tgt.size})
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < tgt.steps; i++ {
				sim.Step()
			}
			return clk.NowNS()
		}
		def := run(func(*apollo.Annotations) apollo.Hooks {
			if tgt.desc.NewDefaultHooks != nil {
				return tgt.desc.NewDefaultHooks()
			}
			return nil
		}, tgt.desc.DefaultParams)
		tuned := run(func(ann *apollo.Annotations) apollo.Hooks {
			return apollo.NewTuner(schema, ann, tgt.desc.DefaultParams).UsePolicyModel(model)
		}, tgt.desc.DefaultParams)

		fmt.Printf("%-12s %-10s %15.0f%% %15.2fx\n",
			tgt.desc.Name, tgt.problem, acc*100, def/tuned)
	}
	fmt.Println("\nThe same LULESH-trained model file tunes all three codes without retraining.")
}
