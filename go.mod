module apollo

go 1.22
