package apollo_test

// Integration tests across the whole stack: each proxy application is
// driven through the faithful paper workflow — one recorded run per
// execution policy, labeling, training, model persistence, generated-code
// emission, and a tuned re-run that must beat the application's default —
// using the real per-variant Recorder (not the harness's fast sweep).

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/codegen"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/harness"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/tuner"
)

// integrationCase picks a small configuration per application.
var integrationCases = []struct {
	app     string
	problem string
	size    int
	steps   int
}{
	{"LULESH", "sedov", 10, 5},
	{"CleverLeaf", "sod", 32, 6},
	{"ARES", "jet", 32, 5},
}

func descFor(t *testing.T, name string) app.Descriptor {
	t.Helper()
	for _, d := range harness.Apps() {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("unknown app %s", name)
	return app.Descriptor{}
}

func TestFullWorkflowPerApplication(t *testing.T) {
	schema := features.TableI()
	machine := platform.SandyBridgeNode()
	for _, tc := range integrationCases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			desc := descFor(t, tc.app)

			// 1. Record: one run per execution policy, as the paper's
			// training procedure prescribes.
			all := dataset.NewFrame(core.RecordColumns(schema)...)
			for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
				ann := caliper.New()
				rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: pol})
				clk := platform.NewSimClock(machine, 0.05, 2)
				ctx := raja.NewSimContext(clk, desc.DefaultParams)
				ctx.Hooks = rec
				sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: tc.problem, Size: tc.size})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < tc.steps; i++ {
					sim.Step()
				}
				if rec.Samples() == 0 {
					t.Fatal("no samples recorded")
				}
				all.Append(rec.Frame())
			}

			// 2. Label + train + reduce to the deployment config.
			set, err := core.Label(all, schema, core.ExecutionPolicy)
			if err != nil {
				t.Fatal(err)
			}
			full, err := core.Train(set, core.TrainConfig{})
			if err != nil {
				t.Fatal(err)
			}
			model, err := full.Reduce(set, 5, 15, core.TrainConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if acc := model.Evaluate(set); acc < 0.85 {
				t.Errorf("reduced model accuracy %.2f below 0.85", acc)
			}

			// 3. Persist and reload.
			path := filepath.Join(t.TempDir(), "model.json")
			if err := model.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := core.LoadModel(path)
			if err != nil {
				t.Fatal(err)
			}

			// 4. The generated decision function must be valid Go.
			src := codegen.Generate(loaded, "tuned", "ApolloBeginForall")
			fset := token.NewFileSet()
			if _, err := parser.ParseFile(fset, "tuned.go", src, 0); err != nil {
				t.Fatalf("generated code does not parse: %v", err)
			}

			// 5. Tuned run beats the default configuration.
			timed := func(hooks raja.Hooks) float64 {
				ann := caliper.New()
				clk := platform.NewSimClock(machine, 0, 0)
				ctx := raja.NewSimContext(clk, desc.DefaultParams)
				if hooks == nil && desc.NewDefaultHooks != nil {
					hooks = desc.NewDefaultHooks()
				}
				ctx.Hooks = hooks
				sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: tc.problem, Size: tc.size})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < tc.steps; i++ {
					sim.Step()
				}
				return clk.NowNS()
			}
			def := timed(nil)
			ann := caliper.New()
			tuned := timed(tuner.NewTuner(schema, ann, desc.DefaultParams).UsePolicyModel(loaded))
			if tuned >= def {
				t.Errorf("tuned run (%.3gms) did not beat default (%.3gms)", tuned/1e6, def/1e6)
			}
		})
	}
}

// TestChunkModelWorkflow exercises the second tuning parameter end to
// end on CleverLeaf: chunk recording across the grid, labeling, and a
// tuner with both models installed.
func TestChunkModelWorkflow(t *testing.T) {
	schema := features.TableI()
	machine := platform.SandyBridgeNode()
	desc := descFor(t, "CleverLeaf")

	all := dataset.NewFrame(core.RecordColumns(schema)...)
	for _, chunk := range []int{1, 16, 128, 1024} {
		ann := caliper.New()
		rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: raja.OmpParallelForExec, Chunk: chunk})
		clk := platform.NewSimClock(machine, 0.02, 4)
		ctx := raja.NewSimContext(clk, desc.DefaultParams)
		ctx.Hooks = rec
		sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: "sedov", Size: 32})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			sim.Step()
		}
		all.Append(rec.Frame())
	}
	// Policy rows are needed too for a realistic frame, but chunk
	// labeling only uses parallel rows; label directly.
	set, err := core.Label(all, schema, core.ChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Param != core.ChunkSize {
		t.Fatal("wrong parameter")
	}
	ann := caliper.New()
	tn := tuner.NewTuner(schema, ann, raja.Params{Policy: raja.OmpParallelForExec}).UseChunkModel(model)
	k := raja.NewKernel("integration::chunk", nil)
	p, _ := tn.Begin(k, raja.NewRange(0, 1024))
	if core.ChunkClass(p.Chunk) < 0 {
		t.Errorf("tuned chunk %d not on the training grid", p.Chunk)
	}
}

// TestQuickHarnessAll runs the entire experiment suite in quick mode —
// the same path the benchmark suite and apollo-bench use — as a single
// integration gate.
func TestQuickHarnessAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick harness run takes several seconds")
	}
	r := harness.NewRunner(harness.Options{Quick: true, Seed: 31})
	if err := r.Run("all"); err != nil {
		t.Fatal(err)
	}
}
