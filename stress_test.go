package apollo_test

// Scheduler stress for the closed training loop: the same end-to-end
// scenario as TestClosedLoopRetrainsAndHotSwapsMidRun, swept across
// GOMAXPROCS settings so the race detector sees the interleavings a
// single setting would hide — the poller swapping projectors mid-launch,
// the uploader draining the recorder while the tuner records, and the
// trainer tailing the spool the server is still writing. CI runs this
// under -race with -count to multiply the schedules explored.

import (
	"fmt"
	"runtime"
	"testing"
)

func TestClosedLoopSchedulerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("full closed-loop pass per GOMAXPROCS setting")
	}
	procs := []int{1, 2, runtime.NumCPU()}
	if procs[2] <= 2 {
		procs = procs[:2]
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range procs {
		t.Run(fmt.Sprintf("GOMAXPROCS=%d", p), func(t *testing.T) {
			runtime.GOMAXPROCS(p)
			runClosedLoopScenario(t)
		})
	}
}
