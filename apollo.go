// Package apollo is the public API of the Apollo reproduction: a
// lightweight framework for fast, dynamic tuning of input-dependent code,
// after Beckingsale, Pearce, Laguna and Gamblin, "Apollo: Reusable Models
// for Fast, Dynamic Tuning of Input-Dependent Code" (IPDPS 2017).
//
// Apollo replaces costly on-line auto-tuning search with off-line trained
// decision-tree classifiers that select the fastest statically compiled
// variant of a kernel — its execution policy and schedule chunk size — at
// every launch, for a few nanoseconds per decision.
//
// # Workflow
//
// Applications write kernels against the RAJA-style ForAll abstraction:
//
//	k := apollo.NewKernel("app::my_kernel", apollo.NewMix().
//		With(apollo.OpAdd, 4).With(apollo.OpMovsd, 6))
//	apollo.ForAll(ctx, k, apollo.NewRange(0, n), func(i int) { ... })
//
// A training run installs a Recorder to capture a feature vector and
// runtime per launch, once per candidate parameter value. Train labels
// each unique feature vector with its fastest variant and fits a decision
// tree; the model serializes to JSON and loads at runtime without
// recompilation. A production run installs a Tuner, which evaluates the
// model at every launch and writes the chosen parameters to the policy
// switcher.
//
// The deeper machinery lives in internal packages (raja, team, platform,
// dtree, core, tuner, codegen, harness); this package re-exports the
// supported surface.
package apollo

import (
	"apollo/internal/caliper"
	"apollo/internal/codegen"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/instmix"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/team"
	"apollo/internal/trace"
	"apollo/internal/tuner"
)

// Kernel execution types (package raja).
type (
	// Kernel is a forall launch site: name, unique ID, instruction mix.
	Kernel = raja.Kernel
	// IndexSet is a kernel's iteration space (ranges and lists).
	IndexSet = raja.IndexSet
	// RangeSegment is a contiguous index range.
	RangeSegment = raja.RangeSegment
	// ListSegment is an explicit index list.
	ListSegment = raja.ListSegment
	// Policy selects sequential or parallel execution.
	Policy = raja.Policy
	// Params is a full tunable parameter assignment (policy + chunk).
	Params = raja.Params
	// Hooks is the recorder/tuner interface around each launch.
	Hooks = raja.Hooks
	// Context carries the execution environment for ForAll.
	Context = raja.Context
	// Team is a goroutine worker team with OpenMP-style scheduling.
	Team = team.Team
)

// Execution policies.
const (
	// SeqExec runs iterations sequentially.
	SeqExec = raja.SeqExec
	// OmpParallelForExec runs iterations on the worker team.
	OmpParallelForExec = raja.OmpParallelForExec
)

// ChunkSizes is the training grid of schedule chunk sizes.
var ChunkSizes = raja.ChunkSizes

// Instruction-mix types (package instmix).
type (
	// Mix is a kernel body's grouped instruction histogram.
	Mix = instmix.Mix
	// OpGroup is one grouped mnemonic.
	OpGroup = instmix.Group
)

// Common mnemonic groups (the full set is in internal/instmix).
const (
	OpAdd    = instmix.Add
	OpSub    = instmix.Sub
	OpMulpd  = instmix.Mulpd
	OpDivsd  = instmix.Divsd
	OpSqrtsd = instmix.Sqrtsd
	OpMov    = instmix.Mov
	OpMovsd  = instmix.Movsd
	OpCmp    = instmix.Cmp
	OpMaxsd  = instmix.Maxsd
	OpMinsd  = instmix.Minsd
)

// NewMix returns an empty instruction mix.
func NewMix() *Mix { return instmix.NewMix() }

// NewKernel registers a kernel launch site.
func NewKernel(name string, mix *Mix) *Kernel { return raja.NewKernel(name, mix) }

// NewRange returns an index set over [begin, end).
func NewRange(begin, end int) *IndexSet { return raja.NewRange(begin, end) }

// NewList returns an index set over an explicit index list.
func NewList(indices []int) *IndexSet { return raja.NewList(indices) }

// NewIndexSet builds an index set from segments.
func NewIndexSet(segs ...raja.Segment) *IndexSet { return raja.NewIndexSet(segs...) }

// ForAll launches a kernel body over an index set through the context's
// hooks and policy switcher, returning the elapsed nanoseconds.
func ForAll(ctx *Context, k *Kernel, iset *IndexSet, body func(i int)) float64 {
	return raja.ForAll(ctx, k, iset, body)
}

// NewTeam creates a worker team with n goroutines (n <= 0 uses
// GOMAXPROCS). Close it when done.
func NewTeam(n int) *Team { return team.New(n) }

// NewContext returns a wall-clock execution context over a worker team
// with the given static default parameters.
func NewContext(tm *Team, def Params) *Context {
	return &Context{Team: tm, Default: def}
}

// Machine is the analytic node performance model used by the simulated
// clock (package platform).
type Machine = platform.Machine

// SimClock is a deterministic virtual clock over a Machine.
type SimClock = platform.SimClock

// SandyBridgeNode returns the model of the paper's 16-core testbed.
func SandyBridgeNode() *Machine { return platform.SandyBridgeNode() }

// NewSimClock returns a virtual clock with optional measurement noise.
func NewSimClock(m *Machine, noiseAmp float64, seed uint64) *SimClock {
	return platform.NewSimClock(m, noiseAmp, seed)
}

// NewSimContext returns a context timed by the machine model instead of
// the wall clock — the substitution this repository uses for the paper's
// dedicated node (see DESIGN.md).
func NewSimContext(clk *SimClock, def Params) *Context {
	return raja.NewSimContext(clk, def)
}

// Feature and data types.
type (
	// Schema is an ordered feature layout (Table I of the paper).
	Schema = features.Schema
	// Annotations is the caliper-style application feature blackboard.
	Annotations = caliper.Annotations
	// Frame is a columnar sample table with CSV persistence.
	Frame = dataset.Frame
)

// TableISchema returns the full Table I feature schema.
func TableISchema() *Schema { return features.TableI() }

// NewAnnotations returns an empty annotation blackboard.
func NewAnnotations() *Annotations { return caliper.New() }

// Tuning parameters a model can predict.
const (
	// ExecutionPolicy tunes sequential vs. parallel execution.
	ExecutionPolicy = core.ExecutionPolicy
	// ChunkSize tunes the static-schedule chunk size.
	ChunkSize = core.ChunkSize
)

// Parameter identifies a tunable parameter.
type Parameter = core.Parameter

// Runtime components.
type (
	// Recorder collects training samples (one variant per run).
	Recorder = tuner.Recorder
	// Tuner evaluates trained models at every kernel launch.
	Tuner = tuner.Tuner
	// Model is a trained, reusable decision-tree tuning model.
	Model = core.Model
	// LabeledSet is a labeled training set (fastest variant per vector).
	LabeledSet = core.LabeledSet
	// CVResult summarizes a k-fold cross-validation.
	CVResult = core.CVResult
	// TreeConfig controls decision-tree induction.
	TreeConfig = dtree.Config
)

// NewRecorder returns a recorder that forces the sweep parameters and
// records one sample per launch against the schema and blackboard.
func NewRecorder(schema *Schema, ann *Annotations, sweep Params) *Recorder {
	return tuner.NewRecorder(schema, ann, sweep)
}

// Model serving. A tuner's projector reads go through a ModelSource,
// which may atomically hot-swap a retrained model into a running
// application (Tuner.UseSource). The HTTP service side — registry
// daemon, serving client — lives in cmd/apollo-serve and the internal
// registry/server/client packages; see DESIGN.md "Serving trained
// models".
type (
	// ModelSource supplies a tuner's current projectors; implementations
	// may swap the set at any time and must be safe for concurrent reads.
	ModelSource = tuner.ModelSource
	// ProjectorSet is one immutable policy/chunk projector pair.
	ProjectorSet = tuner.Projectors
	// SwapSource is the trivial ModelSource: an atomically swappable
	// projector set, for embedding applications that manage models by hand.
	SwapSource = tuner.SwapSource
	// ModelEnvelope is the stable versioned wire/disk form of a published
	// model (name, version, schema hash, model).
	ModelEnvelope = core.Envelope
)

// NewTuner returns a tuner starting from base parameters; install models
// with UsePolicyModel / UseChunkModel, or route reads through a serving
// client with UseSource.
func NewTuner(schema *Schema, ann *Annotations, base Params) *Tuner {
	return tuner.NewTuner(schema, ann, base)
}

// Label groups recorded samples by feature vector and labels each unique
// vector with its fastest observed variant of the parameter.
func Label(frame *Frame, schema *Schema, param Parameter) (*LabeledSet, error) {
	return core.Label(frame, schema, param)
}

// Train fits a decision-tree model to a labeled set.
func Train(set *LabeledSet, cfg TreeConfig) (*Model, error) {
	return core.Train(set, core.TrainConfig{Tree: cfg})
}

// CrossValidate reports k-fold cross-validation accuracy of a model
// configuration on a labeled set.
func CrossValidate(set *LabeledSet, k int, seed uint64, cfg TreeConfig) (*CVResult, error) {
	return core.CrossValidate(set, k, seed, core.TrainConfig{Tree: cfg})
}

// LoadModel reads a model from a JSON file written by Model.Save; models
// retrain and reload without recompiling the application.
func LoadModel(path string) (*Model, error) { return core.LoadModel(path) }

// GenerateGo renders the model as Go source: the nested-conditional
// decision function the paper's code generator produces.
func GenerateGo(m *Model, pkg, funcName string) string {
	return codegen.Generate(m, pkg, funcName)
}

// RecordColumns returns the column layout of recorded-sample frames for a
// schema: every feature, then policy, chunk, and time_ns.
func RecordColumns(schema *Schema) []string { return core.RecordColumns(schema) }

// Tracing.
type (
	// Tracer records a per-launch timeline around any Hooks component.
	Tracer = trace.Tracer
	// TraceEvent is one recorded kernel launch.
	TraceEvent = trace.Event
	// TraceSummary aggregates a trace per kernel.
	TraceSummary = trace.Summary
)

// NewTracer wraps inner hooks (which may be nil) with timeline recording;
// limit > 0 caps retained events.
func NewTracer(inner Hooks, limit int) *Tracer { return trace.New(inner, limit) }

// SummarizeTrace aggregates trace events per kernel, by total time.
func SummarizeTrace(events []TraceEvent) []TraceSummary { return trace.Summarize(events) }

// SaveChromeTrace writes trace events in the Chrome trace-event JSON
// format (loadable in chrome://tracing or Perfetto).
func SaveChromeTrace(path string, events []TraceEvent) error {
	return trace.SaveChromeTrace(path, events)
}
