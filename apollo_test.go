package apollo_test

import (
	"path/filepath"
	"strings"
	"testing"

	"apollo"
)

// TestPublicAPIRoundTrip drives the full workflow through the public
// facade only: record under each policy variant, label, train,
// cross-validate, save/load, and tune — the complete paper workflow.
func TestPublicAPIRoundTrip(t *testing.T) {
	schema := apollo.TableISchema()
	ann := apollo.NewAnnotations()
	clk := apollo.NewSimClock(apollo.SandyBridgeNode(), 0.05, 1)
	mix := apollo.NewMix().
		With(apollo.OpAdd, 6).With(apollo.OpMulpd, 4).With(apollo.OpMovsd, 8)
	k := apollo.NewKernel("api::work", mix)
	sizes := []int{32, 128, 512, 2048, 8192, 32768, 131072}

	// Record one run per policy variant.
	var frames []*apollo.Frame
	for _, pol := range []apollo.Policy{apollo.SeqExec, apollo.OmpParallelForExec} {
		rec := apollo.NewRecorder(schema, ann, apollo.Params{Policy: pol})
		ctx := apollo.NewSimContext(clk, apollo.Params{})
		ctx.Hooks = rec
		for _, n := range sizes {
			apollo.ForAll(ctx, k, apollo.NewRange(0, n), func(int) {})
		}
		frames = append(frames, rec.Frame())
	}
	all := frames[0]
	all.Append(frames[1])

	set, err := apollo.Label(all, schema, apollo.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	model, err := apollo.Train(set, apollo.TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := apollo.CrossValidate(set, 5, 7, apollo.TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cv.MeanAccuracy < 0.5 {
		t.Errorf("CV accuracy %g too low", cv.MeanAccuracy)
	}

	// Save, reload, tune.
	path := filepath.Join(t.TempDir(), "policy.json")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := apollo.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	tn := apollo.NewTuner(schema, ann, apollo.Params{Policy: apollo.OmpParallelForExec}).
		UsePolicyModel(loaded)
	small, _ := tn.Begin(k, apollo.NewRange(0, 16))
	large, _ := tn.Begin(k, apollo.NewRange(0, 1<<20))
	if small.Policy != apollo.SeqExec {
		t.Errorf("small launch tuned to %v, want seq", small)
	}
	if large.Policy != apollo.OmpParallelForExec {
		t.Errorf("large launch tuned to %v, want omp", large)
	}

	// Generated code is the paper's nested-conditional form.
	src := apollo.GenerateGo(loaded, "tuned", "Decide")
	if !strings.Contains(src, "if numIndices <= ") {
		t.Errorf("generated code missing condition:\n%s", src)
	}
}

// TestRealTeamExecution exercises the wall-clock path of the public API:
// a real goroutine team executing both policies with identical results.
func TestRealTeamExecution(t *testing.T) {
	tm := apollo.NewTeam(4)
	defer tm.Close()
	k := apollo.NewKernel("api::sum", nil)

	run := func(p apollo.Params) []float64 {
		ctx := apollo.NewContext(tm, p)
		out := make([]float64, 10000)
		apollo.ForAll(ctx, k, apollo.NewRange(0, len(out)), func(i int) {
			out[i] = float64(i) * 1.5
		})
		return out
	}
	seq := run(apollo.Params{Policy: apollo.SeqExec})
	omp := run(apollo.Params{Policy: apollo.OmpParallelForExec, Chunk: 64})
	for i := range seq {
		if seq[i] != omp[i] {
			t.Fatalf("policies disagree at %d", i)
		}
	}
}

// TestIndexSetKinds checks the public index-set constructors.
func TestIndexSetKinds(t *testing.T) {
	is := apollo.NewIndexSet(
		apollo.RangeSegment{Begin: 0, End: 4},
		apollo.ListSegment{Indices: []int{10, 12}},
	)
	if is.Len() != 6 || is.NumSegments() != 2 {
		t.Errorf("index set wrong: len=%d segs=%d", is.Len(), is.NumSegments())
	}
	if apollo.NewList([]int{5}).Len() != 1 {
		t.Error("NewList wrong")
	}
}

// TestAnnotationsFlowIntoSamples checks that application features reach
// recorded samples through the public API.
func TestAnnotationsFlowIntoSamples(t *testing.T) {
	schema := apollo.TableISchema()
	ann := apollo.NewAnnotations()
	ann.Set("timestep", 9)
	ann.SetString("problem_name", "sedov")
	clk := apollo.NewSimClock(apollo.SandyBridgeNode(), 0, 0)
	rec := apollo.NewRecorder(schema, ann, apollo.Params{Policy: apollo.SeqExec})
	ctx := apollo.NewSimContext(clk, apollo.Params{})
	ctx.Hooks = rec
	apollo.ForAll(ctx, apollo.NewKernel("api::k", nil), apollo.NewRange(0, 8), func(int) {})
	frame := rec.Frame()
	if frame.Len() != 1 {
		t.Fatal("no sample")
	}
	if frame.At(0, "timestep") != 9 {
		t.Error("timestep annotation lost")
	}
}

// TestRecordColumnsLayout pins the public frame layout contract.
func TestRecordColumnsLayout(t *testing.T) {
	schema := apollo.TableISchema()
	cols := apollo.RecordColumns(schema)
	if len(cols) != schema.Len()+3 {
		t.Fatalf("got %d columns", len(cols))
	}
	tail := cols[len(cols)-3:]
	if tail[0] != "policy" || tail[1] != "chunk" || tail[2] != "time_ns" {
		t.Errorf("trailing columns = %v", tail)
	}
}

// TestTraceFacade drives the tracing exports through the public API.
func TestTraceFacade(t *testing.T) {
	clk := apollo.NewSimClock(apollo.SandyBridgeNode(), 0, 0)
	ctx := apollo.NewSimContext(clk, apollo.Params{Policy: apollo.SeqExec})
	tr := apollo.NewTracer(nil, 0)
	ctx.Hooks = tr
	k := apollo.NewKernel("facade::traced", nil)
	apollo.ForAll(ctx, k, apollo.NewRange(0, 32), func(int) {})
	apollo.ForAll(ctx, k, apollo.NewRange(0, 64), func(int) {})
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("traced %d events", len(events))
	}
	sums := apollo.SummarizeTrace(events)
	if len(sums) != 1 || sums[0].Launches != 2 {
		t.Errorf("summary wrong: %+v", sums)
	}
	path := filepath.Join(t.TempDir(), "t.json")
	if err := apollo.SaveChromeTrace(path, events); err != nil {
		t.Fatal(err)
	}
}

// TestModelSourceFacade hot-swaps a projector set through the public
// SwapSource/UseSource surface.
func TestModelSourceFacade(t *testing.T) {
	schema := apollo.TableISchema()
	var src apollo.SwapSource
	base := apollo.Params{Policy: apollo.SeqExec}
	tn := apollo.NewTuner(schema, apollo.NewAnnotations(), base).UseSource(&src)
	k := apollo.NewKernel("facade::source", nil)

	// Empty source: base parameters.
	if p, ok := tn.Begin(k, apollo.NewRange(0, 8)); !ok || p != base {
		t.Fatalf("empty source gave %+v", p)
	}
	var ms apollo.ModelSource = &src
	if ms.Projectors() == nil {
		t.Fatal("SwapSource returned nil projector set")
	}
	src.Store(&apollo.ProjectorSet{})
	if p, _ := tn.Begin(k, apollo.NewRange(0, 8)); p != base {
		t.Fatalf("empty projector set gave %+v", p)
	}
}
