package apollo_test

// End-to-end test of the model service: record a simulated LULESH run,
// train a model, push it to a disk-backed serving daemon, drive the
// application through a tuner wired to the serving client, then push a
// retrained model mid-run and watch the running tuner's decisions change
// — no restart, no locks on the launch path.

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/client"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/registry"
	"apollo/internal/server"
	"apollo/internal/tuner"
)

// trainOmpEverywhereModel fabricates a retrained model under which the
// parallel variant wins at every size — distinguishable from the real
// recorded model, which sends small launches to sequential execution.
func trainOmpEverywhereModel(t *testing.T, schema *features.Schema) *core.Model {
	t.Helper()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 256, 2048, 16384, 131072} {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = float64(n) * 100
			} else {
				row[schema.Len()+2] = float64(n)
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelServiceHotSwapEndToEnd(t *testing.T) {
	schema := features.TableI()
	machine := platform.SandyBridgeNode()
	desc := descFor(t, "LULESH")
	const modelName = "lulesh/execution_policy"

	// 1. Record: one simulated LULESH run per execution policy.
	all := dataset.NewFrame(core.RecordColumns(schema)...)
	for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
		ann := caliper.New()
		rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: pol})
		clk := platform.NewSimClock(machine, 0.05, 2)
		ctx := raja.NewSimContext(clk, desc.DefaultParams)
		ctx.Hooks = rec
		sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: "sedov", Size: 10})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			sim.Step()
		}
		all.Append(rec.Frame())
	}

	// 2. Train the v1 model from the recording.
	set, err := core.Label(all, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// 3. Serve: a disk-backed registry behind the HTTP API.
	dir := t.TempDir()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg).Handler())
	defer ts.Close()

	// 4. Push v1 the way apollo-train -push does.
	c := client.New(ts.URL, client.Options{})
	if v, err := c.Push(modelName, v1); err != nil || v != 1 {
		t.Fatalf("push v1: version=%d err=%v", v, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "lulesh", "execution_policy.v1.json")); err != nil {
		t.Fatalf("published model not persisted: %v", err)
	}

	// 5. The application process: a tuner reading models through the
	// serving client, with background polling for upgrades.
	src := client.NewSource(c, schema, modelName, "")
	if err := src.Refresh(); err != nil {
		t.Fatal(err)
	}
	tn := tuner.NewTuner(schema, caliper.New(), desc.DefaultParams).UseSource(src)
	stop := src.StartPolling(2 * time.Millisecond)
	defer stop()

	// The v1 model sends a tiny launch to sequential execution; the
	// retrained model will not. This probe is the observable difference.
	probe := func() raja.Policy {
		p, ok := tn.Begin(raja.NewKernel("probe", nil), raja.NewRange(0, 8))
		if !ok {
			t.Fatal("tuner declined the probe launch")
		}
		return p.Policy
	}
	if got := probe(); got != raja.SeqExec {
		t.Fatalf("v1 probe policy = %v, want seq", got)
	}

	runSteps := func(n int) {
		ann := caliper.New()
		clk := platform.NewSimClock(machine, 0, 0)
		ctx := raja.NewSimContext(clk, desc.DefaultParams)
		ctx.Hooks = tn
		sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: "sedov", Size: 10})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			sim.Step()
		}
	}
	runSteps(2)
	midRunDecisions := tn.Decisions()

	// 6. Mid-run upgrade: the training side pushes a retrained model. The
	// poller must install it into the live tuner without a restart.
	v2 := trainOmpEverywhereModel(t, schema)
	if v, err := c.Push(modelName, v2); err != nil || v != 2 {
		t.Fatalf("push v2: version=%d err=%v", v, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for src.Swaps() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if src.Swaps() < 2 {
		t.Fatal("poller never picked up the v2 model")
	}
	if got := probe(); got != raja.OmpParallelForExec {
		t.Fatalf("post-upgrade probe policy = %v, want omp (model not swapped)", got)
	}
	if cached := c.Cached(modelName); cached == nil || cached.Version != 2 {
		t.Errorf("client cache did not advance to v2: %+v", cached)
	}

	// 7. The same tuner keeps running — same process, new model.
	runSteps(2)
	if tn.Decisions() <= midRunDecisions {
		t.Error("tuner stopped deciding after the swap")
	}
}
