package apollo_test

// End-to-end test of closed-loop lineage tracing: every process in the
// loop — the serving replica, the continuous trainer, a syncing peer
// replica, and the live tuner — journals loop events into one directory,
// and the stitcher must reassemble them into a single complete timeline
// for the retrain cycle: drift fires on a stale champion, a challenger
// is trained, duels, publishes with a lineage block, the peer replica
// pulls it, the running tuner hot-swaps to it, and post-swap telemetry
// arrives attributed to the new version. The lineage chain (parent
// version, loop ID) must be unbroken across all of it.

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/client"
	"apollo/internal/drift"
	"apollo/internal/features"
	"apollo/internal/fleet"
	"apollo/internal/looptrace"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/registry"
	"apollo/internal/server"
	"apollo/internal/telemetry"
	"apollo/internal/trainer"
	"apollo/internal/tuner"
)

func TestClosedLoopLineageChain(t *testing.T) {
	schema := features.TableI()
	machine := platform.SandyBridgeNode()
	desc := descFor(t, "LULESH")
	const modelName = "lulesh/execution_policy"

	// Every process journals into the same directory under its own
	// actor-named file, the way a single-node fleet smoke runs.
	journalDir := t.TempDir()
	newTracer := func(actor string) *looptrace.Tracer {
		tr := looptrace.New(actor, looptrace.Options{})
		if err := tr.OpenJournal(journalDir); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	trServe := newTracer("serve:r1")
	trTrain := newTracer("traind")
	trPeer := newTracer("serve:r2")
	trTune := newTracer("tune")

	// Primary replica: registry + ingestion + loop tracing.
	regDir, spoolDir := t.TempDir(), t.TempDir()
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.WithTelemetryDir(spoolDir), server.WithLoopTrace(trServe))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Stale champion (no lineage: a hand publish predates the loop).
	c := client.New(ts.URL, client.Options{})
	if v, err := c.Push(modelName, trainOmpEverywhereModel(t, schema)); err != nil || v != 1 {
		t.Fatalf("push stale champion: version=%d err=%v", v, err)
	}

	// The application process, with swap tracing and batch attribution.
	ann := caliper.New()
	src := client.NewSource(c, schema, modelName, "")
	src.SetTrace(trTune)
	if err := src.Refresh(); err != nil {
		t.Fatal(err)
	}
	stopPoll := src.StartPolling(2 * time.Millisecond)
	defer stopPoll()

	rec := telemetry.NewRecorder(schema, ann, telemetry.Options{SampleEvery: 1, Capacity: 1 << 16})
	up := client.NewUploader(c, modelName, rec, client.UploaderOptions{
		MaxPending: 1 << 17,
		Attribution: func() (int, string) {
			cached := c.Cached(modelName)
			if cached == nil {
				return 0, ""
			}
			loop := ""
			if cached.Lineage != nil {
				loop = cached.Lineage.LoopID
			}
			return cached.Version, loop
		},
	})
	upCtx, upCancel := context.WithCancel(context.Background())
	upDone := up.Start(upCtx, 2*time.Millisecond)
	defer func() { upCancel(); <-upDone }()

	tn := tuner.NewTuner(schema, ann, desc.DefaultParams).
		UseSource(src).
		UseTelemetry(rec).
		ExploreEvery(4)
	clk := platform.NewSimClock(machine, 0.05, 7)
	ctx := raja.NewSimContext(clk, desc.DefaultParams)
	ctx.Hooks = tn
	sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: "sedov", Size: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		sim.Step()
	}
	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}
	// Freeze the background uploader so the trainer window is stable
	// (see the closed-loop e2e test for why); direct flushes still work.
	upCancel()
	<-upDone

	// Continuous trainer with loop tracing and a lineage identity.
	tr, err := trainer.New(
		telemetry.NewCursor(filepath.Join(spoolDir, "lulesh", "execution_policy")),
		trainer.NewClientPublisher(client.New(ts.URL, client.Options{})),
		trainer.Config{
			Name:   modelName,
			Schema: schema,
			Drift:  drift.Config{MinRows: 4},
			ID:     "traind-e2e",
			Trace:  trTrain,
			Logf:   t.Logf,
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trigger == nil || !res.Published || res.Version != 2 {
		t.Fatalf("retrain step = %+v, want drift-published v2", res)
	}
	if res.LoopID == "" || res.ParentVersion != 1 {
		t.Fatalf("step carries loop=%q parent=%d, want a loop ID and parent 1", res.LoopID, res.ParentVersion)
	}

	// The published envelope must carry the lineage block end to end.
	got, err := c.Fetch(modelName)
	if err != nil {
		t.Fatal(err)
	}
	lin := got.Lineage
	if lin == nil {
		t.Fatal("fetched v2 envelope has no lineage block")
	}
	if lin.LoopID != res.LoopID || lin.ParentVersion != 1 || lin.Trainer != "traind-e2e" {
		t.Fatalf("lineage = %+v, want loop %s parent 1 trainer traind-e2e", lin, res.LoopID)
	}
	if lin.DriftReason != "mispredict" || lin.DuelChampionNS <= 0 || lin.DuelChallengerNS <= 0 {
		t.Fatalf("lineage drift/duel snapshot incomplete: %+v", lin)
	}
	if lin.WindowRows <= 0 || lin.HoldoutRows <= 0 || lin.SampleCounts["local"] <= 0 {
		t.Fatalf("lineage training-window snapshot incomplete: %+v", lin)
	}

	// A peer replica pulls the new version; provenance must survive the
	// raw-envelope hop byte for byte.
	reg2, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sn := fleet.NewSyncer(reg2, []fleet.Peer{{ID: "r1", Base: ts.URL}},
		fleet.SyncerOptions{Logf: t.Logf, Trace: trPeer})
	if n := sn.SyncOnce(); n != 1 {
		t.Fatalf("peer sync pulled %d models, want 1", n)
	}
	e2, ok := reg2.Get(modelName)
	if !ok || e2.Lineage == nil || e2.Lineage.LoopID != res.LoopID {
		t.Fatalf("peer replica entry lineage = %+v, want loop %s", e2.Lineage, res.LoopID)
	}

	// The running tuner hot-swaps to v2 (client-swap event, same loop).
	deadline := time.Now().Add(10 * time.Second)
	for src.Swaps() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if src.Swaps() < 2 {
		t.Fatal("running tuner never swapped to the retrained model")
	}

	// Post-swap telemetry closes the attribution leg: the next batch is
	// stamped with v2 and the loop ID.
	sim.Step()
	if err := up.Flush(); err != nil {
		t.Fatal(err)
	}

	// Stitch all four journals into the causal timeline.
	for _, tr := range []*looptrace.Tracer{trServe, trTrain, trPeer, trTune} {
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	events, err := looptrace.ReadJournalDir(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	rep := looptrace.Stitch(events)
	var loop *looptrace.LoopTimeline
	for i := range rep.Loops {
		if rep.Loops[i].Loop == res.LoopID {
			loop = &rep.Loops[i]
		}
	}
	if loop == nil {
		t.Fatalf("stitched report has no timeline for loop %s (loops: %d)", res.LoopID, len(rep.Loops))
	}
	if !loop.Complete || !loop.Drift {
		t.Fatalf("loop %s complete=%v drift=%v, want a complete drift loop", res.LoopID, loop.Complete, loop.Drift)
	}
	if loop.Version != 2 || loop.Parent != 1 {
		t.Fatalf("loop published v%d<-v%d, want v2<-v1", loop.Version, loop.Parent)
	}
	if loop.ReactionNS <= 0 {
		t.Fatalf("loop reaction time = %.0fns, want > 0", loop.ReactionNS)
	}
	kinds := map[string][]string{} // kind -> actors that emitted it
	for _, ev := range loop.Events {
		kinds[ev.Kind] = append(kinds[ev.Kind], ev.Actor)
	}
	for kind, wantActor := range map[string]string{
		"drift-fired":      "traind",
		"retrain-start":    "traind",
		"retrain-end":      "traind",
		"duel":             "traind",
		"publish":          "serve:r1",
		"sync-pull":        "serve:r2",
		"client-swap":      "tune",
		"telemetry-ingest": "serve:r1",
	} {
		found := false
		for _, actor := range kinds[kind] {
			if actor == wantActor {
				found = true
			}
		}
		if !found {
			t.Errorf("loop %s missing %s from %s (have %v)", res.LoopID, kind, wantActor, kinds[kind])
		}
	}
	for _, stage := range []string{"detect", "retrain", "publish", "swap", "total"} {
		if loop.Stages[stage] <= 0 {
			t.Errorf("stage %q = %.0fns, want > 0 (stages: %v)", stage, loop.Stages[stage], loop.Stages)
		}
	}
	if rep.Reaction.Count == 0 || rep.Reaction.P99NS <= 0 {
		t.Errorf("report reaction stats empty: %+v", rep.Reaction)
	}
}
