package apollo_test

import (
	"io"
	"sync"
	"testing"

	"apollo"
	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/harness"
	"apollo/internal/raja"
	"apollo/internal/team"
	"apollo/internal/tuner"
)

// benchRunner is shared across the experiment benchmarks so the training
// data of the three applications is recorded once per `go test -bench`.
var (
	benchRunnerOnce sync.Once
	benchRunner     *harness.Runner
)

func sharedRunner() *harness.Runner {
	benchRunnerOnce.Do(func() {
		benchRunner = harness.NewRunner(harness.Options{Out: io.Discard, Quick: true, Seed: 99})
	})
	return benchRunner
}

// benchExperiment runs one paper artifact per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := sharedRunner()
	// Warm the recorded-data cache outside the timer.
	if err := r.Run(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation.

func BenchmarkFig1PolicyVariation(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFig2DynamicBest(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig4ExampleTree(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkTable1Features(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkTable2Accuracy(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkFig6PredictedPolicies(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7PredictedChunks(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8FeatureImportance(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9FeatureReduction(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10DepthReduction(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11Speedup(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12CleverLeafScaling(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13ARESScaling(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkTable3CrossApp(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkTable4Taxonomy(b *testing.B)         { benchExperiment(b, "table4") }

// --- Overhead micro-benchmarks: the paper's "fast decisions" claim. ---

// trainedBenchModel builds a small policy model over synthetic samples.
func trainedBenchModel(b *testing.B) (*core.Model, *features.Schema) {
	b.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{16, 64, 256, 1024, 4096, 16384, 65536, 262144} {
		seq := make([]float64, schema.Len()+3)
		omp := make([]float64, schema.Len()+3)
		seq[ni], omp[ni] = float64(n), float64(n)
		seq[schema.Len()] = float64(raja.SeqExec)
		omp[schema.Len()] = float64(raja.OmpParallelForExec)
		seq[schema.Len()+2] = float64(n) * 10
		omp[schema.Len()+2] = 8000 + float64(n)*10/8
		frame.AddRow(seq)
		frame.AddRow(omp)
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		b.Fatal(err)
	}
	model, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return model, schema
}

// BenchmarkModelPredict measures one raw tree evaluation — the inner loop
// of every Apollo decision.
func BenchmarkModelPredict(b *testing.B) {
	model, schema := trainedBenchModel(b)
	x := make([]float64, schema.Len())
	x[schema.Index(features.NumIndices)] = 4096
	proj := model.NewProjector(schema)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += proj.Predict(x)
	}
	_ = sink
}

// BenchmarkTunerDecision measures a full apollo::begin: feature
// extraction from the launch plus model evaluation.
func BenchmarkTunerDecision(b *testing.B) {
	model, schema := trainedBenchModel(b)
	ann := caliper.New()
	ann.Set(features.Timestep, 10)
	tn := tuner.NewTuner(schema, ann, raja.Params{}).UsePolicyModel(model)
	k := raja.NewKernel("bench::decision", nil)
	iset := raja.NewRange(0, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.Begin(k, iset)
	}
}

// BenchmarkForAllSeq measures the dispatch overhead of an uninstrumented
// sequential forall (empty 64-iteration body).
func BenchmarkForAllSeq(b *testing.B) {
	ctx := &raja.Context{Default: raja.Params{Policy: raja.SeqExec}}
	k := raja.NewKernel("bench::seq", nil)
	iset := raja.NewRange(0, 64)
	body := func(i int) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raja.ForAll(ctx, k, iset, body)
	}
}

// BenchmarkForAllTuned measures a tuned sequential forall: the full
// Apollo hook path around the same 64-iteration body.
func BenchmarkForAllTuned(b *testing.B) {
	model, schema := trainedBenchModel(b)
	ann := caliper.New()
	tn := tuner.NewTuner(schema, ann, raja.Params{}).UsePolicyModel(model)
	ctx := &raja.Context{Default: raja.Params{Policy: raja.SeqExec}, Hooks: tn}
	k := raja.NewKernel("bench::tuned", nil)
	iset := raja.NewRange(0, 64)
	body := func(i int) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raja.ForAll(ctx, k, iset, body)
	}
}

// BenchmarkTeamParallelFor measures the real fork/join cost of the
// goroutine worker team.
func BenchmarkTeamParallelFor(b *testing.B) {
	tm := team.New(4)
	defer tm.Close()
	body := func(i int) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.ParallelFor(0, 1024, 64, body)
	}
}

// BenchmarkTreeTraining measures off-line CART induction on a
// representative labeled set (the cost Apollo moves out of the runtime).
func BenchmarkTreeTraining(b *testing.B) {
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	rng := dataset.NewRNG(5)
	ni := schema.Index(features.NumIndices)
	fs := schema.Index(features.FuncSize)
	for i := 0; i < 500; i++ {
		n := float64(rng.Intn(100000) + 1)
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = n
			row[fs] = float64(rng.Intn(80))
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = n * 10
			} else {
				row[schema.Len()+2] = 8000 + n*10/8
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(set, core.TrainConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratedDecisionFunc measures the compiled-style decision
// closure produced by the code generator.
func BenchmarkGeneratedDecisionFunc(b *testing.B) {
	model, schema := trainedBenchModel(b)
	fn := compileFunc(model)
	x := make([]float64, schema.Len())
	x[schema.Index(features.NumIndices)] = 4096
	base := apollo.Params{Policy: apollo.OmpParallelForExec}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base = fn(x, base)
	}
	_ = base
}

// compileFunc mirrors codegen.CompileFunc through the public surface.
func compileFunc(m *core.Model) func([]float64, raja.Params) raja.Params {
	tree := m.Tree
	return func(x []float64, base raja.Params) raja.Params {
		base.Policy = raja.Policy(tree.Predict(x))
		return base
	}
}

// BenchmarkTunerDecisionParallel drives one tuner from all procs at
// once: Begin is lock-free, so throughput should scale instead of
// serializing on a mutex.
func BenchmarkTunerDecisionParallel(b *testing.B) {
	model, schema := trainedBenchModel(b)
	ann := caliper.New()
	ann.Set(features.Timestep, 10)
	tn := tuner.NewTuner(schema, ann, raja.Params{}).UsePolicyModel(model)
	iset := raja.NewRange(0, 5000)
	b.RunParallel(func(pb *testing.PB) {
		k := raja.NewKernel("bench::decision-par", nil)
		for pb.Next() {
			tn.Begin(k, iset)
		}
	})
}
