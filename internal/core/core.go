// Package core implements Apollo's primary contribution: the off-line
// model-generation pipeline that turns recorded kernel samples into
// lightweight, reusable decision models for run-time tuning.
//
// The pipeline mirrors Section III-B of the paper. Training runs record
// one sample per kernel execution — a Table I feature vector plus the
// parameter values used and the measured runtime. Because each input
// problem is run once per candidate parameter value, the same feature
// vector appears under many variants; Label groups the samples by feature
// vector and labels each unique vector with the variant that achieved the
// fastest mean runtime. Train fits a CART decision tree to the labeled
// set; CrossValidate reports 10-fold accuracy (Table II); Reduce retrains
// on the top-k most important features and prunes to a depth cap, the
// lightweight configuration the paper deploys (5 features, depth 15).
package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
)

// Parameter identifies which tuning parameter a model predicts.
type Parameter int

// The two tuning parameters evaluated in the paper.
const (
	// ExecutionPolicy predicts sequential vs. parallel execution.
	ExecutionPolicy Parameter = iota
	// ChunkSize predicts the OpenMP static-schedule chunk size.
	ChunkSize
)

// String names the parameter.
func (p Parameter) String() string {
	switch p {
	case ExecutionPolicy:
		return "execution_policy"
	case ChunkSize:
		return "chunk_size"
	}
	return fmt.Sprintf("parameter(%d)", int(p))
}

// NumClasses returns the number of candidate values for the parameter:
// 2 policies, or the 11 chunk sizes of the paper's training grid.
func (p Parameter) NumClasses() int {
	switch p {
	case ExecutionPolicy:
		return int(raja.NumPolicies)
	case ChunkSize:
		return len(raja.ChunkSizes)
	}
	return 0
}

// ClassName renders a class label of the parameter for reports.
func (p Parameter) ClassName(label int) string {
	switch p {
	case ExecutionPolicy:
		return raja.Policy(label).String()
	case ChunkSize:
		if label >= 0 && label < len(raja.ChunkSizes) {
			return strconv.Itoa(raja.ChunkSizes[label])
		}
	}
	return strconv.Itoa(label)
}

// Reserved column names in recorded sample frames, alongside the feature
// columns of the schema.
const (
	ColPolicy = "policy"
	ColChunk  = "chunk"
	ColTimeNS = "time_ns"
)

// RecordColumns returns the full column list of a recorded-sample frame
// for the given feature schema: every feature, then policy, chunk and
// time_ns.
func RecordColumns(schema *features.Schema) []string {
	cols := schema.Names()
	return append(cols, ColPolicy, ColChunk, ColTimeNS)
}

// ChunkClass maps a chunk size to its class label in raja.ChunkSizes,
// or -1 if the size is not on the training grid.
func ChunkClass(chunk int) int {
	for i, c := range raja.ChunkSizes {
		if c == chunk {
			return i
		}
	}
	return -1
}

// LabeledSet is a classification dataset: feature vectors and the label
// (fastest variant) of each.
type LabeledSet struct {
	Schema *features.Schema
	Param  Parameter
	X      [][]float64
	Y      []int
	// MeanTimes[i][c] is the mean recorded runtime (ns) of vector i
	// under class c, or NaN when unobserved. It allows the harness to
	// score predictions by runtime, not just accuracy (paper Fig. 6/7).
	MeanTimes [][]float64
	// Weights[i] is the mean number of times vector i was launched per
	// variant run, so time totals can be weighted by launch frequency.
	Weights []float64
}

// Len returns the number of labeled samples.
func (s *LabeledSet) Len() int { return len(s.X) }

// variantStats accumulates runtimes of one feature vector under one class.
type variantStats struct {
	total float64
	count int
}

// Label builds the labeled training set for the given parameter from a
// frame of recorded samples. The frame must contain every feature of the
// schema plus the policy, chunk and time_ns columns. For ExecutionPolicy,
// all samples participate and the class is the policy; for ChunkSize, only
// parallel samples whose chunk lies on the training grid participate.
// Each unique feature vector becomes one labeled sample whose label is the
// class with the lowest mean runtime.
func Label(frame *dataset.Frame, schema *features.Schema, param Parameter) (*LabeledSet, error) {
	featIdx := make([]int, schema.Len())
	for i, name := range schema.Names() {
		j := frame.Col(name)
		if j < 0 {
			return nil, fmt.Errorf("core: frame is missing feature column %q", name)
		}
		featIdx[i] = j
	}
	polIdx := frame.Col(ColPolicy)
	chunkIdx := frame.Col(ColChunk)
	timeIdx := frame.Col(ColTimeNS)
	if polIdx < 0 || chunkIdx < 0 || timeIdx < 0 {
		return nil, fmt.Errorf("core: frame is missing policy/chunk/time_ns columns")
	}

	numClasses := param.NumClasses()
	type group struct {
		x     []float64
		stats []variantStats
		order int
	}
	groups := make(map[string]*group)
	var ordered []*group

	var keyBuf strings.Builder
	for r := 0; r < frame.Len(); r++ {
		row := frame.Row(r)
		var class int
		switch param {
		case ExecutionPolicy:
			class = int(row[polIdx])
		case ChunkSize:
			if raja.Policy(row[polIdx]) != raja.OmpParallelForExec {
				continue
			}
			class = ChunkClass(int(row[chunkIdx]))
			if class < 0 {
				continue
			}
		}
		if class < 0 || class >= numClasses {
			return nil, fmt.Errorf("core: row %d has out-of-range class %d for %v", r, class, param)
		}

		keyBuf.Reset()
		for _, j := range featIdx {
			keyBuf.WriteString(strconv.FormatFloat(row[j], 'g', -1, 64))
			keyBuf.WriteByte('|')
		}
		key := keyBuf.String()
		g := groups[key]
		if g == nil {
			x := make([]float64, len(featIdx))
			for i, j := range featIdx {
				x[i] = row[j]
			}
			g = &group{x: x, stats: make([]variantStats, numClasses), order: len(ordered)}
			groups[key] = g
			ordered = append(ordered, g)
		}
		g.stats[class].total += row[timeIdx]
		g.stats[class].count++
	}

	set := &LabeledSet{Schema: schema, Param: param}
	for _, g := range ordered {
		best, bestTime := -1, math.Inf(1)
		means := make([]float64, numClasses)
		observed, totalCount := 0, 0
		for c, st := range g.stats {
			if st.count == 0 {
				means[c] = math.NaN()
				continue
			}
			observed++
			totalCount += st.count
			means[c] = st.total / float64(st.count)
			if means[c] < bestTime {
				best, bestTime = c, means[c]
			}
		}
		if observed < 2 {
			// A vector observed under a single variant carries no
			// preference signal; skip it, as the paper's labeling does.
			continue
		}
		set.X = append(set.X, g.x)
		set.Y = append(set.Y, best)
		set.MeanTimes = append(set.MeanTimes, means)
		set.Weights = append(set.Weights, float64(totalCount)/float64(observed))
	}
	if len(set.X) == 0 {
		return nil, fmt.Errorf("core: no feature vector was observed under multiple %v variants", param)
	}
	return set, nil
}
