package core

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"apollo/internal/features"
)

func envelopeTestModel(t *testing.T) *Model {
	t.Helper()
	schema := testSchema()
	set, err := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(set, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSchemaHashStableAndSensitive(t *testing.T) {
	m := envelopeTestModel(t)
	h1, h2 := m.SchemaHash(), m.SchemaHash()
	if h1 != h2 || len(h1) != 16 {
		t.Fatalf("hash unstable or malformed: %q vs %q", h1, h2)
	}
	// Same schema + param on a different tree hashes identically (the hash
	// covers the prediction contract, not the fitted weights)...
	other := envelopeTestModel(t)
	if other.SchemaHash() != h1 {
		t.Error("identical contract hashed differently")
	}
	// ...while changing the parameter or the feature set changes it.
	chunk := *m
	chunk.Param = ChunkSize
	if chunk.SchemaHash() == h1 {
		t.Error("parameter change did not change the hash")
	}
	wider := *m
	wider.Schema = features.NewSchema(features.NumIndices, features.Timestep)
	if wider.SchemaHash() == h1 {
		t.Error("schema change did not change the hash")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	m := envelopeTestModel(t)
	env := WrapModel("lulesh/policy", 3, m)
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"apollo-model-envelope-v1"`) {
		t.Error("envelope format id missing from wire form")
	}
	var back Envelope
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "lulesh/policy" || back.Version != 3 || back.SchemaHash != m.SchemaHash() {
		t.Errorf("round trip lost fields: %+v", back)
	}
	x := make([]float64, m.Schema.Len())
	if back.Model.Predict(x) != m.Predict(x) {
		t.Error("round-tripped model predicts differently")
	}
}

func TestEnvelopeRejectsSchemaHashMismatch(t *testing.T) {
	m := envelopeTestModel(t)
	data, err := json.Marshal(WrapModel("x", 1, m))
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), m.SchemaHash(), "0000000000000000", 1)
	var e Envelope
	if err := json.Unmarshal([]byte(tampered), &e); err == nil {
		t.Error("tampered schema hash accepted")
	}
}

func TestParseModelOrEnvelope(t *testing.T) {
	m := envelopeTestModel(t)

	// Envelope form keeps its version.
	envData, _ := json.Marshal(WrapModel("n", 5, m))
	e, err := ParseModelOrEnvelope(envData)
	if err != nil || e.Version != 5 {
		t.Fatalf("envelope parse: v=%d err=%v", e.Version, err)
	}

	// A bare apollo-model-v1 document (the pre-service format) still
	// parses, wrapped at version 0.
	bare, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ParseModelOrEnvelope(bare)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version != 0 || e2.SchemaHash != m.SchemaHash() || e2.Model == nil {
		t.Errorf("bare model parse: %+v", e2)
	}

	for _, junk := range []string{"", "{}", `{"format":"wat"}`, "[1,2]"} {
		if _, err := ParseModelOrEnvelope([]byte(junk)); err == nil {
			t.Errorf("junk %q accepted", junk)
		}
	}
}

// TestProjectorConcurrentPredict pins the pool-backed scratch buffer:
// one shared projector must serve concurrent predictors (the serving
// daemon and a multi-context tuner both do this). Run under -race.
func TestProjectorConcurrentPredict(t *testing.T) {
	m := envelopeTestModel(t)
	proj := m.NewProjector(m.Schema)
	want0 := proj.Predict([]float64{10})
	want1 := proj.Predict([]float64{50000})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if proj.Predict([]float64{10}) != want0 || proj.Predict([]float64{50000}) != want1 {
					t.Error("concurrent predict returned wrong class")
					return
				}
			}
		}()
	}
	wg.Wait()
}
