package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/raja"
)

// Model is a trained, reusable tuning model: a decision tree over a
// feature schema, predicting one tuning parameter. Models serialize to
// JSON and load at runtime without recompiling the application.
type Model struct {
	Param  Parameter
	Schema *features.Schema
	Tree   *dtree.Tree
}

// TrainConfig controls model training.
type TrainConfig struct {
	// Tree configures the underlying CART induction.
	Tree dtree.Config
}

// Train fits a decision-tree model to a labeled set.
func Train(set *LabeledSet, cfg TrainConfig) (*Model, error) {
	cfg.Tree.FeatureNames = set.Schema.Names()
	tree, err := dtree.Train(set.X, set.Y, set.Param.NumClasses(), cfg.Tree)
	if err != nil {
		return nil, err
	}
	return &Model{Param: set.Param, Schema: set.Schema, Tree: tree}, nil
}

// Predict returns the predicted class for a feature vector laid out by the
// model's own schema.
func (m *Model) Predict(x []float64) int { return m.Tree.Predict(x) }

// Params converts a predicted class into execution parameters, merging it
// into base (so a policy model leaves the chunk choice alone and vice
// versa). This is the model_params blackboard write of the paper.
func (m *Model) Params(class int, base raja.Params) raja.Params {
	switch m.Param {
	case ExecutionPolicy:
		base.Policy = raja.Policy(class)
	case ChunkSize:
		if class >= 0 && class < len(raja.ChunkSizes) {
			base.Chunk = raja.ChunkSizes[class]
		}
	}
	return base
}

// Projector maps feature vectors laid out by a source schema (typically
// the full Table I schema the recorder uses) into the model's schema. The
// mapping is precomputed so the per-launch cost is a few slice reads.
type Projector struct {
	model *Model
	idx   []int // model feature i reads source[idx[i]]; -1 reads 0
	buf   []float64
}

// NewProjector builds a projector from the source schema onto the model.
func (m *Model) NewProjector(source *features.Schema) *Projector {
	p := &Projector{model: m, idx: make([]int, m.Schema.Len()), buf: make([]float64, m.Schema.Len())}
	for i, name := range m.Schema.Names() {
		p.idx[i] = source.Index(name)
	}
	return p
}

// Predict projects the source-layout vector and evaluates the model.
// It allocates nothing and is safe for single-goroutine hot paths.
func (p *Projector) Predict(source []float64) int {
	for i, j := range p.idx {
		if j >= 0 {
			p.buf[i] = source[j]
		} else {
			p.buf[i] = 0
		}
	}
	return p.model.Tree.Predict(p.buf)
}

// FeatureRanking returns the model's features ordered by decreasing Gini
// importance, with their normalized importances (paper Fig. 8).
func (m *Model) FeatureRanking() ([]string, []float64) {
	imp := m.Tree.Importances()
	names := m.Schema.Names()
	order := make([]int, len(imp))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return imp[order[a]] > imp[order[b]] })
	rankedNames := make([]string, len(order))
	rankedImp := make([]float64, len(order))
	for k, i := range order {
		rankedNames[k] = names[i]
		rankedImp[k] = imp[i]
	}
	return rankedNames, rankedImp
}

// Reduce retrains the model on its top-k most important features and
// prunes the result to maxDepth (0 leaves depth unlimited). This produces
// the paper's lightweight deployment configuration (Section IV-B: top 5
// features, depth 15).
func (m *Model) Reduce(set *LabeledSet, topK, maxDepth int, cfg TrainConfig) (*Model, error) {
	names, _ := m.FeatureRanking()
	if topK > len(names) {
		topK = len(names)
	}
	keep := names[:topK]
	reducedSchema := set.Schema.Select(keep...)
	reduced := &LabeledSet{
		Schema:    reducedSchema,
		Param:     set.Param,
		Y:         set.Y,
		MeanTimes: set.MeanTimes,
		Weights:   set.Weights,
	}
	for _, x := range set.X {
		reduced.X = append(reduced.X, set.Schema.Project(x, reducedSchema))
	}
	cfg.Tree.MaxDepth = maxDepth
	return Train(reduced, cfg)
}

// modelJSON is the on-disk form of a Model.
type modelJSON struct {
	Format    string      `json:"format"`
	Parameter string      `json:"parameter"`
	Features  []string    `json:"features"`
	Tree      *dtree.Tree `json:"tree"`
}

const modelFormatID = "apollo-model-v1"

// MarshalJSON encodes the model.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		Format:    modelFormatID,
		Parameter: m.Param.String(),
		Features:  m.Schema.Names(),
		Tree:      m.Tree,
	})
}

// UnmarshalJSON decodes a model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Format != modelFormatID {
		return fmt.Errorf("core: unknown model format %q (want %q)", j.Format, modelFormatID)
	}
	switch j.Parameter {
	case ExecutionPolicy.String():
		m.Param = ExecutionPolicy
	case ChunkSize.String():
		m.Param = ChunkSize
	default:
		return fmt.Errorf("core: unknown parameter %q", j.Parameter)
	}
	if j.Tree == nil {
		return fmt.Errorf("core: model has no tree")
	}
	m.Schema = features.NewSchema(j.Features...)
	m.Tree = j.Tree
	return nil
}

// Save writes the model to the named file as indented JSON.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadModel reads a model from the named JSON file.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: loading %s: %w", path, err)
	}
	return &m, nil
}
