package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"

	"apollo/internal/ctree"
	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/raja"
)

// Model is a trained, reusable tuning model: a decision tree over a
// feature schema, predicting one tuning parameter. Models serialize to
// JSON and load at runtime without recompiling the application.
type Model struct {
	Param  Parameter
	Schema *features.Schema
	Tree   *dtree.Tree
}

// TrainConfig controls model training.
type TrainConfig struct {
	// Tree configures the underlying CART induction.
	Tree dtree.Config
}

// Train fits a decision-tree model to a labeled set.
func Train(set *LabeledSet, cfg TrainConfig) (*Model, error) {
	cfg.Tree.FeatureNames = set.Schema.Names()
	tree, err := dtree.Train(set.X, set.Y, set.Param.NumClasses(), cfg.Tree)
	if err != nil {
		return nil, err
	}
	return &Model{Param: set.Param, Schema: set.Schema, Tree: tree}, nil
}

// Predict returns the predicted class for a feature vector laid out by the
// model's own schema.
func (m *Model) Predict(x []float64) int { return m.Tree.Predict(x) }

// Compile flattens the model's tree into its compiled form (see package
// ctree). Publish-time consumers — the registry, the serving client,
// projector construction — call this once per model swap so the hot path
// never touches the interpreted node structs.
func (m *Model) Compile() (*ctree.Tree, error) { return ctree.Compile(m.Tree) }

// Params converts a predicted class into execution parameters, merging it
// into base (so a policy model leaves the chunk choice alone and vice
// versa). This is the model_params blackboard write of the paper.
func (m *Model) Params(class int, base raja.Params) raja.Params {
	switch m.Param {
	case ExecutionPolicy:
		base.Policy = raja.Policy(class)
	case ChunkSize:
		if class >= 0 && class < len(raja.ChunkSizes) {
			base.Chunk = raja.ChunkSizes[class]
		}
	}
	return base
}

// Projector maps feature vectors laid out by a source schema (typically
// the full Table I schema the recorder uses) into the model's schema. The
// mapping is precomputed so the per-launch cost is a few slice reads.
type Projector struct {
	model *Model
	idx   []int // model feature i reads source[idx[i]]; -1 reads 0
	src   []int32
	ct    *ctree.Tree
	fn    func(x []float64) int
	pool  sync.Pool
}

// NewProjector builds a projector from the source schema onto the model,
// compiling the tree and specializing the predict closure — projector
// construction is the model-swap seam, so this is where publish-time
// compilation lands for the tuner path. A tree the compiler rejects
// (malformed structure) falls back to the interpreted walk.
func (m *Model) NewProjector(source *features.Schema) *Projector {
	p := &Projector{model: m, idx: make([]int, m.Schema.Len())}
	p.src = make([]int32, len(p.idx))
	for i, name := range m.Schema.Names() {
		p.idx[i] = source.Index(name)
		p.src[i] = int32(p.idx[i])
	}
	if ct, err := ctree.Compile(m.Tree); err == nil {
		p.ct = ct
		p.fn = ct.Func()
	}
	p.pool.New = func() any {
		buf := make([]float64, len(p.idx))
		return &buf
	}
	return p
}

// Compiled returns the projector's compiled tree, nil when compilation
// was rejected and the projector runs interpreted.
func (p *Projector) Compiled() *ctree.Tree { return p.ct }

// SourceIndex returns the model→source feature index mapping (-1 for
// model features the source lacks) in the form ctree.DecodeOffsets
// takes. Callers must not mutate it.
func (p *Projector) SourceIndex() []int32 { return p.src }

// Predict projects the source-layout vector and evaluates the model.
// Scratch space comes from an internal pool, so it allocates nothing in
// steady state and is safe for concurrent callers — the tuner evaluates
// one shared projector from many goroutine contexts at once.
func (p *Projector) Predict(source []float64) int {
	bufp := p.pool.Get().(*[]float64)
	buf := *bufp
	for i, j := range p.idx {
		if j >= 0 {
			buf[i] = source[j]
		} else {
			buf[i] = 0
		}
	}
	var class int
	if p.fn != nil {
		class = p.fn(buf)
	} else {
		class = p.model.Tree.Predict(buf)
	}
	p.pool.Put(bufp)
	return class
}

// Model returns the model the projector evaluates.
func (p *Projector) Model() *Model { return p.model }

// PredictTrail is Predict with decision provenance: it records the
// root-to-leaf trail into the caller's buffer, with each step's Feature
// rewritten from the model's schema to the projector's *source* schema
// (-1 for model features the source lacks, which project as zero). The
// flight recorder stores source-schema indices so one feature-name table
// explains every decision regardless of which reduced model made it.
// Like Predict, it allocates nothing and is safe for concurrent callers.
//
//apollo:hotpath
func (p *Projector) PredictTrail(source []float64, trail []dtree.TrailStep) (class, steps int) {
	bufp := p.pool.Get().(*[]float64)
	buf := *bufp
	for i, j := range p.idx {
		if j >= 0 {
			buf[i] = source[j]
		} else {
			buf[i] = 0
		}
	}
	if p.ct != nil {
		class, steps = p.ct.PredictTrail(buf, trail)
	} else {
		class, steps = p.model.Tree.PredictTrail(buf, trail)
	}
	for i := 0; i < steps; i++ {
		trail[i].Feature = int32(p.idx[trail[i].Feature])
	}
	p.pool.Put(bufp)
	return class, steps
}

// PredictOffsets is PredictTrail in the compact flight-recorder
// encoding: it evaluates the compiled tree while recording visited node
// offsets (see ctree.PredictOffsets). Callers must gate on Compiled()
// being non-nil; the offsets decode against Compiled's layout with
// SourceIndex as the feature mapping. Allocation-free and safe for
// concurrent callers.
//
//apollo:hotpath
func (p *Projector) PredictOffsets(source []float64, offs []int32) (class, n int) {
	bufp := p.pool.Get().(*[]float64)
	buf := *bufp
	for i, j := range p.idx {
		if j >= 0 {
			buf[i] = source[j]
		} else {
			buf[i] = 0
		}
	}
	class, n = p.ct.PredictOffsets(buf, offs)
	p.pool.Put(bufp)
	return class, n
}

// FeatureRanking returns the model's features ordered by decreasing Gini
// importance, with their normalized importances (paper Fig. 8).
func (m *Model) FeatureRanking() ([]string, []float64) {
	imp := m.Tree.Importances()
	names := m.Schema.Names()
	order := make([]int, len(imp))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return imp[order[a]] > imp[order[b]] })
	rankedNames := make([]string, len(order))
	rankedImp := make([]float64, len(order))
	for k, i := range order {
		rankedNames[k] = names[i]
		rankedImp[k] = imp[i]
	}
	return rankedNames, rankedImp
}

// Reduce retrains the model on its top-k most important features and
// prunes the result to maxDepth (0 leaves depth unlimited). This produces
// the paper's lightweight deployment configuration (Section IV-B: top 5
// features, depth 15).
func (m *Model) Reduce(set *LabeledSet, topK, maxDepth int, cfg TrainConfig) (*Model, error) {
	names, _ := m.FeatureRanking()
	if topK > len(names) {
		topK = len(names)
	}
	keep := names[:topK]
	reducedSchema := set.Schema.Select(keep...)
	reduced := &LabeledSet{
		Schema:    reducedSchema,
		Param:     set.Param,
		Y:         set.Y,
		MeanTimes: set.MeanTimes,
		Weights:   set.Weights,
	}
	for _, x := range set.X {
		reduced.X = append(reduced.X, set.Schema.Project(x, reducedSchema))
	}
	cfg.Tree.MaxDepth = maxDepth
	return Train(reduced, cfg)
}

// modelJSON is the on-disk form of a Model.
type modelJSON struct {
	Format    string      `json:"format"`
	Parameter string      `json:"parameter"`
	Features  []string    `json:"features"`
	Tree      *dtree.Tree `json:"tree"`
}

const modelFormatID = "apollo-model-v1"

// MarshalJSON encodes the model.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		Format:    modelFormatID,
		Parameter: m.Param.String(),
		Features:  m.Schema.Names(),
		Tree:      m.Tree,
	})
}

// UnmarshalJSON decodes a model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Format != modelFormatID {
		return fmt.Errorf("core: unknown model format %q (want %q)", j.Format, modelFormatID)
	}
	switch j.Parameter {
	case ExecutionPolicy.String():
		m.Param = ExecutionPolicy
	case ChunkSize.String():
		m.Param = ChunkSize
	default:
		return fmt.Errorf("core: unknown parameter %q", j.Parameter)
	}
	if j.Tree == nil {
		return fmt.Errorf("core: model has no tree")
	}
	m.Schema = features.NewSchema(j.Features...)
	m.Tree = j.Tree
	return nil
}

// Save writes the model to the named file as indented JSON.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadModel reads a model from the named JSON file.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: loading %s: %w", path, err)
	}
	return &m, nil
}

// SchemaHash fingerprints the model's prediction contract: the format
// identifier, the predicted parameter, and the ordered feature names.
// Two models with equal hashes accept the same feature vectors and emit
// classes of the same parameter, so a serving registry can verify that a
// republished model is a drop-in replacement for its predecessor.
func (m *Model) SchemaHash() string {
	h := fnv.New64a()
	h.Write([]byte(modelFormatID))
	h.Write([]byte{0})
	h.Write([]byte(m.Param.String()))
	for _, name := range m.Schema.Names() {
		h.Write([]byte{0})
		h.Write([]byte(name))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TableISchemaHash is the golden fingerprint of the Table I feature
// schema: features.Fingerprint over the kernel, instruction-mix, and
// application feature names in vector order. apollo-vet's schemahash
// analyzer recomputes this from the name lists in the AST (the sources
// are named by the directive below) and fails the build on mismatch, so
// renaming or reordering a feature — which silently shifts every
// deployed model's vector layout — cannot land without deliberately
// bumping this constant together with a model format version change.
//
//apollo:schemahash apollo/internal/features.KernelFeatureNames apollo/internal/instmix.groupNames apollo/internal/features.AppFeatureNames
const TableISchemaHash uint64 = 0x512005e953bd06e6

// Envelope is the stable, versioned wire and disk form of a published
// model: the name it is registered under, its monotonic registry version,
// and the schema hash, wrapped around the model JSON. The envelope is
// what the model service stores and serves; a bare model JSON (as written
// by Model.Save) is also accepted everywhere an envelope is, at version 0.
type Envelope struct {
	Name       string
	Version    int
	SchemaHash string
	Model      *Model
	Lineage    *Lineage
}

// Lineage is the optional provenance block stamped into an envelope at
// train/publish time: which version the model grew out of, what
// telemetry window trained it, which drift signal fired, how the
// champion/challenger duel went, and who trained it. The loop ID
// correlates the envelope with the looptrace events of the retrain
// cycle that produced it, so journals from N processes stitch into one
// causal timeline. Every field is optional — hand-published and legacy
// envelopes simply have no lineage — and the whole block marshals
// deterministically (the sample-count map is sorted by encoding/json),
// which preserves the registry's ETag-convergence invariant.
type Lineage struct {
	LoopID        string `json:"loop_id,omitempty"`
	ParentVersion int    `json:"parent_version,omitempty"`
	Trainer       string `json:"trainer,omitempty"`
	TrainedAtNS   int64  `json:"trained_at_unix_ns,omitempty"`

	// Training window: total rows and per-source sample counts
	// (source = replica spool for collective training, "local" for a
	// single-spool trainer).
	WindowRows   int            `json:"window_rows,omitempty"`
	HoldoutRows  int            `json:"holdout_rows,omitempty"`
	SampleCounts map[string]int `json:"sample_counts,omitempty"`

	// Drift trigger snapshot (empty reason for a bootstrap publish).
	DriftReason       string  `json:"drift_reason,omitempty"`
	DriftMispredict   float64 `json:"drift_mispredict,omitempty"`
	DriftShift        float64 `json:"drift_shift,omitempty"`
	DriftShiftFeature string  `json:"drift_shift_feature,omitempty"`

	// Champion/challenger duel outcome on the holdout (mean predicted
	// launch cost in ns; zero champion cost for a bootstrap publish).
	DuelChampionNS   float64 `json:"duel_champion_ns,omitempty"`
	DuelChallengerNS float64 `json:"duel_challenger_ns,omitempty"`
}

const envelopeFormatID = "apollo-model-envelope-v1"

// envelopeJSON is the on-disk/wire form of an Envelope. Lineage is a
// trailing optional field: decoders that predate it ignore it, and
// envelopes without it marshal byte-identically to the pre-lineage
// format.
type envelopeJSON struct {
	Format     string   `json:"format"`
	Name       string   `json:"name"`
	Version    int      `json:"version"`
	SchemaHash string   `json:"schema_hash"`
	Model      *Model   `json:"model"`
	Lineage    *Lineage `json:"lineage,omitempty"`
}

// WrapModel builds the envelope for a model published under name at the
// given version, stamping the schema hash.
func WrapModel(name string, version int, m *Model) *Envelope {
	return &Envelope{Name: name, Version: version, SchemaHash: m.SchemaHash(), Model: m}
}

// MarshalJSON encodes the envelope.
func (e *Envelope) MarshalJSON() ([]byte, error) {
	hash := e.SchemaHash
	if hash == "" && e.Model != nil {
		hash = e.Model.SchemaHash()
	}
	return json.Marshal(envelopeJSON{
		Format:     envelopeFormatID,
		Name:       e.Name,
		Version:    e.Version,
		SchemaHash: hash,
		Model:      e.Model,
		Lineage:    e.Lineage,
	})
}

// UnmarshalJSON decodes an envelope, verifying the format identifier and
// that the recorded schema hash matches the enclosed model.
func (e *Envelope) UnmarshalJSON(data []byte) error {
	var j envelopeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Format != envelopeFormatID {
		return fmt.Errorf("core: unknown envelope format %q (want %q)", j.Format, envelopeFormatID)
	}
	if j.Model == nil {
		return fmt.Errorf("core: envelope has no model")
	}
	if j.SchemaHash != "" && j.SchemaHash != j.Model.SchemaHash() {
		return fmt.Errorf("core: envelope schema hash %s does not match model %s",
			j.SchemaHash, j.Model.SchemaHash())
	}
	e.Name = j.Name
	e.Version = j.Version
	e.SchemaHash = j.Model.SchemaHash()
	e.Model = j.Model
	e.Lineage = j.Lineage
	return nil
}

// ParseModelOrEnvelope decodes data as either an envelope or a bare model
// JSON (Model.Save output), sniffing the format field. Bare models come
// back wrapped at version 0 with an empty name.
func ParseModelOrEnvelope(data []byte) (*Envelope, error) {
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("core: not a model or envelope: %w", err)
	}
	switch probe.Format {
	case envelopeFormatID:
		var e Envelope
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, err
		}
		return &e, nil
	case modelFormatID:
		var m Model
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, err
		}
		return WrapModel("", 0, &m), nil
	}
	return nil, fmt.Errorf("core: unknown format %q", probe.Format)
}
