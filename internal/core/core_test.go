package core

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"apollo/internal/dataset"
	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/raja"
)

// syntheticFrame fabricates recorded samples for kernels whose best policy
// is sequential below a num_indices threshold of 1000 and parallel above.
func syntheticFrame(schema *features.Schema) *dataset.Frame {
	frame := dataset.NewFrame(RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	add := func(n int, policy raja.Policy, chunk int, timeNS float64) {
		row := make([]float64, schema.Len()+3)
		row[ni] = float64(n)
		row[schema.Len()] = float64(policy)
		row[schema.Len()+1] = float64(chunk)
		row[schema.Len()+2] = timeNS
		frame.AddRow(row)
	}
	for _, n := range []int{10, 50, 100, 500, 900, 1100, 2000, 5000, 10000, 50000} {
		seqTime := float64(n) * 10
		ompTime := 10000 + float64(n)*10/8
		add(n, raja.SeqExec, 0, seqTime)
		add(n, raja.OmpParallelForExec, 0, ompTime)
		for _, c := range raja.ChunkSizes {
			penalty := 1.0
			if c < 8 {
				penalty = 1.5 // tiny chunks slower
			}
			add(n, raja.OmpParallelForExec, c, ompTime*penalty)
		}
	}
	return frame
}

func testSchema() *features.Schema {
	return features.NewSchema(features.NumIndices)
}

func TestLabelPolicy(t *testing.T) {
	schema := testSchema()
	set, err := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 10 {
		t.Fatalf("got %d labeled vectors, want 10 (one per unique n)", set.Len())
	}
	for i, x := range set.X {
		n := x[0]
		want := int(raja.SeqExec)
		// crossover where n*10 = 10000 + n*10/8 -> n ~ 1142.
		if n > 1143 {
			want = int(raja.OmpParallelForExec)
		}
		if set.Y[i] != want {
			t.Errorf("n=%g labeled %d, want %d", n, set.Y[i], want)
		}
	}
}

func TestLabelChunk(t *testing.T) {
	schema := testSchema()
	set, err := Label(syntheticFrame(schema), schema, ChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 10 {
		t.Fatalf("got %d chunk vectors, want 10", set.Len())
	}
	for i, y := range set.Y {
		// All chunks >= 8 tie; argmin picks the first observed minimum,
		// which must not be one of the penalized tiny chunks.
		if raja.ChunkSizes[y] < 8 {
			t.Errorf("vector %d labeled with penalized chunk %d", i, raja.ChunkSizes[y])
		}
	}
	// MeanTimes must mark unobserved classes NaN and observed finite.
	for _, times := range set.MeanTimes {
		for c, v := range times {
			if math.IsNaN(v) {
				t.Errorf("chunk class %d unobserved but frame covers the grid", c)
			}
		}
	}
}

func TestLabelMissingColumns(t *testing.T) {
	schema := testSchema()
	frame := dataset.NewFrame("num_indices", "policy") // no chunk/time
	if _, err := Label(frame, schema, ExecutionPolicy); err == nil {
		t.Error("missing columns should fail")
	}
	frame2 := dataset.NewFrame("other", ColPolicy, ColChunk, ColTimeNS)
	if _, err := Label(frame2, schema, ExecutionPolicy); err == nil {
		t.Error("missing feature column should fail")
	}
}

func TestLabelSkipsSingleVariantVectors(t *testing.T) {
	schema := testSchema()
	frame := dataset.NewFrame(RecordColumns(schema)...)
	frame.AddRow([]float64{42, float64(raja.SeqExec), 0, 100})
	if _, err := Label(frame, schema, ExecutionPolicy); err == nil {
		t.Error("a frame with no multi-variant vector should fail")
	}
}

func TestChunkClass(t *testing.T) {
	for i, c := range raja.ChunkSizes {
		if ChunkClass(c) != i {
			t.Errorf("ChunkClass(%d) = %d, want %d", c, ChunkClass(c), i)
		}
	}
	if ChunkClass(3) != -1 || ChunkClass(0) != -1 {
		t.Error("off-grid chunks should map to -1")
	}
}

func TestTrainAndPredict(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	m, err := Train(set, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{100}) != int(raja.SeqExec) {
		t.Error("small n should predict sequential")
	}
	if m.Predict([]float64{40000}) != int(raja.OmpParallelForExec) {
		t.Error("large n should predict parallel")
	}
}

func TestModelParamsMerge(t *testing.T) {
	m := &Model{Param: ExecutionPolicy}
	base := raja.Params{Policy: raja.OmpParallelForExec, Chunk: 64}
	got := m.Params(int(raja.SeqExec), base)
	if got.Policy != raja.SeqExec || got.Chunk != 64 {
		t.Errorf("policy merge wrong: %v", got)
	}
	mc := &Model{Param: ChunkSize}
	got = mc.Params(ChunkClass(256), base)
	if got.Chunk != 256 || got.Policy != raja.OmpParallelForExec {
		t.Errorf("chunk merge wrong: %v", got)
	}
}

func TestProjectorMatchesDirectPredict(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	m, _ := Train(set, TrainConfig{})
	// Source schema with extra features and different order.
	source := features.NewSchema("extra", features.NumIndices, "pad")
	proj := m.NewProjector(source)
	for _, n := range []float64{10, 800, 1500, 60000} {
		direct := m.Predict([]float64{n})
		viaProj := proj.Predict([]float64{-1, n, -2})
		if direct != viaProj {
			t.Errorf("n=%g: projector %d != direct %d", n, viaProj, direct)
		}
	}
}

func TestCrossValidate(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	res, err := CrossValidate(set, 5, 1, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracies) != 5 {
		t.Errorf("got %d folds", len(res.FoldAccuracies))
	}
	if res.MeanAccuracy < 0.5 {
		t.Errorf("mean accuracy %g suspiciously low on near-separable data", res.MeanAccuracy)
	}
	// Confusion matrix totals must equal the number of samples.
	total := 0
	for _, row := range res.Confusion {
		for _, c := range row {
			total += c
		}
	}
	if total != set.Len() {
		t.Errorf("confusion total %d != samples %d", total, set.Len())
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	a, _ := CrossValidate(set, 5, 42, TrainConfig{})
	b, _ := CrossValidate(set, 5, 42, TrainConfig{})
	if a.MeanAccuracy != b.MeanAccuracy {
		t.Error("same seed gave different CV accuracy")
	}
}

func TestFeatureRankingAndReduce(t *testing.T) {
	// Two features: informative num_indices and a constant.
	schema := features.NewSchema(features.NumIndices, features.Stride)
	frame := dataset.NewFrame(RecordColumns(schema)...)
	for _, n := range []int{10, 100, 1000, 10000, 100000} {
		seq := float64(n) * 10
		omp := 10000 + float64(n)
		frame.AddRow([]float64{float64(n), 1, float64(raja.SeqExec), 0, seq})
		frame.AddRow([]float64{float64(n), 1, float64(raja.OmpParallelForExec), 0, omp})
	}
	set, err := Label(frame, schema, ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Train(set, TrainConfig{})
	names, imps := m.FeatureRanking()
	if names[0] != features.NumIndices {
		t.Errorf("top feature = %q, want num_indices", names[0])
	}
	if imps[0] <= imps[len(imps)-1] {
		t.Error("ranking not descending")
	}
	reduced, err := m.Reduce(set, 1, 3, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Schema.Len() != 1 || reduced.Schema.Name(0) != features.NumIndices {
		t.Errorf("reduced schema = %v", reduced.Schema.Names())
	}
	if reduced.Tree.Depth() > 3 {
		t.Errorf("reduced depth %d > 3", reduced.Tree.Depth())
	}
	if reduced.Evaluate(set) < 0.8 {
		t.Errorf("reduced model accuracy %g too low", reduced.Evaluate(set))
	}
}

func TestEvaluateCrossSchema(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	m, _ := Train(set, TrainConfig{})
	// Evaluate against a set with a wider schema.
	wide := features.NewSchema(features.Stride, features.NumIndices)
	wideSet := &LabeledSet{Schema: wide, Param: ExecutionPolicy}
	for i, x := range set.X {
		wideSet.X = append(wideSet.X, []float64{1, x[0]})
		wideSet.Y = append(wideSet.Y, set.Y[i])
	}
	if acc := m.Evaluate(wideSet); acc != 1 {
		t.Errorf("cross-schema accuracy = %g, want 1", acc)
	}
}

func TestPredictedTimeNS(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	m, _ := Train(set, TrainConfig{})
	pred, best, static := m.PredictedTimeNS(set, int(raja.OmpParallelForExec))
	if best <= 0 || pred < best {
		t.Errorf("best %g must be positive and <= predicted %g", best, pred)
	}
	if static < best {
		t.Errorf("static-omp %g cannot beat oracle %g", static, best)
	}
	if pred > static {
		t.Errorf("model-predicted time %g worse than static %g on clean data", pred, static)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	m, _ := Train(set, TrainConfig{})
	path := filepath.Join(t.TempDir(), "policy.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Param != ExecutionPolicy {
		t.Error("parameter lost")
	}
	if back.Schema.Len() != 1 || back.Schema.Name(0) != features.NumIndices {
		t.Error("schema lost")
	}
	for _, n := range []float64{10, 5000, 90000} {
		if back.Predict([]float64{n}) != m.Predict([]float64{n}) {
			t.Errorf("prediction changed after reload for n=%g", n)
		}
	}
}

func TestParameterMetadata(t *testing.T) {
	if ExecutionPolicy.NumClasses() != int(raja.NumPolicies) {
		t.Error("policy class count wrong")
	}
	if ChunkSize.NumClasses() != len(raja.ChunkSizes) {
		t.Error("chunk class count wrong")
	}
	if ExecutionPolicy.ClassName(0) != "seq_exec" {
		t.Errorf("ClassName = %q", ExecutionPolicy.ClassName(0))
	}
	if ChunkSize.ClassName(3) != "8" {
		t.Errorf("chunk ClassName = %q", ChunkSize.ClassName(3))
	}
}

func TestTrainConfigDepthCap(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	cfg := TrainConfig{Tree: dtree.Config{MaxDepth: 1}}
	m, err := Train(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tree.Depth() > 1 {
		t.Errorf("depth %d exceeds cap 1", m.Tree.Depth())
	}
}

func TestCVResultClassMetrics(t *testing.T) {
	r := &CVResult{Confusion: [][]int{{8, 2}, {1, 9}}}
	if got := r.ClassAccuracy(0); got != 0.8 {
		t.Errorf("ClassAccuracy(0) = %g", got)
	}
	if got := r.ClassAccuracy(1); got != 0.9 {
		t.Errorf("ClassAccuracy(1) = %g", got)
	}
	if got := r.ClassPrecision(0); got != 8.0/9 {
		t.Errorf("ClassPrecision(0) = %g", got)
	}
	if r.ClassAccuracy(5) != 0 || r.ClassPrecision(-1) != 0 {
		t.Error("out-of-range class should be 0")
	}
	// Empty row and never-predicted class.
	e := &CVResult{Confusion: [][]int{{0, 0}, {5, 0}}}
	if e.ClassAccuracy(0) != 0 || e.ClassPrecision(1) != 0 {
		t.Error("degenerate confusion metrics should be 0")
	}
}

func TestCVResultReport(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	res, err := CrossValidate(set, 5, 1, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(ExecutionPolicy)
	for _, want := range []string{"mean accuracy", "seq_exec", "omp_parallel_for_exec", "recall"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
