package core

import (
	"testing"

	"apollo/internal/dtree"
	"apollo/internal/features"
)

// Projector.PredictTrail must agree with Predict and translate trail
// feature indices back to the source schema so one name table explains
// decisions from any reduced model.
func TestProjectorPredictTrail(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	m, err := Train(set, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	source := features.NewSchema("extra", features.NumIndices, "pad")
	proj := m.NewProjector(source)
	srcIdx := source.Index(features.NumIndices)

	trail := make([]dtree.TrailStep, 32)
	for _, n := range []float64{10, 800, 1500, 60000} {
		x := []float64{-1, n, -2}
		class, steps := proj.PredictTrail(x, trail)
		if class != proj.Predict(x) {
			t.Errorf("n=%g: trail class %d != predict %d", n, class, proj.Predict(x))
		}
		if steps == 0 {
			t.Fatalf("n=%g: empty trail", n)
		}
		for i := 0; i < steps; i++ {
			s := trail[i]
			// The only model feature is num_indices; every step must
			// report its *source* index and the source value.
			if int(s.Feature) != srcIdx {
				t.Errorf("n=%g step %d: feature index %d, want source index %d", n, i, s.Feature, srcIdx)
			}
			if s.Value != n {
				t.Errorf("n=%g step %d: value %g, want %g", n, i, s.Value, n)
			}
			if s.Right != (n > s.Threshold) {
				t.Errorf("n=%g step %d: direction right=%v threshold=%g inconsistent", n, i, s.Right, s.Threshold)
			}
		}
	}
}

// The projector trail path allocates nothing in steady state.
func TestProjectorPredictTrailAllocFree(t *testing.T) {
	schema := testSchema()
	set, _ := Label(syntheticFrame(schema), schema, ExecutionPolicy)
	m, _ := Train(set, TrainConfig{})
	source := features.NewSchema("extra", features.NumIndices, "pad")
	proj := m.NewProjector(source)
	x := []float64{-1, 800, -2}
	trail := make([]dtree.TrailStep, 32)
	proj.PredictTrail(x, trail) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		proj.PredictTrail(x, trail)
	})
	if allocs != 0 {
		t.Errorf("PredictTrail allocates %.1f objects per run, want 0", allocs)
	}
}
