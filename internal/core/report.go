package core

import (
	"fmt"
	"strings"
)

// ClassAccuracy returns the per-class recall of the aggregated confusion
// matrix: the fraction of class c's samples predicted as c (0 when the
// class never occurs).
func (r *CVResult) ClassAccuracy(c int) float64 {
	if c < 0 || c >= len(r.Confusion) {
		return 0
	}
	row := r.Confusion[c]
	total := 0
	for _, n := range row {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(row[c]) / float64(total)
}

// ClassPrecision returns the fraction of predictions of class c that were
// correct (0 when the class is never predicted).
func (r *CVResult) ClassPrecision(c int) float64 {
	if c < 0 || c >= len(r.Confusion) {
		return 0
	}
	correct, predicted := 0, 0
	for actual := range r.Confusion {
		predicted += r.Confusion[actual][c]
		if actual == c {
			correct = r.Confusion[actual][c]
		}
	}
	if predicted == 0 {
		return 0
	}
	return float64(correct) / float64(predicted)
}

// Report renders the cross-validation result: mean and per-fold
// accuracies, then the confusion matrix with class names from the
// parameter.
func (r *CVResult) Report(param Parameter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mean accuracy %.1f%% over %d folds (", r.MeanAccuracy*100, len(r.FoldAccuracies))
	for i, a := range r.FoldAccuracies {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.0f%%", a*100)
	}
	b.WriteString(")\n")

	// Column headers.
	n := len(r.Confusion)
	names := make([]string, n)
	width := len("actual\\pred")
	for c := 0; c < n; c++ {
		names[c] = param.ClassName(c)
		if len(names[c]) > width {
			width = len(names[c])
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "actual\\pred")
	for c := 0; c < n; c++ {
		fmt.Fprintf(&b, "%*s", width+2, names[c])
	}
	fmt.Fprintf(&b, "%*s\n", width+2, "recall")
	for actual := 0; actual < n; actual++ {
		fmt.Fprintf(&b, "%-*s", width+2, names[actual])
		for pred := 0; pred < n; pred++ {
			fmt.Fprintf(&b, "%*d", width+2, r.Confusion[actual][pred])
		}
		fmt.Fprintf(&b, "%*.0f%%\n", width+1, r.ClassAccuracy(actual)*100)
	}
	return b.String()
}
