package core

import (
	"fmt"
	"math"

	"apollo/internal/dataset"
)

// CVResult summarizes a k-fold cross-validation.
type CVResult struct {
	// FoldAccuracies holds the test accuracy of each fold's model.
	FoldAccuracies []float64
	// MeanAccuracy is the mean of FoldAccuracies — the score the paper
	// reports in Table II.
	MeanAccuracy float64
	// Confusion[actual][predicted] aggregates test predictions over all
	// folds.
	Confusion [][]int
}

// CrossValidate runs k-fold cross-validation of a decision-tree model on
// the labeled set (the paper uses k = 10) and returns the per-fold and
// mean accuracies. The fold assignment is deterministic in seed.
func CrossValidate(set *LabeledSet, k int, seed uint64, cfg TrainConfig) (*CVResult, error) {
	n := set.Len()
	if n < 2 {
		return nil, fmt.Errorf("core: cross-validation needs at least 2 samples, have %d", n)
	}
	folds := dataset.KFold(n, k, seed)
	numClasses := set.Param.NumClasses()

	res := &CVResult{Confusion: make([][]int, numClasses)}
	for c := range res.Confusion {
		res.Confusion[c] = make([]int, numClasses)
	}

	for _, fold := range folds {
		trainX := make([][]float64, 0, len(fold.Train))
		trainY := make([]int, 0, len(fold.Train))
		for _, i := range fold.Train {
			trainX = append(trainX, set.X[i])
			trainY = append(trainY, set.Y[i])
		}
		sub := &LabeledSet{Schema: set.Schema, Param: set.Param, X: trainX, Y: trainY}
		model, err := Train(sub, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: training fold model: %w", err)
		}
		correct := 0
		for _, i := range fold.Test {
			pred := model.Predict(set.X[i])
			res.Confusion[set.Y[i]][pred]++
			if pred == set.Y[i] {
				correct++
			}
		}
		if len(fold.Test) > 0 {
			res.FoldAccuracies = append(res.FoldAccuracies, float64(correct)/float64(len(fold.Test)))
		}
	}
	var sum float64
	for _, a := range res.FoldAccuracies {
		sum += a
	}
	if len(res.FoldAccuracies) > 0 {
		res.MeanAccuracy = sum / float64(len(res.FoldAccuracies))
	}
	return res, nil
}

// Evaluate scores a trained model against a labeled set drawn from a
// (possibly different) application or input deck — the paper's
// cross-application experiment (Table III). The set's schema may differ in
// layout from the model's; vectors are projected by feature name.
func (m *Model) Evaluate(set *LabeledSet) float64 {
	if set.Len() == 0 {
		return 0
	}
	proj := m.NewProjector(set.Schema)
	correct := 0
	for i, x := range set.X {
		if proj.Predict(x) == set.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(set.X))
}

// PredictedTimeNS returns the total mean runtime of the set under the
// model's predictions, alongside the totals for the best possible choice
// (oracle) and a fixed static class. Vectors whose chosen class was never
// observed fall back to the vector's worst observed time, a conservative
// penalty. These totals drive the paper's Fig. 6 and Fig. 7 comparisons.
func (m *Model) PredictedTimeNS(set *LabeledSet, staticClass int) (predicted, best, static float64) {
	proj := m.NewProjector(set.Schema)
	for i, x := range set.X {
		times := set.MeanTimes[i]
		w := 1.0
		if i < len(set.Weights) && set.Weights[i] > 0 {
			w = set.Weights[i]
		}
		predicted += w * timeOrWorst(times, proj.Predict(x))
		best += w * timeOrWorst(times, set.Y[i])
		static += w * timeOrWorst(times, staticClass)
	}
	return
}

// timeOrWorst returns times[class], or the worst observed time when the
// class was not observed for this vector.
func timeOrWorst(times []float64, class int) float64 {
	if class >= 0 && class < len(times) && !math.IsNaN(times[class]) {
		return times[class]
	}
	worst := 0.0
	for _, t := range times {
		if !math.IsNaN(t) && t > worst {
			worst = t
		}
	}
	return worst
}
