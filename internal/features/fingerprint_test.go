package features_test

import (
	"testing"

	"apollo/internal/core"
	"apollo/internal/features"
)

// The Table I schema must fingerprint to the golden constant apollo-vet
// checks statically (the //apollo:schemahash directive on
// core.TableISchemaHash). If this fails, the feature schema changed:
// bump the model format version and the golden constant together.
func TestTableIFingerprintMatchesGolden(t *testing.T) {
	got := features.Fingerprint(features.TableI().Names())
	if got != core.TableISchemaHash {
		t.Errorf("Fingerprint(TableI) = %#016x, want golden core.TableISchemaHash = %#016x",
			got, core.TableISchemaHash)
	}
}

// Fingerprint must be sensitive to order and to name boundaries.
func TestFingerprintDistinguishesSchemas(t *testing.T) {
	a := features.Fingerprint([]string{"alpha", "beta"})
	if b := features.Fingerprint([]string{"beta", "alpha"}); a == b {
		t.Error("reordering names did not change the fingerprint")
	}
	if b := features.Fingerprint([]string{"alphabeta"}); a == b {
		t.Error("joining names did not change the fingerprint")
	}
	if b := features.Fingerprint([]string{"alpha", "beta", "gamma"}); a == b {
		t.Error("appending a name did not change the fingerprint")
	}
}
