// Package features defines the feature-vector schema Apollo collects for
// every kernel execution — the three categories of Table I in the paper:
//
//  1. kernel features, taken from the arguments of each forall launch
//     (func, func_size, index_type, loop_id, num_indices, num_segments,
//     stride);
//  2. instruction features, the grouped mnemonic counts of the kernel
//     body (see package instmix); and
//  3. application features, optionally annotated by the application
//     through the caliper blackboard (timestep, problem_size,
//     problem_name, patch_id).
package features

import (
	"fmt"

	"apollo/internal/caliper"
	"apollo/internal/instmix"
	"apollo/internal/raja"
)

// Kernel feature names (paper Table I, first block).
const (
	Func        = "func"
	FuncSize    = "func_size"
	IndexType   = "index_type"
	LoopID      = "loop_id"
	NumIndices  = "num_indices"
	NumSegments = "num_segments"
	Stride      = "stride"
)

// Application feature names (paper Table I, third block).
const (
	Timestep    = "timestep"
	ProblemSize = "problem_size"
	ProblemName = "problem_name"
	PatchID     = "patch_id"
)

// KernelFeatureNames returns the kernel-feature block in schema order.
func KernelFeatureNames() []string {
	return []string{Func, FuncSize, IndexType, LoopID, NumIndices, NumSegments, Stride}
}

// AppFeatureNames returns the application-feature block in schema order.
func AppFeatureNames() []string {
	return []string{Timestep, ProblemSize, ProblemName, PatchID}
}

// Fingerprint hashes a feature-name list with FNV-1a-64, seeded with
// "apollo-schema-v1" and separating names with NUL so boundaries are
// unambiguous. It is the runtime twin of apollo-vet's schemahash
// analyzer, which computes the same hash from the AST at vet time and
// compares it against a golden constant (core.TableISchemaHash): the two
// implementations must agree, and a test pins them together.
func Fingerprint(names []string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	mix("apollo-schema-v1")
	for _, n := range names {
		mix("\x00")
		mix(n)
	}
	return h
}

// Schema is an ordered list of feature names defining the layout of
// feature vectors.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from the given names, in order.
func NewSchema(names ...string) *Schema {
	s := &Schema{names: append([]string(nil), names...), index: make(map[string]int, len(names))}
	for i, n := range s.names {
		if _, dup := s.index[n]; dup {
			panic(fmt.Sprintf("features: duplicate feature %q", n))
		}
		s.index[n] = i
	}
	return s
}

// TableI returns the full schema of Table I: kernel features, the 30
// instruction mnemonic groups, and application features.
func TableI() *Schema {
	names := KernelFeatureNames()
	names = append(names, instmix.GroupNames()...)
	names = append(names, AppFeatureNames()...)
	return NewSchema(names...)
}

// Len returns the number of features.
func (s *Schema) Len() int { return len(s.names) }

// Names returns the feature names in vector order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Name returns the i-th feature name.
func (s *Schema) Name(i int) string { return s.names[i] }

// Index returns the position of the named feature, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named feature.
func (s *Schema) Has(name string) bool { _, ok := s.index[name]; return ok }

// Without returns a schema with the named features removed. It is used to
// train deck-independent models (the paper's Table II models exclude
// features specific to a particular input deck).
func (s *Schema) Without(drop ...string) *Schema {
	dropSet := make(map[string]bool, len(drop))
	for _, d := range drop {
		dropSet[d] = true
	}
	var kept []string
	for _, n := range s.names {
		if !dropSet[n] {
			kept = append(kept, n)
		}
	}
	return NewSchema(kept...)
}

// Select returns a schema containing only the named features, in the
// given order. Unknown names panic: reduced models must be built from
// features that exist.
func (s *Schema) Select(keep ...string) *Schema {
	for _, k := range keep {
		if !s.Has(k) {
			panic(fmt.Sprintf("features: unknown feature %q", k))
		}
	}
	return NewSchema(keep...)
}

// Project maps a vector laid out by this schema onto the target schema.
// Features absent from this schema are zero-filled.
func (s *Schema) Project(v []float64, target *Schema) []float64 {
	out := make([]float64, target.Len())
	for i, n := range target.names {
		if j := s.Index(n); j >= 0 && j < len(v) {
			out[i] = v[j]
		}
	}
	return out
}

// Extract assembles the Table I feature vector for one kernel launch,
// laid out by this schema. Unknown schema entries read from the
// annotation blackboard (zero when unset), so applications can extend the
// schema with custom features (e.g. num_materials) just by annotating.
func (s *Schema) Extract(k *raja.Kernel, iset *raja.IndexSet, ann *caliper.Annotations) []float64 {
	return s.ExtractInto(make([]float64, len(s.names)), k, iset, ann)
}

// ExtractInto assembles the feature vector into dst, which must have at
// least Len() capacity, and returns dst[:Len()]. It allocates nothing
// itself, so callers with preallocated buffers (the telemetry ring) can
// capture features on the launch path without garbage.
func (s *Schema) ExtractInto(dst []float64, k *raja.Kernel, iset *raja.IndexSet, ann *caliper.Annotations) []float64 {
	dst = dst[:len(s.names)]
	for i, n := range s.names {
		dst[i] = featureValue(n, k, iset, ann)
	}
	return dst
}

func featureValue(name string, k *raja.Kernel, iset *raja.IndexSet, ann *caliper.Annotations) float64 {
	switch name {
	case Func:
		return caliper.Encode(k.Name)
	case FuncSize:
		return k.Mix.FuncSize()
	case IndexType:
		return float64(iset.Type())
	case LoopID:
		return float64(k.ID)
	case NumIndices:
		return float64(iset.Len())
	case NumSegments:
		return float64(iset.NumSegments())
	case Stride:
		return float64(iset.Stride())
	}
	if g, ok := instmix.GroupByName(name); ok {
		return k.Mix.Count(g)
	}
	if ann != nil {
		return ann.GetOr(name, 0)
	}
	return 0
}
