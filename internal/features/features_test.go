package features

import (
	"reflect"
	"testing"

	"apollo/internal/caliper"
	"apollo/internal/instmix"
	"apollo/internal/raja"
)

func TestTableISchemaLayout(t *testing.T) {
	s := TableI()
	wantLen := len(KernelFeatureNames()) + int(instmix.NumGroups) + len(AppFeatureNames())
	if s.Len() != wantLen {
		t.Fatalf("TableI has %d features, want %d", s.Len(), wantLen)
	}
	// Kernel features first, app features last.
	if s.Name(0) != Func {
		t.Errorf("first feature = %q, want func", s.Name(0))
	}
	if s.Name(s.Len()-1) != PatchID {
		t.Errorf("last feature = %q, want patch_id", s.Name(s.Len()-1))
	}
	for _, n := range []string{NumIndices, NumSegments, Stride, Timestep, ProblemSize, ProblemName, "movsd", "add"} {
		if !s.Has(n) {
			t.Errorf("TableI missing feature %q", n)
		}
	}
}

func TestSchemaIndexAndNames(t *testing.T) {
	s := NewSchema("a", "b", "c")
	if s.Index("b") != 1 || s.Index("zz") != -1 {
		t.Error("Index lookup wrong")
	}
	if !reflect.DeepEqual(s.Names(), []string{"a", "b", "c"}) {
		t.Error("Names wrong")
	}
}

func TestDuplicateFeaturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate feature should panic")
		}
	}()
	NewSchema("x", "x")
}

func TestWithoutAndSelect(t *testing.T) {
	s := NewSchema("a", "b", "c", "d")
	w := s.Without("b", "d")
	if !reflect.DeepEqual(w.Names(), []string{"a", "c"}) {
		t.Errorf("Without = %v", w.Names())
	}
	sel := s.Select("d", "a")
	if !reflect.DeepEqual(sel.Names(), []string{"d", "a"}) {
		t.Errorf("Select = %v", sel.Names())
	}
}

func TestSelectUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Select of unknown feature should panic")
		}
	}()
	NewSchema("a").Select("b")
}

func TestProject(t *testing.T) {
	src := NewSchema("a", "b", "c")
	dst := NewSchema("c", "missing", "a")
	got := src.Project([]float64{1, 2, 3}, dst)
	want := []float64{3, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
}

func TestExtractKernelFeatures(t *testing.T) {
	mix := instmix.NewMix().With(instmix.Add, 5).With(instmix.Movsd, 3)
	k := raja.NewKernel("calc_pressure", mix)
	iset := raja.NewIndexSet(
		raja.RangeSegment{Begin: 0, End: 128},
		raja.RangeSegment{Begin: 200, End: 264},
	)
	s := TableI()
	ann := caliper.New()
	ann.Set(Timestep, 42)
	ann.SetString(ProblemName, "sedov")
	v := s.Extract(k, iset, ann)

	check := func(name string, want float64) {
		t.Helper()
		if got := v[s.Index(name)]; got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	check(NumIndices, 192)
	check(NumSegments, 2)
	check(Stride, 1)
	check(FuncSize, 8)
	check(IndexType, float64(raja.RangeIndex))
	check(LoopID, float64(k.ID))
	check(Func, caliper.Encode("calc_pressure"))
	check("add", 5)
	check("movsd", 3)
	check("divsd", 0)
	check(Timestep, 42)
	check(ProblemName, caliper.Encode("sedov"))
	check(PatchID, 0) // unset annotation reads zero
}

func TestExtractWithNilAnnotations(t *testing.T) {
	k := raja.NewKernel("k", nil)
	s := TableI()
	v := s.Extract(k, raja.NewRange(0, 10), nil)
	if v[s.Index(Timestep)] != 0 {
		t.Error("nil annotations should read zero")
	}
	if v[s.Index(NumIndices)] != 10 {
		t.Error("kernel features must work without annotations")
	}
}

func TestExtractCustomAnnotationFeature(t *testing.T) {
	// Applications can extend the schema with custom features that are
	// resolved through the blackboard (e.g. ARES's material count).
	s := NewSchema(NumIndices, "num_materials")
	ann := caliper.New()
	ann.Set("num_materials", 3)
	k := raja.NewKernel("k", nil)
	v := s.Extract(k, raja.NewRange(0, 5), ann)
	if v[1] != 3 {
		t.Errorf("custom feature = %g, want 3", v[1])
	}
}
