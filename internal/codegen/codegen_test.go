package codegen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
	"testing/quick"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
)

func trainedPolicyModel(t *testing.T) (*core.Model, *core.LabeledSet) {
	t.Helper()
	schema := features.NewSchema(features.NumIndices, features.NumSegments)
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	for _, n := range []int{16, 64, 256, 1024, 4096, 16384, 65536} {
		seq := float64(n) * 12
		omp := 9000 + float64(n)*12/8
		frame.AddRow([]float64{float64(n), 1, float64(raja.SeqExec), 0, seq})
		frame.AddRow([]float64{float64(n), 1, float64(raja.OmpParallelForExec), 0, omp})
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m, set
}

func TestGoIdent(t *testing.T) {
	cases := map[string]string{
		"num_indices":  "numIndices",
		"func_size":    "funcSize",
		"add":          "add",
		"shl_sal":      "shlSal",
		"problem_name": "problemName",
		"":             "x",
	}
	for in, want := range cases {
		if got := GoIdent(in); got != want {
			t.Errorf("GoIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGenerateIsParseableGo(t *testing.T) {
	m, _ := trainedPolicyModel(t)
	src := Generate(m, "tuned", "ApolloBeginForall")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
}

func TestGenerateShape(t *testing.T) {
	m, _ := trainedPolicyModel(t)
	src := Generate(m, "tuned", "Decide")
	for _, want := range []string{
		"package tuned",
		"func Decide(numIndices float64, numSegments float64) raja.Params",
		"if numIndices <= ",
		"p.Policy = raja.SeqExec",
		"p.Policy = raja.OmpParallelForExec",
		"return p",
		"DO NOT EDIT",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateChunkModel(t *testing.T) {
	schema := features.NewSchema(features.NumIndices)
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	for _, n := range []int{100, 100000} {
		for _, c := range raja.ChunkSizes {
			time := 1000.0
			if n == 100 && c != 16 {
				time = 5000
			}
			if n == 100000 && c != 512 {
				time = 5000
			}
			frame.AddRow([]float64{float64(n), float64(raja.OmpParallelForExec), float64(c), time})
		}
	}
	set, err := core.Label(frame, schema, core.ChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	src := Generate(m, "tuned", "Chunk")
	if !strings.Contains(src, "p.Chunk = 16") || !strings.Contains(src, "p.Chunk = 512") {
		t.Errorf("chunk assignments missing:\n%s", src)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("chunk source does not parse: %v", err)
	}
}

func TestCompileFuncMatchesTreeProperty(t *testing.T) {
	m, _ := trainedPolicyModel(t)
	fn := CompileFunc(m)
	base := raja.Params{Policy: raja.OmpParallelForExec, Chunk: 64}
	f := func(raw uint32) bool {
		n := float64(raw % 200000)
		x := []float64{n, 1}
		got := fn(x, base)
		want := m.Params(m.Predict(x), base)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompileFuncPreservesUntouchedParams(t *testing.T) {
	m, _ := trainedPolicyModel(t)
	fn := CompileFunc(m)
	out := fn([]float64{10, 1}, raja.Params{Policy: raja.OmpParallelForExec, Chunk: 256})
	if out.Chunk != 256 {
		t.Errorf("policy model clobbered chunk: %v", out)
	}
}

func TestGoIdentAvoidsKeywords(t *testing.T) {
	for _, kw := range []string{"func", "range", "type", "var", "return"} {
		id := GoIdent(kw)
		if id == kw {
			t.Errorf("GoIdent(%q) = %q collides with a Go keyword", kw, id)
		}
	}
}
