package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/flight"
	"apollo/internal/raja"
	"apollo/internal/registry"
)

// testModel trains a small policy model with the usual seq/omp crossover.
func testModel(t testing.TB) *core.Model {
	t.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 256, 2048, 16384, 131072} {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = float64(n) * 10
			} else {
				row[schema.Len()+2] = 8000 + float64(n)*10/8
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestServer(t *testing.T) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New()
	ts := httptest.NewServer(New(reg).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func putModel(t *testing.T, ts *httptest.Server, name string, m *core.Model) modelInfo {
	t.Helper()
	body, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/models/"+name, bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status %s", resp.Status)
	}
	var mi modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&mi); err != nil {
		t.Fatal(err)
	}
	return mi
}

func TestPutGetRoundTripWithETag(t *testing.T) {
	ts, _ := newTestServer(t)
	m := testModel(t)
	mi := putModel(t, ts, "lulesh/execution_policy", m)
	if mi.Version != 1 || mi.SchemaHash != m.SchemaHash() {
		t.Errorf("publish info wrong: %+v", mi)
	}

	resp, err := http.Get(ts.URL + "/models/lulesh/execution_policy")
	if err != nil {
		t.Fatal(err)
	}
	var env core.Envelope
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if env.Version != 1 || env.Name != "lulesh/execution_policy" {
		t.Errorf("envelope = %+v", env)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || resp.Header.Get("X-Apollo-Model-Version") != "1" {
		t.Error("missing ETag / version headers")
	}

	// Conditional GET: unchanged model answers 304 with no body.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/models/lulesh/execution_policy", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("conditional GET status %s, want 304", resp2.Status)
	}

	// Republish changes the ETag, so the same conditional GET now hits.
	putModel(t, ts, "lulesh/execution_policy", m)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("stale conditional GET status %s, want 200", resp3.Status)
	}
}

func TestGetUnknownModel404sAndBadPut400s(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/models/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown = %s, want 404", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/models/bad", strings.NewReader("{"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT garbage = %s, want 400", resp2.Status)
	}
}

func TestPredictSingleBatchAndFeatures(t *testing.T) {
	ts, _ := newTestServer(t)
	m := testModel(t)
	putModel(t, ts, "policy", m)
	small := make([]float64, m.Schema.Len())
	small[m.Schema.Index(features.NumIndices)] = 32
	large := make([]float64, m.Schema.Len())
	large[m.Schema.Index(features.NumIndices)] = 131072

	post := func(body string) map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %s", resp.Status)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	vec := func(x []float64) string {
		b, _ := json.Marshal(x)
		return string(b)
	}

	if out := post(fmt.Sprintf(`{"model":"policy","x":%s}`, vec(small))); out["class"].(float64) != float64(raja.SeqExec) {
		t.Errorf("small vector class = %v, want seq", out["class"])
	}
	out := post(fmt.Sprintf(`{"model":"policy","batch":[%s,%s]}`, vec(small), vec(large)))
	classes := out["classes"].([]any)
	if len(classes) != 2 || classes[0].(float64) != float64(raja.SeqExec) || classes[1].(float64) != float64(raja.OmpParallelForExec) {
		t.Errorf("batch classes = %v", classes)
	}
	out = post(`{"model":"policy","features":{"num_indices":131072}}`)
	if out["label"] != raja.OmpParallelForExec.String() {
		t.Errorf("features predict label = %v", out["label"])
	}

	// Malformed requests are rejected cleanly.
	for _, bad := range []string{
		`{"model":"policy"}`,
		`{"model":"policy","x":[1]}`,
		`{"model":"policy","x":[1],"batch":[[1]]}`,
		`{"model":"policy","features":{"warp_size":1}}`,
		`{"model":"missing","x":[]}`,
	} {
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("bad request %s accepted", bad)
		}
	}
}

// TestPredictCompiledOffsetsAndStats covers the compiled decision path
// end to end at the server: the model listing exposes compilation stats,
// a cache-missing single predict records a compact offset trail the
// registered decoder can expand, and a batch request runs memo-missing
// vectors through the compiled batch walk (batched counter) while
// agreeing with single-vector answers.
func TestPredictCompiledOffsetsAndStats(t *testing.T) {
	reg := registry.New()
	srv := New(reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	m := testModel(t)
	mi := putModel(t, ts, "policy", m)
	if mi.Compiled == nil || mi.Compiled.Nodes == 0 || mi.Compiled.Kind == "" {
		t.Fatalf("publish info lacks compiled stats: %+v", mi.Compiled)
	}
	if mi.Compiled.FlatBytes != mi.Compiled.Internal*24 {
		t.Errorf("flat_bytes = %d, want %d", mi.Compiled.FlatBytes, mi.Compiled.Internal*24)
	}

	post := func(body []byte) map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %s", resp.Status)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Cache-missing single predict: the flight record carries the compact
	// offset trail, no TrailSteps, and the site decoder expands it to the
	// same class the response reported.
	x := make([]float64, m.Schema.Len())
	x[m.Schema.Index(features.NumIndices)] = 131072
	body, _ := json.Marshal(map[string]any{"model": "policy", "x": x})
	out := post(body)
	recs := srv.Flight().Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d flight records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.TrailLen != 0 || rec.OffsetsLen == 0 {
		t.Fatalf("compiled miss recorded TrailLen=%d OffsetsLen=%d, want offsets only", rec.TrailLen, rec.OffsetsLen)
	}
	dec := srv.Flight().SiteDecoder(rec.Site)
	if dec == nil || dec.Tree == nil {
		t.Fatal("compiled site has no registered decoder")
	}
	var steps [flight.MaxTrail]dtree.TrailStep
	n := dec.Tree.DecodeOffsets(rec.Offsets[:rec.OffsetsLen], dec.Src, rec.Features[:rec.NumFeatures], steps[:])
	if n == 0 {
		t.Fatal("offset trail decoded to zero steps")
	}
	if got := out["class"].(float64); got != float64(rec.Predicted) {
		t.Errorf("response class %g != recorded prediction %d", got, rec.Predicted)
	}

	// Batch with fresh vectors: answered by the compiled batch walk and
	// consistent with single-vector predictions.
	batch := make([][]float64, 6)
	single := make([]float64, len(batch))
	for i := range batch {
		v := make([]float64, m.Schema.Len())
		v[m.Schema.Index(features.NumIndices)] = float64(int(64) << (2 * i))
		batch[i] = v
	}
	body, _ = json.Marshal(map[string]any{"model": "policy", "batch": batch})
	out = post(body)
	classes := out["classes"].([]any)
	if len(classes) != len(batch) {
		t.Fatalf("batch returned %d classes, want %d", len(classes), len(batch))
	}
	for i, v := range batch {
		body, _ = json.Marshal(map[string]any{"model": "policy", "x": v})
		single[i] = post(body)["class"].(float64)
		if classes[i].(float64) != single[i] {
			t.Errorf("vector %d: batch class %v != single class %g", i, classes[i], single[i])
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples := parsePrometheus(t, string(raw))
	if got := samples["apollo_predict_batched_total"]; got != float64(len(batch)) {
		t.Errorf("apollo_predict_batched_total = %g, want %d", got, len(batch))
	}

	// The model listing carries the same compiled stats as publish.
	resp, err = http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []modelInfo `json:"models"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Models) != 1 || list.Models[0].Compiled == nil {
		t.Fatalf("model listing lacks compiled stats: %+v (%v)", list.Models, err)
	}
	if *list.Models[0].Compiled != *mi.Compiled {
		t.Errorf("listing stats %+v != publish stats %+v", *list.Models[0].Compiled, *mi.Compiled)
	}
}

func TestListAndHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	putModel(t, ts, "a/policy", testModel(t))
	putModel(t, ts, "b/policy", testModel(t))
	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []modelInfo `json:"models"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 2 || list.Models[0].Name != "a/policy" {
		t.Errorf("list = %+v", list.Models)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	err = json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if err != nil || health.Status != "ok" || health.Models != 2 {
		t.Errorf("healthz = %+v (%v)", health, err)
	}
}

// parsePrometheus reads the text exposition format into sample name
// (with labels) -> value.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndex(line, " ")
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestMetricsEndpointExposesCountersAndHistograms(t *testing.T) {
	ts, _ := newTestServer(t)
	m := testModel(t)
	putModel(t, ts, "policy", m)

	// Two identical predictions: the second must hit the decision cache.
	x := make([]float64, m.Schema.Len())
	x[m.Schema.Index(features.NumIndices)] = 42
	body, _ := json.Marshal(map[string]any{"model": "policy", "x": x})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(strings.Builder)
	if _, err := io.Copy(raw, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	samples := parsePrometheus(t, raw.String())

	checks := map[string]float64{
		`apollo_http_requests_total{handler="models_put"}`: 1,
		`apollo_http_requests_total{handler="predict"}`:    2,
		`apollo_predictions_total`:                         2,
		`apollo_predict_cache_hits_total`:                  1,
		`apollo_model_publishes_total{model="policy"}`:     1,
		`apollo_model_version{model="policy"}`:             1,
	}
	for name, want := range checks {
		if got, ok := samples[name]; !ok || got != want {
			t.Errorf("%s = %g (present=%v), want %g", name, got, ok, want)
		}
	}
	// Histogram invariants: count matches instrumented requests, +Inf
	// bucket is cumulative-total, sum is positive.
	count := samples["apollo_http_request_duration_seconds_count"]
	if count < 3 {
		t.Errorf("histogram count = %g, want >= 3", count)
	}
	if inf := samples[`apollo_http_request_duration_seconds_bucket{le="+Inf"}`]; inf != count {
		t.Errorf("+Inf bucket %g != count %g", inf, count)
	}
	if samples["apollo_http_request_duration_seconds_sum"] <= 0 {
		t.Error("histogram sum not positive")
	}
	// Buckets are monotone non-decreasing in le order.
	var bounds []float64
	for name := range samples {
		if strings.HasPrefix(name, `apollo_http_request_duration_seconds_bucket{le="`) && !strings.Contains(name, "+Inf") {
			b, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(name,
				`apollo_http_request_duration_seconds_bucket{le="`), `"}`), 64)
			if err != nil {
				t.Fatal(err)
			}
			bounds = append(bounds, b)
		}
	}
	sort.Float64s(bounds)
	prev := -1.0
	for _, b := range bounds {
		cur := samples[fmt.Sprintf(`apollo_http_request_duration_seconds_bucket{le=%q}`, strconv.FormatFloat(b, 'g', -1, 64))]
		if cur < prev {
			t.Errorf("bucket le=%g count %g below previous %g", b, cur, prev)
		}
		prev = cur
	}
}
