package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/registry"
	"apollo/internal/telemetry"
)

// testBatch builds a valid batch in the capture layout of the test
// model's schema.
func testBatch(t *testing.T, model string, rows [][]float64) *telemetry.Batch {
	t.Helper()
	cols := core.RecordColumns(testModel(t).Schema)
	f := dataset.NewFrame(cols...)
	for _, r := range rows {
		full := make([]float64, len(cols))
		copy(full, r)
		f.AddRow(full)
	}
	return telemetry.NewBatch(model, f)
}

func postBatch(t *testing.T, url string, b *telemetry.Batch) *http.Response {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/telemetry", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestTelemetryIngestSpoolsAndCounts(t *testing.T) {
	dir := t.TempDir()
	reg := registry.New()
	srv := New(reg, WithTelemetryDir(dir))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	putModel(t, ts, "app/policy", testModel(t))
	resp := postBatch(t, ts.URL, testBatch(t, "app/policy", [][]float64{{100}, {200}}))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %s", resp.Status)
	}

	// Rows landed in the model's spool, tailable by a cursor.
	cur := telemetry.NewCursor(filepath.Join(dir, "app", "policy"))
	if err := srv.CloseSpools(); err != nil {
		t.Fatal(err)
	}
	frame, err := cur.Poll()
	if err != nil || frame == nil || frame.Len() != 2 {
		t.Fatalf("spool poll = %v, %v; want 2 rows", frame, err)
	}

	mt := metricsText(t, ts)
	for _, want := range []string{
		`apollo_telemetry_batches_total{model="app/policy"} 1`,
		`apollo_telemetry_rows_total{model="app/policy"} 2`,
	} {
		if !strings.Contains(mt, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTelemetryIngestRejections(t *testing.T) {
	reg := registry.New()
	srv := New(reg, WithTelemetryDir(t.TempDir()))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	putModel(t, ts, "app/policy", testModel(t))

	// Tampered schema hash.
	b := testBatch(t, "app/policy", [][]float64{{1}})
	b.SchemaHash = "0000000000000000"
	if resp := postBatch(t, ts.URL, b); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad hash: status %s", resp.Status)
	}

	// Columns that cannot retrain the registered model.
	narrow := dataset.NewFrame("bogus", "time_ns")
	narrow.AddRow([]float64{1, 2})
	if resp := postBatch(t, ts.URL, telemetry.NewBatch("app/policy", narrow)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("schema mismatch: status %s", resp.Status)
	}

	// Path traversal in the model name.
	if resp := postBatch(t, ts.URL, testBatch(t, "../../etc/cron", [][]float64{{1}})); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("traversal name: status %s", resp.Status)
	}

	mt := metricsText(t, ts)
	for _, want := range []string{
		`apollo_telemetry_rejected_total{reason="invalid"} 1`,
		`apollo_telemetry_rejected_total{reason="schema"} 1`,
		`apollo_telemetry_rejected_total{reason="name"} 1`,
	} {
		if !strings.Contains(mt, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A model not yet registered is accepted (trainer bootstrap).
	if resp := postBatch(t, ts.URL, testBatch(t, "new/model", [][]float64{{1}})); resp.StatusCode != http.StatusAccepted {
		t.Errorf("unregistered model: status %s", resp.Status)
	}
}

func TestTelemetryDisabledAnswers503(t *testing.T) {
	ts, _ := newTestServer(t) // no WithTelemetryDir
	resp := postBatch(t, ts.URL, testBatch(t, "app/policy", [][]float64{{1}}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("disabled ingest: status %s", resp.Status)
	}
}
