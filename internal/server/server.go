// Package server exposes a model registry over HTTP — the Apollo model
// service daemon's core. The API is plain stdlib net/http + JSON:
//
//	PUT  /models/{name}   publish a model (bare model JSON or envelope)
//	GET  /models/{name}   fetch the current envelope (ETag / If-None-Match)
//	GET  /models          list registered models
//	POST /predict         evaluate a model on one vector or a batch
//	POST /telemetry       ingest sampled launch measurements into the
//	                      per-model spool (enabled by WithTelemetryDir)
//	GET  /healthz         liveness
//	GET  /metrics         Prometheus text: requests, predictions, cache
//	                      hits, model versions, latency histograms
//
// Prediction requests are memoized per (model version, feature vector):
// an application's launches repeat a small set of unique vectors (the
// insight behind the paper's labeling), so the cache absorbs most remote
// prediction traffic.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"apollo/internal/ctree"
	"apollo/internal/flight"
	"apollo/internal/looptrace"
	"apollo/internal/metrics"
	"apollo/internal/registry"
	"apollo/internal/telemetry"
)

// maxModelBytes caps PUT bodies; trained trees are tens of kilobytes.
const maxModelBytes = 16 << 20

// decisionCacheCap bounds the prediction memo cache; on overflow the
// cache resets (vectors repeat heavily, so it refills immediately).
const decisionCacheCap = 8192

// Server wires a registry to HTTP handlers plus a metrics set.
type Server struct {
	reg   *registry.Registry
	met   *metrics.Metrics
	rc    *metrics.RuntimeCollector
	fl    *flight.Recorder
	trace *looptrace.Tracer // nil = loop events off
	mux   *http.ServeMux

	cacheMu sync.RWMutex //apollo:lockrank 20
	// decision memo: ETag + vector bytes -> predicted class.
	decisions map[string]int

	// telemetry ingestion (off when telemetryDir is empty). spoolMu
	// nests outside each Spool's own mutex (CloseSpools seals segments
	// while holding it), hence the lower rank.
	telemetryDir string
	spoolMu      sync.Mutex //apollo:lockrank 21
	spools       map[string]*telemetry.Spool
}

// New returns a server over reg with a fresh metrics set.
func New(reg *registry.Registry, opts ...Option) *Server {
	s := &Server{
		reg:       reg,
		met:       metrics.New(),
		mux:       http.NewServeMux(),
		decisions: make(map[string]int),
		spools:    make(map[string]*telemetry.Spool),
	}
	s.rc = metrics.NewRuntimeCollector(s.met)
	s.fl = flight.New(flight.Options{Shards: 4, ShardCapacity: 256})
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("PUT /models/{name...}", s.instrument("models_put", s.handlePut))
	s.mux.HandleFunc("GET /models/{name...}", s.instrument("models_get", s.handleGet))
	s.mux.HandleFunc("GET /models", s.instrument("models_list", s.handleList))
	s.mux.HandleFunc("GET /models/{$}", s.instrument("models_list", s.handleList))
	s.mux.HandleFunc("POST /predict", s.instrument("predict", s.handlePredict))
	s.mux.HandleFunc("POST /telemetry", s.instrument("telemetry", s.handleTelemetry))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Seed version gauges for models loaded from disk at open.
	for _, name := range reg.Names() {
		if e, ok := reg.Get(name); ok {
			s.met.GaugeSet("apollo_model_version", "model", name,
				"Current registry version of each model.", int64(e.Version))
		}
	}
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metrics set (the registry watcher's
// reload hook feeds it too).
func (s *Server) Metrics() *metrics.Metrics { return s.met }

// Flight returns the server's always-on flight recorder. Every cache-
// missing /predict evaluation emits a decision record to it; the daemon
// hangs the flight debug endpoints off it via flight.RegisterDebug.
func (s *Server) Flight() *flight.Recorder { return s.fl }

// NoteReload records watcher hot-reloads and refreshes version gauges.
func (s *Server) NoteReload(n int) {
	s.met.CounterAdd("apollo_model_reloads_total", "", "",
		"Models hot-reloaded from disk by the registry watcher.", uint64(n))
	for _, name := range s.reg.Names() {
		if e, ok := s.reg.Get(name); ok {
			s.met.GaugeSet("apollo_model_version", "model", name,
				"Current registry version of each model.", int64(e.Version))
			s.noteLineage(e)
		}
	}
}

// instrument wraps a handler with the request counter and latency
// histogram.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.CounterAdd("apollo_http_requests_total", "handler", name,
			"HTTP requests served, by handler.", 1)
		h(w, r)
		s.met.Observe("apollo_http_request_duration_seconds",
			"HTTP request latency.", time.Since(start).Seconds())
	}
}

// noteWriteError counts a failed response write. By the time a body
// write fails the client has hung up mid-response, so there is nobody
// left to answer; the counter is the error's sink.
func (s *Server) noteWriteError(where string, err error) {
	if err == nil {
		return
	}
	s.met.CounterAdd("apollo_response_write_errors_total", "handler", where,
		"Response bodies that failed to write (client gone mid-response).", 1)
}

// writeJSON encodes v into the response and counts write failures under
// the given handler label.
func (s *Server) writeJSON(w http.ResponseWriter, where string, v any) {
	s.noteWriteError(where, json.NewEncoder(w).Encode(v))
}

// errorJSON writes a JSON error body with the given status.
func (s *Server) errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	s.writeJSON(w, "error", map[string]string{"error": fmt.Sprintf(format, args...)})
}

// modelInfo is the JSON summary of one registry entry. Compiled carries
// the publish-time ctree compilation stats (node counts, flat-array
// bytes, specialization kind) when the entry compiled.
type modelInfo struct {
	Name       string       `json:"name"`
	Version    int          `json:"version"`
	ETag       string       `json:"etag"`
	SchemaHash string       `json:"schema_hash"`
	Parameter  string       `json:"parameter"`
	Features   int          `json:"features"`
	Compiled   *ctree.Stats `json:"compiled,omitempty"`
}

func info(e *registry.Entry) modelInfo {
	mi := modelInfo{
		Name:       e.Name,
		Version:    e.Version,
		ETag:       e.ETag,
		SchemaHash: e.SchemaHash,
		Parameter:  e.Model.Param.String(),
		Features:   e.Model.Schema.Len(),
	}
	if e.Compiled != nil {
		st := e.Compiled.Stats()
		mi.Compiled = &st
	}
	return mi
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	data, err := io.ReadAll(io.LimitReader(r.Body, maxModelBytes+1))
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(data) > maxModelBytes {
		s.errorJSON(w, http.StatusRequestEntityTooLarge, "model exceeds %d bytes", maxModelBytes)
		return
	}
	e, err := s.reg.PublishRaw(name, data)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.CounterAdd("apollo_model_publishes_total", "model", name,
		"Models published via PUT, by model.", 1)
	s.met.GaugeSet("apollo_model_version", "model", name,
		"Current registry version of each model.", int64(e.Version))
	s.noteLineage(e)
	loop, parent := "", 0
	if e.Lineage != nil {
		loop, parent = e.Lineage.LoopID, e.Lineage.ParentVersion
	}
	s.trace.Emit(looptrace.KindPublish, e.Name, loop,
		looptrace.Fields{Version: int32(e.Version), Parent: int32(parent)})
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", e.ETag)
	w.WriteHeader(http.StatusCreated)
	s.writeJSON(w, "models_put", info(e))
}

// noteLineage publishes the provenance info-series for an entry whose
// envelope carried a lineage block: a constant-1 gauge whose labels say
// which loop produced the version and which version it replaced.
func (s *Server) noteLineage(e *registry.Entry) {
	if e.Lineage == nil {
		return
	}
	s.met.GaugeSet("apollo_model_lineage", "model,version,parent,loop",
		fmt.Sprintf("%s,%d,%d,%s", e.Name, e.Version, e.Lineage.ParentVersion, e.Lineage.LoopID),
		"Model provenance info-series: the loop that trained each published version and the parent it replaced.", 1)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		s.errorJSON(w, http.StatusNotFound, "no model %q", name)
		return
	}
	w.Header().Set("ETag", e.ETag)
	w.Header().Set("X-Apollo-Model-Version", strconv.Itoa(e.Version))
	w.Header().Set("X-Apollo-Schema-Hash", e.SchemaHash)
	if match := r.Header.Get("If-None-Match"); match != "" && match == e.ETag {
		s.met.CounterAdd("apollo_model_not_modified_total", "", "",
			"Conditional model fetches answered 304 Not Modified.", 1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, err := w.Write(e.Raw)
	s.noteWriteError("models_get", err)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	out := make([]modelInfo, 0, len(names))
	for _, n := range names {
		if e, ok := s.reg.Get(n); ok {
			out = append(out, info(e))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, "models_list", map[string]any{"models": out})
}

// predictRequest is the POST /predict body. Exactly one of X, Batch, or
// Features must be set. Vectors are laid out by the model's own schema;
// Features names them instead, unset features default to 0.
type predictRequest struct {
	Model    string             `json:"model"`
	X        []float64          `json:"x,omitempty"`
	Batch    [][]float64        `json:"batch,omitempty"`
	Features map[string]float64 `json:"features,omitempty"`
}

// predictResponse answers both single and batched requests.
type predictResponse struct {
	Model   string   `json:"model"`
	Version int      `json:"version"`
	Class   *int     `json:"class,omitempty"`
	Label   string   `json:"label,omitempty"`
	Classes []int    `json:"classes,omitempty"`
	Labels  []string `json:"labels,omitempty"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxModelBytes)).Decode(&req); err != nil {
		s.errorJSON(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	e, ok := s.reg.Get(req.Model)
	if !ok {
		s.errorJSON(w, http.StatusNotFound, "no model %q", req.Model)
		return
	}
	want := e.Model.Schema.Len()
	vectors := req.Batch
	single := false
	switch {
	case req.X != nil && req.Batch == nil && req.Features == nil:
		vectors, single = [][]float64{req.X}, true
	case req.Features != nil && req.X == nil && req.Batch == nil:
		x := make([]float64, want)
		for name, v := range req.Features {
			i := e.Model.Schema.Index(name)
			if i < 0 {
				s.errorJSON(w, http.StatusBadRequest, "model %q has no feature %q (features: %v)",
					req.Model, name, e.Model.Schema.Names())
				return
			}
			x[i] = v
		}
		vectors, single = [][]float64{x}, true
	case req.Batch != nil && req.X == nil && req.Features == nil:
	default:
		s.errorJSON(w, http.StatusBadRequest, "set exactly one of x, batch, or features")
		return
	}
	for i, x := range vectors {
		if len(x) != want {
			s.errorJSON(w, http.StatusBadRequest, "vector %d has %d features, model %q wants %d",
				i, len(x), req.Model, want)
			return
		}
	}
	resp := predictResponse{Model: e.Name, Version: e.Version}
	if !single && len(vectors) > 1 && e.Compiled != nil {
		resp.Classes = s.predictBatch(e, vectors)
	} else {
		for _, x := range vectors {
			resp.Classes = append(resp.Classes, s.predict(e, x))
		}
	}
	resp.Labels = make([]string, len(resp.Classes))
	for i, c := range resp.Classes {
		resp.Labels[i] = e.Model.Param.ClassName(c)
	}
	s.met.CounterAdd("apollo_predictions_total", "", "",
		"Feature vectors evaluated by POST /predict.", uint64(len(vectors)))
	if single {
		resp.Class, resp.Label = &resp.Classes[0], resp.Labels[0]
		resp.Classes, resp.Labels = nil, nil
	}
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, "predict", resp)
}

// predict evaluates one vector through the memo cache. Cache-missing
// evaluations — the ones where the model actually ran — emit a flight
// record carrying the vector, the decision trail, and the evaluation
// time (a cache hit is a repeat of a decision already on record).
func (s *Server) predict(e *registry.Entry, x []float64) int {
	key := decisionKey(e.ETag, x)
	s.cacheMu.RLock()
	class, hit := s.decisions[key]
	s.cacheMu.RUnlock()
	if hit {
		s.met.CounterAdd("apollo_predict_cache_hits_total", "", "",
			"Predictions answered from the decision memo cache.", 1)
		return class
	}
	siteID := siteIDFor(e.Name)
	if !s.fl.SiteKnown(siteID) {
		s.fl.RegisterSite(siteID, e.Name, e.Model.Schema.Names())
	}
	if e.Compiled != nil {
		// Server vectors are already in the model's own schema, so the
		// decoder needs no source mapping; re-register only when a
		// republish swapped the compiled tree.
		if d := s.fl.SiteDecoder(siteID); d == nil || d.Tree != e.Compiled {
			s.fl.SetSiteDecoder(siteID, &flight.TrailDecoder{Tree: e.Compiled})
		}
	}
	t0 := flight.Now()
	rec, tok := s.fl.Reserve(siteID)
	if rec != nil {
		if e.Compiled != nil {
			var n int
			class, n = e.Compiled.PredictOffsets(x, rec.Offsets[:])
			rec.OffsetsLen = int32(n)
		} else {
			var steps int
			class, steps = e.Model.Tree.PredictTrail(x, rec.Trail[:])
			rec.TrailLen = int32(steps)
		}
		rec.NumFeatures = int32(copy(rec.Features[:], x))
		rec.Predicted = int32(class)
		rec.Policy = int32(class)
		evalNS := float64(flight.Now() - t0)
		rec.ModelNS = evalNS
		rec.ObservedNS = evalNS
		rec.PredictedNS = s.fl.PredictObserve(siteID, class, evalNS)
	} else {
		class = e.PredictClass(x)
	}
	s.fl.Commit(tok)
	s.cacheMu.Lock()
	if len(s.decisions) >= decisionCacheCap {
		s.decisions = make(map[string]int)
	}
	s.decisions[key] = class
	s.cacheMu.Unlock()
	return class
}

// predictBatch evaluates a multi-vector request through the memo cache,
// then runs every memo-missing vector in one compiled PredictN sweep —
// one bounds-checked dispatch for the whole batch instead of a closure
// call per vector. Batched misses skip per-vector flight records (bulk
// scoring is not an interactive decision site); they surface in the
// batched-predictions counter instead.
func (s *Server) predictBatch(e *registry.Entry, vectors [][]float64) []int {
	classes := make([]int, len(vectors))
	keys := make([]string, len(vectors))
	var missIdx []int
	var miss [][]float64
	s.cacheMu.RLock()
	for i, x := range vectors {
		keys[i] = decisionKey(e.ETag, x)
		if class, hit := s.decisions[keys[i]]; hit {
			classes[i] = class
		} else {
			missIdx = append(missIdx, i)
			miss = append(miss, x)
		}
	}
	s.cacheMu.RUnlock()
	if hits := len(vectors) - len(miss); hits > 0 {
		s.met.CounterAdd("apollo_predict_cache_hits_total", "", "",
			"Predictions answered from the decision memo cache.", uint64(hits))
	}
	if len(miss) == 0 {
		return classes
	}
	out := make([]int, len(miss))
	e.Compiled.PredictN(miss, out)
	s.met.CounterAdd("apollo_predict_batched_total", "", "",
		"Memo-missing vectors evaluated through the compiled batch walk.", uint64(len(miss)))
	s.cacheMu.Lock()
	if len(s.decisions)+len(miss) > decisionCacheCap {
		s.decisions = make(map[string]int)
	}
	for j, i := range missIdx {
		classes[i] = out[j]
		s.decisions[keys[i]] = out[j]
	}
	s.cacheMu.Unlock()
	return classes
}

// siteIDFor derives the stable flight-recorder site ID for a model name
// (version-independent, so runtime EWMAs survive republishes).
func siteIDFor(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// decisionKey builds the memo key: the entry's content hash plus the
// exact vector bytes.
func decisionKey(etag string, x []float64) string {
	b := make([]byte, 0, len(etag)+len(x)*16)
	b = append(b, etag...)
	for _, v := range x {
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
		b = append(b, '|')
	}
	return string(b)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, "healthz", map[string]any{"status": "ok", "models": s.reg.Len()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.rc.Collect() // refresh goroutine/heap/GC-pause self-metrics
	s.collectFlight()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.noteWriteError("metrics", s.met.WritePrometheus(w))
}

// collectFlight snapshots the flight recorder's counters into the
// metrics set on each scrape (the recorder is the source of truth; the
// gauges mirror its monotonic counters, matching how other components'
// counters are exported here).
func (s *Server) collectFlight() {
	s.met.GaugeSet("apollo_flight_emitted_total", "", "",
		"Decision records committed to the flight recorder.", int64(s.fl.Emitted()))
	s.met.GaugeSet("apollo_flight_drops_total", "", "",
		"Flight-recorder reservations dropped on slot collisions.", int64(s.fl.Dropped()))
	for i, used := range s.fl.Occupancy() {
		s.met.GaugeSet("apollo_flight_ring_used", "shard", strconv.Itoa(i),
			"Live records in each flight-recorder ring shard.", int64(used))
	}
}
