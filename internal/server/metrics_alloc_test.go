package server

import (
	"strings"
	"sync"
	"testing"
)

// CounterAdd/Observe are //apollo:hotpath — every decision request bumps
// them — so after the first sight of a series the steady-state update
// must not allocate or lock.
func TestMetricsHotPathAllocationFree(t *testing.T) {
	m := NewMetrics()
	m.CounterAdd("apollo_decisions_total", "model", "guard", "h", 1)
	m.Observe("apollo_decision_seconds", "h", 1e-5)
	allocs := testing.AllocsPerRun(200, func() {
		m.CounterAdd("apollo_decisions_total", "model", "guard", "h", 1)
		m.Observe("apollo_decision_seconds", "h", 1e-5)
	})
	if allocs != 0 {
		t.Errorf("steady-state metric update allocates %.1f objects, want 0", allocs)
	}
}

// The copy-on-write snapshot must not lose updates racing a republish:
// counters bumped concurrently with first-sight creations of other
// series all land, because the *atomic values are shared across
// snapshots.
func TestMetricsConcurrentFirstSight(t *testing.T) {
	m := NewMetrics()
	const perG, goroutines = 200, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := string(rune('a' + g))
			for i := 0; i < perG; i++ {
				m.CounterAdd("apollo_race_total", "worker", label, "h", 1)
				m.GaugeSet("apollo_race_gauge", "worker", label, "h", int64(i))
				m.Observe("apollo_race_seconds", "h", 1e-6)
			}
		}(g)
	}
	wg.Wait()
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for g := 0; g < goroutines; g++ {
		want := "apollo_race_total{worker=\"" + string(rune('a'+g)) + "\"} 200"
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "apollo_race_seconds_count 1600") {
		t.Errorf("histogram lost observations:\n%s", out)
	}
}
