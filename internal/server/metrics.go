package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metrics is a dependency-free Prometheus-text metrics set: labeled
// counters, gauges, and fixed-bucket histograms, all updateable from the
// request hot path with atomics (label-map lookups take a short mutex
// only on first sight of a label value).
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]map[string]*atomic.Uint64 // metric -> label value -> count
	gauges     map[string]map[string]*atomic.Int64  // metric -> label value -> value
	counterLbl map[string]string                    // metric -> label name
	gaugeLbl   map[string]string
	help       map[string]string
	hists      map[string]*histogram
}

// histogram is a fixed-bucket latency histogram (cumulative on export,
// per-bucket internally).
type histogram struct {
	bounds []float64 // upper bounds, ascending
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // seconds scaled by 1e9 to stay integral
	total  atomic.Uint64
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   map[string]map[string]*atomic.Uint64{},
		gauges:     map[string]map[string]*atomic.Int64{},
		counterLbl: map[string]string{},
		gaugeLbl:   map[string]string{},
		help:       map[string]string{},
		hists:      map[string]*histogram{},
	}
}

// CounterAdd adds delta to the counter's series for the label value.
// label may be "" for an unlabeled counter.
func (m *Metrics) CounterAdd(metric, labelName, labelValue, help string, delta uint64) {
	m.counterSeries(metric, labelName, labelValue, help).Add(delta)
}

func (m *Metrics) counterSeries(metric, labelName, labelValue, help string) *atomic.Uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	series, ok := m.counters[metric]
	if !ok {
		series = map[string]*atomic.Uint64{}
		m.counters[metric] = series
		m.counterLbl[metric] = labelName
		m.help[metric] = help
	}
	c, ok := series[labelValue]
	if !ok {
		c = &atomic.Uint64{}
		series[labelValue] = c
	}
	return c
}

// GaugeSet sets the gauge's series for the label value.
func (m *Metrics) GaugeSet(metric, labelName, labelValue, help string, value int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	series, ok := m.gauges[metric]
	if !ok {
		series = map[string]*atomic.Int64{}
		m.gauges[metric] = series
		m.gaugeLbl[metric] = labelName
		m.help[metric] = help
	}
	g, ok := series[labelValue]
	if !ok {
		g = &atomic.Int64{}
		series[labelValue] = g
	}
	g.Store(value)
}

// DefaultLatencyBuckets are the histogram bounds in seconds, spanning
// sub-microsecond tree decisions to slow remote calls.
var DefaultLatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5,
}

// Observe records one observation (in seconds) into the histogram,
// creating it with DefaultLatencyBuckets on first use.
func (m *Metrics) Observe(metric, help string, seconds float64) {
	m.mu.Lock()
	h, ok := m.hists[metric]
	if !ok {
		h = &histogram{bounds: DefaultLatencyBuckets, counts: make([]atomic.Uint64, len(DefaultLatencyBuckets))}
		m.hists[metric] = h
		m.help[metric] = help
	}
	m.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, seconds)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	if seconds > 0 && !math.IsInf(seconds, 0) && !math.IsNaN(seconds) {
		h.sum.Add(uint64(seconds * 1e9))
	}
	h.total.Add(1)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for n := range m.counters {
		names = append(names, n)
	}
	for n := range m.gauges {
		names = append(names, n)
	}
	for n := range m.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if help := m.help[n]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, help); err != nil {
				return err
			}
		}
		switch {
		case m.counters[n] != nil:
			fmt.Fprintf(w, "# TYPE %s counter\n", n)
			if err := writeSeries(w, n, m.counterLbl[n], m.counters[n], func(c *atomic.Uint64) string {
				return strconv.FormatUint(c.Load(), 10)
			}); err != nil {
				return err
			}
		case m.gauges[n] != nil:
			fmt.Fprintf(w, "# TYPE %s gauge\n", n)
			if err := writeSeries(w, n, m.gaugeLbl[n], m.gauges[n], func(g *atomic.Int64) string {
				return strconv.FormatInt(g.Load(), 10)
			}); err != nil {
				return err
			}
		default:
			h := m.hists[n]
			fmt.Fprintf(w, "# TYPE %s histogram\n", n)
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatBound(b), cum)
			}
			cum += h.inf.Load()
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
			fmt.Fprintf(w, "%s_sum %g\n", n, float64(h.sum.Load())/1e9)
			if _, err := fmt.Fprintf(w, "%s_count %d\n", n, h.total.Load()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one labeled metric family, label values sorted.
func writeSeries[T any](w io.Writer, metric, label string, series map[string]*T, render func(*T) string) error {
	var keys []string
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var err error
		if label == "" || k == "" {
			_, err = fmt.Fprintf(w, "%s %s\n", metric, render(series[k]))
		} else {
			_, err = fmt.Fprintf(w, "%s{%s=%q} %s\n", metric, label, k, render(series[k]))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus clients expect.
func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }
