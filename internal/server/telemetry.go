// Telemetry ingestion: POST /telemetry accepts uploader batches and
// appends them to a per-model durable spool that the continuous trainer
// tails. Ingestion is off unless the daemon was started with a spool
// directory (WithTelemetryDir) — a read-only serving replica then
// answers 503 and clients keep their samples pending.

package server

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"

	"apollo/internal/looptrace"
	"apollo/internal/telemetry"
)

// Option configures a Server at construction.
type Option func(*Server)

// WithTelemetryDir enables telemetry ingestion, spooling each model's
// samples under dir/<model name>.
func WithTelemetryDir(dir string) Option {
	return func(s *Server) { s.telemetryDir = dir }
}

// WithLoopTrace routes the server's closed-loop events — model publishes
// and attributed telemetry ingests — through tr, correlating them with
// the retrain cycle that produced the model (via envelope lineage and
// batch attribution). A nil tracer leaves loop tracing off.
func WithLoopTrace(tr *looptrace.Tracer) Option {
	return func(s *Server) { s.trace = tr }
}

// LoopTrace returns the server's loop tracer (nil when tracing is off).
func (s *Server) LoopTrace() *looptrace.Tracer { return s.trace }

// TelemetryDir returns the spool root ("" when ingestion is disabled).
func (s *Server) TelemetryDir() string { return s.telemetryDir }

// spool returns (opening if needed) the spool for model name.
//
//apollo:lockok spool opening is a once-per-model event and spoolMu exists to serialize exactly it
func (s *Server) spool(name string) (*telemetry.Spool, error) {
	s.spoolMu.Lock()
	defer s.spoolMu.Unlock()
	if sp, ok := s.spools[name]; ok {
		return sp, nil
	}
	sp, err := telemetry.OpenSpool(filepath.Join(s.telemetryDir, filepath.FromSlash(name)), 0)
	if err != nil {
		return nil, err
	}
	s.spools[name] = sp
	return sp, nil
}

// CloseSpools seals every open telemetry spool segment.
//
//apollo:lockok shutdown path; holding spoolMu keeps late ingests from racing the close
func (s *Server) CloseSpools() error {
	s.spoolMu.Lock()
	defer s.spoolMu.Unlock()
	var first error
	for _, sp := range s.spools {
		if err := sp.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// rejectTelemetry counts and answers one rejected batch.
func (s *Server) rejectTelemetry(w http.ResponseWriter, status int, reason, format string, args ...any) {
	s.met.CounterAdd("apollo_telemetry_rejected_total", "reason", reason,
		"Telemetry batches rejected, by reason.", 1)
	s.errorJSON(w, status, format, args...)
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if s.telemetryDir == "" {
		s.rejectTelemetry(w, http.StatusServiceUnavailable, "disabled",
			"telemetry ingestion is disabled on this replica")
		return
	}
	var b telemetry.Batch
	if err := json.NewDecoder(io.LimitReader(r.Body, maxModelBytes)).Decode(&b); err != nil {
		s.rejectTelemetry(w, http.StatusBadRequest, "decode", "decoding batch: %v", err)
		return
	}
	if err := b.Validate(); err != nil {
		s.rejectTelemetry(w, http.StatusBadRequest, "invalid", "%v", err)
		return
	}
	if strings.Contains(b.Model, "..") || strings.HasPrefix(b.Model, "/") {
		s.rejectTelemetry(w, http.StatusBadRequest, "name", "invalid model name %q", b.Model)
		return
	}
	// When the target model is registered, its feature schema must be a
	// subset of the batch columns — otherwise the spooled rows could
	// never retrain it.
	if e, ok := s.reg.Get(b.Model); ok {
		cols := map[string]bool{}
		for _, c := range b.Columns {
			cols[c] = true
		}
		for _, f := range e.Model.Schema.Names() {
			if !cols[f] {
				s.rejectTelemetry(w, http.StatusBadRequest, "schema",
					"batch columns %v lack model feature %q", b.Columns, f)
				return
			}
		}
	}
	sp, err := s.spool(b.Model)
	if err != nil {
		s.rejectTelemetry(w, http.StatusInternalServerError, "spool", "opening spool: %v", err)
		return
	}
	if err := sp.Append(b.Columns, b.Rows); err != nil {
		s.rejectTelemetry(w, http.StatusConflict, "spool", "%v", err)
		return
	}
	s.met.CounterAdd("apollo_telemetry_batches_total", "model", b.Model,
		"Telemetry batches ingested, by model.", 1)
	s.met.CounterAdd("apollo_telemetry_rows_total", "model", b.Model,
		"Telemetry sample rows ingested, by model.", uint64(len(b.Rows)))
	// Attribute the spooled rows to the model version (and loop) that
	// produced them; an unattributed batch still traces, just unscoped.
	s.trace.Emit(looptrace.KindIngest, b.Model, b.LoopID,
		looptrace.Fields{Version: int32(b.SourceVersion), Rows: int64(len(b.Rows))})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	s.writeJSON(w, "telemetry", map[string]any{"rows": len(b.Rows), "spooled": sp.Appended()})
}
