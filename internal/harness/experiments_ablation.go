package harness

import (
	"fmt"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/dtree"
	"apollo/internal/platform"
	"apollo/internal/raja"
)

// The ablation experiments go beyond the paper's evaluation: each one
// isolates a design choice DESIGN.md calls out and measures its effect.

// AblMachine quantifies machine sensitivity: a policy model trained
// against the Sandy Bridge node is evaluated against labels derived from
// a 64-core many-core node, whose fork cost and core speed shift the
// seq/parallel crossover. The accuracy drop is the reason Apollo trains
// on the target architecture (the paper's training runs are per-machine).
func (r *Runner) AblMachine() error {
	desc, err := appByName("CleverLeaf")
	if err != nil {
		return err
	}
	snbSet, err := r.labeled("CleverLeaf", core.ExecutionPolicy, r.schema)
	if err != nil {
		return err
	}
	snbModel, err := core.Train(snbSet, core.TrainConfig{})
	if err != nil {
		return err
	}

	// Re-record the same workload against the many-core machine model
	// and relabel.
	knl := platform.KNLNode()
	steps := r.stepsFor(desc)
	knlFrame := dataset.NewFrame(core.RecordColumns(r.schema)...)
	for _, problem := range desc.Problems {
		for _, size := range r.sizesFor(desc) {
			ann := caliper.New()
			rec := NewSweepRecorder(r.schema, ann, knl, r.opts.NoiseAmp, r.opts.Seed)
			clk := platform.NewSimClock(knl, 0, 0)
			ctx := raja.NewSimContext(clk, desc.DefaultParams)
			ctx.Hooks = rec
			sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
			if err != nil {
				return err
			}
			for i := 0; i < steps; i++ {
				sim.Step()
			}
			knlFrame.Append(rec.Frame())
		}
	}
	knlSet, err := core.Label(knlFrame, r.schema, core.ExecutionPolicy)
	if err != nil {
		return err
	}
	knlModel, err := core.Train(knlSet, core.TrainConfig{})
	if err != nil {
		return err
	}

	tbl := newTable("model", "on Sandy Bridge labels", "on many-core labels")
	tbl.addRow("trained on Sandy Bridge", percent(snbModel.Evaluate(snbSet)), percent(snbModel.Evaluate(knlSet)))
	tbl.addRow("trained on many-core", percent(knlModel.Evaluate(snbSet)), percent(knlModel.Evaluate(knlSet)))
	tbl.write(r.opts.Out)
	fmt.Fprintf(r.opts.Out, "\nCrossover shift: a %s-trained model loses accuracy on the %d-core node\n",
		"Sandy Bridge", knl.Cores)
	fmt.Fprintln(r.opts.Out, "and vice versa; Apollo's off-line training is per-architecture by design.")
	return nil
}

// AblClassifier compares the paper's single decision tree against the
// bagged-forest extension (Section III-B anticipates needing "more
// complex classifiers"): held-out accuracy and decision cost both matter,
// and the tree wins the cost side by an order of magnitude.
func (r *Runner) AblClassifier() error {
	tbl := newTable("application", "tree CV acc.", "forest holdout acc.", "tree depth", "forest trees")
	for _, desc := range Apps() {
		set, err := r.labeled(desc.Name, core.ExecutionPolicy, r.schema)
		if err != nil {
			return err
		}
		cv, err := core.CrossValidate(set, r.opts.Folds, r.opts.Seed, core.TrainConfig{})
		if err != nil {
			return err
		}
		// Forest: 80/20 holdout (bagging already resamples internally).
		folds := dataset.KFold(set.Len(), 5, r.opts.Seed)
		train, test := subset(set, folds[0].Train), subset(set, folds[0].Test)
		forest, err := dtree.TrainForest(train.X, train.Y, set.Param.NumClasses(),
			dtree.ForestConfig{Size: 15, Seed: r.opts.Seed})
		if err != nil {
			return err
		}
		forestAcc := forest.Accuracy(test.X, test.Y)
		tree, err := core.Train(set, core.TrainConfig{})
		if err != nil {
			return err
		}
		tbl.addRow(desc.Name, percent(cv.MeanAccuracy), percent(forestAcc),
			tree.Tree.Depth(), len(forest.Trees))
	}
	tbl.write(r.opts.Out)
	fmt.Fprintln(r.opts.Out, "\nForests match tree accuracy on this parameter space; each decision costs")
	fmt.Fprintln(r.opts.Out, "Size x a tree evaluation, so the single tree remains the deployment model.")
	return nil
}

// AblNoise sweeps the measurement-noise amplitude and reports both
// models' cross-validated accuracy. It isolates the repository's
// explanation for Table II's contrast: policy labels are robust to noise
// (seq and omp differ by large factors) while chunk labels drown in it
// (most chunks tie within a few percent).
func (r *Runner) AblNoise() error {
	desc, err := appByName("CleverLeaf")
	if err != nil {
		return err
	}
	amps := []float64{0, 0.02, 0.05, 0.08, 0.15}
	tbl := newTable("noise amplitude", "policy accuracy", "chunk accuracy")
	steps := r.stepsFor(desc)
	for _, amp := range amps {
		frame := dataset.NewFrame(core.RecordColumns(r.schema)...)
		for _, size := range r.sizesFor(desc) {
			ann := caliper.New()
			rec := NewSweepRecorder(r.schema, ann, r.machine, amp, r.opts.Seed)
			clk := platform.NewSimClock(r.machine, 0, 0)
			ctx := raja.NewSimContext(clk, desc.DefaultParams)
			ctx.Hooks = rec
			sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: "sedov", Size: size})
			if err != nil {
				return err
			}
			for i := 0; i < steps; i++ {
				sim.Step()
			}
			frame.Append(rec.Frame())
		}
		polAcc, err := cvAccuracy(frame, r, core.ExecutionPolicy)
		if err != nil {
			return err
		}
		chunkAcc, err := cvAccuracy(frame, r, core.ChunkSize)
		if err != nil {
			return err
		}
		tbl.addRow(fmt.Sprintf("%.0f%%", amp*100), percent(polAcc), percent(chunkAcc))
	}
	tbl.write(r.opts.Out)
	fmt.Fprintln(r.opts.Out, "\nChunk-size labels collapse as noise grows (candidates tie within noise);")
	fmt.Fprintln(r.opts.Out, "policy labels survive because seq and parallel differ by large factors.")
	return nil
}

// cvAccuracy labels a frame for the parameter and cross-validates.
func cvAccuracy(frame *dataset.Frame, r *Runner, param core.Parameter) (float64, error) {
	set, err := core.Label(frame, r.schema, param)
	if err != nil {
		return 0, err
	}
	cv, err := core.CrossValidate(set, r.opts.Folds, r.opts.Seed, core.TrainConfig{})
	if err != nil {
		return 0, err
	}
	return cv.MeanAccuracy, nil
}
