// Package harness regenerates every table and figure of the paper's
// evaluation (Section IV). Each experiment has a stable identifier
// (fig1, fig2, fig4, table1, table2, fig6–fig13, table3, table4); the
// apollo-bench command and the repository's benchmark suite both drive
// this package.
//
// Experiments run the three proxy applications on the analytic Sandy
// Bridge node model (see package platform for the substitution), record
// training data, train and reduce decision-tree models, and print the
// same rows and series the paper reports. Absolute numbers differ from
// the paper's testbed; the acceptance criteria are the shapes (see
// DESIGN.md section 3).
package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"apollo/internal/app"
	"apollo/internal/ares"
	"apollo/internal/cleverleaf"
	"apollo/internal/features"
	"apollo/internal/lulesh"
	"apollo/internal/platform"
	"apollo/internal/raja"
)

// Options configures a harness run.
type Options struct {
	// Out receives the experiment reports.
	Out io.Writer
	// Quick shrinks problem sizes and step counts for tests.
	Quick bool
	// Seed drives measurement noise and cross-validation shuffling.
	Seed uint64
	// NoiseAmp is the relative measurement-noise amplitude applied to
	// recorded kernel times (default 0.08, roughly the run-to-run
	// variation of a dedicated node).
	NoiseAmp float64
	// Folds is the cross-validation fold count (default 10, as in the
	// paper).
	Folds int
}

func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Seed == 0 {
		o.Seed = 20170529 // IPDPS 2017 opening day
	}
	if o.NoiseAmp == 0 {
		o.NoiseAmp = 0.08
	}
	if o.Folds == 0 {
		o.Folds = 10
		if o.Quick {
			o.Folds = 5
		}
	}
	return o
}

// Runner executes experiments, caching recorded training data across
// experiments so the full suite records each application once.
type Runner struct {
	opts    Options
	machine *platform.Machine
	schema  *features.Schema

	mu   sync.Mutex
	data map[string]*appData
}

// NewRunner builds a runner over the modeled Sandy Bridge node.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:    opts.withDefaults(),
		machine: platform.SandyBridgeNode(),
		schema:  features.TableI(),
		data:    make(map[string]*appData),
	}
}

// Apps returns the three applications of the evaluation, in paper order.
func Apps() []app.Descriptor {
	return []app.Descriptor{
		lulesh.Descriptor(),
		cleverleaf.Descriptor(),
		ares.Descriptor(),
	}
}

// appByName returns the named application descriptor.
func appByName(name string) (app.Descriptor, error) {
	for _, d := range Apps() {
		if d.Name == name {
			return d, nil
		}
	}
	return app.Descriptor{}, fmt.Errorf("harness: unknown application %q", name)
}

// Experiment is one reproducible artifact of the evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) error
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Fig 1: runtime variation across execution policy choices", (*Runner).Fig1},
		{"fig2", "Fig 2: dynamic-best vs static OpenMP, most variable CleverLeaf kernels", (*Runner).Fig2},
		{"fig4", "Fig 4: example decision tree model and generated code", (*Runner).Fig4},
		{"table1", "Table I: features collected for each RAJA kernel", (*Runner).Table1},
		{"table2", "Table II: model accuracy (execution policy, chunk size)", (*Runner).Table2},
		{"fig6", "Fig 6: predicted execution policies vs best and static OpenMP", (*Runner).Fig6},
		{"fig7", "Fig 7: predicted chunk sizes vs best and static 128", (*Runner).Fig7},
		{"fig8", "Fig 8: normalized importance of the top 5 features", (*Runner).Fig8},
		{"fig9", "Fig 9: model accuracy vs number of features", (*Runner).Fig9},
		{"fig10", "Fig 10: model accuracy vs decision tree depth", (*Runner).Fig10},
		{"fig11", "Fig 11: speedups from dynamically tuned execution policies", (*Runner).Fig11},
		{"fig12", "Fig 12: CleverLeaf strong scaling with dynamic tuning", (*Runner).Fig12},
		{"fig13", "Fig 13: ARES Hotspot strong scaling with dynamic tuning", (*Runner).Fig13},
		{"table3", "Table III: cross-application and cross-deck model accuracy", (*Runner).Table3},
		{"table4", "Table IV: tuning-technique taxonomy with measured costs", (*Runner).Table4},
		{"abl-machine", "Ablation: model portability across machine models", (*Runner).AblMachine},
		{"abl-classifier", "Ablation: decision tree vs bagged forest", (*Runner).AblClassifier},
		{"abl-noise", "Ablation: label robustness vs measurement noise", (*Runner).AblNoise},
	}
}

// ExperimentIDs returns the experiment identifiers in order.
func ExperimentIDs() []string {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// Run executes the experiment with the given ID, or all of them for "all".
func (r *Runner) Run(id string) error {
	if id == "all" {
		for _, e := range Experiments() {
			if err := r.runOne(e); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return r.runOne(e)
		}
	}
	return fmt.Errorf("harness: unknown experiment %q (have %v)", id, ExperimentIDs())
}

func (r *Runner) runOne(e Experiment) error {
	fmt.Fprintf(r.opts.Out, "\n=== %s — %s ===\n", e.ID, e.Title)
	return e.Run(r)
}

// sizesFor returns the training sizes for an app under the options.
func (r *Runner) sizesFor(desc app.Descriptor) []int {
	sizes := desc.TrainSizes
	if r.opts.Quick && len(sizes) > 2 {
		sizes = sizes[:2]
	}
	return sizes
}

// stepsFor returns the per-run step count for an app under the options.
func (r *Runner) stepsFor(desc app.Descriptor) int {
	steps := desc.Steps
	if r.opts.Quick && steps > 6 {
		steps = 6
	}
	return steps
}

// kernelNames maps the encoded func feature back to kernel names across
// all applications.
func kernelNames() map[float64]string {
	out := make(map[float64]string)
	add := func(ks []*raja.Kernel) {
		for _, k := range ks {
			out[encodeName(k.Name)] = k.Name
		}
	}
	add(lulesh.Kernels())
	add(cleverleaf.Kernels())
	add(ares.Kernels())
	return out
}

// sortedKeys returns map keys sorted for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
