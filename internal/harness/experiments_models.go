package harness

import (
	"fmt"
	"strconv"
	"strings"

	"apollo/internal/codegen"
	"apollo/internal/core"
	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/instmix"
	"apollo/internal/raja"
	"apollo/internal/stats"
)

// Fig1 reports the runtime variation across execution policy and chunk
// choices for each application's kernels: the fastest choice can be
// orders of magnitude faster than the slowest.
func (r *Runner) Fig1() error {
	names := kernelNames()
	tbl := newTable("application", "kernels", "median max/min", "p90 max/min", "worst max/min")
	for _, desc := range Apps() {
		d, err := r.record(desc.Name)
		if err != nil {
			return err
		}
		perKernel := variationByKernel(d, r.schema, names)
		var all []float64
		for _, ratios := range perKernel {
			all = append(all, ratios...)
		}
		tbl.addRow(desc.Name, len(perKernel),
			ratio(stats.Median(all)), ratio(stats.Percentile(all, 90)), ratio(stats.Max(all)))
	}
	tbl.write(r.opts.Out)
	fmt.Fprintln(r.opts.Out, "\nPer-kernel variation (max/min runtime across all policy and chunk choices):")
	for _, desc := range Apps() {
		d, err := r.record(desc.Name)
		if err != nil {
			return err
		}
		perKernel := variationByKernel(d, r.schema, names)
		kt := newTable("kernel", "launch configs", "median", "worst")
		for _, name := range sortedKeys(perKernel) {
			ratios := perKernel[name]
			kt.addRow(name, len(ratios), ratio(stats.Median(ratios)), ratio(stats.Max(ratios)))
		}
		fmt.Fprintf(r.opts.Out, "\n[%s]\n", desc.Name)
		kt.write(r.opts.Out)
	}
	return nil
}

// variationByKernel groups recorded samples by unique feature vector and
// returns, per kernel, the max/min runtime ratio of each unique launch
// configuration.
func variationByKernel(d *appData, schema *features.Schema, names map[float64]string) map[string][]float64 {
	frame := d.all
	funcIdx := frame.MustCol(features.Func)
	timeIdx := frame.MustCol(core.ColTimeNS)
	featIdx := make([]int, schema.Len())
	for i, n := range schema.Names() {
		featIdx[i] = frame.MustCol(n)
	}
	type minMax struct{ lo, hi float64 }
	groups := make(map[string]*minMax)
	groupKernel := make(map[string]float64)
	var key strings.Builder
	for i := 0; i < frame.Len(); i++ {
		row := frame.Row(i)
		key.Reset()
		for _, j := range featIdx {
			key.WriteString(strconv.FormatFloat(row[j], 'g', -1, 64))
			key.WriteByte('|')
		}
		k := key.String()
		g := groups[k]
		t := row[timeIdx]
		if g == nil {
			groups[k] = &minMax{lo: t, hi: t}
			groupKernel[k] = row[funcIdx]
			continue
		}
		if t < g.lo {
			g.lo = t
		}
		if t > g.hi {
			g.hi = t
		}
	}
	out := make(map[string][]float64)
	for k, g := range groups {
		if g.lo <= 0 {
			continue
		}
		name := names[groupKernel[k]]
		if name == "" {
			name = fmt.Sprintf("func_%g", groupKernel[k])
		}
		out[name] = append(out[name], g.hi/g.lo)
	}
	return out
}

// Fig2 compares the total time of CleverLeaf's most variable kernels
// under per-launch best policy selection against the static
// OpenMP-everywhere default.
func (r *Runner) Fig2() error {
	set, err := r.labeledProblem("CleverLeaf", "sedov", core.ExecutionPolicy, r.schema)
	if err != nil {
		return err
	}
	names := kernelNames()
	perKernel := kernelTotals(set, r.schema, names, int(raja.OmpParallelForExec))
	top := topKernelsByStatic(perKernel, 8)
	tbl := newTable("kernel", "static OpenMP", "dynamic best", "improvement")
	var totStatic, totBest float64
	for _, kt := range top {
		tbl.addRow(kt.name, stats.FormatNS(kt.static), stats.FormatNS(kt.best), ratio(kt.static/kt.best))
		totStatic += kt.static
		totBest += kt.best
	}
	tbl.addRow("TOTAL (8 kernels)", stats.FormatNS(totStatic), stats.FormatNS(totBest), ratio(totStatic/totBest))
	tbl.write(r.opts.Out)
	return nil
}

// kernelTotal holds one kernel's weighted time totals over a labeled set.
type kernelTotal struct {
	name                    string
	predicted, best, static float64
}

// kernelTotals accumulates per-kernel weighted time totals for the best
// and static choices (predicted filled by callers that have a model).
func kernelTotals(set *core.LabeledSet, schema *features.Schema, names map[float64]string, staticClass int) map[string]*kernelTotal {
	funcIdx := set.Schema.Index(features.Func)
	out := make(map[string]*kernelTotal)
	for i, x := range set.X {
		name := names[x[funcIdx]]
		if name == "" {
			name = fmt.Sprintf("func_%g", x[funcIdx])
		}
		kt := out[name]
		if kt == nil {
			kt = &kernelTotal{name: name}
			out[name] = kt
		}
		w := set.Weights[i]
		kt.best += w * timeOf(set.MeanTimes[i], set.Y[i])
		kt.static += w * timeOf(set.MeanTimes[i], staticClass)
	}
	return out
}

// timeOf reads a class's mean time, falling back to the worst observed.
func timeOf(times []float64, class int) float64 {
	if class >= 0 && class < len(times) && times[class] == times[class] { // not NaN
		return times[class]
	}
	worst := 0.0
	for _, t := range times {
		if t == t && t > worst {
			worst = t
		}
	}
	return worst
}

// topKernelsByStatic returns the k kernels with the highest
// static-to-best improvement potential, ties broken by static time.
func topKernelsByStatic(per map[string]*kernelTotal, k int) []*kernelTotal {
	var all []*kernelTotal
	for _, kt := range per {
		all = append(all, kt)
	}
	// Sort by improvement ratio descending.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			ri := all[j].static / maxf(all[j].best, 1)
			rj := all[j-1].static / maxf(all[j-1].best, 1)
			if ri > rj || (ri == rj && all[j].static > all[j-1].static) {
				all[j], all[j-1] = all[j-1], all[j]
			} else {
				break
			}
		}
	}
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Fig4 prints an example decision tree in the paper's form — thresholds
// on num_indices choosing between sequential and parallel execution —
// and the Go code Apollo generates from it.
func (r *Runner) Fig4() error {
	schema := r.schema.Select(features.NumIndices, features.NumSegments)
	set, err := r.labeled("CleverLeaf", core.ExecutionPolicy, schema)
	if err != nil {
		return err
	}
	model, err := core.Train(set, core.TrainConfig{Tree: dtree.Config{MaxDepth: 3}})
	if err != nil {
		return err
	}
	fmt.Fprintln(r.opts.Out, "Decision tree (depth capped at 3):")
	fmt.Fprintln(r.opts.Out, model.Tree.String())
	fmt.Fprintln(r.opts.Out, "Generated Go decision function:")
	fmt.Fprintln(r.opts.Out, codegen.Generate(model, "tuned", "apolloBeginForall"))
	return nil
}

// Table1 prints the feature schema, reproducing the paper's Table I.
func (r *Runner) Table1() error {
	tbl := newTable("category", "feature", "description")
	kernelDesc := map[string]string{
		features.Func:        "Name of function",
		features.FuncSize:    "Total number of instructions in kernel body",
		features.IndexType:   "Type of RAJA IndexSet",
		features.LoopID:      "Address identifying kernel",
		features.NumIndices:  "Number of indices in each segment",
		features.NumSegments: "Number of segments",
		features.Stride:      "Stride of indices in each segment",
	}
	for _, f := range features.KernelFeatureNames() {
		tbl.addRow("kernel", f, kernelDesc[f])
	}
	for _, g := range instmix.GroupNames() {
		tbl.addRow("instruction", g, "Occurrences of the grouped mnemonic in the kernel body")
	}
	appDesc := map[string]string{
		features.Timestep:    "Current cycle",
		features.ProblemSize: "Global problem size",
		features.ProblemName: "Name of the input deck",
		features.PatchID:     "Numeric ID of the AMR subdomain being processed",
	}
	for _, f := range features.AppFeatureNames() {
		tbl.addRow("application", f, appDesc[f])
	}
	tbl.write(r.opts.Out)
	return nil
}

// Table2 reports 10-fold cross-validation accuracy of the execution
// policy and chunk-size models for each application, using
// deck-independent features as in the paper.
func (r *Runner) Table2() error {
	schema := r.deckFreeSchema()
	tbl := newTable("Application", "Execution Policy", "Chunk Size")
	for _, desc := range Apps() {
		polSet, err := r.labeled(desc.Name, core.ExecutionPolicy, schema)
		if err != nil {
			return err
		}
		polCV, err := core.CrossValidate(polSet, r.opts.Folds, r.opts.Seed, core.TrainConfig{})
		if err != nil {
			return err
		}
		chunkSet, err := r.labeled(desc.Name, core.ChunkSize, schema)
		if err != nil {
			return err
		}
		chunkCV, err := core.CrossValidate(chunkSet, r.opts.Folds, r.opts.Seed, core.TrainConfig{})
		if err != nil {
			return err
		}
		tbl.addRow(desc.Name, percent(polCV.MeanAccuracy), percent(chunkCV.MeanAccuracy))
	}
	tbl.write(r.opts.Out)
	return nil
}
