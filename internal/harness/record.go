package harness

import (
	"fmt"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/platform"
	"apollo/internal/raja"
)

// Variants returns the paper's training grid: the two execution policies,
// with the parallel policy swept over the default chunk and the eleven
// explicit chunk sizes.
func Variants() []raja.Params {
	out := []raja.Params{
		{Policy: raja.SeqExec},
		{Policy: raja.OmpParallelForExec, Chunk: raja.DefaultChunk},
	}
	for _, c := range raja.ChunkSizes {
		out = append(out, raja.Params{Policy: raja.OmpParallelForExec, Chunk: c})
	}
	return out
}

// encodeName mirrors the func feature's string encoding.
func encodeName(name string) float64 { return caliper.Encode(name) }

// SweepRecorder records one training row per (launch, variant) in a
// single pass. The workload sequence is identical across the paper's
// per-variant training runs (the applications are deterministic), so
// instead of re-executing the application once per parameter value, the
// recorder asks the machine model for the runtime of every variant at
// each launch and applies independent measurement noise per variant —
// producing the same data set as 13 separate recorded runs at 1/13 the
// cost. Package tuner's Recorder remains the faithful one-variant-per-run
// component and is exercised by the examples and integration tests.
type SweepRecorder struct {
	schema   *features.Schema
	ann      *caliper.Annotations
	machine  *platform.Machine
	noise    *platform.Noise
	variants []raja.Params

	frame   *dataset.Frame
	samples uint64
	row     []float64
}

// NewSweepRecorder builds a multi-variant recorder.
func NewSweepRecorder(schema *features.Schema, ann *caliper.Annotations, machine *platform.Machine, noiseAmp float64, seed uint64) *SweepRecorder {
	var noise *platform.Noise
	if noiseAmp > 0 {
		noise = &platform.Noise{Amplitude: noiseAmp, Seed: seed}
	}
	return &SweepRecorder{
		schema:   schema,
		ann:      ann,
		machine:  machine,
		noise:    noise,
		variants: Variants(),
		frame:    dataset.NewFrame(core.RecordColumns(schema)...),
		row:      make([]float64, schema.Len()+3),
	}
}

// Begin pins the executed policy to sequential; under the simulated
// clock the recorded runtimes come from the machine model per variant,
// not from the execution itself.
func (r *SweepRecorder) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	return raja.Params{Policy: raja.SeqExec}, true
}

// End synthesizes one sample per variant for the launch.
func (r *SweepRecorder) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
	x := r.schema.Extract(k, iset, r.ann)
	r.samples++
	n := r.schema.Len()
	copy(r.row, x)
	for vi, v := range r.variants {
		t := r.machine.KernelTimeNS(k.Mix, iset.Len(), v.Policy.Parallel(), v.Chunk)
		key := k.ID<<40 ^ r.samples<<8 ^ uint64(vi)
		t *= r.noise.Mul(key)
		r.row[n] = float64(v.Policy)
		r.row[n+1] = float64(v.Chunk)
		r.row[n+2] = t
		r.frame.AddRow(r.row)
	}
}

// Frame returns the recorded samples.
func (r *SweepRecorder) Frame() *dataset.Frame { return r.frame }

// appData caches an application's recorded training data.
type appData struct {
	desc app.Descriptor
	// all holds every sample of every (problem, size) run.
	all *dataset.Frame
	// perProblem holds the samples of each input deck (all sizes).
	perProblem map[string]*dataset.Frame
}

// record runs every (problem, size) combination of the application in
// record mode and returns the cached data.
func (r *Runner) record(appName string) (*appData, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.data[appName]; ok {
		return d, nil
	}
	desc, err := appByName(appName)
	if err != nil {
		return nil, err
	}
	d := &appData{
		desc:       desc,
		all:        dataset.NewFrame(core.RecordColumns(r.schema)...),
		perProblem: make(map[string]*dataset.Frame),
	}
	steps := r.stepsFor(desc)
	for _, problem := range desc.Problems {
		problemFrame := dataset.NewFrame(core.RecordColumns(r.schema)...)
		for _, size := range r.sizesFor(desc) {
			frame, err := r.recordRun(desc, problem, size, steps)
			if err != nil {
				return nil, fmt.Errorf("recording %s/%s/%d: %w", appName, problem, size, err)
			}
			problemFrame.Append(frame)
		}
		d.perProblem[problem] = problemFrame
		d.all.Append(problemFrame)
	}
	r.data[appName] = d
	return d, nil
}

// recordRun executes one (problem, size) training run in record mode.
func (r *Runner) recordRun(desc app.Descriptor, problem string, size, steps int) (*dataset.Frame, error) {
	ann := caliper.New()
	rec := NewSweepRecorder(r.schema, ann, r.machine, r.opts.NoiseAmp, r.opts.Seed)
	clk := platform.NewSimClock(r.machine, 0, 0)
	ctx := raja.NewSimContext(clk, desc.DefaultParams)
	ctx.Hooks = rec
	sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
	if err != nil {
		return nil, err
	}
	for i := 0; i < steps; i++ {
		sim.Step()
	}
	return rec.Frame(), nil
}

// deckFreeSchema is the Table I schema without deck-specific features,
// used for the paper's deck-independent accuracy models (Table II).
func (r *Runner) deckFreeSchema() *features.Schema {
	return r.schema.Without(features.ProblemName)
}

// labeled builds the labeled set of one application for a parameter.
func (r *Runner) labeled(appName string, param core.Parameter, schema *features.Schema) (*core.LabeledSet, error) {
	d, err := r.record(appName)
	if err != nil {
		return nil, err
	}
	return core.Label(d.all, schema, param)
}

// labeledProblem builds the labeled set of one (application, problem).
func (r *Runner) labeledProblem(appName, problem string, param core.Parameter, schema *features.Schema) (*core.LabeledSet, error) {
	d, err := r.record(appName)
	if err != nil {
		return nil, err
	}
	frame, ok := d.perProblem[problem]
	if !ok {
		return nil, fmt.Errorf("harness: %s has no problem %q", appName, problem)
	}
	return core.Label(frame, schema, param)
}

// policyModel trains the deployment policy model of one application:
// full-feature training followed by the paper's lightweight reduction
// (top 5 features, tree depth 15).
func (r *Runner) policyModel(appName string) (*core.Model, *core.LabeledSet, error) {
	set, err := r.labeled(appName, core.ExecutionPolicy, r.schema)
	if err != nil {
		return nil, nil, err
	}
	full, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		return nil, nil, err
	}
	reduced, err := full.Reduce(set, 5, 15, core.TrainConfig{})
	if err != nil {
		return nil, nil, err
	}
	return reduced, set, nil
}
