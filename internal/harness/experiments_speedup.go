package harness

import (
	"fmt"
	"time"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/cleverleaf"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/instmix"
	"apollo/internal/mpirt"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/search"
	"apollo/internal/stats"
	"apollo/internal/tuner"
)

// hooksFactory builds the Apollo component installed for a run, given the
// run's annotation blackboard.
type hooksFactory func(ann *caliper.Annotations) raja.Hooks

// defaultHooksFactory returns the application's static default: nil hooks
// (context default parameters) or the app's hand-assigned policies.
func defaultHooksFactory(desc app.Descriptor) hooksFactory {
	return func(ann *caliper.Annotations) raja.Hooks {
		if desc.NewDefaultHooks != nil {
			return desc.NewDefaultHooks()
		}
		return nil
	}
}

// tunedHooksFactory returns a factory installing the Apollo tuner with
// the given policy model.
func tunedHooksFactory(r *Runner, desc app.Descriptor, model *core.Model) hooksFactory {
	return func(ann *caliper.Annotations) raja.Hooks {
		return tuner.NewTuner(r.schema, ann, desc.DefaultParams).UsePolicyModel(model)
	}
}

// timedRun executes one single-node application run and returns its
// simulated wall time in nanoseconds.
func (r *Runner) timedRun(desc app.Descriptor, problem string, size, steps int, factory hooksFactory) (float64, error) {
	ann := caliper.New()
	clk := platform.NewSimClock(r.machine, r.opts.NoiseAmp, r.opts.Seed+11)
	ctx := raja.NewSimContext(clk, desc.DefaultParams)
	ctx.Hooks = factory(ann)
	sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
	if err != nil {
		return 0, err
	}
	for i := 0; i < steps; i++ {
		sim.Step()
	}
	return clk.NowNS(), nil
}

// Fig11 reports the end-to-end speedup of Apollo-tuned execution against
// each application's default configuration, across problem sizes.
func (r *Runner) Fig11() error {
	tbl := newTable("application", "problem", "size", "default", "apollo", "speedup")
	for _, desc := range Apps() {
		// One model per application, reused across input decks, as the
		// paper deploys it.
		model, _, err := r.policyModel(desc.Name)
		if err != nil {
			return err
		}
		steps := r.stepsFor(desc)
		problems := desc.Problems
		if r.opts.Quick {
			problems = problems[:1]
		}
		for _, problem := range problems {
			for _, size := range r.sizesFor(desc) {
				def, err := r.timedRun(desc, problem, size, steps, defaultHooksFactory(desc))
				if err != nil {
					return err
				}
				tuned, err := r.timedRun(desc, problem, size, steps, tunedHooksFactory(r, desc, model))
				if err != nil {
					return err
				}
				tbl.addRow(desc.Name, problem, size, stats.FormatNS(def), stats.FormatNS(tuned), ratio(def/tuned))
			}
		}
	}
	tbl.write(r.opts.Out)
	return nil
}

// scalingRun executes one rank-decomposed run under the bulk-synchronous
// scaling model and returns its simulated wall time.
func (r *Runner) scalingRun(desc app.Descriptor, problem string, size, steps, ranks int, factory hooksFactory) (float64, error) {
	ann := caliper.New()
	clk := platform.NewSimClock(r.machine, r.opts.NoiseAmp, r.opts.Seed+13)
	ctx := raja.NewSimContext(clk, desc.DefaultParams)
	timer := mpirt.NewTimer(factory(ann), ann, ranks)
	ctx.Hooks = timer
	sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size, Ranks: ranks})
	if err != nil {
		return 0, err
	}
	for i := 0; i < steps; i++ {
		before := clk.NowNS()
		sim.Step()
		delta := clk.NowNS() - before
		// Work the hooks saw is decomposed per rank; the remainder
		// (e.g. ARES's unported physics) partitions perfectly.
		extra := delta - timer.PendingNS()
		if extra < 0 {
			extra = 0
		}
		timer.StepBarrier(extra)
	}
	return timer.TotalNS(), nil
}

// scalingRanks returns the strong-scaling rank counts of Figs. 12/13.
func (r *Runner) scalingRanks() []int {
	if r.opts.Quick {
		return []int{16, 64, 256}
	}
	return []int{16, 32, 64, 128, 256}
}

// scalingTable renders a strong-scaling comparison for one application
// and a set of input problems.
func (r *Runner) scalingTable(appName string, problems []string, size int) error {
	desc, err := appByName(appName)
	if err != nil {
		return err
	}
	model, _, err := r.policyModel(appName)
	if err != nil {
		return err
	}
	steps := r.stepsFor(desc)
	for _, problem := range problems {
		tbl := newTable("cores", "default", "apollo", "speedup")
		for _, ranks := range r.scalingRanks() {
			def, err := r.scalingRun(desc, problem, size, steps, ranks, defaultHooksFactory(desc))
			if err != nil {
				return err
			}
			tuned, err := r.scalingRun(desc, problem, size, steps, ranks, tunedHooksFactory(r, desc, model))
			if err != nil {
				return err
			}
			tbl.addRow(ranks, stats.FormatNS(def), stats.FormatNS(tuned), ratio(def/tuned))
		}
		fmt.Fprintf(r.opts.Out, "\n[%s — %s, size %d]\n", appName, problem, size)
		tbl.write(r.opts.Out)
	}
	return nil
}

// Fig12 strong-scales CleverLeaf's three input problems from 16 to 256
// simulated cores, comparing Apollo against the default policy, and
// renders the final mesh configuration and density field of each problem
// (the visualizations of the paper's figure).
func (r *Runner) Fig12() error {
	size := 128
	if r.opts.Quick {
		size = 64
	}
	if err := r.scalingTable("CleverLeaf", []string{"sod", "sedov", "triple_pt"}, size); err != nil {
		return err
	}
	fmt.Fprintln(r.opts.Out, "\nMesh configuration and density field at the final step:")
	for _, problem := range []string{"sod", "sedov", "triple_pt"} {
		sim, err := r.runCleverLeaf(problem, 64, 24)
		if err != nil {
			return err
		}
		patches, cells, minC, maxC := sim.Hierarchy().CoverageStats()
		fmt.Fprintf(r.opts.Out, "\n[%s] fine level: %d patches, %d cells (patch sizes %d-%d)\n",
			problem, patches, cells, minC, maxC)
		fmt.Fprintln(r.opts.Out, sim.Hierarchy().RenderASCII(64))
		fmt.Fprintln(r.opts.Out, sim.Hierarchy().RenderField(cleverleaf.FRho, 64))
	}
	return nil
}

// runCleverLeaf advances an untimed CleverLeaf run for visualization.
func (r *Runner) runCleverLeaf(problem string, size, steps int) (*cleverleaf.Sim, error) {
	ann := caliper.New()
	clk := platform.NewSimClock(r.machine, 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{Policy: raja.SeqExec})
	sim, err := cleverleaf.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
	if err != nil {
		return nil, err
	}
	for i := 0; i < steps; i++ {
		sim.Step()
	}
	return sim, nil
}

// Fig13 strong-scales the ARES Hotspot problem.
func (r *Runner) Fig13() error {
	size := 128
	if r.opts.Quick {
		size = 48
	}
	return r.scalingTable("ARES", []string{"hotspot"}, size)
}

// table3Config is one train/test configuration of Table III.
type table3Config struct {
	app, problem, label string
}

func table3Configs() []table3Config {
	return []table3Config{
		{"LULESH", "sedov", "L Sedov"},
		{"CleverLeaf", "sod", "C Sod"},
		{"CleverLeaf", "sedov", "C Sedov"},
		{"CleverLeaf", "triple_pt", "C TriplePt"},
		{"ARES", "sedov", "A Sedov"},
		{"ARES", "jet", "A Jet"},
		{"ARES", "hotspot", "A Hotspot"},
	}
}

// Table3 trains a policy model per (application, problem) configuration
// and evaluates it against every configuration: rows are training sets,
// columns test sets. Diagonal entries use a held-out split.
func (r *Runner) Table3() error {
	configs := table3Configs()
	type split struct {
		full, train, test *core.LabeledSet
	}
	splits := make([]split, len(configs))
	for i, cfg := range configs {
		set, err := r.labeledProblem(cfg.app, cfg.problem, core.ExecutionPolicy, r.schema)
		if err != nil {
			return err
		}
		folds := dataset.KFold(set.Len(), 5, r.opts.Seed)
		splits[i] = split{
			full:  set,
			train: subset(set, folds[0].Train),
			test:  subset(set, folds[0].Test),
		}
	}
	header := []string{"train \\ test"}
	for _, cfg := range configs {
		header = append(header, cfg.label)
	}
	tbl := newTable(header...)
	for i, cfg := range configs {
		model, err := core.Train(splits[i].train, core.TrainConfig{})
		if err != nil {
			return err
		}
		row := []interface{}{cfg.label}
		for j := range configs {
			var acc float64
			if i == j {
				acc = model.Evaluate(splits[j].test)
			} else {
				acc = model.Evaluate(splits[j].full)
			}
			row = append(row, fmt.Sprintf("%.2f", acc))
		}
		tbl.addRow(row...)
	}
	tbl.write(r.opts.Out)
	return nil
}

// subset builds a labeled set from the rows at the given indices.
func subset(set *core.LabeledSet, idx []int) *core.LabeledSet {
	out := &core.LabeledSet{Schema: set.Schema, Param: set.Param}
	for _, i := range idx {
		out.X = append(out.X, set.X[i])
		out.Y = append(out.Y, set.Y[i])
		out.MeanTimes = append(out.MeanTimes, set.MeanTimes[i])
		out.Weights = append(out.Weights, set.Weights[i])
	}
	return out
}

// Table4 reproduces the taxonomy of tuning techniques and adds measured
// costs for the two dynamic tuners this repository implements: Apollo's
// classifier and the empirical on-line search baseline.
func (r *Runner) Table4() error {
	tbl := newTable("package & domain", "model", "tuning style", "speed", "technique")
	for _, row := range [][5]string{
		{"ActiveHarmony (application kernels)", "Empirical", "Dynamic (run-time)", "Slow", "Search"},
		{"Apollo (application kernels)", "Statistical", "Dynamic (run-time)", "Fast", "Classifier"},
		{"ATLAS (dense linear algebra)", "Empirical", "Static (off-line)", "Fast", "Search"},
		{"Bergstra et al. (image filters)", "Statistical", "Static (off-line)", "Fast", "Search"},
		{"Calotoiu et al. (MPI scaling)", "Analytical", "Dynamic (run-time)", "N/A", "N/A"},
		{"FFTW (FFT)", "Empirical", "Static (off-line)", "Slow", "Search"},
		{"Hoefler et al. (application runtime)", "Analytical", "Dynamic (run-time)", "N/A", "N/A"},
		{"Orio (application kernels)", "Empirical", "Static (off-line)", "Slow", "Search"},
		{"OpenTuner (application kernels)", "Empirical", "Static (off-line)", "Slow", "Search"},
		{"OSKI (sparse linear algebra)", "Empirical", "Dynamic (run-time)", "Slow", "Search"},
		{"PEMOGEN (application kernels)", "Analytical", "Dynamic (run-time)", "N/A", "N/A"},
		{"Nitro (code variants)", "Statistical", "Dynamic (run-time)", "Slow", "Classifier"},
		{"Ding et al. (code variants)", "Statistical", "Dynamic (run-time)", "Slow", "Classifier"},
	} {
		tbl.addRow(row[0], row[1], row[2], row[3], row[4])
	}
	tbl.write(r.opts.Out)

	// Measured: the cost of one Apollo decision (real wall clock — this
	// is measurable on any host) and the convergence cost of the
	// empirical search baseline on the modeled node.
	model, _, err := r.policyModel("CleverLeaf")
	if err != nil {
		return err
	}
	proj := model.NewProjector(r.schema)
	x := make([]float64, r.schema.Len())
	x[r.schema.Index("num_indices")] = 4096
	const iters = 200000
	start := time.Now()
	sink := 0
	for i := 0; i < iters; i++ {
		sink += proj.Predict(x)
	}
	perDecision := float64(time.Since(start).Nanoseconds()) / iters
	_ = sink

	srch := search.New(search.Config{TrialsPerCandidate: 3})
	mix := instmix.NewMix().With(instmix.Add, 8).With(instmix.Movsd, 6)
	launches := srch.TrialsToConverge()
	var searchCost, oracleCost float64
	clk := platform.NewSimClock(r.machine, 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	ctx.Hooks = srch
	k := raja.NewKernel("table4::probe", mix)
	n := 256
	for i := 0; i < launches; i++ {
		raja.ForAll(ctx, k, raja.NewRange(0, n), func(int) {})
	}
	searchCost = clk.NowNS()
	oracleCost = r.machine.SeqTimeNS(mix, n) * float64(launches)

	fmt.Fprintf(r.opts.Out, "\nMeasured on this build:\n")
	fmt.Fprintf(r.opts.Out, "  Apollo decision cost:          %.0f ns per kernel launch (depth-%d tree)\n",
		perDecision, model.Tree.Depth())
	fmt.Fprintf(r.opts.Out, "  Search convergence (per kernel): %d launches; exploration cost %.1fx the oracle\n",
		launches, searchCost/oracleCost)
	return nil
}
