package harness

import (
	"fmt"

	"apollo/internal/core"
	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/raja"
	"apollo/internal/stats"
)

// Fig6 compares, for each application's eight most time-consuming
// variable kernels, the total runtime under the model's predicted
// execution policies against the best possible choice and the static
// OpenMP default.
func (r *Runner) Fig6() error {
	return r.predictedVsBest(core.ExecutionPolicy, int(raja.OmpParallelForExec), "static OpenMP")
}

// Fig7 is the chunk-size analogue of Fig6: predicted chunk sizes against
// the best choice and the static default of 128.
func (r *Runner) Fig7() error {
	return r.predictedVsBest(core.ChunkSize, core.ChunkClass(128), "static 128")
}

// predictedVsBest renders the Fig 6/7 family: per kernel, total time of
// predicted / best / static choices, normalized to best.
func (r *Runner) predictedVsBest(param core.Parameter, staticClass int, staticName string) error {
	names := kernelNames()
	for _, desc := range Apps() {
		set, err := r.labeled(desc.Name, param, r.schema)
		if err != nil {
			return err
		}
		model, err := core.Train(set, core.TrainConfig{})
		if err != nil {
			return err
		}
		perKernel := kernelTotals(set, r.schema, names, staticClass)
		fillPredicted(perKernel, set, model, names)
		top := topKernelsByStatic(perKernel, 8)

		tbl := newTable("kernel", "best", "predicted/best", staticName+"/best")
		var totPred, totBest, totStatic float64
		for _, kt := range top {
			tbl.addRow(kt.name, stats.FormatNS(kt.best),
				ratio(kt.predicted/maxf(kt.best, 1)), ratio(kt.static/maxf(kt.best, 1)))
			totPred += kt.predicted
			totBest += kt.best
			totStatic += kt.static
		}
		tbl.addRow("TOTAL", stats.FormatNS(totBest),
			ratio(totPred/maxf(totBest, 1)), ratio(totStatic/maxf(totBest, 1)))
		fmt.Fprintf(r.opts.Out, "\n[%s — %s]\n", desc.Name, param)
		tbl.write(r.opts.Out)
	}
	return nil
}

// fillPredicted computes each kernel's weighted total under the model's
// predictions.
func fillPredicted(per map[string]*kernelTotal, set *core.LabeledSet, model *core.Model, names map[float64]string) {
	funcIdx := set.Schema.Index(features.Func)
	proj := model.NewProjector(set.Schema)
	for i, x := range set.X {
		name := names[x[funcIdx]]
		if name == "" {
			name = fmt.Sprintf("func_%g", x[funcIdx])
		}
		kt := per[name]
		if kt == nil {
			continue
		}
		kt.predicted += set.Weights[i] * timeOf(set.MeanTimes[i], proj.Predict(x))
	}
}

// Fig8 reports the normalized Gini importance of the top five features of
// each application's full-feature policy model.
func (r *Runner) Fig8() error {
	for _, desc := range Apps() {
		set, err := r.labeled(desc.Name, core.ExecutionPolicy, r.schema)
		if err != nil {
			return err
		}
		model, err := core.Train(set, core.TrainConfig{})
		if err != nil {
			return err
		}
		names, imps := model.FeatureRanking()
		// Normalize the top five against their own sum, as the paper's
		// figure does.
		var sum float64
		for i := 0; i < 5 && i < len(imps); i++ {
			sum += imps[i]
		}
		tbl := newTable("rank", "feature", "normalized importance")
		for i := 0; i < 5 && i < len(names); i++ {
			norm := 0.0
			if sum > 0 {
				norm = imps[i] / sum
			}
			tbl.addRow(i+1, names[i], fmt.Sprintf("%.2f", norm))
		}
		fmt.Fprintf(r.opts.Out, "\n[%s]\n", desc.Name)
		tbl.write(r.opts.Out)
	}
	return nil
}

// Fig9 reports cross-validated model accuracy when training on only the
// k most important features, k = 1..10.
func (r *Runner) Fig9() error {
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tbl := newTable(append([]string{"application"}, intHeaders(counts, "top-%d")...)...)
	for _, desc := range Apps() {
		set, err := r.labeled(desc.Name, core.ExecutionPolicy, r.schema)
		if err != nil {
			return err
		}
		full, err := core.Train(set, core.TrainConfig{})
		if err != nil {
			return err
		}
		ranked, _ := full.FeatureRanking()
		row := []interface{}{desc.Name}
		for _, k := range counts {
			acc, err := r.reducedCV(set, ranked, k, 0)
			if err != nil {
				return err
			}
			row = append(row, percent(acc))
		}
		tbl.addRow(row...)
	}
	tbl.write(r.opts.Out)
	return nil
}

// Fig10 reports cross-validated accuracy at a range of tree depths, with
// each model built on its application's five most important features.
func (r *Runner) Fig10() error {
	depths := []int{1, 2, 3, 5, 8, 10, 15, 20, 25}
	tbl := newTable(append([]string{"application"}, intHeaders(depths, "depth %d")...)...)
	for _, desc := range Apps() {
		set, err := r.labeled(desc.Name, core.ExecutionPolicy, r.schema)
		if err != nil {
			return err
		}
		full, err := core.Train(set, core.TrainConfig{})
		if err != nil {
			return err
		}
		ranked, _ := full.FeatureRanking()
		row := []interface{}{desc.Name}
		for _, depth := range depths {
			acc, err := r.reducedCV(set, ranked, 5, depth)
			if err != nil {
				return err
			}
			row = append(row, percent(acc))
		}
		tbl.addRow(row...)
	}
	tbl.write(r.opts.Out)
	return nil
}

// reducedCV cross-validates a model restricted to the top-k ranked
// features and an optional depth cap.
func (r *Runner) reducedCV(set *core.LabeledSet, ranked []string, topK, maxDepth int) (float64, error) {
	if topK > len(ranked) {
		topK = len(ranked)
	}
	schema := set.Schema.Select(ranked[:topK]...)
	reduced := &core.LabeledSet{
		Schema:    schema,
		Param:     set.Param,
		Y:         set.Y,
		MeanTimes: set.MeanTimes,
		Weights:   set.Weights,
	}
	for _, x := range set.X {
		reduced.X = append(reduced.X, set.Schema.Project(x, schema))
	}
	cfg := core.TrainConfig{Tree: dtree.Config{MaxDepth: maxDepth}}
	cv, err := core.CrossValidate(reduced, r.opts.Folds, r.opts.Seed, cfg)
	if err != nil {
		return 0, err
	}
	return cv.MeanAccuracy, nil
}

// intHeaders renders a numeric header row.
func intHeaders(vals []int, format string) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf(format, v)
	}
	return out
}
