package harness

import (
	"fmt"
	"io"
	"strings"
)

// textTable accumulates rows and renders them with aligned columns.
type textTable struct {
	header []string
	rows   [][]string
}

// newTable creates a table with the given column headers.
func newTable(header ...string) *textTable {
	return &textTable{header: header}
}

// addRow appends a row; values are formatted with %v unless already
// strings.
func (t *textTable) addRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatCell(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatCell renders a float compactly.
func formatCell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// write renders the table to w.
func (t *textTable) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// percent renders a fraction as a percentage.
func percent(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// ratio renders a speedup/slowdown factor.
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }
