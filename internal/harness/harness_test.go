package harness

import (
	"bytes"
	"strings"
	"testing"

	"apollo/internal/core"
	"apollo/internal/raja"
)

// testRunner builds a quick-mode runner writing into buf.
func testRunner(buf *bytes.Buffer) *Runner {
	return NewRunner(Options{Out: buf, Quick: true, Seed: 5})
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"fig1", "fig2", "fig4", "table1", "table2", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "table3", "table4",
		"abl-machine", "abl-classifier", "abl-noise"}
	if len(ids) != len(want) {
		t.Fatalf("got %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("experiment %d = %s, want %s", i, ids[i], id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner(&buf).Run("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRecordCachesAcrossCalls(t *testing.T) {
	var buf bytes.Buffer
	r := testRunner(&buf)
	d1, err := r.record("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.record("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("recording not cached")
	}
	if d1.all.Len() == 0 {
		t.Error("no samples recorded")
	}
	if len(d1.perProblem) != 1 {
		t.Errorf("LULESH should have 1 problem, got %d", len(d1.perProblem))
	}
}

func TestSweepRecorderCoversVariantGrid(t *testing.T) {
	var buf bytes.Buffer
	r := testRunner(&buf)
	d, err := r.record("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	polIdx := d.all.MustCol(core.ColPolicy)
	chunkIdx := d.all.MustCol(core.ColChunk)
	seen := map[[2]float64]bool{}
	for i := 0; i < d.all.Len(); i++ {
		row := d.all.Row(i)
		seen[[2]float64{row[polIdx], row[chunkIdx]}] = true
	}
	if len(seen) != len(Variants()) {
		t.Errorf("saw %d variants, want %d", len(seen), len(Variants()))
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	r := testRunner(&buf)
	schema := r.deckFreeSchema()
	for _, appName := range []string{"LULESH", "CleverLeaf", "ARES"} {
		polSet, err := r.labeled(appName, core.ExecutionPolicy, schema)
		if err != nil {
			t.Fatal(err)
		}
		polCV, err := core.CrossValidate(polSet, r.opts.Folds, r.opts.Seed, core.TrainConfig{})
		if err != nil {
			t.Fatal(err)
		}
		chunkSet, err := r.labeled(appName, core.ChunkSize, schema)
		if err != nil {
			t.Fatal(err)
		}
		chunkCV, err := core.CrossValidate(chunkSet, r.opts.Folds, r.opts.Seed, core.TrainConfig{})
		if err != nil {
			t.Fatal(err)
		}
		// The paper's central accuracy contrast: policy models strong,
		// chunk models weak.
		if polCV.MeanAccuracy < 0.85 {
			t.Errorf("%s policy accuracy %.2f below 0.85", appName, polCV.MeanAccuracy)
		}
		if chunkCV.MeanAccuracy > 0.60 {
			t.Errorf("%s chunk accuracy %.2f suspiciously high (paper: 21-38%%)", appName, chunkCV.MeanAccuracy)
		}
		if polCV.MeanAccuracy <= chunkCV.MeanAccuracy {
			t.Errorf("%s: policy model must beat chunk model", appName)
		}
	}
}

func TestFig11SpeedupShape(t *testing.T) {
	var buf bytes.Buffer
	r := testRunner(&buf)
	for _, appName := range []string{"CleverLeaf", "ARES"} {
		desc, err := appByName(appName)
		if err != nil {
			t.Fatal(err)
		}
		model, _, err := r.policyModel(appName)
		if err != nil {
			t.Fatal(err)
		}
		size := desc.TrainSizes[0]
		steps := r.stepsFor(desc)
		problem := desc.Problems[0]
		if appName == "ARES" {
			problem = "sedov"
		}
		def, err := r.timedRun(desc, problem, size, steps, defaultHooksFactory(desc))
		if err != nil {
			t.Fatal(err)
		}
		tuned, err := r.timedRun(desc, problem, size, steps, tunedHooksFactory(r, desc, model))
		if err != nil {
			t.Fatal(err)
		}
		speedup := def / tuned
		if speedup <= 1.0 {
			t.Errorf("%s: Apollo did not beat the default (%.2fx)", appName, speedup)
		}
		if appName == "ARES" && speedup > 2.0 {
			t.Errorf("ARES speedup %.2fx implausibly high: unported physics should dilute it", speedup)
		}
	}
}

func TestPolicyModelIsReducedConfiguration(t *testing.T) {
	var buf bytes.Buffer
	r := testRunner(&buf)
	model, _, err := r.policyModel("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	if model.Schema.Len() != 5 {
		t.Errorf("deployment model has %d features, want 5", model.Schema.Len())
	}
	if model.Tree.Depth() > 15 {
		t.Errorf("deployment model depth %d exceeds 15", model.Tree.Depth())
	}
}

func TestSelectedExperimentsRunAndReport(t *testing.T) {
	var buf bytes.Buffer
	r := testRunner(&buf)
	for _, id := range []string{"table1", "fig4", "fig8", "table4"} {
		buf.Reset()
		if err := r.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestFig4EmitsTreeAndCode(t *testing.T) {
	var buf bytes.Buffer
	r := testRunner(&buf)
	if err := r.Run("fig4"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"if num_indices <= ", "raja.SeqExec", "raja.OmpParallelForExec"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}

func TestScalingRunFasterWithApolloAtScale(t *testing.T) {
	var buf bytes.Buffer
	r := testRunner(&buf)
	desc, _ := appByName("CleverLeaf")
	model, _, err := r.policyModel("CleverLeaf")
	if err != nil {
		t.Fatal(err)
	}
	def, err := r.scalingRun(desc, "sedov", 64, 4, 64, defaultHooksFactory(desc))
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := r.scalingRun(desc, "sedov", 64, 4, 64, tunedHooksFactory(r, desc, model))
	if err != nil {
		t.Fatal(err)
	}
	if tuned >= def {
		t.Errorf("64-rank Apollo (%g) should beat default (%g)", tuned, def)
	}
}

func TestVariantsMatchPaperGrid(t *testing.T) {
	vs := Variants()
	if len(vs) != 2+len(raja.ChunkSizes) {
		t.Fatalf("got %d variants", len(vs))
	}
	if vs[0].Policy != raja.SeqExec || vs[1].Policy != raja.OmpParallelForExec {
		t.Error("first two variants must be the two policies")
	}
}

func TestKernelNamesHaveNoCollisions(t *testing.T) {
	names := kernelNames()
	// All three apps' kernels must be distinguishable by their encoded
	// func feature.
	if len(names) < 55 {
		t.Errorf("only %d distinct kernel codes: possible hash collision", len(names))
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite takes several seconds")
	}
	var buf bytes.Buffer
	r := testRunner(&buf)
	if err := r.Run("all"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range Experiments() {
		if !strings.Contains(out, "=== "+e.ID+" ") {
			t.Errorf("experiment %s missing from combined output", e.ID)
		}
	}
}
