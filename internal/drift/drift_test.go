package drift

import (
	"math"
	"testing"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
)

// obs is one observed feature vector with its measured runtimes.
type obs struct {
	n            float64 // num_indices
	seqNS, ompNS float64
}

// labeledSet builds a telemetry-shaped labeled set from observations.
func labeledSet(t *testing.T, observations []obs) *core.LabeledSet {
	t.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, o := range observations {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = o.n
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = o.seqNS
			} else {
				row[schema.Len()+2] = o.ompNS
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// crossoverObs: seq wins below ~6400 indices, omp above (the usual
// Apollo regime).
func crossoverObs(ns ...float64) []obs {
	var out []obs
	for _, n := range ns {
		out = append(out, obs{n: n, seqNS: n * 10, ompNS: 8000 + n*10/8})
	}
	return out
}

func trainOn(t *testing.T, set *core.LabeledSet) *core.Model {
	t.Helper()
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMispredictRateAgreesWithModel(t *testing.T) {
	train := labeledSet(t, crossoverObs(32, 256, 2048, 16384, 131072))
	m := trainOn(t, train)
	if rate := MispredictRate(m, train); rate != 0 {
		t.Errorf("self mispredict rate = %v, want 0", rate)
	}
	// Invert the regime: omp now wins everywhere, so the model's seq
	// picks on small sizes (below the ~914-index crossover) become
	// mispredicts.
	var inverted []obs
	for _, n := range []float64{32, 128, 512} {
		inverted = append(inverted, obs{n: n, seqNS: n * 100, ompNS: n})
	}
	if rate := MispredictRate(m, labeledSet(t, inverted)); rate != 1 {
		t.Errorf("inverted mispredict rate = %v, want 1", rate)
	}
}

func TestDetectorFiresOnMispredicts(t *testing.T) {
	m := trainOn(t, labeledSet(t, crossoverObs(32, 256, 2048, 16384, 131072)))
	d := NewDetector(Config{MinRows: 4})

	// First window agrees with the model: no trigger, baseline taken.
	aligned := labeledSet(t, crossoverObs(64, 512, 1024, 4096, 32768))
	if trig := d.Check(m, aligned); trig != nil {
		t.Fatalf("aligned window fired: %v", trig)
	}
	if d.Baseline() == nil {
		t.Fatal("first window did not become the baseline")
	}

	// The machine changed: omp wins everywhere now.
	var inverted []obs
	for _, n := range []float64{32, 256, 512, 1024, 2048} {
		inverted = append(inverted, obs{n: n, seqNS: n * 100, ompNS: n})
	}
	trig := d.Check(m, labeledSet(t, inverted))
	if trig == nil || trig.Reason != "mispredict" {
		t.Fatalf("trigger = %v, want mispredict", trig)
	}
	if trig.MispredictRate <= 0.25 || trig.Rows != 5 {
		t.Errorf("trigger evidence = %+v", trig)
	}
}

func TestDetectorShiftWithoutMispredicts(t *testing.T) {
	m := trainOn(t, labeledSet(t, crossoverObs(32, 256, 2048, 16384, 131072)))
	d := NewDetector(Config{MinRows: 2, ShiftThreshold: 3})
	d.SetBaseline(SnapshotSet(labeledSet(t, crossoverObs(32, 64, 128, 256))))

	// All-large inputs: the model still picks right (omp), but the
	// feature distribution left the baseline region entirely.
	large := labeledSet(t, crossoverObs(1e6, 2e6, 4e6))
	trig := d.Check(m, large)
	if trig == nil || trig.Reason != "shift" {
		t.Fatalf("trigger = %v, want shift", trig)
	}
	if trig.ShiftFeature != features.NumIndices {
		t.Errorf("shift feature = %q", trig.ShiftFeature)
	}
	if trig.MispredictRate != 0 {
		t.Errorf("mispredict rate = %v, want 0", trig.MispredictRate)
	}
}

func TestDetectorRespectsMinRows(t *testing.T) {
	m := trainOn(t, labeledSet(t, crossoverObs(32, 256, 2048, 16384, 131072)))
	d := NewDetector(Config{MinRows: 50})
	if trig := d.Check(m, labeledSet(t, []obs{{n: 32, seqNS: 3200, ompNS: 32}})); trig != nil {
		t.Errorf("tiny window fired: %v", trig)
	}
}

func TestPredictedTimeNS(t *testing.T) {
	set := labeledSet(t, []obs{
		{n: 32, seqNS: 100, ompNS: 500},
		{n: 100000, seqNS: 9000, ompNS: 1000},
	})
	m := trainOn(t, set)
	// A perfect model pays the best time of each vector: (100+1000)/2.
	if got := PredictedTimeNS(m, set); got != 550 {
		t.Errorf("predicted ns = %v, want 550", got)
	}
	if math.IsNaN(PredictedTimeNS(m, set)) {
		t.Error("NaN for fully observed set")
	}
}
