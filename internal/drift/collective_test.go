package drift

import (
	"testing"

	"apollo/internal/core"
)

// Collective training merges telemetry from clients with different input
// distributions into one window (internal/fleet.MergedCursor). The shift
// detector must judge that merged window against a merged baseline
// without firing: two clients running steadily at opposite ends of the
// feature space is a bimodal but stationary distribution, not drift.

// clientObs samples one client's workload: counts clustered around
// center with a small per-sample spread.
func clientObs(center float64, offsets ...float64) []obs {
	var out []obs
	for _, d := range offsets {
		n := center * (1 + d)
		out = append(out, obs{n: n, seqNS: n * 10, ompNS: 8000 + n*10/8})
	}
	return out
}

// mergedSet unions two clients' observations, the way the merged cursor
// concatenates per-replica spool rows.
func mergedSet(t *testing.T, a, b []obs) *core.LabeledSet {
	t.Helper()
	return labeledSet(t, append(append([]obs(nil), a...), b...))
}

func TestShiftQuietOnMergedStationaryMixture(t *testing.T) {
	// Client A tunes small kernels (~200 indices), client B large ones
	// (~120k): the premise only matters if the two alone would look like
	// a massive shift.
	smallA := clientObs(200, -0.2, -0.1, 0, 0.1, 0.2)
	largeA := clientObs(120000, -0.2, -0.1, 0, 0.1, 0.2)
	base := SnapshotSet(mergedSet(t, smallA, largeA))
	if z, f := Shift(SnapshotSet(labeledSet(t, smallA)), SnapshotSet(labeledSet(t, largeA))); z <= 6 {
		t.Fatalf("premise broken: lone clients only %f apart on %s", z, f)
	}

	// A later window of the same mixture — fresh samples, same two
	// workloads — must stay far below the default threshold of 6.
	smallB := clientObs(200, -0.15, -0.05, 0.05, 0.15, 0.25)
	largeB := clientObs(120000, -0.25, -0.15, 0.05, 0.1, 0.3)
	cur := SnapshotSet(mergedSet(t, smallB, largeB))
	if z, f := Shift(base, cur); z > 1 {
		t.Errorf("stationary merged mixture scored shift %f on %s", z, f)
	}

	// Losing one client IS a distribution change, but the mixture's own
	// standard deviation absorbs it: the merged baseline must not fire
	// the default threshold just because client A went quiet for a
	// window. (Prolonged absence surfaces as merge lag, not drift.)
	if z, _ := Shift(base, SnapshotSet(labeledSet(t, largeB))); z > 6 {
		t.Errorf("one quiet client tripped the merged baseline (z=%f)", z)
	}
}

func TestDetectorQuietOnMergedWindow(t *testing.T) {
	det := NewDetector(Config{MinRows: 4})
	smallA := clientObs(200, -0.2, -0.1, 0, 0.1, 0.2)
	largeA := clientObs(120000, -0.2, -0.1, 0, 0.1, 0.2)
	merged := mergedSet(t, smallA, largeA)
	m := trainOn(t, merged)
	det.SetBaseline(SnapshotSet(merged))

	// Next collective window: same mixture, new samples. The champion
	// trained on the union predicts both regimes, so neither signal may
	// fire.
	next := mergedSet(t,
		clientObs(200, -0.15, -0.05, 0.05, 0.15, 0.25),
		clientObs(120000, -0.25, -0.15, 0.05, 0.1, 0.3))
	if trig := det.Check(m, next); trig != nil {
		t.Fatalf("merged stationary window fired: %v", trig)
	}

	// A genuinely new regime in the merged stream still fires: both
	// clients migrating to ~12M indices is real drift.
	moved := mergedSet(t,
		clientObs(1.2e7, -0.1, 0, 0.1, 0.2, 0.3),
		clientObs(1.5e7, -0.1, 0, 0.1, 0.2, 0.3))
	trig := det.Check(m, moved)
	if trig == nil || trig.Reason != "shift" {
		t.Fatalf("real collective drift missed: %v", trig)
	}
}
