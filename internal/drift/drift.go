// Package drift decides when a deployed Apollo model has gone stale.
// The closed loop needs a tripwire, not a dashboard: the continuous
// trainer feeds each window of spooled telemetry through a Detector and
// retrains only when it fires. Two independent signals trip it:
//
//   - Mispredict rate: telemetry labels each observed feature vector
//     with its measured-fastest variant (the exploration samples supply
//     the counterfactual); the rate is the launch-weighted fraction of
//     vectors where the model picks a different variant.
//   - Feature shift: the input distribution moved — per-feature z-score
//     of the window's mean against a baseline snapshot — so the model is
//     being asked about a region it may never have trained on, even if
//     no mispredicts have been observed there yet.
package drift

import (
	"fmt"
	"math"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/stats"
)

// Config tunes a Detector; zero values pick defaults.
type Config struct {
	// MinRows is the smallest labeled-vector count worth judging
	// (default 8): tiny windows trip on noise.
	MinRows int
	// MispredictThreshold fires the detector when the launch-weighted
	// mispredict rate exceeds it (default 0.25).
	MispredictThreshold float64
	// ShiftThreshold fires the detector when any feature's mean moves
	// this many baseline standard deviations (default 6).
	ShiftThreshold float64
}

func (c Config) withDefaults() Config {
	if c.MinRows <= 0 {
		c.MinRows = 8
	}
	if c.MispredictThreshold <= 0 {
		c.MispredictThreshold = 0.25
	}
	if c.ShiftThreshold <= 0 {
		c.ShiftThreshold = 6
	}
	return c
}

// Trigger is one retrain decision with its evidence.
type Trigger struct {
	// Reason is "mispredict" or "shift".
	Reason string
	// MispredictRate is the launch-weighted mispredict rate observed.
	MispredictRate float64
	// Shift is the largest per-feature z-score against the baseline and
	// ShiftFeature the feature that produced it.
	Shift        float64
	ShiftFeature string
	// Rows is the number of labeled vectors the decision rests on.
	Rows int
}

func (t *Trigger) String() string {
	return fmt.Sprintf("drift(%s): mispredict=%.3f shift=%.2f(%s) rows=%d",
		t.Reason, t.MispredictRate, t.Shift, t.ShiftFeature, t.Rows)
}

// Detector applies Config to telemetry windows. It is not safe for
// concurrent use; the trainer owns one per model.
type Detector struct {
	cfg      Config
	baseline *Snapshot
}

// NewDetector returns a detector with no baseline yet: the first checked
// window becomes the baseline for feature-shift comparison.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// SetBaseline pins the feature-shift baseline (normally a snapshot of
// the champion's training window).
func (d *Detector) SetBaseline(s *Snapshot) { d.baseline = s }

// Baseline returns the current baseline snapshot (nil before any).
func (d *Detector) Baseline() *Snapshot { return d.baseline }

// Check judges one labeled telemetry window against model m and returns
// a Trigger when retraining is warranted, nil otherwise. set must be
// laid out by a schema containing every model feature. The first window
// a detector sees becomes its shift baseline.
func (d *Detector) Check(m *core.Model, set *core.LabeledSet) *Trigger {
	snap := SnapshotSet(set)
	base := d.baseline
	if base == nil {
		d.baseline = snap
	}
	if set.Len() < d.cfg.MinRows {
		return nil
	}
	rate := MispredictRate(m, set)
	t := &Trigger{MispredictRate: rate, Rows: set.Len()}
	if base != nil {
		t.Shift, t.ShiftFeature = Shift(base, snap)
	}
	switch {
	case rate > d.cfg.MispredictThreshold:
		t.Reason = "mispredict"
	case t.Shift > d.cfg.ShiftThreshold:
		t.Reason = "shift"
	default:
		return nil
	}
	return t
}

// MispredictRate returns the launch-weighted fraction of labeled vectors
// where m disagrees with the observed-fastest variant. The model's
// features are projected out of the set's schema, so a telemetry layout
// that is a superset of the model's works directly.
func MispredictRate(m *core.Model, set *core.LabeledSet) float64 {
	proj := m.NewProjector(set.Schema)
	var wrong, total float64
	for i, x := range set.X {
		w := set.Weights[i]
		total += w
		if proj.Predict(x) != set.Y[i] {
			wrong += w
		}
	}
	if total == 0 {
		return 0
	}
	return wrong / total
}

// PredictedTimeNS scores a model on labeled telemetry: the launch-
// weighted mean of the measured runtime of whichever variant the model
// picks per vector. A pick that telemetry never observed costs the
// vector's worst observed time — the pessimistic reading, since an
// unobserved variant carries no evidence it would have been fast.
func PredictedTimeNS(m *core.Model, set *core.LabeledSet) float64 {
	proj := m.NewProjector(set.Schema)
	var sum, total float64
	for i, x := range set.X {
		t := set.MeanTimes[i][proj.Predict(x)]
		if math.IsNaN(t) {
			for _, v := range set.MeanTimes[i] {
				if !math.IsNaN(v) && (math.IsNaN(t) || v > t) {
					t = v
				}
			}
		}
		w := set.Weights[i]
		sum += w * t
		total += w
	}
	if total == 0 {
		return math.NaN()
	}
	return sum / total
}

// Snapshot is a per-feature summary (mean and standard deviation) of
// one telemetry window, the reference for shift comparison.
type Snapshot struct {
	Schema *features.Schema
	Mean   []float64
	Std    []float64
	Rows   int
}

// SnapshotSet summarizes a labeled set's feature columns.
func SnapshotSet(set *core.LabeledSet) *Snapshot {
	return snapshot(set.Schema, set.X)
}

// SnapshotFrame summarizes schema's feature columns of a raw frame.
func SnapshotFrame(frame *dataset.Frame, schema *features.Schema) (*Snapshot, error) {
	rows := make([][]float64, frame.Len())
	idx := make([]int, schema.Len())
	for i, name := range schema.Names() {
		if idx[i] = frame.Col(name); idx[i] < 0 {
			return nil, fmt.Errorf("drift: frame is missing feature column %q", name)
		}
	}
	for r := range rows {
		row := frame.Row(r)
		x := make([]float64, len(idx))
		for i, j := range idx {
			x[i] = row[j]
		}
		rows[r] = x
	}
	return snapshot(schema, rows), nil
}

func snapshot(schema *features.Schema, rows [][]float64) *Snapshot {
	s := &Snapshot{
		Schema: schema,
		Mean:   make([]float64, schema.Len()),
		Std:    make([]float64, schema.Len()),
		Rows:   len(rows),
	}
	col := make([]float64, len(rows))
	for i := 0; i < schema.Len(); i++ {
		for r, x := range rows {
			col[r] = x[i]
		}
		s.Mean[i] = stats.Mean(col)
		s.Std[i] = stats.StdDev(col)
	}
	return s
}

// Shift returns the largest per-feature z-score of cur's mean against
// base, and the feature that produced it. A feature that was constant in
// the baseline is scored against a floor of 1% of its baseline mean, so
// any real movement still registers without dividing by zero.
func Shift(base, cur *Snapshot) (float64, string) {
	var worst float64
	var feature string
	for i, name := range base.Schema.Names() {
		j := cur.Schema.Index(name)
		if j < 0 {
			continue
		}
		std := base.Std[i]
		if floor := math.Abs(base.Mean[i]) * 0.01; std < floor {
			std = floor
		}
		if std == 0 {
			std = 1e-9
		}
		z := math.Abs(cur.Mean[j]-base.Mean[i]) / std
		if z > worst {
			worst, feature = z, name
		}
	}
	return worst, feature
}
