// Package kokkos is a second performance-portability frontend over the
// same Apollo tuning machinery — the paper's stated future work:
// "While Apollo is implemented in RAJA, the techniques for separating the
// concerns of implementation and tuning are general, and we plan to apply
// these techniques to other performance portability frameworks."
//
// The package mirrors the Kokkos programming model's surface — execution
// spaces, ParallelFor/ParallelReduce over RangePolicy, MDRangePolicy and
// TeamPolicy — and lowers every dispatch onto the shared raja execution
// core (kernel sites, index sets, the Apollo hooks, and the policy
// switcher). A model trained from RAJA-recorded samples therefore tunes
// Kokkos dispatches unchanged, because both frontends emit the same
// Table I feature vectors.
package kokkos

import (
	"fmt"
	"sync"

	"apollo/internal/instmix"
	"apollo/internal/raja"
)

// ExecSpace names a Kokkos execution space. Serial maps to the
// sequential policy and OpenMP to the worker team; DefaultExecSpace
// leaves the choice to Apollo (or the context default).
type ExecSpace int

// Execution spaces.
const (
	DefaultExecSpace ExecSpace = iota
	Serial
	OpenMP
)

// String names the space.
func (s ExecSpace) String() string {
	switch s {
	case DefaultExecSpace:
		return "DefaultExecSpace"
	case Serial:
		return "Serial"
	case OpenMP:
		return "OpenMP"
	}
	return fmt.Sprintf("ExecSpace(%d)", int(s))
}

// RangePolicy is a 1D iteration range [Begin, End) in an execution space.
type RangePolicy struct {
	Space      ExecSpace
	Begin, End int
	// ChunkSize is the static-schedule chunk (0 = default), matching
	// Kokkos's ChunkSize policy parameter.
	ChunkSize int
}

// MDRangePolicy is a 2D rectangular iteration space, dispatched row-major.
type MDRangePolicy struct {
	Space        ExecSpace
	Begin0, End0 int // slow dimension
	Begin1, End1 int // fast dimension
	ChunkSize    int
}

// TeamPolicy launches LeagueSize teams; each team's members execute the
// body with a TeamMember handle, as in Kokkos hierarchical parallelism.
type TeamPolicy struct {
	Space      ExecSpace
	LeagueSize int
	TeamSize   int // informational; member loops run via TeamThreadRange
}

// TeamMember is the per-team handle passed to team bodies.
type TeamMember struct {
	leagueRank int
	policy     TeamPolicy
	ctx        *raja.Context
}

// LeagueRank returns the team's index in the league.
func (m TeamMember) LeagueRank() int { return m.leagueRank }

// LeagueSize returns the league size.
func (m TeamMember) LeagueSize() int { return m.policy.LeagueSize }

// registry deduplicates kernel sites by label so repeated dispatches of
// the same named kernel share one site (Kokkos identifies kernels by
// label + type; we use the label).
var (
	regMu sync.Mutex
	reg   = map[string]*raja.Kernel{}
)

// kernelFor returns the shared kernel site for a label.
func kernelFor(label string, mix *instmix.Mix) *raja.Kernel {
	regMu.Lock()
	defer regMu.Unlock()
	if k, ok := reg[label]; ok {
		return k
	}
	k := raja.NewKernel(label, mix)
	reg[label] = k
	return k
}

// Kernels returns all registered Kokkos kernel sites (for reports).
func Kernels() []*raja.Kernel {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*raja.Kernel, 0, len(reg))
	for _, k := range reg {
		out = append(out, k)
	}
	return out
}

// spaceParams converts an execution space to launch parameters;
// ok=false means "let Apollo decide".
func spaceParams(space ExecSpace, chunk int) (raja.Params, bool) {
	switch space {
	case Serial:
		return raja.Params{Policy: raja.SeqExec}, true
	case OpenMP:
		return raja.Params{Policy: raja.OmpParallelForExec, Chunk: chunk}, true
	default:
		return raja.Params{}, false
	}
}

// forcedHooks pins a launch to fixed parameters while still reporting to
// the inner hooks (so recording works for explicitly spaced dispatches).
type forcedHooks struct {
	params raja.Params
	inner  raja.Hooks
}

// Begin reports the launch to the inner hooks and returns the pinned
// parameters.
func (h forcedHooks) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	if h.inner != nil {
		h.inner.Begin(k, iset)
	}
	return h.params, true
}

// End forwards the measurement to the inner hooks.
func (h forcedHooks) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, ns float64) {
	if h.inner != nil {
		h.inner.End(k, iset, p, ns)
	}
}

// dispatch runs one lowering through the raja core.
func dispatch(ctx *raja.Context, space ExecSpace, chunk int, k *raja.Kernel, iset *raja.IndexSet, body func(i int)) float64 {
	if params, forced := spaceParams(space, chunk); forced {
		// An explicit execution space overrides Apollo, as a
		// hard-coded Kokkos space annotation would.
		sub := *ctx
		sub.Hooks = forcedHooks{params: params, inner: ctx.Hooks}
		return raja.ForAll(&sub, k, iset, body)
	}
	return raja.ForAll(ctx, k, iset, body)
}

// ParallelFor executes body(i) over the policy's range. The label
// identifies the kernel site; mix registers its instruction profile on
// first use (nil is accepted for feature-less kernels).
func ParallelFor(ctx *raja.Context, label string, mix *instmix.Mix, policy RangePolicy, body func(i int)) float64 {
	k := kernelFor(label, mix)
	iset := raja.NewRange(policy.Begin, policy.End)
	return dispatch(ctx, policy.Space, policy.ChunkSize, k, iset, body)
}

// ParallelForMD executes body(i0, i1) over the 2D policy, lowered to a
// row-major flat range so Apollo sees the true trip count.
func ParallelForMD(ctx *raja.Context, label string, mix *instmix.Mix, policy MDRangePolicy, body func(i0, i1 int)) float64 {
	k := kernelFor(label, mix)
	n0 := policy.End0 - policy.Begin0
	n1 := policy.End1 - policy.Begin1
	if n0 < 0 {
		n0 = 0
	}
	if n1 < 0 {
		n1 = 0
	}
	iset := raja.NewRange(0, n0*n1)
	return dispatch(ctx, policy.Space, policy.ChunkSize, k, iset, func(i int) {
		body(policy.Begin0+i/n1, policy.Begin1+i%n1)
	})
}

// ParallelReduce executes body over the range, accumulating a sum. Each
// iteration's contribution goes into a per-slot partial (indexed by
// iteration) so parallel execution is race-free; the partials reduce
// sequentially after the join, as Kokkos reducers do.
func ParallelReduce(ctx *raja.Context, label string, mix *instmix.Mix, policy RangePolicy, body func(i int) float64) (float64, float64) {
	k := kernelFor(label, mix)
	n := policy.End - policy.Begin
	if n <= 0 {
		return 0, 0
	}
	partials := make([]float64, n)
	iset := raja.NewRange(policy.Begin, policy.End)
	elapsed := dispatch(ctx, policy.Space, policy.ChunkSize, k, iset, func(i int) {
		partials[i-policy.Begin] = body(i)
	})
	var total float64
	for _, v := range partials {
		total += v
	}
	return total, elapsed
}

// ParallelForTeam launches the league: body runs once per team with its
// TeamMember handle. The league dispatch itself is a tunable kernel
// (LeagueSize iterations).
func ParallelForTeam(ctx *raja.Context, label string, mix *instmix.Mix, policy TeamPolicy, body func(m TeamMember)) float64 {
	k := kernelFor(label, mix)
	iset := raja.NewRange(0, policy.LeagueSize)
	return dispatch(ctx, policy.Space, 0, k, iset, func(i int) {
		body(TeamMember{leagueRank: i, policy: policy, ctx: ctx})
	})
}

// TeamThreadRange iterates a member's nested range sequentially, as a
// team-level nested loop (the outer league dispatch carries the
// parallelism).
func (m TeamMember) TeamThreadRange(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}
