package kokkos

import (
	"fmt"
	"sync/atomic"
	"testing"

	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/instmix"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/team"
	"apollo/internal/tuner"
)

func simCtx(def raja.Params) (*raja.Context, *platform.SimClock) {
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	return raja.NewSimContext(clk, def), clk
}

func TestParallelForCoversRange(t *testing.T) {
	ctx, _ := simCtx(raja.Params{Policy: raja.SeqExec})
	var count int64
	ParallelFor(ctx, "kokkos_test::cover", nil, RangePolicy{Begin: 3, End: 103}, func(i int) {
		if i < 3 || i >= 103 {
			t.Errorf("index %d out of range", i)
		}
		atomic.AddInt64(&count, 1)
	})
	if count != 100 {
		t.Errorf("body ran %d times, want 100", count)
	}
}

func TestKernelRegistryDeduplicates(t *testing.T) {
	ctx, _ := simCtx(raja.Params{Policy: raja.SeqExec})
	before := len(Kernels())
	for i := 0; i < 5; i++ {
		ParallelFor(ctx, "kokkos_test::dedup", nil, RangePolicy{End: 4}, func(int) {})
	}
	after := len(Kernels())
	if after != before+1 {
		t.Errorf("5 same-label dispatches registered %d new sites, want 1", after-before)
	}
}

func TestExplicitSpaceOverridesApollo(t *testing.T) {
	// Even with a default of OpenMP, a Serial dispatch must run
	// sequentially — and be timed as sequential.
	machine := platform.SandyBridgeNode()
	mix := instmix.NewMix().With(instmix.Add, 6)
	ctx, _ := simCtx(raja.Params{Policy: raja.OmpParallelForExec})
	elapsedSerial := ParallelFor(ctx, "kokkos_test::serial", mix, RangePolicy{Space: Serial, End: 100}, func(int) {})
	want := machine.SeqTimeNS(mix, 100)
	if elapsedSerial != want {
		t.Errorf("Serial dispatch timed %g, want seq time %g", elapsedSerial, want)
	}
	elapsedOMP := ParallelFor(ctx, "kokkos_test::omp", mix, RangePolicy{Space: OpenMP, End: 100}, func(int) {})
	if elapsedOMP <= elapsedSerial {
		t.Errorf("100-iteration OpenMP dispatch (%g) should pay fork cost vs serial (%g)", elapsedOMP, elapsedSerial)
	}
}

func TestDefaultSpaceUsesApolloHooks(t *testing.T) {
	// With a tuner installed, DefaultExecSpace dispatches follow the
	// model: small → seq, large → omp.
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 512, 8192, 131072} {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = float64(n) * 10
			} else {
				row[schema.Len()+2] = 9000 + float64(n)*10/8
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ann := caliper.New()
	tn := tuner.NewTuner(schema, ann, raja.Params{}).UsePolicyModel(model)
	machine := platform.SandyBridgeNode()
	mix := instmix.NewMix().With(instmix.Add, 6)

	ctx, _ := simCtx(raja.Params{})
	ctx.Hooks = tn
	small := ParallelFor(ctx, "kokkos_test::tuned_small", mix, RangePolicy{End: 64}, func(int) {})
	if small != machine.SeqTimeNS(mix, 64) {
		t.Errorf("tuned small dispatch not sequential: %g", small)
	}
	large := ParallelFor(ctx, "kokkos_test::tuned_large", mix, RangePolicy{End: 1 << 20}, func(int) {})
	if large >= machine.SeqTimeNS(mix, 1<<20) {
		t.Errorf("tuned large dispatch not parallel: %g", large)
	}
}

func TestRecorderSeesForcedSpaceDispatches(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: raja.SeqExec})
	ctx, _ := simCtx(raja.Params{})
	ctx.Hooks = rec
	ParallelFor(ctx, "kokkos_test::recorded", nil, RangePolicy{Space: OpenMP, End: 50}, func(int) {})
	if rec.Samples() != 1 {
		t.Errorf("recorder saw %d samples, want 1", rec.Samples())
	}
}

func TestParallelForMDRowMajor(t *testing.T) {
	ctx, _ := simCtx(raja.Params{Policy: raja.SeqExec})
	var order []int
	ParallelForMD(ctx, "kokkos_test::md", nil,
		MDRangePolicy{Begin0: 1, End0: 3, Begin1: 10, End1: 13},
		func(i0, i1 int) { order = append(order, i0*100+i1) })
	want := []int{110, 111, 112, 210, 211, 212}
	if len(order) != len(want) {
		t.Fatalf("got %d iterations, want %d", len(order), len(want))
	}
	for i, v := range want {
		if order[i] != v {
			t.Errorf("iteration %d = %d, want %d", i, order[i], v)
		}
	}
}

func TestParallelReduceSum(t *testing.T) {
	tm := team.New(4)
	defer tm.Close()
	ctx := &raja.Context{Team: tm, Default: raja.Params{Policy: raja.OmpParallelForExec, Chunk: 7}}
	sum, _ := ParallelReduce(ctx, "kokkos_test::reduce", nil, RangePolicy{End: 1000}, func(i int) float64 {
		return float64(i)
	})
	if want := float64(1000*999) / 2; sum != want {
		t.Errorf("reduce = %g, want %g", sum, want)
	}
	empty, _ := ParallelReduce(ctx, "kokkos_test::reduce_empty", nil, RangePolicy{End: 0}, func(int) float64 { return 1 })
	if empty != 0 {
		t.Error("empty reduce should be 0")
	}
}

func TestTeamPolicy(t *testing.T) {
	ctx, _ := simCtx(raja.Params{Policy: raja.SeqExec})
	visits := make([]int, 4*8)
	ParallelForTeam(ctx, "kokkos_test::team", nil, TeamPolicy{LeagueSize: 4, TeamSize: 8},
		func(m TeamMember) {
			if m.LeagueSize() != 4 {
				t.Errorf("LeagueSize = %d", m.LeagueSize())
			}
			m.TeamThreadRange(8, func(i int) {
				visits[m.LeagueRank()*8+i]++
			})
		})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("slot %d visited %d times", i, v)
		}
	}
}

func TestSpaceNames(t *testing.T) {
	for s, want := range map[ExecSpace]string{Serial: "Serial", OpenMP: "OpenMP", DefaultExecSpace: "DefaultExecSpace"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestCrossFrontendModelReuse(t *testing.T) {
	// The headline of this package: a model trained on RAJA-recorded
	// samples tunes a Kokkos dispatch, because the feature vectors are
	// identical for identical launches.
	schema := features.TableI()
	ann := caliper.New()
	machine := platform.SandyBridgeNode()
	mix := instmix.NewMix().With(instmix.Mulpd, 8).With(instmix.Movsd, 6)

	// Record through the RAJA frontend. The kernel site is shared
	// across the per-variant training runs, as a source loop would be.
	k := raja.NewKernel("kokkos_test::rajakernel", mix)
	var all *dataset.Frame
	for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
		rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: pol})
		clk := platform.NewSimClock(machine, 0, 0)
		ctx := raja.NewSimContext(clk, raja.Params{})
		ctx.Hooks = rec
		for _, n := range []int{16, 128, 1024, 8192, 65536, 524288} {
			raja.ForAll(ctx, k, raja.NewRange(0, n), func(int) {})
		}
		if all == nil {
			all = rec.Frame()
		} else {
			all.Append(rec.Frame())
		}
	}
	set, err := core.Label(all, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Tune through the Kokkos frontend.
	ctx, _ := simCtx(raja.Params{})
	ctx.Hooks = tuner.NewTuner(schema, ann, raja.Params{}).UsePolicyModel(model)
	small := ParallelFor(ctx, fmt.Sprintf("kokkos_test::kk_%p", t), mix, RangePolicy{End: 32}, func(int) {})
	if small != machine.SeqTimeNS(mix, 32) {
		t.Errorf("RAJA-trained model did not tune Kokkos small dispatch to seq: %g", small)
	}
}
