package mpirt

import (
	"testing"

	"apollo/internal/caliper"
	"apollo/internal/raja"
)

func fakeLaunch(t *Timer, ann *caliper.Annotations, rank int, ns float64) {
	ann.Set("rank", float64(rank))
	k := raja.NewKernel("k", nil)
	t.End(k, raja.NewRange(0, 10), raja.Params{}, ns)
}

func TestStepBarrierTakesMaxRank(t *testing.T) {
	ann := caliper.New()
	tm := NewTimer(nil, ann, 4)
	fakeLaunch(tm, ann, 0, 100)
	fakeLaunch(tm, ann, 1, 300)
	fakeLaunch(tm, ann, 1, 200) // rank 1 total: 500
	fakeLaunch(tm, ann, 3, 50)
	tm.StepBarrier(0)
	want := 500 + tm.commNS()
	if got := tm.TotalNS(); got != want {
		t.Errorf("TotalNS = %g, want %g", got, want)
	}
	if tm.Steps() != 1 {
		t.Errorf("Steps = %d", tm.Steps())
	}
}

func TestBarrierResetsAccumulators(t *testing.T) {
	ann := caliper.New()
	tm := NewTimer(nil, ann, 2)
	fakeLaunch(tm, ann, 0, 100)
	tm.StepBarrier(0)
	if tm.PendingNS() != 0 {
		t.Error("accumulators not reset")
	}
	fakeLaunch(tm, ann, 1, 40)
	if tm.PendingNS() != 40 {
		t.Errorf("PendingNS = %g", tm.PendingNS())
	}
}

func TestExtraWorkIsPartitioned(t *testing.T) {
	ann := caliper.New()
	tm := NewTimer(nil, ann, 8)
	tm.StepBarrier(800)
	want := 100 + tm.commNS() // 800 / 8 ranks
	if got := tm.TotalNS(); got != want {
		t.Errorf("TotalNS = %g, want %g", got, want)
	}
}

func TestSingleRankHasNoComm(t *testing.T) {
	tm := NewTimer(nil, caliper.New(), 1)
	if tm.commNS() != 0 {
		t.Error("1-rank run should have no communication cost")
	}
}

func TestCommGrowsWithRanks(t *testing.T) {
	a := NewTimer(nil, caliper.New(), 16)
	b := NewTimer(nil, caliper.New(), 256)
	if b.commNS() <= a.commNS() {
		t.Error("communication cost should grow with rank count")
	}
}

func TestOutOfRangeRankClamps(t *testing.T) {
	ann := caliper.New()
	tm := NewTimer(nil, ann, 2)
	fakeLaunch(tm, ann, 99, 100) // invalid -> rank 0
	tm.StepBarrier(0)
	if tm.TotalNS() != 100+tm.commNS() {
		t.Error("invalid rank not clamped to 0")
	}
}

type recHooks struct {
	begins, ends int
}

func (h *recHooks) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	h.begins++
	return raja.Params{Policy: raja.SeqExec}, true
}

func (h *recHooks) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, ns float64) {
	h.ends++
}

func TestDelegatesToInner(t *testing.T) {
	ann := caliper.New()
	inner := &recHooks{}
	tm := NewTimer(inner, ann, 2)
	k := raja.NewKernel("k", nil)
	if p, ok := tm.Begin(k, raja.NewRange(0, 5)); !ok || p.Policy != raja.SeqExec {
		t.Error("Begin not delegated")
	}
	tm.End(k, raja.NewRange(0, 5), raja.Params{}, 10)
	if inner.begins != 1 || inner.ends != 1 {
		t.Error("inner hooks not called")
	}
}

func TestMoreRanksFasterForBalancedWork(t *testing.T) {
	// 64 equal patches: 8 ranks should beat 2 ranks on kernel time.
	run := func(ranks int) float64 {
		ann := caliper.New()
		tm := NewTimer(nil, ann, ranks)
		for p := 0; p < 64; p++ {
			fakeLaunch(tm, ann, p%ranks, 1e6)
		}
		tm.StepBarrier(0)
		return tm.TotalNS()
	}
	if run(8) >= run(2) {
		t.Error("8 ranks should be faster than 2 for balanced work")
	}
}
