// Package mpirt simulates distributed (MPI-style) execution for the
// strong-scaling experiments (paper Figs. 12 and 13).
//
// The applications partition their AMR patches across R ranks; this
// package's Timer wraps the Apollo hooks, attributes every kernel launch
// to the owning rank (read from the caliper blackboard), and models each
// bulk-synchronous timestep as the maximum per-rank kernel time plus a
// communication term. Strong scaling is therefore a partitioning
// property, exactly as in the paper: more ranks mean smaller per-rank
// patch populations, more launches below the parallel crossover, and more
// opportunities for Apollo to win by running them sequentially.
package mpirt

import (
	"math"

	"apollo/internal/caliper"
	"apollo/internal/raja"
)

// Timer is a raja.Hooks wrapper that accounts kernel time per rank and
// models bulk-synchronous steps.
type Timer struct {
	// Inner is the wrapped hooks component (tuner, recorder, or nil).
	Inner raja.Hooks
	// Ann supplies the current rank annotation.
	Ann *caliper.Annotations
	// Ranks is the simulated rank count.
	Ranks int
	// LatencyNS is the per-step communication base cost.
	LatencyNS float64
	// PerHopNS scales the log2(R) communication term.
	PerHopNS float64

	perRank []float64
	totalNS float64
	steps   int
}

// NewTimer wraps hooks for an R-rank simulation with default
// communication constants (a 40 us halo exchange plus a 12 us-per-hop
// allreduce tree).
func NewTimer(inner raja.Hooks, ann *caliper.Annotations, ranks int) *Timer {
	if ranks < 1 {
		ranks = 1
	}
	return &Timer{
		Inner:     inner,
		Ann:       ann,
		Ranks:     ranks,
		LatencyNS: 40e3,
		PerHopNS:  12e3,
		perRank:   make([]float64, ranks),
	}
}

// Begin delegates to the wrapped hooks.
func (t *Timer) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	if t.Inner != nil {
		return t.Inner.Begin(k, iset)
	}
	return raja.Params{}, false
}

// End attributes the launch to its rank and delegates.
func (t *Timer) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
	rank := int(t.Ann.GetOr("rank", 0))
	if rank < 0 || rank >= t.Ranks {
		rank = 0
	}
	t.perRank[rank] += elapsedNS
	if t.Inner != nil {
		t.Inner.End(k, iset, p, elapsedNS)
	}
}

// commNS models the per-step communication cost.
func (t *Timer) commNS() float64 {
	if t.Ranks == 1 {
		return 0
	}
	return t.LatencyNS + t.PerHopNS*math.Log2(float64(t.Ranks))
}

// StepBarrier closes one bulk-synchronous step: the step's wall time is
// the slowest rank's kernel time, plus extraNS of perfectly partitioned
// work outside Apollo's hooks (e.g. ARES's unported physics), plus
// communication. The per-rank accumulators reset for the next step.
func (t *Timer) StepBarrier(extraNS float64) {
	maxRank := 0.0
	for i, v := range t.perRank {
		if v > maxRank {
			maxRank = v
		}
		t.perRank[i] = 0
	}
	t.totalNS += maxRank + extraNS/float64(t.Ranks) + t.commNS()
	t.steps++
}

// TotalNS returns the accumulated simulated wall time.
func (t *Timer) TotalNS() float64 { return t.totalNS }

// Steps returns the number of barriers taken.
func (t *Timer) Steps() int { return t.steps }

// PendingNS returns the kernel time accumulated since the last barrier,
// summed over ranks (useful to separate hook-tracked work from clock
// deltas).
func (t *Timer) PendingNS() float64 {
	var s float64
	for _, v := range t.perRank {
		s += v
	}
	return s
}
