// Package metrics is a dependency-free Prometheus-text metrics set shared
// by the model-service daemon, the continuous trainer, and embedding
// applications. It lives outside internal/server so a tuner-side process
// can expose counters without linking the whole HTTP service.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a dependency-free Prometheus-text metrics set: labeled
// counters, gauges, and fixed-bucket histograms. Updates from the
// request hot path are lock-free: readers follow an atomically published
// copy-on-write snapshot of the family maps and bump atomics in place.
// A mutex serializes only the cold path that clones and republishes the
// maps when a metric or label value is seen for the first time, so
// steady-state updates never contend and rendering never blocks writers.
type Metrics struct {
	// mu serializes snapshot writers (first sight of a metric or label
	// value); it is never held while rendering or updating a series.
	mu  sync.Mutex
	cur atomic.Pointer[metricsSnapshot]
}

// metricsSnapshot is one immutable published view of every metric
// family. The maps are never mutated after publication — the slow path
// clones and republishes — while the *atomic values inside are shared
// across snapshots and updated in place.
type metricsSnapshot struct {
	counters   map[string]map[string]*atomic.Uint64 // metric -> label value -> count
	gauges     map[string]map[string]*atomic.Int64  // metric -> label value -> value
	counterLbl map[string]string                    // metric -> label name
	gaugeLbl   map[string]string
	histLbl    map[string]string
	help       map[string]string
	hists      map[string]map[string]*histogram // metric -> label value -> histogram
}

// histogram is a fixed-bucket latency histogram (cumulative on export,
// per-bucket internally).
type histogram struct {
	bounds []float64 // upper bounds, ascending
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // seconds scaled by 1e9 to stay integral
	total  atomic.Uint64
}

// New returns an empty metrics set.
func New() *Metrics {
	m := &Metrics{}
	m.cur.Store(&metricsSnapshot{
		counters:   map[string]map[string]*atomic.Uint64{},
		gauges:     map[string]map[string]*atomic.Int64{},
		counterLbl: map[string]string{},
		gaugeLbl:   map[string]string{},
		histLbl:    map[string]string{},
		help:       map[string]string{},
		hists:      map[string]map[string]*histogram{},
	})
	return m
}

// CounterAdd adds delta to the counter's series for the label value.
// label may be "" for an unlabeled counter.
//
//apollo:hotpath
func (m *Metrics) CounterAdd(metric, labelName, labelValue, help string, delta uint64) {
	if series, ok := m.cur.Load().counters[metric]; ok {
		if c, ok := series[labelValue]; ok {
			c.Add(delta)
			return
		}
	}
	m.counterSeriesSlow(metric, labelName, labelValue, help).Add(delta)
}

// counterSeriesSlow creates the counter series on first sight of a
// metric or label value, cloning and republishing the snapshot.
//
//apollo:coldpath first sight of a metric/label value; amortized to zero at steady state
func (m *Metrics) counterSeriesSlow(metric, labelName, labelValue, help string) *atomic.Uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.cur.Load()
	if series, ok := s.counters[metric]; ok { // re-check under the writer lock
		if c, ok := series[labelValue]; ok {
			return c
		}
	}
	next := s.clone()
	series, ok := next.counters[metric]
	if !ok {
		series = map[string]*atomic.Uint64{}
		next.counterLbl[metric] = labelName
		next.help[metric] = help
	} else {
		series = cloneSeries(series)
	}
	c := &atomic.Uint64{}
	series[labelValue] = c
	next.counters[metric] = series
	m.cur.Store(next)
	return c
}

// GaugeSet sets the gauge's series for the label value.
//
//apollo:hotpath
func (m *Metrics) GaugeSet(metric, labelName, labelValue, help string, value int64) {
	if series, ok := m.cur.Load().gauges[metric]; ok {
		if g, ok := series[labelValue]; ok {
			g.Store(value)
			return
		}
	}
	m.gaugeSeriesSlow(metric, labelName, labelValue, help).Store(value)
}

//apollo:coldpath first sight of a metric/label value; amortized to zero at steady state
func (m *Metrics) gaugeSeriesSlow(metric, labelName, labelValue, help string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.cur.Load()
	if series, ok := s.gauges[metric]; ok {
		if g, ok := series[labelValue]; ok {
			return g
		}
	}
	next := s.clone()
	series, ok := next.gauges[metric]
	if !ok {
		series = map[string]*atomic.Int64{}
		next.gaugeLbl[metric] = labelName
		next.help[metric] = help
	} else {
		series = cloneSeries(series)
	}
	g := &atomic.Int64{}
	series[labelValue] = g
	next.gauges[metric] = series
	m.cur.Store(next)
	return g
}

// DefaultLatencyBuckets are the histogram bounds in seconds, spanning
// sub-microsecond tree decisions to slow remote calls.
var DefaultLatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5,
}

// Observe records one observation (in seconds) into the unlabeled
// histogram, creating it with DefaultLatencyBuckets on first use.
//
//apollo:hotpath
func (m *Metrics) Observe(metric, help string, seconds float64) {
	m.ObserveLabeled(metric, "", "", help, seconds)
}

// ObserveLabeled records one observation (in seconds) into the
// histogram's series for the label value, mirroring CounterAdd: the
// steady-state path is a lock-free lookup in the published snapshot,
// and only the first sight of a metric or label value takes the writer
// lock. labelName/labelValue may be "" for an unlabeled histogram.
//
//apollo:hotpath
func (m *Metrics) ObserveLabeled(metric, labelName, labelValue, help string, seconds float64) {
	if series, ok := m.cur.Load().hists[metric]; ok {
		if h, ok := series[labelValue]; ok {
			h.record(seconds)
			return
		}
	}
	m.histSlow(metric, labelName, labelValue, help).record(seconds)
}

//apollo:coldpath first sight of a histogram/label value; amortized to zero at steady state
func (m *Metrics) histSlow(metric, labelName, labelValue, help string) *histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.cur.Load()
	if series, ok := s.hists[metric]; ok {
		if h, ok := series[labelValue]; ok {
			return h
		}
	}
	next := s.clone()
	series, ok := next.hists[metric]
	if !ok {
		series = map[string]*histogram{}
		next.histLbl[metric] = labelName
		next.help[metric] = help
	} else {
		series = cloneSeries(series)
	}
	h := &histogram{bounds: DefaultLatencyBuckets, counts: make([]atomic.Uint64, len(DefaultLatencyBuckets))}
	series[labelValue] = h
	next.hists[metric] = series
	m.cur.Store(next)
	return h
}

//apollo:hotpath
func (h *histogram) record(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	if seconds > 0 && !math.IsInf(seconds, 0) && !math.IsNaN(seconds) {
		h.sum.Add(uint64(seconds * 1e9))
	}
	h.total.Add(1)
}

// clone shallow-copies every family map so a writer can extend one
// without disturbing published readers. Inner series maps are shared:
// they are themselves copy-on-write and never mutated after publication.
func (s *metricsSnapshot) clone() *metricsSnapshot {
	next := &metricsSnapshot{
		counters:   make(map[string]map[string]*atomic.Uint64, len(s.counters)+1),
		gauges:     make(map[string]map[string]*atomic.Int64, len(s.gauges)+1),
		counterLbl: make(map[string]string, len(s.counterLbl)+1),
		gaugeLbl:   make(map[string]string, len(s.gaugeLbl)+1),
		histLbl:    make(map[string]string, len(s.histLbl)+1),
		help:       make(map[string]string, len(s.help)+1),
		hists:      make(map[string]map[string]*histogram, len(s.hists)+1),
	}
	for k, v := range s.counters {
		next.counters[k] = v
	}
	for k, v := range s.gauges {
		next.gauges[k] = v
	}
	for k, v := range s.counterLbl {
		next.counterLbl[k] = v
	}
	for k, v := range s.gaugeLbl {
		next.gaugeLbl[k] = v
	}
	for k, v := range s.histLbl {
		next.histLbl[k] = v
	}
	for k, v := range s.help {
		next.help[k] = v
	}
	for k, v := range s.hists {
		next.hists[k] = v
	}
	return next
}

func cloneSeries[T any](series map[string]*T) map[string]*T {
	next := make(map[string]*T, len(series)+1)
	for k, v := range series {
		next[k] = v
	}
	return next
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered. It reads one
// published snapshot and holds no lock, so a slow scraper never stalls
// the request path.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.cur.Load()
	var names []string
	for n := range s.counters {
		names = append(names, n)
	}
	for n := range s.gauges {
		names = append(names, n)
	}
	for n := range s.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if help := s.help[n]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, help); err != nil {
				return err
			}
		}
		switch {
		case s.counters[n] != nil:
			fmt.Fprintf(w, "# TYPE %s counter\n", n)
			if err := writeSeries(w, n, s.counterLbl[n], s.counters[n], func(c *atomic.Uint64) string {
				return strconv.FormatUint(c.Load(), 10)
			}); err != nil {
				return err
			}
		case s.gauges[n] != nil:
			fmt.Fprintf(w, "# TYPE %s gauge\n", n)
			if err := writeSeries(w, n, s.gaugeLbl[n], s.gauges[n], func(g *atomic.Int64) string {
				return strconv.FormatInt(g.Load(), 10)
			}); err != nil {
				return err
			}
		default:
			fmt.Fprintf(w, "# TYPE %s histogram\n", n)
			if err := writeHistFamily(w, n, s.histLbl[n], s.hists[n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistFamily renders one histogram family, label values sorted.
// An unlabeled series ("" label name or value) renders the classic
// bare _bucket/_sum/_count lines; labeled series carry the label pair
// on every line, with le last as Prometheus clients expect.
func writeHistFamily(w io.Writer, metric, label string, series map[string]*histogram) error {
	var keys []string
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := series[k]
		pre := ""
		if label != "" && k != "" {
			pre = formatLabels(label, k) + ","
		}
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", metric, pre, formatBound(b), cum)
		}
		cum += h.inf.Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", metric, pre, cum)
		if pre == "" {
			fmt.Fprintf(w, "%s_sum %g\n", metric, float64(h.sum.Load())/1e9)
			if _, err := fmt.Fprintf(w, "%s_count %d\n", metric, h.total.Load()); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(w, "%s_sum{%s} %g\n", metric, formatLabels(label, k), float64(h.sum.Load())/1e9)
		if _, err := fmt.Fprintf(w, "%s_count{%s} %d\n", metric, formatLabels(label, k), h.total.Load()); err != nil {
			return err
		}
	}
	return nil
}

// writeSeries renders one labeled metric family, label values sorted.
func writeSeries[T any](w io.Writer, metric, label string, series map[string]*T, render func(*T) string) error {
	var keys []string
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var err error
		if label == "" || k == "" {
			_, err = fmt.Fprintf(w, "%s %s\n", metric, render(series[k]))
		} else {
			_, err = fmt.Fprintf(w, "%s{%s} %s\n", metric, formatLabels(label, k), render(series[k]))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatLabels renders one series' label pairs. A plain label name
// yields the single pair `name="value"`. A comma-separated label name
// (an info-series like "model,version,loop") zips with the
// comma-separated value into one pair per part, which is how
// multi-dimensional identity series (apollo_model_lineage) ride on the
// single-label family maps. A part-count mismatch falls back to one
// pair so a malformed value still renders scrapeably.
func formatLabels(label, value string) string {
	if !strings.Contains(label, ",") {
		return fmt.Sprintf("%s=%q", label, value)
	}
	names := strings.Split(label, ",")
	values := strings.Split(value, ",")
	if len(names) != len(values) {
		return fmt.Sprintf("%s=%q", names[0], value)
	}
	parts := make([]string, len(names))
	for i := range names {
		parts[i] = fmt.Sprintf("%s=%q", names[i], values[i])
	}
	return strings.Join(parts, ",")
}

// formatBound renders a bucket bound the way Prometheus clients expect.
func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }
