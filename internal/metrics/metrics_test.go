package metrics

import (
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// CounterAdd/Observe are //apollo:hotpath — every decision request bumps
// them — so after the first sight of a series the steady-state update
// must not allocate or lock.
func TestMetricsHotPathAllocationFree(t *testing.T) {
	m := New()
	m.CounterAdd("apollo_decisions_total", "model", "guard", "h", 1)
	m.Observe("apollo_decision_seconds", "h", 1e-5)
	allocs := testing.AllocsPerRun(200, func() {
		m.CounterAdd("apollo_decisions_total", "model", "guard", "h", 1)
		m.Observe("apollo_decision_seconds", "h", 1e-5)
	})
	if allocs != 0 {
		t.Errorf("steady-state metric update allocates %.1f objects, want 0", allocs)
	}
}

// The copy-on-write snapshot must not lose updates racing a republish:
// counters bumped concurrently with first-sight creations of other
// series all land, because the *atomic values are shared across
// snapshots.
func TestMetricsConcurrentFirstSight(t *testing.T) {
	m := New()
	const perG, goroutines = 200, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := string(rune('a' + g))
			for i := 0; i < perG; i++ {
				m.CounterAdd("apollo_race_total", "worker", label, "h", 1)
				m.GaugeSet("apollo_race_gauge", "worker", label, "h", int64(i))
				m.Observe("apollo_race_seconds", "h", 1e-6)
			}
		}(g)
	}
	wg.Wait()
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for g := 0; g < goroutines; g++ {
		want := "apollo_race_total{worker=\"" + string(rune('a'+g)) + "\"} 200"
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "apollo_race_seconds_count 1600") {
		t.Errorf("histogram lost observations:\n%s", out)
	}
}

// Labeled histograms mirror CounterAdd: per-label-value series under
// one family, steady-state updates allocation-free, rendered with the
// label pair on every _bucket/_sum/_count line and le last.
func TestLabeledHistogram(t *testing.T) {
	m := New()
	m.ObserveLabeled("apollo_loop_stage_seconds", "stage", "retrain", "h", 0.2)
	m.ObserveLabeled("apollo_loop_stage_seconds", "stage", "retrain", "h", 0.3)
	m.ObserveLabeled("apollo_loop_stage_seconds", "stage", "publish", "h", 1e-3)
	allocs := testing.AllocsPerRun(200, func() {
		m.ObserveLabeled("apollo_loop_stage_seconds", "stage", "retrain", "h", 0.2)
	})
	if allocs != 0 {
		t.Errorf("steady-state labeled observe allocates %.1f objects, want 0", allocs)
	}

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`apollo_loop_stage_seconds_bucket{stage="retrain",le="0.5"} 203`,
		`apollo_loop_stage_seconds_bucket{stage="retrain",le="+Inf"} 203`,
		`apollo_loop_stage_seconds_count{stage="retrain"} 203`,
		`apollo_loop_stage_seconds_count{stage="publish"} 1`,
		`apollo_loop_stage_seconds_sum{stage="publish"} 0.001`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled histogram missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "apollo_loop_stage_seconds_count \n") {
		t.Errorf("unexpected bare count line for labeled family:\n%s", out)
	}
}

// A comma-separated label name zips with a comma-separated label value
// into one pair per part — the info-series shape apollo_model_lineage
// uses to carry (model, version, parent, loop) on a gauge.
func TestMultiLabelInfoSeries(t *testing.T) {
	m := New()
	m.GaugeSet("apollo_model_lineage", "model,version,parent,loop",
		"lulesh/policy,7,6,L42", "h", 1)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `apollo_model_lineage{model="lulesh/policy",version="7",parent="6",loop="L42"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("missing %q in exposition:\n%s", want, sb.String())
	}
}

// The runtime collector exposes goroutine, heap, and GC-pause
// self-metrics, and consumes each completed pause exactly once across
// repeated collects.
func TestRuntimeCollector(t *testing.T) {
	m := New()
	rc := NewRuntimeCollector(m)
	runtime.GC()
	rc.Collect()
	rc.Collect() // second collect must not double-count pauses

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"apollo_go_goroutines",
		"apollo_go_heap_alloc_bytes",
		"apollo_go_heap_sys_bytes",
		"apollo_go_gc_pause_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q:\n%s", want, out)
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	re := regexp.MustCompile(`apollo_go_gc_pause_seconds_count (\d+)`)
	match := re.FindStringSubmatch(out)
	if match == nil {
		t.Fatalf("no pause count in exposition:\n%s", out)
	}
	count, _ := strconv.Atoi(match[1])
	if uint32(count) > ms.NumGC {
		t.Errorf("pause observations %d exceed completed GC cycles %d (double-counted)", count, ms.NumGC)
	}
}
