package metrics

import (
	"runtime"
	"sync"
)

// RuntimeCollector samples Go runtime health — goroutine count, heap
// bytes, and the GC pause distribution — into a Metrics set. Both
// daemons call Collect from their /metrics handlers, so a scrape always
// sees fresh values without a background sampling goroutine.
type RuntimeCollector struct {
	m *Metrics

	mu       sync.Mutex
	lastNumGC uint32
}

// NewRuntimeCollector returns a collector writing into m.
func NewRuntimeCollector(m *Metrics) *RuntimeCollector {
	return &RuntimeCollector{m: m}
}

// Collect samples the runtime now: goroutine and thread counts, heap
// gauges, and every GC pause completed since the previous Collect into
// the pause histogram. Safe for concurrent callers; pauses are consumed
// exactly once.
func (rc *RuntimeCollector) Collect() {
	rc.m.GaugeSet("apollo_go_goroutines", "", "",
		"Number of live goroutines.", int64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rc.m.GaugeSet("apollo_go_heap_alloc_bytes", "", "",
		"Bytes of allocated heap objects.", int64(ms.HeapAlloc))
	rc.m.GaugeSet("apollo_go_heap_sys_bytes", "", "",
		"Bytes of heap memory obtained from the OS.", int64(ms.HeapSys))
	rc.m.GaugeSet("apollo_go_heap_objects", "", "",
		"Number of allocated heap objects.", int64(ms.HeapObjects))
	rc.m.GaugeSet("apollo_go_gc_cycles_total", "", "",
		"Completed GC cycles.", int64(ms.NumGC))

	// Feed the pauses completed since the last collect into the
	// histogram. MemStats keeps the most recent 256 pause times in a
	// circular buffer indexed by GC cycle number.
	rc.mu.Lock()
	last := rc.lastNumGC
	rc.lastNumGC = ms.NumGC
	rc.mu.Unlock()
	if ms.NumGC-last > uint32(len(ms.PauseNs)) {
		last = ms.NumGC - uint32(len(ms.PauseNs))
	}
	for c := last; c < ms.NumGC; c++ {
		pause := ms.PauseNs[c%uint32(len(ms.PauseNs))]
		rc.m.Observe("apollo_go_gc_pause_seconds",
			"Stop-the-world GC pause durations.", float64(pause)/1e9)
	}
}
