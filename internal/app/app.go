// Package app defines the interface the experiment harness uses to drive
// the three proxy applications uniformly.
package app

import (
	"apollo/internal/caliper"
	"apollo/internal/raja"
)

// Config parameterizes one application run.
type Config struct {
	// Ctx is the RAJA execution context (team/clock/hooks/defaults).
	Ctx *raja.Context
	// Ann is the caliper blackboard the application annotates and the
	// recorder reads.
	Ann *caliper.Annotations
	// Problem names the input deck.
	Problem string
	// Size is the global problem size (cells per side).
	Size int
	// Ranks, when > 1, partitions work across simulated MPI ranks
	// (patches carry rank ownership; kernels annotate their rank).
	Ranks int
}

// Sim is a running application instance.
type Sim interface {
	// Step advances one timestep, launching every kernel through the
	// configured context.
	Step()
	// Cycle returns the number of completed timesteps.
	Cycle() int
	// Time returns the simulated physical time.
	Time() float64
}

// Descriptor describes an application to the harness.
type Descriptor struct {
	// Name is the application name ("LULESH", "CleverLeaf", "ARES").
	Name string
	// Short is the single-letter tag used in the paper's Table III.
	Short string
	// Problems are the input decks the paper runs in this application.
	Problems []string
	// TrainSizes are the global problem sizes used for training runs.
	TrainSizes []int
	// Steps is the number of timesteps per training run.
	Steps int
	// DefaultParams is the application's static default configuration
	// (OpenMP everywhere for LULESH and CleverLeaf).
	DefaultParams raja.Params
	// NewDefaultHooks, when non-nil, builds the application's
	// hand-assigned per-kernel static policies (ARES's developer
	// defaults). Nil means DefaultParams applies to every kernel.
	NewDefaultHooks func() raja.Hooks
	// New creates a run.
	New func(cfg Config) (Sim, error)
}
