// Package looptrace is the closed-loop flight recorder: fixed-size
// structured events for every stage of the model lifecycle — drift
// fired, retrain started/ended, duel judged, model published, peer
// pulled, client swapped, replica evicted/readmitted, telemetry
// ingested — emitted through the same lock-free ring discipline as
// internal/flight and made durable as JSONL journals.
//
// Each process in the loop (apollo-traind, every apollo-serve replica,
// a tuner-side application) owns one Tracer identified by an actor
// string. Events that belong to the same retrain cycle share a loop ID,
// minted by the trainer when a drift trigger (or bootstrap) starts a
// cycle and carried in the published model's lineage block, so the ID
// propagates to replicas on sync-pull, to clients on fetch, and back to
// the service inside telemetry batches. `apollo-inspect loop` stitches
// the journals of N processes into one causal timeline and reports the
// loop reaction time (drift-detect → retrain → publish → converged).
//
// Emit is //apollo:hotpath: the producer side is a Vyukov bounded MPMC
// ring of preallocated fixed-size events — claim a slot by CAS, copy
// the strings into inline byte arrays, publish the slot's ticket — with
// zero allocation, no locks, and drop-not-block on a full ring. Only
// the consumer side (journal flush, debug capture) takes a mutex.
package looptrace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the loop stages an event can mark.
type Kind uint8

const (
	// KindDriftFired marks a drift trigger tripping on the training
	// window (A = mispredict rate, B = shift score, Rows = window).
	KindDriftFired Kind = iota + 1
	// KindRetrainStart marks a challenger train beginning (Rows =
	// training rows, Parent = champion version).
	KindRetrainStart
	// KindRetrainEnd marks the train finishing (DurNS = train time).
	KindRetrainEnd
	// KindDuel marks the champion/challenger holdout duel (A = champion
	// mean predicted ns, B = challenger, Rows = holdout rows, Peer =
	// verdict: "publish", "reject", or "veto").
	KindDuel
	// KindPublish marks a model version entering a registry (Version =
	// published version, Parent = predecessor).
	KindPublish
	// KindSyncPull marks a replica pulling a newer version from a peer
	// (Peer = peer id, DurNS = pull time).
	KindSyncPull
	// KindClientSwap marks a client hot-swapping to a fetched version.
	KindClientSwap
	// KindRingEvict marks fleet health evicting a replica (Peer = id).
	KindRingEvict
	// KindRingReadmit marks an evicted replica rejoining (Peer = id).
	KindRingReadmit
	// KindIngest marks the service spooling a telemetry batch (Rows =
	// batch rows, Version = the model version the client ran under).
	KindIngest

	kindCount
)

var kindNames = [kindCount]string{
	KindDriftFired:   "drift-fired",
	KindRetrainStart: "retrain-start",
	KindRetrainEnd:   "retrain-end",
	KindDuel:         "duel",
	KindPublish:      "publish",
	KindSyncPull:     "sync-pull",
	KindClientSwap:   "client-swap",
	KindRingEvict:    "ring-evict",
	KindRingReadmit:  "ring-readmit",
	KindIngest:       "telemetry-ingest",
}

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	if k == 0 || k >= kindCount {
		return "unknown"
	}
	return kindNames[k]
}

// KindFromString inverts Kind.String (0 for an unknown name).
func KindFromString(s string) Kind {
	for k := Kind(1); k < kindCount; k++ {
		if kindNames[k] == s {
			return k
		}
	}
	return 0
}

// Inline string capacities. Longer strings truncate on emit; model
// names are registry-validated well under MaxModel and loop IDs are
// minted at a fixed length, so truncation only bites hand-rolled input.
const (
	MaxModel = 64
	MaxLoop  = 48
	MaxPeer  = 32
)

// Event is one fixed-size, pointer-free loop event. Strings live in
// inline byte arrays so a ring of Events is a single allocation and an
// emit never touches the heap.
type Event struct {
	Seq     uint64 // per-tracer emit sequence, 1-based
	WallNS  int64  // wall-clock unix nanoseconds (see Tracer clock note)
	Kind    Kind
	Version int32   // model version the event is about (0 if n/a)
	Parent  int32   // predecessor version (0 if n/a)
	Rows    int64   // row count (window, holdout, or batch; 0 if n/a)
	DurNS   float64 // stage duration in ns (0 if n/a)
	A, B    float64 // kind-specific scalars (see Kind docs)

	modelLen, loopLen, peerLen int32
	model                      [MaxModel]byte
	loop                       [MaxLoop]byte
	peer                       [MaxPeer]byte
}

// ModelName returns the event's model name (allocates; cold path).
func (e *Event) ModelName() string { return string(e.model[:e.modelLen]) }

// LoopID returns the event's correlation ID (allocates; cold path).
func (e *Event) LoopID() string { return string(e.loop[:e.loopLen]) }

// Peer returns the event's peer/verdict string (allocates; cold path).
func (e *Event) Peer() string { return string(e.peer[:e.peerLen]) }

// Fields carries the optional per-event payload of an Emit.
type Fields struct {
	Version int32
	Parent  int32
	Rows    int64
	DurNS   float64
	A, B    float64
	Peer    string
}

// slot is one ring cell: a Vyukov sequence ticket plus its event.
type slot struct {
	seq atomic.Uint64
	ev  Event
}

// Options configures a Tracer.
type Options struct {
	// Capacity is the ring size, rounded up to a power of two
	// (default 1024). A full ring drops events rather than blocking.
	Capacity int
	// Retain bounds the drained-event window kept in memory for the
	// debug endpoint (default 1024; oldest evicted first).
	Retain int
}

// Tracer emits, buffers, and journals one process's loop events.
type Tracer struct {
	actor string
	// wallBase anchors the monotonic clock to the wall clock: computed
	// once at construction as time.Now() - nanotime(), so the hot-path
	// emit derives a cross-process-comparable wall timestamp from a
	// single vDSO monotonic read, never calling time.Now.
	wallBase int64

	emitted atomic.Uint64
	dropped atomic.Uint64

	// Vyukov bounded MPMC ring (see telemetry.Recorder).
	mask    uint64
	slots   []slot
	enqueue atomic.Uint64
	dequeue atomic.Uint64

	// mu serializes the cold consumer side: draining the ring into the
	// retained window and appending journal lines. Never touched by
	// Emit.
	mu       sync.Mutex //apollo:lockrank 50
	retained []Event
	retain   int
	journal  *journalWriter
}

// New returns a tracer identified by actor (e.g. "traind", "serve:r1",
// "tune"). The actor names the journal file and tags every stitched
// event, so give each process in a fleet a distinct one.
func New(actor string, opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	capacity := 1
	for capacity < opts.Capacity {
		capacity <<= 1
	}
	if opts.Retain <= 0 {
		opts.Retain = 1024
	}
	t := &Tracer{
		actor:    actor,
		wallBase: time.Now().UnixNano() - nanotime(),
		mask:     uint64(capacity - 1),
		slots:    make([]slot, capacity),
		retain:   opts.Retain,
	}
	for i := range t.slots {
		t.slots[i].seq.Store(uint64(i))
	}
	return t
}

// Actor returns the tracer's process identity.
func (t *Tracer) Actor() string { return t.actor }

// Emitted returns how many events entered the ring.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted.Load()
}

// Dropped returns how many events were lost to a full ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Emit records one loop event. It is safe on a nil tracer (a no-op), so
// instrumented packages can call it unconditionally. The event's wall
// timestamp comes from one monotonic clock read against the tracer's
// construction-time wall anchor. Emit never blocks and never
// allocates: contention resolves by CAS retry and a full ring drops.
//
//apollo:hotpath
func (t *Tracer) Emit(kind Kind, model, loop string, f Fields) {
	if t == nil {
		return
	}
	for {
		pos := t.enqueue.Load()
		s := &t.slots[pos&t.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if !t.enqueue.CompareAndSwap(pos, pos+1) {
				continue
			}
			ev := &s.ev
			ev.Kind = kind
			ev.WallNS = t.wallBase + nanotime()
			ev.Version = f.Version
			ev.Parent = f.Parent
			ev.Rows = f.Rows
			ev.DurNS = f.DurNS
			ev.A = f.A
			ev.B = f.B
			ev.modelLen = int32(copy(ev.model[:], model))
			ev.loopLen = int32(copy(ev.loop[:], loop))
			ev.peerLen = int32(copy(ev.peer[:], f.Peer))
			ev.Seq = t.emitted.Add(1)
			s.seq.Store(pos + 1) // publish: consumer ticket pos may now read
			return
		case seq < pos:
			// The consumer has not freed this slot yet: the ring is
			// full. Drop rather than stall the caller.
			t.dropped.Add(1)
			return
		default:
			// Another producer advanced enqueue between our loads;
			// retry with the fresh position.
		}
	}
}

// take dequeues one event, staying correct for concurrent consumers by
// copying the event out before releasing the slot to producers.
func (t *Tracer) take(out *Event) bool {
	for {
		pos := t.dequeue.Load()
		s := &t.slots[pos&t.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos+1:
			if !t.dequeue.CompareAndSwap(pos, pos+1) {
				continue
			}
			*out = s.ev
			s.seq.Store(pos + t.mask + 1) // free: producer ticket pos+cap may write
			return true
		case seq <= pos:
			return false // empty
		default:
		}
	}
}

// drainLocked moves every ring event into the retained window (bounded,
// oldest first out) and appends it to the journal when one is attached.
// Caller holds t.mu.
func (t *Tracer) drainLocked() error {
	var firstErr error
	var ev Event
	for t.take(&ev) {
		t.retained = append(t.retained, ev)
		if t.journal != nil {
			if err := t.journal.append(t.actor, &ev); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if n := len(t.retained) - t.retain; n > 0 {
		t.retained = append(t.retained[:0], t.retained[n:]...)
	}
	if t.journal != nil {
		if err := t.journal.flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Snapshot drains the ring and returns a copy of the retained window in
// emit order. It loses nothing: drained events stay retained (up to the
// retain bound) for the next snapshot.
func (t *Tracer) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.drainLocked() //apollo:errok journal append failures are surfaced by Flush/Close; a debug snapshot must still serve what it has
	return append([]Event(nil), t.retained...)
}
