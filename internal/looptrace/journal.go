// Journal files make loop events durable and stitchable across
// processes. A journal is one JSONL file per tracer: a header line
// identifying the format and actor, then one self-contained event
// object per line (each line repeats the actor, so a stitcher can
// concatenate journals without header bookkeeping and a torn tail line
// costs one event, not the file). Files open in append mode — a
// restarted daemon continues its journal, writing a fresh header line,
// which readers skip like any other header.

package looptrace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// JournalFormatID identifies the loop-journal JSONL format (also used
// by the /debug/apollo/loop capture).
const JournalFormatID = "apollo-loop-v1"

// journalHeader is the first line written on every open of a journal.
type journalHeader struct {
	Format string `json:"format"`
	Actor  string `json:"actor"`
	OpenNS int64  `json:"open_unix_ns"`
}

// EventJSON is the wire/disk form of an Event: journal lines, debug
// captures, and stitched reports all carry this shape.
type EventJSON struct {
	Kind    string  `json:"kind"`
	Seq     uint64  `json:"seq"`
	WallNS  int64   `json:"wall_ns"`
	Actor   string  `json:"actor,omitempty"`
	Model   string  `json:"model,omitempty"`
	Loop    string  `json:"loop,omitempty"`
	Peer    string  `json:"peer,omitempty"`
	Version int32   `json:"version,omitempty"`
	Parent  int32   `json:"parent,omitempty"`
	Rows    int64   `json:"rows,omitempty"`
	DurNS   float64 `json:"dur_ns,omitempty"`
	A       float64 `json:"a,omitempty"`
	B       float64 `json:"b,omitempty"`
}

// toJSON renders an event for the given actor.
func (e *Event) toJSON(actor string) EventJSON {
	return EventJSON{
		Kind:    e.Kind.String(),
		Seq:     e.Seq,
		WallNS:  e.WallNS,
		Actor:   actor,
		Model:   e.ModelName(),
		Loop:    e.LoopID(),
		Peer:    e.Peer(),
		Version: e.Version,
		Parent:  e.Parent,
		Rows:    e.Rows,
		DurNS:   e.DurNS,
		A:       e.A,
		B:       e.B,
	}
}

// journalWriter buffers JSONL appends to one journal file.
type journalWriter struct {
	f  *os.File
	bw *bufio.Writer
}

func (j *journalWriter) append(actor string, ev *Event) error {
	line, err := json.Marshal(ev.toJSON(actor))
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = j.bw.Write(line)
	return err
}

func (j *journalWriter) flush() error { return j.bw.Flush() }

// JournalPath returns the journal file a tracer for actor writes under
// dir: loop-<actor>.jsonl with path separators and spaces flattened.
func JournalPath(dir, actor string) string {
	s := strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ':
			return '-'
		}
		return r
	}, actor)
	return filepath.Join(dir, "loop-"+s+".jsonl")
}

// OpenJournal attaches a durable journal under dir (created if needed):
// subsequent flushes append this tracer's events to
// JournalPath(dir, actor). Opening writes a header line immediately so
// an idle process still leaves an identifiable journal.
func (t *Tracer) OpenJournal(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(JournalPath(dir, t.actor), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr, err := json.Marshal(journalHeader{Format: JournalFormatID, Actor: t.actor, OpenNS: time.Now().UnixNano()})
	if err != nil {
		f.Close() //apollo:errok Close on the error path; the marshal error is already being returned
		return err
	}
	hdr = append(hdr, '\n')
	if _, err := f.Write(hdr); err != nil {
		f.Close() //apollo:errok Close on the error path; the write error is already being returned
		return err
	}
	t.mu.Lock()
	old := t.journal
	t.journal = &journalWriter{f: f, bw: bufio.NewWriter(f)}
	t.mu.Unlock()
	if old != nil { // swapped out under the lock; only this goroutine holds it now
		old.flush()   //apollo:errok replacing a journal mid-run is a test/tooling move; the old file's tail is best-effort
		old.f.Close() //apollo:errok same: the new journal is what matters now
	}
	return nil
}

// Flush drains the ring into the retained window and the journal (if
// one is attached) and syncs the journal's buffer to the file.
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drainLocked()
}

// Close flushes and detaches the journal. The tracer stays usable
// (Emit, Snapshot); only durability stops.
//
//apollo:lockok t.mu serializes the cold consumer side (journal flush, debug capture); never on an emit path
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.drainLocked()
	if t.journal != nil {
		if cerr := t.journal.f.Close(); err == nil {
			err = cerr
		}
		t.journal = nil
	}
	return err
}

// Start flushes the tracer every interval until ctx is done, then does
// a final flush, and reports completion on the returned channel. This
// is the background journal writer a daemon runs next to its tracer.
func (t *Tracer) Start(ctx context.Context, interval time.Duration) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				t.Flush() //apollo:errok final flush: the daemon is exiting and Close will surface persistent journal errors
				return
			case <-tick.C:
				t.Flush() //apollo:errok a transient journal write error must not kill the flusher; the next tick retries
			}
		}
	}()
	return done
}

// NewLoopID mints a correlation ID for one retrain cycle: a fixed-width
// token derived from the model name, the parent version, and the mint
// time, unique per trainer process and comma-free (it rides inside
// multi-label metric values).
func NewLoopID(model string, parent int, wallNS int64) string {
	var h uint64 = 14695981039346656037 // FNV-64a
	for i := 0; i < len(model); i++ {
		h ^= uint64(model[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("L%016x-%08x", h^uint64(wallNS), uint32(parent)<<24|uint32(wallNS)&0xffffff)
}

// ReadJournal parses one journal file, tolerating a torn final line and
// interleaved header lines from restarts. Events missing an actor field
// inherit the most recent header's actor.
func ReadJournal(path string) ([]EventJSON, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var events []EventJSON
	actor := ""
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: the writer is mid-append
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Format string `json:"format"`
			Kind   string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("looptrace: %s: bad line: %w", path, err)
		}
		if probe.Format != "" {
			var hdr journalHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return nil, fmt.Errorf("looptrace: %s: bad header: %w", path, err)
			}
			if hdr.Format != JournalFormatID {
				return nil, fmt.Errorf("looptrace: %s has format %q, want %q", path, hdr.Format, JournalFormatID)
			}
			actor = hdr.Actor
			continue
		}
		var ev EventJSON
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("looptrace: %s: bad event: %w", path, err)
		}
		if ev.Actor == "" {
			ev.Actor = actor
		}
		events = append(events, ev)
	}
	return events, nil
}

// ReadJournalDir parses every loop-*.jsonl journal under dir and
// returns the union of their events (unsorted; Stitch orders them).
func ReadJournalDir(dir string) ([]EventJSON, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "loop-*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var all []EventJSON
	for _, p := range paths {
		events, err := ReadJournal(p)
		if err != nil {
			return nil, err
		}
		all = append(all, events...)
	}
	return all, nil
}
