package looptrace

import (
	_ "unsafe" // for go:linkname
)

// nanotime is the runtime's monotonic clock, the same raw vDSO read
// internal/flight stamps decisions with. Loop events are emitted from
// //apollo:hotpath code (the tuner/client path), where time.Now is
// banned; the tracer instead anchors this monotonic clock to the wall
// clock once at construction and derives wall timestamps from it.
//
//go:linkname nanotime runtime.nanotime
func nanotime() int64
