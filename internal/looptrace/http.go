package looptrace

import (
	"encoding/json"
	"net/http"
)

// Capture is the /debug/apollo/loop response: the tracer's retained
// event window plus its counters, in the same apollo-loop-v1 shape as a
// journal, so `apollo-inspect loop -url` consumes a live daemon exactly
// like a journal file.
type Capture struct {
	Format  string      `json:"format"`
	Actor   string      `json:"actor"`
	Emitted uint64      `json:"emitted"`
	Dropped uint64      `json:"dropped"`
	Events  []EventJSON `json:"events"`
}

// CaptureEvents snapshots the retained window as wire events.
func (t *Tracer) CaptureEvents() *Capture {
	events := t.Snapshot()
	out := make([]EventJSON, len(events))
	for i := range events {
		out[i] = events[i].toJSON(t.actor)
	}
	return &Capture{
		Format:  JournalFormatID,
		Actor:   t.actor,
		Emitted: t.Emitted(),
		Dropped: t.Dropped(),
		Events:  out,
	}
}

// RegisterDebug installs the loop-trace debug endpoint on mux:
//
//	/debug/apollo/loop  retained loop events as apollo-loop-v1 JSON
//
// The handler only reads the tracer (snapshots drain the ring into the
// retained window but lose nothing), so it is safe on a live process.
// tr may be nil, in which case the endpoint reports 503.
func RegisterDebug(mux *http.ServeMux, tr *Tracer) {
	mux.HandleFunc("GET /debug/apollo/loop", func(w http.ResponseWriter, req *http.Request) {
		if tr == nil {
			http.Error(w, "loop tracer not enabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tr.CaptureEvents()) //apollo:errok debug endpoint: a client gone mid-response has no receiver for the error
	})
}
