package looptrace

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// Emit is //apollo:hotpath — the tuner/client path calls it on every
// model swap and telemetry flush — so the steady-state emit must not
// allocate, including the nil-tracer no-op.
func TestEmitAllocationFree(t *testing.T) {
	tr := New("test", Options{Capacity: 1 << 14})
	f := Fields{Version: 2, Parent: 1, Rows: 64, Peer: "r1"}
	allocs := testing.AllocsPerRun(500, func() {
		tr.Emit(KindClientSwap, "lulesh/policy", "L0123456789abcdef-00000001", f)
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %.1f objects per call, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(100, func() {
		nilTr.Emit(KindClientSwap, "lulesh/policy", "", f)
	})
	if allocs != 0 {
		t.Errorf("nil-tracer Emit allocates %.1f objects per call, want 0", allocs)
	}
}

// A full ring drops rather than blocking, the counters account for
// every emit, and draining frees slots for new events.
func TestRingDropAndDrain(t *testing.T) {
	tr := New("test", Options{Capacity: 8})
	for i := 0; i < 12; i++ {
		tr.Emit(KindPublish, "m", "L1", Fields{Version: int32(i + 1)})
	}
	if got := tr.Emitted(); got != 8 {
		t.Errorf("emitted %d, want 8", got)
	}
	if got := tr.Dropped(); got != 4 {
		t.Errorf("dropped %d, want 4", got)
	}
	events := tr.Snapshot()
	if len(events) != 8 {
		t.Fatalf("snapshot has %d events, want 8", len(events))
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) || ev.Version != int32(i+1) {
			t.Errorf("event %d: seq=%d version=%d, want %d/%d", i, ev.Seq, ev.Version, i+1, i+1)
		}
		if ev.ModelName() != "m" || ev.LoopID() != "L1" {
			t.Errorf("event %d: model=%q loop=%q", i, ev.ModelName(), ev.LoopID())
		}
	}
	tr.Emit(KindPublish, "m", "L1", Fields{Version: 99})
	if got := tr.Snapshot(); len(got) != 9 || got[8].Version != 99 {
		t.Errorf("post-drain emit not retained: %d events", len(got))
	}
}

// Strings longer than the inline capacity truncate instead of
// corrupting neighbors, and wall timestamps are monotone per tracer.
func TestEventBounds(t *testing.T) {
	tr := New("test", Options{})
	long := strings.Repeat("x", 200)
	tr.Emit(KindDuel, long, long, Fields{Peer: long})
	events := tr.Snapshot()
	if len(events) != 1 {
		t.Fatal("no event")
	}
	ev := events[0]
	if len(ev.ModelName()) != MaxModel || len(ev.LoopID()) != MaxLoop || len(ev.Peer()) != MaxPeer {
		t.Errorf("truncation: model=%d loop=%d peer=%d", len(ev.ModelName()), len(ev.LoopID()), len(ev.Peer()))
	}
	now := time.Now().UnixNano()
	if d := ev.WallNS - now; d > int64(time.Minute) || d < -int64(time.Minute) {
		t.Errorf("wall timestamp %d is %v away from now", ev.WallNS, time.Duration(d))
	}
}

// Concurrent emitters racing a draining consumer lose nothing that was
// admitted: emitted == retained-or-journaled, dropped accounts for the
// rest. Run with -race.
func TestConcurrentEmitDrain(t *testing.T) {
	tr := New("test", Options{Capacity: 1 << 10, Retain: 1 << 16})
	const perG, goroutines = 500, 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var drains sync.WaitGroup
	drains.Add(1)
	go func() {
		defer drains.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Flush() //nolint — test consumer
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Emit(KindIngest, "m", "L1", Fields{Rows: 1})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	drains.Wait()
	got := uint64(len(tr.Snapshot()))
	if want := tr.Emitted(); got != want {
		t.Errorf("retained %d events, emitted %d", got, want)
	}
	if tr.Emitted()+tr.Dropped() != perG*goroutines {
		t.Errorf("emitted %d + dropped %d != %d", tr.Emitted(), tr.Dropped(), perG*goroutines)
	}
}

// Journal round trip: events written by a flushing tracer (including a
// reopen, which appends a second header) read back in order with the
// actor attached.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := New("serve:r1", Options{})
	if err := tr.OpenJournal(dir); err != nil {
		t.Fatal(err)
	}
	tr.Emit(KindPublish, "m", "L1", Fields{Version: 2, Parent: 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.OpenJournal(dir); err != nil { // restart: append mode
		t.Fatal(err)
	}
	tr.Emit(KindSyncPull, "m", "L1", Fields{Version: 2, Peer: "r2", DurNS: 1e6})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	path := JournalPath(dir, "serve:r1")
	if filepath.Base(path) != "loop-serve-r1.jsonl" {
		t.Errorf("journal path %q", path)
	}
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events, want 2", len(events))
	}
	if events[0].Kind != "publish" || events[0].Actor != "serve:r1" || events[0].Version != 2 {
		t.Errorf("event 0: %+v", events[0])
	}
	if events[1].Kind != "sync-pull" || events[1].Peer != "r2" || events[1].DurNS != 1e6 {
		t.Errorf("event 1: %+v", events[1])
	}

	all, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("dir read %d events, want 2", len(all))
	}
}

// The background flusher journals without an explicit Flush and stops
// cleanly on context cancel.
func TestStartFlushes(t *testing.T) {
	dir := t.TempDir()
	tr := New("traind", Options{})
	if err := tr.OpenJournal(dir); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := tr.Start(ctx, time.Millisecond)
	tr.Emit(KindDriftFired, "m", "L1", Fields{A: 0.5, Rows: 100})
	deadline := time.Now().Add(5 * time.Second)
	for {
		events, err := ReadJournal(JournalPath(dir, "traind"))
		if err == nil && len(events) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never flushed: %v %d", err, len(events))
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// Stitch groups by loop ID, orders cross-actor events by wall time,
// computes stage spans, and marks the loop complete with a nonzero
// reaction time.
func TestStitchTimeline(t *testing.T) {
	base := int64(1_000_000_000_000)
	ms := func(n int64) int64 { return base + n*int64(time.Millisecond) }
	events := []EventJSON{
		{Kind: "client-swap", Actor: "tune", Model: "m", Loop: "L1", Version: 2, WallNS: ms(50)},
		{Kind: "drift-fired", Actor: "traind", Model: "m", Loop: "L1", A: 0.6, Rows: 40, WallNS: ms(0)},
		{Kind: "retrain-start", Actor: "traind", Model: "m", Loop: "L1", Parent: 1, Rows: 36, WallNS: ms(1)},
		{Kind: "retrain-end", Actor: "traind", Model: "m", Loop: "L1", DurNS: 9e6, WallNS: ms(10)},
		{Kind: "duel", Actor: "traind", Model: "m", Loop: "L1", A: 900, B: 400, Rows: 4, Peer: "publish", WallNS: ms(11)},
		{Kind: "publish", Actor: "serve:r1", Model: "m", Loop: "L1", Version: 2, Parent: 1, WallNS: ms(15)},
		{Kind: "sync-pull", Actor: "serve:r2", Model: "m", Loop: "L1", Version: 2, Peer: "r1", WallNS: ms(30)},
		{Kind: "sync-pull", Actor: "serve:r3", Model: "m", Loop: "L1", Version: 2, Peer: "r1", WallNS: ms(40)},
		{Kind: "ring-evict", Actor: "serve:r1", Peer: "r9", WallNS: ms(5)}, // no loop: unscoped
	}
	r := Stitch(events)
	if r.Unscoped != 1 || len(r.Loops) != 1 || r.CompleteLoops != 1 {
		t.Fatalf("unscoped=%d loops=%d complete=%d", r.Unscoped, len(r.Loops), r.CompleteLoops)
	}
	tl := r.Loops[0]
	if !tl.Drift || !tl.Complete || tl.Version != 2 || tl.Parent != 1 || tl.Model != "m" {
		t.Errorf("timeline: %+v", tl)
	}
	if want := float64(50 * time.Millisecond); tl.ReactionNS != want {
		t.Errorf("reaction %.0f, want %.0f", tl.ReactionNS, want)
	}
	if tl.Events[0].Kind != "drift-fired" || tl.Events[len(tl.Events)-1].Kind != "client-swap" {
		t.Errorf("events not time-ordered: first=%s last=%s", tl.Events[0].Kind, tl.Events[len(tl.Events)-1].Kind)
	}
	for stage, want := range map[string]float64{
		"detect":     float64(1 * time.Millisecond),
		"retrain":    float64(9 * time.Millisecond),
		"publish":    float64(5 * time.Millisecond),
		"distribute": float64(25 * time.Millisecond),
		"swap":       float64(35 * time.Millisecond),
		"total":      float64(50 * time.Millisecond),
	} {
		if got := tl.Stages[stage]; got != want {
			t.Errorf("stage %s: %.0f, want %.0f", stage, got, want)
		}
	}
	if r.Reaction.Count != 1 || r.Reaction.P50NS != tl.ReactionNS || r.Reaction.P99NS != tl.ReactionNS {
		t.Errorf("reaction stats: %+v", r.Reaction)
	}

	var sb strings.Builder
	if err := r.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"drift-fired", "sync-pull", "reaction", "p99"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("timeline text missing %q:\n%s", want, sb.String())
		}
	}
}

// An open loop (no convergence signal) is reported but not counted
// complete, and contributes no reaction sample.
func TestStitchIncompleteLoop(t *testing.T) {
	events := []EventJSON{
		{Kind: "drift-fired", Actor: "traind", Model: "m", Loop: "L2", WallNS: 10},
		{Kind: "retrain-start", Actor: "traind", Model: "m", Loop: "L2", WallNS: 20},
	}
	r := Stitch(events)
	if len(r.Loops) != 1 || r.CompleteLoops != 0 || r.Reaction.Count != 0 {
		t.Fatalf("loops=%d complete=%d reactions=%d", len(r.Loops), r.CompleteLoops, r.Reaction.Count)
	}
	if r.Loops[0].Complete || r.Loops[0].ReactionNS != 0 {
		t.Errorf("incomplete loop misreported: %+v", r.Loops[0])
	}
}

// Steady-state emit cost on the client path: ring has headroom, no
// journal attached (the flusher drains out of band in real deployments).
func BenchmarkEmit(b *testing.B) {
	tr := New("bench", Options{Capacity: 1 << 16})
	f := Fields{Version: 2, Parent: 1, Rows: 64, Peer: "r1"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(KindClientSwap, "lulesh/policy", "L0123456789abcdef-00000001", f)
		if i&0xffff == 0xffff {
			tr.Flush() // keep the ring from saturating into the drop path
		}
	}
}

// The nil-tracer no-op: what untraced processes pay at every call site.
func BenchmarkEmitNilTracer(b *testing.B) {
	var tr *Tracer
	f := Fields{Version: 2, Parent: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(KindClientSwap, "lulesh/policy", "", f)
	}
}

// Contended emit: every logical CPU hammering one ring, the worst case
// a busy replica's ingest + sync + swap paths can produce.
func BenchmarkEmitParallel(b *testing.B) {
	tr := New("bench", Options{Capacity: 1 << 16})
	f := Fields{Version: 2, Parent: 1, Rows: 64}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Emit(KindIngest, "lulesh/policy", "L0123456789abcdef-00000001", f)
		}
	})
}

// Stitch over a fleet-scale journal: 256 loops x 8 events (drift,
// retrain pair, duel, publish, two pulls, swap) across 5 actors.
func BenchmarkStitch(b *testing.B) {
	var events []EventJSON
	for l := 0; l < 256; l++ {
		loop := NewLoopID("m", l, int64(l+1))
		base := int64(l) * 1000
		for i, kind := range []Kind{KindDriftFired, KindRetrainStart, KindRetrainEnd,
			KindDuel, KindPublish, KindSyncPull, KindSyncPull, KindClientSwap} {
			actor := [...]string{"traind", "traind", "traind", "traind",
				"serve:r1", "serve:r2", "serve:r3", "tune"}[i]
			events = append(events, EventJSON{
				Kind: kind.String(), Actor: actor, Model: "m", Loop: loop,
				WallNS: base + int64(i)*100, Version: int32(l + 2), Parent: int32(l + 1),
			})
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Stitch(events)
		if r.CompleteLoops != 256 {
			b.Fatalf("complete loops = %d", r.CompleteLoops)
		}
	}
}
