// Stitching turns the union of N processes' journals into a causal
// timeline per loop ID and the loop-reaction-time distribution the SLO
// is stated over. Events from different processes order by their wall
// timestamps — each tracer anchors one monotonic clock to the wall
// clock at construction, so same-machine journals interleave correctly
// to well under the seconds-scale stages being measured.

package looptrace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// ReportFormatID identifies the stitched-report JSON shape.
const ReportFormatID = "apollo-loop-report-v1"

// LoopTimeline is one retrain cycle's stitched event sequence.
type LoopTimeline struct {
	Loop    string `json:"loop"`
	Model   string `json:"model,omitempty"`
	Version int32  `json:"version,omitempty"` // version the cycle published
	Parent  int32  `json:"parent,omitempty"`

	StartNS int64 `json:"start_wall_ns"`
	EndNS   int64 `json:"end_wall_ns"`

	// Drift reports whether a drift trigger started the cycle (false
	// for a bootstrap publish).
	Drift bool `json:"drift"`
	// Complete reports a closed loop: retrain start and end, a
	// publish, and at least one convergence signal (sync-pull or
	// client-swap) all present.
	Complete bool `json:"complete"`
	// ReactionNS is the loop reaction time: first signal (drift-fired,
	// else retrain-start) to the last convergence event.
	ReactionNS float64 `json:"reaction_ns,omitempty"`
	// Stages breaks the reaction down: detect (drift→retrain-start),
	// retrain, publish (retrain-end→publish), distribute (publish→last
	// sync-pull), swap (publish→last client-swap). Absent stages are
	// omitted.
	Stages map[string]float64 `json:"stages_ns,omitempty"`

	Events []EventJSON `json:"events"`
}

// Stats is a sample distribution summary (nanoseconds).
type Stats struct {
	Count int     `json:"count"`
	P50NS float64 `json:"p50_ns"`
	P99NS float64 `json:"p99_ns"`
	MaxNS float64 `json:"max_ns"`
}

// Report is the stitched view of a journal set.
type Report struct {
	Format   string   `json:"format"`
	Actors   []string `json:"actors"`
	Events   int      `json:"events"`
	Unscoped int      `json:"unscoped_events"` // events with no loop ID (ring evict/readmit, hand publishes)

	Loops         []LoopTimeline `json:"loops"`
	CompleteLoops int            `json:"complete_loops"`

	// Reaction summarizes ReactionNS over complete loops; Stages
	// summarizes each stage over the loops where it occurred.
	Reaction Stats            `json:"reaction"`
	Stages   map[string]Stats `json:"stages"`
}

// Stitch groups events by loop ID into timelines and computes the
// reaction-time distribution. Events without a loop ID are counted but
// belong to no timeline.
func Stitch(events []EventJSON) *Report {
	r := &Report{Format: ReportFormatID, Events: len(events), Stages: map[string]Stats{}}
	actors := map[string]bool{}
	byLoop := map[string][]EventJSON{}
	var order []string
	for _, ev := range events {
		if ev.Actor != "" && !actors[ev.Actor] {
			actors[ev.Actor] = true
			r.Actors = append(r.Actors, ev.Actor)
		}
		if ev.Loop == "" {
			r.Unscoped++
			continue
		}
		if _, ok := byLoop[ev.Loop]; !ok {
			order = append(order, ev.Loop)
		}
		byLoop[ev.Loop] = append(byLoop[ev.Loop], ev)
	}
	sort.Strings(r.Actors)

	stageSamples := map[string][]float64{}
	var reactions []float64
	for _, loop := range order {
		tl := stitchLoop(loop, byLoop[loop])
		if tl.Complete {
			r.CompleteLoops++
			reactions = append(reactions, tl.ReactionNS)
		}
		for stage, ns := range tl.Stages {
			stageSamples[stage] = append(stageSamples[stage], ns)
		}
		r.Loops = append(r.Loops, *tl)
	}
	sort.Slice(r.Loops, func(i, j int) bool { return r.Loops[i].StartNS < r.Loops[j].StartNS })
	r.Reaction = summarize(reactions)
	for stage, samples := range stageSamples {
		r.Stages[stage] = summarize(samples)
	}
	return r
}

func stitchLoop(loop string, events []EventJSON) *LoopTimeline {
	sort.Slice(events, func(i, j int) bool {
		if events[i].WallNS != events[j].WallNS {
			return events[i].WallNS < events[j].WallNS
		}
		return events[i].Seq < events[j].Seq
	})
	tl := &LoopTimeline{Loop: loop, Events: events, Stages: map[string]float64{}}
	var tDrift, tRetrainStart, tRetrainEnd, tPublish, tLastPull, tLastSwap int64
	converged := false
	for _, ev := range events {
		if tl.Model == "" {
			tl.Model = ev.Model
		}
		switch KindFromString(ev.Kind) {
		case KindDriftFired:
			if tDrift == 0 {
				tDrift = ev.WallNS
			}
		case KindRetrainStart:
			if tRetrainStart == 0 {
				tRetrainStart = ev.WallNS
			}
		case KindRetrainEnd:
			if tRetrainEnd == 0 {
				tRetrainEnd = ev.WallNS
			}
		case KindPublish:
			if tPublish == 0 {
				tPublish = ev.WallNS
			}
			if tl.Version == 0 {
				tl.Version, tl.Parent = ev.Version, ev.Parent
			}
		case KindSyncPull:
			tLastPull = ev.WallNS
			converged = true
		case KindClientSwap:
			tLastSwap = ev.WallNS
			converged = true
		}
	}
	tl.Drift = tDrift != 0
	tl.StartNS = tDrift
	if tl.StartNS == 0 {
		tl.StartNS = tRetrainStart
	}
	if tl.StartNS == 0 && len(events) > 0 {
		tl.StartNS = events[0].WallNS
	}
	if len(events) > 0 {
		tl.EndNS = events[len(events)-1].WallNS
	}
	if tDrift != 0 && tRetrainStart != 0 {
		tl.Stages["detect"] = float64(tRetrainStart - tDrift)
	}
	if tRetrainStart != 0 && tRetrainEnd != 0 {
		tl.Stages["retrain"] = float64(tRetrainEnd - tRetrainStart)
	}
	if tRetrainEnd != 0 && tPublish != 0 {
		tl.Stages["publish"] = float64(tPublish - tRetrainEnd)
	}
	if tPublish != 0 && tLastPull != 0 {
		tl.Stages["distribute"] = float64(tLastPull - tPublish)
	}
	if tPublish != 0 && tLastSwap != 0 {
		tl.Stages["swap"] = float64(tLastSwap - tPublish)
	}
	tl.Complete = tRetrainStart != 0 && tRetrainEnd != 0 && tPublish != 0 && converged
	if tl.Complete {
		end := tLastPull
		if tLastSwap > end {
			end = tLastSwap
		}
		tl.ReactionNS = float64(end - tl.StartNS)
		tl.Stages["total"] = tl.ReactionNS
	}
	return tl
}

// summarize computes nearest-rank percentiles over samples.
func summarize(samples []float64) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	sort.Float64s(samples)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(samples)))) - 1
		if i < 0 {
			i = 0
		}
		return samples[i]
	}
	return Stats{
		Count: len(samples),
		P50NS: rank(0.50),
		P99NS: rank(0.99),
		MaxNS: samples[len(samples)-1],
	}
}

// WriteTimeline renders the report as a human-readable causal timeline:
// one block per loop, events at millisecond offsets from the loop's
// start, then the reaction-time summary.
func (r *Report) WriteTimeline(w io.Writer) error {
	fmt.Fprintf(w, "loop journals: %d events, %d actors, %d loops (%d complete), %d unscoped\n",
		r.Events, len(r.Actors), len(r.Loops), r.CompleteLoops, r.Unscoped)
	for i := range r.Loops {
		tl := &r.Loops[i]
		status := "incomplete"
		if tl.Complete {
			status = fmt.Sprintf("complete, reaction %.1fms", tl.ReactionNS/1e6)
		}
		fmt.Fprintf(w, "\nloop %s  model=%s v%d<-v%d  (%s)\n", tl.Loop, tl.Model, tl.Version, tl.Parent, status)
		for _, ev := range tl.Events {
			off := float64(ev.WallNS-tl.StartNS) / 1e6
			detail := ""
			switch KindFromString(ev.Kind) {
			case KindDriftFired:
				detail = fmt.Sprintf(" mispredict=%.3f shift=%.3f rows=%d", ev.A, ev.B, ev.Rows)
			case KindRetrainStart:
				detail = fmt.Sprintf(" rows=%d parent=v%d", ev.Rows, ev.Parent)
			case KindRetrainEnd:
				detail = fmt.Sprintf(" train=%.1fms", ev.DurNS/1e6)
			case KindDuel:
				detail = fmt.Sprintf(" champion=%.0fns challenger=%.0fns holdout=%d verdict=%s", ev.A, ev.B, ev.Rows, ev.Peer)
			case KindPublish:
				detail = fmt.Sprintf(" v%d<-v%d", ev.Version, ev.Parent)
			case KindSyncPull:
				detail = fmt.Sprintf(" v%d from %s in %.1fms", ev.Version, ev.Peer, ev.DurNS/1e6)
			case KindClientSwap:
				detail = fmt.Sprintf(" v%d", ev.Version)
			case KindIngest:
				detail = fmt.Sprintf(" rows=%d from v%d", ev.Rows, ev.Version)
			}
			fmt.Fprintf(w, "  %+9.1fms  %-16s %-12s%s\n", off, ev.Kind, ev.Actor, detail)
		}
	}
	if r.Reaction.Count > 0 {
		fmt.Fprintf(w, "\nloop reaction time: p50 %.1fms  p99 %.1fms  max %.1fms  (n=%d)\n",
			r.Reaction.P50NS/1e6, r.Reaction.P99NS/1e6, r.Reaction.MaxNS/1e6, r.Reaction.Count)
		var stages []string
		for s := range r.Stages {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			st := r.Stages[s]
			fmt.Fprintf(w, "  stage %-10s p50 %10.1fms  p99 %10.1fms  (n=%d)\n", s, st.P50NS/1e6, st.P99NS/1e6, st.Count)
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return nil
}
