package platform

import (
	"sync"
	"time"

	"apollo/internal/instmix"
)

// Noise produces deterministic, reproducible multiplicative measurement
// noise. Real kernel timings vary run to run; the paper's training data is
// therefore noisy, which is what keeps model accuracy below 100% and makes
// the chunk-size models (whose candidate values often tie within noise)
// much weaker than the policy models. Noise reproduces that effect without
// sacrificing determinism: the multiplier for a given key is a pure
// function of the key and the seed.
type Noise struct {
	// Amplitude is the half-width of the multiplier range; a value of
	// 0.08 yields multipliers in [0.92, 1.08].
	Amplitude float64
	// Seed perturbs the hash so independent experiments decorrelate.
	Seed uint64
}

// splitmix64 is the SplitMix64 finalizer, a fast high-quality bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mul returns the noise multiplier for the given key, in
// [1-Amplitude, 1+Amplitude].
func (n *Noise) Mul(key uint64) float64 {
	if n == nil || n.Amplitude == 0 {
		return 1
	}
	h := splitmix64(key ^ n.Seed)
	u := float64(h>>11) / float64(1<<53) // uniform in [0,1)
	return 1 + n.Amplitude*(2*u-1)
}

// SimClock is a deterministic virtual clock driven by a Machine model. It
// substitutes for the paper's dedicated 16-core node: kernel "runtimes"
// are the model's predictions (optionally noised), and virtual time
// accumulates as kernels execute. SimClock is safe for concurrent use.
type SimClock struct {
	Machine *Machine
	Noise   *Noise

	mu      sync.Mutex
	nowNS   float64
	samples uint64
}

// NewSimClock returns a virtual clock over the given machine model with
// the given noise amplitude (0 disables noise).
func NewSimClock(m *Machine, noiseAmp float64, seed uint64) *SimClock {
	var n *Noise
	if noiseAmp > 0 {
		n = &Noise{Amplitude: noiseAmp, Seed: seed}
	}
	return &SimClock{Machine: m, Noise: n}
}

// KernelTimeNS returns the modeled (and noised) execution time of one
// kernel launch and advances virtual time by it. The key decorrelates the
// noise across kernels and invocations.
func (c *SimClock) KernelTimeNS(mix *instmix.Mix, n int, parallel bool, chunk int, key uint64) float64 {
	base := c.Machine.KernelTimeNS(mix, n, parallel, chunk)
	c.mu.Lock()
	c.samples++
	sample := c.samples
	c.mu.Unlock()
	t := base * c.Noise.Mul(key*0x9e3779b97f4a7c15+sample)
	c.mu.Lock()
	c.nowNS += t
	c.mu.Unlock()
	return t
}

// NowNS returns the accumulated virtual time in nanoseconds.
func (c *SimClock) NowNS() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nowNS
}

// Reset zeroes the virtual time and sample counter.
func (c *SimClock) Reset() {
	c.mu.Lock()
	c.nowNS = 0
	c.samples = 0
	c.mu.Unlock()
}

// WallTimer measures real elapsed time. It is used by the overhead
// benchmarks, where the quantity of interest (Apollo's decision cost) is
// genuinely measurable on any host.
type WallTimer struct{}

// Time runs fn and returns the real elapsed time in nanoseconds.
func (WallTimer) Time(fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Nanoseconds())
}
