package platform

import (
	"testing"
	"testing/quick"

	"apollo/internal/instmix"
)

// elementMix is a representative compute-heavy hydro kernel body.
func elementMix() *instmix.Mix {
	return instmix.NewMix().
		With(instmix.Add, 8).
		With(instmix.Mulpd, 6).
		With(instmix.Movsd, 10).
		With(instmix.Divsd, 1)
}

func TestSeqTimeLinearInN(t *testing.T) {
	m := SandyBridgeNode()
	mix := elementMix()
	t1 := m.SeqTimeNS(mix, 1000)
	t2 := m.SeqTimeNS(mix, 2000)
	if t1 <= 0 {
		t.Fatalf("SeqTimeNS(1000) = %g, want > 0", t1)
	}
	ratio := t2 / t1
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("sequential time should be linear: t(2000)/t(1000) = %g", ratio)
	}
}

func TestSmallLoopsFavorSequential(t *testing.T) {
	m := SandyBridgeNode()
	mix := elementMix()
	for _, n := range []int{1, 8, 64, 256} {
		seq := m.SeqTimeNS(mix, n)
		omp := m.OMPTimeNS(mix, n, 0)
		if seq >= omp {
			t.Errorf("n=%d: seq (%g) should beat omp (%g): fork/join cost must dominate", n, seq, omp)
		}
	}
}

func TestLargeLoopsFavorParallel(t *testing.T) {
	m := SandyBridgeNode()
	mix := elementMix()
	for _, n := range []int{100000, 1000000} {
		seq := m.SeqTimeNS(mix, n)
		omp := m.OMPTimeNS(mix, n, 0)
		if omp >= seq {
			t.Errorf("n=%d: omp (%g) should beat seq (%g)", n, omp, seq)
		}
	}
}

func TestCrossoverIsBetweenExtremes(t *testing.T) {
	m := SandyBridgeNode()
	mix := elementMix()
	x := m.CrossoverN(mix)
	if x <= 256 || x >= 100000 {
		t.Fatalf("crossover N = %d, expected between 256 and 100000", x)
	}
	// The crossover must actually separate the regimes.
	if m.SeqTimeNS(mix, x-1) > m.OMPTimeNS(mix, x-1, 0) {
		t.Errorf("just below crossover, seq should still win")
	}
	if m.SeqTimeNS(mix, x) <= m.OMPTimeNS(mix, x, 0) {
		t.Errorf("at crossover, omp should win")
	}
}

func TestParallelSpeedupBoundedByCores(t *testing.T) {
	m := SandyBridgeNode()
	mix := instmix.NewMix().With(instmix.Divsd, 20) // compute-bound
	n := 1 << 20
	speedup := m.SeqTimeNS(mix, n) / m.OMPTimeNS(mix, n, 0)
	if speedup > float64(m.Cores) {
		t.Errorf("speedup %g exceeds core count %d", speedup, m.Cores)
	}
	if speedup < float64(m.Cores)*0.8 {
		t.Errorf("compute-bound speedup %g is too far below core count %d", speedup, m.Cores)
	}
}

func TestMemoryBoundKernelSpeedupLimitedByBandwidth(t *testing.T) {
	m := SandyBridgeNode()
	mix := instmix.NewMix().With(instmix.Movsd, 12).With(instmix.Add, 1) // streaming
	n := 1 << 22
	speedup := m.SeqTimeNS(mix, n) / m.OMPTimeNS(mix, n, 0)
	bwLimit := m.BandwidthBytesPerNS / m.CoreBandwidthBytesPerNS
	if speedup > bwLimit*1.05 {
		t.Errorf("memory-bound speedup %g exceeds bandwidth roofline %g", speedup, bwLimit)
	}
}

func TestTinyChunksArePenalized(t *testing.T) {
	m := SandyBridgeNode()
	mix := elementMix()
	n := 1 << 16
	t1 := m.OMPTimeNS(mix, n, 1)
	t128 := m.OMPTimeNS(mix, n, 128)
	if t1 <= t128 {
		t.Errorf("chunk=1 (%g) should be slower than chunk=128 (%g): dispatch + false sharing", t1, t128)
	}
}

func TestHugeChunksCauseImbalance(t *testing.T) {
	m := SandyBridgeNode()
	mix := elementMix()
	n := 1 << 16
	// chunk = n means one worker does everything.
	tBig := m.OMPTimeNS(mix, n, n)
	tDefault := m.OMPTimeNS(mix, n, 0)
	if tBig <= tDefault {
		t.Errorf("chunk=n (%g) should be slower than default chunking (%g)", tBig, tDefault)
	}
}

func TestOMPTimeZeroIterationsIsForkJoinOnly(t *testing.T) {
	m := SandyBridgeNode()
	if got := m.OMPTimeNS(elementMix(), 0, 0); got != m.ForkJoinNS {
		t.Errorf("OMPTimeNS(0) = %g, want fork/join %g", got, m.ForkJoinNS)
	}
	if got := m.SeqTimeNS(elementMix(), 0); got != 0 {
		t.Errorf("SeqTimeNS(0) = %g, want 0", got)
	}
}

func TestOMPMonotoneInNProperty(t *testing.T) {
	m := SandyBridgeNode()
	mix := elementMix()
	f := func(a uint16, extra uint8) bool {
		n := int(a) + 1
		bigger := n + int(extra) + 1
		return m.OMPTimeNS(mix, bigger, 64) >= m.OMPTimeNS(mix, n, 64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	n := &Noise{Amplitude: 0.1, Seed: 42}
	for key := uint64(0); key < 1000; key++ {
		v1, v2 := n.Mul(key), n.Mul(key)
		if v1 != v2 {
			t.Fatalf("noise not deterministic for key %d: %g vs %g", key, v1, v2)
		}
		if v1 < 0.9 || v1 > 1.1 {
			t.Fatalf("noise %g outside [0.9, 1.1] for key %d", v1, key)
		}
	}
}

func TestNoiseNilIsIdentity(t *testing.T) {
	var n *Noise
	if n.Mul(7) != 1 {
		t.Error("nil noise must be identity")
	}
}

func TestNoiseVaries(t *testing.T) {
	n := &Noise{Amplitude: 0.1, Seed: 1}
	same := true
	first := n.Mul(0)
	for key := uint64(1); key < 100; key++ {
		if n.Mul(key) != first {
			same = false
			break
		}
	}
	if same {
		t.Error("noise returned the same multiplier for 100 distinct keys")
	}
}

func TestSimClockAccumulatesAndResets(t *testing.T) {
	clk := NewSimClock(SandyBridgeNode(), 0, 0)
	mix := elementMix()
	t1 := clk.KernelTimeNS(mix, 1000, false, 0, 1)
	t2 := clk.KernelTimeNS(mix, 1000, true, 0, 2)
	if got := clk.NowNS(); got != t1+t2 {
		t.Errorf("NowNS = %g, want %g", got, t1+t2)
	}
	clk.Reset()
	if clk.NowNS() != 0 {
		t.Error("Reset did not zero the clock")
	}
}

func TestSimClockNoiseChangesSamples(t *testing.T) {
	clk := NewSimClock(SandyBridgeNode(), 0.1, 7)
	mix := elementMix()
	a := clk.KernelTimeNS(mix, 5000, false, 0, 1)
	b := clk.KernelTimeNS(mix, 5000, false, 0, 1)
	if a == b {
		t.Error("repeated noisy measurements should differ (sample counter decorrelates)")
	}
	base := SandyBridgeNode().SeqTimeNS(mix, 5000)
	for _, v := range []float64{a, b} {
		if v < base*0.89 || v > base*1.11 {
			t.Errorf("noisy time %g too far from base %g", v, base)
		}
	}
}

func TestWallTimerMeasuresSomething(t *testing.T) {
	var w WallTimer
	elapsed := w.Time(func() {
		s := 0
		for i := 0; i < 100000; i++ {
			s += i
		}
		_ = s
	})
	if elapsed < 0 {
		t.Errorf("negative elapsed time %g", elapsed)
	}
}

func TestKNLNodeShiftsCrossover(t *testing.T) {
	snb, knl := SandyBridgeNode(), KNLNode()
	mix := elementMix()
	xs, xk := snb.CrossoverN(mix), knl.CrossoverN(mix)
	if xs == xk {
		t.Error("machines with different fork costs should have different crossovers")
	}
	// KNL: higher fork cost but slower cores; the net crossover must
	// still be finite and in a plausible range.
	if xk <= 0 || xk >= 1<<26 {
		t.Errorf("KNL crossover %d implausible", xk)
	}
}

func TestKNLHigherParallelCeiling(t *testing.T) {
	snb, knl := SandyBridgeNode(), KNLNode()
	mix := instmix.NewMix().With(instmix.Divsd, 30) // compute-bound
	n := 1 << 21
	sSNB := snb.SeqTimeNS(mix, n) / snb.OMPTimeNS(mix, n, 0)
	sKNL := knl.SeqTimeNS(mix, n) / knl.OMPTimeNS(mix, n, 0)
	if sKNL <= sSNB {
		t.Errorf("64-core node speedup (%g) should exceed 16-core (%g) on compute-bound work", sKNL, sSNB)
	}
}

func TestKNLSequentialSlower(t *testing.T) {
	snb, knl := SandyBridgeNode(), KNLNode()
	mix := elementMix()
	if knl.SeqTimeNS(mix, 10000) <= snb.SeqTimeNS(mix, 10000) {
		t.Error("KNL cores are slower; sequential time must be higher")
	}
}
