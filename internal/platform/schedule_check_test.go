package platform

import "testing"

// Verify critical-path math of OMPTimeNS against an explicit simulation
// of the round-robin schedule.
func TestOMPCriticalPathMatchesExplicitSchedule(t *testing.T) {
	m := SandyBridgeNode()
	mix := elementMix()
	for _, tc := range []struct{ n, chunk int }{
		{100, 7}, {1000, 64}, {65536, 1}, {16, 1024}, {1023, 64}, {17, 3},
	} {
		chunk := tc.chunk
		nchunks := (tc.n + chunk - 1) / chunk
		compute := m.IterCostNS(mix)
		if chunk < m.FalseSharingChunk && mix.StoresPerIter() > 0 {
			compute += m.FalseSharingNS * mix.StoresPerIter()
		}
		active := nchunks
		if active > m.Cores {
			active = m.Cores
		}
		bw := m.BandwidthBytesPerNS / float64(active)
		if bw > m.CoreBandwidthBytesPerNS {
			bw = m.CoreBandwidthBytesPerNS
		}
		mem := mix.BytesPerIter() / bw
		per := compute
		if mem > per {
			per = mem
		}
		// Explicit per-worker accumulation.
		worst := 0.0
		for w := 0; w < m.Cores; w++ {
			tW, cW := 0.0, 0
			for c := w; c < nchunks; c += m.Cores {
				iters := chunk
				if (c+1)*chunk > tc.n {
					iters = tc.n - c*chunk
				}
				tW += float64(iters) * per
				cW++
			}
			tW += float64(cW) * m.ChunkDispatchNS
			if tW > worst {
				worst = tW
			}
		}
		want := m.ForkJoinNS + worst
		got := m.OMPTimeNS(mix, tc.n, tc.chunk)
		rel := (got - want) / want
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.02 {
			t.Errorf("n=%d chunk=%d: OMPTimeNS=%g, explicit schedule=%g (%.1f%% off)",
				tc.n, tc.chunk, got, want, rel*100)
		}
	}
}
