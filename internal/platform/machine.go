// Package platform models the execution platform Apollo tunes for.
//
// The paper's experiments ran on a dedicated commodity-cluster node with two
// Intel E5-2670 "Sandy Bridge" CPUs (16 cores, 2.6 GHz) and 51.2 GB/s of
// memory bandwidth. This repository runs in a single-CPU container where
// real parallel speedups cannot be measured, so the experiment harness uses
// an analytic machine model calibrated to that node as a deterministic
// clock. The model captures exactly the effects Apollo's decisions hinge on:
//
//   - a fixed fork/join cost for spawning a parallel region, which makes
//     sequential execution faster for small iteration counts;
//   - a per-chunk dispatch cost, which penalizes tiny OpenMP chunk sizes;
//   - load imbalance when the chunk size is so large that fewer chunks than
//     workers exist;
//   - a cache-line (false sharing) penalty for very small chunks on
//     store-heavy kernels; and
//   - a memory-bandwidth roofline that limits the parallel speedup of
//     load/store-bound kernels.
//
// Wall-clock timing remains available (see Clock) and is used by the
// benchmark suite to measure the real overhead of Apollo's generated
// decision code, which is the paper's "fast decisions" claim.
package platform

import (
	"apollo/internal/instmix"
)

// Machine is an analytic performance model of a shared-memory node.
// All times are in nanoseconds.
type Machine struct {
	// Name identifies the modeled machine in reports.
	Name string

	// Cores is the number of worker threads available to a parallel region.
	Cores int

	// ForkJoinNS is the fixed cost of opening and closing a parallel
	// region (thread wakeup + barrier).
	ForkJoinNS float64

	// ChunkDispatchNS is the scheduling cost paid once per chunk of
	// iterations handed to a worker.
	ChunkDispatchNS float64

	// SeqLoopNS is the loop bookkeeping cost per iteration when running
	// sequentially (increment, compare, branch).
	SeqLoopNS float64

	// BandwidthBytesPerNS is the total node memory bandwidth
	// (bytes per nanosecond; 51.2 GB/s = 51.2 B/ns).
	BandwidthBytesPerNS float64

	// CoreBandwidthBytesPerNS is the bandwidth a single core can draw.
	CoreBandwidthBytesPerNS float64

	// FalseSharingNS is the extra per-iteration penalty applied to
	// store-heavy kernels when the chunk size is below FalseSharingChunk.
	FalseSharingNS    float64
	FalseSharingChunk int

	// OpCost holds the cost in nanoseconds of one instruction from each
	// mnemonic group.
	OpCost instmix.Costs
}

// SandyBridgeNode returns the model of the paper's testbed: a dual-socket
// Intel E5-2670 node (16 cores at 2.6 GHz, 51.2 GB/s peak bandwidth).
func SandyBridgeNode() *Machine {
	return &Machine{
		Name:                    "2x Intel E5-2670 (Sandy Bridge), 16 cores, 51.2 GB/s",
		Cores:                   16,
		ForkJoinNS:              6500,
		ChunkDispatchNS:         90,
		SeqLoopNS:               0.45,
		BandwidthBytesPerNS:     51.2,
		CoreBandwidthBytesPerNS: 10.5,
		FalseSharingNS:          2.4,
		FalseSharingChunk:       8,
		OpCost:                  instmix.SandyBridgeCosts(),
	}
}

// KNLNode returns a model of a many-core Knights-Landing-style node:
// 64 slower cores, high aggregate bandwidth, and a costlier fork/join
// (more threads to wake). It exists for the machine-sensitivity ablation:
// policy crossovers shift with the platform, so models trained against
// one machine mispredict on another and must be retrained — which is why
// the paper trains on the target architecture.
func KNLNode() *Machine {
	costs := instmix.SandyBridgeCosts()
	for g := range costs {
		costs[g] *= 2 // ~1.3 GHz cores vs 2.6 GHz
	}
	return &Machine{
		Name:                    "64-core many-core node (KNL-like), 400 GB/s MCDRAM",
		Cores:                   64,
		ForkJoinNS:              14000,
		ChunkDispatchNS:         140,
		SeqLoopNS:               0.9,
		BandwidthBytesPerNS:     400,
		CoreBandwidthBytesPerNS: 9,
		FalseSharingNS:          3.0,
		FalseSharingChunk:       8,
		OpCost:                  costs,
	}
}

// IterCostNS returns the compute cost of one iteration of a kernel with the
// given instruction mix, ignoring memory-bandwidth limits.
func (m *Machine) IterCostNS(mix *instmix.Mix) float64 {
	return mix.CostNS(&m.OpCost) + m.SeqLoopNS
}

// iterMemTimeNS returns the per-iteration time implied by a bandwidth limit
// of bw bytes/ns for the kernel's memory traffic.
func iterMemTimeNS(mix *instmix.Mix, bw float64) float64 {
	if bw <= 0 {
		return 0
	}
	return mix.BytesPerIter() / bw
}

// SeqTimeNS returns the modeled time of executing n iterations sequentially.
func (m *Machine) SeqTimeNS(mix *instmix.Mix, n int) float64 {
	if n <= 0 {
		return 0
	}
	compute := m.IterCostNS(mix)
	mem := iterMemTimeNS(mix, m.CoreBandwidthBytesPerNS)
	return float64(n) * maxf(compute, mem)
}

// OMPTimeNS returns the modeled time of executing n iterations in a parallel
// region with static scheduling and the given chunk size. A chunk size of 0
// or less selects the OpenMP default of ceil(n/cores).
func (m *Machine) OMPTimeNS(mix *instmix.Mix, n, chunk int) float64 {
	if n <= 0 {
		return m.ForkJoinNS
	}
	t := m.Cores
	if chunk <= 0 {
		chunk = (n + t - 1) / t
	}
	nchunks := (n + chunk - 1) / chunk

	// Static round-robin assignment: worker w receives chunks
	// w, w+t, w+2t, ...; the first (nchunks mod t) workers get one extra.
	// The critical path is the worker with the most chunks, and worker 0
	// always holds any final short chunk's full-size predecessors, so its
	// iteration count is chunksMax*chunk capped by what remains.
	chunksMax := (nchunks + t - 1) / t
	itersMax := chunksMax * chunk
	if itersMax > n {
		itersMax = n
	}

	compute := m.IterCostNS(mix)
	if chunk < m.FalseSharingChunk && mix.StoresPerIter() > 0 {
		compute += m.FalseSharingNS * mix.StoresPerIter()
	}

	active := nchunks
	if active > t {
		active = t
	}
	// Each active worker can draw at most its core bandwidth, and the node
	// bandwidth is shared among the active workers.
	bw := m.BandwidthBytesPerNS / float64(active)
	if bw > m.CoreBandwidthBytesPerNS {
		bw = m.CoreBandwidthBytesPerNS
	}
	mem := iterMemTimeNS(mix, bw)

	critical := float64(chunksMax)*m.ChunkDispatchNS + float64(itersMax)*maxf(compute, mem)
	return m.ForkJoinNS + critical
}

// KernelTimeNS returns the modeled execution time in nanoseconds of n
// iterations of a kernel under the given policy and chunk size.
func (m *Machine) KernelTimeNS(mix *instmix.Mix, n int, parallel bool, chunk int) float64 {
	if parallel {
		return m.OMPTimeNS(mix, n, chunk)
	}
	return m.SeqTimeNS(mix, n)
}

// CrossoverN returns the iteration count above which the modeled parallel
// execution (with default chunking) becomes faster than sequential
// execution for the given mix. It is useful for sanity checks and tests.
func (m *Machine) CrossoverN(mix *instmix.Mix) int {
	lo, hi := 1, 1<<26
	if m.SeqTimeNS(mix, hi) <= m.OMPTimeNS(mix, hi, 0) {
		return hi // never crosses over within range
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if m.SeqTimeNS(mix, mid) > m.OMPTimeNS(mix, mid, 0) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
