// Package lulesh is the LULESH proxy: a 3D Lagrangian shock-hydrodynamics
// mini-application on a uniform hexahedral mesh, mirroring the DOE
// co-design proxy the paper uses.
//
// As in the paper, the kernels fall into two categories: element/node
// loops whose iteration counts scale with the problem size (the first
// category), and material-region loops driven by RAJA ListSegments whose
// iteration counts depend only on the region decomposition — including a
// loop over the 11 regions themselves, the paper's example of a
// fixed-low-trip-count kernel. The physics is a simplified but genuine
// staggered-grid explicit update (nodal forces from pressure gradients,
// element kinematics, EOS per region) driven by a Sedov point blast.
package lulesh

import (
	"fmt"
	"math"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/features"
	"apollo/internal/hydro"
	"apollo/internal/instmix"
	"apollo/internal/raja"
)

// NumRegions is LULESH's default material-region count.
const NumRegions = 11

// Kernel launch sites.
var (
	kCalcForce = raja.NewKernel("lulesh::CalcForceForNodes", instmix.NewMix().
			With(instmix.Movsd, 12).With(instmix.Add, 10).With(instmix.Sub, 6).
			With(instmix.Mulpd, 6).With(instmix.Mov, 8).With(instmix.Lea, 4))
	kCalcAccel = raja.NewKernel("lulesh::CalcAccelerationForNodes", instmix.NewMix().
			With(instmix.Movsd, 6).With(instmix.Divsd, 1).With(instmix.Mulpd, 3).
			With(instmix.Mov, 4))
	kAccelBC = raja.NewKernel("lulesh::ApplyAccelerationBoundaryConditions", instmix.NewMix().
			With(instmix.Movsd, 2).With(instmix.Mov, 3).With(instmix.Xorps, 1).
			With(instmix.Cmp, 1))
	kCalcVelocity = raja.NewKernel("lulesh::CalcVelocityForNodes", instmix.NewMix().
			With(instmix.Movsd, 6).With(instmix.Mulpd, 3).With(instmix.Add, 3).
			With(instmix.Mov, 4))
	kCalcPosition = raja.NewKernel("lulesh::CalcPositionForNodes", instmix.NewMix().
			With(instmix.Movsd, 6).With(instmix.Mulpd, 3).With(instmix.Add, 3).
			With(instmix.Mov, 4))
	kCalcKinematics = raja.NewKernel("lulesh::CalcKinematicsForElems", instmix.NewMix().
			With(instmix.Movsd, 16).With(instmix.Add, 12).With(instmix.Sub, 8).
			With(instmix.Mulpd, 8).With(instmix.Divsd, 1).With(instmix.Mov, 10).
			With(instmix.Lea, 4))
	kLagrangeElems = raja.NewKernel("lulesh::CalcLagrangeElements", instmix.NewMix().
			With(instmix.Movsd, 6).With(instmix.Mulpd, 4).With(instmix.Add, 2).
			With(instmix.Divsd, 1).With(instmix.Maxsd, 1).With(instmix.Mov, 4))
	kQGradients = raja.NewKernel("lulesh::CalcMonotonicQGradientsForElems", instmix.NewMix().
			With(instmix.Movsd, 14).With(instmix.Sub, 8).With(instmix.Mulpd, 6).
			With(instmix.Add, 6).With(instmix.Mov, 8))
	kQRegion = raja.NewKernel("lulesh::CalcMonotonicQForRegion", instmix.NewMix().
			With(instmix.Movsd, 8).With(instmix.Mulpd, 6).With(instmix.Cmp, 2).
			With(instmix.Maxsd, 2).With(instmix.Mov, 5).With(instmix.Jb, 1))
	kApplyMaterial = raja.NewKernel("lulesh::ApplyMaterialPropertiesForElems", instmix.NewMix().
			With(instmix.Movsd, 5).With(instmix.Maxsd, 2).With(instmix.Minsd, 2).
			With(instmix.Mov, 4).With(instmix.Cmp, 1))
	kCalcEnergy = raja.NewKernel("lulesh::CalcEnergyForElems", instmix.NewMix().
			With(instmix.Movsd, 10).With(instmix.Mulpd, 8).With(instmix.Add, 6).
			With(instmix.Sub, 4).With(instmix.Divsd, 2).With(instmix.Maxsd, 2).
			With(instmix.Mov, 6))
	kEvalEOS = raja.NewKernel("lulesh::EvalEOSForElems", instmix.NewMix().
			With(instmix.Movsd, 8).With(instmix.Mulpd, 6).With(instmix.Add, 4).
			With(instmix.Divsd, 1).With(instmix.Maxsd, 2).With(instmix.Mov, 5))
	kSoundSpeed = raja.NewKernel("lulesh::CalcSoundSpeedForElems", instmix.NewMix().
			With(instmix.Movsd, 5).With(instmix.Divsd, 1).With(instmix.Sqrtsd, 1).
			With(instmix.Mulpd, 2).With(instmix.Mov, 3))
	kUpdateVolumes = raja.NewKernel("lulesh::UpdateVolumesForElems", instmix.NewMix().
			With(instmix.Movsd, 3).With(instmix.Maxsd, 1).With(instmix.Mov, 2))
	kCourant = raja.NewKernel("lulesh::CalcCourantConstraintForElems", instmix.NewMix().
			With(instmix.Movsd, 5).With(instmix.Divsd, 1).With(instmix.Maxsd, 2).
			With(instmix.Mov, 3).With(instmix.Comisd, 1))
	kHydroConstraint = raja.NewKernel("lulesh::CalcHydroConstraintForElems", instmix.NewMix().
				With(instmix.Movsd, 4).With(instmix.Divsd, 1).With(instmix.Maxsd, 1).
				With(instmix.Mov, 3).With(instmix.Comisd, 1))
	kRegionUpdate = raja.NewKernel("lulesh::UpdateRegionMaterialState", instmix.NewMix().
			With(instmix.Movsd, 4).With(instmix.Add, 3).With(instmix.Mov, 4).
			With(instmix.Cmp, 1))
)

// regionWeights skews region sizes, as LULESH's region generator does:
// a few large regions and a tail of small ones.
var regionWeights = [NumRegions]int{20, 12, 9, 7, 5, 4, 3, 2, 2, 1, 1}

// Sim is a LULESH run.
type Sim struct {
	cfg   app.Config
	n     int // elements per side
	np    int // nodes per side
	cycle int
	time  float64
	dx    float64

	// Element-centered state.
	e, p, q, vol, delv, ss, rho []float64
	ws                          []float64 // per-element constraint scratch

	// Node-centered state.
	ux, uy, uz, ax, ay, az []float64

	// Material regions: ListSegment index sets over elements.
	regionSets  [NumRegions]*raja.IndexSet
	regionSizes [NumRegions]int
	regionStats [NumRegions]float64
}

// Descriptor returns the harness descriptor for LULESH.
func Descriptor() app.Descriptor {
	return app.Descriptor{
		Name:          "LULESH",
		Short:         "L",
		Problems:      []string{"sedov"},
		TrainSizes:    []int{8, 12, 16, 24, 32, 45},
		Steps:         10,
		DefaultParams: raja.Params{Policy: raja.OmpParallelForExec},
		New:           func(cfg app.Config) (app.Sim, error) { return New(cfg) },
	}
}

// New builds a LULESH run. LULESH supports only the Sedov deck.
func New(cfg app.Config) (*Sim, error) {
	if cfg.Problem != "sedov" {
		return nil, fmt.Errorf("lulesh: unknown problem %q (only sedov)", cfg.Problem)
	}
	if cfg.Size < 4 {
		return nil, fmt.Errorf("lulesh: size %d too small (min 4)", cfg.Size)
	}
	if cfg.Ann == nil {
		cfg.Ann = caliper.New()
	}
	n := cfg.Size
	np := n + 1
	ne := n * n * n
	nn := np * np * np
	s := &Sim{
		cfg: cfg, n: n, np: np, dx: 1.0 / float64(n),
		e: make([]float64, ne), p: make([]float64, ne), q: make([]float64, ne),
		vol: make([]float64, ne), delv: make([]float64, ne),
		ss: make([]float64, ne), rho: make([]float64, ne), ws: make([]float64, ne),
		ux: make([]float64, nn), uy: make([]float64, nn), uz: make([]float64, nn),
		ax: make([]float64, nn), ay: make([]float64, nn), az: make([]float64, nn),
	}
	for i := range s.vol {
		s.vol[i] = 1
		s.rho[i] = 1
		s.e[i] = 1e-6
	}
	// Sedov: deposit energy in the corner element (symmetry planes at
	// the origin mirror it into a full blast).
	s.e[0] = 200 * float64(ne)
	s.buildRegions()
	s.cfg.Ann.SetString(features.ProblemName, "sedov")
	s.cfg.Ann.Set(features.ProblemSize, float64(n))
	s.cfg.Ann.Set(features.Timestep, 0)
	s.cfg.Ann.Set(features.PatchID, 0)
	return s, nil
}

// buildRegions partitions the elements into NumRegions contiguous bands
// with skewed sizes.
func (s *Sim) buildRegions() {
	ne := s.n * s.n * s.n
	totalW := 0
	for _, w := range regionWeights {
		totalW += w
	}
	start := 0
	for r := 0; r < NumRegions; r++ {
		count := ne * regionWeights[r] / totalW
		if r == NumRegions-1 {
			count = ne - start
		}
		if start+count > ne {
			count = ne - start
		}
		elems := make([]int, count)
		for i := range elems {
			elems[i] = start + i
		}
		s.regionSets[r] = raja.NewList(elems)
		s.regionSizes[r] = count
		start += count
	}
}

// RegionSizes returns the element count of each region.
func (s *Sim) RegionSizes() []int { return append([]int(nil), s.regionSizes[:]...) }

// Cycle returns completed steps.
func (s *Sim) Cycle() int { return s.cycle }

// Time returns simulated time.
func (s *Sim) Time() float64 { return s.time }

// elem returns the flat index of element (i, j, k).
func (s *Sim) elem(i, j, k int) int { return i + s.n*(j+s.n*k) }

// node returns the flat index of node (i, j, k).
func (s *Sim) node(i, j, k int) int { return i + s.np*(j+s.np*k) }

func (s *Sim) launch(k *raja.Kernel, iset *raja.IndexSet, body func(i int)) {
	raja.ForAll(s.cfg.Ctx, k, iset, body)
}

// elemsSet returns the full element range.
func (s *Sim) elemsSet() *raja.IndexSet { return raja.NewRange(0, len(s.e)) }

// nodesSet returns the full node range.
func (s *Sim) nodesSet() *raja.IndexSet { return raja.NewRange(0, len(s.ux)) }

// Step advances one timestep, mirroring LULESH's LagrangeNodal /
// LagrangeElements / CalcTimeConstraints structure.
func (s *Sim) Step() {
	s.cfg.Ann.Set(features.Timestep, float64(s.cycle))
	dt := s.calcTimeConstraints()
	s.lagrangeNodal(dt)
	s.lagrangeElements(dt)
	s.time += dt
	s.cycle++
}

// pAt reads element pressure with zero-gradient closure outside the mesh.
func (s *Sim) pAt(i, j, k int) float64 {
	if i < 0 {
		i = 0
	}
	if j < 0 {
		j = 0
	}
	if k < 0 {
		k = 0
	}
	if i >= s.n {
		i = s.n - 1
	}
	if j >= s.n {
		j = s.n - 1
	}
	if k >= s.n {
		k = s.n - 1
	}
	idx := s.elem(i, j, k)
	return s.p[idx] + s.q[idx]
}

// rhoAt reads element density with clamped (zero-gradient) closure.
func (s *Sim) rhoAt(i, j, k int) float64 {
	if i < 0 {
		i = 0
	}
	if j < 0 {
		j = 0
	}
	if k < 0 {
		k = 0
	}
	if i >= s.n {
		i = s.n - 1
	}
	if j >= s.n {
		j = s.n - 1
	}
	if k >= s.n {
		k = s.n - 1
	}
	return math.Max(s.rho[s.elem(i, j, k)], hydro.RhoFloor)
}

// lagrangeNodal computes nodal forces, accelerations, boundary
// conditions, velocities and positions.
func (s *Sim) lagrangeNodal(dt float64) {
	n, np := s.n, s.np
	_ = n
	s.launch(kCalcForce, s.nodesSet(), func(idx int) {
		i := idx % np
		j := (idx / np) % np
		k := idx / (np * np)
		// Force = -grad(p+q) sampled from the adjacent elements.
		s.ax[idx] = -(s.pAt(i, j-1, k-1) + s.pAt(i, j, k-1) + s.pAt(i, j-1, k) + s.pAt(i, j, k) -
			s.pAt(i-1, j-1, k-1) - s.pAt(i-1, j, k-1) - s.pAt(i-1, j-1, k) - s.pAt(i-1, j, k)) / (4 * s.dx)
		s.ay[idx] = -(s.pAt(i-1, j, k-1) + s.pAt(i, j, k-1) + s.pAt(i-1, j, k) + s.pAt(i, j, k) -
			s.pAt(i-1, j-1, k-1) - s.pAt(i, j-1, k-1) - s.pAt(i-1, j-1, k) - s.pAt(i, j-1, k)) / (4 * s.dx)
		s.az[idx] = -(s.pAt(i-1, j-1, k) + s.pAt(i, j-1, k) + s.pAt(i-1, j, k) + s.pAt(i, j, k) -
			s.pAt(i-1, j-1, k-1) - s.pAt(i, j-1, k-1) - s.pAt(i-1, j, k-1) - s.pAt(i, j, k-1)) / (4 * s.dx)
	})
	s.launch(kCalcAccel, s.nodesSet(), func(idx int) {
		// a = f / rho, sampling the density of the adjacent element.
		i := idx % np
		j := (idx / np) % np
		k := idx / (np * np)
		r := s.rhoAt(i-1, j-1, k-1)
		s.ax[idx] /= r
		s.ay[idx] /= r
		s.az[idx] /= r
	})
	// Symmetry planes: zero normal acceleration on the x=0, y=0, z=0
	// faces. Three launches of the same site with face-sized index sets.
	face := np * np
	s.launch(kAccelBC, raja.NewRange(0, face), func(f int) {
		j, k := f%np, f/np
		s.ax[s.node(0, j, k)] = 0
	})
	s.launch(kAccelBC, raja.NewRange(0, face), func(f int) {
		i, k := f%np, f/np
		s.ay[s.node(i, 0, k)] = 0
	})
	s.launch(kAccelBC, raja.NewRange(0, face), func(f int) {
		i, j := f%np, f/np
		s.az[s.node(i, j, 0)] = 0
	})
	s.launch(kCalcVelocity, s.nodesSet(), func(idx int) {
		s.ux[idx] += dt * s.ax[idx]
		s.uy[idx] += dt * s.ay[idx]
		s.uz[idx] += dt * s.az[idx]
	})
	s.launch(kCalcPosition, s.nodesSet(), func(idx int) {
		// Positions stay on the logical grid in this proxy; the kernel
		// computes the displacement magnitude as representative work.
		_ = s.ux[idx]*dt + s.uy[idx]*dt + s.uz[idx]*dt
	})
}

// lagrangeElements updates element kinematics, artificial viscosity,
// energy, EOS, and sound speed (the latter three per material region).
func (s *Sim) lagrangeElements(dt float64) {
	n, np := s.n, s.np
	_ = np
	s.launch(kCalcKinematics, s.elemsSet(), func(idx int) {
		i := idx % n
		j := (idx / n) % n
		k := idx / (n * n)
		// Divergence of the nodal velocity over the element.
		dudx := (s.ux[s.node(i+1, j, k)] + s.ux[s.node(i+1, j+1, k)] + s.ux[s.node(i+1, j, k+1)] + s.ux[s.node(i+1, j+1, k+1)] -
			s.ux[s.node(i, j, k)] - s.ux[s.node(i, j+1, k)] - s.ux[s.node(i, j, k+1)] - s.ux[s.node(i, j+1, k+1)]) / (4 * s.dx)
		dvdy := (s.uy[s.node(i, j+1, k)] + s.uy[s.node(i+1, j+1, k)] + s.uy[s.node(i, j+1, k+1)] + s.uy[s.node(i+1, j+1, k+1)] -
			s.uy[s.node(i, j, k)] - s.uy[s.node(i+1, j, k)] - s.uy[s.node(i, j, k+1)] - s.uy[s.node(i+1, j, k+1)]) / (4 * s.dx)
		dwdz := (s.uz[s.node(i, j, k+1)] + s.uz[s.node(i+1, j, k+1)] + s.uz[s.node(i, j+1, k+1)] + s.uz[s.node(i+1, j+1, k+1)] -
			s.uz[s.node(i, j, k)] - s.uz[s.node(i+1, j, k)] - s.uz[s.node(i, j+1, k)] - s.uz[s.node(i+1, j+1, k)]) / (4 * s.dx)
		div := dudx + dvdy + dwdz
		s.delv[idx] = clamp(div*dt, -0.2, 0.2)
	})
	s.launch(kLagrangeElems, s.elemsSet(), func(idx int) {
		s.vol[idx] = math.Max(s.vol[idx]*(1+s.delv[idx]), 0.05)
		s.rho[idx] = 1.0 / s.vol[idx]
	})
	s.launch(kQGradients, s.elemsSet(), func(idx int) {
		// Representative gradient work feeding the viscosity kernel.
		s.ws[idx] = s.delv[idx] / dt
	})
	for r := 0; r < NumRegions; r++ {
		s.launch(kQRegion, s.regionSets[r], func(idx int) {
			div := s.ws[idx]
			if div < 0 {
				s.q[idx] = 1.5 * s.rho[idx] * div * div * s.dx * s.dx
			} else {
				s.q[idx] = 0
			}
		})
		s.launch(kApplyMaterial, s.regionSets[r], func(idx int) {
			s.rho[idx] = clamp(s.rho[idx], hydro.RhoFloor, 1e4)
		})
		s.launch(kCalcEnergy, s.regionSets[r], func(idx int) {
			work := (s.p[idx] + s.q[idx]) * s.delv[idx] / s.rho[idx]
			s.e[idx] = math.Max(s.e[idx]-work, 1e-9)
		})
		s.launch(kEvalEOS, s.regionSets[r], func(idx int) {
			s.p[idx] = math.Max((hydro.Gamma-1)*s.rho[idx]*s.e[idx], hydro.PFloor)
		})
		s.launch(kSoundSpeed, s.regionSets[r], func(idx int) {
			s.ss[idx] = math.Sqrt(hydro.Gamma * s.p[idx] / s.rho[idx])
		})
	}
	// A fixed 11-iteration kernel over the regions themselves.
	s.launch(kRegionUpdate, raja.NewRange(0, NumRegions), func(r int) {
		s.regionStats[r] = float64(s.regionSizes[r])
	})
	s.launch(kUpdateVolumes, s.elemsSet(), func(idx int) {
		s.delv[idx] = 0
	})
}

// calcTimeConstraints computes the stable dt from the Courant and hydro
// constraints.
func (s *Sim) calcTimeConstraints() float64 {
	s.launch(kCourant, s.elemsSet(), func(idx int) {
		s.ws[idx] = s.ss[idx]
	})
	s.launch(kHydroConstraint, s.elemsSet(), func(idx int) {
		if d := math.Abs(s.delv[idx]); d > 1e-12 {
			s.ws[idx] = math.Max(s.ws[idx], s.ss[idx]*(1+d))
		}
	})
	maxSS := 0.0
	for _, v := range s.ws {
		if v > maxSS {
			maxSS = v
		}
	}
	return hydro.Dt(maxSS, s.dx)
}

// TotalEnergy returns the element internal energy sum (scaled), used by
// conservation-style sanity checks.
func (s *Sim) TotalEnergy() float64 {
	var total float64
	cell := s.dx * s.dx * s.dx
	for i, ei := range s.e {
		total += ei * s.rho[i] * s.vol[i] * cell
	}
	return total
}

// MaxPressure returns the peak element pressure.
func (s *Sim) MaxPressure() float64 {
	m := 0.0
	for _, v := range s.p {
		if v > m {
			m = v
		}
	}
	return m
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Kernels lists the package's kernel launch sites.
func Kernels() []*raja.Kernel {
	return []*raja.Kernel{
		kCalcForce, kCalcAccel, kAccelBC, kCalcVelocity, kCalcPosition,
		kCalcKinematics, kLagrangeElems, kQGradients, kQRegion,
		kApplyMaterial, kCalcEnergy, kEvalEOS, kSoundSpeed,
		kUpdateVolumes, kCourant, kHydroConstraint, kRegionUpdate,
	}
}
