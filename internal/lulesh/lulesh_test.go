package lulesh

import (
	"math"
	"testing"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/features"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/tuner"
)

func newSim(t *testing.T, size int) *Sim {
	t.Helper()
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{Policy: raja.SeqExec})
	s, err := New(app.Config{Ctx: ctx, Ann: caliper.New(), Problem: "sedov", Size: size})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	if _, err := New(app.Config{Ctx: ctx, Problem: "sod", Size: 16}); err == nil {
		t.Error("LULESH should only accept sedov")
	}
	if _, err := New(app.Config{Ctx: ctx, Problem: "sedov", Size: 2}); err == nil {
		t.Error("tiny size accepted")
	}
}

func TestRegionsPartitionElements(t *testing.T) {
	s := newSim(t, 12)
	sizes := s.RegionSizes()
	if len(sizes) != NumRegions {
		t.Fatalf("got %d regions", len(sizes))
	}
	total := 0
	for _, n := range sizes {
		if n <= 0 {
			t.Error("empty region")
		}
		total += n
	}
	if total != 12*12*12 {
		t.Errorf("regions cover %d elements, want %d", total, 12*12*12)
	}
	// Region sizes must be skewed (first much larger than last).
	if sizes[0] <= sizes[NumRegions-1] {
		t.Error("region sizes not skewed")
	}
}

func TestBlastPropagates(t *testing.T) {
	s := newSim(t, 10)
	p0 := s.MaxPressure()
	for i := 0; i < 10; i++ {
		s.Step()
	}
	if s.Time() <= 0 || s.Cycle() != 10 {
		t.Fatal("did not advance")
	}
	// Pressure must have appeared (EOS ran) and stayed finite.
	if s.MaxPressure() <= p0 {
		t.Error("blast produced no pressure")
	}
	for i, v := range s.p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("pressure[%d] invalid: %g", i, v)
		}
	}
	// Velocity field must be non-trivial away from the origin.
	moving := 0
	for _, u := range s.ux {
		if math.Abs(u) > 1e-12 {
			moving++
		}
	}
	if moving == 0 {
		t.Error("no nodes moving after 10 steps")
	}
}

func TestSymmetryBoundary(t *testing.T) {
	s := newSim(t, 8)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	// Normal velocity on the symmetry planes must remain zero.
	np := s.np
	for a := 0; a < np; a++ {
		for b := 0; b < np; b++ {
			if v := s.ux[s.node(0, a, b)]; v != 0 {
				t.Fatalf("ux on x=0 face = %g", v)
			}
			if v := s.uy[s.node(a, 0, b)]; v != 0 {
				t.Fatalf("uy on y=0 face = %g", v)
			}
			if v := s.uz[s.node(a, b, 0)]; v != 0 {
				t.Fatalf("uz on z=0 face = %g", v)
			}
		}
	}
}

func TestKernelCategoriesRecorded(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: raja.SeqExec})
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	ctx.Hooks = rec
	s, err := New(app.Config{Ctx: ctx, Ann: ann, Problem: "sedov", Size: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	frame := rec.Frame()
	ne := float64(10 * 10 * 10)
	sawElems, sawRegion11, sawList := false, false, false
	for i := 0; i < frame.Len(); i++ {
		n := frame.At(i, features.NumIndices)
		it := frame.At(i, features.IndexType)
		if n == ne {
			sawElems = true
		}
		if n == NumRegions {
			sawRegion11 = true
		}
		if it == float64(raja.ListIndex) {
			sawList = true
		}
	}
	if !sawElems {
		t.Error("no full-element kernel recorded")
	}
	if !sawRegion11 {
		t.Error("no 11-iteration region kernel recorded (paper's second category)")
	}
	if !sawList {
		t.Error("no ListSegment region kernel recorded")
	}
}

func TestEnergyBounded(t *testing.T) {
	s := newSim(t, 8)
	e0 := s.TotalEnergy()
	for i := 0; i < 15; i++ {
		s.Step()
	}
	e1 := s.TotalEnergy()
	if e1 <= 0 || math.IsNaN(e1) {
		t.Fatalf("total energy invalid: %g", e1)
	}
	// Internal energy only decreases (converted to kinetic + clamped);
	// it must not blow up.
	if e1 > e0*1.5 {
		t.Errorf("internal energy grew unphysically: %g -> %g", e0, e1)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		s := newSim(t, 8)
		for i := 0; i < 5; i++ {
			s.Step()
		}
		return s.TotalEnergy()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs diverged: %g vs %g", a, b)
	}
}

func TestDescriptor(t *testing.T) {
	d := Descriptor()
	if d.Name != "LULESH" || d.Short != "L" {
		t.Errorf("descriptor wrong: %+v", d)
	}
	if len(d.Problems) != 1 || d.Problems[0] != "sedov" {
		t.Error("LULESH runs only sedov")
	}
}

func TestKernelsHaveDistinctNamesAndMixes(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kernels() {
		if seen[k.Name] {
			t.Errorf("duplicate kernel %s", k.Name)
		}
		seen[k.Name] = true
		if k.Mix.FuncSize() <= 0 {
			t.Errorf("kernel %s has empty mix", k.Name)
		}
	}
	if len(seen) < 15 {
		t.Errorf("only %d kernel sites", len(seen))
	}
}
