package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CtxFlow enforces cancellation discipline on daemon code: every
// blocking operation reachable from a serve/loop root must be
// cancellable, or a stuck peer turns into a stuck replica. Roots are
// functions in main packages named main or run*, and module functions or
// methods named Run, Serve, or Start* (the daemon entry points and the
// component lifecycles they start). From each root it walks the static
// module call graph — including function literals, so goroutine bodies
// are part of the tree — and reports:
//
//   - time.Sleep (uncancellable by construction; select on a timer and
//     a stop signal instead);
//   - a channel receive outside a select, unless the channel is a stop
//     signal by name (stop/done/quit/exit/close/shutdown/cancel, or a
//     ctx.Done()-style accessor) — `for range ch` is exempt because
//     close(ch) ends it;
//   - a send on a channel provably constructed unbuffered everywhere,
//     outside a select (the receiver dying blocks the sender forever);
//   - a select with no default case and no stop-signal receive among its
//     cases (nothing can end the wait but traffic).
//
// Outbound network calls are deliberately not flagged here: their
// deadline discipline is netguard's half of the contract (clients must
// carry timeouts), which makes them cancellable without a select.
//
// //apollo:ctxok <reason> on the line waives one finding; waiverdrift
// reports the directive when it goes stale.
var CtxFlow = &Analyzer{
	Name:       "ctxflow",
	Doc:        "blocking operations reachable from daemon roots must be cancellable",
	Run:        runCtxFlow,
	runTracked: runCtxFlowTracked,
}

func runCtxFlow(prog *Program) []Diagnostic {
	return runCtxFlowTracked(prog, nil)
}

// ctxRoot reports whether a function is a daemon serve/loop entry point.
func ctxRoot(fi *funcInfo) bool {
	name := fi.obj.Name()
	if fi.pkg.Types.Name() == "main" {
		if name == "main" || (len(name) > 3 && name[:3] == "run") {
			return true
		}
	}
	return name == "Run" || name == "Serve" || (len(name) >= 5 && name[:5] == "Start")
}

func runCtxFlowTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	cb := buildChanBuffering(prog)

	var roots []*funcInfo
	for _, fi := range g.funcs {
		if fi.decl.Body != nil && ctxRoot(fi) {
			roots = append(roots, fi)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].decl.Pos() < roots[j].decl.Pos() })

	// BFS over static module calls, keeping the first-discovery chain for
	// diagnostics; each function is scanned once.
	type item struct {
		fi    *funcInfo
		chain []string
	}
	seen := map[*types.Func]bool{}
	var queue []item
	for _, r := range roots {
		if !seen[r.obj] {
			seen[r.obj] = true
			queue = append(queue, item{r, []string{displayName(r.obj)}})
		}
	}
	var diags []Diagnostic
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fi := it.fi
		bindings := methodBindings(fi.pkg, fi.decl.Body)
		diags = append(diags, ctxScanBody(prog, fi, cb, it.chain, uses)...)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callees, _ := g.resolve(fi.pkg, bindings, call)
			for _, c := range callees {
				if c.viaInterface != "" || c.fn.decl.Body == nil || seen[c.fn.obj] {
					continue
				}
				seen[c.fn.obj] = true
				queue = append(queue, item{c.fn, append(append([]string{}, it.chain...), displayName(c.fn.obj))})
			}
			return true
		})
	}
	return diags
}

// ctxScanBody checks one reachable function body (goroutine and closure
// literals included) for uncancellable blocking operations.
func ctxScanBody(prog *Program, fi *funcInfo, cb *chanBuffering, chain []string, uses *waiverUse) []Diagnostic {
	var diags []Diagnostic
	lines := lineDirectives(prog.Fset, fi.file)
	report := func(n ast.Node, format string, args ...any) {
		if suppressedBy(lines, prog.Fset, n.Pos(), dirCtxOK, uses) {
			return
		}
		d := Diagnostic{
			Pos:      prog.Fset.Position(n.Pos()),
			Analyzer: "ctxflow",
			Message:  fmt.Sprintf(format, args...),
		}
		if len(chain) > 1 {
			d.Chain = chain
		}
		diags = append(diags, d)
	}
	bindings := methodBindings(fi.pkg, fi.decl.Body)

	// Comm statements of selects are judged as part of the select, not as
	// bare channel operations.
	inSelect := map[ast.Node]bool{}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if comm, ok := c.(*ast.CommClause); ok && comm.Comm != nil {
				inSelect[comm.Comm] = true
				if es, ok := comm.Comm.(*ast.ExprStmt); ok {
					inSelect[es.X] = true
				}
				if as, ok := comm.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
					inSelect[as.Rhs[0]] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if !cancellableSelect(n) {
				report(n, "select has no default case and no stop-signal receive; nothing can cancel the wait")
			}
		case *ast.SendStmt:
			if inSelect[ast.Node(n)] {
				return true
			}
			if v := chanVar(fi.pkg, n.Chan); cb.knownUnbuffered(v) && !stopNamed(n.Chan) {
				report(n, "send on unbuffered channel %s blocks forever if the receiver is gone; select with a stop case or buffer the channel", types.ExprString(n.Chan))
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || inSelect[ast.Node(n)] {
				return true
			}
			if !stopNamed(n.X) {
				report(n, "bare receive from %s cannot be cancelled; select on it together with a stop signal", types.ExprString(n.X))
			}
		case *ast.CallExpr:
			if ext := staticCallee(fi.pkg, bindings, n); ext != nil {
				if ext.Pkg() != nil && ext.Pkg().Path() == "time" && ext.Name() == "Sleep" {
					report(n, "time.Sleep cannot be cancelled; select on a stop signal and a timer instead")
				}
			}
		}
		return true
	})
	return diags
}

// cancellableSelect reports whether a select can end without traffic: a
// default case, or a receive case on a stop-named channel / ctx.Done().
func cancellableSelect(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		comm, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default
		}
		var recv ast.Expr
		switch s := comm.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recv = u.X
				}
			}
		}
		if recv != nil && stopNamed(recv) {
			return true
		}
	}
	return false
}

// staticCallee resolves a call to the single function object it
// statically targets (module or external), nil for dynamic calls.
func staticCallee(pkg *Package, bindings map[types.Object]*types.Func, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if m, ok := sel.Obj().(*types.Func); ok && m.Pkg() != nil {
				return m
			}
			return nil
		}
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			return obj
		case *types.Var:
			if target, ok := bindings[obj]; ok {
				return target
			}
		}
	}
	return nil
}
