package analysis

import (
	"go/ast"
	"reflect"
	"testing"
)

// findFunc locates a declared function (or method) by bare name in the
// loaded test module.
func findFunc(t *testing.T, g *graph, name string) *funcInfo {
	t.Helper()
	for obj, f := range g.funcs {
		if obj.Name() == name && f.decl.Body != nil {
			return f
		}
	}
	t.Fatalf("function %s not found in test module", name)
	return nil
}

// publishSitesIn classifies every atomic.Pointer method call in the
// named function as "Method" or "Method:publishedExpr".
func publishSitesIn(t *testing.T, g *graph, fnName string) []string {
	t.Helper()
	fi := findFunc(t, g, fnName)
	flow := newFnFlow(fi.pkg, fi.decl)
	var out []string
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := atomicPtrCall(fi.pkg, flow.bindings, call)
		if !ok {
			return true
		}
		s := method
		if pub := publishedArg(method, call); pub != nil {
			s += ":" + describeExpr(pub)
		}
		out = append(out, s)
		return true
	})
	return out
}

// TestAtomicPublishSiteResolution pins the publish-site resolver on
// every calling shape the publication analyzers must see through:
// direct selector calls on an atomic.Pointer[T] var, calls promoted
// through an embedded Pointer field (one and two levels deep), locally
// bound method values, and a same-name method on a non-atomic type
// that must NOT match.
func TestAtomicPublishSiteResolution(t *testing.T) {
	const src = `package pubsite

import "sync/atomic"

type cfg struct{ n int }

var p atomic.Pointer[cfg]

type box struct {
	atomic.Pointer[cfg]
}

var b box

type nest struct{ inner box }

var nn nest

func Direct() {
	c := &cfg{}
	p.Store(c)
	_ = p.Load()
	old := p.Swap(c)
	p.CompareAndSwap(old, c)
}

func Embedded() {
	c := &cfg{}
	b.Store(c)
	_ = b.Load()
	nn.inner.Store(c)
}

func MethodValue() {
	st := p.Store
	ld := p.Load
	c := &cfg{}
	st(c)
	_ = ld()
}

type myPointer struct{ v *cfg }

func (m *myPointer) Store(c *cfg) { m.v = c }

func NotAtomic() {
	var q myPointer
	q.Store(&cfg{})
}
`
	prog := loadTestModule(t, "pubsite", map[string]string{"pubsite.go": src})
	g := buildGraph(prog)

	cases := map[string][]string{
		"Direct":      {"Store:c", "Load", "Swap:c", "CompareAndSwap:c"},
		"Embedded":    {"Store:c", "Load", "Store:c"},
		"MethodValue": {"Store:c", "Load"},
		"NotAtomic":   nil,
	}
	for fn, want := range cases {
		if got := publishSitesIn(t, g, fn); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: publish sites = %v, want %v", fn, got, want)
		}
	}
}

// TestMutParams pins the module-wide mutates-its-argument summaries the
// pubinit analyzer keys on: direct field writes, writes through a local
// alias, transitive mutation through a module callee, receiver
// mutation (index 0), builtin delete, parameter rebinding (local, not a
// mutation), and interface dispatch (deliberately not followed).
func TestMutParams(t *testing.T) {
	const src = `package mut

type T struct {
	n int
	m map[string]int
}

func setN(t *T) { t.n = 1 }

func readN(t *T) int { return t.n }

func viaAlias(t *T) {
	u := t
	u.n = 2
}

func forward(t *T) { setN(t) }

func rebind(t *T) {
	t = &T{}
	_ = t
}

func (t *T) Bump() { t.n++ }

func delEntry(m map[string]int) { delete(m, "k") }

type mutator interface{ Mut(*T) }

func dyn(m mutator, t *T) { m.Mut(t) }

type impl struct{}

func (impl) Mut(t *T) { t.n = 3 }
`
	prog := loadTestModule(t, "mut", map[string]string{"mut.go": src})
	g := buildGraph(prog)
	mp := newMutParams(g)

	cases := map[string][]bool{
		"setN":     {true},
		"readN":    {false},
		"viaAlias": {true},
		"forward":  {true},
		"rebind":   {false},
		"Bump":     {true}, // receiver is index 0
		"delEntry": {true},
		"dyn":      {false, false}, // interface dispatch is not followed
		"Mut":      {false, true},  // impl receiver, then *T
	}
	for fn, want := range cases {
		fi := findFunc(t, g, fn)
		if got := mp.mutated(fi); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: mutated mask = %v, want %v", fn, got, want)
		}
	}
}

// TestLoadDerivation pins the read-only taint rules: derivation follows
// assignments, field selections, and indexing out of a Load, and
// deliberately stops at non-atomic calls so the clone-and-republish
// idiom stays mutable.
func TestLoadDerivation(t *testing.T) {
	const src = `package taint

import "sync/atomic"

type cfg struct {
	tags map[string]int
	sub  *cfg
}

var p atomic.Pointer[cfg]

func clone(c *cfg) *cfg { out := *c; return &out }

func Flow() {
	direct := p.Load()
	viaField := direct.sub
	viaIndexBase := direct.tags
	fresh := clone(direct)
	swapped := p.Swap(fresh)
	_, _, _, _, _ = direct, viaField, viaIndexBase, fresh, swapped
}
`
	prog := loadTestModule(t, "taint", map[string]string{"taint.go": src})
	g := buildGraph(prog)
	fi := findFunc(t, g, "Flow")
	flow := newFnFlow(fi.pkg, fi.decl)

	want := map[string]bool{
		"direct":       true,
		"viaField":     true,
		"viaIndexBase": true,
		"fresh":        false, // derivation stops at the clone call
		"swapped":      true,  // Swap's old value is published state
	}
	got := map[string]bool{}
	for v := range flow.load {
		got[v.Name()] = true
	}
	for name, wantTainted := range want {
		if got[name] != wantTainted {
			t.Errorf("load-derived[%s] = %v, want %v", name, got[name], wantTainted)
		}
	}
}
