package analysis

import (
	"go/ast"
	"go/parser"
	"path/filepath"
	"testing"
)

// loadModule loads one testdata corpus module and returns its program
// plus call graph.
func loadModule(t *testing.T, module string) (*Program, *graph) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", module))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", module, err)
	}
	return prog, buildGraph(prog)
}

// funcNamed finds a module function by bare name.
func funcNamed(t *testing.T, g *graph, name string) *funcInfo {
	t.Helper()
	for obj, fi := range g.funcs {
		if obj.Name() == name {
			return fi
		}
	}
	t.Fatalf("function %s not in graph", name)
	return nil
}

// TestErrReads pins the error-def-use summary: a function that never
// mentions its error parameter reports the slot dead, a direct reader
// reports it live, and a forward into a reader counts transitively.
func TestErrReads(t *testing.T) {
	_, g := loadModule(t, "errmod")
	er := newErrReads(g)

	cases := []struct {
		fn   string
		slot int // paramObjs index of the error parameter
		want bool
	}{
		{"logCount", 1, false}, // param named err, body never mentions it
		{"observe", 0, true},   // compared against nil
		{"relay", 0, true},     // forwarded into observe, which reads it
	}
	for _, c := range cases {
		mask := er.reads(funcNamed(t, g, c.fn))
		if c.slot >= len(mask) {
			t.Fatalf("%s: mask has %d slots, want index %d", c.fn, len(mask), c.slot)
		}
		if mask[c.slot] != c.want {
			t.Errorf("%s: error slot %d observed=%v, want %v", c.fn, c.slot, mask[c.slot], c.want)
		}
	}
}

// TestErrReadsNonErrorSlots pins the conservative default: non-error
// parameters are always reported observed, whether or not the body
// touches them.
func TestErrReadsNonErrorSlots(t *testing.T) {
	_, g := loadModule(t, "errmod")
	er := newErrReads(g)
	mask := er.reads(funcNamed(t, g, "logCount"))
	if len(mask) != 2 {
		t.Fatalf("logCount mask has %d slots, want 2", len(mask))
	}
	if !mask[0] {
		t.Error("non-error slot 0 reported unobserved; must stay conservatively true")
	}
}

// TestChanBuffering pins the module-wide buffering facts over ctxmod:
// make(chan int) is known-unbuffered, make(chan int, 8) is not.
func TestChanBuffering(t *testing.T) {
	prog, g := loadModule(t, "ctxmod")
	cb := buildChanBuffering(prog)

	chanIn := func(fn string) map[string]bool {
		fi := funcNamed(t, g, fn)
		out := map[string]bool{}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := chanVar(fi.pkg, id); v != nil {
					out[id.Name] = cb.knownUnbuffered(v)
				}
			}
			return true
		})
		return out
	}

	if got := chanIn("StartPush"); !got["ch"] {
		t.Errorf("StartPush's make(chan int) not known-unbuffered: %v", got)
	}
	if got := chanIn("StartBuffered"); got["ch"] {
		t.Errorf("StartBuffered's make(chan int, 8) reported unbuffered: %v", got)
	}
}

// TestStopNamed pins the stop-signal name classifier used by both
// ctxflow (select cases) and lifecycle (spawn/stop pairing).
func TestStopNamed(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"stopCh", true},
		{"d.stop", true},
		{"ctx.Done()", true},
		{"quit", true},
		{"shutdownC", true},
		{"cancelled[i]", true},
		{"d.data", false},
		{"results", false},
		{"t.C", false},
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", c.expr, err)
		}
		if got := stopNamed(e); got != c.want {
			t.Errorf("stopNamed(%s) = %v, want %v", c.expr, got, c.want)
		}
	}
}

// TestLifecycleFacts pins the spawn/stop pairing facts over the
// lifecycle corpus: Pump's ctor spawn resolves to a long-running body
// whose stop field the Close method provably fires and joins.
func TestLifecycleFacts(t *testing.T) {
	_, g := loadModule(t, "lifecyclemod")
	comps := buildComponents(g)

	var pump *component
	for _, c := range comps {
		if c.name.Name() == "Pump" {
			pump = c
		}
	}
	if pump == nil {
		t.Fatal("Pump not classified as a component")
	}
	stop := componentStopMethod(pump)
	if stop == nil || stop.obj.Name() != "Close" {
		t.Fatalf("Pump stop method = %v, want Close", stop)
	}
	if !methodFiresField(stop, "work") {
		t.Error("Pump.Close does not fire the work field it provably closes")
	}
	if !bodyJoins(stop.pkg, stop.decl.Body) {
		t.Error("Pump.Close's <-p.done receive not recognized as a join")
	}

	loop := funcNamed(t, g, "loop")
	if !longRunningBody(loop.pkg, loop.decl.Body) {
		t.Error("Pump.loop's range over a channel not recognized as long-running")
	}
}
