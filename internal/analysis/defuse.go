package analysis

// defuse.go is the lightweight intraprocedural def-use/alias layer the
// publication-discipline analyzers (cowsafe, pubinit, sharedcap) are
// built on. It is deliberately not SSA: Apollo's copy-on-write idiom is
// lexically simple — build a fresh value, publish it through an
// atomic.Pointer, never touch it again — so a per-function pass that
// tracks value aliases (v := u), address-taking (v := &u), values
// derived from atomic.Pointer Load/Swap results, and the statements
// sequenced after a given statement is enough to check the discipline
// without whole-program points-to analysis. Escape into calls is
// handled by mutParams, a module-wide "mutates its argument" summary
// computed over the PR-3 call graph.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomicPtrMethod reports whether obj is one of sync/atomic.Pointer[T]'s
// methods, returning its name ("Load", "Store", "Swap",
// "CompareAndSwap").
func atomicPtrMethod(obj *types.Func) (string, bool) {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	if receiverBaseName(obj) != "Pointer" {
		return "", false
	}
	switch obj.Name() {
	case "Load", "Store", "Swap", "CompareAndSwap":
		return obj.Name(), true
	}
	return "", false
}

// atomicPtrCall classifies a call expression as an atomic.Pointer[T]
// method call: a direct selector call (p.Store(v)), a call through an
// embedded atomic.Pointer field (s.Store(v) with Pointer embedded in
// s's type), or a call through a locally bound method value
// (st := p.Store; st(v)). It returns the method name and true on match.
func atomicPtrCall(pkg *Package, bindings map[types.Object]*types.Func, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		// Selections covers both the direct and the embedded-field form
		// (the selection path walks through the embedded Pointer).
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if m, ok := sel.Obj().(*types.Func); ok {
				return atomicPtrMethod(m)
			}
			return "", false
		}
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return atomicPtrMethod(obj)
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[fun].(*types.Var); ok {
			if target, ok := bindings[v]; ok {
				return atomicPtrMethod(target)
			}
		}
	}
	return "", false
}

// publishedArg returns the expression a publishing atomic.Pointer call
// makes visible to other goroutines: the sole argument of Store/Swap,
// the new-value (second) argument of CompareAndSwap, nil for Load.
func publishedArg(method string, call *ast.CallExpr) ast.Expr {
	switch method {
	case "Store", "Swap":
		if len(call.Args) == 1 {
			return call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			return call.Args[1]
		}
	}
	return nil
}

// fnFlow holds the per-function def-use facts: value-alias classes,
// address-of edges, and which locals hold values derived from an
// atomic.Pointer Load (or the old value returned by Swap).
type fnFlow struct {
	pkg      *Package
	decl     *ast.FuncDecl
	parents  map[ast.Node]ast.Node
	bindings map[types.Object]*types.Func

	alias map[*types.Var]*types.Var // union-find parent for value aliases
	ptrTo map[*types.Var]*types.Var // v := &u: writes through v hit cell u
	load  map[*types.Var]bool       // v holds a Load/Swap-derived value
}

// newFnFlow computes the def-use facts for one declared function.
func newFnFlow(pkg *Package, decl *ast.FuncDecl) *fnFlow {
	f := &fnFlow{
		pkg:      pkg,
		decl:     decl,
		parents:  parentsOf(decl.Body),
		bindings: methodBindings(pkg, decl.Body),
		alias:    map[*types.Var]*types.Var{},
		ptrTo:    map[*types.Var]*types.Var{},
		load:     map[*types.Var]bool{},
	}

	// Collect assignment pairs once, then iterate the load-derivation
	// transfer to a fixpoint (flow-insensitive; the classes only grow).
	type pair struct {
		lhs *types.Var
		rhs ast.Expr
	}
	var pairs []pair
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v := f.identVar(id, n.Tok == token.DEFINE)
				if v == nil {
					continue
				}
				rhs := ast.Unparen(n.Rhs[i])
				pairs = append(pairs, pair{lhs: v, rhs: rhs})
				switch r := rhs.(type) {
				case *ast.Ident:
					if u, ok := pkg.Info.Uses[r].(*types.Var); ok && aliasShaped(u.Type()) {
						f.union(v, u)
					}
				case *ast.UnaryExpr:
					if r.Op == token.AND {
						if base, ok := ast.Unparen(r.X).(*ast.Ident); ok {
							if u, ok := pkg.Info.Uses[base].(*types.Var); ok {
								f.ptrTo[v] = u
							}
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i >= len(n.Values) {
					break
				}
				v, ok := pkg.Info.Defs[id].(*types.Var)
				if !ok {
					continue
				}
				pairs = append(pairs, pair{lhs: v, rhs: ast.Unparen(n.Values[i])})
				if r, ok := ast.Unparen(n.Values[i]).(*ast.Ident); ok {
					if u, ok := pkg.Info.Uses[r].(*types.Var); ok && aliasShaped(u.Type()) {
						f.union(v, u)
					}
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, p := range pairs {
			if !f.load[p.lhs] && f.loadDerived(p.rhs) {
				f.load[p.lhs] = true
				changed = true
			}
		}
	}
	return f
}

// identVar resolves an identifier on an assignment's left side.
func (f *fnFlow) identVar(id *ast.Ident, define bool) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if define {
		if v, ok := f.pkg.Info.Defs[id].(*types.Var); ok {
			return v
		}
	}
	if v, ok := f.pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// aliasShaped reports whether assigning a value of this type creates an
// alias (shared mutable state) rather than a copy.
func aliasShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// union-find over value aliases.
func (f *fnFlow) find(v *types.Var) *types.Var {
	for {
		p, ok := f.alias[v]
		if !ok || p == v {
			return v
		}
		v = p
	}
}

func (f *fnFlow) union(a, b *types.Var) {
	ra, rb := f.find(a), f.find(b)
	if ra != rb {
		f.alias[ra] = rb
	}
}

func (f *fnFlow) sameClass(a, b *types.Var) bool { return f.find(a) == f.find(b) }

// loadDerived reports whether the expression's base chain bottoms out at
// an atomic.Pointer Load (or Swap) call, or at a local already known to
// hold such a value. Derivation deliberately stops at other calls: the
// clone-and-republish idiom passes a Load result into a copier and gets
// back a fresh value that is legitimately mutable.
func (f *fnFlow) loadDerived(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, ok := f.pkg.Info.Uses[x].(*types.Var)
			return ok && f.load[v]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		case *ast.CallExpr:
			method, ok := atomicPtrCall(f.pkg, f.bindings, x)
			return ok && (method == "Load" || method == "Swap")
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return false
		}
	}
}

// pathOf renders an expression as a field path rooted at a variable
// ("sh.spare"), for matching writes against a published field. Index
// expressions render as "[]" so any element matches. ok is false when
// the expression is not a var-rooted path.
func pathOf(pkg *Package, e ast.Expr) (root *types.Var, path string, ok bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, isVar := pkg.Info.Uses[x].(*types.Var); isVar {
			return v, x.Name, true
		}
	case *ast.SelectorExpr:
		if root, p, ok := pathOf(pkg, x.X); ok {
			return root, p + "." + x.Sel.Name, true
		}
		// Package-qualified variable: pkg.V.
		if v, isVar := pkg.Info.Uses[x.Sel].(*types.Var); isVar && v.Pkg() != nil {
			if _, isPkg := pkg.Info.Uses[firstIdent(x.X)].(*types.PkgName); isPkg {
				return v, x.Sel.Name, true
			}
		}
	case *ast.IndexExpr:
		if root, p, ok := pathOf(pkg, x.X); ok {
			return root, p + "[]", true
		}
	case *ast.StarExpr:
		return pathOf(pkg, x.X)
	}
	return nil, "", false
}

func firstIdent(e ast.Expr) *ast.Ident {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id
	}
	return &ast.Ident{}
}

// pubRoots identifies the published value of one publish call so later
// writes can be matched against it.
type pubRoots struct {
	// cell is the variable whose address was published (&x): both
	// rebinding x and writing x's elements mutate the published value.
	cell *types.Var
	// class is the alias class of a published pointer/map/slice value:
	// writes through any variable in the class mutate it.
	class *types.Var
	// root/path identify a published field path (sh.spare): writes
	// through a strictly longer path with this prefix mutate it.
	root *types.Var
	path string
}

// empty reports that the publish has nothing trackable (a fresh call
// result or literal published directly).
func (r pubRoots) empty() bool { return r.cell == nil && r.class == nil && r.root == nil }

// rootsOf resolves the published expression to its trackable roots.
func (f *fnFlow) rootsOf(e ast.Expr) pubRoots {
	switch x := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if v, ok := f.pkg.Info.Uses[id].(*types.Var); ok {
					return pubRoots{cell: v, class: f.find(v)}
				}
			}
		}
	case *ast.Ident:
		if v, ok := f.pkg.Info.Uses[x].(*types.Var); ok && aliasShaped(v.Type()) {
			r := pubRoots{class: f.find(v)}
			// A pointer local bound by v := &u also exposes cell u.
			if u, ok := f.ptrTo[v]; ok {
				r.cell = u
			}
			return r
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
		if root, path, ok := pathOf(f.pkg, e); ok {
			return pubRoots{root: root, path: path}
		}
	}
	return pubRoots{}
}

// write is one mutation found in a function body: an assignment,
// inc/dec, delete, or copy, with the expression it writes through.
type write struct {
	pos  token.Pos
	base ast.Expr // the full written lvalue (or delete/copy target)
	// rebind is true for a plain `x = ...`: the variable is rebound, the
	// old referent is not mutated.
	rebind bool
	inGo   bool // the write sits inside a function literal
}

// writesIn collects every mutation in the body, tagging writes inside
// function literals (they execute later, possibly concurrently).
func writesIn(pkg *Package, body ast.Node) []write {
	var out []write
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != n {
					walk(m.Body, true)
					return false
				}
			case *ast.AssignStmt:
				for _, lhs := range m.Lhs {
					l := ast.Unparen(lhs)
					if id, ok := l.(*ast.Ident); ok {
						if id.Name == "_" {
							continue
						}
						out = append(out, write{pos: l.Pos(), base: l, rebind: true, inGo: inLit})
						continue
					}
					out = append(out, write{pos: l.Pos(), base: l, inGo: inLit})
				}
			case *ast.IncDecStmt:
				l := ast.Unparen(m.X)
				_, isIdent := l.(*ast.Ident)
				out = append(out, write{pos: l.Pos(), base: l, rebind: isIdent, inGo: inLit})
			case *ast.CallExpr:
				if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
					if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && len(m.Args) > 0 {
						switch b.Name() {
						case "delete", "copy", "clear":
							out = append(out, write{pos: m.Pos(), base: ast.Unparen(m.Args[0]), inGo: inLit})
						}
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return out
}

// baseVar unwraps a written lvalue to the variable it is rooted at:
// s.rec.Seq -> s, m[k] -> m, *p -> p. ok is false for dynamic roots
// (call results, dereferenced temporaries).
func baseVar(pkg *Package, e ast.Expr) (*types.Var, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, ok := pkg.Info.Uses[x].(*types.Var)
			return v, ok
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// hits reports whether a write mutates the published value identified by
// roots, given the function's alias facts.
func (f *fnFlow) hits(w write, roots pubRoots) bool {
	if roots.empty() {
		return false
	}
	v, okVar := baseVar(f.pkg, w.base)
	if roots.cell != nil && okVar {
		if w.rebind {
			if v == roots.cell {
				return true // rebinding the published cell itself
			}
		} else {
			if f.sameClass(v, roots.cell) {
				return true // writing an element of the published cell's value
			}
			// Writing through a pointer that points at the cell (*p = ...).
			if u, ok := f.ptrTo[v]; ok && u == roots.cell {
				return true
			}
		}
	}
	if roots.class != nil && okVar && !w.rebind && f.find(v) == roots.class {
		return true // writing through an alias of the published pointer
	}
	if roots.root != nil && !w.rebind {
		if wr, wpath, ok := pathOf(f.pkg, w.base); ok && wr == roots.root {
			if len(wpath) > len(roots.path) && strings.HasPrefix(wpath, roots.path) {
				return true // writing through the published field path
			}
		}
	}
	return false
}

// enclosingStmt walks up from n to the innermost statement that sits
// directly in a block (or case/comm clause) — the unit afterRegion
// sequences against.
func enclosingStmt(parents map[ast.Node]ast.Node, n ast.Node) ast.Stmt {
	for cur := n; cur != nil; cur = parents[cur] {
		if s, ok := cur.(ast.Stmt); ok {
			switch parents[cur].(type) {
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
				return s
			}
		}
	}
	return nil
}

// afterRegion computes the source regions sequenced after stmt within
// its function: the statements following it in its own and every
// enclosing block, plus — when stmt sits inside a loop — the entire
// outermost enclosing loop body (a lexically earlier statement runs
// after the publish on the next iteration). Sibling branches of an
// enclosing if/switch are not included: they cannot execute after it in
// the same pass.
type afterRegion struct {
	spans [][2]token.Pos
}

func computeAfter(parents map[ast.Node]ast.Node, stmt ast.Stmt) afterRegion {
	var r afterRegion
	var cur ast.Node = stmt
	for cur != nil {
		parent := parents[cur]
		var list []ast.Stmt
		switch p := parent.(type) {
		case *ast.BlockStmt:
			list = p.List
		case *ast.CaseClause:
			list = p.Body
		case *ast.CommClause:
			list = p.Body
		case *ast.ForStmt:
			r.spans = append(r.spans, [2]token.Pos{p.Body.Pos(), p.Body.End()})
		case *ast.RangeStmt:
			r.spans = append(r.spans, [2]token.Pos{p.Body.Pos(), p.Body.End()})
		case *ast.FuncDecl:
			cur = nil
			continue
		case *ast.FuncLit:
			// The publish sits inside a literal; sequencing beyond it is
			// the literal's caller's business.
			cur = nil
			continue
		}
		if list != nil {
			if s, ok := cur.(ast.Stmt); ok {
				past := false
				for _, sib := range list {
					if sib == s {
						past = true
						continue
					}
					if past {
						r.spans = append(r.spans, [2]token.Pos{sib.Pos(), sib.End()})
					}
				}
			}
		}
		cur = parent
	}
	return r
}

func (r afterRegion) contains(pos token.Pos) bool {
	for _, s := range r.spans {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}

// mutParams summarizes, for every module function, which of its
// parameters (receiver included) it may write through — directly
// (field/element/pointer writes rooted at the parameter, delete/copy/
// clear on it) or transitively by passing the parameter onward to a
// module function that mutates the corresponding parameter. Interface
// dispatch is not followed: a dynamic callee would make every argument
// speculatively mutable.
type mutParams struct {
	g        *graph
	memo     map[*types.Func][]bool
	visiting map[*types.Func]bool
}

func newMutParams(g *graph) *mutParams {
	return &mutParams{g: g, memo: map[*types.Func][]bool{}, visiting: map[*types.Func]bool{}}
}

// paramObjs returns the receiver (if any) followed by the declared
// parameters, matching the index layout of mutated().
func paramObjs(fi *funcInfo) []*types.Var {
	var out []*types.Var
	sig := fi.obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		out = append(out, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// mutated returns the mutability mask for fi's receiver+parameters.
func (mp *mutParams) mutated(fi *funcInfo) []bool {
	if m, ok := mp.memo[fi.obj]; ok {
		return m
	}
	if mp.visiting[fi.obj] {
		return nil // recursion resolves to no-mutation; the outer pass completes it
	}
	mp.visiting[fi.obj] = true
	defer delete(mp.visiting, fi.obj)

	params := paramObjs(fi)
	mask := make([]bool, len(params))
	if fi.decl.Body != nil {
		flow := newFnFlow(fi.pkg, fi.decl)
		mark := func(v *types.Var) {
			for i, p := range params {
				if flow.sameClass(v, p) {
					mask[i] = true
				}
			}
		}
		for _, w := range writesIn(fi.pkg, fi.decl.Body) {
			if w.rebind {
				continue // rebinding a parameter variable is local
			}
			if v, ok := baseVar(fi.pkg, w.base); ok {
				mark(v)
			}
		}
		// Transitive: the parameter escapes into a module call that
		// mutates it.
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callees, _ := mp.g.resolve(fi.pkg, flow.bindings, call)
			for _, c := range callees {
				if c.viaInterface != "" {
					continue
				}
				sub := mp.mutated(c.fn)
				if sub == nil {
					continue
				}
				for argIdx, argVar := range callArgVars(fi.pkg, call) {
					if argVar == nil || argIdx >= len(sub) || !sub[argIdx] {
						continue
					}
					for i, p := range params {
						if flow.sameClass(argVar, p) {
							mask[i] = true
						}
					}
				}
			}
			return true
		})
	}
	mp.memo[fi.obj] = mask
	return mask
}

// callArgVars maps a call's receiver and arguments onto the variables
// they pass, aligned with paramObjs' layout (receiver first for method
// calls). Non-variable arguments yield nil entries.
func callArgVars(pkg *Package, call *ast.CallExpr) []*types.Var {
	var out []*types.Var
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, argVar(pkg, sel.X))
		}
	}
	for _, a := range call.Args {
		out = append(out, argVar(pkg, a))
	}
	return out
}

// argVar resolves an argument to the variable it passes (unwrapping an
// address-of), nil when it is not a plain variable.
func argVar(pkg *Package, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return argVar(pkg, x.X)
		}
	}
	return nil
}
