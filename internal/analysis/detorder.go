package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DetOrder flags range-over-map loops whose body feeds an
// order-sensitive sink: serialization (encoding/json, encoding/gob,
// encoding/xml), stream writes (fmt.Fprint*/Print*, Write/WriteString on
// bytes.Buffer, strings.Builder, bufio/io writers), hashing (hash.*,
// crypto/*, Sum*), or a module-internal function whose name marks it as
// an encoder (Marshal*/Encode*/Write*/Fprint* prefixes, or containing
// Hash/Fingerprint). Go randomizes map iteration order per run, so bytes
// produced this way differ between identical inputs — nondeterministic
// model artifacts, spurious ETag churn, unstable golden files.
//
// The idiomatic fix — collect keys into a slice, sort, iterate the
// slice — is untouched: appending to a slice inside the range is not a
// sink. fmt.Sprint*/Errorf are also permitted (the value may be sorted
// or compared later). A deliberate order-insensitive use is waived with
// //apollo:detorderok <reason> on the sink line or the range line.
var DetOrder = &Analyzer{
	Name:       "detorder",
	Doc:        "map iteration must not feed serialization, hashing, or encoding",
	Run:        runDetOrder,
	runTracked: runDetOrderTracked,
}

func runDetOrder(prog *Program) []Diagnostic {
	return runDetOrderTracked(prog, nil)
}

// runDetOrderTracked is runDetOrder recording //apollo:detorderok
// suppressions into uses (nil disables tracking).
func runDetOrderTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	var fis []*funcInfo
	for _, fi := range g.funcs {
		fis = append(fis, fi)
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })

	fset := prog.Fset
	var diags []Diagnostic
	seen := map[token.Pos]bool{}
	for _, fi := range fis {
		if fi.decl.Body == nil {
			continue
		}
		lines := lineDirectives(fset, fi.file)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := exprType(fi.pkg.Info, rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					desc := sinkDesc(g, fi.pkg, m)
					if desc == "" || seen[m.Pos()] {
						return true
					}
					if suppressedBy(lines, fset, m.Pos(), dirDetOrderOK, uses) ||
						suppressedBy(lines, fset, rng.Pos(), dirDetOrderOK, uses) {
						return true
					}
					seen[m.Pos()] = true
					diags = append(diags, Diagnostic{
						Pos:      fset.Position(m.Pos()),
						Analyzer: "detorder",
						Message: fmt.Sprintf("map iteration order feeds %s: output bytes differ between runs; iterate a sorted key slice instead",
							desc),
					})
				}
				return true
			})
			return true
		})
	}
	return diags
}

// sinkDesc classifies a call inside a map-range body as order-sensitive,
// returning a printable description or "".
func sinkDesc(g *graph, pkg *Package, call *ast.CallExpr) string {
	var obj *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ = pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return ""
			}
			obj, _ = sel.Obj().(*types.Func)
		} else {
			obj, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
		}
	}
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if g.inModule(obj) {
		name := obj.Name()
		lower := strings.ToLower(name)
		for _, prefix := range []string{"marshal", "encode", "write", "fprint"} {
			if strings.HasPrefix(lower, prefix) {
				return displayName(obj)
			}
		}
		if strings.Contains(lower, "hash") || strings.Contains(lower, "fingerprint") {
			return displayName(obj)
		}
		return ""
	}
	return externalSinkDesc(obj)
}

// externalSinkDesc classifies out-of-module order-sensitive calls.
func externalSinkDesc(obj *types.Func) string {
	pkg := obj.Pkg()
	name := obj.Name()
	path := pkg.Path()
	switch path {
	case "encoding/json", "encoding/xml":
		switch name {
		case "Marshal", "MarshalIndent", "Encode", "EncodeElement":
			return path + "." + name
		}
	case "encoding/gob":
		switch name {
		case "Encode", "EncodeValue":
			return path + "." + name
		}
	case "fmt":
		if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
			return "fmt." + name
		}
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Sum", "Sum32", "Sum64":
		if path == "bytes" || path == "strings" || path == "bufio" || path == "io" ||
			path == "hash" || strings.HasPrefix(path, "hash/") || strings.HasPrefix(path, "crypto/") {
			if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
				return "(" + types.TypeString(recv.Type(), shortQualifier) + ")." + name
			}
		}
	}
	return ""
}
