package analysis

// errflow.go is the failure-path fact layer shared by the errsink,
// ctxflow, and lifecycle analyzers: error-value def-use summaries over
// the module call graph (which error parameters a function actually
// observes), module-wide channel-buffering facts, stop-signal shape
// classification, and the allowlist of calls whose error results are
// infallible by contract.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// errorType is the universe error interface, the type every tracked
// error value must be identical to.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the built-in error type.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// callResults returns the result types of a call expression (empty for
// void calls, conversions, and untypeable expressions).
func callResults(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{tv.Type}
}

// infallibleExternal reports whether an out-of-module function's error
// result may be dropped without a diagnostic: calls that cannot fail by
// documented contract (fmt print family, strings.Builder, bytes.Buffer,
// hash.Hash writes) or whose failure already has a mandated side effect
// (flag.FlagSet.Parse under ExitOnError terminates the process).
func infallibleExternal(obj *types.Func) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "fmt":
		n := obj.Name()
		return strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint")
	case "strings":
		return receiverBaseName(obj) == "Builder"
	case "bytes":
		return receiverBaseName(obj) == "Buffer"
	case "hash":
		// hash.Hash's Write is documented to never return an error.
		return true
	case "flag":
		return obj.Name() == "Parse"
	}
	return false
}

// infallibleReceiver reports whether a method call's receiver static
// type makes the error result infallible by contract: the hash package's
// Hash interfaces document that Write never returns an error, but the
// method object itself resolves to io.Writer.Write (hash.Hash embeds
// io.Writer), so the receiver type — not the method's package — is the
// evidence.
func infallibleReceiver(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := exprType(pkg.Info, sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "hash", "hash/fnv", "hash/crc32", "hash/crc64", "hash/adler32", "hash/maphash":
		return true
	case "strings":
		return named.Obj().Name() == "Builder"
	case "bytes":
		return named.Obj().Name() == "Buffer"
	}
	return false
}

// errReads computes, per module function, which receiver/parameter slots
// (paramObjs layout) the body actually observes. A false entry for an
// error-typed parameter means every path through the function provably
// ignores the value — so passing an error there is not a sink. Reads
// propagate through static module calls: an error forwarded to a
// function that reads it counts as read. Recursion, bodyless functions,
// interface dispatch, and anything else unprovable resolve to "read"
// (conservative: no diagnostic).
type errReads struct {
	g        *graph
	memo     map[*types.Func][]bool
	visiting map[*types.Func]bool
}

func newErrReads(g *graph) *errReads {
	return &errReads{g: g, memo: map[*types.Func][]bool{}, visiting: map[*types.Func]bool{}}
}

// reads returns the observed mask for fi's receiver+parameters.
// Non-error parameters are always reported as read; only error slots
// carry a verdict.
func (er *errReads) reads(fi *funcInfo) []bool {
	if m, ok := er.memo[fi.obj]; ok {
		return m
	}
	params := paramObjs(fi)
	all := make([]bool, len(params))
	for i := range all {
		all[i] = true
	}
	if fi.decl.Body == nil {
		er.memo[fi.obj] = all
		return all
	}
	if er.visiting[fi.obj] {
		return all // recursion resolves to "reads"; the outer pass completes
	}
	er.visiting[fi.obj] = true
	defer delete(er.visiting, fi.obj)

	mask := make([]bool, len(params))
	idx := map[*types.Var]int{}
	for i, p := range params {
		if p == nil || !isErrorType(p.Type()) {
			mask[i] = true
			continue
		}
		idx[p] = i
	}
	if len(idx) > 0 {
		parents := parentsOf(fi.decl.Body)
		bindings := methodBindings(fi.pkg, fi.decl.Body)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := fi.pkg.Info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			i, tracked := idx[v]
			if !tracked || mask[i] {
				return true
			}
			if er.identObserves(fi, parents, bindings, id) {
				mask[i] = true
			}
			return true
		})
	}
	er.memo[fi.obj] = mask
	return mask
}

// identObserves classifies one use of a tracked error parameter: an
// overwrite is not an observation, and forwarding it as a plain argument
// to module callees that all ignore the slot is not one either.
// Everything else (comparisons, returns, method calls on it, dynamic
// forwarding) observes the value.
func (er *errReads) identObserves(fi *funcInfo, parents map[ast.Node]ast.Node,
	bindings map[types.Object]*types.Func, id *ast.Ident) bool {
	switch p := parents[id].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(id) {
				return false // pure rebind of the parameter variable
			}
		}
	case *ast.CallExpr:
		if p.Fun == ast.Expr(id) {
			return true // calling through it (not an error anyway)
		}
		callees, ext := er.g.resolve(fi.pkg, bindings, p)
		if ext != nil || len(callees) == 0 {
			return true
		}
		argIdx := -1
		for i, v := range callArgVars(fi.pkg, p) {
			if v != nil && v == fi.pkg.Info.Uses[id] {
				argIdx = i
				break
			}
		}
		if argIdx < 0 {
			return true
		}
		for _, c := range callees {
			if c.viaInterface != "" {
				return true
			}
			sub := er.reads(c.fn)
			if argIdx >= len(sub) || sub[argIdx] {
				return true
			}
		}
		return false // every static callee provably ignores the slot
	}
	return true
}

// chanBuffering is the module-wide classification of channel variables
// by construction site: a variable is known-unbuffered when every
// make(chan) bound to it has no capacity argument (or a constant zero),
// and known-buffered when every one has a capacity argument. Channels
// from parameters, fields, or conflicting assignments stay unknown, and
// unknown channels are never flagged.
type chanBuffering struct {
	buffered map[*types.Var]bool // verdict for known vars
	known    map[*types.Var]bool
}

func buildChanBuffering(prog *Program) *chanBuffering {
	cb := &chanBuffering{buffered: map[*types.Var]bool{}, known: map[*types.Var]bool{}}
	record := func(pkg *Package, id *ast.Ident, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "make" || len(call.Args) == 0 {
			return
		}
		if _, isChan := exprChanType(pkg.Info, rhs); !isChan {
			return
		}
		var v *types.Var
		if d, ok := pkg.Info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := pkg.Info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil {
			return
		}
		buffered := len(call.Args) >= 2
		if buffered {
			if c, known := makeChanCap(pkg, rhs); known && c == 0 {
				buffered = false
			}
		}
		if cb.known[v] && cb.buffered[v] != buffered {
			delete(cb.known, v) // conflicting construction sites: unknown
			return
		}
		cb.known[v] = true
		cb.buffered[v] = buffered
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							record(pkg, id, n.Rhs[i])
						}
					}
				case *ast.ValueSpec:
					if len(n.Names) != len(n.Values) {
						return true
					}
					for i, id := range n.Names {
						record(pkg, id, n.Values[i])
					}
				}
				return true
			})
		}
	}
	return cb
}

// knownUnbuffered reports that v was provably constructed without a
// buffer everywhere it is made.
func (cb *chanBuffering) knownUnbuffered(v *types.Var) bool {
	return v != nil && cb.known[v] && !cb.buffered[v]
}

// exprChanType returns the channel type of an expression, if it is one.
func exprChanType(info *types.Info, e ast.Expr) (*types.Chan, bool) {
	t := exprType(info, e)
	if t == nil {
		return nil, false
	}
	ch, ok := t.Underlying().(*types.Chan)
	return ch, ok
}

// stopWords are the name fragments that mark a channel (or context
// accessor) as a shutdown signal rather than a data stream.
var stopWords = []string{"stop", "done", "quit", "exit", "close", "shutdown", "cancel"}

// stopNamed reports whether an expression is, by name, a stop signal: a
// ctx.Done()-style accessor call or a channel whose final identifier
// contains a conventional shutdown word.
func stopNamed(e ast.Expr) bool {
	var name string
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.CallExpr:
		switch f := ast.Unparen(x.Fun).(type) {
		case *ast.SelectorExpr:
			name = f.Sel.Name
		case *ast.Ident:
			name = f.Name
		}
	case *ast.IndexExpr:
		return stopNamed(x.X)
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, w := range stopWords {
		if strings.Contains(name, w) {
			return true
		}
	}
	return false
}

// longRunningBody reports whether a goroutine body is long-running: it
// contains (outside nested function literals) a condition-less for loop
// or a range over a channel — the shapes that only a stop signal ends.
func longRunningBody(pkg *Package, body *ast.BlockStmt) bool {
	long := false
	ast.Inspect(body, func(n ast.Node) bool {
		if long {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				long = true
			}
		case *ast.RangeStmt:
			if _, isChan := exprChanType(pkg.Info, n.X); isChan {
				long = true
			}
		}
		return true
	})
	return long
}

// bodyJoins reports whether a body waits for goroutine exit: a channel
// receive or a sync.WaitGroup.Wait call anywhere inside (including
// nested literals).
func bodyJoins(pkg *Package, body ast.Node) bool {
	joins := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joins = true
			}
		case *ast.RangeStmt:
			if _, isChan := exprChanType(pkg.Info, n.X); isChan {
				joins = true
			}
		case *ast.CallExpr:
			if m := waitGroupMethod(pkg, n); m != nil && m.Name() == "Wait" {
				joins = true
			}
		}
		return true
	})
	return joins
}
