package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// NetGuard enforces deadline discipline on outbound HTTP: a request
// without a timeout is an unbounded liability in a fleet member, and a
// flat-sleep retry loop synchronizes stampedes. It reports:
//
//   - package-level net/http helpers (http.Get/Head/Post/PostForm),
//     which ride the timeout-less http.DefaultClient;
//   - any use of the http.DefaultClient variable itself;
//   - an http.Client composite literal without a Timeout field;
//   - a retry loop — a for/range whose body both performs an HTTP round
//     trip and sleeps — that does not route through a module backoff
//     helper (any function whose name contains "backoff" supplies the
//     jitter contract).
//
// There is deliberately no waiver: every finding has a mechanical fix
// (construct a Client with Timeout, or call the backoff helper), so a
// justified exception should become a named helper instead of a comment.
var NetGuard = &Analyzer{
	Name: "netguard",
	Doc:  "outbound HTTP must carry deadlines and retry through jittered backoff",
	Run:  runNetGuard,
}

func runNetGuard(prog *Program) []Diagnostic {
	g := buildGraph(prog)
	var fis []*funcInfo
	for _, fi := range g.funcs {
		if fi.decl.Body != nil {
			fis = append(fis, fi)
		}
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })
	var diags []Diagnostic
	for _, fi := range fis {
		diags = append(diags, netGuardCheckFunc(prog, g, fi)...)
	}
	return diags
}

// netHTTPFunc reports whether obj is the named function/method from
// net/http.
func netHTTPObj(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func netGuardCheckFunc(prog *Program, g *graph, fi *funcInfo) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(n.Pos()),
			Analyzer: "netguard",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	info := fi.pkg.Info
	bindings := methodBindings(fi.pkg, fi.decl.Body)

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			ext := staticCallee(fi.pkg, bindings, n)
			if ext != nil && netHTTPObj(ext) && ext.Type().(*types.Signature).Recv() == nil {
				switch ext.Name() {
				case "Get", "Head", "Post", "PostForm":
					report(n, "http.%s uses the timeout-less http.DefaultClient; construct an http.Client with a Timeout", ext.Name())
				}
			}
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && netHTTPObj(v) && v.Name() == "DefaultClient" {
				report(n, "http.DefaultClient has no timeout; construct an http.Client with a Timeout")
			}
		case *ast.CompositeLit:
			t := exprType(info, n)
			if t == nil {
				return true
			}
			named, ok := t.(*types.Named)
			if !ok || !netHTTPObj(named.Obj()) || named.Obj().Name() != "Client" {
				return true
			}
			hasTimeout := false
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Timeout" {
						hasTimeout = true
					}
				}
			}
			if !hasTimeout {
				report(n, "http.Client literal without a Timeout; an outbound request must carry a deadline")
			}
		case *ast.ForStmt:
			diags = append(diags, netGuardCheckLoop(prog, g, fi, bindings, n.Body)...)
		case *ast.RangeStmt:
			diags = append(diags, netGuardCheckLoop(prog, g, fi, bindings, n.Body)...)
		}
		return true
	})
	return diags
}

// netGuardCheckLoop flags a retry loop (HTTP round trip + sleep in one
// loop body, nested literals excluded) that bypasses the backoff
// helpers.
func netGuardCheckLoop(prog *Program, g *graph, fi *funcInfo,
	bindings map[types.Object]*types.Func, body *ast.BlockStmt) []Diagnostic {
	hasNet := false
	hasBackoff := false
	var sleepPos ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			return false // nested loops report on their own
		case *ast.CallExpr:
			if ext := staticCallee(fi.pkg, bindings, n); ext != nil {
				pkg := ext.Pkg()
				switch {
				case netHTTPObj(ext):
					hasNet = true
				case pkg != nil && pkg.Path() == "net" && strings.HasPrefix(ext.Name(), "Dial"):
					hasNet = true
				case pkg != nil && pkg.Path() == "time" && ext.Name() == "Sleep":
					if sleepPos == nil {
						sleepPos = n
					}
				}
			}
			callees, _ := g.resolve(fi.pkg, bindings, n)
			for _, c := range callees {
				if strings.Contains(strings.ToLower(c.fn.obj.Name()), "backoff") {
					hasBackoff = true
				}
			}
		}
		return true
	})
	if hasNet && sleepPos != nil && !hasBackoff {
		return []Diagnostic{{
			Pos:      prog.Fset.Position(sleepPos.Pos()),
			Analyzer: "netguard",
			Message:  "flat time.Sleep retry around a network call; route the delay through the jittered backoff helper",
		}}
	}
	return nil
}
