package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// GoLeak flags `go` statements whose goroutine can block forever — the
// leaks that accumulate invisibly in a long-running serving daemon:
//
//   - a condition-less `for` loop with no reachable return, matching
//     break, or terminating call (no stop channel / context case);
//   - an empty `select {}`;
//   - a bare send on an unbuffered locally made channel whose spawner
//     either never receives or only receives behind a multi-way select
//     (the classic timeout-abandonment leak);
//   - a bare receive on a locally made channel the spawner never sends
//     to or closes;
//   - sync.WaitGroup misuse inside the goroutine: Add after spawn
//     (races with Wait) and a non-deferred Done in a body with early
//     returns.
//
// Goroutine bodies are the spawned function literal or, for `go f(...)`
// on a statically resolved module function, that function's body
// (checked once per function). `for range ch` loops are accepted — close
// of the channel terminates them. A finding is waived with
// //apollo:goleakok <reason> on the construct's line or the go
// statement's line.
var GoLeak = &Analyzer{
	Name:       "goleak",
	Doc:        "spawned goroutines must have a guaranteed exit and unblockable channel use",
	Run:        runGoLeak,
	runTracked: runGoLeakTracked,
}

func runGoLeak(prog *Program) []Diagnostic {
	return runGoLeakTracked(prog, nil)
}

// runGoLeakTracked is runGoLeak recording //apollo:goleakok suppressions
// into uses (nil disables tracking).
func runGoLeakTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	s := &goLeakScanner{g: g, uses: uses, checkedNamed: map[*types.Func]bool{}}
	var fis []*funcInfo
	for _, fi := range g.funcs {
		fis = append(fis, fi)
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })
	for _, fi := range fis {
		if fi.decl.Body == nil {
			continue
		}
		s.scanSpawner(fi)
	}
	return s.diags
}

type goLeakScanner struct {
	g            *graph
	uses         *waiverUse
	checkedNamed map[*types.Func]bool
	diags        []Diagnostic
}

// goBodyCtx carries the context a goroutine body is checked in: the
// package/file the body lives in (for types and waiver lines) and the
// spawning go statement (whose line also accepts the waiver).
type goBodyCtx struct {
	pkg     *Package
	lines   map[int][]directive // body file's directives
	goPos   token.Pos
	goLines map[int][]directive // spawner file's directives
	chain   []string
}

func (s *goLeakScanner) scanSpawner(fi *funcInfo) {
	fset := s.g.prog.Fset
	spawnLines := lineDirectives(fset, fi.file)
	bindings := methodBindings(fi.pkg, fi.decl.Body)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			facts := spawnChanFacts(fi.pkg, fi.decl.Body, fun)
			s.checkBody(goBodyCtx{
				pkg: fi.pkg, lines: spawnLines, goPos: gs.Pos(), goLines: spawnLines,
				chain: []string{displayName(fi.obj)},
			}, fun.Body, facts)
		default:
			callees, _ := s.g.resolve(fi.pkg, bindings, gs.Call)
			for _, c := range callees {
				if c.viaInterface != "" || c.fn.decl.Body == nil || s.checkedNamed[c.fn.obj] {
					continue
				}
				s.checkedNamed[c.fn.obj] = true
				s.checkBody(goBodyCtx{
					pkg: c.fn.pkg, lines: lineDirectives(fset, c.fn.file), goPos: gs.Pos(), goLines: spawnLines,
					chain: []string{displayName(fi.obj), displayName(c.fn.obj)},
				}, c.fn.decl.Body, nil)
			}
		}
		return true
	})
}

// checkBody runs every goleak rule over one goroutine body. facts is
// the spawner-side channel analysis, nil for named callees (whose
// channels arrive through parameters and fields and stay unresolved).
func (s *goLeakScanner) checkBody(ctx goBodyCtx, body *ast.BlockStmt, facts *chanFacts) {
	fset := s.g.prog.Fset
	report := func(pos token.Pos, format string, args ...any) {
		if suppressedBy(ctx.lines, fset, pos, dirGoLeakOK, s.uses) {
			return
		}
		if suppressedBy(ctx.goLines, fset, ctx.goPos, dirGoLeakOK, s.uses) {
			return
		}
		s.diags = append(s.diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "goleak",
			Message:  fmt.Sprintf(format, args...),
			Chain:    ctx.chain,
		})
	}
	parents := parentsOf(body)

	var plainDones []*ast.CallExpr
	deferredDone := false
	hasReturn := false

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			hasReturn = true
		case *ast.ForStmt:
			if n.Cond == nil && !loopExits(ctx.pkg, n, loopLabel(parents, n)) {
				report(n.Pos(), "goroutine loops forever: no return, break, or terminating call leaves this loop (missing stop channel or context case)")
			}
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				report(n.Pos(), "empty select blocks this goroutine forever")
			}
		case *ast.SendStmt:
			if insideSelect(parents, n, body) || facts == nil {
				return true
			}
			v := chanVar(ctx.pkg, n.Chan)
			if v == nil {
				return true
			}
			capacity, known := facts.caps[v]
			if !known || capacity > 0 || facts.escapes[v] || facts.bareRecv[v] {
				return true
			}
			report(n.Pos(), "send on unbuffered channel %s can leak this goroutine: the spawner %s; buffer the channel or select on a stop signal",
				v.Name(), recvSituation(facts, v))
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || insideSelect(parents, n, body) || facts == nil {
				return true
			}
			v := chanVar(ctx.pkg, n.X)
			if v == nil {
				return true
			}
			if _, known := facts.caps[v]; !known {
				return true
			}
			if facts.escapes[v] || facts.sendsOrClose[v] {
				return true
			}
			report(n.Pos(), "receive on channel %s that the spawner never sends to or closes: this goroutine blocks forever", v.Name())
		case *ast.CallExpr:
			obj := waitGroupMethod(ctx.pkg, n)
			if obj == nil {
				return true
			}
			switch obj.Name() {
			case "Add":
				report(n.Pos(), "sync.WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
			case "Done":
				if _, ok := parents[n].(*ast.DeferStmt); ok {
					deferredDone = true
				} else {
					plainDones = append(plainDones, n)
				}
			}
		}
		return true
	})

	if !deferredDone && len(plainDones) > 0 && hasReturn {
		report(plainDones[0].Pos(), "sync.WaitGroup.Done is not deferred but the goroutine has return statements: an early return skips Done and Wait blocks forever")
	}
}

// recvSituation describes why the spawner may abandon the channel.
func recvSituation(facts *chanFacts, v *types.Var) string {
	if facts.selRecv[v] {
		return "only receives behind a select that can take another case"
	}
	return "never receives from it"
}

// loopLabel returns the label attached to a loop statement, "" if none.
func loopLabel(parents map[ast.Node]ast.Node, loop ast.Stmt) string {
	if l, ok := parents[loop].(*ast.LabeledStmt); ok {
		return l.Label.Name
	}
	return ""
}

// insideSelect reports whether n sits inside a select statement (its
// comm clauses don't block the goroutine unconditionally), looking no
// further up than the goroutine body itself.
func insideSelect(parents map[ast.Node]ast.Node, n ast.Node, stop ast.Node) bool {
	for p := parents[n]; p != nil && p != stop; p = parents[p] {
		if _, ok := p.(*ast.SelectStmt); ok {
			return true
		}
	}
	return false
}

// chanVar resolves a channel expression to its variable object, nil for
// fields, map elements, and calls.
func chanVar(pkg *Package, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}

// loopExits reports whether any construct inside the condition-less loop
// can leave it: a return, a break targeting this loop, a goto, or a
// terminating call (panic, os.Exit, runtime.Goexit, log.Fatal/Panic).
// Function literals are skipped — code inside them does not unwind this
// loop.
func loopExits(pkg *Package, loop *ast.ForStmt, label string) bool {
	exits := false
	var scanStmt func(stmt ast.Stmt, depth int)
	scanList := func(list []ast.Stmt, depth int) {
		for _, st := range list {
			scanStmt(st, depth)
		}
	}
	scanStmt = func(stmt ast.Stmt, depth int) {
		if exits || stmt == nil {
			return
		}
		switch st := stmt.(type) {
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			switch st.Tok {
			case token.BREAK:
				if st.Label != nil {
					if label != "" && st.Label.Name == label {
						exits = true
					}
				} else if depth == 0 {
					exits = true
				}
			case token.GOTO:
				exits = true // conservatively assume the target leaves the loop
			}
		case *ast.ExprStmt:
			if isTerminalCall(pkg, st.X) {
				exits = true
			}
		case *ast.BlockStmt:
			scanList(st.List, depth)
		case *ast.IfStmt:
			scanList(st.Body.List, depth)
			scanStmt(st.Else, depth)
		case *ast.ForStmt:
			scanList(st.Body.List, depth+1)
		case *ast.RangeStmt:
			scanList(st.Body.List, depth+1)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(cc.Body, depth+1)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(cc.Body, depth+1)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanList(cc.Body, depth+1)
				}
			}
		case *ast.LabeledStmt:
			scanStmt(st.Stmt, depth)
		}
	}
	scanList(loop.Body.List, 0)
	return exits
}

// isTerminalCall reports whether the expression is a call that never
// returns.
func isTerminalCall(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			return b.Name() == "panic"
		}
	case *ast.SelectorExpr:
		obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return false
		}
		name := obj.Name()
		switch obj.Pkg().Path() {
		case "os":
			return name == "Exit"
		case "runtime":
			return name == "Goexit"
		case "log":
			return name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
				name == "Panic" || name == "Panicf" || name == "Panicln"
		}
	}
	return false
}

// waitGroupMethod returns the sync.WaitGroup method a call targets, nil
// otherwise.
func waitGroupMethod(pkg *Package, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" || receiverBaseName(obj) != "WaitGroup" {
		return nil
	}
	return obj
}

// chanFacts is the spawner-side analysis of locally made channels: their
// make capacities and how the spawning function (outside the goroutine
// under test) uses them.
type chanFacts struct {
	caps         map[*types.Var]int64
	escapes      map[*types.Var]bool
	bareRecv     map[*types.Var]bool // unconditional receive or range
	selRecv      map[*types.Var]bool // receive inside a select
	sendsOrClose map[*types.Var]bool
}

// spawnChanFacts analyzes the spawning function's body, excluding the
// goroutine literal under test (lit), classifying every use of each
// locally made channel variable.
func spawnChanFacts(pkg *Package, body *ast.BlockStmt, lit *ast.FuncLit) *chanFacts {
	f := &chanFacts{
		caps:         map[*types.Var]int64{},
		escapes:      map[*types.Var]bool{},
		bareRecv:     map[*types.Var]bool{},
		selRecv:      map[*types.Var]bool{},
		sendsOrClose: map[*types.Var]bool{},
	}
	parents := parentsOf(body)

	// First pass: resolve make(chan ...) capacities bound to variables.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var v *types.Var
				if n.Tok == token.DEFINE {
					v, _ = pkg.Info.Defs[id].(*types.Var)
				} else {
					v, _ = pkg.Info.Uses[id].(*types.Var)
				}
				if v == nil {
					continue
				}
				if capacity, ok := makeChanCap(pkg, n.Rhs[i]); ok {
					f.caps[v] = capacity
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i >= len(n.Values) {
					break
				}
				v, ok := pkg.Info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if capacity, ok := makeChanCap(pkg, n.Values[i]); ok {
					f.caps[v] = capacity
				}
			}
		}
		return true
	})

	// Second pass: classify every use outside the goroutine literal.
	ast.Inspect(body, func(n ast.Node) bool {
		if n == lit {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, tracked := f.caps[v]; !tracked {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.SendStmt:
			if p.Chan == ast.Expr(id) {
				f.sendsOrClose[v] = true
				return true
			}
			f.escapes[v] = true // the channel itself sent over a channel
		case *ast.UnaryExpr:
			if p.Op == token.ARROW {
				if insideSelect(parents, p, body) {
					f.selRecv[v] = true
				} else {
					f.bareRecv[v] = true
				}
				return true
			}
			f.escapes[v] = true
		case *ast.RangeStmt:
			if p.X == ast.Expr(id) {
				f.bareRecv[v] = true
				return true
			}
		case *ast.CallExpr:
			// close/cap/len keep the channel local; anything else is an
			// escape (the callee may send, receive, or retain it).
			if fn, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[fn].(*types.Builtin); ok {
					switch b.Name() {
					case "close":
						f.sendsOrClose[v] = true
						return true
					case "cap", "len":
						return true
					}
				}
			}
			f.escapes[v] = true
		case *ast.AssignStmt:
			// The defining make assignment binds the var on the left; the
			// channel appearing on the right aliases it away.
			for _, rhs := range p.Rhs {
				if rhs == ast.Expr(id) {
					f.escapes[v] = true
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.IndexExpr:
			f.escapes[v] = true
		}
		return true
	})
	return f
}

// makeChanCap matches a make(chan T[, n]) expression, returning the
// constant capacity (0 for the two-argument-less form). Non-constant
// capacities report !ok — the channel stays unresolved.
func makeChanCap(pkg *Package, e ast.Expr) (int64, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return 0, false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return 0, false
	}
	if len(call.Args) == 0 {
		return 0, false
	}
	t := exprType(pkg.Info, call)
	if t == nil {
		return 0, false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return 0, false
	}
	if len(call.Args) == 1 {
		return 0, true
	}
	tv, ok := pkg.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return 0, false
	}
	n, err := strconv.ParseInt(tv.Value.ExactString(), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
