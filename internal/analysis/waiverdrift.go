package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// WaiverDrift keeps the annotation contract honest: a waiver that no
// longer suppresses anything is a lie waiting to hide a future
// regression. It re-runs the suppressing analyzers (hotpath, lockscope,
// goleak, detorder, cowsafe, pubinit, sharedcap, errsink, ctxflow,
// lifecycle) in tracking mode, then reports:
//
//   - every //apollo:allocok, //apollo:lockok, //apollo:coldpath,
//     //apollo:goleakok, //apollo:detorderok, //apollo:cowok,
//     //apollo:sharedcapok, //apollo:errok, or //apollo:ctxok directive
//     that did not suppress a single diagnostic (for coldpath: that no
//     hot-path traversal stopped at);
//   - every //apollo:blocking function whose body provably cannot block
//     (no channel operation, mutex acquisition, blocking external call,
//     or transitively blocking module callee), so stale blocking
//     annotations stop poisoning hot-path and lock-scope checks.
var WaiverDrift = &Analyzer{
	Name: "waiverdrift",
	Doc:  "waiver and blocking annotations must still be live",
	Run:  runWaiverDrift,
}

func runWaiverDrift(prog *Program) []Diagnostic {
	uses := &waiverUse{}
	_ = runHotPathTracked(prog, uses)
	_ = runLockScopeTracked(prog, uses)
	_ = runGoLeakTracked(prog, uses)
	_ = runDetOrderTracked(prog, uses)
	_ = runCowSafeTracked(prog, uses)
	_ = runPubInitTracked(prog, uses)
	_ = runSharedCapTracked(prog, uses)
	_ = runErrSinkTracked(prog, uses)
	_ = runCtxFlowTracked(prog, uses)
	_ = runLifecycleTracked(prog, uses)

	waiverDirs := map[string]bool{
		dirAllocOK:     true,
		dirLockOK:      true,
		dirColdPath:    true,
		dirGoLeakOK:    true,
		dirDetOrderOK:  true,
		dirCowOK:       true,
		dirSharedCapOK: true,
		dirErrOK:       true,
		dirCtxOK:       true,
	}
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, grp := range file.Comments {
				for _, d := range parseDirectives(grp) {
					if !waiverDirs[d.name] || uses.isUsed(d.pos) {
						continue
					}
					diags = append(diags, Diagnostic{
						Pos:      prog.Fset.Position(d.pos),
						Analyzer: "waiverdrift",
						Message:  fmt.Sprintf("stale //apollo:%s waiver: it no longer suppresses any diagnostic; delete it", d.name),
					})
				}
			}
		}
	}

	// Blocking truthfulness: //apollo:blocking on a function that cannot
	// block misreports every caller.
	g := buildGraph(prog)
	bt := &blockTruth{g: g, memo: map[*types.Func]bool{}, visiting: map[*types.Func]bool{}}
	var fis []*funcInfo
	for _, fi := range g.funcs {
		if fi.blocking {
			fis = append(fis, fi)
		}
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })
	for _, fi := range fis {
		if fi.decl.Body == nil {
			continue // bodyless declarations keep the annotation on trust
		}
		if !bt.mayBlock(fi) {
			diags = append(diags, Diagnostic{
				Pos:      prog.Fset.Position(fi.blockingPos),
				Analyzer: "waiverdrift",
				Message: fmt.Sprintf("stale //apollo:blocking on %s: the body cannot block (no channel op, lock, or blocking call); remove the annotation",
					displayName(fi.obj)),
			})
		}
	}
	return diags
}

// blockTruth decides whether a function body can actually block:
// channel operations, mutex acquisition, blocking external calls, or a
// transitively blocking module callee (through static calls and
// interface dispatch onto module implementations).
type blockTruth struct {
	g        *graph
	memo     map[*types.Func]bool
	visiting map[*types.Func]bool
}

func (bt *blockTruth) mayBlock(fi *funcInfo) bool {
	if v, ok := bt.memo[fi.obj]; ok {
		return v
	}
	if bt.visiting[fi.obj] {
		return false // recursion cycles resolve to non-blocking
	}
	bt.visiting[fi.obj] = true
	defer delete(bt.visiting, fi.obj)

	blocks := false
	if fi.decl.Body != nil {
		bindings := methodBindings(fi.pkg, fi.decl.Body)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if blocks {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt, *ast.SelectStmt, *ast.GoStmt:
				blocks = true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocks = true
				}
			case *ast.RangeStmt:
				if t := exprType(fi.pkg.Info, n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						blocks = true
					}
				}
			case *ast.CallExpr:
				if _, op, ok := lockCallExpr(fi.pkg, n); ok {
					if op == "Lock" || op == "RLock" {
						blocks = true
					}
					return true
				}
				callees, ext := bt.g.resolve(fi.pkg, bindings, n)
				if ext != nil {
					if blockingExternal(ext) != "" {
						blocks = true
					}
					return true
				}
				for _, c := range callees {
					if c.fn.blocking && c.fn.obj != fi.obj {
						blocks = true
						return false
					}
					if bt.mayBlock(c.fn) {
						blocks = true
						return false
					}
				}
			}
			return true
		})
	}
	bt.memo[fi.obj] = blocks
	return blocks
}
