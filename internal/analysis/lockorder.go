package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// LockOrder enforces a declared global lock ordering. A mutex's identity
// is the field or variable object it is declared as (rendered as the
// package-qualified path, e.g. "apollo/internal/server.Server.spoolMu");
// the declaration may carry //apollo:lockrank N. The analyzer builds the
// global acquisition graph — every place lock B is taken while lock A is
// held, lexically or through module-internal calls resolved by the call
// graph — and reports:
//
//   - acquiring a lock that is already held (self-deadlock);
//   - a nested acquisition where both locks are ranked but the inner
//     rank does not strictly increase;
//   - a nested acquisition involving an unranked mutex (the order must
//     be declared, not incidental);
//   - any cycle in the acquisition graph.
//
// Interface dispatch is not followed when summarizing callee
// acquisitions (a dynamic callee would add speculative edges);
// anonymous embedded mutexes are skipped because they have no
// field identity of their own.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "nested mutex acquisitions must follow declared //apollo:lockrank order and be acyclic",
	Run:  runLockOrder,
}

func runLockOrder(prog *Program) []Diagnostic {
	g := buildGraph(prog)
	s := &lockOrderScanner{
		g:        g,
		acq:      map[*types.Func]map[*types.Var][]string{},
		visiting: map[*types.Func]bool{},
		edgeSeen: map[[2]*types.Var]bool{},
	}
	s.ranks, s.names = collectLockRanks(prog, &s.diags)

	var fis []*funcInfo
	for _, fi := range g.funcs {
		fis = append(fis, fi)
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })
	for _, fi := range fis {
		if fi.decl.Body == nil {
			continue
		}
		s.bindings = methodBindings(fi.pkg, fi.decl.Body)
		s.scanStmts(fi, fi.decl.Body.List, map[*types.Var]bool{})
	}

	s.checkEdges()
	return s.diags
}

// collectLockRanks scans every mutex-typed struct field and package
// variable declaration for //apollo:lockrank directives, returning the
// declared ranks and a display name for every declared mutex. Malformed
// directives are reported into diags.
func collectLockRanks(prog *Program, diags *[]Diagnostic) (map[*types.Var]int, map[*types.Var]string) {
	ranks := map[*types.Var]int{}
	names := map[*types.Var]string{}
	report := func(pos token.Pos, format string, args ...any) {
		*diags = append(*diags, Diagnostic{
			Pos:      prog.Fset.Position(pos),
			Analyzer: "lockorder",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	declare := func(pkg *Package, idents []*ast.Ident, owner string, dirs []directive) {
		var rank int
		var rankPos token.Pos
		hasRank := false
		for _, d := range dirs {
			if d.name != dirLockRank {
				continue
			}
			// Only the first field is the rank; anything after it is a
			// free-form reason, matching the other directives.
			fields := strings.Fields(d.args)
			if len(fields) == 0 {
				report(d.pos, "malformed //apollo:lockrank %q: argument must be an integer", d.args)
				continue
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil {
				report(d.pos, "malformed //apollo:lockrank %q: argument must be an integer", fields[0])
				continue
			}
			rank, rankPos, hasRank = n, d.pos, true
		}
		for _, id := range idents {
			v, ok := pkg.Info.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			if !isMutexType(v.Type()) {
				if hasRank {
					report(rankPos, "//apollo:lockrank on %s, which is not a sync.Mutex or sync.RWMutex", id.Name)
				}
				continue
			}
			name := pkg.Types.Path() + "." + id.Name
			if owner != "" {
				name = pkg.Types.Path() + "." + owner + "." + id.Name
			}
			names[v] = name
			if hasRank {
				ranks[v] = rank
			}
		}
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						st, ok := sp.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, f := range st.Fields.List {
							declare(pkg, f.Names, sp.Name.Name, parseDirectives(f.Doc, f.Comment))
						}
					case *ast.ValueSpec:
						if gd.Tok != token.VAR {
							continue
						}
						declare(pkg, sp.Names, "", parseDirectives(gd.Doc, sp.Doc, sp.Comment))
					}
				}
			}
		}
	}
	return ranks, names
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// resolveLockIdent maps a lock receiver expression to the field or
// variable object that identifies the lock class, nil when the identity
// is dynamic (map element, anonymous embed, interface).
func resolveLockIdent(pkg *Package, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			if sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v
				}
			}
			return nil
		}
		// Package-qualified variable (pkg.Mu).
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return resolveLockIdent(pkg, e.X)
		}
	}
	return nil
}

// lockEdge records one observed nested acquisition: to was acquired
// while from was held.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
	chain    []string // module call path when the acquisition is via a call
}

type lockOrderScanner struct {
	g        *graph
	ranks    map[*types.Var]int
	names    map[*types.Var]string
	acq      map[*types.Func]map[*types.Var][]string
	visiting map[*types.Func]bool
	bindings map[types.Object]*types.Func

	edges    []lockEdge
	edgeSeen map[[2]*types.Var]bool
	diags    []Diagnostic
}

// lockName renders a lock identity for diagnostics.
func (s *lockOrderScanner) lockName(v *types.Var) string {
	if n, ok := s.names[v]; ok {
		return n
	}
	if v.Pkg() != nil {
		return v.Pkg().Path() + "." + v.Name()
	}
	return v.Name()
}

func (s *lockOrderScanner) report(pos token.Pos, chain []string, format string, args ...any) {
	s.diags = append(s.diags, Diagnostic{
		Pos:      s.g.prog.Fset.Position(pos),
		Analyzer: "lockorder",
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

func (s *lockOrderScanner) addEdge(from, to *types.Var, pos token.Pos, chain []string) {
	key := [2]*types.Var{from, to}
	if s.edgeSeen[key] {
		return
	}
	s.edgeSeen[key] = true
	s.edges = append(s.edges, lockEdge{from: from, to: to, pos: pos, chain: chain})
}

// scanStmts walks a statement sequence in execution order, maintaining
// the set of held lock identities. Nested control-flow blocks inherit a
// copy of the held set; function literals start fresh (they run later,
// on their own goroutine or deferred).
func (s *lockOrderScanner) scanStmts(fi *funcInfo, stmts []ast.Stmt, held map[*types.Var]bool) {
	for _, stmt := range stmts {
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if expr, op, ok := lockCallExpr(fi.pkg, es.X); ok {
				v := resolveLockIdent(fi.pkg, expr)
				if v == nil {
					continue
				}
				switch op {
				case "Lock", "RLock":
					if held[v] {
						s.report(stmt.Pos(), nil, "acquires %s while it is already held (self-deadlock)", s.lockName(v))
						continue
					}
					for a := range held {
						s.addEdge(a, v, stmt.Pos(), nil)
					}
					held[v] = true
				case "Unlock", "RUnlock":
					delete(held, v)
				}
				continue
			}
		}
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if _, op, ok := lockCallExpr(fi.pkg, d.Call); ok && (op == "Unlock" || op == "RUnlock") {
				// defer x.Unlock(): the lock stays held to the end of the
				// lexical region, which the held set already models.
				continue
			}
		}
		if len(held) > 0 {
			s.checkCallsUnder(fi, stmt, held)
		}
		for _, body := range flowBlocks(stmt) {
			s.scanStmts(fi, body, copyHeldVars(held))
		}
		for _, lit := range topFuncLits(stmt) {
			s.scanStmts(fi, lit.Body.List, map[*types.Var]bool{})
		}
	}
}

// checkCallsUnder inspects one statement's own expressions (not its
// nested blocks or function literals) for module calls that acquire
// locks, adding edges from every held lock.
func (s *lockOrderScanner) checkCallsUnder(fi *funcInfo, stmt ast.Stmt, held map[*types.Var]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, _, ok := lockCallExpr(fi.pkg, n); ok {
				return true // handled at statement level
			}
			callees, _ := s.g.resolve(fi.pkg, s.bindings, n)
			for _, c := range callees {
				if c.viaInterface != "" {
					continue
				}
				for v, path := range s.acquires(c.fn) {
					chain := append([]string{displayName(fi.obj)}, path...)
					if held[v] {
						s.report(n.Pos(), chain, "call acquires %s while it is already held (self-deadlock)", s.lockName(v))
						continue
					}
					for a := range held {
						s.addEdge(a, v, n.Pos(), chain)
					}
				}
			}
		}
		return true
	})
}

// acquires summarizes which lock identities a function may acquire,
// transitively through statically resolved module callees. The value is
// the module call path from fi to the acquisition, for diagnostics.
func (s *lockOrderScanner) acquires(fi *funcInfo) map[*types.Var][]string {
	if m, ok := s.acq[fi.obj]; ok {
		return m
	}
	if s.visiting[fi.obj] {
		return nil
	}
	s.visiting[fi.obj] = true
	defer delete(s.visiting, fi.obj)

	out := map[*types.Var][]string{}
	if fi.decl.Body != nil {
		bindings := methodBindings(fi.pkg, fi.decl.Body)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if expr, op, ok := lockCallExpr(fi.pkg, n); ok {
					if op == "Lock" || op == "RLock" {
						if v := resolveLockIdent(fi.pkg, expr); v != nil {
							if _, seen := out[v]; !seen {
								out[v] = []string{displayName(fi.obj)}
							}
						}
					}
					return true
				}
				callees, _ := s.g.resolve(fi.pkg, bindings, n)
				for _, c := range callees {
					if c.viaInterface != "" {
						continue
					}
					for v, path := range s.acquires(c.fn) {
						if _, seen := out[v]; !seen {
							out[v] = append([]string{displayName(fi.obj)}, path...)
						}
					}
				}
			}
			return true
		})
	}
	s.acq[fi.obj] = out
	return out
}

// checkEdges validates the collected acquisition graph: cycles first
// (rank checks on a cyclic edge would be redundant noise), then rank
// monotonicity, then undeclared nestings.
func (s *lockOrderScanner) checkEdges() {
	adj := map[*types.Var][]*types.Var{}
	for _, e := range s.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, e := range s.edges {
		if path := s.findPath(adj, e.to, e.from); path != nil {
			cycle := make([]string, 0, len(path)+1)
			cycle = append(cycle, s.lockName(e.from))
			for _, v := range path {
				cycle = append(cycle, s.lockName(v))
			}
			s.report(e.pos, e.chain, "lock-order cycle: %s", joinArrow(cycle))
			continue
		}
		rf, okf := s.ranks[e.from]
		rt, okt := s.ranks[e.to]
		switch {
		case okf && okt:
			if rt <= rf {
				s.report(e.pos, e.chain,
					"acquires %s (lockrank %d) while holding %s (lockrank %d): nested acquisitions must strictly increase the rank",
					s.lockName(e.to), rt, s.lockName(e.from), rf)
			}
		default:
			s.report(e.pos, e.chain,
				"nested lock acquisition without a declared order: holding %s while acquiring %s; annotate both mutexes with //apollo:lockrank",
				s.lockName(e.from), s.lockName(e.to))
		}
	}
}

// findPath returns the lock sequence from -> ... -> to along acquisition
// edges (inclusive of both ends), nil if unreachable.
func (s *lockOrderScanner) findPath(adj map[*types.Var][]*types.Var, from, to *types.Var) []*types.Var {
	seen := map[*types.Var]bool{}
	var dfs func(v *types.Var) []*types.Var
	dfs = func(v *types.Var) []*types.Var {
		if v == to {
			return []*types.Var{v}
		}
		if seen[v] {
			return nil
		}
		seen[v] = true
		for _, next := range adj[v] {
			if p := dfs(next); p != nil {
				return append([]*types.Var{v}, p...)
			}
		}
		return nil
	}
	return dfs(from)
}

func joinArrow(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " -> "
		}
		out += n
	}
	return out
}

func copyHeldVars(held map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(held))
	for v := range held {
		out[v] = true
	}
	return out
}

// flowBlocks returns the same-goroutine statement blocks nested directly
// inside a statement (if/for/range/switch/select bodies and bare
// blocks). Function literals are deliberately excluded — they execute
// later, with their own lock context.
func flowBlocks(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, st.List)
	case *ast.IfStmt:
		out = append(out, st.Body.List)
		if st.Else != nil {
			out = append(out, flowBlocks(st.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, st.Body.List)
	case *ast.RangeStmt:
		out = append(out, st.Body.List)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, flowBlocks(st.Stmt)...)
	}
	return out
}

// topFuncLits collects the function literals syntactically inside a
// statement but outside its nested flow blocks (those are collected when
// the blocks themselves are scanned).
func topFuncLits(stmt ast.Stmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			return false
		case *ast.FuncLit:
			out = append(out, n)
			return false
		}
		return true
	})
	return out
}
