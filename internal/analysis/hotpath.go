package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotPath enforces the //apollo:hotpath contract: annotated functions
// and their transitive module-internal callees must not allocate,
// acquire mutexes, touch channels, or call time.Now / fmt.* / log.* /
// //apollo:blocking functions. Traversal resolves direct calls, method
// calls, locally bound method values, and interface dispatch onto
// module-local concrete implementations; it stops at functions
// annotated //apollo:coldpath (rare, amortized paths), and a single
// finding can be waived with a line-level //apollo:allocok reason.
var HotPath = &Analyzer{
	Name:       "hotpath",
	Doc:        "hot-path functions must be allocation-free and lock-free",
	Run:        runHotPath,
	runTracked: runHotPathTracked,
}

func runHotPath(prog *Program) []Diagnostic {
	return runHotPathTracked(prog, nil)
}

// runHotPathTracked is runHotPath with waiver-use tracking: every
// //apollo:allocok that suppresses a finding and every //apollo:coldpath
// that stops a traversal is recorded in uses (nil disables tracking).
func runHotPathTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	var roots []*funcInfo
	for _, fi := range g.funcs {
		if fi.hot {
			roots = append(roots, fi)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].decl.Pos() < roots[j].decl.Pos() })

	h := &hotWalker{g: g, visited: map[*types.Func]bool{}, uses: uses}
	for _, root := range roots {
		h.walk(root, nil)
	}
	return h.diags
}

type hotWalker struct {
	g       *graph
	visited map[*types.Func]bool
	uses    *waiverUse
	diags   []Diagnostic
}

// walk checks one function reached from a hot root and recurses into its
// module-internal callees. Each function is checked once; the first
// chain that reaches it is the one reported.
func (h *hotWalker) walk(fi *funcInfo, chain []string) {
	if h.visited[fi.obj] {
		return
	}
	h.visited[fi.obj] = true
	chain = append(chain[:len(chain):len(chain)], displayName(fi.obj))
	if fi.decl.Body == nil {
		return
	}

	pkg := fi.pkg
	info := pkg.Info
	fset := h.g.prog.Fset
	lines := lineDirectives(fset, fi.file)
	parents := parentsOf(fi.decl.Body)
	bindings := methodBindings(pkg, fi.decl.Body)

	report := func(pos token.Pos, format string, args ...any) {
		h.diags = append(h.diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "hotpath",
			Message:  fmt.Sprintf(format, args...),
			Chain:    chain,
		})
	}
	allocOK := func(pos token.Pos) bool {
		return suppressedBy(lines, fset, pos, dirAllocOK, h.uses)
	}

	var edges []hotEdge

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			h.checkCall(fi, n, parents, bindings, report, allocOK, &edges)
		case *ast.SendStmt:
			report(n.Pos(), "channel send on the hot path")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive on the hot path")
			}
		case *ast.SelectStmt:
			report(n.Pos(), "select statement on the hot path")
		case *ast.GoStmt:
			report(n.Pos(), "go statement on the hot path (allocates and schedules a goroutine)")
		case *ast.RangeStmt:
			if t := exprType(info, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n.Pos(), "range over channel on the hot path")
				}
			}
		case *ast.CompositeLit:
			h.checkCompositeLit(fi, n, parents, report, allocOK)
		case *ast.FuncLit:
			h.checkCapture(fi, n, report, allocOK)
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					h.checkBox(fi, n.Rhs[i], exprType(info, n.Lhs[i]), report, allocOK)
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				target := exprType(info, n.Type)
				for _, v := range n.Values {
					h.checkBox(fi, v, target, report, allocOK)
				}
			}
		case *ast.ReturnStmt:
			h.checkReturn(fi, n, parents, report, allocOK)
		}
		return true
	})

	for _, e := range edges {
		next := chain
		if e.via != "" {
			next = append(chain[:len(chain):len(chain)], "["+e.via+"]")
		}
		h.walk(e.target, next)
	}
}

// checkCall handles one call site: builtin allocators, banned
// string/byte conversions, banned external calls, //apollo:blocking
// callees, and call-graph edges into the module.
func (h *hotWalker) checkCall(fi *funcInfo, call *ast.CallExpr, parents map[ast.Node]ast.Node,
	bindings map[types.Object]*types.Func,
	report func(token.Pos, string, ...any), allocOK func(token.Pos) bool,
	edges *[]hotEdge) {
	info := fi.pkg.Info
	fun := ast.Unparen(call.Fun)

	// Type conversions: string <-> []byte/[]rune copy their operand.
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		h.checkConversion(fi, call, tv.Type, parents, report, allocOK)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !allocOK(call.Pos()) {
					report(call.Pos(), "make allocates on the hot path")
				}
			case "new":
				if !allocOK(call.Pos()) {
					report(call.Pos(), "new allocates on the hot path")
				}
			case "append":
				if !allocOK(call.Pos()) {
					report(call.Pos(), "append may grow and allocate on the hot path")
				}
			case "close":
				report(call.Pos(), "channel close on the hot path")
			}
			return
		}
	}

	// Boxing of arguments into interface parameters.
	if sig, ok := typeAsSignature(info, fun); ok {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis != token.NoPos {
					continue
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			}
			h.checkBox(fi, arg, pt, report, allocOK)
		}
	}

	callees, ext := h.g.resolve(fi.pkg, bindings, call)
	if ext != nil {
		if reason := bannedExternal(ext); reason != "" {
			report(call.Pos(), "%s", reason)
		}
		return
	}
	for _, c := range callees {
		if c.fn.blocking {
			via := ""
			if c.viaInterface != "" {
				via = " via " + c.viaInterface
			}
			report(call.Pos(), "calls //apollo:blocking function %s%s", displayName(c.fn.obj), via)
			continue
		}
		if c.fn.cold {
			h.uses.mark(c.fn.coldPos)
			continue
		}
		*edges = append(*edges, hotEdge{target: c.fn, via: c.viaInterface})
	}
}

// hotEdge is one traversal edge from a hot function into a module callee.
type hotEdge struct {
	target *funcInfo
	via    string
}

// checkConversion flags string <-> byte/rune-slice conversions, except a
// string(b) used directly as a map lookup key, which the compiler
// performs without copying.
func (h *hotWalker) checkConversion(fi *funcInfo, call *ast.CallExpr, dst types.Type,
	parents map[ast.Node]ast.Node, report func(token.Pos, string, ...any), allocOK func(token.Pos) bool) {
	info := fi.pkg.Info
	src := exprType(info, call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isString(dst) && isByteOrRuneSlice(src):
		if mapIndexRead(info, call, parents) || allocOK(call.Pos()) {
			return
		}
		report(call.Pos(), "string(%s) conversion copies on the hot path", types.TypeString(src, shortQualifier))
	case isByteOrRuneSlice(dst) && isString(src):
		if allocOK(call.Pos()) {
			return
		}
		report(call.Pos(), "%s(string) conversion copies on the hot path", types.TypeString(dst, shortQualifier))
	}
}

// mapIndexRead reports whether the expression is the key of a map read
// (m[k] as an rvalue), where string([]byte) does not allocate.
func mapIndexRead(info *types.Info, key ast.Expr, parents map[ast.Node]ast.Node) bool {
	ie, ok := parents[key].(*ast.IndexExpr)
	if !ok || ie.Index != key {
		return false
	}
	t := exprType(info, ie.X)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return false
	}
	if assign, ok := parents[ie].(*ast.AssignStmt); ok {
		for _, lhs := range assign.Lhs {
			if lhs == ie {
				return false // m[string(b)] = v retains the key
			}
		}
	}
	return true
}

// checkCompositeLit flags heap-bound composite literals: every slice or
// map literal, and every &T{} literal (which escapes by construction on
// these paths).
func (h *hotWalker) checkCompositeLit(fi *funcInfo, lit *ast.CompositeLit,
	parents map[ast.Node]ast.Node, report func(token.Pos, string, ...any), allocOK func(token.Pos) bool) {
	t := exprType(fi.pkg.Info, lit)
	if t == nil || allocOK(lit.Pos()) {
		return
	}
	if u, ok := parents[lit].(*ast.UnaryExpr); ok && u.Op == token.AND {
		report(lit.Pos(), "&%s literal allocates on the hot path", types.TypeString(t, shortQualifier))
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		report(lit.Pos(), "slice literal allocates on the hot path")
	case *types.Map:
		report(lit.Pos(), "map literal allocates on the hot path")
	}
}

// checkCapture flags closures that capture variables from the enclosing
// function: a capturing closure value allocates.
func (h *hotWalker) checkCapture(fi *funcInfo, lit *ast.FuncLit,
	report func(token.Pos, string, ...any), allocOK func(token.Pos) bool) {
	if allocOK(lit.Pos()) {
		return
	}
	info := fi.pkg.Info
	captured := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return true
		}
		// A variable declared inside the enclosing function but outside
		// the literal is a capture.
		if v.Pos() >= fi.decl.Pos() && v.Pos() < fi.decl.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) && !captured[v.Name()] {
			captured[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	if len(names) > 0 {
		sort.Strings(names)
		report(lit.Pos(), "closure captures %v and allocates on the hot path", names)
	}
}

// checkBox flags implicit boxing: a concrete non-pointer-shaped value
// converted to an interface allocates.
func (h *hotWalker) checkBox(fi *funcInfo, expr ast.Expr, target types.Type,
	report func(token.Pos, string, ...any), allocOK func(token.Pos) bool) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	info := fi.pkg.Info
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	at := tv.Type
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, ok := at.Underlying().(*types.Interface); ok {
		return
	}
	if pointerShaped(at) || allocOK(expr.Pos()) {
		return
	}
	report(expr.Pos(), "%s boxed into %s allocates on the hot path",
		types.TypeString(at, shortQualifier), types.TypeString(target, shortQualifier))
}

// checkReturn flags boxing in return statements against the enclosing
// function (or closure) signature.
func (h *hotWalker) checkReturn(fi *funcInfo, ret *ast.ReturnStmt,
	parents map[ast.Node]ast.Node, report func(token.Pos, string, ...any), allocOK func(token.Pos) bool) {
	if len(ret.Results) == 0 {
		return
	}
	sig := fi.obj.Type().(*types.Signature)
	for n := parents[ast.Node(ret)]; n != nil; n = parents[n] {
		if lit, ok := n.(*ast.FuncLit); ok {
			if t := exprType(fi.pkg.Info, lit); t != nil {
				if s, ok := t.Underlying().(*types.Signature); ok {
					sig = s
				}
			}
			break
		}
	}
	if sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		h.checkBox(fi, r, sig.Results().At(i).Type(), report, allocOK)
	}
}

// bannedExternal classifies calls to out-of-module functions that are
// forbidden on hot paths, returning "" for permitted calls.
func bannedExternal(obj *types.Func) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	name := obj.Name()
	recv := receiverBaseName(obj)
	switch pkg.Path() {
	case "fmt":
		return "calls fmt." + name + " on the hot path"
	case "log", "log/slog":
		return "calls " + pkg.Path() + "." + name + " on the hot path"
	case "time":
		switch name {
		case "Now", "Since", "Until", "Sleep", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
			return "calls time." + name + " on the hot path"
		}
	case "sync":
		switch recv + "." + name {
		case "Mutex.Lock", "Mutex.Unlock", "Mutex.TryLock":
			return "acquires sync.Mutex (" + name + ") on the hot path"
		case "RWMutex.Lock", "RWMutex.Unlock", "RWMutex.RLock", "RWMutex.RUnlock",
			"RWMutex.TryLock", "RWMutex.TryRLock", "RWMutex.RLocker":
			return "acquires sync.RWMutex (" + name + ") on the hot path"
		case "WaitGroup.Wait", "Cond.Wait":
			return "blocks on sync." + recv + "." + name + " on the hot path"
		}
	case "os", "net", "net/http", "io/fs", "os/exec", "database/sql", "syscall":
		return "I/O call " + pkg.Path() + "." + name + " on the hot path"
	}
	return ""
}

// receiverBaseName returns the receiver's named-type name ("" for
// top-level functions).
func receiverBaseName(obj *types.Func) string {
	sig := obj.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// Shared small type helpers.

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func typeAsSignature(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	t := exprType(info, fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
