package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// ErrSink enforces the failure-path contract: every error value must
// reach a sink — returned to the caller, logged on a cold path, or
// counted into a metric. It reports:
//
//   - an error result discarded into the blank identifier (`_ = err`,
//     `v, _ := f()`);
//   - a call used as a statement whose results include an error, unless
//     the callee is infallible by contract (fmt print family,
//     strings.Builder / bytes.Buffer / hash.Hash writes) — deferred
//     calls and `go` statements are exempt (their errors have no
//     receiver by construction and are covered by review);
//   - an error variable that is assigned but never read on any path
//     (covers accidental shadowing: the dead outer variable is the
//     diagnostic);
//   - an error variable whose only reads forward it to module functions
//     that provably never observe the parameter (via the errReads
//     summary over the call graph).
//
// //apollo:errok <reason> on the offending line waives one finding;
// waiverdrift reports the directive when it goes stale.
var ErrSink = &Analyzer{
	Name:       "errsink",
	Doc:        "every error value must reach a sink (return, cold-path log, or metric)",
	Run:        runErrSink,
	runTracked: runErrSinkTracked,
}

func runErrSink(prog *Program) []Diagnostic {
	return runErrSinkTracked(prog, nil)
}

func runErrSinkTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	er := newErrReads(g)
	var fis []*funcInfo
	for _, fi := range g.funcs {
		if fi.decl.Body != nil {
			fis = append(fis, fi)
		}
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })
	var diags []Diagnostic
	for _, fi := range fis {
		diags = append(diags, errSinkCheckFunc(prog, g, er, fi, uses)...)
	}
	return diags
}

// errSinkCheckFunc scans one function body (closures included) for
// discarded errors.
func errSinkCheckFunc(prog *Program, g *graph, er *errReads, fi *funcInfo, uses *waiverUse) []Diagnostic {
	var diags []Diagnostic
	lines := lineDirectives(prog.Fset, fi.file)
	report := func(pos ast.Node, format string, args ...any) {
		if suppressedBy(lines, prog.Fset, pos.Pos(), dirErrOK, uses) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos.Pos()),
			Analyzer: "errsink",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	info := fi.pkg.Info
	parents := parentsOf(fi.decl.Body)
	bindings := methodBindings(fi.pkg, fi.decl.Body)

	// Named results are implicitly read by every return.
	namedResults := map[*types.Var]bool{}
	if fi.decl.Type.Results != nil {
		for _, f := range fi.decl.Type.Results.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					namedResults[v] = true
				}
			}
		}
	}

	type varState struct {
		def       *ast.Ident
		reads     int
		discards  []string // module callees that ignore the forwarded error
		forwarded int
	}
	tracked := map[*types.Var]*varState{}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			diags = append(diags, errBlankDiscards(prog, fi, lines, uses, n)...)
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			hasErr := false
			for _, t := range callResults(info, call) {
				if isErrorType(t) {
					hasErr = true
				}
			}
			if !hasErr {
				return true
			}
			_, ext := g.resolve(fi.pkg, bindings, call)
			if ext != nil && infallibleExternal(ext) {
				return true
			}
			if infallibleReceiver(fi.pkg, call) {
				return true
			}
			report(n, "error result of %s is silently dropped; return it, log it cold-path, or count it", types.ExprString(call.Fun))
		case *ast.Ident:
			// Definitions open tracking; uses close it.
			if v, ok := info.Defs[n].(*types.Var); ok {
				if !isErrorType(v.Type()) || namedResults[v] {
					return true
				}
				if _, isField := parents[n].(*ast.Field); isField {
					return true // parameters/results: covered by errReads
				}
				if n.Name == "_" {
					return true // blank defs handled per-assignment
				}
				tracked[v] = &varState{def: n}
				return true
			}
			v, ok := info.Uses[n].(*types.Var)
			if !ok {
				return true
			}
			st, ok := tracked[v]
			if !ok {
				return true
			}
			switch p := parents[n].(type) {
			case *ast.AssignStmt:
				for _, lhs := range p.Lhs {
					if lhs == ast.Expr(n) {
						return true // overwrite, not a read
					}
				}
			case *ast.CallExpr:
				if p.Fun != ast.Expr(n) {
					if callee := deadErrForward(g, er, fi, bindings, p, n); callee != "" {
						st.forwarded++
						st.discards = append(st.discards, callee)
						return true
					}
				}
			}
			st.reads++
		}
		return true
	})

	var vars []*types.Var
	for v := range tracked {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return tracked[vars[i]].def.Pos() < tracked[vars[j]].def.Pos() })
	for _, v := range vars {
		st := tracked[v]
		switch {
		case st.reads == 0 && st.forwarded == 0:
			report(st.def, "error %s is assigned but never read (discarded or shadowed); check it or waive with //apollo:errok", v.Name())
		case st.reads == 0:
			report(st.def, "error %s only flows to %s, which never observes its error parameter", v.Name(), st.discards[0])
		}
	}
	return diags
}

// errBlankDiscards reports error results assigned to the blank
// identifier in one assignment.
func errBlankDiscards(prog *Program, fi *funcInfo, lines map[int][]directive, uses *waiverUse, n *ast.AssignStmt) []Diagnostic {
	info := fi.pkg.Info
	var diags []Diagnostic
	report := func(pos ast.Node, what string) {
		if suppressedBy(lines, prog.Fset, pos.Pos(), dirErrOK, uses) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos.Pos()),
			Analyzer: "errsink",
			Message:  fmt.Sprintf("error result of %s is discarded into _; handle it or waive with //apollo:errok", what),
		})
	}
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		what := "the expression"
		if len(n.Lhs) == len(n.Rhs) {
			t = exprType(info, n.Rhs[i])
			what = types.ExprString(n.Rhs[i])
		} else if len(n.Rhs) == 1 {
			// Multi-value: v, _ := f()
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				results := callResults(info, call)
				if i < len(results) {
					t = results[i]
				}
				what = types.ExprString(call.Fun)
			}
		}
		if isErrorType(t) {
			report(id, what)
		}
	}
	return diags
}

// deadErrForward reports the display name of the callee when passing id
// as an argument provably discards it: every static module callee
// ignores the corresponding error parameter. Empty when the forward is
// (or may be) a real sink.
func deadErrForward(g *graph, er *errReads, fi *funcInfo,
	bindings map[types.Object]*types.Func, call *ast.CallExpr, id *ast.Ident) string {
	callees, ext := g.resolve(fi.pkg, bindings, call)
	if ext != nil || len(callees) == 0 {
		return ""
	}
	argIdx := -1
	for i, v := range callArgVars(fi.pkg, call) {
		if v != nil && v == fi.pkg.Info.Uses[id] {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		return ""
	}
	name := ""
	for _, c := range callees {
		if c.viaInterface != "" {
			return ""
		}
		sub := er.reads(c.fn)
		if argIdx >= len(sub) || sub[argIdx] {
			return ""
		}
		name = displayName(c.fn.obj)
	}
	return name
}
