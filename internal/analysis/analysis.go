// Package analysis is apollo-vet's engine: a from-scratch static-analysis
// driver built directly on the standard library's go/parser and go/types
// (this module is intentionally dependency-free, so the package loader,
// type-checker wiring, diagnostic model, and analyzers are all local —
// no golang.org/x/tools).
//
// The analyzers enforce the runtime invariants Apollo's serving stack is
// built on, turning what used to be prose comments ("lock-free",
// "allocates nothing") into machine-checked annotations:
//
//   - hotpath: functions annotated //apollo:hotpath — and their
//     transitive callees inside the module, through the type-checked
//     call graph including method values and interface dispatch where a
//     module-local concrete type is known — must not allocate, lock,
//     touch channels, or call time.Now / fmt.* / log.* / any
//     //apollo:blocking function;
//   - atomicalign: struct fields passed to 64-bit sync/atomic operations
//     must be 64-bit aligned under 32-bit (GOARCH=386/arm) layout rules;
//   - lockscope: no file/network I/O, channel operation, or
//     //apollo:blocking call while a sync.Mutex/RWMutex is held;
//   - schemahash: feature-name lists referenced by an
//     //apollo:schemahash directive must hash to the golden constant the
//     directive annotates, so silently reordering the feature schema is
//     a vet-time error instead of a serving-time mispredict;
//   - lockorder: nested mutex acquisitions must follow the ranks declared
//     with //apollo:lockrank on the mutex declarations (lock identity is
//     the package-qualified field or variable), and the global
//     acquisition graph must be acyclic;
//   - goleak: spawned goroutines must have a guaranteed exit (no
//     condition-less loop without return/break, no empty select, no bare
//     send on an unbuffered channel) and sound WaitGroup use;
//   - detorder: range-over-map bodies must not feed serialization,
//     hashing, or encoding sinks (nondeterministic model bytes);
//   - cowsafe: values published through atomic.Pointer
//     Store/Swap/CompareAndSwap are frozen — no write through any alias
//     after the publish — and Load results are read-only (the
//     copy-on-write publication discipline, checked through a per-
//     function def-use/alias layer);
//   - pubinit: every write initializing a published value must precede
//     the publish, including call-mediated writes proven through
//     module-wide "mutates its argument" summaries over the call graph;
//   - sharedcap: goroutine closures and stored callbacks must not
//     capture locals the spawner keeps writing after the spawn
//     (unsynchronized shared write);
//   - errsink: every error value must reach a sink — returned, logged on
//     a cold path, or counted into a metric; discards into _, dropped
//     error results of statement calls, and errors forwarded to functions
//     that provably never observe them (through module-wide error-
//     parameter-read summaries over the call graph) are diagnostics;
//   - ctxflow: blocking operations reachable from daemon serve/loop
//     roots (main/run* in main packages, Run/Serve/Start* methods) must
//     be cancellable — no time.Sleep, no bare receive or unbuffered send
//     outside a select, no select without a default or stop-signal case;
//   - lifecycle: every long-running goroutine spawned by a component (a
//     type with a Start*/Run/Serve or Close/Stop/Shutdown method) must be
//     tied to a stop signal the component's Close/Stop provably fires,
//     and firing it must join before returning;
//   - netguard: outbound HTTP must carry deadlines — no http.Get /
//     http.DefaultClient / timeout-less http.Client literal — and retry
//     loops around network calls must route through the jittered backoff
//     helpers (no waiver: every finding has a mechanical fix);
//   - waiverdrift: every waiver directive must still suppress at least
//     one diagnostic, and //apollo:blocking functions must actually be
//     able to block, so the annotation contract cannot rot.
//
// Annotation contract (all are line comments, no space after //):
//
//	//apollo:hotpath                   function is a launch hot path root
//	//apollo:blocking                  function may block (banned from hot
//	                                   paths and from held-lock regions)
//	//apollo:coldpath <reason>         rare/amortized path: hotpath
//	                                   traversal stops here; reason required
//	//apollo:allocok <reason>          suppress one hotpath allocation
//	                                   finding on this line; reason required
//	//apollo:lockok <reason>           suppress lockscope findings for this
//	                                   function or statement; reason required
//	//apollo:schemahash <list> ...     golden schema fingerprint constant;
//	                                   args name the feature lists hashed
//	//apollo:lockrank <N>              on a sync.Mutex/RWMutex field or
//	                                   var declaration: nested acquisitions
//	                                   must strictly increase the rank
//	//apollo:goleakok <reason>         suppress a goleak finding on this
//	                                   line (or the go statement's line)
//	//apollo:detorderok <reason>       suppress a detorder finding on this
//	                                   line (range or sink); reason required
//	//apollo:cowok <reason>            suppress cowsafe/pubinit findings on
//	                                   this line, or on the whole function
//	                                   when placed in its doc comment;
//	                                   reason required
//	//apollo:sharedcapok <reason>      suppress a sharedcap finding on the
//	                                   escape's or the write's line;
//	                                   reason required
//	//apollo:errok <reason>            suppress an errsink finding on this
//	                                   line (deliberate best-effort
//	                                   discard); reason required
//	//apollo:ctxok <reason>            suppress a ctxflow finding on this
//	                                   line, or a lifecycle finding on the
//	                                   go statement's line (deliberately
//	                                   detached goroutine); reason required
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// a message, and (for hotpath findings) the call chain from the
// annotated root to the violating function.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Chain is the call path root -> ... -> violating function, each
	// entry a printable function name. Empty for non-hotpath findings.
	Chain []string
}

// String renders the diagnostic in the classic file:line:col form.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	if len(d.Chain) > 1 {
		s += fmt.Sprintf("\n\tcall chain: %s", strings.Join(d.Chain, " -> "))
	}
	return s
}

// Analyzer is one named pass over a loaded program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Diagnostic
	// runTracked, when set, is Run with waiver-use accounting: every
	// directive that suppresses a finding is recorded in uses. Analyzers
	// without waivers leave it nil.
	runTracked func(prog *Program, uses *waiverUse) []Diagnostic
}

// All returns the full apollo-vet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{HotPath, AtomicAlign, LockScope, SchemaHash,
		LockOrder, GoLeak, DetOrder, CowSafe, PubInit, SharedCap,
		ErrSink, CtxFlow, Lifecycle, NetGuard, WaiverDrift}
}

// ByName returns the analyzers with the given comma-separated names.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, want := range strings.Split(names, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == want {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", want)
		}
	}
	return out, nil
}

// RunAll runs the analyzers in parallel over the program and returns the
// combined diagnostics sorted by position.
func RunAll(prog *Program, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAllStats(prog, analyzers)
	return diags
}

// Stats summarizes one analyzer run for machine consumers (the driver's
// -json summary record and results/BENCH_vet.json).
type Stats struct {
	// PerAnalyzer counts diagnostics by analyzer name; analyzers that
	// ran clean appear with a zero count, so CI diffs see them.
	PerAnalyzer map[string]int
	// WaiversUsed is how many distinct waiver directives suppressed at
	// least one finding during this run (only analyzers with a tracking
	// mode contribute).
	WaiversUsed int
	// PerAnalyzerMS is each analyzer's wall time in milliseconds; the
	// analyzers run concurrently, so entries overlap and do not sum to
	// the run's wall time.
	PerAnalyzerMS map[string]float64
}

// RunAllStats is RunAll plus per-analyzer accounting: analyzers with a
// tracking mode run in it against a shared waiver-use record, so the
// stats report how many waivers are load-bearing right now.
func RunAllStats(prog *Program, analyzers []*Analyzer) ([]Diagnostic, Stats) {
	uses := &waiverUse{}
	results := make([][]Diagnostic, len(analyzers))
	elapsed := make([]time.Duration, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			start := time.Now()
			if a.runTracked != nil {
				results[i] = a.runTracked(prog, uses)
			} else {
				results[i] = a.Run(prog)
			}
			elapsed[i] = time.Since(start)
		}(i, a)
	}
	wg.Wait()
	stats := Stats{PerAnalyzer: map[string]int{}, PerAnalyzerMS: map[string]float64{}}
	var all []Diagnostic
	for i, r := range results {
		stats.PerAnalyzer[analyzers[i].Name] += len(r)
		stats.PerAnalyzerMS[analyzers[i].Name] += float64(elapsed[i].Microseconds()) / 1000
		all = append(all, r...)
	}
	uses.mu.Lock()
	stats.WaiversUsed = len(uses.used)
	uses.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return all, stats
}

// Directive names (the text after "//apollo:").
const (
	dirHotPath     = "hotpath"
	dirBlocking    = "blocking"
	dirColdPath    = "coldpath"
	dirAllocOK     = "allocok"
	dirLockOK      = "lockok"
	dirSchemaHash  = "schemahash"
	dirLockRank    = "lockrank"
	dirGoLeakOK    = "goleakok"
	dirDetOrderOK  = "detorderok"
	dirCowOK       = "cowok"
	dirSharedCapOK = "sharedcapok"
	dirErrOK       = "errok"
	dirCtxOK       = "ctxok"
)

// directive is one parsed //apollo:* comment.
type directive struct {
	name string // "hotpath", "blocking", ...
	args string // trailing text after the name (reason / arguments)
	pos  token.Pos
}

// parseDirectives extracts //apollo:* directives from a comment group.
func parseDirectives(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, "//apollo:")
			if !ok {
				continue
			}
			name, args, _ := strings.Cut(text, " ")
			out = append(out, directive{name: name, args: strings.TrimSpace(args), pos: c.Slash})
		}
	}
	return out
}

// funcDirective reports whether fn's doc comment carries the named
// directive, returning its arguments.
func funcDirective(fn *ast.FuncDecl, name string) (string, bool) {
	args, _, ok := funcDirectivePos(fn, name)
	return args, ok
}

// funcDirectivePos is funcDirective plus the directive comment's
// position, which waiver-use tracking keys on.
func funcDirectivePos(fn *ast.FuncDecl, name string) (string, token.Pos, bool) {
	for _, d := range parseDirectives(fn.Doc) {
		if d.name == name {
			return d.args, d.pos, true
		}
	}
	return "", token.NoPos, false
}

// lineDirectives indexes every //apollo:* directive in a file by the
// line it appears on, for statement-level exemptions (allocok, lockok).
func lineDirectives(fset *token.FileSet, file *ast.File) map[int][]directive {
	out := map[int][]directive{}
	for _, g := range file.Comments {
		for _, d := range parseDirectives(g) {
			line := fset.Position(d.pos).Line
			out[line] = append(out[line], d)
		}
	}
	return out
}

// lineDirectiveAt returns the named directive (with a non-empty reason)
// on the line of pos.
func lineDirectiveAt(lines map[int][]directive, fset *token.FileSet, pos token.Pos, name string) (directive, bool) {
	for _, d := range lines[fset.Position(pos).Line] {
		if d.name == name && d.args != "" {
			return d, true
		}
	}
	return directive{}, false
}

// hasLineDirective reports whether the line of pos carries the named
// directive with a non-empty reason.
func hasLineDirective(lines map[int][]directive, fset *token.FileSet, pos token.Pos, name string) bool {
	_, ok := lineDirectiveAt(lines, fset, pos, name)
	return ok
}

// suppressedBy reports whether a directive on pos's line waives a
// finding, recording the suppression in uses (which may be nil) so
// waiverdrift can tell live waivers from stale ones.
func suppressedBy(lines map[int][]directive, fset *token.FileSet, pos token.Pos, name string, uses *waiverUse) bool {
	d, ok := lineDirectiveAt(lines, fset, pos, name)
	if ok {
		uses.mark(d.pos)
	}
	return ok
}

// waiverUse records which waiver directives actually suppressed a
// diagnostic, keyed by the directive comment's position. A nil tracker
// is valid and records nothing, so analyzers behave identically with
// and without tracking. mark is safe for concurrent analyzer goroutines.
type waiverUse struct {
	mu   sync.Mutex
	used map[token.Pos]bool
}

func (w *waiverUse) mark(pos token.Pos) {
	if w == nil || !pos.IsValid() {
		return
	}
	w.mu.Lock()
	if w.used == nil {
		w.used = map[token.Pos]bool{}
	}
	w.used[pos] = true
	w.mu.Unlock()
}

func (w *waiverUse) isUsed(pos token.Pos) bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.used[pos]
}
