package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicAlign checks that every struct field whose address is passed to
// a 64-bit sync/atomic operation sits at a 64-bit-aligned offset under
// 32-bit (GOARCH=386/arm) struct layout, where the compiler only
// guarantees 4-byte alignment for uint64 fields. It also flags 64-bit
// atomic fields reached through slice or array elements whose element
// size is not a multiple of 8, since every odd element is then
// misaligned. The modern atomic.Int64/Uint64 types self-align and need
// no check; this analyzer covers the raw-field escape hatch.
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit sync/atomic operands must be 64-bit aligned on 32-bit targets",
	Run:  runAtomicAlign,
}

// sizes32 models gc struct layout on GOARCH=386: 4-byte words, maximum
// alignment 4 (the layout under which misalignment bites).
var sizes32 = &types.StdSizes{WordSize: 4, MaxAlign: 4}

// atomic64Funcs are the sync/atomic entry points taking a *int64/*uint64.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

func runAtomicAlign(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isAtomic64Call(pkg, call) {
					return true
				}
				diags = append(diags, checkAtomicOperand(prog, pkg, call)...)
				return true
			})
		}
	}
	return diags
}

// isAtomic64Call reports whether the call targets a 64-bit sync/atomic
// function.
func isAtomic64Call(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	return atomic64Funcs[obj.Name()]
}

// checkAtomicOperand analyzes the &x.f operand of a 64-bit atomic call.
func checkAtomicOperand(prog *Program, pkg *Package, call *ast.CallExpr) []Diagnostic {
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil
	}
	target := ast.Unparen(addr.X)
	off, elem, known := operandOffset(pkg, target)
	if !known {
		return nil
	}
	var diags []Diagnostic
	pos := prog.Fset.Position(addr.Pos())
	if off%8 != 0 {
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Analyzer: "atomicalign",
			Message: fmt.Sprintf("64-bit atomic operand is at offset %d under GOARCH=386 layout, not 64-bit aligned; "+
				"move the field first or use atomic.Int64/Uint64", off),
		})
	}
	if elem != nil {
		if es := sizes32.Sizeof(elem); es%8 != 0 {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "atomicalign",
				Message: fmt.Sprintf("64-bit atomic field reached through a %s element of size %d under GOARCH=386; "+
					"element size must be a multiple of 8 or the field must use atomic.Int64/Uint64",
					types.TypeString(elem, shortQualifier), es),
			})
		}
	}
	return diags
}

// operandOffset computes the byte offset of an lvalue chain (x.a.b,
// x[i].f, ...) within its containing allocation under 386 layout.
// Pointer derefs reset the offset (an allocation start is 64-bit
// aligned by the runtime). The second result is the element type when
// the chain passes through a slice/array index. known is false when the
// expression is not a field chain (a plain variable, a call result).
func operandOffset(pkg *Package, e ast.Expr) (off int64, sliceElem types.Type, known bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := pkg.Info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return 0, nil, false
		}
		baseOff := int64(0)
		var elem types.Type
		// An explicit pointer base (p.f with p a pointer) derefs: the
		// pointee is a fresh allocation, offset restarts at 0.
		if baseT := exprType(pkg.Info, e.X); baseT != nil {
			if _, isPtr := baseT.Underlying().(*types.Pointer); !isPtr {
				baseOff, elem, _ = operandOffset(pkg, e.X)
			}
		}
		selOff, reset := offsetThrough(sel.Recv(), sel.Index())
		if reset {
			return selOff, nil, true
		}
		return baseOff + selOff, elem, true
	case *ast.IndexExpr:
		t := exprType(pkg.Info, e.X)
		if t == nil {
			return 0, nil, false
		}
		switch u := t.Underlying().(type) {
		case *types.Slice:
			return 0, u.Elem(), true
		case *types.Array:
			return 0, u.Elem(), true
		}
		return 0, nil, false
	case *ast.StarExpr:
		return 0, nil, true // deref: fresh allocation start
	case *ast.Ident:
		return 0, nil, true // variable: allocation (or package data) start
	}
	return 0, nil, false
}

// offsetThrough accumulates field offsets along a selection index path,
// resetting (reset=true) when the path crosses an embedded pointer.
func offsetThrough(recv types.Type, index []int) (off int64, reset bool) {
	t := recv
	for _, i := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			off = 0
			reset = true
		}
		s, ok := t.Underlying().(*types.Struct)
		if !ok {
			return off, reset
		}
		fields := make([]*types.Var, s.NumFields())
		for j := 0; j < s.NumFields(); j++ {
			fields[j] = s.Field(j)
		}
		offsets := sizes32.Offsetsof(fields)
		off += offsets[i]
		t = s.Field(i).Type()
	}
	return off, reset
}
