package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe extracts the expectation regexp from a `// want `+"`re`"+“ comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// expectation is one `// want` marker: a diagnostic matching re must be
// reported on this exact line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadExpectations parses every `// want` marker in the Go files under
// dir, keyed by the line the comment sits on.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	var out []*expectation
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read corpus dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), m[1], err)
				}
				pos := fset.Position(c.Pos())
				out = append(out, &expectation{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
			}
		}
	}
	return out
}

// runCorpus loads one testdata module, runs the named analyzers, and
// checks the diagnostics against the module's `// want` markers in both
// directions: every diagnostic must be expected, every expectation met.
func runCorpus(t *testing.T, module string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", module))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", module, err)
	}
	diags := RunAll(prog, analyzers)
	expects := loadExpectations(t, dir)

	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.file == filepath.Base(d.Pos.Filename) && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
	return diags
}

func TestHotPathCorpus(t *testing.T) {
	diags := runCorpus(t, "hotpathmod", []*Analyzer{HotPath})

	// The ISSUE's demonstration case: a time.Now smuggled into a hot
	// function through a module callee must surface with the full call
	// chain, not just the leaf position.
	var chained bool
	for _, d := range diags {
		if strings.Contains(d.Message, "time.") && len(d.Chain) > 1 {
			chained = true
			if got := d.String(); !strings.Contains(got, "call chain:") {
				t.Errorf("chained diagnostic renders without its chain:\n%s", got)
			}
		}
	}
	if !chained {
		t.Error("no transitive time.Now diagnostic carried a call chain")
	}
}

// TestCtreeCorpus pins the compiled-decision-path contract: the flat
// threaded-array walk idiom (including dynamic dispatch of an installed
// predict closure and a coldpath specialization builder) analyzes
// clean, while growing trails, locking the walk, or boxing the class
// produce exactly the marked diagnostics.
func TestCtreeCorpus(t *testing.T) {
	diags := runCorpus(t, "ctreemod", []*Analyzer{HotPath})
	for _, d := range diags {
		for _, clean := range []string{"PredictInstalled", "SwapAndPredict", "newFunc"} {
			for _, link := range d.Chain {
				if strings.Contains(link, clean) {
					t.Errorf("clean function %s implicated: %s", clean, d.String())
				}
			}
		}
	}
}

func TestAtomicAlignCorpus(t *testing.T) {
	runCorpus(t, "atomicmod", []*Analyzer{AtomicAlign})
}

func TestLockScopeCorpus(t *testing.T) {
	runCorpus(t, "lockmod", []*Analyzer{LockScope})
}

func TestSchemaHashCorpus(t *testing.T) {
	runCorpus(t, "schemamod", []*Analyzer{SchemaHash})
}

func TestLockOrderCorpus(t *testing.T) {
	diags := runCorpus(t, "lockordermod", []*Analyzer{LockOrder})

	// A transitive acquisition must carry the module call path so the
	// nesting is traceable without re-deriving the call graph by hand.
	var chained bool
	for _, d := range diags {
		if strings.Contains(d.Message, "lockordermod.muStore") && len(d.Chain) > 1 {
			chained = true
		}
	}
	if !chained {
		t.Error("no call-mediated lock acquisition carried a call chain")
	}
}

func TestGoLeakCorpus(t *testing.T) {
	runCorpus(t, "goleakmod", []*Analyzer{GoLeak})
}

func TestDetOrderCorpus(t *testing.T) {
	runCorpus(t, "detordermod", []*Analyzer{DetOrder})
}

func TestCowSafeCorpus(t *testing.T) {
	runCorpus(t, "cowmod", []*Analyzer{CowSafe})
}

func TestPubInitCorpus(t *testing.T) {
	diags := runCorpus(t, "pubinitmod", []*Analyzer{PubInit})

	// A call-mediated late write must carry the caller -> mutator chain
	// so the report is actionable without re-deriving the call graph.
	var chained bool
	for _, d := range diags {
		if strings.Contains(d.Message, "pubinitmod.touch") && len(d.Chain) > 1 {
			chained = true
		}
	}
	if !chained {
		t.Error("no transitive pubinit diagnostic carried a call chain")
	}
}

func TestSharedCapCorpus(t *testing.T) {
	runCorpus(t, "sharedcapmod", []*Analyzer{SharedCap})
}

func TestErrSinkCorpus(t *testing.T) {
	runCorpus(t, "errmod", []*Analyzer{ErrSink})
}

func TestCtxFlowCorpus(t *testing.T) {
	diags := runCorpus(t, "ctxmod", []*Analyzer{CtxFlow})

	// The helper's bare receive is reported through the StartDrain root,
	// so the diagnostic must carry the discovery chain.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "bare receive") {
			found = true
			if !strings.Contains(strings.Join(d.Chain, " -> "), "StartDrain") {
				t.Errorf("bare-receive diagnostic lacks its call chain: %s", d)
			}
		}
	}
	if !found {
		t.Error("no bare-receive diagnostic in ctxmod")
	}
}

func TestLifecycleCorpus(t *testing.T) {
	runCorpus(t, "lifecyclemod", []*Analyzer{Lifecycle})
}

func TestNetGuardCorpus(t *testing.T) {
	runCorpus(t, "netmod", []*Analyzer{NetGuard})
}

func TestWaiverDriftCorpus(t *testing.T) {
	diags := runCorpus(t, "waivermod", []*Analyzer{WaiverDrift})

	// Exactly the stale annotations may be reported: the live waivers in
	// the same file must have been marked used by the tracked re-runs.
	for _, d := range diags {
		if !strings.Contains(d.Message, "stale //apollo:") {
			t.Errorf("waiverdrift emitted a non-staleness diagnostic: %s", d)
		}
	}
}

// TestByName keeps the -analyzers flag surface honest.
func TestByName(t *testing.T) {
	got, err := ByName("hotpath,schemahash")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != HotPath || got[1] != SchemaHash {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestDiagnosticString pins the rendering contract the corpus regexps
// and CI logs rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "hotpath",
		Message:  "calls time.Now on the hot path",
		Chain:    []string{"pkg.Outer", "pkg.inner"},
	}
	want := "x.go:3:7: [hotpath] calls time.Now on the hot path\n\tcall chain: pkg.Outer -> pkg.inner"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestVetSelfCheck runs every analyzer over the apollo module itself:
// the repo must stay clean so `make lint` can gate CI.
func TestVetSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := RunAll(prog, All())
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos.Line < diags[j].Pos.Line })
	for _, d := range diags {
		t.Errorf("module is not vet-clean: %s", d)
	}
	if len(diags) > 0 {
		t.Log(fmt.Sprintf("%d finding(s); fix them or waive with //apollo:coldpath, //apollo:allocok, or //apollo:lockok plus a reason", len(diags)))
	}
}
