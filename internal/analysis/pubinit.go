package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PubInit enforces publish-then-initialize hygiene: every write that
// initializes a value must dominate (be sequenced before) the
// atomic.Pointer Store/Swap/CompareAndSwap that publishes it. CowSafe
// catches direct writes after the publish; PubInit catches the
// call-shaped remainder — the published value escaping, after the
// publish, into a function the call graph proves writes through the
// corresponding parameter or receiver ("finish it later" helpers,
// deferred initialization, touch-up methods). Readers that loaded the
// pointer between the Store and the late write observe a
// half-initialized value with no race report to show for it.
//
// Waive a deliberate post-publish mutation with //apollo:cowok
// <reason> on the call's line (or the function's doc comment); the
// publication-discipline analyzers share one waiver vocabulary.
var PubInit = &Analyzer{
	Name:       "pubinit",
	Doc:        "all initialization of a published value must precede its atomic publish",
	Run:        runPubInit,
	runTracked: runPubInitTracked,
}

func runPubInit(prog *Program) []Diagnostic {
	return runPubInitTracked(prog, nil)
}

func runPubInitTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	mp := newMutParams(g)
	var fis []*funcInfo
	for _, fi := range g.funcs {
		if fi.decl.Body != nil {
			fis = append(fis, fi)
		}
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })

	var diags []Diagnostic
	for _, fi := range fis {
		diags = append(diags, pubInitCheckFunc(g, mp, fi, uses)...)
	}
	return diags
}

func pubInitCheckFunc(g *graph, mp *mutParams, fi *funcInfo, uses *waiverUse) []Diagnostic {
	pkg := fi.pkg
	fset := g.prog.Fset
	lines := lineDirectives(fset, fi.file)
	flow := newFnFlow(pkg, fi.decl)
	fnWaived := funcCowOK(fi, uses)

	var diags []Diagnostic
	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, chain []string, format string, args ...any) {
		if seen[pos] {
			return
		}
		if fnWaived || suppressedBy(lines, fset, pos, dirCowOK, uses) {
			seen[pos] = true
			return
		}
		seen[pos] = true
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "pubinit",
			Message:  fmt.Sprintf(format, args...),
			Chain:    chain,
		})
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := atomicPtrCall(pkg, flow.bindings, call)
		if !ok || method == "Load" {
			return true
		}
		pub := publishedArg(method, call)
		if pub == nil {
			return true
		}
		roots := flow.rootsOf(pub)
		if roots.empty() {
			return true
		}
		stmt := enclosingStmt(flow.parents, call)
		if stmt == nil {
			return true
		}
		after := computeAfter(flow.parents, stmt)
		pubLine := fset.Position(call.Pos()).Line

		ast.Inspect(fi.decl.Body, func(m ast.Node) bool {
			late, ok := m.(*ast.CallExpr)
			if !ok || late == call || !after.contains(late.Pos()) {
				return true
			}
			callees, _ := g.resolve(pkg, flow.bindings, late)
			for _, c := range callees {
				if c.viaInterface != "" {
					continue
				}
				mask := mp.mutated(c.fn)
				if mask == nil {
					continue
				}
				args := callArgVars(pkg, late)
				for i, v := range args {
					if v == nil || i >= len(mask) || !mask[i] {
						continue
					}
					if !argAliasesRoots(flow, v, roots) {
						continue
					}
					report(late.Pos(), []string{displayName(fi.obj), displayName(c.fn.obj)},
						"%s initializes %s after it was published by atomic.Pointer.%s (line %d): all writes must precede the publish; finish initialization first or waive with //apollo:cowok",
						displayName(c.fn.obj), describeExpr(pub), method, pubLine)
				}
			}
			return true
		})
		return true
	})
	return diags
}

// argAliasesRoots reports whether passing variable v hands the callee a
// way to reach the published value.
func argAliasesRoots(flow *fnFlow, v *types.Var, roots pubRoots) bool {
	if roots.cell != nil {
		if v == roots.cell || flow.sameClass(v, roots.cell) {
			return true
		}
		if u, ok := flow.ptrTo[v]; ok && u == roots.cell {
			return true
		}
	}
	if roots.class != nil && flow.find(v) == roots.class {
		return true
	}
	return false
}
