package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// loadTestModule writes the given files (paths relative to the module
// root, which gets a go.mod) into a temp dir and loads them as a
// program.
func loadTestModule(t *testing.T, module string, files map[string]string) *Program {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = fmt.Sprintf("module %s\n\ngo 1.22\n", module)
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := Load(dir)
	if err != nil {
		t.Fatalf("load test module: %v", err)
	}
	return prog
}

// resolvedCallees resolves every call expression inside the named
// top-level function and renders each target as "display" for static
// calls or "display via iface" for interface dispatch. External
// (out-of-module) targets render as "ext:display".
func resolvedCallees(t *testing.T, g *graph, fnName string) []string {
	t.Helper()
	var fi *funcInfo
	for obj, f := range g.funcs {
		if obj.Name() == fnName && f.decl.Recv == nil {
			fi = f
		}
	}
	if fi == nil {
		t.Fatalf("function %s not found in test module", fnName)
	}
	bindings := methodBindings(fi.pkg, fi.decl.Body)
	var out []string
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callees, ext := g.resolve(fi.pkg, bindings, call)
		for _, c := range callees {
			s := displayName(c.fn.obj)
			if c.viaInterface != "" {
				s += " via " + c.viaInterface
			}
			out = append(out, s)
		}
		if ext != nil {
			out = append(out, "ext:"+displayName(ext))
		}
		return true
	})
	sort.Strings(out)
	return out
}

// TestCallGraphDispatch pins the resolver's behavior on the dispatch
// shapes the concurrency analyzers depend on: embedded interfaces,
// promoted methods, and method values bound locally, taken through an
// interface, or passed as arguments (where the dynamic invocation
// inside the callee is deliberately unresolved).
func TestCallGraphDispatch(t *testing.T) {
	const src = `package disp

import "strings"

type closer interface{ Close() }

// flusher embeds closer: a call through flusher must still reach every
// concrete Close in the module.
type flusher interface {
	closer
	Flush()
}

type file struct{ n int }

func (f *file) Close() {}
func (f *file) Flush() {}

// pipe implements closer but not flusher.
type pipe struct{}

func (pipe) Close() {}

type base struct{}

func (b base) ping() {}

// wrap promotes base.ping into its own method set.
type wrap struct{ base }

func EmbeddedIface(fl flusher) {
	fl.Close()
	fl.Flush()
}

func NarrowIface(c closer) {
	c.Close()
}

func Promoted(w wrap) {
	w.ping()
}

func BoundMethodValue(f *file) {
	g := f.Close
	g()
}

func BoundIfaceMethodValue(c closer) {
	g := c.Close
	g()
}

func apply(g func()) { g() }

func PassedMethodValue(f *file) {
	apply(f.Close)
}

func External(s string) string {
	return strings.ToUpper(s)
}
`
	prog := loadTestModule(t, "disp", map[string]string{"disp.go": src})
	g := buildGraph(prog)

	tests := []struct {
		fn   string
		want []string
	}{
		{
			// Embedded interface: Close comes from the embedded closer,
			// but dispatch is through flusher, so only flusher
			// implementers are targets (pipe has no Flush).
			fn: "EmbeddedIface",
			want: []string{
				"(*disp.file).Close via disp.flusher",
				"(*disp.file).Flush via disp.flusher",
			},
		},
		{
			// The narrower interface reaches both implementations.
			fn: "NarrowIface",
			want: []string{
				"(*disp.file).Close via disp.closer",
				"(disp.pipe).Close via disp.closer",
			},
		},
		{
			// Promoted method: w.ping resolves to the embedded base's
			// declaration, statically.
			fn:   "Promoted",
			want: []string{"(disp.base).ping"},
		},
		{
			// g := f.Close; g(): the local binding resolves statically.
			fn:   "BoundMethodValue",
			want: []string{"(*disp.file).Close"},
		},
		{
			// g := c.Close through an interface variable: the binding
			// records the interface method, and the call dispatches onto
			// every implementation.
			fn: "BoundIfaceMethodValue",
			want: []string{
				"(*disp.file).Close via disp.closer",
				"(disp.pipe).Close via disp.closer",
			},
		},
		{
			// apply(f.Close): only the call to apply itself resolves.
			// The method value crosses the call boundary as data; g()
			// inside apply is dynamic and intentionally unresolved, so
			// analyzers stay conservative instead of guessing.
			fn:   "PassedMethodValue",
			want: []string{"disp.apply"},
		},
		{
			// An out-of-module target surfaces as the external object
			// for banned/blocking-call checks.
			fn:   "External",
			want: []string{"ext:strings.ToUpper"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.fn, func(t *testing.T) {
			got := resolvedCallees(t, g, tc.fn)
			if len(got) != len(tc.want) {
				t.Fatalf("%s resolved %v, want %v", tc.fn, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("%s resolved %v, want %v", tc.fn, got, tc.want)
				}
			}
		})
	}
}

// TestCallGraphDynamicCalleeUnresolved pins that a function-typed
// parameter invoked inside its own function produces no targets: the
// resolver must not fabricate edges it cannot prove.
func TestCallGraphDynamicCalleeUnresolved(t *testing.T) {
	prog := loadTestModule(t, "dyn", map[string]string{"dyn.go": `package dyn

func apply(g func()) { g() }
`})
	g := buildGraph(prog)
	if got := resolvedCallees(t, g, "apply"); len(got) != 0 {
		t.Fatalf("dynamic call resolved to %v, want nothing", got)
	}
}
