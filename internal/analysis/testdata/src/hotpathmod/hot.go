// Package hotpathmod is the hotpath-analyzer corpus: every line marked
// "want" must produce exactly that diagnostic, and unmarked code must
// stay silent.
package hotpathmod

import (
	"fmt"
	"sync"
	"time"
)

var mu sync.Mutex

// Direct violations in an annotated root.
//
//apollo:hotpath
func DirectViolations(ch chan int) {
	_ = time.Now()       // want `calls time\.Now on the hot path`
	b := make([]byte, 8) // want `make allocates on the hot path`
	_ = b
	mu.Lock()        // want `acquires sync\.Mutex \(Lock\) on the hot path`
	mu.Unlock()      // want `acquires sync\.Mutex \(Unlock\) on the hot path`
	fmt.Println()    // want `calls fmt\.Println on the hot path`
	ch <- 1          // want `channel send on the hot path`
	<-ch             // want `channel receive on the hot path`
	s := []int{1, 2} // want `slice literal allocates on the hot path`
	_ = s
	p := &point{x: 1} // want `&hotpathmod\.point literal allocates on the hot path`
	_ = p
}

type point struct{ x, y int }

// Transitive violation: the diagnostic lands in the callee with a call
// chain back to the root.
//
//apollo:hotpath
func Transitive() { helper() }

func helper() {
	_ = time.Now() // want `calls time\.Now on the hot path`
}

// Interface dispatch: the analyzer must follow the call onto every
// module-local concrete implementation.

type doer interface{ do() }

type clockDoer struct{}

func (clockDoer) do() {
	_ = time.Now() // want `calls time\.Now on the hot path`
}

type quietDoer struct{ n int }

func (d quietDoer) do() { d.n++ }

//apollo:hotpath
func Dispatch(d doer) { d.do() }

// Method value bound to a local: still resolved statically.
//
//apollo:hotpath
func MethodValue(c clockDoer) {
	f := c.do
	f()
}

// Blocking functions are banned from hot paths by annotation alone.
//
//apollo:blocking
func waits() {}

//apollo:hotpath
func CallsBlocking() {
	waits() // want `calls //apollo:blocking function hotpathmod\.waits`
}

// A coldpath annotation stops traversal: rare() may allocate freely.
//
//apollo:hotpath
func WithColdCall() { rare() }

//apollo:coldpath exercised only on the first launch of a kernel
func rare() *point {
	return &point{x: 2}
}

// An allocok line directive waives one finding with a recorded reason.
//
//apollo:hotpath
func WithWaivedAlloc(dst []byte, s string) []byte {
	dst = append(dst, s...) //apollo:allocok pooled buffer sized by the caller
	return dst
}

// Boxing a concrete value into an interface allocates.
//
//apollo:hotpath
func Boxes(n int) any {
	var a any = n // want `int boxed into any allocates on the hot path`
	return a
}

// Capturing closures allocate; non-capturing ones do not.
//
//apollo:hotpath
func Captures(n int) func() int {
	f := func() int { return n } // want `closure captures \[n\] and allocates on the hot path`
	return f
}

// Bodyless declarations (runtime symbols bound via //go:linkname, or
// assembly implementations) have no statements to walk and must pass
// silently — this is how hot code gets a monotonic clock without the
// banned time.Now.
//
//go:linkname clocknano runtime.nanotime
func clocknano() int64

//apollo:hotpath
func CallsBodyless() int64 { return clocknano() }

// Clean hot path: nothing here may be reported.
//
//apollo:hotpath
func Clean(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += v
	}
	mustBeQuiet := func() int { return 3 } // non-capturing: no allocation
	_ = mustBeQuiet()
	return sum
}
