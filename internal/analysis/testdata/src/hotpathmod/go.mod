module hotpathmod

go 1.22
