// Package waivermod is the waiverdrift-analyzer corpus: every waiver
// and blocking annotation here is either live (suppresses a real
// finding today — silent) or stale (suppresses nothing — reported).
package waivermod

import (
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

var mu sync.Mutex

// Live allocok: the append would be a hotpath finding without it.
//
//apollo:hotpath
func HotAppend(dst []byte, s string) []byte {
	dst = append(dst, s...) //apollo:allocok pooled buffer sized by the caller
	return dst
}

// Stale allocok: nothing on this line allocates on a hot path (the
// function is not even hot).
func ColdAppend(dst []byte, s string) []byte {
	dst = append(dst, s...) //apollo:allocok pooled buffer // want `stale //apollo:allocok waiver: it no longer suppresses any diagnostic; delete it`
	return dst
}

// Live line-level lockok: the read really does happen under mu.
func ReadLocked() []byte {
	mu.Lock()
	defer mu.Unlock()
	b, _ := os.ReadFile("state") //apollo:lockok snapshot read, bounded file
	return b
}

// Stale function-level lockok: the body no longer blocks while locked.
//
//apollo:lockok the write moved out of the critical section // want `stale //apollo:lockok waiver: it no longer suppresses any diagnostic; delete it`
func WriteUnlocked(b []byte) {
	mu.Lock()
	n := len(b)
	mu.Unlock()
	_ = os.WriteFile("state", b[:n], 0o644)
}

// Live coldpath: the hot root's traversal stops here.
//
//apollo:hotpath
func HotLookup() *entry { return missFill() }

//apollo:coldpath first-touch fill, amortized away
func missFill() *entry { return &entry{} }

// Stale coldpath: no hot path ever reaches this function.
//
//apollo:coldpath legacy startup shim // want `stale //apollo:coldpath waiver: it no longer suppresses any diagnostic; delete it`
func orphanFill() *entry { return &entry{} }

type entry struct{ n int }

// Live goleakok: the heartbeat loop is flagged without it.
func Heartbeat() {
	go func() {
		for { //apollo:goleakok heartbeat runs for the process lifetime
			time.Sleep(time.Second)
		}
	}()
}

// Stale goleakok: a ranged loop terminates on close; nothing to waive.
func Drain(ch chan int) {
	go func() {
		for range ch { //apollo:goleakok drained at shutdown // want `stale //apollo:goleakok waiver: it no longer suppresses any diagnostic; delete it`
		}
	}()
}

// Live detorderok: the marshal inside the map range is a real finding.
func DumpStats(m map[string]int) [][]byte {
	var out [][]byte
	for k, v := range m {
		b, _ := json.Marshal(map[string]int{k: v}) //apollo:detorderok fed to an order-insensitive set diff
		out = append(out, b)
	}
	return out
}

// Stale detorderok: iterating a slice is already deterministic.
func DumpList(xs []int) [][]byte {
	var out [][]byte
	for _, v := range xs {
		b, _ := json.Marshal(v) //apollo:detorderok sorted upstream // want `stale //apollo:detorderok waiver: it no longer suppresses any diagnostic; delete it`
		out = append(out, b)
	}
	return out
}

type snapshot struct{ n int }

var snap atomic.Pointer[snapshot]

// Live cowok: the post-publish write is a real cowsafe finding.
func PublishLate() {
	s := &snapshot{}
	snap.Store(s)
	s.n = 1 //apollo:cowok readers tolerate the late count; fenced by the warmup gate
}

// Stale cowok: every write precedes the publish; nothing to waive.
func PublishClean() {
	s := &snapshot{}
	s.n = 1 //apollo:cowok left over from the old late-fill // want `stale //apollo:cowok waiver: it no longer suppresses any diagnostic; delete it`
	snap.Store(s)
}

// Live sharedcapok: the spawner really does keep writing the capture.
func SpawnShared() {
	n := 0
	go func() { _ = n }() //apollo:sharedcapok generation counter fences the reuse
	n = 1
}

// Stale sharedcapok: the goroutine takes its argument by value, so
// there is no shared capture left.
func SpawnCopied() {
	n := 0
	go func(int) {}(n) //apollo:sharedcapok copied at spawn // want `stale //apollo:sharedcapok waiver: it no longer suppresses any diagnostic; delete it`
	n = 1
}

// Truthful blocking: the receive really can block.
//
//apollo:blocking
func Await(ch chan int) int { return <-ch }

// Stale blocking: the body cannot block any more.
//
//apollo:blocking // want `stale //apollo:blocking on waivermod\.Calm: the body cannot block \(no channel op, lock, or blocking call\); remove the annotation`
func Calm() int { return 1 }

func mayErr() error { return nil }

func quietCall() {}

// Live errok: the probe really is fire-and-forget.
func Probe() {
	mayErr() //apollo:errok fire-and-forget warmup probe; failure is harmless
}

// Stale errok: the call returns nothing; there is no error to drop.
func Quiet() {
	quietCall() //apollo:errok left over from the fallible version // want `stale //apollo:errok waiver: it no longer suppresses any diagnostic; delete it`
}

// Live ctxok: the sleep is on a serve root and deliberately flat.
func StartWarm() {
	for i := 0; i < 2; i++ {
		time.Sleep(time.Millisecond) //apollo:ctxok bounded two-iteration warmup wait
	}
}

// Stale ctxok: nothing on this line blocks.
func StartCold() {
	quietCall() //apollo:ctxok left over from the sleeping version // want `stale //apollo:ctxok waiver: it no longer suppresses any diagnostic; delete it`
}

func init() {
	_ = orphanFill
	_ = WriteUnlocked
}
