// Package lifecyclemod is the lifecycle-analyzer corpus: component
// goroutines paired (and unpaired) with the stop signal their
// Close/Stop provably fires, Close methods that fire but never join,
// and ctxok waivers on deliberate process-lifetime workers.
package lifecyclemod

var sunk int

func consume(v int) { sunk += v }

// Pump is the well-formed component: the ctor spawns a worker ranging
// over the work channel, Close closes it and joins on done.
type Pump struct {
	work chan int
	done chan struct{}
}

func NewPump() *Pump {
	p := &Pump{work: make(chan int), done: make(chan struct{})}
	go p.loop()
	return p
}

func (p *Pump) loop() {
	defer close(p.done)
	for v := range p.work {
		consume(v)
	}
}

func (p *Pump) Close() {
	close(p.work)
	<-p.done
}

// Spinner's worker has no stop signal at all.
type Spinner struct{ n int }

func (s *Spinner) Start() {
	go func() { // want `spawns a long-running goroutine with no stop signal`
		for {
			s.n++
		}
	}()
}

func (s *Spinner) Close() {}

// Sink's Close fires the channel but returns without waiting for the
// worker to drain and exit.
type Sink struct {
	in chan int
}

func NewSink() *Sink {
	s := &Sink{in: make(chan int)}
	go s.drain() // want `Sink\.Close closes in but never joins the worker goroutines`
	return s
}

func (s *Sink) drain() {
	for v := range s.in {
		consume(v)
	}
}

func (s *Sink) Close() { close(s.in) }

// Pool ranges over a field channel but has no stop method to fire it.
type Pool struct {
	jobs chan int
}

func (p *Pool) Start() {
	go func() { // want `has no Close/Stop/Shutdown to fire it`
		for j := range p.jobs {
			consume(j)
		}
	}()
}

// Orphan's quit channel exists, but nothing ever closes or signals it.
type Orphan struct{ v int }

func (o *Orphan) Start() {
	quit := make(chan struct{})
	go func() { // want `stopped by quit, but nothing ever closes or signals it`
		for {
			select {
			case <-quit:
				return
			default:
				o.v++
			}
		}
	}()
}

func (o *Orphan) Close() {}

// Relay's stop channel is a parameter: the caller owns and fires it.
type Relay struct{ out chan int }

func (r *Relay) Start(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case r.out <- 1:
			}
		}
	}()
}

func (r *Relay) Close() {}

// Burner is a deliberate process-lifetime worker, waived with a reason.
type Burner struct{ n int }

func (b *Burner) Start() {
	go func() { //apollo:ctxok test fixture: sampler deliberately runs for the process lifetime
		for {
			b.n++
		}
	}()
}

func (b *Burner) Close() {}
