module lifecyclemod

go 1.22
