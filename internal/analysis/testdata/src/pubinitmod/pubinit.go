// Package pubinitmod is the pubinit-analyzer corpus: every write that
// initializes a published value must precede the atomic.Pointer publish,
// including writes hidden behind calls the call graph proves mutate
// their argument.
package pubinitmod

import "sync/atomic"

type Model struct {
	Name    string
	Weights []float64
}

var live atomic.Pointer[Model]

// Bad: the helper provably writes through its parameter after the
// publish.
func PublishThenFill() {
	m := &Model{}
	live.Store(m)
	fill(m) // want `pubinitmod\.fill initializes m after it was published by atomic\.Pointer\.Store`
}

func fill(m *Model) {
	m.Weights = append(m.Weights, 1)
}

// Good: initialization precedes the publish.
func FillThenPublish() {
	m := &Model{}
	fill(m)
	live.Store(m)
}

// Bad: a mutating method counts — the receiver is parameter zero.
func PublishThenRename() {
	m := &Model{}
	live.Store(m)
	m.SetName("late") // want `\(\*pubinitmod\.Model\)\.SetName initializes m after it was published by atomic\.Pointer\.Store`
}

func (m *Model) SetName(s string) { m.Name = s }

// Bad: the mutation is transitive — touch only forwards to deepFill,
// which does the writing.
func PublishThenTouch() {
	m := &Model{}
	live.Store(m)
	touch(m) // want `pubinitmod\.touch initializes m after it was published by atomic\.Pointer\.Store`
}

func touch(m *Model) { deepFill(m) }

func deepFill(m *Model) { m.Weights = []float64{1} }

// Good: a read-only helper after the publish is fine.
func PublishThenRead() float64 {
	m := &Model{Weights: []float64{1}}
	live.Store(m)
	return sum(m)
}

func sum(m *Model) float64 {
	var t float64
	for _, w := range m.Weights {
		t += w
	}
	return t
}

// Bad: Swap publishes too, and the alias taken before the publish
// reaches the same value.
func SwapThenFill() {
	m := &Model{}
	alias := m
	live.Swap(m)
	fill(alias) // want `pubinitmod\.fill initializes m after it was published by atomic\.Pointer\.Swap`
}

// Waived: a deliberate post-publish touch-up with its own ordering
// story.
func WaivedLateFill() {
	m := &Model{}
	live.Store(m)
	fill(m) //apollo:cowok readers tolerate empty weights until the warmup gate opens
}
