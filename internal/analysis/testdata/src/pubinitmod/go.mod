module pubinitmod

go 1.22
