module atomicmod

go 1.22
