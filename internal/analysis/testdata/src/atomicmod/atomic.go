// Package atomicmod is the atomicalign-analyzer corpus: raw 64-bit
// sync/atomic operands laid out for GOARCH=386, where the compiler only
// 4-byte-aligns uint64 struct fields.
package atomicmod

import "sync/atomic"

// misaligned puts the counter after a 4-byte field: offset 4 under
// 32-bit layout.
type misaligned struct {
	flags uint32
	n     uint64
}

// aligned leads with the 64-bit field: offset 0 is always safe.
type aligned struct {
	n     uint64
	flags uint32
}

// oddElem has size 12 under 32-bit layout, so every second slice element
// holds its counter at a 4-mod-8 address even though the field offset
// within the struct is 0.
type oddElem struct {
	n    uint64
	tail uint32
}

// evenElem pads to 16 bytes; elements stay 64-bit aligned.
type evenElem struct {
	n    uint64
	tail uint64
}

func Bump(m *misaligned, a *aligned) {
	atomic.AddUint64(&m.n, 1)   // want `offset 4 under GOARCH=386 layout`
	atomic.AddUint64(&a.n, 1)   // aligned: no finding
	_ = atomic.LoadUint64(&m.n) // want `offset 4 under GOARCH=386 layout`
}

func BumpSlice(odd []oddElem, even []evenElem, i int) {
	atomic.AddUint64(&odd[i].n, 1)  // want `element of size 12 under GOARCH=386`
	atomic.AddUint64(&even[i].n, 1) // 16-byte elements: no finding
}

// Nested structs accumulate offsets through the selection path: inner
// sits at offset 8, its counter at 8+4=12.
type outer struct {
	lead  uint64
	inner misaligned
}

func BumpNested(o *outer) {
	atomic.AddUint64(&o.inner.n, 1) // want `offset 12 under GOARCH=386 layout`
}

// Local 64-bit variables are allocation-start aligned: no finding.
func BumpLocal() uint64 {
	var n uint64
	atomic.AddUint64(&n, 1)
	return n
}
