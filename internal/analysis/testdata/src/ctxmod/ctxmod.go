// Package ctxmod is the ctxflow-analyzer corpus: blocking operations
// reachable from serve roots (Run/Serve/Start*) that no stop signal can
// interrupt, their cancellable counterparts, and ctxok waivers.
package ctxmod

import "time"

// Daemon's channels: stop is the shutdown signal, data the stream.
type Daemon struct {
	stop chan struct{}
	data chan int
}

var sunk int

func sink(v int) { sunk += v }

// Run selects on the stop signal alongside the stream: clean.
func (d *Daemon) Run() {
	for {
		select {
		case <-d.stop:
			return
		case v := <-d.data:
			sink(v)
		}
	}
}

// Serve's select has no stop case: nothing can interrupt the wait.
func (d *Daemon) Serve() {
	for {
		select { // want `select has no default case and no stop-signal receive`
		case v := <-d.data:
			sink(v)
		}
	}
}

// StartPoll sleeps flat on a serve path: uncancellable.
func (d *Daemon) StartPoll() {
	for {
		time.Sleep(time.Second) // want `time\.Sleep cannot be cancelled`
		sink(1)
	}
}

// helper is reachable from the StartDrain root: its bare receive is
// reported with the call chain attached.
func helper(c chan int) int {
	return <-c // want `bare receive from c cannot be cancelled`
}

func (d *Daemon) StartDrain() {
	for {
		sink(helper(d.data))
	}
}

// StartPush sends on a channel known to be unbuffered, outside any
// select: the send blocks forever once the receiver is gone.
func (d *Daemon) StartPush() {
	ch := make(chan int)
	for {
		ch <- 1 // want `send on unbuffered channel ch blocks forever`
	}
}

// StartBuffered sends on a known-buffered channel: clean.
func (d *Daemon) StartBuffered() {
	ch := make(chan int, 8)
	for i := 0; i < 4; i++ {
		ch <- i
	}
}

// StartPolite selects with a default case: the wait cannot hang.
func (d *Daemon) StartPolite() {
	for i := 0; i < 4; i++ {
		select {
		case v := <-d.data:
			sink(v)
		default:
			return
		}
	}
}

// StartWaived documents a deliberate bounded busy-wait.
func (d *Daemon) StartWaived() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond) //apollo:ctxok test fixture: bounded three-iteration warmup wait
	}
}

// notRoot is unreachable from any serve root, so its sleep is not a
// daemon liability: clean.
func notRoot() {
	time.Sleep(time.Second)
}
