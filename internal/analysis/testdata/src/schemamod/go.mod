module schemamod

go 1.22
