// Package schemamod is the schemahash-analyzer corpus: golden constants
// checked against the AST name lists their directives reference.
package schemamod

// Names is a function-style schema source (a []string literal of
// constants).
func Names() []string {
	return []string{"width", "height"}
}

// Index-keyed array sources are ordered by key, not source position.
const (
	depthIdx = iota
)

var extraNames = [1]string{depthIdx: "depth"}

// GoodHash is Fingerprint(["width", "height", "depth"]).
//
//apollo:schemahash schemamod.Names schemamod.extraNames
const GoodHash uint64 = 0x31257d647ad16ea6

// BadHash records a stale fingerprint.
//
//apollo:schemahash schemamod.Names schemamod.extraNames
const BadHash uint64 = 0xdeadbeef // want `schema hash mismatch`

// MissingRef names a source that does not exist.
//
//apollo:schemahash schemamod.NoSuchList
const MissingRef uint64 = 1 // want `cannot resolve schema source`
