// Package lockordermod is the lockorder-analyzer corpus: ranked and
// unranked nested acquisitions, lock-order cycles, self-deadlocks, and
// malformed rank declarations.
package lockordermod

import "sync"

// A ranked pair acquired in strictly increasing order: clean.
var (
	//apollo:lockrank 10
	muLow sync.Mutex
	//apollo:lockrank 20
	muHigh sync.Mutex
)

func RankedOK() {
	muLow.Lock()
	muHigh.Lock()
	muHigh.Unlock()
	muLow.Unlock()
}

// A second ranked pair nested only the wrong way round (a correct
// nesting of the same pair would make the edge cyclic and mask the rank
// diagnostic).
var (
	//apollo:lockrank 10
	muInner sync.Mutex
	//apollo:lockrank 20
	muOuter sync.Mutex
)

func RankInversion() {
	muOuter.Lock()
	muInner.Lock() // want `acquires lockordermod\.muInner \(lockrank 10\) while holding lockordermod\.muOuter \(lockrank 20\): nested acquisitions must strictly increase the rank`
	muInner.Unlock()
	muOuter.Unlock()
}

// Unranked mutexes may not nest at all until an order is declared.
var muA, muB sync.Mutex

func UndeclaredNesting() {
	muA.Lock()
	muB.Lock() // want `nested lock acquisition without a declared order: holding lockordermod\.muA while acquiring lockordermod\.muB; annotate both mutexes with //apollo:lockrank`
	muB.Unlock()
	muA.Unlock()
}

// Two functions nesting a pair in opposite directions form a cycle; the
// cycle is reported once per observed edge, suppressing the per-edge
// order checks.
var muX, muY sync.Mutex

func XThenY() {
	muX.Lock()
	muY.Lock() // want `lock-order cycle: lockordermod\.muX -> lockordermod\.muY -> lockordermod\.muX`
	muY.Unlock()
	muX.Unlock()
}

func YThenX() {
	muY.Lock()
	muX.Lock() // want `lock-order cycle: lockordermod\.muY -> lockordermod\.muX -> lockordermod\.muY`
	muX.Unlock()
	muY.Unlock()
}

// Re-acquiring a lock that is already held deadlocks immediately.
var muSelf sync.Mutex

func SelfDeadlock() {
	muSelf.Lock()
	muSelf.Lock() // want `acquires lockordermod\.muSelf while it is already held \(self-deadlock\)`
	muSelf.Unlock()
}

// Lock identity is the declared field: acquisitions through a method
// are summarized transitively, so re-entering through a helper is the
// same self-deadlock.
type Box struct {
	mu sync.Mutex //apollo:lockrank 30
	n  int
}

func (b *Box) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *Box) Reenter() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.get() // want `call acquires lockordermod\.Box\.mu while it is already held \(self-deadlock\)`
}

// A call edge inherits the callee's acquisitions: holding the rank-50
// lock while a helper takes the rank-40 lock inverts the order at the
// call site.
var (
	//apollo:lockrank 40
	muStore sync.Mutex
	//apollo:lockrank 50
	muCache sync.Mutex
)

func touchStore() {
	muStore.Lock()
	muStore.Unlock()
}

func CacheThenStore() {
	muCache.Lock()
	touchStore() // want `acquires lockordermod\.muStore \(lockrank 40\) while holding lockordermod\.muCache \(lockrank 50\)`
	muCache.Unlock()
}

// Unlocking before the nested acquisition keeps the held set empty: no
// edge, no diagnostic.
func SequentialOK() {
	muOuter.Lock()
	muOuter.Unlock()
	muInner.Lock()
	muInner.Unlock()
}

// A function literal runs later with its own lock context: acquiring
// inside it while the spawner holds a lock is not a nesting.
func LitOK() {
	muHigh.Lock()
	f := func() {
		muLow.Lock()
		muLow.Unlock()
	}
	muHigh.Unlock()
	f()
}

// The rank argument must parse as an integer.
//
//apollo:lockrank ten // want `malformed //apollo:lockrank "ten": argument must be an integer`
var muBadRank sync.Mutex

// Ranks belong on mutexes only.
var counter int //apollo:lockrank 5 // want `//apollo:lockrank on counter, which is not a sync\.Mutex or sync\.RWMutex`

func init() {
	_ = counter
	_ = muBadRank
}
