// Package netmod is the netguard-analyzer corpus: timeout-less HTTP
// entry points, bare http.Client literals, and flat-sleep retry loops
// that bypass the jittered backoff helper. There is no waiver for this
// analyzer: every case has a mechanical fix.
package netmod

import (
	"net"
	"net/http"
	"time"
)

// FetchDefault rides the shared default client, which has no deadline.
func FetchDefault(url string) (*http.Response, error) {
	return http.Get(url) // want `http\.Get uses the timeout-less http\.DefaultClient`
}

// FetchShared touches http.DefaultClient directly: same hazard.
func FetchShared(url string) (*http.Response, error) {
	return http.DefaultClient.Get(url) // want `http\.DefaultClient has no timeout`
}

// NewLazyClient builds a client whose requests carry no deadline.
func NewLazyClient() *http.Client {
	return &http.Client{} // want `http\.Client literal without a Timeout`
}

// NewClient carries a deadline: clean.
func NewClient() *http.Client {
	return &http.Client{Timeout: 3 * time.Second}
}

// DialRetry sleeps flat between attempts: the fleet stampedes in sync.
func DialRetry(addr string) net.Conn {
	for i := 0; i < 5; i++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c
		}
		time.Sleep(time.Second) // want `flat time\.Sleep retry around a network call`
	}
	return nil
}

// backoff is this module's jittered backoff helper.
func backoff(i int) time.Duration { return time.Duration(i+1) * time.Millisecond }

// DialBackoff routes the delay through the backoff helper: clean.
func DialBackoff(addr string) net.Conn {
	for i := 0; i < 5; i++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c
		}
		time.Sleep(backoff(i))
	}
	return nil
}

// CopyLoop sleeps in a loop with no network call at all: clean.
func CopyLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
		time.Sleep(time.Millisecond)
	}
	return total
}
