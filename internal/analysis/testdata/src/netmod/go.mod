module netmod

go 1.22
