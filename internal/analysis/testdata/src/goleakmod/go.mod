module goleakmod

go 1.22
