// Package goleakmod is the goleak-analyzer corpus: endless loops,
// abandoned channel sends and receives, WaitGroup misuse, named-callee
// goroutines, and goleakok waivers.
package goleakmod

import (
	"context"
	"sync"
	"time"
)

// A condition-less loop with no stop case runs until process exit.
func EndlessLoop() {
	go func() {
		for { // want `goroutine loops forever: no return, break, or terminating call leaves this loop \(missing stop channel or context case\)`
			time.Sleep(time.Second)
		}
	}()
}

// A select with a context case gives the loop an exit: clean.
func LoopWithStop(ctx context.Context) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

// Breaking out of the loop (at the loop's own depth) is an exit: clean.
func LoopWithBreak(done chan struct{}) {
	go func() {
		for {
			if _, ok := <-done; !ok {
				break
			}
		}
	}()
}

func EmptySelect() {
	go func() {
		select {} // want `empty select blocks this goroutine forever`
	}()
}

// The classic timeout-abandonment leak: the spawner only receives
// behind a select that can take the timeout case instead, after which
// nobody ever drains the unbuffered channel.
func TimeoutAbandon() error {
	errc := make(chan error)
	go func() {
		errc <- work() // want `send on unbuffered channel errc can leak this goroutine: the spawner only receives behind a select that can take another case; buffer the channel or select on a stop signal`
	}()
	select {
	case err := <-errc:
		return err
	case <-time.After(time.Millisecond):
		return context.DeadlineExceeded
	}
}

// Buffering the channel makes the send non-blocking: clean.
func TimeoutBuffered() error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	select {
	case err := <-errc:
		return err
	case <-time.After(time.Millisecond):
		return context.DeadlineExceeded
	}
}

// An unconditional receive in the spawner always drains the send: clean.
func BareReceive() error {
	errc := make(chan error)
	go func() {
		errc <- work()
	}()
	return <-errc
}

// The spawner never sends on or closes the channel the goroutine
// receives from.
func ForgottenSender() {
	ready := make(chan struct{})
	go func() {
		<-ready // want `receive on channel ready that the spawner never sends to or closes: this goroutine blocks forever`
		work()
	}()
}

// Closing the channel releases the receiver: clean.
func ClosedSender() {
	ready := make(chan struct{})
	go func() {
		<-ready
		work()
	}()
	close(ready)
}

// A channel handed to another function escapes the analysis: clean
// (the callee may send).
func EscapedChannel() {
	ready := make(chan struct{})
	go func() {
		<-ready
	}()
	armed(ready)
}

func armed(ch chan struct{}) { close(ch) }

// Add must happen before the spawn; inside the goroutine it races with
// Wait. And a non-deferred Done in a body with early returns is skipped
// on those returns.
func WaitGroupMisuse(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want `sync\.WaitGroup\.Add inside the spawned goroutine races with Wait; call Add before the go statement`
		defer wg.Done()
		work()
	}()

	wg.Add(1)
	go func() {
		if work() != nil {
			return
		}
		wg.Done() // want `sync\.WaitGroup\.Done is not deferred but the goroutine has return statements: an early return skips Done and Wait blocks forever`
	}()

	// Deferred Done covers every return path: clean.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if work() != nil {
			return
		}
		work()
	}()
}

// `go f(...)` on a module function checks f's body once; the finding
// lands inside drain.
func SpawnNamed() {
	go drain()
}

func drain() {
	for { // want `goroutine loops forever: no return, break, or terminating call leaves this loop \(missing stop channel or context case\)`
		time.Sleep(time.Second)
	}
}

// Range over a channel terminates when the channel is closed: clean.
func RangeOverChannel(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// A deliberate forever-goroutine is waived on the construct's line.
func WaivedForever() {
	go func() {
		for { //apollo:goleakok heartbeat runs for the process lifetime
			time.Sleep(time.Second)
		}
	}()
}

// ...or on the go statement's line.
func WaivedAtSpawn() {
	go spin() //apollo:goleakok busy-poll benchmark harness
}

func spin() {
	for {
		time.Sleep(time.Millisecond)
	}
}

func work() error { return nil }
