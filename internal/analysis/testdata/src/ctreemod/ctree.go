// Package ctreemod is the compiled-decision-path corpus: the flat
// threaded-array walk idiom of internal/ctree, with its no-alloc hot
// contract and the characteristic ways to break it. Every "want" line
// must produce exactly that diagnostic; the clean walks must stay
// silent.
package ctreemod

import "sync"

// pnode mirrors the packed walk node of a compiled tree.
type pnode struct {
	feat, left, right int32
	thresh            float64
}

type tree struct {
	nodes     []pnode
	leafLabel int32
	predict   func(x []float64) int
}

// The canonical flat walk: index loads, one comparison per level,
// negative leaf references. Nothing to report.
//
//apollo:hotpath
func Predict(t *tree, x []float64) int {
	nodes := t.nodes
	if len(nodes) == 0 {
		return int(t.leafLabel)
	}
	ref := int32(0)
	for {
		n := &nodes[ref]
		if x[n.feat] <= n.thresh {
			ref = n.left
		} else {
			ref = n.right
		}
		if ref < 0 {
			return int(^ref)
		}
	}
}

// The batched walk writes into a caller-provided slice — no append, no
// growth, still clean through the transitive call.
//
//apollo:hotpath
func PredictN(t *tree, X [][]float64, out []int) {
	for i, x := range X {
		out[i] = Predict(t, x)
	}
}

// Offset recording stays clean when the buffer is caller-provided and
// bounds-checked instead of grown.
//
//apollo:hotpath
func PredictOffsets(t *tree, x []float64, offs []int32) (int, int) {
	ref := int32(0)
	n := 0
	for ref >= 0 && int(ref) < len(t.nodes) {
		if n < len(offs) {
			offs[n] = ref
			n++
		}
		nd := &t.nodes[ref]
		if x[nd.feat] <= nd.thresh {
			ref = nd.left
		} else {
			ref = nd.right
		}
	}
	return int(^ref), n
}

// Calling an installed predict closure is dynamic dispatch the analyzer
// cannot resolve; it must stay silent rather than guess at the target.
//
//apollo:hotpath
func PredictInstalled(t *tree, x []float64) int {
	return t.predict(x)
}

// Specialization builds closures and slices freely: it runs once per
// model swap, so the coldpath annotation stops hot traversal here.
//
//apollo:coldpath specialization runs once per model swap
func newFunc(t *tree) func(x []float64) int {
	labels := make([]int, len(t.nodes)+1)
	return func(x []float64) int { return labels[0] }
}

//apollo:hotpath
func SwapAndPredict(t *tree, x []float64) int {
	if t.predict == nil {
		t.predict = newFunc(t)
	}
	return t.predict(x)
}

// The tempting-but-wrong offset recorder: growing the trail on the walk
// allocates.
//
//apollo:hotpath
func PredictOffsetsGrowing(t *tree, x []float64, offs []int32) []int32 {
	ref := int32(0)
	for ref >= 0 && int(ref) < len(t.nodes) {
		offs = append(offs, ref) // want `append may grow and allocate on the hot path`
		nd := &t.nodes[ref]
		if x[nd.feat] <= nd.thresh {
			ref = nd.left
		} else {
			ref = nd.right
		}
	}
	return offs
}

var mu sync.Mutex

// Guarding the walk with a lock serializes every launch.
//
//apollo:hotpath
func PredictLocked(t *tree, x []float64) int {
	mu.Lock() // want `acquires sync\.Mutex \(Lock\) on the hot path`
	class := Predict(t, x)
	mu.Unlock() // want `acquires sync\.Mutex \(Unlock\) on the hot path`
	return class
}

// Funneling the class through an interface boxes it.
//
//apollo:hotpath
func PredictAny(t *tree, x []float64) any {
	var class any = Predict(t, x) // want `int boxed into any allocates on the hot path`
	return class
}
