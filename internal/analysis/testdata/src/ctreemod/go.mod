module ctreemod

go 1.22
