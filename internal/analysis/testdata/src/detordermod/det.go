// Package detordermod is the detorder-analyzer corpus: map iteration
// feeding serializers, writers, and hashes, the sorted-keys idiom, and
// detorderok waivers.
package detordermod

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// Serializing per-key inside a map range emits bytes in a different
// order every run.
func MarshalPerKey(m map[string]int) [][]byte {
	var out [][]byte
	for k, v := range m {
		b, _ := json.Marshal(map[string]int{k: v}) // want `map iteration order feeds encoding/json\.Marshal: output bytes differ between runs; iterate a sorted key slice instead`
		out = append(out, b)
	}
	return out
}

// Hash state is order-sensitive: feeding it from a map range makes the
// fingerprint nondeterministic.
func HashKeys(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want `map iteration order feeds \(io\.Writer\)\.Write: output bytes differ between runs; iterate a sorted key slice instead`
	}
	return h.Sum64()
}

// Stream writes accumulate in iteration order.
func DumpConfig(w io.Writer, cfg map[string]string) {
	for k, v := range cfg {
		fmt.Fprintf(w, "%s=%s\n", k, v) // want `map iteration order feeds fmt\.Fprintf`
	}
}

func BufferJoin(m map[string]bool) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want `map iteration order feeds \(\*bytes\.Buffer\)\.WriteString`
	}
	return b.String()
}

// A module-internal function whose name marks it as an encoder counts
// as a sink too.
func encodeRow(k string, v int) []byte { return []byte(fmt.Sprintf("%s=%d", k, v)) }

func EncodeAll(m map[string]int) [][]byte {
	var out [][]byte
	for k, v := range m {
		out = append(out, encodeRow(k, v)) // want `map iteration order feeds detordermod\.encodeRow`
	}
	return out
}

// The idiomatic fix: collect keys, sort, iterate the slice. The only
// call inside the map range is append — not a sink.
func SortedDump(w io.Writer, cfg map[string]string) {
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%s\n", k, cfg[k])
	}
}

// Accumulating into another map is order-insensitive: clean.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// fmt.Sprintf is not a sink: the value may be sorted or compared later.
func Render(m map[string]int) []string {
	var out []string
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// A deliberately order-insensitive sink is waived on the sink line...
func SumValues(m map[string]int) uint64 {
	h := fnv.New64a()
	for _, v := range m {
		h.Write([]byte{byte(v)}) //apollo:detorderok commutative xor-style accumulation tested elsewhere
	}
	return h.Sum64()
}

// ...or on the range line, covering every sink in the body.
func DebugDump(w io.Writer, m map[string]int) {
	for k, v := range m { //apollo:detorderok debug output, order is irrelevant
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
