module detordermod

go 1.22
