module cowmod

go 1.22
