// Package cowmod is the cowsafe-analyzer corpus: values published
// through an atomic.Pointer are frozen at the publish, and values
// obtained from Load (or Swap's old value) are read-only.
package cowmod

import "sync/atomic"

type Config struct {
	N     int
	Tags  map[string]int
	Peers []string
}

var cur atomic.Pointer[Config]

// Good: build fresh, publish, never touch again.
func Publish(n int) {
	c := &Config{N: n, Tags: map[string]int{}}
	cur.Store(c)
}

// Bad: a direct field write after the publish.
func StoreThenWrite() {
	c := &Config{N: 1}
	cur.Store(c)
	c.N = 2 // want `write to c after it was published by atomic\.Pointer\.Store`
}

// Bad: the write goes through an alias of the published pointer.
func AliasWrite() {
	c := &Config{}
	d := c
	cur.Store(c)
	d.N = 3 // want `write to c after it was published by atomic\.Pointer\.Store`
}

// Bad: publishing &cfg freezes the local itself — element writes and
// rebinding both mutate what readers see.
func AddressPublish() {
	var cfg Config
	cfg.N = 1
	cur.Store(&cfg)
	cfg.N = 2      // want `write to &cfg after it was published by atomic\.Pointer\.Store`
	cfg = Config{} // want `write to &cfg after it was published by atomic\.Pointer\.Store`
}

// Bad: map entries, slice elements, and deletes all count as writes.
func ElementWrites() {
	c := &Config{Tags: map[string]int{}, Peers: make([]string, 4)}
	cur.Store(c)
	c.Tags["x"] = 1     // want `write to c after it was published by atomic\.Pointer\.Store`
	c.Peers[0] = "y"    // want `write to c after it was published by atomic\.Pointer\.Store`
	delete(c.Tags, "x") // want `write to c after it was published by atomic\.Pointer\.Store`
}

// Bad: Swap publishes its argument exactly like Store.
func SwapThenWrite(next *Config) {
	cur.Swap(next)
	next.N = 4 // want `write to next after it was published by atomic\.Pointer\.Swap`
}

// Bad: the new value handed to CompareAndSwap is frozen once the CAS
// statement executes.
func CASWrite(next *Config) {
	if !cur.CompareAndSwap(cur.Load(), next) {
		return
	}
	next.N = 9 // want `write to next after it was published by atomic\.Pointer\.CompareAndSwap`
}

// Bad: a publish inside a loop freezes the value for the rest of the
// iteration (and the next one).
func Recycle() {
	next := &Config{}
	for i := 0; i < 3; i++ {
		cur.Store(next)
		next.N = i // want `write to next after it was published by atomic\.Pointer\.Store`
	}
}

// Good: the clone-and-republish idiom — derivation stops at the copier
// call, so the fresh clone is legitimately mutable before its own
// publish.
func Bump() {
	old := cur.Load()
	next := clone(old)
	next.N++
	cur.Store(next)
}

func clone(c *Config) *Config {
	out := *c
	out.Tags = make(map[string]int, len(c.Tags))
	for k, v := range c.Tags {
		out.Tags[k] = v
	}
	return &out
}

// Good: rebinding the local abandons the published value, it does not
// mutate it.
func Rebind() {
	c := &Config{}
	cur.Store(c)
	c = &Config{N: 1}
	cur.Store(c)
}

// Bad: Load results are read-only.
func LoadWrite() {
	c := cur.Load()
	c.N = 7 // want `write through a value obtained from atomic\.Pointer\.Load`
}

// Bad: writing straight through the Load call.
func LoadDirect() {
	cur.Load().Tags["k"] = 1 // want `write through a value obtained from atomic\.Pointer\.Load`
}

// Bad: derivation follows field and element chains out of the Load.
func LoadField() {
	tags := cur.Load().Tags
	tags["hot"] = 1 // want `write through a value obtained from atomic\.Pointer\.Load`
}

// Bad: the old value returned by Swap is still visible to readers that
// loaded it earlier.
func SwapOld(next *Config) {
	old := cur.Swap(next)
	old.N = 0 // want `write through a value obtained from atomic\.Pointer\.Load`
}

type holder struct {
	atomic.Pointer[Config]
}

var h holder

// Bad: the publish goes through an embedded atomic.Pointer field.
func EmbeddedStore() {
	c := &Config{}
	h.Store(c)
	c.N = 1 // want `write to c after it was published by atomic\.Pointer\.Store`
}

// Bad: the publish goes through a bound method value.
func MethodValueStore() {
	st := cur.Store
	c := &Config{}
	st(c)
	c.N = 2 // want `write to c after it was published by atomic\.Pointer\.Store`
}

// Waived line: a deliberate in-place counter with its own protocol.
func WaivedWrite() {
	c := cur.Load()
	c.N = 1 //apollo:cowok slot is claimed by CAS elsewhere; not a COW value
}

// Waived function: the doc-comment waiver covers every finding inside.
//
//apollo:cowok ring arena with its own claim protocol
func WaivedFunc() {
	c := &Config{}
	cur.Store(c)
	c.N = 5
}
