// Package errmod is the errsink-analyzer corpus: blank-identifier
// discards, statement calls that drop error results, forwards into
// functions that never observe the parameter, infallible-by-contract
// calls, and errok waivers.
package errmod

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
)

var hits int

func mayFail() error { return errors.New("boom") }

func twoVals() (int, error) { return 0, errors.New("boom") }

// Discarding an error into the blank identifier is a finding.
func BlankAssign() {
	_ = mayFail() // want `error result of mayFail\(\) is discarded into _`
}

// The multi-value form is the same discard.
func BlankMulti() int {
	v, _ := twoVals() // want `error result of twoVals is discarded into _`
	return v
}

// A statement call whose results include an error silently drops it.
func DropStmt() {
	mayFail() // want `error result of mayFail is silently dropped`
}

// Returning the error is a sink: clean.
func Returned() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// fmt's print family, strings.Builder, and hash writes cannot fail by
// documented contract: clean.
func Infallible() string {
	fmt.Println("status")
	var b strings.Builder
	b.WriteString("x")
	h := fnv.New64a()
	h.Write([]byte("x"))
	fmt.Fprintf(&b, "%x", h.Sum64())
	return b.String()
}

// logCount never mentions its error parameter, so forwarding an error
// there discards it.
func logCount(n int, err error) { hits += n }

// DeadForward's error only reaches a function that provably ignores it.
func DeadForward() {
	err := mayFail() // want `only flows to .*logCount, which never observes its error parameter`
	logCount(1, err)
}

// observe reads its parameter, so forwarding there is a sink: clean.
func observe(err error) {
	if err != nil {
		hits++
	}
}

func LiveForward() {
	err := mayFail()
	observe(err)
}

// relay forwards its parameter to observe, so passing an error to relay
// transitively reaches a sink: clean.
func relay(err error) { observe(err) }

func TransitiveForward() {
	err := mayFail()
	relay(err)
}

// A waived drop is silent.
func Waived() {
	mayFail() //apollo:errok fire-and-forget probe; failure is expected and harmless here
}
