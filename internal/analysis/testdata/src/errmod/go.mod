module errmod

go 1.22
