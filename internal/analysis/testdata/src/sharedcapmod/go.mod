module sharedcapmod

go 1.22
