// Package sharedcapmod is the sharedcap-analyzer corpus: goroutine
// closures and stored callbacks must not capture locals the spawner
// keeps writing after the spawn.
package sharedcapmod

import (
	"sync"
	"sync/atomic"
)

// Bad: the goroutine reads n while the spawner keeps writing it.
func CountRace() {
	n := 0
	done := make(chan struct{})
	go func() { // want `go statement captures "n", which the spawner writes afterwards`
		_ = n
		close(done)
	}()
	n = 1
	<-done
}

// Good: passing the value as an argument snapshots it at the spawn.
func CountArg() {
	n := 0
	done := make(chan struct{})
	go func(v int) {
		_ = v
		close(done)
	}(n)
	n = 1
	<-done
}

// Good: every write precedes the spawn.
func WriteThenSpawn() {
	n := 41
	n++
	go func() { _ = n }()
}

type server struct {
	mu     sync.Mutex //apollo:lockrank 90
	onDrop func()
}

// Bad: the callback outlives the function through the field, and the
// spawner keeps writing the captured counter.
func (s *server) Install() {
	drops := 0
	s.onDrop = func() { drops++ } // want `stored callback captures "drops", which the spawner writes afterwards`
	drops = 0
}

var hook func()

// Bad: a callback stored in a package variable escapes the same way.
func SetHook() {
	msg := "a"
	hook = func() { _ = msg } // want `stored callback captures "msg", which the spawner writes afterwards`
	msg = "b"
}

// Good: a closure held in a plain local runs sequentially; calling it
// is ordinary control flow.
func LocalClosure() int {
	n := 0
	inc := func() { n++ }
	n = 1
	inc()
	return n
}

// Good: atomic counters are self-synchronized — method-mediated use is
// not a racy capture.
func AtomicCounter() {
	var hits atomic.Int64
	done := make(chan struct{})
	go func() {
		hits.Add(1)
		close(done)
	}()
	hits.Add(1)
	<-done
}

// Good: the goroutine writes, the spawner only reads after Wait — no
// spawner write after the spawn, nothing to flag.
func Waited() int {
	var wg sync.WaitGroup
	out := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		out = 7
	}()
	wg.Wait()
	return out
}

// Waived: the flush loop deliberately shares buf under its own
// generation protocol.
func FlushShared() {
	buf := []byte("x")
	go func() { _ = buf }() //apollo:sharedcapok generation counter fences the reuse
	buf = nil
}
