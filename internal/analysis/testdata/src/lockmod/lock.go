// Package lockmod is the lockscope-analyzer corpus: blocking work while
// a mutex is held, directly and through module callees, with lockok
// waivers.
package lockmod

import (
	"os"
	"sync"
	"time"
)

var mu sync.Mutex
var rw sync.RWMutex

func DirectIO() {
	mu.Lock()
	_, _ = os.ReadFile("x") // want `file/network I/O os\.ReadFile while mu is held`
	mu.Unlock()
	_, _ = os.ReadFile("x") // after unlock: no finding
}

func DeferredUnlock() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while mu is held`
}

func ChannelUnderLock(ch chan int) {
	rw.Lock()
	ch <- 1 // want `channel send while rw is held`
	rw.Unlock()
}

// Transitive: the callee's I/O is reported at the call site under the
// lock, with the module call path attached.
func ViaHelper() {
	mu.Lock()
	persist() // want `file/network I/O os\.WriteFile \(via lockmod\.persist\)`
	mu.Unlock()
}

func persist() {
	_ = os.WriteFile("x", nil, 0o644)
}

// An //apollo:blocking annotation alone marks a callee unsafe under a
// lock.
//
//apollo:blocking
func waits() {}

func CallsBlocking() {
	mu.Lock()
	waits() // want `call to //apollo:blocking lockmod\.waits while mu is held`
	mu.Unlock()
}

// Function-level waiver: this mutex exists to serialize exactly this
// file write.
//
//apollo:lockok the spool mutex serializes segment writes by design
func Waived() {
	mu.Lock()
	_, _ = os.ReadFile("x")
	mu.Unlock()
}

// Statement-level waiver.
func WaivedLine() {
	mu.Lock()
	_, _ = os.ReadFile("x") //apollo:lockok one-time bootstrap read under the init lock
	mu.Unlock()
}

// Goroutines launched under a lock run later, not under it: no finding.
func SpawnsWorker() {
	mu.Lock()
	go func() { _, _ = os.ReadFile("x") }()
	mu.Unlock()
}

// Pure computation under a lock is fine.
func Quiet() int {
	mu.Lock()
	defer mu.Unlock()
	return 40 + 2
}
