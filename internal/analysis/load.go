package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Name is the package name from the package clauses.
	Name string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object facts.
	Info *types.Info
}

// Program is a whole loaded module, the unit analyzers run over.
type Program struct {
	// Fset positions every parsed file.
	Fset *token.FileSet
	// ModulePath is the module path from go.mod.
	ModulePath string
	// Root is the absolute module root directory.
	Root string
	// Packages are the module's packages in dependency (topological)
	// order: a package appears after everything it imports.
	Packages []*Package

	byPath map[string]*Package
}

// ByPath returns the module package with the given import path.
func (p *Program) ByPath(path string) (*Package, bool) {
	pkg, ok := p.byPath[path]
	return pkg, ok
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load parses and type-checks every package of the module rooted at
// root. Test files (_test.go), testdata, vendor, and hidden directories
// are skipped. The module's own imports resolve to the freshly checked
// packages; standard-library imports are type-checked from GOROOT
// source, so loading needs no pre-built export data and no external
// tooling.
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: mod,
		Root:       root,
		byPath:     map[string]*Package{},
	}

	// Parse every package directory.
	var paths []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		pkg, err := parseDir(prog.Fset, path)
		if err != nil {
			return err
		}
		if pkg == nil {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := mod
		if rel != "." {
			importPath = mod + "/" + filepath.ToSlash(rel)
		}
		pkg.Path = importPath
		prog.byPath[importPath] = pkg
		paths = append(paths, importPath)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	ordered, err := topoSort(prog, paths)
	if err != nil {
		return nil, err
	}

	// The stdlib fallback importer type-checks GOROOT packages from
	// source; cgo-backed variants (net, os/user) cannot be preprocessed
	// here, so force the pure-Go build configuration — the exported type
	// surface is what matters, and it is identical.
	build.Default.CgoEnabled = false
	fallback := importer.ForCompiler(prog.Fset, "source", nil)

	for _, path := range ordered {
		pkg := prog.byPath[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Instances:  map[*ast.Ident]types.Instance{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: &moduleImporter{prog: prog, fallback: fallback},
		}
		tpkg, err := conf.Check(path, prog.Fset, pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// parseDir parses the non-test Go files of one directory, returning nil
// when the directory holds no Go package.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var name string
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") ||
			strings.HasPrefix(fn, ".") || strings.HasPrefix(fn, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, fn), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if ignored(f) {
			continue
		}
		if name == "" {
			name = f.Name.Name
		}
		if f.Name.Name != name {
			return nil, fmt.Errorf("analysis: %s: mixed packages %q and %q", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &Package{Dir: dir, Name: name, Files: files}, nil
}

// ignored reports whether the file opts out of the build ("//go:build
// ignore" tools and generators).
func ignored(f *ast.File) bool {
	for _, g := range f.Comments {
		if g.End() >= f.Package {
			break
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//go:build"))
			if text != c.Text && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

// topoSort orders module packages so every package follows its
// module-internal imports.
func topoSort(prog *Program, paths []string) ([]string, error) {
	const (
		unseen = iota
		visiting
		done
	)
	state := map[string]int{}
	var order []string
	var visit func(path string, trail []string) error
	visit = func(path string, trail []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s (%s)", path, strings.Join(trail, " -> "))
		}
		state[path] = visiting
		pkg := prog.byPath[path]
		var imports []string
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if _, ok := prog.byPath[p]; ok {
					imports = append(imports, p)
				}
			}
		}
		sort.Strings(imports)
		for _, imp := range imports {
			if err := visit(imp, append(trail, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports to the freshly checked
// packages and everything else through the GOROOT source importer.
type moduleImporter struct {
	prog     *Program
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.prog.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: import %s before it was checked", path)
		}
		return pkg.Types, nil
	}
	return m.fallback.Import(path)
}
