package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SharedCap flags the capture-then-keep-writing race: a goroutine
// closure (go func(){...}()) or a stored callback (a function literal
// assigned to a struct field or package variable) captures a mutable
// local, and the spawner keeps writing that local after the goroutine
// is launched or the callback escapes. Both sides now touch the same
// cell with no happens-before edge — the pattern behind the original
// uploader.Flush bug and the PR-4 drift-retrigger flap. The fix is to
// pass the value as an argument, copy it before the spawn, or move the
// writes before the go statement; a deliberately shared cell
// (externally synchronized) is waived with //apollo:sharedcapok
// <reason> on the go statement's, the assignment's, or the write's
// line.
//
// Reads by the closure count as capture: the race needs only one
// writer. Captures whose every use is a method call (sync.Mutex,
// sync.WaitGroup, atomic values) are not flagged — method-mediated
// state carries its own synchronization and is never written by
// assignment.
var SharedCap = &Analyzer{
	Name:       "sharedcap",
	Doc:        "goroutine closures and stored callbacks must not share locals the spawner keeps writing",
	Run:        runSharedCap,
	runTracked: runSharedCapTracked,
}

func runSharedCap(prog *Program) []Diagnostic {
	return runSharedCapTracked(prog, nil)
}

func runSharedCapTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	var fis []*funcInfo
	for _, fi := range g.funcs {
		if fi.decl.Body != nil {
			fis = append(fis, fi)
		}
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })

	var diags []Diagnostic
	for _, fi := range fis {
		diags = append(diags, sharedCapCheckFunc(g.prog, fi, uses)...)
	}
	return diags
}

// escape is one point where a function literal leaves the spawner's
// control: a go statement or a store into a field/global.
type escape struct {
	lit  *ast.FuncLit
	pos  token.Pos // the go statement or assignment, for waiver lookup
	kind string    // "go statement" or "stored callback"
}

func sharedCapCheckFunc(prog *Program, fi *funcInfo, uses *waiverUse) []Diagnostic {
	pkg := fi.pkg
	fset := prog.Fset
	lines := lineDirectives(fset, fi.file)
	parents := parentsOf(fi.decl.Body)
	writes := writesIn(pkg, fi.decl.Body)

	var escapes []escape
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				escapes = append(escapes, escape{lit: lit, pos: n.Pos(), kind: "go statement"})
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if storedTarget(pkg, n.Lhs[i]) {
					escapes = append(escapes, escape{lit: lit, pos: n.Pos(), kind: "stored callback"})
				}
			}
		}
		return true
	})

	var diags []Diagnostic
	for _, esc := range escapes {
		captured := capturedVars(pkg, fi, esc.lit)
		if len(captured) == 0 {
			continue
		}
		stmt := enclosingStmt(parents, esc.lit)
		if stmt == nil {
			continue
		}
		after := computeAfter(parents, stmt)
		reported := map[*types.Var]bool{}
		for _, w := range writes {
			if !after.contains(w.pos) || within(esc.lit, w.pos) || w.inGo {
				continue
			}
			v, ok := baseVar(pkg, w.base)
			if !ok || !captured[v] || reported[v] {
				continue
			}
			if suppressedBy(lines, fset, esc.pos, dirSharedCapOK, uses) ||
				suppressedBy(lines, fset, w.pos, dirSharedCapOK, uses) {
				reported[v] = true
				continue
			}
			reported[v] = true
			diags = append(diags, Diagnostic{
				Pos:      fset.Position(esc.pos),
				Analyzer: "sharedcap",
				Message: fmt.Sprintf("%s captures %q, which the spawner writes afterwards (line %d): unsynchronized shared write; pass it as an argument, copy it first, or waive with //apollo:sharedcapok",
					esc.kind, v.Name(), fset.Position(w.pos).Line),
			})
		}
	}
	return diags
}

// storedTarget reports whether the assignment target outlives the
// function: a struct field, an element of a non-local container, or a
// package-level variable. Plain locals holding a closure are not
// escapes — calling them is ordinary sequential control flow.
func storedTarget(pkg *Package, lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			// Package-level variable.
			return v.Parent() == pkg.Types.Scope()
		}
	}
	return false
}

// capturedVars returns the locals of fi that the literal captures and
// uses in a way a concurrent write could race with: any identifier use
// that is not purely the receiver of a method call. Variables of
// self-synchronizing types (mutexes, wait groups, atomics, channels,
// sync.Once) are skipped entirely.
func capturedVars(pkg *Package, fi *funcInfo, lit *ast.FuncLit) map[*types.Var]bool {
	parents := parentsOf(lit)
	out := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return true
		}
		// Declared in the enclosing function, outside the literal.
		if v.Pos() < fi.decl.Pos() || v.Pos() >= fi.decl.End() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		if selfSynchronized(v.Type()) {
			return true
		}
		// x.M(...) where x is only a method receiver: the method
		// mediates the access.
		if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
			if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
				if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					return true
				}
			}
		}
		out[v] = true
		return true
	})
	return out
}

// selfSynchronized reports types whose shared use is the point: sync
// primitives, atomics, and channels.
func selfSynchronized(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// within reports whether pos falls inside node's source range.
func within(node ast.Node, pos token.Pos) bool {
	return pos >= node.Pos() && pos < node.End()
}
