package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// CowSafe enforces the copy-on-write publication discipline every
// lock-free path in the module rests on: a value published through an
// atomic.Pointer Store/Swap/CompareAndSwap is frozen at the publish
// call — no write through any alias of it may be sequenced after —
// and a value obtained from Load (or the old value returned by Swap)
// is read-only: writes to its fields, map entries, or slice elements
// are diagnostics. -race rarely catches this class because the racing
// reader has to hit the mutated word in the narrow window; the
// discipline is checkable statically, so it is checked statically.
//
// Deliberate exceptions (a mutable ring behind a pointer with its own
// claim protocol, quiesced-buffer recycling) are waived with
// //apollo:cowok <reason> — on the write's line, or on the function's
// doc comment to waive a whole deliberately-mutating function.
var CowSafe = &Analyzer{
	Name:       "cowsafe",
	Doc:        "values published through atomic.Pointer are frozen; Load results are read-only",
	Run:        runCowSafe,
	runTracked: runCowSafeTracked,
}

func runCowSafe(prog *Program) []Diagnostic {
	return runCowSafeTracked(prog, nil)
}

func runCowSafeTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	var fis []*funcInfo
	for _, fi := range g.funcs {
		if fi.decl.Body != nil {
			fis = append(fis, fi)
		}
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })

	var diags []Diagnostic
	for _, fi := range fis {
		diags = append(diags, cowCheckFunc(prog, fi, uses)...)
	}
	return diags
}

// funcCowOK reports a function-level //apollo:cowok waiver (with a
// reason), recording its use.
func funcCowOK(fi *funcInfo, uses *waiverUse) bool {
	if args, pos, ok := funcDirectivePos(fi.decl, dirCowOK); ok && args != "" {
		uses.mark(pos)
		return true
	}
	return false
}

func cowCheckFunc(prog *Program, fi *funcInfo, uses *waiverUse) []Diagnostic {
	pkg := fi.pkg
	fset := prog.Fset
	lines := lineDirectives(fset, fi.file)
	flow := newFnFlow(pkg, fi.decl)
	writes := writesIn(pkg, fi.decl.Body)
	fnWaived := funcCowOK(fi, uses)

	var diags []Diagnostic
	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if seen[pos] {
			return
		}
		if fnWaived || suppressedBy(lines, fset, pos, dirCowOK, uses) {
			seen[pos] = true
			return
		}
		seen[pos] = true
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "cowsafe",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	// Rule 1: no write through any alias of a published value after the
	// publish call.
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := atomicPtrCall(pkg, flow.bindings, call)
		if !ok || method == "Load" {
			return true
		}
		pub := publishedArg(method, call)
		if pub == nil {
			return true
		}
		roots := flow.rootsOf(pub)
		if roots.empty() {
			return true
		}
		stmt := enclosingStmt(flow.parents, call)
		if stmt == nil {
			return true
		}
		after := computeAfter(flow.parents, stmt)
		pubLine := fset.Position(call.Pos()).Line
		for _, w := range writes {
			if !after.contains(w.pos) || !flow.hits(w, roots) {
				continue
			}
			report(w.pos,
				"write to %s after it was published by atomic.Pointer.%s (line %d): published values are frozen; build a fresh copy and republish, or waive with //apollo:cowok",
				describeExpr(pub), method, pubLine)
		}
		return true
	})

	// Rule 2: values reached through Load (or Swap's old value) are
	// read-only.
	for _, w := range writes {
		if w.rebind {
			continue
		}
		if flow.loadDerived(w.base) {
			report(w.pos,
				"write through a value obtained from atomic.Pointer.Load: published values are read-only; clone before mutating, or waive with //apollo:cowok")
		}
	}
	return diags
}

// describeExpr renders the published expression compactly for
// diagnostics ("&next", "e", "sh.spare").
func describeExpr(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return "&" + describeExpr(x.X)
		}
	case *ast.SelectorExpr:
		return describeExpr(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return describeExpr(x.X) + "[...]"
	case *ast.CompositeLit:
		if t := x.Type; t != nil {
			if id, ok := t.(*ast.Ident); ok {
				return id.Name + "{...}"
			}
		}
		return "composite literal"
	case *ast.StarExpr:
		return "*" + describeExpr(x.X)
	}
	return "the published value"
}
