package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockScope flags blocking work performed while a sync.Mutex or
// sync.RWMutex is held: file/network I/O, channel operations, time.Sleep,
// and calls to //apollo:blocking functions — directly or through
// module-internal callees (a transitive may-block summary is computed
// per function). Lock regions are tracked lexically between x.Lock()
// (or x.RLock()) and the matching x.Unlock() in the same block; a
// deliberate design choice (e.g. persisting under a publish mutex) is
// waived with //apollo:lockok <reason> on the function or statement.
var LockScope = &Analyzer{
	Name:       "lockscope",
	Doc:        "no blocking work while a mutex is held",
	Run:        runLockScope,
	runTracked: runLockScopeTracked,
}

func runLockScope(prog *Program) []Diagnostic {
	return runLockScopeTracked(prog, nil)
}

// runLockScopeTracked is runLockScope with waiver-use tracking. With a
// non-nil uses, functions waived with //apollo:lockok are scanned anyway
// — their findings are discarded, but producing any marks the waiver as
// live; the same applies to statement- and line-level lockok waivers.
func runLockScopeTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	s := &lockScanner{g: g, summaries: map[*types.Func]*blockFact{}, visiting: map[*types.Func]bool{}, uses: uses}
	var fis []*funcInfo
	for _, fi := range g.funcs {
		fis = append(fis, fi)
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].decl.Pos() < fis[j].decl.Pos() })
	for _, fi := range fis {
		if fi.decl.Body == nil {
			continue
		}
		if fi.lockOK {
			if uses != nil {
				pos := fi.lockOKPos
				s.sink = func(Diagnostic) { uses.mark(pos) }
				s.scanFunc(fi)
				s.sink = nil
			}
			continue
		}
		s.scanFunc(fi)
	}
	return s.diags
}

// blockFact explains why a function may block: the root reason and the
// module call path that reaches it.
type blockFact struct {
	why  string
	path []string
}

type lockScanner struct {
	g         *graph
	summaries map[*types.Func]*blockFact
	visiting  map[*types.Func]bool
	uses      *waiverUse
	// sink, when set, consumes diagnostics instead of s.diags — the
	// waiver-use tracking mode for //apollo:lockok'd regions.
	sink  func(Diagnostic)
	diags []Diagnostic
}

// emit routes one diagnostic to the active sink or the result list.
func (s *lockScanner) emit(d Diagnostic) {
	if s.sink != nil {
		s.sink(d)
		return
	}
	s.diags = append(s.diags, d)
}

// scanFunc walks one function's statement blocks tracking held locks.
func (s *lockScanner) scanFunc(fi *funcInfo) {
	lines := lineDirectives(s.g.prog.Fset, fi.file)
	bindings := methodBindings(fi.pkg, fi.decl.Body)
	s.scanStmts(fi, fi.decl.Body.List, map[string]bool{}, lines, bindings)
}

// scanStmts processes a statement sequence in order, maintaining the set
// of held lock expressions and checking every statement executed while a
// lock is held.
func (s *lockScanner) scanStmts(fi *funcInfo, stmts []ast.Stmt, held map[string]bool,
	lines map[int][]directive, bindings map[types.Object]*types.Func) {
	fset := s.g.prog.Fset
	for _, stmt := range stmts {
		if recv, op, ok := lockOp(fi.pkg, stmt); ok {
			switch op {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			continue
		}
		if d, ok := stmt.(*ast.DeferStmt); ok {
			// defer x.Unlock() keeps the lock held to the end of the
			// lexical region; any other defer is checked like a call if
			// a lock is held.
			if recv, op, ok := deferLockOp(fi.pkg, d); ok && (op == "Unlock" || op == "RUnlock") {
				_ = recv
				continue
			}
		}
		if len(held) > 0 {
			if d, ok := lineDirectiveAt(lines, fset, stmt.Pos(), dirLockOK); ok {
				if s.uses != nil {
					// Re-scan under a marking sink: the waiver is live
					// only if it still suppresses something.
					prev := s.sink
					s.sink = func(Diagnostic) { s.uses.mark(d.pos) } //apollo:sharedcapok synchronous save/restore on one goroutine: checkHeld runs and returns before the sink is put back
					s.checkHeld(fi, stmt, held, lines, bindings)
					s.sink = prev
				}
				continue
			}
			s.checkHeld(fi, stmt, held, lines, bindings)
			continue
		}
		// Not holding a lock: descend into nested blocks (and function
		// literals) to find lock regions there.
		for _, body := range childBlocks(stmt) {
			s.scanStmts(fi, body, map[string]bool{}, lines, bindings)
		}
	}
}

// checkHeld inspects one statement executed under held locks, skipping
// nested function literals (they run later, not under this lock).
func (s *lockScanner) checkHeld(fi *funcInfo, stmt ast.Stmt, held map[string]bool,
	lines map[int][]directive, bindings map[types.Object]*types.Func) {
	fset := s.g.prog.Fset
	heldNames := make([]string, 0, len(held))
	for h := range held {
		heldNames = append(heldNames, h)
	}
	sort.Strings(heldNames)
	heldDesc := strings.Join(heldNames, ", ")

	report := func(pos token.Pos, msg string, chain []string) {
		if suppressedBy(lines, fset, pos, dirLockOK, s.uses) {
			return
		}
		s.emit(Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "lockscope",
			Message:  fmt.Sprintf("%s while %s is held", msg, heldDesc),
			Chain:    chain,
		})
	}

	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			report(n.Pos(), "channel send", nil)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive", nil)
			}
		case *ast.SelectStmt:
			report(n.Pos(), "select statement", nil)
		case *ast.CallExpr:
			callees, ext := s.g.resolve(fi.pkg, bindings, n)
			if ext != nil {
				if why := blockingExternal(ext); why != "" {
					report(n.Pos(), why, nil)
				}
				return true
			}
			for _, c := range callees {
				if c.fn.blocking {
					report(n.Pos(), "call to //apollo:blocking "+displayName(c.fn.obj), nil)
					continue
				}
				if fact := s.summary(c.fn); fact != nil {
					chain := append([]string{displayName(fi.obj)}, fact.path...)
					report(n.Pos(), fact.why+" (via "+displayName(c.fn.obj)+")", chain)
				}
			}
		}
		return true
	})
}

// summary reports whether a module function may block, transitively
// through its module-internal callees. Recursion cycles resolve to
// non-blocking; interface dispatch and dynamic function values are not
// followed.
func (s *lockScanner) summary(fi *funcInfo) *blockFact {
	if fact, ok := s.summaries[fi.obj]; ok {
		return fact
	}
	if s.visiting[fi.obj] {
		return nil
	}
	s.visiting[fi.obj] = true
	defer delete(s.visiting, fi.obj)

	var fact *blockFact
	if fi.blocking {
		fact = &blockFact{why: "call to //apollo:blocking " + displayName(fi.obj), path: []string{displayName(fi.obj)}}
	} else if fi.decl.Body != nil {
		bindings := methodBindings(fi.pkg, fi.decl.Body)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if fact != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				fact = &blockFact{why: "channel send", path: []string{displayName(fi.obj)}}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					fact = &blockFact{why: "channel receive", path: []string{displayName(fi.obj)}}
				}
			case *ast.SelectStmt:
				fact = &blockFact{why: "select statement", path: []string{displayName(fi.obj)}}
			case *ast.CallExpr:
				callees, ext := s.g.resolve(fi.pkg, bindings, n)
				if ext != nil {
					if why := blockingExternal(ext); why != "" {
						fact = &blockFact{why: why, path: []string{displayName(fi.obj)}}
					}
					return true
				}
				for _, c := range callees {
					if c.viaInterface != "" {
						continue
					}
					if sub := s.summary(c.fn); sub != nil {
						fact = &blockFact{why: sub.why, path: append([]string{displayName(fi.obj)}, sub.path...)}
						return false
					}
				}
			}
			return true
		})
	}
	s.summaries[fi.obj] = fact
	return fact
}

// blockingExternal classifies out-of-module calls that block or perform
// I/O, returning "" for benign calls.
func blockingExternal(obj *types.Func) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	name := obj.Name()
	switch pkg.Path() {
	case "os", "net", "net/http", "io/fs", "os/exec", "database/sql", "syscall":
		return "file/network I/O " + pkg.Path() + "." + name
	case "io", "io/ioutil":
		switch name {
		case "ReadAll", "Copy", "CopyN", "CopyBuffer", "ReadFile", "WriteFile":
			return "I/O call " + pkg.Path() + "." + name
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Fscan") {
			return "stream write fmt." + name
		}
	case "log", "log/slog":
		return "log write " + pkg.Path() + "." + name
	case "sync":
		switch receiverBaseName(obj) + "." + name {
		case "WaitGroup.Wait", "Cond.Wait":
			return "blocks on sync." + receiverBaseName(obj) + "." + name
		}
	}
	return ""
}

// lockOp matches a statement of the form x.Lock() / x.RLock() /
// x.Unlock() / x.RUnlock() on a sync mutex, returning the rendered
// receiver expression and the operation.
func lockOp(pkg *Package, stmt ast.Stmt) (recv, op string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	return lockCall(pkg, es.X)
}

// deferLockOp matches defer x.Unlock().
func deferLockOp(pkg *Package, d *ast.DeferStmt) (recv, op string, ok bool) {
	return lockCall(pkg, d.Call)
}

func lockCall(pkg *Package, e ast.Expr) (recv, op string, ok bool) {
	expr, op, ok := lockCallExpr(pkg, e)
	if !ok {
		return "", "", false
	}
	return types.ExprString(expr), op, true
}

// lockCallExpr is lockCall returning the receiver expression itself,
// which lockorder resolves to a lock identity (field or variable object)
// instead of a rendered string.
func lockCallExpr(pkg *Package, e ast.Expr) (recv ast.Expr, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return nil, "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	obj, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFunc || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, "", false
	}
	base := receiverBaseName(obj)
	if base != "Mutex" && base != "RWMutex" {
		return nil, "", false
	}
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.X, obj.Name(), true
	}
	return nil, "", false
}

// childBlocks returns the statement lists nested directly inside a
// statement (if/for/switch/select bodies, blocks, function literals).
func childBlocks(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, st.List)
	case *ast.IfStmt:
		out = append(out, st.Body.List)
		if st.Else != nil {
			out = append(out, childBlocks(st.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, st.Body.List)
	case *ast.RangeStmt:
		out = append(out, st.Body.List)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, childBlocks(st.Stmt)...)
	case *ast.ExprStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, lit.Body.List)
				return false
			}
			return true
		})
	case *ast.AssignStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, lit.Body.List)
				return false
			}
			return true
		})
	}
	return out
}
