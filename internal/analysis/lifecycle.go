package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lifecycle enforces spawn/stop pairing on components: a named type with
// a Start*/Run/Serve or Close/Stop/Shutdown method owns every goroutine
// its methods and constructors spawn, so each long-running spawn must be
// tied to a stop
// signal the component (or its caller) provably fires — and firing it
// must join, or Close returns while workers still run. For every `go`
// statement in a component method or constructor whose body is
// long-running (a condition-less loop or a range over a channel), the
// analyzer classifies the body's exit signals:
//
//   - a ctx.Done()-style accessor or a channel parameter: caller-owned,
//     accepted;
//   - a local channel of the spawning function: something must close or
//     signal it — either the spawning function itself (including defers)
//     or an escaping closure (returned stop func, stored field) — and an
//     escaping closure must also join (receive or WaitGroup.Wait) before
//     returning;
//   - a channel field of the component: the component's
//     Close/Stop/Shutdown method must fire that field and must join.
//
// Diagnostics: a long-running spawn with no exit signal at all, a stop
// channel nothing ever fires, and a Close/Stop (or stop closure) that
// fires the signal but never joins. //apollo:ctxok <reason> on the `go`
// statement's line waives a finding (deliberately detached goroutine).
var Lifecycle = &Analyzer{
	Name:       "lifecycle",
	Doc:        "component goroutines must pair with a stop signal that Close/Stop fires and joins",
	Run:        runLifecycle,
	runTracked: runLifecycleTracked,
}

func runLifecycle(prog *Program) []Diagnostic {
	return runLifecycleTracked(prog, nil)
}

// component is a module named type with lifecycle methods.
type component struct {
	name    *types.TypeName
	methods map[string]*funcInfo
	// ctors are package functions returning the component type.
	ctors []*funcInfo
}

// isLifecycleName reports the method names that qualify a type as a
// component (it runs something); teardown lives in Close/Stop/Shutdown.
func isLifecycleName(name string) bool {
	return name == "Run" || name == "Serve" || strings.HasPrefix(name, "Start")
}

// namedRecv returns the named type a method's receiver is declared on.
func namedRecv(obj *types.Func) *types.TypeName {
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// buildComponents indexes module components, their methods, and their
// constructors.
func buildComponents(g *graph) map[*types.TypeName]*component {
	comps := map[*types.TypeName]*component{}
	get := func(tn *types.TypeName) *component {
		c := comps[tn]
		if c == nil {
			c = &component{name: tn, methods: map[string]*funcInfo{}}
			comps[tn] = c
		}
		return c
	}
	for _, fi := range g.funcs {
		if tn := namedRecv(fi.obj); tn != nil {
			get(tn).methods[fi.obj.Name()] = fi
		}
	}
	// Constructors: package functions whose results include a component
	// type.
	for _, fi := range g.funcs {
		if fi.obj.Type().(*types.Signature).Recv() != nil {
			continue
		}
		results := fi.obj.Type().(*types.Signature).Results()
		for i := 0; i < results.Len(); i++ {
			t := results.At(i).Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				if c, ok := comps[n.Obj()]; ok {
					c.ctors = append(c.ctors, fi)
				}
			}
		}
	}
	// Only types with a lifecycle are components: they run something
	// (Start*/Run/Serve) or own teardown (Close/Stop/Shutdown) — a type
	// with a Close and worker goroutines is exactly the shape whose
	// spawn/stop pairing must hold.
	for tn, c := range comps {
		qualifies := false
		for name := range c.methods {
			if isLifecycleName(name) || isStopName(name) {
				qualifies = true
			}
		}
		if !qualifies {
			delete(comps, tn)
		}
	}
	return comps
}

// isStopName reports the teardown method names a component may own.
func isStopName(name string) bool {
	return name == "Close" || name == "Stop" || name == "Shutdown"
}

func runLifecycleTracked(prog *Program, uses *waiverUse) []Diagnostic {
	g := buildGraph(prog)
	comps := buildComponents(g)

	type site struct {
		comp *component
		fi   *funcInfo // spawning method or constructor
		stmt *ast.GoStmt
	}
	var sites []site
	for _, c := range comps {
		var owners []*funcInfo
		for _, fi := range c.methods {
			owners = append(owners, fi)
		}
		owners = append(owners, c.ctors...)
		for _, fi := range owners {
			if fi.decl.Body == nil {
				continue
			}
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					sites = append(sites, site{c, fi, gs})
				}
				return true
			})
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].stmt.Pos() < sites[j].stmt.Pos() })

	var diags []Diagnostic
	seen := map[*ast.GoStmt]bool{}
	for _, s := range sites {
		if seen[s.stmt] {
			continue // a ctor returning two component types reports once
		}
		seen[s.stmt] = true
		diags = append(diags, lifecycleCheckSpawn(prog, g, s.comp, s.fi, s.stmt, uses)...)
	}
	return diags
}

// lifecycleCheckSpawn verifies one go statement against the spawn/stop
// pairing contract.
func lifecycleCheckSpawn(prog *Program, g *graph, comp *component, fi *funcInfo, gs *ast.GoStmt, uses *waiverUse) []Diagnostic {
	lines := lineDirectives(prog.Fset, fi.file)
	report := func(format string, args ...any) []Diagnostic {
		if suppressedBy(lines, prog.Fset, gs.Pos(), dirCtxOK, uses) {
			return nil
		}
		return []Diagnostic{{
			Pos:      prog.Fset.Position(gs.Pos()),
			Analyzer: "lifecycle",
			Message:  fmt.Sprintf(format, args...),
		}}
	}

	// Resolve the goroutine body and its own package/function context:
	// a literal runs in the spawner, a named callee in its declaration.
	var body *ast.BlockStmt
	bodyFi := fi // function whose scope the body's variables live in
	var goroutineParams []*types.Var
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		bindings := methodBindings(fi.pkg, fi.decl.Body)
		callees, _ := g.resolve(fi.pkg, bindings, gs.Call)
		if len(callees) != 1 || callees[0].viaInterface != "" || callees[0].fn.decl.Body == nil {
			return nil // external or dynamic spawn target: out of scope
		}
		bodyFi = callees[0].fn
		body = bodyFi.decl.Body
		goroutineParams = paramObjs(bodyFi)
	}
	if !longRunningBody(bodyFi.pkg, body) {
		return nil // bounded work needs no stop signal
	}

	// Collect candidate exit signals: receives and channel ranges in the
	// goroutine body (select cases included).
	type signal struct {
		expr ast.Expr
	}
	var signals []signal
	sawDone := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				signals = append(signals, signal{n.X})
			}
		case *ast.RangeStmt:
			if _, isChan := exprChanType(bodyFi.pkg.Info, n.X); isChan {
				signals = append(signals, signal{n.X})
			}
		case *ast.CallExpr:
			// ctx.Done()-style accessor: a zero-arg Done() returning a
			// channel (sync.WaitGroup's Done returns nothing and is not a
			// cancellation signal).
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(n.Args) == 0 {
				if _, isChan := exprChanType(bodyFi.pkg.Info, n); isChan {
					sawDone = true
				}
			}
		}
		return true
	})
	if sawDone {
		return nil // ctx-scoped goroutine: cancellation is caller-owned
	}
	if len(signals) == 0 {
		return report("%s spawns a long-running goroutine with no stop signal; tie it to a channel %s's Close/Stop fires",
			displayName(fi.obj), comp.name.Name())
	}

	// One provably satisfied signal is enough: a select on stop+data only
	// needs the stop leg wired.
	var firstFailure []Diagnostic
	for _, sig := range signals {
		diag := lifecycleCheckSignal(prog, comp, fi, bodyFi, gs, goroutineParams, sig.expr, report)
		if diag == nil {
			return nil
		}
		if firstFailure == nil {
			firstFailure = diag
		}
	}
	return firstFailure
}

// lifecycleCheckSignal proves one candidate exit signal satisfied, or
// returns the diagnostic explaining why it is not.
func lifecycleCheckSignal(prog *Program, comp *component, fi, bodyFi *funcInfo, gs *ast.GoStmt,
	goroutineParams []*types.Var, expr ast.Expr, report func(string, ...any) []Diagnostic) []Diagnostic {
	root, path, ok := pathOf(bodyFi.pkg, expr)
	if !ok {
		return report("%s spawns a goroutine whose stop signal %s cannot be traced to a channel %s controls",
			displayName(fi.obj), types.ExprString(expr), comp.name.Name())
	}

	// Receiver-rooted field path: the component's stop method must fire
	// it and join.
	recvVar := (*types.Var)(nil)
	if sig, ok := bodyFi.obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		recvVar = sig.Recv()
	}
	if dot := strings.IndexAny(path, ".["); dot >= 0 && (root == recvVar || isComponentTyped(root, comp)) {
		field := fieldOf(path)
		stop := componentStopMethod(comp)
		if stop == nil {
			return report("%s spawns a goroutine ranging over %s but %s has no Close/Stop/Shutdown to fire it",
				displayName(fi.obj), types.ExprString(expr), comp.name.Name())
		}
		if !methodFiresField(stop, field) {
			return report("%s spawns a goroutine stopped by field %s but %s.%s never closes or signals it",
				displayName(fi.obj), field, comp.name.Name(), stop.obj.Name())
		}
		if !bodyJoins(stop.pkg, stop.decl.Body) {
			return report("%s.%s closes %s but never joins the worker goroutines; receive from a done channel or Wait on a WaitGroup before returning",
				comp.name.Name(), stop.obj.Name(), field)
		}
		return nil
	}

	// Plain channel variable: a goroutine parameter maps back to the
	// spawn-site argument; otherwise it is a spawner local or parameter.
	v := root
	if bodyFi != fi {
		mapped := false
		for i, p := range goroutineParams {
			if p == v {
				if arg := lifecycleArgAt(fi, gs.Call, bodyFi, i); arg != nil {
					if av := chanVar(fi.pkg, arg); av != nil {
						v = av
						mapped = true
					}
				}
				break
			}
		}
		if !mapped {
			return nil // untraceable pass-through: trust the caller
		}
	}
	if isParamOf(fi, v) {
		return nil // caller-owned channel: the caller fires it
	}

	// Spawner-local channel: find the fire site.
	fire := findFire(fi, v)
	if fire == fireNone {
		return report("%s spawns a goroutine stopped by %s, but nothing ever closes or signals it",
			displayName(fi.obj), v.Name())
	}
	if fire == fireEscaping && !fireJoins(fi, v) {
		return report("the stop closure for %s fires the signal but never joins; receive from a done channel or Wait on a WaitGroup before returning",
			v.Name())
	}
	return nil
}

// fieldOf extracts the first field segment of a pathOf path
// ("t.work[]" -> "work").
func fieldOf(path string) string {
	rest := path
	if i := strings.Index(rest, "."); i >= 0 {
		rest = rest[i+1:]
	}
	if i := strings.IndexAny(rest, ".["); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// isComponentTyped reports whether a variable holds the component type
// (a constructor's local instance).
func isComponentTyped(v *types.Var, comp *component) bool {
	if v == nil {
		return false
	}
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == comp.name
}

// componentStopMethod returns the component's teardown method, Close
// preferred.
func componentStopMethod(comp *component) *funcInfo {
	for _, name := range []string{"Close", "Stop", "Shutdown"} {
		if fi, ok := comp.methods[name]; ok && fi.decl.Body != nil {
			return fi
		}
	}
	return nil
}

// methodFiresField reports whether a method closes or sends on a
// receiver field with the given name, directly or through a range
// variable over that field.
func methodFiresField(fi *funcInfo, field string) bool {
	recv := fi.obj.Type().(*types.Signature).Recv()
	// Range value variables currently iterating the field.
	rangeVars := map[*types.Var]bool{}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		root, path, ok := pathOf(fi.pkg, rs.X)
		if !ok || root != recv || fieldOf(path) != field {
			return true
		}
		if id, ok := rs.Value.(*ast.Ident); ok {
			if v, ok := fi.pkg.Info.Defs[id].(*types.Var); ok {
				rangeVars[v] = true
			}
		}
		return true
	})
	fires := false
	firesExpr := func(e ast.Expr) bool {
		if root, path, ok := pathOf(fi.pkg, e); ok && root == recv && fieldOf(path) == field {
			return true
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := fi.pkg.Info.Uses[id].(*types.Var); ok && rangeVars[v] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if fires {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if firesExpr(n.Args[0]) {
					fires = true
				}
			}
		case *ast.SendStmt:
			if firesExpr(n.Chan) {
				fires = true
			}
		}
		return true
	})
	return fires
}

// fire classification for a spawner-local stop channel.
type fireKind int

const (
	fireNone fireKind = iota
	// fireLocal: fired at the spawning function's own top level
	// (including defers): runs when the function returns.
	fireLocal
	// fireEscaping: fired inside a closure that escapes (returned,
	// stored, or passed); the closure is the stop path and must join.
	fireEscaping
)

// findFire locates close(v) / v <- sites for a local stop channel and
// classifies where they run.
func findFire(fi *funcInfo, v *types.Var) fireKind {
	kind := fireNone
	parents := parentsOf(fi.decl.Body)
	markFire := func(n ast.Node) {
		// Classify by the outermost enclosing function literal: none means
		// the fire runs in the spawner's own frame (a return/defer path).
		var outermost *ast.FuncLit
		for p := parents[n]; p != nil; p = parents[p] {
			if lit, ok := p.(*ast.FuncLit); ok {
				outermost = lit
			}
		}
		if outermost == nil {
			kind = fireLocal
			return
		}
		if kind != fireLocal && funcLitEscapes(fi, parents, outermost) {
			kind = fireEscaping
		}
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if av := chanVar(fi.pkg, n.Args[0]); av == v {
					markFire(n)
				}
			}
		case *ast.SendStmt:
			if av := chanVar(fi.pkg, n.Chan); av == v {
				markFire(n)
			}
		}
		return true
	})
	return kind
}

// funcLitEscapes reports whether a function literal leaves the spawning
// function: returned, assigned to a field, passed as an argument, or
// bound to a local that is used again.
func funcLitEscapes(fi *funcInfo, parents map[ast.Node]ast.Node, lit *ast.FuncLit) bool {
	switch p := parents[lit].(type) {
	case *ast.ReturnStmt, *ast.CallExpr, *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != ast.Expr(lit) {
				continue
			}
			if i >= len(p.Lhs) {
				return true
			}
			switch lhs := p.Lhs[i].(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				return true // stored into a field or collection
			case *ast.Ident:
				// Bound to a local: escaping iff the local is used after.
				obj := fi.pkg.Info.Defs[lhs]
				if obj == nil {
					obj = fi.pkg.Info.Uses[lhs]
				}
				used := 0
				ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && fi.pkg.Info.Uses[id] == obj && obj != nil {
						used++
					}
					return true
				})
				return used > 0
			}
		}
	}
	return false
}

// fireJoins reports whether some escaping closure that fires v also
// joins (receives or Waits) before returning.
func fireJoins(fi *funcInfo, v *types.Var) bool {
	parents := parentsOf(fi.decl.Body)
	joins := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if joins {
			return false
		}
		fires := false
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if av := chanVar(fi.pkg, n.Args[0]); av == v {
					fires = true
				}
			}
		case *ast.SendStmt:
			if av := chanVar(fi.pkg, n.Chan); av == v {
				fires = true
			}
		}
		if !fires {
			return true
		}
		var outermost *ast.FuncLit
		for p := parents[n]; p != nil; p = parents[p] {
			if lit, ok := p.(*ast.FuncLit); ok {
				outermost = lit
			}
		}
		if outermost != nil && bodyJoins(fi.pkg, outermost.Body) {
			joins = true
		}
		return true
	})
	return joins
}

// isParamOf reports whether v is a parameter (or receiver) of fi.
func isParamOf(fi *funcInfo, v *types.Var) bool {
	for _, p := range paramObjs(fi) {
		if p == v {
			return true
		}
	}
	return false
}

// lifecycleArgAt maps a goroutine callee's paramObjs index back to the
// spawn-site argument expression (nil when out of range, e.g. the
// receiver of a bound method call maps to the selector base).
func lifecycleArgAt(fi *funcInfo, call *ast.CallExpr, callee *funcInfo, idx int) ast.Expr {
	hasRecv := callee.obj.Type().(*types.Signature).Recv() != nil
	if hasRecv {
		if idx == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		idx--
	}
	if idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}
