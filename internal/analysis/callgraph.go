package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// funcInfo is one module function declaration with its annotations.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	file *ast.File

	hot      bool
	blocking bool
	cold     bool
	lockOK   bool

	// Directive comment positions, for waiver-use tracking (NoPos when
	// the directive is absent).
	blockingPos token.Pos
	coldPos     token.Pos
	lockOKPos   token.Pos
}

// graph indexes every module function and resolves call sites through
// the type-checked AST: direct calls, method calls, locally bound method
// values, and interface dispatch onto module-local concrete types.
type graph struct {
	prog  *Program
	funcs map[*types.Func]*funcInfo
	// impls caches interface-method resolution: interface type string +
	// method name -> implementing module methods.
	impls map[string][]*funcInfo
}

// buildGraph indexes the program's function declarations.
func buildGraph(prog *Program) *graph {
	g := &graph{prog: prog, funcs: map[*types.Func]*funcInfo{}, impls: map[string][]*funcInfo{}}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{obj: obj, decl: fd, pkg: pkg, file: file}
				_, fi.hot = funcDirective(fd, dirHotPath)
				_, fi.blockingPos, fi.blocking = funcDirectivePos(fd, dirBlocking)
				if args, pos, ok := funcDirectivePos(fd, dirColdPath); ok && args != "" {
					fi.cold = true
					fi.coldPos = pos
				}
				if args, pos, ok := funcDirectivePos(fd, dirLockOK); ok && args != "" {
					fi.lockOK = true
					fi.lockOKPos = pos
				}
				g.funcs[obj] = fi
			}
		}
	}
	return g
}

// inModule reports whether the object belongs to the analyzed module.
func (g *graph) inModule(obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == g.prog.ModulePath || strings.HasPrefix(path, g.prog.ModulePath+"/")
}

// callee is one resolved target of a call site.
type callee struct {
	fn *funcInfo
	// viaInterface names the interface the call dispatched through, ""
	// for static calls.
	viaInterface string
}

// resolve returns the module-internal targets of a call expression. The
// second result is the external (out-of-module) function object when the
// call statically targets one, for banned-call checks.
func (g *graph) resolve(pkg *Package, bindings map[types.Object]*types.Func, call *ast.CallExpr) ([]callee, *types.Func) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			return g.calleesOf(obj)
		case *types.Var:
			// A local variable holding a method value or function value
			// bound earlier in the same function.
			if target, ok := bindings[obj]; ok {
				return g.calleesOf(target)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil, nil // func-valued field: dynamic, unresolvable
			}
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, nil
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return g.implementations(iface, sel.Recv(), m.Name()), nil
			}
			return g.calleesOf(m)
		}
		// Package-qualified call (pkg.F) or imported method expression.
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return g.calleesOf(obj)
		}
	}
	return nil, nil
}

// calleesOf maps a statically known function object to its callee form.
func (g *graph) calleesOf(obj *types.Func) ([]callee, *types.Func) {
	if fi, ok := g.funcs[obj]; ok {
		return []callee{{fn: fi}}, nil
	}
	if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
		if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
			// Method of an interface (e.g. a method value through an
			// interface-typed variable): dispatch.
			return g.implementations(iface, recv.Type(), obj.Name()), nil
		}
	}
	if !g.inModule(obj) {
		return nil, obj
	}
	return nil, nil
}

// implementations returns the module methods that a call to method name
// through the given interface can reach: every module-local named type
// whose (pointer) method set implements the interface.
func (g *graph) implementations(iface *types.Interface, ifaceType types.Type, method string) []callee {
	if iface.NumMethods() == 0 {
		return nil
	}
	key := types.TypeString(ifaceType, nil) + "." + method
	if impls, ok := g.impls[key]; ok {
		return asCallees(impls, ifaceType)
	}
	var impls []*funcInfo
	seen := map[*types.Func]bool{}
	for _, pkg := range g.prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			for _, t := range []types.Type{named, types.NewPointer(named)} {
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					continue
				}
				if !types.Implements(t, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(t, true, nil, method)
				m, ok := obj.(*types.Func)
				if !ok || seen[m] {
					continue
				}
				seen[m] = true
				if fi, ok := g.funcs[m]; ok {
					impls = append(impls, fi)
				}
			}
		}
	}
	g.impls[key] = impls
	return asCallees(impls, ifaceType)
}

func asCallees(impls []*funcInfo, ifaceType types.Type) []callee {
	out := make([]callee, len(impls))
	name := types.TypeString(ifaceType, shortQualifier)
	for i, fi := range impls {
		out[i] = callee{fn: fi, viaInterface: name}
	}
	return out
}

// methodBindings scans a function body for local variables bound to
// method values or named functions (f := x.M; f()), so calls through
// them resolve statically.
func methodBindings(pkg *Package, body *ast.BlockStmt) map[types.Object]*types.Func {
	bindings := map[types.Object]*types.Func{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var obj types.Object
			if assign.Tok == token.DEFINE {
				obj = pkg.Info.Defs[id]
			} else {
				obj = pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(assign.Rhs[i]).(type) {
			case *ast.SelectorExpr:
				if sel, ok := pkg.Info.Selections[rhs]; ok && sel.Kind() == types.MethodVal {
					if m, ok := sel.Obj().(*types.Func); ok {
						bindings[obj] = m
					}
				}
			case *ast.Ident:
				if f, ok := pkg.Info.Uses[rhs].(*types.Func); ok {
					bindings[obj] = f
				}
			}
		}
		return true
	})
	return bindings
}

// shortQualifier renders package names without import paths.
func shortQualifier(p *types.Package) string { return p.Name() }

// displayName renders a function for call-chain diagnostics, e.g.
// "(*tuner.Tuner).Begin" or "features.featureValue".
func displayName(obj *types.Func) string {
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return "(" + types.TypeString(recv.Type(), shortQualifier) + ")." + obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// parentsOf maps every node inside root to its parent node.
func parentsOf(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
