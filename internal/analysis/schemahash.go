package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// SchemaHash verifies golden feature-schema fingerprints. A constant
// annotated
//
//	//apollo:schemahash <pkgpath>.<Name> [<pkgpath>.<Name> ...]
//
// must equal the FNV-1a-64 hash of the named feature lists concatenated
// in directive order. Each reference resolves through the AST to either
// a function returning a []string literal of string constants or a
// (possibly keyed) array/slice variable of string constants, so renaming
// or reordering a feature — which would silently shift every model's
// vector layout — fails vet until the golden constant is deliberately
// bumped alongside a model-format version change.
var SchemaHash = &Analyzer{
	Name: "schemahash",
	Doc:  "feature schema lists must hash to their golden constants",
	Run:  runSchemaHash,
}

// schemaHashSeed prefixes every fingerprint so schema hashes can never
// collide with other FNV uses in the codebase.
const schemaHashSeed = "apollo-schema-v1"

func runSchemaHash(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, d := range parseDirectives(gd.Doc, vs.Doc, vs.Comment) {
						if d.name != dirSchemaHash {
							continue
						}
						diags = append(diags, checkSchemaConst(prog, pkg, vs, d)...)
					}
				}
			}
		}
	}
	return diags
}

// checkSchemaConst verifies one annotated golden constant against the
// hash of its referenced name lists.
func checkSchemaConst(prog *Program, pkg *Package, vs *ast.ValueSpec, d directive) []Diagnostic {
	pos := prog.Fset.Position(vs.Pos())
	if len(vs.Names) != 1 {
		return []Diagnostic{{Pos: pos, Analyzer: "schemahash",
			Message: "//apollo:schemahash must annotate a single constant"}}
	}
	name := vs.Names[0]
	refs := strings.Fields(d.args)
	if len(refs) == 0 {
		return []Diagnostic{{Pos: pos, Analyzer: "schemahash",
			Message: fmt.Sprintf("//apollo:schemahash on %s names no feature lists", name.Name)}}
	}

	cobj, ok := pkg.Info.Defs[name].(*types.Const)
	if !ok {
		return []Diagnostic{{Pos: pos, Analyzer: "schemahash",
			Message: fmt.Sprintf("//apollo:schemahash target %s is not a constant", name.Name)}}
	}
	golden, ok := constant.Uint64Val(cobj.Val())
	if !ok {
		return []Diagnostic{{Pos: pos, Analyzer: "schemahash",
			Message: fmt.Sprintf("//apollo:schemahash constant %s is not an unsigned integer", name.Name)}}
	}

	var names []string
	for _, ref := range refs {
		part, err := resolveNameList(prog, ref)
		if err != nil {
			return []Diagnostic{{Pos: pos, Analyzer: "schemahash",
				Message: fmt.Sprintf("cannot resolve schema source %s: %v", ref, err)}}
		}
		names = append(names, part...)
	}

	computed := fingerprintNames(names)
	if computed != golden {
		return []Diagnostic{{Pos: pos, Analyzer: "schemahash",
			Message: fmt.Sprintf("schema hash mismatch: %d feature names from %s hash to %#016x, but golden %s = %#016x; "+
				"a schema change must bump the model format version and this constant together",
				len(names), strings.Join(refs, " "), computed, name.Name, golden)}}
	}
	return nil
}

// resolveNameList resolves a <pkgpath>.<Name> reference to the ordered
// string list it declares.
func resolveNameList(prog *Program, ref string) ([]string, error) {
	dot := strings.LastIndex(ref, ".")
	if dot < 0 {
		return nil, fmt.Errorf("reference must be <pkgpath>.<Name>")
	}
	pkgPath, symbol := ref[:dot], ref[dot+1:]
	pkg, ok := prog.ByPath(pkgPath)
	if !ok {
		return nil, fmt.Errorf("package %s not in module", pkgPath)
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Name.Name == symbol && decl.Recv == nil {
					return stringsFromFunc(pkg, decl)
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, n := range vs.Names {
						if n.Name != symbol || i >= len(vs.Values) {
							continue
						}
						lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
						if !ok {
							return nil, fmt.Errorf("%s is not a composite literal", symbol)
						}
						return stringsFromLit(pkg, lit)
					}
				}
			}
		}
	}
	return nil, fmt.Errorf("%s not declared in %s", symbol, pkgPath)
}

// stringsFromFunc extracts the string list from a function whose body
// returns a single []string composite literal.
func stringsFromFunc(pkg *Package, fn *ast.FuncDecl) ([]string, error) {
	if fn.Body == nil {
		return nil, fmt.Errorf("%s has no body", fn.Name.Name)
	}
	for _, stmt := range fn.Body.List {
		ret, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		lit, ok := ast.Unparen(ret.Results[0]).(*ast.CompositeLit)
		if !ok {
			continue
		}
		return stringsFromLit(pkg, lit)
	}
	return nil, fmt.Errorf("%s does not return a []string literal", fn.Name.Name)
}

// stringsFromLit extracts the ordered strings of a composite literal.
// Keyed array literals ([N]string{Idx: "name", ...}) are ordered by the
// constant value of each key; unkeyed literals keep source order.
func stringsFromLit(pkg *Package, lit *ast.CompositeLit) ([]string, error) {
	constStr := func(e ast.Expr) (string, error) {
		tv, ok := pkg.Info.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", fmt.Errorf("element %s is not a string constant", types.ExprString(e))
		}
		return constant.StringVal(tv.Value), nil
	}
	constIdx := func(e ast.Expr) (int64, error) {
		tv, ok := pkg.Info.Types[e]
		if !ok || tv.Value == nil {
			return 0, fmt.Errorf("key %s is not a constant", types.ExprString(e))
		}
		idx, ok := constant.Int64Val(constant.ToInt(tv.Value))
		if !ok {
			return 0, fmt.Errorf("key %s is not an integer constant", types.ExprString(e))
		}
		return idx, nil
	}

	keyed := make(map[int64]string)
	var ordered []string
	maxIdx := int64(-1)
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			idx, err := constIdx(kv.Key)
			if err != nil {
				return nil, err
			}
			s, err := constStr(kv.Value)
			if err != nil {
				return nil, err
			}
			if _, dup := keyed[idx]; dup {
				return nil, fmt.Errorf("duplicate index %d", idx)
			}
			keyed[idx] = s
			if idx > maxIdx {
				maxIdx = idx
			}
			continue
		}
		s, err := constStr(elt)
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, s)
	}
	if len(keyed) > 0 {
		if len(ordered) > 0 {
			return nil, fmt.Errorf("mixed keyed and unkeyed elements")
		}
		out := make([]string, maxIdx+1)
		for i := range out {
			s, ok := keyed[int64(i)]
			if !ok {
				return nil, fmt.Errorf("index %d has no name", i)
			}
			out[i] = s
		}
		return out, nil
	}
	return ordered, nil
}

// fingerprintNames hashes a feature-name list with FNV-1a-64, seeding
// with schemaHashSeed and separating names with NUL so boundaries are
// unambiguous. internal/features.Fingerprint is the runtime twin of this
// function; the two must agree.
func fingerprintNames(names []string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	mix(schemaHashSeed)
	for _, n := range names {
		mix("\x00")
		mix(n)
	}
	return h
}
