// Package stats provides the small set of descriptive statistics the
// experiment harness reports: means, medians, percentiles, geometric
// means, and runtime-variation summaries for the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if empty or
// any value is non-positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Min returns the minimum (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the total.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Variation summarizes the spread of a set of runtimes, as plotted per
// kernel in the paper's Fig. 1: the ratio between the slowest and fastest
// observed choice.
type Variation struct {
	MinNS, MedianNS, MaxNS float64
	// Ratio is MaxNS/MinNS — "the fastest execution policy can be 1-3
	// orders of magnitude faster than the slowest".
	Ratio float64
}

// Variate computes a Variation summary (zero value for empty input).
func Variate(timesNS []float64) Variation {
	if len(timesNS) == 0 {
		return Variation{}
	}
	v := Variation{
		MinNS:    Min(timesNS),
		MedianNS: Median(timesNS),
		MaxNS:    Max(timesNS),
	}
	if v.MinNS > 0 {
		v.Ratio = v.MaxNS / v.MinNS
	}
	return v
}

// FormatNS renders a nanosecond quantity with an adaptive unit.
func FormatNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gus", ns/1e3)
	default:
		return fmt.Sprintf("%.3gns", ns)
	}
}
