package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMedianMinMax(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %g", Median(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Error("Min/Max wrong")
	}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %g", Sum(xs))
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty inputs should all return 0")
	}
	if v := Variate(nil); v.Ratio != 0 {
		t.Error("empty variation should be zero")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %g", g)
	}
	if GeoMean([]float64{2, -1}) != 0 {
		t.Error("non-positive values should yield 0")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if p := Percentile(xs, 0); p != 10 {
		t.Errorf("P0 = %g", p)
	}
	if p := Percentile(xs, 100); p != 40 {
		t.Errorf("P100 = %g", p)
	}
	if p := Percentile(xs, 50); p != 25 {
		t.Errorf("P50 = %g", p)
	}
}

func TestStdDev(t *testing.T) {
	if s := StdDev([]float64{2, 2, 2}); s != 0 {
		t.Errorf("constant stddev = %g", s)
	}
	if s := StdDev([]float64{1, 3}); math.Abs(s-1) > 1e-12 {
		t.Errorf("StdDev(1,3) = %g, want 1", s)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-element stddev should be 0")
	}
}

func TestVariate(t *testing.T) {
	v := Variate([]float64{100, 1000, 10000})
	if v.MinNS != 100 || v.MaxNS != 10000 || v.Ratio != 100 {
		t.Errorf("Variate = %+v", v)
	}
}

func TestPercentileOrderedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		p25 := Percentile(raw, 25)
		p75 := Percentile(raw, 75)
		return p25 <= p75 && p25 >= Min(raw) && p75 <= Max(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			// Skip pathological magnitudes whose sum overflows.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		m := Mean(raw)
		return m >= Min(raw)-1e-9 && m <= Max(raw)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatNS(t *testing.T) {
	cases := map[float64]string{
		5:       "5ns",
		5e3:     "5us",
		5e6:     "5ms",
		2.5e9:   "2.5s",
		1.234e6: "1.23ms",
	}
	for in, want := range cases {
		if got := FormatNS(in); got != want {
			t.Errorf("FormatNS(%g) = %q, want %q", in, got, want)
		}
	}
}
