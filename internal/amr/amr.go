// Package amr implements the block-structured adaptive-mesh-refinement
// substrate the CleverLeaf and ARES proxies run on, standing in for the
// SAMRAI library: a patch hierarchy over a 2D structured domain, gradient
// tagging, tile-based clustering of tagged cells into patches, regridding
// with prolongation, ghost-cell exchange, and fine-to-coarse restriction.
//
// The property the paper's tuning exploits lives here: as the solution
// evolves, regridding produces patches of widely varying shapes and sizes
// — many of them too small to amortize a parallel region — so the best
// execution policy changes from launch to launch.
package amr

import (
	"fmt"
	"sort"

	"apollo/internal/mesh"
)

// Patch is one rectangular block of one refinement level, holding all of
// the application's fields.
type Patch struct {
	// ID is a hierarchy-unique patch identifier (the paper's patch_id
	// feature).
	ID int
	// Level is the refinement level (0 = coarsest).
	Level int
	// Box is the patch's cell region in its level's index space.
	Box mesh.Box
	// Rank is the owning rank in distributed execution simulations.
	Rank int

	fields map[string]*mesh.Field
}

// Field returns the named field, panicking if it does not exist.
func (p *Patch) Field(name string) *mesh.Field {
	f := p.fields[name]
	if f == nil {
		panic(fmt.Sprintf("amr: patch %d has no field %q", p.ID, name))
	}
	return f
}

// FieldNames returns the patch's field names, sorted.
func (p *Patch) FieldNames() []string {
	names := make([]string, 0, len(p.fields))
	for n := range p.fields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Config describes a hierarchy.
type Config struct {
	// Domain is the level-0 cell region.
	Domain mesh.Box
	// MaxLevels is the number of levels (1 = no refinement).
	MaxLevels int
	// Ratio is the refinement ratio between levels (default 2).
	Ratio int
	// Ghost is the ghost width of every field (default 2, the paper's
	// boundary-strip width).
	Ghost int
	// TileSize is the clustering granularity in cells (default 8).
	TileSize int
	// TagBuffer grows tagged regions by this many cells (default 1).
	TagBuffer int
	// BaseBlock splits level 0 into blocks of at most BaseBlock cells
	// per side (0 = single patch).
	BaseBlock int
	// MaxBlock caps refined patches at MaxBlock cells per side,
	// SAMRAI's largest-patch-size constraint (0 = unlimited). It keeps
	// patches divisible across ranks in distributed runs.
	MaxBlock int
	// Fields are the cell-centered fields allocated on every patch.
	Fields []string
}

func (c Config) withDefaults() Config {
	if c.MaxLevels < 1 {
		c.MaxLevels = 1
	}
	if c.Ratio < 2 {
		c.Ratio = 2
	}
	if c.Ghost == 0 {
		c.Ghost = 2
	}
	if c.TileSize < 2 {
		c.TileSize = 8
	}
	if c.TagBuffer < 0 {
		c.TagBuffer = 0
	}
	return c
}

// Hierarchy is a patch hierarchy: levels of patches covering
// progressively refined subsets of the domain.
type Hierarchy struct {
	cfg    Config
	levels [][]*Patch
	nextID int
}

// New builds a hierarchy with a fully populated level 0.
func New(cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	if cfg.Domain.Empty() {
		panic("amr: empty domain")
	}
	h := &Hierarchy{cfg: cfg, levels: make([][]*Patch, cfg.MaxLevels)}
	for _, b := range splitBox(cfg.Domain, cfg.BaseBlock) {
		h.levels[0] = append(h.levels[0], h.newPatch(0, b))
	}
	return h
}

// splitBox cuts a box into blocks of at most block cells per side
// (block <= 0 keeps the box whole).
func splitBox(b mesh.Box, block int) []mesh.Box {
	if block <= 0 {
		return []mesh.Box{b}
	}
	var out []mesh.Box
	for y := b.Y0; y < b.Y1; y += block {
		y1 := y + block
		if y1 > b.Y1 {
			y1 = b.Y1
		}
		for x := b.X0; x < b.X1; x += block {
			x1 := x + block
			if x1 > b.X1 {
				x1 = b.X1
			}
			out = append(out, mesh.NewBox(x, y, x1, y1))
		}
	}
	return out
}

func (h *Hierarchy) newPatch(level int, box mesh.Box) *Patch {
	p := &Patch{ID: h.nextID, Level: level, Box: box, fields: make(map[string]*mesh.Field, len(h.cfg.Fields))}
	h.nextID++
	for _, name := range h.cfg.Fields {
		p.fields[name] = mesh.NewField(box, h.cfg.Ghost)
	}
	return p
}

// Config returns the hierarchy's configuration (with defaults applied).
func (h *Hierarchy) Config() Config { return h.cfg }

// NumLevels returns the configured number of levels.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// Level returns the patches of the given level.
func (h *Hierarchy) Level(l int) []*Patch { return h.levels[l] }

// Patches returns every patch, coarsest level first.
func (h *Hierarchy) Patches() []*Patch {
	var out []*Patch
	for _, lvl := range h.levels {
		out = append(out, lvl...)
	}
	return out
}

// NumPatches returns the total patch count.
func (h *Hierarchy) NumPatches() int {
	n := 0
	for _, lvl := range h.levels {
		n += len(lvl)
	}
	return n
}

// LevelDomain returns the domain box in level-l index space.
func (h *Hierarchy) LevelDomain(l int) mesh.Box {
	d := h.cfg.Domain
	for i := 0; i < l; i++ {
		d = d.Refine(h.cfg.Ratio)
	}
	return d
}

// Tagger marks level cells needing refinement: it is called once per
// patch and calls tag(i, j) for every cell (in the patch's level index
// space) whose feature (e.g. density gradient) exceeds a threshold.
type Tagger func(p *Patch, tag func(i, j int))

// Regrid rebuilds every level above 0 from the tagger, reusing data from
// the previous fine patches where they overlap and prolonging from the
// coarser level elsewhere. It returns the number of patches created.
func (h *Hierarchy) Regrid(tagger Tagger) int {
	created := 0
	for l := 0; l < len(h.levels)-1; l++ {
		boxes := h.clusterTags(l, tagger)
		old := h.levels[l+1]
		h.levels[l+1] = nil
		for _, fineBox := range boxes {
			np := h.newPatch(l+1, fineBox)
			h.initPatch(np, old)
			h.levels[l+1] = append(h.levels[l+1], np)
			created++
		}
	}
	return created
}

// clusterTags collects tags on level l, buffers them, and clusters them
// into refined boxes for level l+1.
func (h *Hierarchy) clusterTags(l int, tagger Tagger) []mesh.Box {
	tile := h.cfg.TileSize
	domain := h.LevelDomain(l)
	// Tile grid over the level domain.
	tw := (domain.NX() + tile - 1) / tile
	th := (domain.NY() + tile - 1) / tile
	tagged := make([]bool, tw*th)
	mark := func(i, j int) {
		if !domain.Contains(i, j) {
			return
		}
		tx := (i - domain.X0) / tile
		ty := (j - domain.Y0) / tile
		tagged[ty*tw+tx] = true
	}
	buf := h.cfg.TagBuffer
	for _, p := range h.levels[l] {
		tagger(p, func(i, j int) {
			for dj := -buf; dj <= buf; dj++ {
				for di := -buf; di <= buf; di++ {
					mark(i+di, j+dj)
				}
			}
		})
	}
	boxes := clusterTiles(tagged, tw, th)
	out := make([]mesh.Box, 0, len(boxes))
	for _, tb := range boxes {
		cells := mesh.NewBox(
			domain.X0+tb.X0*tile, domain.Y0+tb.Y0*tile,
			domain.X0+tb.X1*tile, domain.Y0+tb.Y1*tile,
		).Intersect(domain)
		fine := cells.Refine(h.cfg.Ratio)
		if fine.Empty() {
			continue
		}
		if h.cfg.MaxBlock > 0 {
			out = append(out, splitBox(fine, h.cfg.MaxBlock)...)
		} else {
			out = append(out, fine)
		}
	}
	return out
}

// clusterTiles greedily merges tagged tiles into rectangles: maximal
// horizontal runs per row, then vertically merged when runs align. It is
// a simplified Berger–Rigoutsos stand-in that produces the same
// qualitative outcome — a set of variably sized rectangular patches
// covering the tagged region.
func clusterTiles(tagged []bool, tw, th int) []mesh.Box {
	type run struct{ x0, x1 int }
	rowRuns := make([][]run, th)
	for ty := 0; ty < th; ty++ {
		for tx := 0; tx < tw; {
			if !tagged[ty*tw+tx] {
				tx++
				continue
			}
			start := tx
			for tx < tw && tagged[ty*tw+tx] {
				tx++
			}
			rowRuns[ty] = append(rowRuns[ty], run{start, tx})
		}
	}
	var boxes []mesh.Box
	consumed := make([][]bool, th)
	for ty := range rowRuns {
		consumed[ty] = make([]bool, len(rowRuns[ty]))
	}
	for ty := 0; ty < th; ty++ {
		for ri, r := range rowRuns[ty] {
			if consumed[ty][ri] {
				continue
			}
			consumed[ty][ri] = true
			y1 := ty + 1
			for y1 < th {
				merged := false
				for si, s := range rowRuns[y1] {
					if !consumed[y1][si] && s.x0 == r.x0 && s.x1 == r.x1 {
						consumed[y1][si] = true
						merged = true
						break
					}
				}
				if !merged {
					break
				}
				y1++
			}
			boxes = append(boxes, mesh.NewBox(r.x0, ty, r.x1, y1))
		}
	}
	return boxes
}

// initPatch fills a new fine patch: piecewise-constant prolongation from
// the coarser level, then copy from any old fine patches that overlap.
func (h *Hierarchy) initPatch(np *Patch, old []*Patch) {
	r := h.cfg.Ratio
	coarse := h.levels[np.Level-1]
	for name, f := range np.fields {
		for j := np.Box.Y0; j < np.Box.Y1; j++ {
			for i := np.Box.X0; i < np.Box.X1; i++ {
				ci, cj := floorDiv(i, r), floorDiv(j, r)
				if cp := patchContaining(coarse, ci, cj); cp != nil {
					f.Set(i, j, cp.Field(name).At(ci, cj))
				}
			}
		}
	}
	for _, op := range old {
		ov := np.Box.Intersect(op.Box)
		if ov.Empty() {
			continue
		}
		for name, f := range np.fields {
			f.CopyRegion(op.Field(name), ov)
		}
	}
}

// patchContaining returns the patch whose interior contains (i, j).
func patchContaining(patches []*Patch, i, j int) *Patch {
	for _, p := range patches {
		if p.Box.Contains(i, j) {
			return p
		}
	}
	return nil
}

// BC fills the physical-boundary ghost cells of one field of a patch; it
// is supplied by the application (reflective, outflow, ...).
type BC func(p *Patch, field string, f *mesh.Field, domain mesh.Box)

// FillGhosts fills the ghost layers of every patch on the level, in
// SAMRAI order: prolongation from the next coarser level, then
// same-level neighbor copies, then the physical boundary condition.
func (h *Hierarchy) FillGhosts(l int, fields []string, bc BC) {
	r := h.cfg.Ratio
	domain := h.LevelDomain(l)
	var coarse []*Patch
	if l > 0 {
		coarse = h.levels[l-1]
	}
	for _, p := range h.levels[l] {
		grown := p.Box.Grow(h.cfg.Ghost)
		for _, name := range fields {
			f := p.Field(name)
			// 1. Coarse prolongation into all ghost cells inside the domain.
			if coarse != nil {
				h.prolongGhosts(f, p, coarse, name, grown, domain, r)
			}
			// 2. Same-level copies.
			for _, q := range h.levels[l] {
				if q == p {
					continue
				}
				ov := grown.Intersect(q.Box)
				if !ov.Empty() {
					f.CopyRegion(q.Field(name), ov)
				}
			}
			// 3. Physical boundary.
			if bc != nil {
				bc(p, name, f, domain)
			}
		}
	}
}

func (h *Hierarchy) prolongGhosts(f *mesh.Field, p *Patch, coarse []*Patch, name string, grown, domain mesh.Box, r int) {
	for j := grown.Y0; j < grown.Y1; j++ {
		for i := grown.X0; i < grown.X1; i++ {
			if p.Box.Contains(i, j) || !domain.Contains(i, j) {
				continue
			}
			ci, cj := floorDiv(i, r), floorDiv(j, r)
			if cp := patchContaining(coarse, ci, cj); cp != nil {
				f.Set(i, j, cp.Field(name).At(ci, cj))
			}
		}
	}
}

// Restrict averages fine-level data onto the cells of the next coarser
// level that the fine level covers, for the given fields.
func (h *Hierarchy) Restrict(fineLevel int, fields []string) {
	if fineLevel <= 0 || fineLevel >= len(h.levels) {
		return
	}
	r := h.cfg.Ratio
	for _, cp := range h.levels[fineLevel-1] {
		for _, fp := range h.levels[fineLevel] {
			ovCoarse := cp.Box.Intersect(fp.Box.Coarsen(r))
			if ovCoarse.Empty() {
				continue
			}
			for _, name := range fields {
				cf, ff := cp.Field(name), fp.Field(name)
				for cj := ovCoarse.Y0; cj < ovCoarse.Y1; cj++ {
					for ci := ovCoarse.X0; ci < ovCoarse.X1; ci++ {
						// Average only the fine cells the patch actually
						// owns; unaligned patch edges (possible under
						// MaxBlock splitting) contribute partial blocks.
						var sum float64
						count := 0
						for fj := cj * r; fj < (cj+1)*r; fj++ {
							for fi := ci * r; fi < (ci+1)*r; fi++ {
								if fp.Box.Contains(fi, fj) {
									sum += ff.At(fi, fj)
									count++
								}
							}
						}
						if count == r*r {
							cf.Set(ci, cj, sum/float64(count))
						}
					}
				}
			}
		}
	}
}

func floorDiv(a, r int) int {
	q := a / r
	if a%r != 0 && (a < 0) != (r < 0) {
		q--
	}
	return q
}
