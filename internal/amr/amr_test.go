package amr

import (
	"math"
	"testing"
	"testing/quick"

	"apollo/internal/mesh"
)

func testConfig() Config {
	return Config{
		Domain:    mesh.NewBox(0, 0, 32, 32),
		MaxLevels: 2,
		Ratio:     2,
		Ghost:     2,
		TileSize:  4,
		Fields:    []string{"rho", "e"},
	}
}

func TestNewHierarchyLevel0(t *testing.T) {
	h := New(testConfig())
	if h.NumLevels() != 2 {
		t.Fatalf("levels = %d", h.NumLevels())
	}
	if len(h.Level(0)) != 1 {
		t.Fatalf("level 0 patches = %d, want 1", len(h.Level(0)))
	}
	p := h.Level(0)[0]
	if p.Box != mesh.NewBox(0, 0, 32, 32) || p.Level != 0 {
		t.Error("level-0 patch wrong")
	}
	if p.Field("rho") == nil || p.Field("e") == nil {
		t.Error("fields missing")
	}
}

func TestBaseBlockSplitsLevel0(t *testing.T) {
	cfg := testConfig()
	cfg.BaseBlock = 16
	h := New(cfg)
	if len(h.Level(0)) != 4 {
		t.Fatalf("level 0 patches = %d, want 4", len(h.Level(0)))
	}
	// The blocks must tile the domain exactly.
	cells := 0
	ids := map[int]bool{}
	for _, p := range h.Level(0) {
		cells += p.Box.Count()
		if ids[p.ID] {
			t.Error("duplicate patch ID")
		}
		ids[p.ID] = true
	}
	if cells != 32*32 {
		t.Errorf("blocks cover %d cells, want 1024", cells)
	}
}

func TestFieldPanicsOnUnknown(t *testing.T) {
	h := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("unknown field should panic")
		}
	}()
	h.Level(0)[0].Field("nope")
}

// tagCenter tags a square region in the middle of the domain.
func tagCenter(p *Patch, tag func(i, j int)) {
	for j := 12; j < 20; j++ {
		for i := 12; i < 20; i++ {
			if p.Box.Contains(i, j) {
				tag(i, j)
			}
		}
	}
}

func TestRegridCreatesFinePatches(t *testing.T) {
	h := New(testConfig())
	created := h.Regrid(tagCenter)
	if created == 0 || len(h.Level(1)) == 0 {
		t.Fatal("regrid created no fine patches")
	}
	fineDomain := h.LevelDomain(1)
	covered := 0
	for _, p := range h.Level(1) {
		if p.Level != 1 {
			t.Error("fine patch has wrong level")
		}
		if !fineDomain.ContainsBox(p.Box) {
			t.Errorf("fine patch %v escapes domain %v", p.Box, fineDomain)
		}
		covered += p.Box.Count()
	}
	// The tagged 8x8 coarse region refines to at least 16x16 fine cells.
	if covered < 16*16 {
		t.Errorf("fine level covers %d cells, want >= 256", covered)
	}
}

func TestRegridProlongsFromCoarse(t *testing.T) {
	h := New(testConfig())
	h.Level(0)[0].Field("rho").Fill(7)
	h.Regrid(tagCenter)
	for _, p := range h.Level(1) {
		lo, hi := p.Field("rho").MinMaxInterior()
		if lo != 7 || hi != 7 {
			t.Errorf("prolonged rho = [%g,%g], want 7", lo, hi)
		}
	}
}

func TestRegridPreservesOldFineData(t *testing.T) {
	h := New(testConfig())
	h.Level(0)[0].Field("rho").Fill(1)
	h.Regrid(tagCenter)
	// Write a distinctive value on the fine level.
	for _, p := range h.Level(1) {
		p.Field("rho").Fill(42)
	}
	// Regrid with the same tags: overlapping data must be copied, not
	// re-prolonged.
	h.Regrid(tagCenter)
	for _, p := range h.Level(1) {
		lo, hi := p.Field("rho").MinMaxInterior()
		if lo != 42 || hi != 42 {
			t.Errorf("old fine data lost: [%g,%g]", lo, hi)
		}
	}
}

func TestRegridEmptyTagsClearsFineLevel(t *testing.T) {
	h := New(testConfig())
	h.Regrid(tagCenter)
	if len(h.Level(1)) == 0 {
		t.Fatal("setup failed")
	}
	h.Regrid(func(p *Patch, tag func(i, j int)) {})
	if len(h.Level(1)) != 0 {
		t.Error("untagged regrid should clear the fine level")
	}
}

func TestFillGhostsSameLevel(t *testing.T) {
	cfg := testConfig()
	cfg.BaseBlock = 16
	h := New(cfg)
	// Give each patch a distinct value; ghost cells must pick up the
	// neighbor's value after the exchange.
	for k, p := range h.Level(0) {
		p.Field("rho").Fill(float64(k + 1))
	}
	h.FillGhosts(0, []string{"rho"}, nil)
	// Patch 0 is [0,16)x[0,16); its right ghost at (16, 5) belongs to
	// patch 1 which holds value 2.
	p0 := h.Level(0)[0]
	if got := p0.Field("rho").At(16, 5); got != 2 {
		t.Errorf("right ghost = %g, want 2", got)
	}
	if got := p0.Field("rho").At(5, 16); got != 3 {
		t.Errorf("top ghost = %g, want 3", got)
	}
}

func TestFillGhostsCoarseFine(t *testing.T) {
	h := New(testConfig())
	h.Level(0)[0].Field("rho").Fill(5)
	h.Regrid(tagCenter)
	for _, p := range h.Level(1) {
		p.Field("rho").Fill(9)
	}
	h.FillGhosts(1, []string{"rho"}, nil)
	// A ghost cell outside all fine patches but inside the domain must
	// hold the prolonged coarse value 5.
	for _, p := range h.Level(1) {
		g := p.Box.Grow(2)
		found := false
		for j := g.Y0; j < g.Y1 && !found; j++ {
			for i := g.X0; i < g.X1 && !found; i++ {
				if p.Box.Contains(i, j) || !h.LevelDomain(1).Contains(i, j) {
					continue
				}
				if patchContaining(h.Level(1), i, j) != nil {
					continue // filled by same-level copy
				}
				if got := p.Field("rho").At(i, j); got != 5 {
					t.Errorf("coarse-fine ghost (%d,%d) = %g, want 5", i, j, got)
				}
				found = true
			}
		}
	}
}

func TestFillGhostsCallsBC(t *testing.T) {
	h := New(testConfig())
	called := 0
	bc := func(p *Patch, field string, f *mesh.Field, domain mesh.Box) {
		called++
		if domain != h.LevelDomain(0) {
			t.Error("wrong domain passed to BC")
		}
	}
	h.FillGhosts(0, []string{"rho", "e"}, bc)
	if called != 2 {
		t.Errorf("BC called %d times, want 2 (one per field)", called)
	}
}

func TestRestrictAverages(t *testing.T) {
	h := New(testConfig())
	h.Level(0)[0].Field("rho").Fill(0)
	h.Regrid(tagCenter)
	// Fill fine cells with their fine i coordinate; the coarse value
	// must be the average of the 2x2 block.
	for _, p := range h.Level(1) {
		f := p.Field("rho")
		for j := p.Box.Y0; j < p.Box.Y1; j++ {
			for i := p.Box.X0; i < p.Box.X1; i++ {
				f.Set(i, j, float64(i))
			}
		}
	}
	h.Restrict(1, []string{"rho"})
	coarse := h.Level(0)[0].Field("rho")
	for _, fp := range h.Level(1) {
		cb := fp.Box.Coarsen(2)
		for cj := cb.Y0; cj < cb.Y1; cj++ {
			for ci := cb.X0; ci < cb.X1; ci++ {
				want := float64(2*ci) + 0.5 // avg of fine columns 2ci, 2ci+1
				if got := coarse.At(ci, cj); math.Abs(got-want) > 1e-12 {
					t.Fatalf("restricted (%d,%d) = %g, want %g", ci, cj, got, want)
				}
			}
		}
	}
}

func TestClusterTilesProducesDisjointCover(t *testing.T) {
	tw, th := 6, 5
	tagged := make([]bool, tw*th)
	pattern := []struct{ x, y int }{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {4, 3}, {4, 4}, {2, 2}}
	for _, c := range pattern {
		tagged[c.y*tw+c.x] = true
	}
	boxes := clusterTiles(tagged, tw, th)
	covered := map[[2]int]int{}
	for _, b := range boxes {
		for y := b.Y0; y < b.Y1; y++ {
			for x := b.X0; x < b.X1; x++ {
				covered[[2]int{x, y}]++
				if !tagged[y*tw+x] {
					t.Errorf("box %v covers untagged tile (%d,%d)", b, x, y)
				}
			}
		}
	}
	for _, c := range pattern {
		if covered[[2]int{c.x, c.y}] != 1 {
			t.Errorf("tile (%d,%d) covered %d times", c.x, c.y, covered[[2]int{c.x, c.y}])
		}
	}
}

func TestLevelDomain(t *testing.T) {
	h := New(testConfig())
	if h.LevelDomain(0) != mesh.NewBox(0, 0, 32, 32) {
		t.Error("level 0 domain wrong")
	}
	if h.LevelDomain(1) != mesh.NewBox(0, 0, 64, 64) {
		t.Error("level 1 domain wrong")
	}
}

func TestPatchesAndCounts(t *testing.T) {
	h := New(testConfig())
	h.Regrid(tagCenter)
	if h.NumPatches() != len(h.Patches()) {
		t.Error("NumPatches inconsistent with Patches")
	}
	if h.Patches()[0].Level != 0 {
		t.Error("Patches should list coarsest first")
	}
}

func TestSplitBoxProperty(t *testing.T) {
	f := func(x0, y0 int8, nxRaw, nyRaw, blockRaw uint8) bool {
		b := mesh.NewBox(int(x0), int(y0), int(x0)+int(nxRaw)%50+1, int(y0)+int(nyRaw)%50+1)
		block := int(blockRaw)%20 + 1
		parts := splitBox(b, block)
		total := 0
		for _, p := range parts {
			if p.Empty() || !b.ContainsBox(p) {
				return false
			}
			if p.NX() > block || p.NY() > block {
				return false
			}
			total += p.Count()
		}
		// Disjointness: pairwise non-overlapping and covering.
		for i := range parts {
			for j := i + 1; j < len(parts); j++ {
				if parts[i].Overlaps(parts[j]) {
					return false
				}
			}
		}
		return total == b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxBlockCapsPatchSizes(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBlock = 8
	h := New(cfg)
	h.Regrid(tagCenter)
	if len(h.Level(1)) == 0 {
		t.Fatal("no fine patches")
	}
	for _, p := range h.Level(1) {
		if p.Box.NX() > 8 || p.Box.NY() > 8 {
			t.Errorf("patch %v exceeds MaxBlock 8", p.Box)
		}
	}
}

func TestRegridDeterministic(t *testing.T) {
	boxes := func() []mesh.Box {
		h := New(testConfig())
		h.Level(0)[0].Field("rho").Fill(1)
		h.Regrid(tagCenter)
		var out []mesh.Box
		for _, p := range h.Level(1) {
			out = append(out, p.Box)
		}
		return out
	}
	a, b := boxes(), boxes()
	if len(a) != len(b) {
		t.Fatal("regrid patch count nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("patch %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
