package amr

import (
	"strings"
	"testing"

	"apollo/internal/mesh"
)

func renderHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h := New(Config{
		Domain:    mesh.NewBox(0, 0, 16, 16),
		MaxLevels: 2,
		Ratio:     2,
		TileSize:  4,
		Fields:    []string{"rho"},
	})
	h.Level(0)[0].Field("rho").Fill(1)
	h.Regrid(func(p *Patch, tag func(i, j int)) {
		for j := 4; j < 8; j++ {
			for i := 4; i < 8; i++ {
				tag(i, j)
			}
		}
	})
	return h
}

func TestRenderASCIIShape(t *testing.T) {
	h := renderHierarchy(t)
	out := h.RenderASCII(0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header plus 16 rows.
	if len(lines) != 17 {
		t.Fatalf("got %d lines, want 17:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if len(l) != 16 {
			t.Errorf("row %q has width %d, want 16", l, len(l))
		}
	}
	if !strings.Contains(out, "a") {
		t.Error("refined region not marked")
	}
	if !strings.Contains(out, ".") {
		t.Error("unrefined region not marked")
	}
	// Tagged region is in the lower-left; rows render top-down, so the
	// letters must appear in the later lines.
	top := strings.Join(lines[1:8], "")
	if strings.ContainsAny(top, "abcdefgh") {
		t.Error("refinement rendered in the wrong half (tagged rows render at the bottom)")
	}
}

func TestRenderASCIIDownsamples(t *testing.T) {
	h := renderHierarchy(t)
	out := h.RenderASCII(8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, l := range lines[1:] {
		if len(l) > 8 {
			t.Errorf("downsampled row %q wider than 8", l)
		}
	}
}

func TestRenderFieldRamp(t *testing.T) {
	h := renderHierarchy(t)
	f := h.Level(0)[0].Field("rho")
	f.Fill(0)
	f.Set(8, 8, 10) // a single hot cell
	out := h.RenderField("rho", 0)
	if !strings.Contains(out, "@") {
		t.Errorf("peak glyph missing:\n%s", out)
	}
	if !strings.Contains(out, "range [0, 10]") {
		t.Errorf("range header wrong:\n%s", out)
	}
}

func TestRenderFieldUniform(t *testing.T) {
	h := renderHierarchy(t)
	h.Level(0)[0].Field("rho").Fill(3)
	out := h.RenderField("rho", 0)
	if strings.Contains(out, "?") {
		t.Error("uniform field rendered holes")
	}
}

func TestCoverageStats(t *testing.T) {
	h := renderHierarchy(t)
	patches, cells, minC, maxC := h.CoverageStats()
	if patches != len(h.Level(1)) {
		t.Errorf("patches = %d", patches)
	}
	total := 0
	for _, p := range h.Level(1) {
		total += p.Box.Count()
	}
	if cells != total {
		t.Errorf("cells = %d, want %d", cells, total)
	}
	if minC > maxC || minC <= 0 {
		t.Errorf("min %d max %d invalid", minC, maxC)
	}
	// Single-level hierarchy reports zeros.
	flat := New(Config{Domain: mesh.NewBox(0, 0, 4, 4), MaxLevels: 1, Fields: []string{"rho"}})
	if p, c, _, _ := flat.CoverageStats(); p != 0 || c != 0 {
		t.Error("single-level stats should be zero")
	}
}
