package amr

import (
	"fmt"
	"strings"
)

// RenderASCII draws the hierarchy as a character map, the textual
// analogue of the mesh-configuration visualizations in the paper's
// Fig. 12: one character per level-0 cell, '.' for unrefined cells and a
// patch-identifying letter for cells covered by a fine patch. The width
// parameter downsamples large domains to at most width columns.
func (h *Hierarchy) RenderASCII(width int) string {
	domain := h.cfg.Domain
	step := 1
	if width > 0 && domain.NX() > width {
		step = (domain.NX() + width - 1) / width
	}
	var fine []*Patch
	if h.NumLevels() > 1 {
		fine = h.Level(1)
	}
	letter := func(i, j int) byte {
		// Map the level-0 cell to fine index space and find its patch.
		fi, fj := i*h.cfg.Ratio, j*h.cfg.Ratio
		for idx, p := range fine {
			if p.Box.Contains(fi, fj) {
				return byte('a' + idx%26)
			}
		}
		return '.'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "domain %v, %d levels, %d patches (%d fine)\n",
		domain, h.NumLevels(), h.NumPatches(), len(fine))
	for j := domain.Y1 - step; j >= domain.Y0; j -= step {
		for i := domain.X0; i < domain.X1; i += step {
			b.WriteByte(letter(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderField draws a level-0 field as a character heat map using the
// given glyph ramp (light to heavy), downsampled to at most width
// columns. It gives the density-field views of the paper's Fig. 12.
func (h *Hierarchy) RenderField(name string, width int) string {
	domain := h.cfg.Domain
	step := 1
	if width > 0 && domain.NX() > width {
		step = (domain.NX() + width - 1) / width
	}
	ramp := []byte(" .:-=+*#%@")

	lo, hi := 0.0, 0.0
	first := true
	value := func(i, j int) (float64, bool) {
		p := patchContaining(h.Level(0), i, j)
		if p == nil {
			return 0, false
		}
		return p.Field(name).At(i, j), true
	}
	for j := domain.Y0; j < domain.Y1; j += step {
		for i := domain.X0; i < domain.X1; i += step {
			v, ok := value(i, j)
			if !ok {
				continue
			}
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s on level 0, range [%.3g, %.3g]\n", name, lo, hi)
	for j := domain.Y1 - step; j >= domain.Y0; j -= step {
		for i := domain.X0; i < domain.X1; i += step {
			v, ok := value(i, j)
			if !ok {
				b.WriteByte('?')
				continue
			}
			idx := int((v - lo) / span * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CoverageStats summarizes the fine level for reports: patch count, cell
// count, and the min/max patch sizes — the quantities that drive Apollo's
// policy decisions.
func (h *Hierarchy) CoverageStats() (patches, cells, minCells, maxCells int) {
	if h.NumLevels() < 2 {
		return 0, 0, 0, 0
	}
	for _, p := range h.Level(1) {
		n := p.Box.Count()
		cells += n
		if patches == 0 || n < minCells {
			minCells = n
		}
		if n > maxCells {
			maxCells = n
		}
		patches++
	}
	return
}
