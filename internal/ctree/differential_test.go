package ctree

import (
	"math"
	"math/rand"
	"testing"

	"apollo/internal/dtree"
)

// thresholdPool mixes ordinary splits with the boundary values where a
// compiled comparison could plausibly diverge from the interpreted one:
// exact-equality thresholds, subnormals, infinities, and NaN (a NaN
// threshold makes every comparison false, sending everything right).
var thresholdPool = []float64{
	0, 1, -1, 0.5, 10, -10, 1e-9, -1e-9, 1e9,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	math.Inf(1), math.Inf(-1), math.NaN(),
}

// valuePool feeds vectors with the same boundary values plus exact
// threshold hits, so `<=` ties are exercised on every tree.
var valuePool = append([]float64{math.NaN(), math.Inf(1), math.Inf(-1)}, thresholdPool[:9]...)

// randTree grows a random tree: random split features/thresholds, leaf
// probability rising with depth.
func randTree(rng *rand.Rand, numFeatures, numClasses, maxDepth int) *dtree.Tree {
	var grow func(depth int) *dtree.Node
	grow = func(depth int) *dtree.Node {
		if depth >= maxDepth || rng.Float64() < 0.25 {
			return &dtree.Node{Feature: -1, Label: rng.Intn(numClasses)}
		}
		return &dtree.Node{
			Feature:   rng.Intn(numFeatures),
			Threshold: thresholdPool[rng.Intn(len(thresholdPool))],
			Left:      grow(depth + 1),
			Right:     grow(depth + 1),
		}
	}
	return &dtree.Tree{Root: grow(0), NumFeatures: numFeatures, NumClasses: numClasses}
}

func randVector(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		if rng.Float64() < 0.5 {
			x[i] = valuePool[rng.Intn(len(valuePool))]
		} else {
			x[i] = rng.NormFloat64() * 10
		}
	}
	return x
}

func stepsEqual(a, b dtree.TrailStep) bool {
	feq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return a.Feature == b.Feature && a.Right == b.Right &&
		feq(a.Threshold, b.Threshold) && feq(a.Value, b.Value)
}

// TestCompiledMatchesInterpreted is the differential property test the
// whole subsystem rests on: on randomized trees and vectors (including
// NaN and boundary thresholds), every compiled evaluation mode — flat
// walk, specialized closure, batched, trail-recording, offset-recording
// — must agree exactly with the interpreted dtree walk.
func TestCompiledMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trees, vectors = 150, 100
	for ti := 0; ti < trees; ti++ {
		numFeatures := 1 + rng.Intn(8)
		dt := randTree(rng, numFeatures, 1+rng.Intn(5), 1+rng.Intn(8))
		ct, err := Compile(dt)
		if err != nil {
			t.Fatalf("tree %d: Compile: %v", ti, err)
		}
		fn := ct.Func()
		X := make([][]float64, vectors)
		for i := range X {
			X[i] = randVector(rng, numFeatures)
		}
		batched := make([]int, vectors)
		ct.PredictN(X, batched)
		var trailC, trailI [64]dtree.TrailStep
		var offs [65]int32
		for vi, x := range X {
			want := dt.Predict(x)
			if got := ct.Predict(x); got != want {
				t.Fatalf("tree %d vec %d (%v): compiled %d, interpreted %d", ti, vi, x, got, want)
			}
			if got := fn(x); got != want {
				t.Fatalf("tree %d vec %d (%v): %v closure %d, interpreted %d", ti, vi, x, ct.Kind(), got, want)
			}
			if batched[vi] != want {
				t.Fatalf("tree %d vec %d (%v): batched %d, interpreted %d", ti, vi, x, batched[vi], want)
			}
			wantLabel, wantSteps := dt.PredictTrail(x, trailI[:])
			gotLabel, gotSteps := ct.PredictTrail(x, trailC[:])
			if gotLabel != wantLabel || gotSteps != wantSteps {
				t.Fatalf("tree %d vec %d: trail (%d,%d), interpreted (%d,%d)",
					ti, vi, gotLabel, gotSteps, wantLabel, wantSteps)
			}
			for s := 0; s < gotSteps; s++ {
				if !stepsEqual(trailC[s], trailI[s]) {
					t.Fatalf("tree %d vec %d step %d: compiled %+v, interpreted %+v",
						ti, vi, s, trailC[s], trailI[s])
				}
			}
			// The compact offset encoding must decode back to the exact
			// trail the direct walk records.
			oLabel, n := ct.PredictOffsets(x, offs[:])
			if oLabel != want {
				t.Fatalf("tree %d vec %d: offsets label %d, want %d", ti, vi, oLabel, want)
			}
			var decoded [64]dtree.TrailStep
			dSteps := ct.DecodeOffsets(offs[:n], nil, x, decoded[:])
			if dSteps != wantSteps {
				t.Fatalf("tree %d vec %d: decoded %d steps, want %d", ti, vi, dSteps, wantSteps)
			}
			for s := 0; s < dSteps; s++ {
				if !stepsEqual(decoded[s], trailI[s]) {
					t.Fatalf("tree %d vec %d step %d: decoded %+v, interpreted %+v",
						ti, vi, s, decoded[s], trailI[s])
				}
			}
		}
	}
}

// FuzzCompiledPredict lets the fuzzer drive both the tree shape (via the
// seed) and the vector bytes.
func FuzzCompiledPredict(f *testing.F) {
	f.Add(int64(1), uint64(0x7ff8000000000001), uint64(42), uint64(1<<63))
	f.Add(int64(99), uint64(0), uint64(0xfff0000000000000), uint64(0x3ff0000000000000))
	f.Fuzz(func(t *testing.T, seed int64, b0, b1, b2 uint64) {
		rng := rand.New(rand.NewSource(seed))
		numFeatures := 1 + rng.Intn(6)
		dt := randTree(rng, numFeatures, 4, 7)
		ct, err := Compile(dt)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		raw := []uint64{b0, b1, b2}
		x := make([]float64, numFeatures)
		for i := range x {
			x[i] = math.Float64frombits(raw[i%len(raw)] ^ uint64(i)*0x9e3779b97f4a7c15)
		}
		want := dt.Predict(x)
		if got := ct.Predict(x); got != want {
			t.Fatalf("compiled %d, interpreted %d on %v", got, want, x)
		}
		if got := ct.Func()(x); got != want {
			t.Fatalf("closure %d, interpreted %d on %v", got, want, x)
		}
		var offs [128]int32
		if got, _ := ct.PredictOffsets(x, offs[:]); got != want {
			t.Fatalf("offsets %d, interpreted %d on %v", got, want, x)
		}
	})
}
