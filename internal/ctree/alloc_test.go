package ctree

import (
	"math/rand"
	"testing"

	"apollo/internal/dtree"
)

// The compiled predict path carries //apollo:hotpath: every evaluation
// mode must run allocation-free, enforced here at runtime and by
// apollo-vet statically.
func TestCompiledPredictAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dt := randTree(rng, 6, 4, 10)
	ct, err := Compile(dt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	fn := ct.Func()
	x := randVector(rng, 6)
	X := make([][]float64, 32)
	for i := range X {
		X[i] = randVector(rng, 6)
	}
	out := make([]int, len(X))
	var trail [24]dtree.TrailStep
	var offs [25]int32
	sink := 0
	for name, f := range map[string]func(){
		"Predict":        func() { sink += ct.Predict(x) },
		"Func":           func() { sink += fn(x) },
		"PredictN":       func() { ct.PredictN(X, out) },
		"PredictTrail":   func() { _, s := ct.PredictTrail(x, trail[:]); sink += s },
		"PredictOffsets": func() { _, n := ct.PredictOffsets(x, offs[:]); sink += n },
	} {
		if allocs := testing.AllocsPerRun(200, f); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per run, want 0", name, allocs)
		}
	}
	_ = sink
}
