package ctree

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"apollo/internal/dtree"
)

func leaf(label int) *dtree.Node {
	return &dtree.Node{Feature: -1, Label: label}
}

func split(feat int, th float64, l, r *dtree.Node) *dtree.Node {
	return &dtree.Node{Feature: feat, Threshold: th, Left: l, Right: r}
}

func mustCompile(t *testing.T, dt *dtree.Tree) *Tree {
	t.Helper()
	ct, err := Compile(dt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return ct
}

func TestCompileLeafOnly(t *testing.T) {
	ct := mustCompile(t, &dtree.Tree{Root: leaf(2), NumFeatures: 3, NumClasses: 3})
	if ct.Kind() != KindLeaf {
		t.Fatalf("kind = %v, want leaf", ct.Kind())
	}
	if got := ct.Predict([]float64{9, 9, 9}); got != 2 {
		t.Fatalf("Predict = %d, want 2", got)
	}
	if got := ct.Func()(nil); got != 2 {
		t.Fatalf("Func() = %d, want 2", got)
	}
	var offs [4]int32
	label, n := ct.PredictOffsets(nil, offs[:])
	if label != 2 || n != 1 || offs[0] != ^int32(2) {
		t.Fatalf("PredictOffsets = (%d,%d) offs[0]=%d, want (2,1) %d", label, n, offs[0], ^int32(2))
	}
	var trail [4]dtree.TrailStep
	if label, steps := ct.PredictTrail(nil, trail[:]); label != 2 || steps != 0 {
		t.Fatalf("PredictTrail = (%d,%d), want (2,0)", label, steps)
	}
	st := ct.Stats()
	if st.Internal != 0 || st.Leaves != 1 || st.Nodes != 1 || st.FlatBytes != 0 || st.Kind != "leaf" {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestCompileStump(t *testing.T) {
	dt := &dtree.Tree{Root: split(1, 5, leaf(0), leaf(1)), NumFeatures: 2, NumClasses: 2}
	ct := mustCompile(t, dt)
	if ct.Kind() != KindStump {
		t.Fatalf("kind = %v, want stump", ct.Kind())
	}
	fn := ct.Func()
	for _, tc := range []struct {
		v    float64
		want int
	}{{4, 0}, {5, 0}, {6, 1}, {math.NaN(), 1}, {math.Inf(-1), 0}, {math.Inf(1), 1}} {
		x := []float64{0, tc.v}
		if got := ct.Predict(x); got != tc.want {
			t.Errorf("Predict(%v) = %d, want %d", tc.v, got, tc.want)
		}
		if got := fn(x); got != tc.want {
			t.Errorf("Func(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestCompileSingleFeature(t *testing.T) {
	// Every split tests feature 0: a threshold ladder.
	dt := &dtree.Tree{
		Root:        split(0, 10, split(0, 5, leaf(0), leaf(1)), split(0, 20, leaf(2), leaf(3))),
		NumFeatures: 1,
		NumClasses:  4,
	}
	ct := mustCompile(t, dt)
	if ct.Kind() != KindSingleFeature {
		t.Fatalf("kind = %v, want single-feature", ct.Kind())
	}
	fn := ct.Func()
	for _, tc := range []struct {
		v    float64
		want int
	}{{3, 0}, {5, 0}, {7, 1}, {10, 1}, {15, 2}, {20, 2}, {25, 3}, {math.NaN(), 3}} {
		x := []float64{tc.v}
		if got, want := fn(x), dt.Predict(x); got != want || got != tc.want {
			t.Errorf("Func(%v) = %d, interpreted %d, table %d", tc.v, got, want, tc.want)
		}
	}
}

func TestCompilePreorderLayout(t *testing.T) {
	dt := &dtree.Tree{
		Root: split(0, 1,
			split(1, 2, leaf(0), split(2, 3, leaf(1), leaf(2))),
			split(1, 4, leaf(3), leaf(0))),
		NumFeatures: 3, NumClasses: 4,
	}
	ct := mustCompile(t, dt)
	if ct.Kind() != KindFlat {
		t.Fatalf("kind = %v, want flat", ct.Kind())
	}
	// Left-first preorder: every internal left child sits at offset i+1.
	for i, l := range ct.left {
		if l >= 0 && l != int32(i)+1 {
			t.Errorf("node %d: internal left child at %d, want %d", i, l, i+1)
		}
	}
	st := ct.Stats()
	if st.Internal != 4 || st.Leaves != 5 || st.Nodes != 9 || st.Depth != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	if want := 4 * 24; st.FlatBytes != want {
		t.Fatalf("FlatBytes = %d, want %d", st.FlatBytes, want)
	}
}

func TestCompileRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		tree *dtree.Tree
		want string
	}{
		{"nil tree", nil, "nil tree"},
		{"nil root", &dtree.Tree{}, "nil tree"},
		{"missing child", &dtree.Tree{Root: &dtree.Node{Feature: 0, Left: leaf(0)}, NumFeatures: 1}, "missing a child"},
		{"feature out of range", &dtree.Tree{Root: split(5, 1, leaf(0), leaf(1)), NumFeatures: 2}, "out of range"},
		{"negative label", &dtree.Tree{Root: split(0, 1, leaf(-1), leaf(0)), NumFeatures: 1}, "negative label"},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.tree); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestCompileDerivesNumFeatures(t *testing.T) {
	// NumFeatures unset on the source tree: derived from the deepest
	// feature index actually referenced.
	dt := &dtree.Tree{Root: split(3, 1, leaf(0), leaf(1))}
	ct := mustCompile(t, dt)
	if ct.NumFeatures() != 4 {
		t.Fatalf("NumFeatures = %d, want 4", ct.NumFeatures())
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	dt := &dtree.Tree{
		Root: split(0, 1,
			split(1, 2, leaf(0), split(2, 3, leaf(1), leaf(2))),
			split(1, 4, leaf(3), leaf(0))),
		NumFeatures: 3, NumClasses: 4,
	}
	ct := mustCompile(t, dt)
	blob, err := json.Marshal(ct.Layout())
	if err != nil {
		t.Fatalf("marshal layout: %v", err)
	}
	var l Layout
	if err := json.Unmarshal(blob, &l); err != nil {
		t.Fatalf("unmarshal layout: %v", err)
	}
	rt, err := FromLayout(&l)
	if err != nil {
		t.Fatalf("FromLayout: %v", err)
	}
	if rt.Kind() != ct.Kind() || rt.Stats() != ct.Stats() {
		t.Fatalf("round trip stats = %+v, want %+v", rt.Stats(), ct.Stats())
	}
	for _, x := range [][]float64{{0, 0, 0}, {2, 5, 1}, {2, 1, 9}, {0.5, 2, 3}, {1, 2, 3}} {
		if got, want := rt.Predict(x), dt.Predict(x); got != want {
			t.Errorf("round trip Predict(%v) = %d, want %d", x, got, want)
		}
	}

	// Leaf-only layouts round-trip through the explicit label field.
	lt := mustCompile(t, &dtree.Tree{Root: leaf(1), NumClasses: 2})
	blob, _ = json.Marshal(lt.Layout())
	var ll Layout
	if err := json.Unmarshal(blob, &ll); err != nil {
		t.Fatalf("unmarshal leaf layout: %v", err)
	}
	rl, err := FromLayout(&ll)
	if err != nil {
		t.Fatalf("FromLayout leaf: %v", err)
	}
	if got := rl.Predict(nil); got != 1 {
		t.Fatalf("leaf round trip Predict = %d, want 1", got)
	}
}

func TestFromLayoutRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		l    *Layout
		want string
	}{
		{"nil", nil, "nil layout"},
		{"ragged arrays", &Layout{Feat: []int32{0}, Thresh: []float64{1}}, "disagree"},
		{"empty without label", &Layout{}, "without a leaf label"},
		{"backward child", &Layout{Feat: []int32{0, 0}, Thresh: []float64{1, 2},
			Left: []int32{1, 0}, Right: []int32{^int32(0), ^int32(1)}}, "preorder invariant"},
		{"child out of range", &Layout{Feat: []int32{0}, Thresh: []float64{1},
			Left: []int32{7}, Right: []int32{^int32(0)}}, "out of range"},
		{"negative feature", &Layout{Feat: []int32{-2}, Thresh: []float64{1},
			Left: []int32{^int32(0)}, Right: []int32{^int32(1)}}, "negative feature"},
	}
	for _, tc := range cases {
		if _, err := FromLayout(tc.l); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestPredictOffsetsTruncation(t *testing.T) {
	// A 5-deep threshold ladder; record into a 3-slot buffer. The walk
	// must still reach the right leaf while recording stops early.
	root := leaf(5)
	for f := 4; f >= 0; f-- {
		root = split(0, float64(f), leaf(f), root)
	}
	dt := &dtree.Tree{Root: root, NumFeatures: 1, NumClasses: 6}
	ct := mustCompile(t, dt)
	x := []float64{9} // always right: visits all 5 internal nodes
	var offs [3]int32
	label, n := ct.PredictOffsets(x, offs[:])
	if label != 5 || n != 3 {
		t.Fatalf("PredictOffsets = (%d,%d), want (5,3)", label, n)
	}
	for _, o := range offs {
		if o < 0 {
			t.Fatalf("truncated trail recorded a leaf ref: %v", offs)
		}
	}
	// Decoding a truncated trail reconstructs each recorded step's
	// direction from the feature value.
	var trail [8]dtree.TrailStep
	steps := ct.DecodeOffsets(offs[:n], nil, x, trail[:])
	if steps != 3 {
		t.Fatalf("DecodeOffsets = %d steps, want 3", steps)
	}
	var full [8]dtree.TrailStep
	_, fullSteps := ct.PredictTrail(x, full[:])
	for i := 0; i < steps; i++ {
		if trail[i] != full[i] {
			t.Errorf("step %d: decoded %+v, walked %+v", i, trail[i], full[i])
		}
	}
	if fullSteps != 5 {
		t.Fatalf("full trail = %d steps, want 5", fullSteps)
	}
}

func TestDecodeOffsetsSourceMapping(t *testing.T) {
	// Model features 0,1 map to source indices 3 and -1 (absent).
	dt := &dtree.Tree{
		Root:        split(0, 1, leaf(0), split(1, 2, leaf(1), leaf(2))),
		NumFeatures: 2, NumClasses: 3,
	}
	ct := mustCompile(t, dt)
	src := []int32{3, -1}
	model := []float64{5, 9}     // model-layout vector the walk sees
	source := []float64{0, 0, 0, 5} // source-layout snapshot the recorder kept
	var offs [8]int32
	label, n := ct.PredictOffsets(model, offs[:])
	if label != 2 {
		t.Fatalf("label = %d, want 2", label)
	}
	var trail [8]dtree.TrailStep
	steps := ct.DecodeOffsets(offs[:n], src, source, trail[:])
	if steps != 2 {
		t.Fatalf("steps = %d, want 2", steps)
	}
	if trail[0].Feature != 3 || trail[0].Value != 5 || !trail[0].Right {
		t.Errorf("step 0 = %+v, want source feature 3 value 5 right", trail[0])
	}
	if trail[1].Feature != -1 || !math.IsNaN(trail[1].Value) || !trail[1].Right {
		t.Errorf("step 1 = %+v, want absent feature with NaN value", trail[1])
	}

	// A foreign offset aborts the decode without panicking.
	if got := ct.DecodeOffsets([]int32{0, 99}, src, source, trail[:]); got != 1 {
		t.Errorf("foreign trail decoded %d steps, want 1", got)
	}
}
