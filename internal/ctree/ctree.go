// Package ctree is Apollo's publish-time model compiler: it flattens a
// trained dtree.Tree into branch-predictable threaded arrays and owns
// every post-training decision representation the serving stack runs.
//
// The interpreted dtree walk chases heap pointers — every step is a
// dependent load into an allocation the garbage collector placed, so a
// cold predict pays a cache miss per level. The compiled form is a
// structure-of-arrays layout: one int32 feature index, one float64
// threshold, and two int32 child offsets per internal node (24 bytes —
// two to three nodes per cache line), flattened in left-first preorder so
// the common "take the left branch" step lands on the adjacent element.
// Leaves are not stored at all: a child offset < 0 encodes the predicted
// label as ^label, which turns the walk's leaf test into a sign check.
//
// Compilation happens once, at publish or model-swap time (registry
// publish/hot-reload, client fetch, projector construction); the hot
// path only ever walks the arrays. Func additionally specializes a
// per-site predict closure, constant-folding leaf-only trees and
// dispatching single-feature trees through a one-load walk. PredictN
// amortizes one compiled walk over a vector of launches, and
// PredictOffsets emits the compact decision-trail encoding the flight
// recorder stores (node offsets, 4 bytes per step) which DecodeOffsets
// expands back into full provenance against the compiled layout.
package ctree

import (
	"fmt"
	"math"

	"apollo/internal/dtree"
)

// Kind classifies the specialization Func applies to a compiled tree.
type Kind int

const (
	// KindFlat is the general case: the SoA threaded-array walk.
	KindFlat Kind = iota
	// KindLeaf is a tree with no splits: the prediction is a constant.
	KindLeaf
	// KindStump is a single split with two leaf children.
	KindStump
	// KindSingleFeature is a tree whose every split tests the same
	// feature: the walk loads the feature once and compares thresholds.
	KindSingleFeature
)

// String names the specialization kind for reports.
func (k Kind) String() string {
	switch k {
	case KindLeaf:
		return "leaf"
	case KindStump:
		return "stump"
	case KindSingleFeature:
		return "single-feature"
	}
	return "flat"
}

// Tree is a compiled decision tree. It is immutable after Compile and
// safe for any number of concurrent readers; a model swap replaces the
// whole Tree behind an atomic pointer rather than mutating one.
// pnode is one packed internal node of the walk array: the feature
// index, both child references, and the threshold in 24 bytes, so every
// level of the walk touches at most one cache line (two to three nodes
// per line) instead of one line per SoA array.
type pnode struct {
	feat        int32
	left, right int32
	_           int32
	thresh      float64
}

type Tree struct {
	// nodes is the packed walk array every predict runs on; its total
	// footprint is about a quarter of the interpreted node set, which is
	// what keeps realistic models cache-resident.
	nodes []pnode
	// SoA node arrays, indexed by node offset — the canonical compiled
	// form that Layout serializes and DecodeOffsets reads. Only internal
	// nodes are materialized; a child reference < 0 is a leaf encoding
	// ^label.
	feat   []int32
	thresh []float64
	left   []int32
	right  []int32

	numFeatures int
	numClasses  int
	depth       int
	leaves      int

	kind       Kind
	leafLabel  int32 // the constant prediction when kind == KindLeaf
	singleFeat int32 // the tested feature when kind is stump/single-feature
}

// Compile flattens a trained tree. It validates the structure (every
// internal node must have two children and an in-range feature index) so
// a walk over the result can never index out of bounds.
func Compile(t *dtree.Tree) (*Tree, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("ctree: compiling a nil tree")
	}
	ct := &Tree{
		numFeatures: t.NumFeatures,
		numClasses:  t.NumClasses,
		depth:       t.Depth(),
		leaves:      t.NumLeaves(),
	}
	if t.Root.IsLeaf() {
		if t.Root.Label < 0 {
			return nil, fmt.Errorf("ctree: leaf with negative label %d", t.Root.Label)
		}
		ct.kind = KindLeaf
		ct.leafLabel = int32(t.Root.Label)
		return ct, nil
	}
	maxFeat := int32(-1)
	var flatten func(n *dtree.Node) (int32, error)
	flatten = func(n *dtree.Node) (int32, error) {
		if n.IsLeaf() {
			if n.Label < 0 {
				return 0, fmt.Errorf("ctree: leaf with negative label %d", n.Label)
			}
			return ^int32(n.Label), nil
		}
		if n.Left == nil || n.Right == nil {
			return 0, fmt.Errorf("ctree: internal node on feature %d missing a child", n.Feature)
		}
		if t.NumFeatures > 0 && n.Feature >= t.NumFeatures {
			return 0, fmt.Errorf("ctree: split feature %d out of range (%d features)", n.Feature, t.NumFeatures)
		}
		if int32(n.Feature) > maxFeat {
			maxFeat = int32(n.Feature)
		}
		i := int32(len(ct.feat))
		ct.feat = append(ct.feat, int32(n.Feature))
		ct.thresh = append(ct.thresh, n.Threshold)
		ct.left = append(ct.left, 0)
		ct.right = append(ct.right, 0)
		// Left-first preorder: the left child of node i is node i+1, so
		// the "<= threshold" branch walks linearly through the arrays.
		l, err := flatten(n.Left)
		if err != nil {
			return 0, err
		}
		ct.left[i] = l
		r, err := flatten(n.Right)
		if err != nil {
			return 0, err
		}
		ct.right[i] = r
		return i, nil
	}
	if _, err := flatten(t.Root); err != nil {
		return nil, err
	}
	if ct.numFeatures <= int(maxFeat) {
		ct.numFeatures = int(maxFeat) + 1
	}
	ct.pack()
	ct.classify()
	return ct, nil
}

// pack builds the packed walk array from the canonical SoA arrays.
func (ct *Tree) pack() {
	ct.nodes = make([]pnode, len(ct.feat))
	for i := range ct.feat {
		ct.nodes[i] = pnode{feat: ct.feat[i], left: ct.left[i], right: ct.right[i], thresh: ct.thresh[i]}
	}
}

// classify detects the specialization kind of a flattened tree.
func (ct *Tree) classify() {
	ct.kind = KindFlat
	f := ct.feat[0]
	for _, g := range ct.feat {
		if g != f {
			return
		}
	}
	ct.singleFeat = f
	if len(ct.feat) == 1 {
		ct.kind = KindStump
	} else {
		ct.kind = KindSingleFeature
	}
}

// NumFeatures returns the width of accepted input vectors.
func (t *Tree) NumFeatures() int { return t.numFeatures }

// NumClasses returns the number of distinct labels the source tree knew.
func (t *Tree) NumClasses() int { return t.numClasses }

// Kind returns the specialization Func applies.
func (t *Tree) Kind() Kind { return t.kind }

// Predict returns the predicted class for x. It allocates nothing and
// performs one array-indexed comparison per tree level — the compiled
// replacement for the interpreted dtree walk.
//
//apollo:hotpath
func (t *Tree) Predict(x []float64) int {
	nodes := t.nodes
	if len(nodes) == 0 {
		return int(t.leafLabel)
	}
	ref := int32(0)
	for {
		n := &nodes[ref]
		if x[n.feat] <= n.thresh {
			ref = n.left
		} else {
			ref = n.right
		}
		if ref < 0 {
			return int(^ref)
		}
	}
}

// predictValue walks a single-feature tree given the one feature value
// it tests — the specialized body behind Func's single-feature closure.
//
//apollo:hotpath
func (t *Tree) predictValue(v float64) int {
	nodes := t.nodes
	ref := int32(0)
	for {
		n := &nodes[ref]
		if v <= n.thresh {
			ref = n.left
		} else {
			ref = n.right
		}
		if ref < 0 {
			return int(^ref)
		}
	}
}

// PredictN evaluates a batch of vectors in one compiled walk, writing
// classes into out (which must be at least len(X) long). The arrays are
// hoisted once for the whole batch, so the per-launch cost is below a
// single Predict call — the amortization a tuner gets when it decides a
// vector of queued launches together.
//
//apollo:hotpath
func (t *Tree) PredictN(X [][]float64, out []int) {
	nodes := t.nodes
	if len(nodes) == 0 {
		label := int(t.leafLabel)
		for i := range X {
			out[i] = label
		}
		return
	}
	for i, x := range X {
		ref := int32(0)
		for {
			n := &nodes[ref]
			if x[n.feat] <= n.thresh {
				ref = n.left
			} else {
				ref = n.right
			}
			if ref < 0 {
				break
			}
		}
		out[i] = int(^ref)
	}
}

// PredictTrail evaluates x like Predict while recording the root-to-leaf
// trail into the caller's buffer, with dtree.PredictTrail semantics:
// paths deeper than len(trail) keep walking but stop recording. It
// allocates nothing.
//
//apollo:hotpath
func (t *Tree) PredictTrail(x []float64, trail []dtree.TrailStep) (label, steps int) {
	nodes := t.nodes
	if len(nodes) == 0 {
		return int(t.leafLabel), 0
	}
	ref := int32(0)
	for {
		n := &nodes[ref]
		v := x[n.feat]
		goesLeft := v <= n.thresh
		if steps < len(trail) {
			trail[steps] = dtree.TrailStep{
				Feature:   n.feat,
				Right:     !goesLeft,
				Threshold: n.thresh,
				Value:     v,
			}
			steps++
		}
		if goesLeft {
			ref = n.left
		} else {
			ref = n.right
		}
		if ref < 0 {
			return int(^ref), steps
		}
	}
}

// PredictOffsets evaluates x while recording the compact trail encoding:
// the offset of every internal node visited, terminated by the (negative)
// leaf reference taken, 4 bytes per step. n is the number of entries
// written; trails deeper than len(offs) keep walking but stop recording.
// DecodeOffsets expands the encoding back into full TrailSteps — this is
// what lets the flight recorder keep complete root-to-leaf provenance at
// an eighth of the TrailStep storage cost.
//
//apollo:hotpath
func (t *Tree) PredictOffsets(x []float64, offs []int32) (label, n int) {
	nodes := t.nodes
	if len(nodes) == 0 {
		if len(offs) > 0 {
			offs[0] = ^t.leafLabel
			n = 1
		}
		return int(t.leafLabel), n
	}
	ref := int32(0)
	for ref >= 0 {
		if n < len(offs) {
			offs[n] = ref
			n++
		}
		nd := &nodes[ref]
		if x[nd.feat] <= nd.thresh {
			ref = nd.left
		} else {
			ref = nd.right
		}
	}
	if n < len(offs) {
		offs[n] = ref
		n++
	}
	return int(^ref), n
}

// DecodeOffsets expands a compact offset trail (as written by
// PredictOffsets) into TrailSteps. src, when non-nil, maps the tree's
// feature indices into a source schema (the projector mapping; -1 marks
// features the source lacks) and the emitted steps carry source indices,
// matching the convention of Projector.PredictTrail. features supplies
// the recorded source-layout feature values for each step's Value (NaN
// when unavailable). It returns the number of steps written and is
// tolerant of truncated or foreign trails: decoding stops at the first
// out-of-range offset.
func (t *Tree) DecodeOffsets(offs []int32, src []int32, features []float64, trail []dtree.TrailStep) (steps int) {
	for i := 0; i < len(offs) && steps < len(trail); i++ {
		ref := offs[i]
		if ref < 0 {
			break // terminal leaf reference
		}
		if int(ref) >= len(t.feat) {
			break // foreign or corrupt trail; keep what decoded cleanly
		}
		mf := t.feat[ref]
		sf := mf
		if src != nil {
			if int(mf) < len(src) {
				sf = src[mf]
			} else {
				sf = -1
			}
		}
		v := math.NaN()
		if sf >= 0 && int(sf) < len(features) {
			v = features[sf]
		}
		var right bool
		if i+1 < len(offs) && t.left[ref] != t.right[ref] {
			right = offs[i+1] == t.right[ref]
		} else {
			// The trail was truncated before this step's outcome was
			// recorded, or both children lead to the same leaf (so the
			// next offset is ambiguous); reconstruct the direction from
			// the value, mirroring the walk's comparison.
			right = !(v <= t.thresh[ref])
		}
		trail[steps] = dtree.TrailStep{
			Feature:   sf,
			Right:     right,
			Threshold: t.thresh[ref],
			Value:     v,
		}
		steps++
	}
	return steps
}

// Func returns the per-site specialized predict closure — what a client
// or projector installs at model-swap time. Leaf-only trees fold to a
// constant, stumps to a single comparison, single-feature trees to a
// one-load threshold walk; everything else dispatches to the flat walk.
// The closure is built once on the cold path and is allocation-free to
// call.
func (t *Tree) Func() func(x []float64) int {
	switch t.kind {
	case KindLeaf:
		label := int(t.leafLabel)
		return func([]float64) int { return label }
	case KindStump:
		f := int(t.singleFeat)
		th := t.thresh[0]
		l, r := int(^t.left[0]), int(^t.right[0])
		return func(x []float64) int {
			if x[f] <= th {
				return l
			}
			return r
		}
	case KindSingleFeature:
		f := int(t.singleFeat)
		return func(x []float64) int { return t.predictValue(x[f]) }
	}
	return t.Predict
}

// Stats summarizes a compiled tree for operator-facing reports
// (apollo-inspect models, the server's model listing).
type Stats struct {
	// Internal and Leaves count node kinds; Nodes is their sum (equal to
	// the interpreted tree's node count).
	Internal int `json:"internal_nodes"`
	Leaves   int `json:"leaves"`
	Nodes    int `json:"nodes"`
	// Depth is the maximum comparisons on any root-to-leaf path.
	Depth int `json:"depth"`
	// FlatBytes is the footprint of the packed walk array (24 bytes per
	// internal node).
	FlatBytes int `json:"flat_bytes"`
	// Kind names the Func specialization.
	Kind string `json:"kind"`
}

// Stats returns the compiled tree's summary.
func (t *Tree) Stats() Stats {
	return Stats{
		Internal:  len(t.feat),
		Leaves:    t.leaves,
		Nodes:     len(t.feat) + t.leaves,
		Depth:     t.depth,
		FlatBytes: len(t.nodes) * 24,
		Kind:      t.kind.String(),
	}
}

// Layout is the serializable form of the threaded arrays — what a flight
// capture embeds per site so offline tools (apollo-inspect flight) can
// decode compact offset trails without the original model.
type Layout struct {
	Feat   []int32   `json:"feat,omitempty"`
	Thresh []float64 `json:"thresh,omitempty"`
	Left   []int32   `json:"left,omitempty"`
	Right  []int32   `json:"right,omitempty"`
	// LeafLabel is set for leaf-only trees, which have no arrays.
	LeafLabel *int32 `json:"leaf_label,omitempty"`
}

// Layout exports the compiled arrays. The slices are shared, not copied:
// a Tree is immutable, and callers must treat the layout the same way.
func (t *Tree) Layout() *Layout {
	l := &Layout{Feat: t.feat, Thresh: t.thresh, Left: t.left, Right: t.right}
	if len(t.feat) == 0 {
		label := t.leafLabel
		l.LeafLabel = &label
	}
	return l
}

// FromLayout rebuilds a compiled tree from its serialized layout,
// validating that every internal child reference points strictly forward
// (the preorder invariant, which guarantees walks terminate) and stays in
// range. Trees rebuilt this way decode trails and predict; class counts
// and depth metadata are reconstructed from the arrays.
func FromLayout(l *Layout) (*Tree, error) {
	if l == nil {
		return nil, fmt.Errorf("ctree: nil layout")
	}
	n := len(l.Feat)
	if len(l.Thresh) != n || len(l.Left) != n || len(l.Right) != n {
		return nil, fmt.Errorf("ctree: layout arrays disagree: feat=%d thresh=%d left=%d right=%d",
			n, len(l.Thresh), len(l.Left), len(l.Right))
	}
	ct := &Tree{feat: l.Feat, thresh: l.Thresh, left: l.Left, right: l.Right}
	if n == 0 {
		if l.LeafLabel == nil {
			return nil, fmt.Errorf("ctree: empty layout without a leaf label")
		}
		if *l.LeafLabel < 0 {
			return nil, fmt.Errorf("ctree: leaf label %d negative", *l.LeafLabel)
		}
		ct.kind = KindLeaf
		ct.leafLabel = *l.LeafLabel
		ct.numClasses = int(*l.LeafLabel) + 1
		ct.leaves = 1
		return ct, nil
	}
	maxFeat, maxLabel := int32(-1), int32(-1)
	for i := 0; i < n; i++ {
		if l.Feat[i] < 0 {
			return nil, fmt.Errorf("ctree: node %d has negative feature", i)
		}
		if l.Feat[i] > maxFeat {
			maxFeat = l.Feat[i]
		}
		for _, ref := range [2]int32{l.Left[i], l.Right[i]} {
			switch {
			case ref < 0:
				ct.leaves++
				if ^ref > maxLabel {
					maxLabel = ^ref
				}
			case int(ref) >= n:
				return nil, fmt.Errorf("ctree: node %d child %d out of range (%d nodes)", i, ref, n)
			case ref <= int32(i):
				return nil, fmt.Errorf("ctree: node %d child %d breaks the preorder invariant", i, ref)
			}
		}
	}
	ct.numFeatures = int(maxFeat) + 1
	ct.numClasses = int(maxLabel) + 1
	ct.depth = ct.computeDepth()
	ct.pack()
	ct.classify()
	return ct, nil
}

// computeDepth measures the maximum path length of the flattened tree.
func (t *Tree) computeDepth() int {
	var walk func(ref int32) int
	walk = func(ref int32) int {
		if ref < 0 {
			return 0
		}
		l, r := walk(t.left[ref]), walk(t.right[ref])
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}
