package ctree

import (
	"apollo/internal/dtree"
	"math/rand"
	"testing"
)

// newBenchFixture builds a production-shaped policy model: a full
// balanced tree deep enough that its node set dwarfs L2, so the
// interpreted walk pays its pointer-chasing cache misses the way a real
// cache-miss predict does, while every lookup still walks the same
// number of levels in both representations. Thresholds are drawn from
// the same distribution as the probe vectors so both branches stay live.
func newBenchFixture(b *testing.B) (ct *Tree, fn func([]float64) int, X [][]float64, interp func([]float64) int) {
	rng := rand.New(rand.NewSource(1))
	const depth, numFeatures = 15, 12
	var grow func(d int) *dtree.Node
	grow = func(d int) *dtree.Node {
		if d == depth {
			return &dtree.Node{Feature: -1, Label: rng.Intn(4)}
		}
		return &dtree.Node{
			Feature:   rng.Intn(numFeatures),
			Threshold: rng.NormFloat64(),
			Left:      grow(d + 1),
			Right:     grow(d + 1),
		}
	}
	dt := &dtree.Tree{Root: grow(0), NumFeatures: numFeatures, NumClasses: 4}
	var err error
	ct, err = Compile(dt)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	fn = ct.Func()
	X = make([][]float64, 512)
	for i := range X {
		x := make([]float64, numFeatures)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		X[i] = x
	}
	return ct, fn, X, dt.Predict
}

// BenchmarkInterpretedPredict is the baseline: the pointer-chasing dtree
// walk every cache-miss decision used to pay.
func BenchmarkInterpretedPredict(b *testing.B) {
	_, _, X, interp := newBenchFixture(b)
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += interp(X[i&511])
	}
	_ = sink
}

// BenchmarkCompiledPredict is the flat SoA walk.
func BenchmarkCompiledPredict(b *testing.B) {
	ct, _, X, _ := newBenchFixture(b)
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += ct.Predict(X[i&511])
	}
	_ = sink
}

// BenchmarkSpecializedFunc is the per-site closure a client installs at
// model-swap time.
func BenchmarkSpecializedFunc(b *testing.B) {
	_, fn, X, _ := newBenchFixture(b)
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += fn(X[i&511])
	}
	_ = sink
}

// BenchmarkBatchedPredictN amortizes one compiled walk over a vector of
// launches; ns/launch is the per-decision cost.
func BenchmarkBatchedPredictN(b *testing.B) {
	ct, _, X, _ := newBenchFixture(b)
	out := make([]int, len(X))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.PredictN(X, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(X)), "ns/launch")
}

// BenchmarkPredictOffsets is the flight-recorder trail encoding cost.
func BenchmarkPredictOffsets(b *testing.B) {
	ct, _, X, _ := newBenchFixture(b)
	var offs [25]int32
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		_, n := ct.PredictOffsets(X[i&511], offs[:])
		sink += n
	}
	_ = sink
}
