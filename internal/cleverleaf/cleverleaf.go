// Package cleverleaf is the CleverLeaf proxy: a 2D Eulerian
// shock-hydrodynamics code with block-structured adaptive mesh refinement
// (package amr standing in for SAMRAI), mirroring the application the
// paper tunes most successfully.
//
// The solver is a dimension-split first-order finite-volume scheme with
// Rusanov fluxes, organized into many small RAJA kernels in the
// CloverLeaf style: per-patch interior kernels (ideal_gas, viscosity,
// advection sweeps per conserved component, resets, field summary) and
// width-2 boundary-strip kernels applying the physical boundary
// conditions (update_halo_*). As in the paper, the majority of kernels
// iterate over all elements of the current AMR patch, so their iteration
// counts — and therefore their best execution policy — are set by the
// regridding algorithm at runtime.
package cleverleaf

import (
	"fmt"
	"math"

	"apollo/internal/amr"
	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/features"
	"apollo/internal/hydro"
	"apollo/internal/instmix"
	"apollo/internal/mesh"
	"apollo/internal/raja"
)

// Field names on every patch.
const (
	FRho  = "density"
	FMu   = "xmom"
	FMv   = "ymom"
	FE    = "energy"
	FP    = "pressure"
	FQ    = "viscosity"
	FWs   = "wavespeed"
	FRhoN = "density_new"
	FMuN  = "xmom_new"
	FMvN  = "ymom_new"
	FEN   = "energy_new"
)

var allFields = []string{FRho, FMu, FMv, FE, FP, FQ, FWs, FRhoN, FMuN, FMvN, FEN}

// conservedFields are exchanged between patches and levels.
var conservedFields = []string{FRho, FMu, FMv, FE}

// Kernel launch sites. As in RAJA, each source loop is a distinct site
// with a stable identity and a registered instruction mix (see package
// instmix for the Dyninst substitution).
var (
	kIdealGas = raja.NewKernel("cleverleaf::ideal_gas", instmix.NewMix().
			With(instmix.Movsd, 6).With(instmix.Mulpd, 4).With(instmix.Add, 3).
			With(instmix.Divsd, 1).With(instmix.Sqrtsd, 1).With(instmix.Maxsd, 2).
			With(instmix.Mov, 4).With(instmix.Cmp, 1).With(instmix.Jb, 1))
	kViscosity = raja.NewKernel("cleverleaf::viscosity", instmix.NewMix().
			With(instmix.Movsd, 8).With(instmix.Mulpd, 6).With(instmix.Add, 6).
			With(instmix.Sub, 2).With(instmix.Maxsd, 2).With(instmix.Mov, 5).
			With(instmix.Cmp, 2).With(instmix.Jb, 1))
	kAccelerate = raja.NewKernel("cleverleaf::accelerate", instmix.NewMix().
			With(instmix.Movsd, 6).With(instmix.Mulpd, 4).With(instmix.Add, 4).
			With(instmix.Mov, 4).With(instmix.Sub, 1))
	kCalcDt = raja.NewKernel("cleverleaf::calc_dt", instmix.NewMix().
		With(instmix.Movsd, 5).With(instmix.Divsd, 2).With(instmix.Sqrtsd, 1).
		With(instmix.Add, 2).With(instmix.Maxsd, 2).With(instmix.Mov, 3).
		With(instmix.Comisd, 1))
	kAdvecCellX = raja.NewKernel("cleverleaf::advec_cell_x", sweepMix())
	kAdvecMomX  = raja.NewKernel("cleverleaf::advec_mom_x", sweepMomMix())
	kAdvecEneX  = raja.NewKernel("cleverleaf::advec_energy_x", sweepMix())
	kAdvecCellY = raja.NewKernel("cleverleaf::advec_cell_y", sweepMix())
	kAdvecMomY  = raja.NewKernel("cleverleaf::advec_mom_y", sweepMomMix())
	kAdvecEneY  = raja.NewKernel("cleverleaf::advec_energy_y", sweepMix())
	kResetX     = raja.NewKernel("cleverleaf::reset_field_x", resetMix())
	kResetY     = raja.NewKernel("cleverleaf::reset_field_y", resetMix())
	kSummary    = raja.NewKernel("cleverleaf::field_summary", instmix.NewMix().
			With(instmix.Movsd, 4).With(instmix.Mulpd, 2).With(instmix.Add, 3).
			With(instmix.Mov, 2))

	haloKernels = buildHaloKernels()
)

func sweepMix() *instmix.Mix {
	return instmix.NewMix().
		With(instmix.Movsd, 14).With(instmix.Mulpd, 16).With(instmix.Add, 12).
		With(instmix.Sub, 6).With(instmix.Divsd, 3).With(instmix.Sqrtsd, 2).
		With(instmix.Maxsd, 3).With(instmix.Mov, 8).With(instmix.Cmp, 2).
		With(instmix.Jb, 1).With(instmix.Lea, 2)
}

func sweepMomMix() *instmix.Mix {
	return sweepMix().Clone().With(instmix.Mulpd, 4).With(instmix.Movsd, 4)
}

func resetMix() *instmix.Mix {
	return instmix.NewMix().
		With(instmix.Movsd, 8).With(instmix.Mov, 8).With(instmix.Lea, 2)
}

// haloKernel identifies one update_halo launch site: a field exchanged at
// a physical boundary in one direction.
type haloKernel struct {
	field  string
	dir    int // 0 = x edges, 1 = y edges
	sign   float64
	kernel *raja.Kernel
}

func buildHaloKernels() []haloKernel {
	mix := func() *instmix.Mix {
		return instmix.NewMix().
			With(instmix.Movsd, 2).With(instmix.Mov, 4).With(instmix.Cmp, 2).
			With(instmix.Jb, 1).With(instmix.Lea, 1)
	}
	var out []haloKernel
	for _, f := range conservedFields {
		for dir := 0; dir < 2; dir++ {
			sign := 1.0
			if (f == FMu && dir == 0) || (f == FMv && dir == 1) {
				sign = -1 // reflect normal momentum
			}
			dirName := "x"
			if dir == 1 {
				dirName = "y"
			}
			out = append(out, haloKernel{
				field: f, dir: dir, sign: sign,
				kernel: raja.NewKernel(fmt.Sprintf("cleverleaf::update_halo_%s_%s", f, dirName), mix()),
			})
		}
	}
	return out
}

// Sim is a CleverLeaf run.
type Sim struct {
	cfg   app.Config
	deck  hydro.Deck
	h     *amr.Hierarchy
	cycle int
	time  float64

	regridEvery int
}

// Descriptor returns the harness descriptor for CleverLeaf.
func Descriptor() app.Descriptor {
	return app.Descriptor{
		Name:          "CleverLeaf",
		Short:         "C",
		Problems:      []string{"sod", "sedov", "triple_pt"},
		TrainSizes:    []int{32, 48, 64, 96},
		Steps:         12,
		DefaultParams: raja.Params{Policy: raja.OmpParallelForExec},
		New:           func(cfg app.Config) (app.Sim, error) { return New(cfg) },
	}
}

// New builds a CleverLeaf run for the configured deck and size.
func New(cfg app.Config) (*Sim, error) {
	deck, ok := hydro.DeckByName(cfg.Problem)
	if !ok {
		return nil, fmt.Errorf("cleverleaf: unknown problem %q", cfg.Problem)
	}
	if cfg.Size < 16 {
		return nil, fmt.Errorf("cleverleaf: size %d too small (min 16)", cfg.Size)
	}
	if cfg.Ann == nil {
		cfg.Ann = caliper.New()
	}
	if cfg.Ranks < 1 {
		cfg.Ranks = 1
	}
	base := 32
	if cfg.Size < base {
		base = cfg.Size
	}
	if cfg.Ranks > 1 {
		// Distributed runs decompose the base grid so each rank owns
		// roughly one base block; strong scaling shrinks the blocks.
		side := int(math.Ceil(math.Sqrt(float64(cfg.Ranks))))
		base = cfg.Size / side
		if base < 8 {
			base = 8
		}
	}
	maxBlock := 0
	if cfg.Ranks > 1 {
		// Cap patch sizes so refined work stays divisible across ranks
		// (SAMRAI's largest-patch-size constraint).
		maxBlock = base * 2
	}
	h := amr.New(amr.Config{
		Domain:    mesh.NewBox(0, 0, cfg.Size, cfg.Size),
		MaxLevels: 2,
		Ratio:     2,
		Ghost:     2,
		TileSize:  4,
		TagBuffer: 1,
		BaseBlock: base,
		MaxBlock:  maxBlock,
		Fields:    allFields,
	})
	s := &Sim{cfg: cfg, deck: deck, h: h, regridEvery: 4}
	s.cfg.Ann.SetString(features.ProblemName, deck.Name)
	s.cfg.Ann.Set(features.ProblemSize, float64(cfg.Size))
	s.cfg.Ann.Set(features.Timestep, 0)

	s.applyDeck(0)
	s.regrid()
	s.applyDeck(1) // refine initial condition on the new fine patches
	return s, nil
}

// applyDeck writes the deck's initial condition on every patch of level l.
func (s *Sim) applyDeck(l int) {
	if l >= s.h.NumLevels() {
		return
	}
	domain := s.h.LevelDomain(l)
	nx, ny := float64(domain.NX()), float64(domain.NY())
	for _, p := range s.h.Level(l) {
		rho, mu, mv, e := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE)
		for j := p.Box.Y0; j < p.Box.Y1; j++ {
			for i := p.Box.X0; i < p.Box.X1; i++ {
				x := (float64(i) + 0.5) / nx
				y := (float64(j) + 0.5) / ny
				r, u, v, pr, _ := s.deck.Init(x, y)
				st := hydro.Conserved(r, u, v, pr)
				rho.Set(i, j, st.Rho)
				mu.Set(i, j, st.Mu)
				mv.Set(i, j, st.Mv)
				e.Set(i, j, st.E)
			}
		}
	}
}

// Hierarchy exposes the AMR hierarchy (for tests and visual summaries).
func (s *Sim) Hierarchy() *amr.Hierarchy { return s.h }

// Cycle returns the number of completed steps.
func (s *Sim) Cycle() int { return s.cycle }

// Time returns the simulated time.
func (s *Sim) Time() float64 { return s.time }

// regrid rebuilds the fine level from the density-gradient tagger and
// reassigns patch ranks.
func (s *Sim) regrid() {
	s.h.Regrid(func(p *amr.Patch, tag func(i, j int)) {
		rho, e := p.Field(FRho), p.Field(FE)
		relGrad := func(f *mesh.Field, i, j int) float64 {
			c := f.At(i, j)
			if c <= 0 {
				return 0
			}
			return (math.Abs(f.At(i+1, j)-f.At(i-1, j)) +
				math.Abs(f.At(i, j+1)-f.At(i, j-1))) / c
		}
		for j := p.Box.Y0 + 1; j < p.Box.Y1-1; j++ {
			for i := p.Box.X0 + 1; i < p.Box.X1-1; i++ {
				if relGrad(rho, i, j) > 0.2 || relGrad(e, i, j) > 0.4 {
					tag(i, j)
				}
			}
		}
	})
	for idx, p := range s.h.Patches() {
		p.Rank = idx % s.cfg.Ranks
	}
}

// launch runs one kernel over a patch with patch-scoped annotations.
func (s *Sim) launch(p *amr.Patch, k *raja.Kernel, iset *raja.IndexSet, body func(i int)) {
	s.cfg.Ann.Set(features.PatchID, float64(p.ID))
	s.cfg.Ann.Set("rank", float64(p.Rank))
	raja.ForAll(s.cfg.Ctx, k, iset, body)
}

// interiorSet returns the flat interior index set of a patch.
func interiorSet(p *amr.Patch) *raja.IndexSet {
	return raja.NewRange(0, p.Box.Count())
}

// Step advances the simulation one timestep.
func (s *Sim) Step() {
	if s.cycle > 0 && s.cycle%s.regridEvery == 0 {
		s.regrid()
	}
	s.cfg.Ann.Set(features.Timestep, float64(s.cycle))

	dt := s.computeDt()
	for l := 0; l < s.h.NumLevels(); l++ {
		s.advanceLevel(l, dt)
	}
	s.h.Restrict(1, conservedFields)
	s.fieldSummary()
	s.time += dt
	s.cycle++
}

// computeDt runs ideal_gas and calc_dt on every patch and reduces the
// stable timestep against the finest cell width.
func (s *Sim) computeDt() float64 {
	maxSpeed := 0.0
	for l := 0; l < s.h.NumLevels(); l++ {
		for _, p := range s.h.Level(l) {
			s.idealGas(p)
			s.calcDt(p)
			_, hi := p.Field(FWs).MinMaxInterior()
			if hi > maxSpeed {
				maxSpeed = hi
			}
		}
	}
	dxFine := 1.0 / float64(s.h.LevelDomain(s.h.NumLevels()-1).NX())
	return hydro.Dt(maxSpeed, dxFine)
}

// advanceLevel performs the dimension-split update of one level.
func (s *Sim) advanceLevel(l int, dt float64) {
	dx := 1.0 / float64(s.h.LevelDomain(l).NX())

	s.exchange(l)
	for _, p := range s.h.Level(l) {
		s.viscosity(p)
		s.accelerate(p, dt)
	}
	s.exchange(l)
	for _, p := range s.h.Level(l) {
		s.sweepX(p, dt/dx)
		s.reset(p, kResetX)
	}
	s.exchange(l)
	for _, p := range s.h.Level(l) {
		s.sweepY(p, dt/dx)
		s.reset(p, kResetY)
	}
}

// exchange fills ghosts (coarse prolongation + sibling copies) and then
// applies the physical boundary conditions through the strip kernels.
func (s *Sim) exchange(l int) {
	s.h.FillGhosts(l, conservedFields, nil)
	domain := s.h.LevelDomain(l)
	for _, p := range s.h.Level(l) {
		for _, hk := range haloKernels {
			s.updateHalo(p, hk, domain)
		}
	}
}

// updateHalo launches one boundary-strip kernel: width-2 ghost strips on
// the physical edges the patch touches, reflecting the interior.
func (s *Sim) updateHalo(p *amr.Patch, hk haloKernel, domain mesh.Box) {
	f := p.Field(hk.field)
	b := p.Box
	iset := raja.NewIndexSet()
	var lo, hi bool
	var strip int
	if hk.dir == 0 {
		strip = 2 * b.NY()
		lo, hi = b.X0 == domain.X0, b.X1 == domain.X1
	} else {
		strip = 2 * b.NX()
		lo, hi = b.Y0 == domain.Y0, b.Y1 == domain.Y1
	}
	if lo {
		iset.Push(raja.RangeSegment{Begin: 0, End: strip})
	}
	if hi {
		iset.Push(raja.RangeSegment{Begin: strip, End: 2 * strip})
	}
	if iset.Len() == 0 {
		return
	}
	sign := hk.sign
	s.launch(p, hk.kernel, iset, func(k int) {
		side := k / strip // 0 = low edge, 1 = high edge
		r := k % strip
		layer := r / (strip / 2) // ghost layer 0 or 1
		pos := r % (strip / 2)
		if hk.dir == 0 {
			j := b.Y0 + pos
			if side == 0 {
				f.Set(b.X0-1-layer, j, sign*f.At(b.X0+layer, j))
			} else {
				f.Set(b.X1+layer, j, sign*f.At(b.X1-1-layer, j))
			}
		} else {
			i := b.X0 + pos
			if side == 0 {
				f.Set(i, b.Y0-1-layer, sign*f.At(i, b.Y0+layer))
			} else {
				f.Set(i, b.Y1+layer, sign*f.At(i, b.Y1-1-layer))
			}
		}
	})
}

// state reads the conserved state of cell (i, j) on a patch.
func state(rho, mu, mv, e *mesh.Field, i, j int) hydro.State {
	return hydro.State{Rho: rho.At(i, j), Mu: mu.At(i, j), Mv: mv.At(i, j), E: e.At(i, j)}
}

func (s *Sim) idealGas(p *amr.Patch) {
	rho, mu, mv, e := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE)
	pr := p.Field(FP)
	s.launch(p, kIdealGas, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		st := state(rho, mu, mv, e, i, j)
		pr.Set(i, j, hydro.Pressure(st))
	})
}

func (s *Sim) calcDt(p *amr.Patch) {
	rho, mu, mv, e := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE)
	ws := p.Field(FWs)
	s.launch(p, kCalcDt, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		st := state(rho, mu, mv, e, i, j)
		sx := hydro.WaveSpeedX(st)
		sy := hydro.WaveSpeedY(st)
		ws.Set(i, j, math.Max(sx, sy))
	})
}

func (s *Sim) viscosity(p *amr.Patch) {
	rho, mu := p.Field(FRho), p.Field(FMu)
	mv, q := p.Field(FMv), p.Field(FQ)
	s.launch(p, kViscosity, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		r := math.Max(rho.At(i, j), hydro.RhoFloor)
		dudx := (mu.At(i+1, j) - mu.At(i-1, j)) / (2 * r)
		dvdy := (mv.At(i, j+1) - mv.At(i, j-1)) / (2 * r)
		div := dudx + dvdy
		if div < 0 {
			q.Set(i, j, 0.1*r*div*div)
		} else {
			q.Set(i, j, 0)
		}
	})
}

func (s *Sim) accelerate(p *amr.Patch, dt float64) {
	mu, mv, q := p.Field(FMu), p.Field(FMv), p.Field(FQ)
	s.launch(p, kAccelerate, interiorSet(p), func(k int) {
		i, j := mu.CellOf(k)
		damp := 1 / (1 + dt*q.At(i, j))
		mu.Set(i, j, mu.At(i, j)*damp)
		mv.Set(i, j, mv.At(i, j)*damp)
	})
}

// sweepX advances all conserved components in x via three kernels
// (density, momentum, energy), writing the *_new fields.
func (s *Sim) sweepX(p *amr.Patch, lambda float64) {
	rho, mu, mv, e := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE)
	rhoN, muN, mvN, eN := p.Field(FRhoN), p.Field(FMuN), p.Field(FMvN), p.Field(FEN)
	flux := func(i, j int) (hydro.State, hydro.State) {
		l := hydro.RusanovX(state(rho, mu, mv, e, i-1, j), state(rho, mu, mv, e, i, j))
		r := hydro.RusanovX(state(rho, mu, mv, e, i, j), state(rho, mu, mv, e, i+1, j))
		return l, r
	}
	s.launch(p, kAdvecCellX, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		fl, fr := flux(i, j)
		rhoN.Set(i, j, math.Max(rho.At(i, j)-lambda*(fr.Rho-fl.Rho), hydro.RhoFloor))
	})
	s.launch(p, kAdvecMomX, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		fl, fr := flux(i, j)
		muN.Set(i, j, mu.At(i, j)-lambda*(fr.Mu-fl.Mu))
		mvN.Set(i, j, mv.At(i, j)-lambda*(fr.Mv-fl.Mv))
	})
	s.launch(p, kAdvecEneX, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		fl, fr := flux(i, j)
		eN.Set(i, j, math.Max(e.At(i, j)-lambda*(fr.E-fl.E), hydro.PFloor))
	})
}

// sweepY advances all conserved components in y.
func (s *Sim) sweepY(p *amr.Patch, lambda float64) {
	rho, mu, mv, e := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE)
	rhoN, muN, mvN, eN := p.Field(FRhoN), p.Field(FMuN), p.Field(FMvN), p.Field(FEN)
	flux := func(i, j int) (hydro.State, hydro.State) {
		b := hydro.RusanovY(state(rho, mu, mv, e, i, j-1), state(rho, mu, mv, e, i, j))
		t := hydro.RusanovY(state(rho, mu, mv, e, i, j), state(rho, mu, mv, e, i, j+1))
		return b, t
	}
	s.launch(p, kAdvecCellY, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		fb, ft := flux(i, j)
		rhoN.Set(i, j, math.Max(rho.At(i, j)-lambda*(ft.Rho-fb.Rho), hydro.RhoFloor))
	})
	s.launch(p, kAdvecMomY, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		fb, ft := flux(i, j)
		muN.Set(i, j, mu.At(i, j)-lambda*(ft.Mu-fb.Mu))
		mvN.Set(i, j, mv.At(i, j)-lambda*(ft.Mv-fb.Mv))
	})
	s.launch(p, kAdvecEneY, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		fb, ft := flux(i, j)
		eN.Set(i, j, math.Max(e.At(i, j)-lambda*(ft.E-fb.E), hydro.PFloor))
	})
}

// reset copies the *_new fields back into the conserved fields.
func (s *Sim) reset(p *amr.Patch, k *raja.Kernel) {
	rho, mu, mv, e := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE)
	rhoN, muN, mvN, eN := p.Field(FRhoN), p.Field(FMuN), p.Field(FMvN), p.Field(FEN)
	s.launch(p, k, interiorSet(p), func(kk int) {
		i, j := rho.CellOf(kk)
		rho.Set(i, j, rhoN.At(i, j))
		mu.Set(i, j, muN.At(i, j))
		mv.Set(i, j, mvN.At(i, j))
		e.Set(i, j, eN.At(i, j))
	})
}

// fieldSummary computes per-cell total energy into the scratch field on
// the coarse level; the hierarchy-wide sums are used for conservation
// reporting and tests.
func (s *Sim) fieldSummary() {
	for _, p := range s.h.Level(0) {
		e, ws := p.Field(FE), p.Field(FWs)
		s.launch(p, kSummary, interiorSet(p), func(k int) {
			i, j := e.CellOf(k)
			ws.Set(i, j, e.At(i, j))
		})
	}
}

// TotalMass returns the level-0 mass (density sum scaled by cell area),
// a conserved quantity of the scheme up to boundary fluxes.
func (s *Sim) TotalMass() float64 {
	domain := s.h.LevelDomain(0)
	area := 1.0 / float64(domain.NX()) / float64(domain.NY())
	var total float64
	for _, p := range s.h.Level(0) {
		total += p.Field(FRho).SumInterior() * area
	}
	return total
}

// TotalEnergy returns the level-0 total energy.
func (s *Sim) TotalEnergy() float64 {
	domain := s.h.LevelDomain(0)
	area := 1.0 / float64(domain.NX()) / float64(domain.NY())
	var total float64
	for _, p := range s.h.Level(0) {
		total += p.Field(FE).SumInterior() * area
	}
	return total
}

// Kernels lists the package's kernel launch sites (for reporting).
func Kernels() []*raja.Kernel {
	out := []*raja.Kernel{
		kIdealGas, kViscosity, kAccelerate, kCalcDt,
		kAdvecCellX, kAdvecMomX, kAdvecEneX,
		kAdvecCellY, kAdvecMomY, kAdvecEneY,
		kResetX, kResetY, kSummary,
	}
	for _, hk := range haloKernels {
		out = append(out, hk.kernel)
	}
	return out
}
