package cleverleaf

import (
	"math"
	"testing"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/features"
	"apollo/internal/hydro"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/team"
	"apollo/internal/tuner"
)

func newSim(t *testing.T, problem string, size int) (*Sim, *raja.Context) {
	t.Helper()
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{Policy: raja.SeqExec})
	s, err := New(app.Config{Ctx: ctx, Ann: caliper.New(), Problem: problem, Size: 32})
	if err != nil {
		t.Fatal(err)
	}
	return s, ctx
}

func TestNewValidates(t *testing.T) {
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	if _, err := New(app.Config{Ctx: ctx, Problem: "nope", Size: 32}); err == nil {
		t.Error("unknown problem accepted")
	}
	if _, err := New(app.Config{Ctx: ctx, Problem: "sedov", Size: 4}); err == nil {
		t.Error("tiny size accepted")
	}
}

func TestSedovRefinesCenter(t *testing.T) {
	s, _ := newSim(t, "sedov", 32)
	if len(s.Hierarchy().Level(1)) == 0 {
		t.Fatal("Sedov initial condition produced no refinement")
	}
	// The blast sits at the domain center; some fine patch must cover it.
	fineDomain := s.Hierarchy().LevelDomain(1)
	ci, cj := fineDomain.NX()/2, fineDomain.NY()/2
	found := false
	for _, p := range s.Hierarchy().Level(1) {
		if p.Box.Grow(8).Contains(ci, cj) {
			found = true
		}
	}
	if !found {
		t.Error("no fine patch near the blast center")
	}
}

func TestStepAdvancesAndStaysFinite(t *testing.T) {
	s, _ := newSim(t, "sedov", 32)
	for i := 0; i < 6; i++ {
		s.Step()
	}
	if s.Cycle() != 6 {
		t.Errorf("Cycle = %d", s.Cycle())
	}
	if s.Time() <= 0 {
		t.Error("time did not advance")
	}
	for _, p := range s.Hierarchy().Patches() {
		for _, f := range []string{FRho, FE} {
			lo, hi := p.Field(f).MinMaxInterior()
			if math.IsNaN(lo) || math.IsInf(hi, 0) {
				t.Fatalf("field %s went non-finite on patch %d", f, p.ID)
			}
			if f == FRho && lo <= 0 {
				t.Fatalf("density went non-positive: %g", lo)
			}
		}
	}
}

func TestMassApproximatelyConserved(t *testing.T) {
	s, _ := newSim(t, "sedov", 32)
	m0 := s.TotalMass()
	for i := 0; i < 8; i++ {
		s.Step()
	}
	m1 := s.TotalMass()
	if rel := math.Abs(m1-m0) / m0; rel > 0.02 {
		t.Errorf("mass drifted %.2f%% over 8 steps", rel*100)
	}
}

func TestShockExpandsRefinement(t *testing.T) {
	s, _ := newSim(t, "sedov", 48)
	var early int
	for _, p := range s.Hierarchy().Level(1) {
		early += p.Box.Count()
	}
	for i := 0; i < 30; i++ {
		s.Step()
	}
	var late int
	for _, p := range s.Hierarchy().Level(1) {
		late += p.Box.Count()
	}
	if late <= early {
		t.Errorf("refined region did not grow with the shock: %d -> %d", early, late)
	}
}

func TestKernelLaunchesRecordPatchFeatures(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: raja.SeqExec})
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	ctx.Hooks = rec
	s, err := New(app.Config{Ctx: ctx, Ann: ann, Problem: "sod", Size: 32})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	frame := rec.Frame()
	if frame.Len() == 0 {
		t.Fatal("no samples recorded")
	}
	// Samples must span multiple patch IDs and iteration counts, and
	// include the tiny boundary-strip launches.
	patches := map[float64]bool{}
	minN, maxN := math.Inf(1), 0.0
	for r := 0; r < frame.Len(); r++ {
		patches[frame.At(r, features.PatchID)] = true
		n := frame.At(r, features.NumIndices)
		minN = math.Min(minN, n)
		maxN = math.Max(maxN, n)
	}
	if len(patches) < 2 {
		t.Errorf("samples cover %d patches, want several", len(patches))
	}
	if minN >= 256 {
		t.Errorf("no small boundary-strip launches recorded (min n = %g)", minN)
	}
	if maxN < 900 {
		t.Errorf("no full-patch launches recorded (max n = %g)", maxN)
	}
	if got := frame.At(0, features.ProblemName); got != caliper.Encode("sod") {
		t.Error("problem_name annotation missing from samples")
	}
}

func TestDifferentProblemsDifferentDynamics(t *testing.T) {
	sedov, _ := newSim(t, "sedov", 32)
	sod, _ := newSim(t, "sod", 32)
	for i := 0; i < 5; i++ {
		sedov.Step()
		sod.Step()
	}
	// Sedov refines a disc around the center, Sod refines a stripe —
	// the patch populations must differ.
	if len(sedov.Hierarchy().Level(1)) == len(sod.Hierarchy().Level(1)) {
		sameBoxes := true
		for i, p := range sedov.Hierarchy().Level(1) {
			if p.Box != sod.Hierarchy().Level(1)[i].Box {
				sameBoxes = false
				break
			}
		}
		if sameBoxes {
			t.Error("sedov and sod produced identical patch sets")
		}
	}
}

func TestRanksAssigned(t *testing.T) {
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	s, err := New(app.Config{Ctx: ctx, Ann: caliper.New(), Problem: "sedov", Size: 32, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	ranks := map[int]bool{}
	for _, p := range s.Hierarchy().Patches() {
		if p.Rank < 0 || p.Rank >= 4 {
			t.Fatalf("patch rank %d outside [0,4)", p.Rank)
		}
		ranks[p.Rank] = true
	}
	if len(ranks) < 2 {
		t.Error("patches not spread across ranks")
	}
}

func TestDescriptor(t *testing.T) {
	d := Descriptor()
	if d.Name != "CleverLeaf" || d.Short != "C" || len(d.Problems) != 3 {
		t.Errorf("descriptor wrong: %+v", d)
	}
	if d.DefaultParams.Policy != raja.OmpParallelForExec {
		t.Error("CleverLeaf default should be OpenMP everywhere")
	}
}

func TestKernelsListed(t *testing.T) {
	ks := Kernels()
	if len(ks) < 20 {
		t.Errorf("only %d kernel sites registered", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.Name] {
			t.Errorf("duplicate kernel name %s", k.Name)
		}
		seen[k.Name] = true
		if k.Mix.FuncSize() <= 0 {
			t.Errorf("kernel %s has empty instruction mix", k.Name)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// Two identical runs must produce identical feature streams — the
	// property training relies on to match vectors across variant runs.
	run := func() float64 {
		s, _ := newSim(t, "triple_pt", 32)
		for i := 0; i < 4; i++ {
			s.Step()
		}
		return s.TotalEnergy()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs diverged: %g vs %g", a, b)
	}
}

func TestRealTeamParallelExecutionMatchesSequential(t *testing.T) {
	// Run the same problem on the wall-clock path with a real goroutine
	// team under the parallel policy, and sequentially; the physics
	// must agree exactly (kernels are race-free by construction), which
	// the race detector verifies when tests run with -race.
	run := func(ctx *raja.Context) float64 {
		s, err := New(app.Config{Ctx: ctx, Ann: caliper.New(), Problem: "sedov", Size: 32})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			s.Step()
		}
		return s.TotalEnergy()
	}
	tm := team.New(4)
	defer tm.Close()
	par := run(&raja.Context{Team: tm, Default: raja.Params{Policy: raja.OmpParallelForExec, Chunk: 8}})
	seq := run(&raja.Context{Default: raja.Params{Policy: raja.SeqExec}})
	if par != seq {
		t.Errorf("parallel execution changed the physics: %g vs %g", par, seq)
	}
}

func TestSodMatchesExactRiemannSolution(t *testing.T) {
	// Validate the finite-volume scheme against the exact Riemann
	// solution of Sod's problem: run until the waves are well developed
	// and compare the midline density profile (L1 norm).
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{Policy: raja.SeqExec})
	s, err := New(app.Config{Ctx: ctx, Ann: caliper.New(), Problem: "sod", Size: 64})
	if err != nil {
		t.Fatal(err)
	}
	for s.Time() < 0.1 {
		s.Step()
		if s.Cycle() > 500 {
			t.Fatal("timestep collapsed; too many cycles")
		}
	}
	tFinal := s.Time()

	left := hydro.RiemannState{Rho: 1, U: 0, P: 1}
	right := hydro.RiemannState{Rho: 0.125, U: 0, P: 0.1}
	domain := s.Hierarchy().LevelDomain(0)
	n := domain.NX()
	j := domain.NY() / 2
	var l1 float64
	count := 0
	for i := 0; i < n; i++ {
		var got float64
		found := false
		for _, p := range s.Hierarchy().Level(0) {
			if p.Box.Contains(i, j) {
				got = p.Field(FRho).At(i, j)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no patch covers cell (%d,%d)", i, j)
		}
		x := (float64(i) + 0.5) / float64(n)
		exact := hydro.SampleRiemann(left, right, (x-0.5)/tFinal)
		l1 += abs(got - exact.Rho)
		count++
	}
	l1 /= float64(count)
	if l1 > 0.08 {
		t.Errorf("Sod L1 density error %.4f exceeds 0.08 at t=%.3f", l1, tFinal)
	}
	t.Logf("Sod validation: L1 density error %.4f at t=%.3f over %d cells", l1, tFinal, count)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
