package search

import (
	"testing"

	"apollo/internal/instmix"
	"apollo/internal/platform"
	"apollo/internal/raja"
)

func TestDefaultCandidatesCoverGrid(t *testing.T) {
	cands := DefaultCandidates()
	if len(cands) != 2+len(raja.ChunkSizes) {
		t.Fatalf("got %d candidates", len(cands))
	}
	if cands[0].Policy != raja.SeqExec {
		t.Error("first candidate should be sequential")
	}
}

func TestSearchConvergesToFastCandidate(t *testing.T) {
	// Two candidates: seq (fast for this kernel) and omp (slow).
	s := New(Config{
		Candidates: []raja.Params{
			{Policy: raja.SeqExec},
			{Policy: raja.OmpParallelForExec},
		},
		TrialsPerCandidate: 2,
	})
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	ctx.Hooks = s
	k := raja.NewKernel("small", instmix.NewMix().With(instmix.Add, 4))

	// Small launches: sequential always wins.
	for i := 0; i < 10; i++ {
		raja.ForAll(ctx, k, raja.NewRange(0, 64), func(int) {})
	}
	if !s.Converged(k.ID) {
		t.Fatal("search did not converge after exploring all candidates")
	}
	p, _ := s.Begin(k, raja.NewRange(0, 64))
	if p.Policy != raja.SeqExec {
		t.Errorf("converged to %v, want seq", p)
	}
	if s.ExplorationNS() <= 0 {
		t.Error("exploration cost not accounted")
	}
}

func TestSearchPaysExplorationCost(t *testing.T) {
	// During exploration the searcher must run the slow candidate too;
	// its total time should exceed an oracle that always runs seq.
	machine := platform.SandyBridgeNode()
	mix := instmix.NewMix().With(instmix.Add, 4)
	k := raja.NewKernel("explore", mix)
	n := 64

	s := New(Config{TrialsPerCandidate: 3})
	clk := platform.NewSimClock(machine, 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	ctx.Hooks = s
	launches := s.TrialsToConverge() + 10
	for i := 0; i < launches; i++ {
		raja.ForAll(ctx, k, raja.NewRange(0, n), func(int) {})
	}
	searchTime := clk.NowNS()
	oracle := machine.SeqTimeNS(mix, n) * float64(launches)
	if searchTime <= oracle {
		t.Errorf("search total %g should exceed oracle %g (exploration cost)", searchTime, oracle)
	}
}

func TestSearchPerKernelState(t *testing.T) {
	s := New(Config{TrialsPerCandidate: 1, Candidates: []raja.Params{
		{Policy: raja.SeqExec}, {Policy: raja.OmpParallelForExec},
	}})
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	ctx.Hooks = s
	k1 := raja.NewKernel("k1", nil)
	k2 := raja.NewKernel("k2", nil)
	raja.ForAll(ctx, k1, raja.NewRange(0, 10), func(int) {})
	raja.ForAll(ctx, k1, raja.NewRange(0, 10), func(int) {})
	if !s.Converged(k1.ID) {
		t.Error("k1 should have converged")
	}
	if s.Converged(k2.ID) {
		t.Error("k2 never ran; must not be converged")
	}
}

func TestReexplorationAdaptsToDrift(t *testing.T) {
	// The kernel's best policy flips after a "phase change". With
	// re-exploration enabled the searcher eventually re-commits.
	s := New(Config{
		Candidates: []raja.Params{
			{Policy: raja.SeqExec},
			{Policy: raja.OmpParallelForExec},
		},
		TrialsPerCandidate: 1,
		ReexploreEvery:     5,
	})
	machine := platform.SandyBridgeNode()
	clk := platform.NewSimClock(machine, 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	ctx.Hooks = s
	k := raja.NewKernel("drift", instmix.NewMix().With(instmix.Add, 6))

	// Phase 1: tiny launches -> seq wins.
	for i := 0; i < 7; i++ {
		raja.ForAll(ctx, k, raja.NewRange(0, 32), func(int) {})
	}
	p, _ := s.Begin(k, raja.NewRange(0, 32))
	if p.Policy != raja.SeqExec {
		t.Fatalf("phase 1 converged to %v", p)
	}
	// Phase 2: huge launches -> omp wins after re-exploration.
	for i := 0; i < 30; i++ {
		raja.ForAll(ctx, k, raja.NewRange(0, 1<<20), func(int) {})
	}
	p, _ = s.Begin(k, raja.NewRange(0, 1<<20))
	if p.Policy != raja.OmpParallelForExec {
		t.Errorf("after drift, converged to %v, want omp", p)
	}
}

func TestTrialsToConverge(t *testing.T) {
	s := New(Config{TrialsPerCandidate: 3})
	want := len(DefaultCandidates()) * 3
	if s.TrialsToConverge() != want {
		t.Errorf("TrialsToConverge = %d, want %d", s.TrialsToConverge(), want)
	}
}
