// Package search implements an empirical on-line auto-tuning baseline in
// the style of ActiveHarmony (paper Table IV): for every kernel it
// measures each candidate parameter assignment in turn, then greedily
// exploits the fastest, optionally re-exploring on a fixed period to
// track slowly drifting applications.
//
// The baseline exists to reproduce the paper's central contrast: an
// empirical searcher must *execute* every candidate (paying for the slow
// ones) and converges per kernel, not per input, so it cannot follow
// input-dependent behaviour that changes launch to launch — exactly what
// Apollo's pre-trained classifiers handle with a few comparisons.
package search

import (
	"sync"

	"apollo/internal/raja"
)

// Config controls the on-line search.
type Config struct {
	// Candidates is the parameter space to search. DefaultCandidates is
	// used when empty.
	Candidates []raja.Params
	// TrialsPerCandidate is how many measurements each candidate gets
	// before the searcher commits (default 3).
	TrialsPerCandidate int
	// ReexploreEvery restarts exploration after this many exploitation
	// launches (0 disables re-exploration).
	ReexploreEvery int
}

// DefaultCandidates returns the paper's training grid as a search space:
// sequential, plus parallel with each chunk size (and the default chunk).
func DefaultCandidates() []raja.Params {
	cands := []raja.Params{
		{Policy: raja.SeqExec},
		{Policy: raja.OmpParallelForExec, Chunk: raja.DefaultChunk},
	}
	for _, c := range raja.ChunkSizes {
		cands = append(cands, raja.Params{Policy: raja.OmpParallelForExec, Chunk: c})
	}
	return cands
}

type phase int

const (
	exploring phase = iota
	exploiting
)

// state is the per-kernel search state machine.
type state struct {
	phase     phase
	candidate int       // index currently being measured
	trial     int       // measurements taken of the current candidate
	sums      []float64 // total time per candidate
	counts    []int
	best      raja.Params
	exploits  int
}

// OnlineSearch is a raja.Hooks implementation performing per-kernel
// empirical search.
type OnlineSearch struct {
	cfg Config

	mu      sync.Mutex
	kernels map[uint64]*state

	explorationNS float64
	decisions     uint64
}

// New returns an on-line search tuner with the given configuration.
func New(cfg Config) *OnlineSearch {
	if len(cfg.Candidates) == 0 {
		cfg.Candidates = DefaultCandidates()
	}
	if cfg.TrialsPerCandidate <= 0 {
		cfg.TrialsPerCandidate = 3
	}
	return &OnlineSearch{cfg: cfg, kernels: make(map[uint64]*state)}
}

func (s *OnlineSearch) stateFor(id uint64) *state {
	st := s.kernels[id]
	if st == nil {
		st = &state{
			sums:   make([]float64, len(s.cfg.Candidates)),
			counts: make([]int, len(s.cfg.Candidates)),
		}
		s.kernels[id] = st
	}
	return st
}

// Begin selects the next parameters for the kernel per its search state.
func (s *OnlineSearch) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decisions++
	st := s.stateFor(k.ID)
	switch st.phase {
	case exploring:
		return s.cfg.Candidates[st.candidate], true
	default:
		return st.best, true
	}
}

// End feeds the measurement back into the search state machine.
func (s *OnlineSearch) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stateFor(k.ID)
	switch st.phase {
	case exploring:
		s.explorationNS += elapsedNS
		st.sums[st.candidate] += elapsedNS
		st.counts[st.candidate]++
		st.trial++
		if st.trial >= s.cfg.TrialsPerCandidate {
			st.trial = 0
			st.candidate++
			if st.candidate >= len(s.cfg.Candidates) {
				st.commit(s.cfg.Candidates)
			}
		}
	case exploiting:
		st.exploits++
		if s.cfg.ReexploreEvery > 0 && st.exploits >= s.cfg.ReexploreEvery {
			st.restart()
		}
	}
}

// commit moves the state to exploitation of the fastest measured candidate.
func (st *state) commit(candidates []raja.Params) {
	bestIdx, bestMean := 0, -1.0
	for i, n := range st.counts {
		if n == 0 {
			continue
		}
		mean := st.sums[i] / float64(n)
		if bestMean < 0 || mean < bestMean {
			bestIdx, bestMean = i, mean
		}
	}
	st.best = candidates[bestIdx]
	st.phase = exploiting
	st.exploits = 0
}

// restart clears measurements and re-enters exploration.
func (st *state) restart() {
	st.phase = exploring
	st.candidate = 0
	st.trial = 0
	for i := range st.sums {
		st.sums[i] = 0
		st.counts[i] = 0
	}
}

// Converged reports whether the kernel with the given ID has finished
// exploring.
func (s *OnlineSearch) Converged(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.kernels[id]
	return ok && st.phase == exploiting
}

// ExplorationNS returns the total time spent executing exploration trials
// — the search overhead Apollo avoids.
func (s *OnlineSearch) ExplorationNS() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.explorationNS
}

// Decisions returns the number of launches the searcher has directed.
func (s *OnlineSearch) Decisions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decisions
}

// TrialsToConverge returns the number of launches a kernel needs before
// the searcher commits: candidates × trials.
func (s *OnlineSearch) TrialsToConverge() int {
	return len(s.cfg.Candidates) * s.cfg.TrialsPerCandidate
}
