package tuner

import (
	"testing"

	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/instmix"
	"apollo/internal/platform"
	"apollo/internal/raja"
)

func simContext(hooks raja.Hooks, def raja.Params) *raja.Context {
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, def)
	ctx.Hooks = hooks
	return ctx
}

func TestRecorderForcesSweepAndRecords(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	ann.Set(features.Timestep, 3)
	sweep := raja.Params{Policy: raja.OmpParallelForExec, Chunk: 64}
	rec := NewRecorder(schema, ann, sweep)
	ctx := simContext(rec, raja.Params{Policy: raja.SeqExec})

	k := raja.NewKernel("stress", instmix.NewMix().With(instmix.Add, 6))
	raja.ForAll(ctx, k, raja.NewRange(0, 100), func(int) {})
	raja.ForAll(ctx, k, raja.NewRange(0, 200), func(int) {})

	if rec.Samples() != 2 {
		t.Fatalf("recorded %d samples, want 2", rec.Samples())
	}
	frame := rec.Frame()
	if got := frame.At(0, core.ColPolicy); got != float64(raja.OmpParallelForExec) {
		t.Errorf("policy column = %g, want forced omp", got)
	}
	if got := frame.At(0, core.ColChunk); got != 64 {
		t.Errorf("chunk column = %g, want 64", got)
	}
	if frame.At(0, core.ColTimeNS) <= 0 {
		t.Error("time_ns not recorded")
	}
	if got := frame.At(1, features.NumIndices); got != 200 {
		t.Errorf("num_indices = %g, want 200", got)
	}
	if got := frame.At(0, features.Timestep); got != 3 {
		t.Errorf("timestep = %g, want 3", got)
	}
}

func trainPolicyModel(t *testing.T, schema *features.Schema) *core.Model {
	t.Helper()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 128, 512, 2048, 8192, 32768, 131072} {
		seqRow := make([]float64, schema.Len()+3)
		ompRow := make([]float64, schema.Len()+3)
		seqRow[ni], ompRow[ni] = float64(n), float64(n)
		seqRow[schema.Len()] = float64(raja.SeqExec)
		ompRow[schema.Len()] = float64(raja.OmpParallelForExec)
		seqRow[schema.Len()+2] = float64(n) * 10
		ompRow[schema.Len()+2] = 8000 + float64(n)*10/8
		frame.AddRow(seqRow)
		frame.AddRow(ompRow)
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTunerSelectsPolicyByIterationCount(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	ann := caliper.New()
	tn := NewTuner(schema, ann, raja.Params{Policy: raja.OmpParallelForExec}).UsePolicyModel(model)

	k := raja.NewKernel("k", nil)
	small, ok := tn.Begin(k, raja.NewRange(0, 50))
	if !ok || small.Policy != raja.SeqExec {
		t.Errorf("small launch tuned to %v, want seq", small)
	}
	large, _ := tn.Begin(k, raja.NewRange(0, 100000))
	if large.Policy != raja.OmpParallelForExec {
		t.Errorf("large launch tuned to %v, want omp", large)
	}
	if tn.Decisions() != 2 {
		t.Errorf("decisions = %d, want 2", tn.Decisions())
	}
}

func TestTunerPreservesBaseChunkWithoutChunkModel(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	tn := NewTuner(schema, caliper.New(), raja.Params{Policy: raja.SeqExec, Chunk: 128}).UsePolicyModel(model)
	p, _ := tn.Begin(raja.NewKernel("k", nil), raja.NewRange(0, 1000000))
	if p.Chunk != 128 {
		t.Errorf("chunk = %d, want preserved 128", p.Chunk)
	}
}

func TestUsePolicyModelRejectsWrongParam(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong-parameter model should panic")
		}
	}()
	schema := features.TableI()
	NewTuner(schema, caliper.New(), raja.Params{}).UsePolicyModel(&core.Model{Param: core.ChunkSize})
}

func TestEndToEndRecordTrainTune(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	mix := instmix.NewMix().With(instmix.Add, 6).With(instmix.Mulpd, 4).With(instmix.Movsd, 8)
	k := raja.NewKernel("roundtrip", mix)
	sizes := []int{16, 64, 256, 1024, 4096, 16384, 65536, 262144}

	// Record one run per policy variant, as the paper's training does.
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
		rec := NewRecorder(schema, ann, raja.Params{Policy: pol})
		ctx := simContext(rec, raja.Params{})
		for _, n := range sizes {
			raja.ForAll(ctx, k, raja.NewRange(0, n), func(int) {})
		}
		frame.Append(rec.Frame())
	}

	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Tuned execution must beat static OpenMP-everywhere on this mix of
	// small and large launches.
	machine := platform.SandyBridgeNode()
	run := func(hooks raja.Hooks, def raja.Params) float64 {
		clk := platform.NewSimClock(machine, 0, 0)
		ctx := raja.NewSimContext(clk, def)
		ctx.Hooks = hooks
		for _, n := range sizes {
			raja.ForAll(ctx, k, raja.NewRange(0, n), func(int) {})
		}
		return clk.NowNS()
	}
	tuned := run(NewTuner(schema, ann, raja.Params{Policy: raja.OmpParallelForExec}).UsePolicyModel(model), raja.Params{})
	static := run(nil, raja.Params{Policy: raja.OmpParallelForExec})
	if tuned >= static {
		t.Errorf("tuned time %g should beat static omp %g", tuned, static)
	}
}

func TestCollectorAccumulates(t *testing.T) {
	col := NewCollector(nil)
	ctx := simContext(col, raja.Params{Policy: raja.SeqExec})
	k1 := raja.NewKernel("a", instmix.NewMix().With(instmix.Add, 2))
	k2 := raja.NewKernel("b", instmix.NewMix().With(instmix.Add, 2))
	raja.ForAll(ctx, k1, raja.NewRange(0, 100), func(int) {})
	raja.ForAll(ctx, k1, raja.NewRange(0, 1000), func(int) {})
	raja.ForAll(ctx, k2, raja.NewRange(0, 10), func(int) {})

	st := col.Stats()
	if st["a"].Count != 2 || st["b"].Count != 1 {
		t.Errorf("counts wrong: %+v", st)
	}
	if st["a"].MaxNS <= st["a"].MinNS {
		t.Error("min/max not tracked")
	}
	if col.TotalNS() <= 0 {
		t.Error("total not tracked")
	}
}

func TestCollectorDelegates(t *testing.T) {
	schema := features.TableI()
	rec := NewRecorder(schema, caliper.New(), raja.Params{Policy: raja.SeqExec})
	col := NewCollector(rec)
	ctx := simContext(col, raja.Params{Policy: raja.OmpParallelForExec})
	raja.ForAll(ctx, raja.NewKernel("k", nil), raja.NewRange(0, 10), func(int) {})
	if rec.Samples() != 1 {
		t.Error("collector did not delegate to inner hooks")
	}
	// The recorder's forced policy must win through the collector.
	if rec.Frame().At(0, core.ColPolicy) != float64(raja.SeqExec) {
		t.Error("inner Begin override lost")
	}
}
