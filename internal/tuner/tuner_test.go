package tuner

import (
	"sync"
	"sync/atomic"
	"testing"

	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/instmix"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/telemetry"
)

func simContext(hooks raja.Hooks, def raja.Params) *raja.Context {
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, def)
	ctx.Hooks = hooks
	return ctx
}

func TestRecorderForcesSweepAndRecords(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	ann.Set(features.Timestep, 3)
	sweep := raja.Params{Policy: raja.OmpParallelForExec, Chunk: 64}
	rec := NewRecorder(schema, ann, sweep)
	ctx := simContext(rec, raja.Params{Policy: raja.SeqExec})

	k := raja.NewKernel("stress", instmix.NewMix().With(instmix.Add, 6))
	raja.ForAll(ctx, k, raja.NewRange(0, 100), func(int) {})
	raja.ForAll(ctx, k, raja.NewRange(0, 200), func(int) {})

	if rec.Samples() != 2 {
		t.Fatalf("recorded %d samples, want 2", rec.Samples())
	}
	frame := rec.Frame()
	if got := frame.At(0, core.ColPolicy); got != float64(raja.OmpParallelForExec) {
		t.Errorf("policy column = %g, want forced omp", got)
	}
	if got := frame.At(0, core.ColChunk); got != 64 {
		t.Errorf("chunk column = %g, want 64", got)
	}
	if frame.At(0, core.ColTimeNS) <= 0 {
		t.Error("time_ns not recorded")
	}
	if got := frame.At(1, features.NumIndices); got != 200 {
		t.Errorf("num_indices = %g, want 200", got)
	}
	if got := frame.At(0, features.Timestep); got != 3 {
		t.Errorf("timestep = %g, want 3", got)
	}
}

func trainPolicyModel(t testing.TB, schema *features.Schema) *core.Model {
	t.Helper()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 128, 512, 2048, 8192, 32768, 131072} {
		seqRow := make([]float64, schema.Len()+3)
		ompRow := make([]float64, schema.Len()+3)
		seqRow[ni], ompRow[ni] = float64(n), float64(n)
		seqRow[schema.Len()] = float64(raja.SeqExec)
		ompRow[schema.Len()] = float64(raja.OmpParallelForExec)
		seqRow[schema.Len()+2] = float64(n) * 10
		ompRow[schema.Len()+2] = 8000 + float64(n)*10/8
		frame.AddRow(seqRow)
		frame.AddRow(ompRow)
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTunerSelectsPolicyByIterationCount(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	ann := caliper.New()
	tn := NewTuner(schema, ann, raja.Params{Policy: raja.OmpParallelForExec}).UsePolicyModel(model)

	k := raja.NewKernel("k", nil)
	small, ok := tn.Begin(k, raja.NewRange(0, 50))
	if !ok || small.Policy != raja.SeqExec {
		t.Errorf("small launch tuned to %v, want seq", small)
	}
	large, _ := tn.Begin(k, raja.NewRange(0, 100000))
	if large.Policy != raja.OmpParallelForExec {
		t.Errorf("large launch tuned to %v, want omp", large)
	}
	if tn.Decisions() != 2 {
		t.Errorf("decisions = %d, want 2", tn.Decisions())
	}
}

func TestTunerPreservesBaseChunkWithoutChunkModel(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	tn := NewTuner(schema, caliper.New(), raja.Params{Policy: raja.SeqExec, Chunk: 128}).UsePolicyModel(model)
	p, _ := tn.Begin(raja.NewKernel("k", nil), raja.NewRange(0, 1000000))
	if p.Chunk != 128 {
		t.Errorf("chunk = %d, want preserved 128", p.Chunk)
	}
}

func TestUsePolicyModelRejectsWrongParam(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong-parameter model should panic")
		}
	}()
	schema := features.TableI()
	NewTuner(schema, caliper.New(), raja.Params{}).UsePolicyModel(&core.Model{Param: core.ChunkSize})
}

func TestEndToEndRecordTrainTune(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	mix := instmix.NewMix().With(instmix.Add, 6).With(instmix.Mulpd, 4).With(instmix.Movsd, 8)
	k := raja.NewKernel("roundtrip", mix)
	sizes := []int{16, 64, 256, 1024, 4096, 16384, 65536, 262144}

	// Record one run per policy variant, as the paper's training does.
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
		rec := NewRecorder(schema, ann, raja.Params{Policy: pol})
		ctx := simContext(rec, raja.Params{})
		for _, n := range sizes {
			raja.ForAll(ctx, k, raja.NewRange(0, n), func(int) {})
		}
		frame.Append(rec.Frame())
	}

	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Tuned execution must beat static OpenMP-everywhere on this mix of
	// small and large launches.
	machine := platform.SandyBridgeNode()
	run := func(hooks raja.Hooks, def raja.Params) float64 {
		clk := platform.NewSimClock(machine, 0, 0)
		ctx := raja.NewSimContext(clk, def)
		ctx.Hooks = hooks
		for _, n := range sizes {
			raja.ForAll(ctx, k, raja.NewRange(0, n), func(int) {})
		}
		return clk.NowNS()
	}
	tuned := run(NewTuner(schema, ann, raja.Params{Policy: raja.OmpParallelForExec}).UsePolicyModel(model), raja.Params{})
	static := run(nil, raja.Params{Policy: raja.OmpParallelForExec})
	if tuned >= static {
		t.Errorf("tuned time %g should beat static omp %g", tuned, static)
	}
}

func TestCollectorAccumulates(t *testing.T) {
	col := NewCollector(nil)
	ctx := simContext(col, raja.Params{Policy: raja.SeqExec})
	k1 := raja.NewKernel("a", instmix.NewMix().With(instmix.Add, 2))
	k2 := raja.NewKernel("b", instmix.NewMix().With(instmix.Add, 2))
	raja.ForAll(ctx, k1, raja.NewRange(0, 100), func(int) {})
	raja.ForAll(ctx, k1, raja.NewRange(0, 1000), func(int) {})
	raja.ForAll(ctx, k2, raja.NewRange(0, 10), func(int) {})

	st := col.Stats()
	if st["a"].Count != 2 || st["b"].Count != 1 {
		t.Errorf("counts wrong: %+v", st)
	}
	if st["a"].MaxNS <= st["a"].MinNS {
		t.Error("min/max not tracked")
	}
	if col.TotalNS() <= 0 {
		t.Error("total not tracked")
	}
}

func TestCollectorDelegates(t *testing.T) {
	schema := features.TableI()
	rec := NewRecorder(schema, caliper.New(), raja.Params{Policy: raja.SeqExec})
	col := NewCollector(rec)
	ctx := simContext(col, raja.Params{Policy: raja.OmpParallelForExec})
	raja.ForAll(ctx, raja.NewKernel("k", nil), raja.NewRange(0, 10), func(int) {})
	if rec.Samples() != 1 {
		t.Error("collector did not delegate to inner hooks")
	}
	// The recorder's forced policy must win through the collector.
	if rec.Frame().At(0, core.ColPolicy) != float64(raja.SeqExec) {
		t.Error("inner Begin override lost")
	}
}

// TestConcurrentBeginIsRaceFree drives one tuner from two goroutines — the
// multi-context case — while a third hot-swaps models through the tuner's
// own source. Begin takes no locks, so this must pass under -race with no
// contention and no torn projector reads.
func TestConcurrentBeginIsRaceFree(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	tn := NewTuner(schema, caliper.New(), raja.Params{Policy: raja.OmpParallelForExec}).UsePolicyModel(model)

	var wg sync.WaitGroup
	const launches = 2000
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := raja.NewKernel("worker", nil)
			for i := 0; i < launches; i++ {
				n := 50
				if (i+g)%2 == 0 {
					n = 100000
				}
				p, ok := tn.Begin(k, raja.NewRange(0, n))
				if !ok {
					t.Error("Begin declined a launch")
					return
				}
				if p.Policy != raja.SeqExec && p.Policy != raja.OmpParallelForExec {
					t.Errorf("torn decision: %v", p.Policy)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tn.UsePolicyModel(model)
		}
	}()
	wg.Wait()
	if got := tn.Decisions(); got != 2*launches {
		t.Errorf("decisions = %d, want %d (atomic counter lost updates)", got, 2*launches)
	}
}

// swapCount is a ModelSource that counts reads, proving Begin loads the
// source exactly once per launch.
type countingSource struct {
	inner SwapSource
	reads atomic.Uint64
}

func (s *countingSource) Projectors() *Projectors {
	s.reads.Add(1)
	return s.inner.Projectors()
}

func TestUseSourceHotSwapsMidRun(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	src := &countingSource{}
	tn := NewTuner(schema, caliper.New(), raja.Params{Policy: raja.OmpParallelForExec}).UseSource(src)

	k := raja.NewKernel("k", nil)
	small := raja.NewRange(0, 50)
	// Empty source: base parameters.
	if p, _ := tn.Begin(k, small); p.Policy != raja.OmpParallelForExec {
		t.Errorf("empty source gave %v, want base omp", p.Policy)
	}
	// The source publishes a model; the very next launch uses it.
	src.inner.Store(&Projectors{Policy: model.NewProjector(schema)})
	if p, _ := tn.Begin(k, small); p.Policy != raja.SeqExec {
		t.Errorf("after swap got %v, want seq from model", p.Policy)
	}
	if src.reads.Load() != 2 {
		t.Errorf("source read %d times for 2 launches", src.reads.Load())
	}
	// Reverting to the tuner's own source restores UsePolicyModel behavior.
	tn.UseSource(nil)
	if p, _ := tn.Begin(k, small); p.Policy != raja.OmpParallelForExec {
		t.Errorf("after revert got %v, want base omp", p.Policy)
	}
}

func TestSnapshotIsIndependentCopy(t *testing.T) {
	schema := features.TableI()
	rec := NewRecorder(schema, caliper.New(), raja.Params{Policy: raja.SeqExec})
	ctx := simContext(rec, raja.Params{})
	k := raja.NewKernel("k", nil)
	raja.ForAll(ctx, k, raja.NewRange(0, 100), func(int) {})

	snap := rec.Snapshot()
	if snap.Len() != 1 {
		t.Fatalf("snapshot has %d rows, want 1", snap.Len())
	}
	// Recording continues; the snapshot must not grow or change.
	raja.ForAll(ctx, k, raja.NewRange(0, 200), func(int) {})
	if snap.Len() != 1 {
		t.Errorf("snapshot grew to %d rows after more recording", snap.Len())
	}
	if rec.Frame().Len() != 2 {
		t.Errorf("live frame has %d rows, want 2", rec.Frame().Len())
	}
	// Mutating the snapshot must not corrupt the live frame.
	snap.AddRow(make([]float64, schema.Len()+3))
	if rec.Frame().Len() != 2 {
		t.Error("snapshot mutation leaked into the live frame")
	}
}

// TestSnapshotWhileRecordingRaceFree exercises the documented contract:
// Snapshot is the safe way to export mid-run. Run under -race.
func TestSnapshotWhileRecordingRaceFree(t *testing.T) {
	schema := features.TableI()
	rec := NewRecorder(schema, caliper.New(), raja.Params{Policy: raja.SeqExec})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ctx := simContext(rec, raja.Params{})
		k := raja.NewKernel("k", nil)
		for i := 0; i < 500; i++ {
			raja.ForAll(ctx, k, raja.NewRange(0, 10+i), func(int) {})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			snap := rec.Snapshot()
			if snap.Len() > 0 && snap.At(snap.Len()-1, core.ColTimeNS) < 0 {
				t.Error("torn row")
				return
			}
		}
	}()
	wg.Wait()
	if rec.Samples() != 500 {
		t.Errorf("recorded %d samples, want 500", rec.Samples())
	}
}

func TestTunerEndFeedsTelemetry(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	tn := NewTuner(schema, ann, raja.Params{Policy: raja.SeqExec})
	rec := telemetry.NewRecorder(schema, ann, telemetry.Options{})
	tn.UseTelemetry(rec)

	ctx := simContext(tn, raja.Params{})
	k := raja.NewKernel("telemetered", nil)
	raja.ForAll(ctx, k, raja.NewRange(0, 64), func(int) {})

	frame := rec.Drain(0)
	if frame == nil || frame.Len() != 1 {
		t.Fatalf("telemetry frame = %v, want 1 row", frame)
	}
	if got := frame.At(0, features.NumIndices); got != 64 {
		t.Errorf("num_indices = %g, want 64", got)
	}
	if got := frame.At(0, core.ColPolicy); got != float64(raja.SeqExec) {
		t.Errorf("policy = %g, want executed policy", got)
	}
	if frame.At(0, core.ColTimeNS) <= 0 {
		t.Error("elapsed time not captured")
	}

	// Detaching stops the feed without stopping launches.
	tn.UseTelemetry(nil)
	raja.ForAll(ctx, k, raja.NewRange(0, 64), func(int) {})
	if rec.Seen() != 1 {
		t.Errorf("detached recorder saw %d launches, want 1", rec.Seen())
	}
}

func TestTunerExploreEveryFlipsPolicy(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	tn := NewTuner(schema, caliper.New(), raja.Params{}).UsePolicyModel(model)
	tn.ExploreEvery(4)

	k := raja.NewKernel("explore", nil)
	small := raja.NewRange(0, 50) // model picks seq
	var seq, omp int
	for i := 0; i < 16; i++ {
		p, _ := tn.Begin(k, small)
		if p.Policy == raja.SeqExec {
			seq++
		} else {
			omp++
		}
	}
	if omp != 4 || seq != 12 {
		t.Errorf("explored %d omp / %d seq, want 4/12", omp, seq)
	}
	if tn.Explored() != 4 {
		t.Errorf("Explored() = %d, want 4", tn.Explored())
	}
	tn.ExploreEvery(0)
	for i := 0; i < 8; i++ {
		if p, _ := tn.Begin(k, small); p.Policy != raja.SeqExec {
			t.Fatal("exploration still active after disable")
		}
	}
}

// TestTunerEndUnsampledZeroAlloc is the acceptance criterion for the
// telemetry fast path: an unsampled End must allocate nothing.
func TestTunerEndUnsampledZeroAlloc(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	tn := NewTuner(schema, ann, raja.Params{})
	k := raja.NewKernel("alloc", nil)
	iset := raja.NewRange(0, 100)
	p := raja.Params{Policy: raja.OmpParallelForExec}

	// No recorder attached.
	if allocs := testing.AllocsPerRun(1000, func() { tn.End(k, iset, p, 100) }); allocs != 0 {
		t.Errorf("End with no recorder: %v allocs/run, want 0", allocs)
	}

	// Recorder attached, but this launch is unsampled (1 in 1<<62).
	rec := telemetry.NewRecorder(schema, ann, telemetry.Options{SampleEvery: 1 << 62})
	tn.UseTelemetry(rec)
	if allocs := testing.AllocsPerRun(1000, func() { tn.End(k, iset, p, 100) }); allocs != 0 {
		t.Errorf("unsampled End: %v allocs/run, want 0", allocs)
	}

	// The sampled path itself must not allocate either: features are
	// extracted straight into the preallocated ring slot.
	rec2 := telemetry.NewRecorder(schema, ann, telemetry.Options{SampleEvery: 1, Capacity: 1 << 12})
	tn.UseTelemetry(rec2)
	if allocs := testing.AllocsPerRun(1000, func() { tn.End(k, iset, p, 100) }); allocs != 0 {
		t.Errorf("sampled End: %v allocs/run, want 0", allocs)
	}
}

// BenchmarkTunerEndUnsampled measures the per-launch cost of the
// telemetry hook when the launch is not sampled — the price every
// production launch pays once telemetry is on (EXPERIMENTS.md).
func BenchmarkTunerEndUnsampled(b *testing.B) {
	schema := features.TableI()
	ann := caliper.New()
	tn := NewTuner(schema, ann, raja.Params{})
	rec := telemetry.NewRecorder(schema, ann, telemetry.Options{SampleEvery: 1 << 62})
	tn.UseTelemetry(rec)
	k := raja.NewKernel("bench", nil)
	iset := raja.NewRange(0, 100)
	p := raja.Params{Policy: raja.OmpParallelForExec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.End(k, iset, p, 100)
	}
}

// BenchmarkTunerEndSampled measures the full capture cost when every
// launch is sampled: extract into the ring slot and publish.
func BenchmarkTunerEndSampled(b *testing.B) {
	schema := features.TableI()
	ann := caliper.New()
	tn := NewTuner(schema, ann, raja.Params{})
	rec := telemetry.NewRecorder(schema, ann, telemetry.Options{SampleEvery: 1, Capacity: 1 << 16})
	tn.UseTelemetry(rec)
	k := raja.NewKernel("bench", nil)
	iset := raja.NewRange(0, 100)
	p := raja.Params{Policy: raja.OmpParallelForExec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			rec.Drain(0) // keep the ring from filling
		}
		tn.End(k, iset, p, 100)
	}
}

// BenchmarkTunerEndNoTelemetry is the baseline: End before this PR.
func BenchmarkTunerEndNoTelemetry(b *testing.B) {
	schema := features.TableI()
	tn := NewTuner(schema, caliper.New(), raja.Params{})
	k := raja.NewKernel("bench", nil)
	iset := raja.NewRange(0, 100)
	p := raja.Params{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.End(k, iset, p, 100)
	}
}
