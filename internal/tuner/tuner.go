// Package tuner provides the two runtime Apollo components the paper
// loads behind RAJA's apollo::begin / apollo::end hooks:
//
//   - Recorder collects a Table I feature vector and the measured runtime
//     of every kernel execution into a training-data frame, while forcing
//     the parameter variant under test (training runs execute the whole
//     problem once per candidate parameter value);
//   - Tuner evaluates trained decision models at every launch and writes
//     the predicted execution parameters to the blackboard for the
//     policy switcher to consume.
//
// Both implement raja.Hooks, so the same application binary runs in either
// recording or tuning mode just by installing a different component —
// the decoupling the paper gets from dynamic loading.
package tuner

import (
	"sync"
	"sync/atomic"

	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/flight"
	"apollo/internal/raja"
	"apollo/internal/telemetry"
)

// Recorder captures one training sample per kernel execution.
type Recorder struct {
	schema *features.Schema
	ann    *caliper.Annotations
	sweep  raja.Params

	mu    sync.Mutex
	frame *dataset.Frame
	row   []float64
}

// NewRecorder returns a recorder that forces every launch to use the
// sweep parameters and records samples against the given schema and
// annotation blackboard.
func NewRecorder(schema *features.Schema, ann *caliper.Annotations, sweep raja.Params) *Recorder {
	return &Recorder{
		schema: schema,
		ann:    ann,
		sweep:  sweep,
		frame:  dataset.NewFrame(core.RecordColumns(schema)...),
		row:    make([]float64, schema.Len()+3),
	}
}

// Begin forces the sweep parameters for the launch.
func (r *Recorder) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	return r.sweep, true
}

// End appends the sample: the feature vector, the parameters used, and
// the elapsed time.
func (r *Recorder) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
	x := r.schema.Extract(k, iset, r.ann)
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(r.row, x)
	n := r.schema.Len()
	r.row[n] = float64(p.Policy)
	r.row[n+1] = float64(p.Chunk)
	r.row[n+2] = elapsedNS
	r.frame.AddRow(r.row)
}

// Frame returns the live recording frame. Ownership contract: the frame
// remains owned by the recorder, and End keeps appending to it for as
// long as the application runs — callers that only read it after all
// launches have finished (the offline training pipeline) may use it
// directly, but callers that export while recording may continue (e.g. a
// server shipping training data mid-run) must use Snapshot instead.
func (r *Recorder) Frame() *dataset.Frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frame
}

// Snapshot returns a deep copy of the samples recorded so far. The copy
// is safe to read, serialize, or mutate while the recorder keeps
// appending to its live frame on other goroutines.
func (r *Recorder) Snapshot() *dataset.Frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frame.Clone()
}

// Samples returns the number of recorded samples.
func (r *Recorder) Samples() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frame.Len()
}

// Projectors is one immutable set of decision projectors: a policy
// projector, a chunk projector, or both (either may be nil, leaving the
// corresponding parameter at the tuner's base value). Sources publish a
// fresh set on every model change and never mutate a published one.
type Projectors struct {
	Policy *core.Projector
	Chunk  *core.Projector
}

// ModelSource supplies the tuner's current projectors. Implementations
// may swap the returned set at any time — a serving client installs a
// retrained model into a running tuner this way — and must make
// Projectors safe for concurrent callers. Returning nil is equivalent to
// returning an empty set: the tuner falls back to its base parameters.
type ModelSource interface {
	Projectors() *Projectors
}

// SwapSource is the trivial ModelSource: an atomically swappable
// projector set. It backs UsePolicyModel/UseChunkModel and is the seam a
// test or an embedding application uses to hot-swap models by hand.
type SwapSource struct {
	ps atomic.Pointer[Projectors]
}

// emptyProjectors backs Projectors() before the first Store, so the
// empty case costs no allocation on the launch path.
var emptyProjectors = &Projectors{}

// Projectors returns the current set (never nil).
//
//apollo:hotpath
func (s *SwapSource) Projectors() *Projectors {
	if ps := s.ps.Load(); ps != nil {
		return ps
	}
	return emptyProjectors
}

// Store atomically publishes a new projector set. Launches already in
// flight finish with the set they loaded; every later launch sees ps.
func (s *SwapSource) Store(ps *Projectors) {
	if ps == nil {
		ps = &Projectors{}
	}
	s.ps.Store(ps)
}

// Tuner evaluates trained models at every kernel launch. A policy model,
// a chunk model, or both may be installed; absent models leave the
// corresponding parameter at its base value. The launch hot path
// (Begin/End) carries //apollo:hotpath annotations, so apollo-vet
// machine-checks what used to be prose here: no allocation, no mutex,
// one atomic load of the projector set — concurrent contexts driving one
// tuner never contend, and a model source may swap in a retrained model
// mid-run with no coordination.
type Tuner struct {
	schema *features.Schema
	ann    *caliper.Annotations
	base   raja.Params

	// scratch pools feature-vector buffers (len == schema.Len()) so
	// Begin extracts without allocating.
	scratch sync.Pool

	own    SwapSource // backs UsePolicyModel / UseChunkModel
	src    atomic.Pointer[sourceBox]
	instMu sync.Mutex // serializes model installs, not launches

	decisions atomic.Uint64

	// telem, when set, receives a sampled (features, params, elapsed)
	// measurement from End — the capture side of the closed training
	// loop. Nil keeps End a two-instruction no-op.
	telem atomic.Pointer[telemetry.Recorder]

	// fl, when set, receives a full decision-provenance record from End
	// (feature snapshot, decision trail, predicted-vs-observed runtime,
	// phase timings). Nil costs one atomic load and a branch.
	fl atomic.Pointer[flight.Recorder]

	// exploreEvery > 0 flips the predicted execution policy on every
	// exploreEvery-th launch, so telemetry contains counterfactual
	// observations (how fast would the other variant have been?) that
	// let the continuous trainer relabel vectors the deployed model
	// gets wrong. 0 disables exploration.
	exploreEvery atomic.Uint64
	exploreSeq   atomic.Uint64
	explored     atomic.Uint64
}

// sourceBox makes the ModelSource interface value atomically swappable.
type sourceBox struct{ s ModelSource }

// NewTuner returns a tuner extracting features against the given schema
// and blackboard, starting from base parameters.
func NewTuner(schema *features.Schema, ann *caliper.Annotations, base raja.Params) *Tuner {
	t := &Tuner{schema: schema, ann: ann, base: base}
	t.scratch.New = func() any {
		v := make([]float64, schema.Len())
		return &v
	}
	t.src.Store(&sourceBox{s: &t.own})
	return t
}

// UsePolicyModel installs a model predicting the execution policy into
// the tuner's own swappable source.
func (t *Tuner) UsePolicyModel(m *core.Model) *Tuner {
	if m.Param != core.ExecutionPolicy {
		panic("tuner: UsePolicyModel with a non-policy model")
	}
	t.instMu.Lock()
	defer t.instMu.Unlock()
	cur := t.own.Projectors()
	t.own.Store(&Projectors{Policy: m.NewProjector(t.schema), Chunk: cur.Chunk})
	return t
}

// UseChunkModel installs a model predicting the OpenMP chunk size into
// the tuner's own swappable source.
func (t *Tuner) UseChunkModel(m *core.Model) *Tuner {
	if m.Param != core.ChunkSize {
		panic("tuner: UseChunkModel with a non-chunk model")
	}
	t.instMu.Lock()
	defer t.instMu.Unlock()
	cur := t.own.Projectors()
	t.own.Store(&Projectors{Policy: cur.Policy, Chunk: m.NewProjector(t.schema)})
	return t
}

// UseSource routes the tuner's projector reads through src — typically a
// serving client that fetches models from a registry and hot-swaps them.
// Passing nil restores the tuner's own UsePolicyModel/UseChunkModel set.
func (t *Tuner) UseSource(src ModelSource) *Tuner {
	if src == nil {
		src = &t.own
	}
	t.src.Store(&sourceBox{s: src})
	return t
}

// Begin extracts the launch's features, evaluates the installed models,
// and returns the predicted parameters. It takes no locks and allocates
// nothing: the scratch vector is pooled, the projector pools its own
// buffers, and the projector set is one atomic pointer load.
//
//apollo:hotpath
func (t *Tuner) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	t.decisions.Add(1)
	xp := t.scratch.Get().(*[]float64)
	defer t.scratch.Put(xp)
	x := t.schema.ExtractInto(*xp, k, iset, t.ann)
	params := t.base
	ps := t.src.Load().s.Projectors()
	if ps == nil {
		return params, true
	}
	if ps.Policy != nil {
		params.Policy = raja.Policy(ps.Policy.Predict(x))
	}
	if ps.Chunk != nil {
		class := ps.Chunk.Predict(x)
		if class >= 0 && class < len(raja.ChunkSizes) {
			params.Chunk = raja.ChunkSizes[class]
		}
	}
	if every := t.exploreEvery.Load(); every > 0 && t.exploreSeq.Add(1)%every == 0 {
		params.Policy = flipPolicy(params.Policy)
		t.explored.Add(1)
	}
	return params, true
}

// flipPolicy returns the other execution policy — the exploration move.
func flipPolicy(p raja.Policy) raja.Policy {
	if p == raja.SeqExec {
		return raja.OmpParallelForExec
	}
	return raja.SeqExec
}

// End feeds the launch measurement to the attached telemetry recorder.
// With no recorder (or on the recorder's unsampled path) it performs a
// couple of atomic operations and allocates nothing — End runs inside
// every kernel launch, so this path must stay effectively free.
//
//apollo:hotpath
func (t *Tuner) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
	if rec := t.telem.Load(); rec != nil {
		rec.Record(k, iset, p, elapsedNS)
	}
	if fr := t.fl.Load(); fr != nil {
		t.emitFlight(fr, k, iset, p, elapsedNS)
	}
}

// emitFlight writes one decision-provenance record: it re-extracts the
// launch's features into the reserved record and re-evaluates the
// installed models with trail capture, timing both phases. Re-deriving
// at End (rather than carrying state from Begin) keeps raja.Hooks token-
// free and the disabled cost at a single branch; the replayed decision
// can differ from the one Begin made only if a model was hot-swapped
// mid-launch or the launch was an exploration flip — both of which
// surface as Explored. It allocates nothing.
//
// Sites running a single compiled model record the compact offset trail
// (Record.Offsets, 4 bytes per step) against the site's registered
// TrailDecoder instead of full TrailSteps; sites running both a policy
// and a chunk model keep the concatenated TrailStep form, since one
// offset trail cannot span two layouts.
//
//apollo:hotpath
func (t *Tuner) emitFlight(fr *flight.Recorder, k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
	if !fr.SiteKnown(k.ID) {
		fr.RegisterSite(k.ID, k.Name, nil)
	}
	rec, tok := fr.Reserve(k.ID)
	if rec == nil {
		fr.Commit(tok)
		return
	}
	t0 := flight.Now()
	xp := t.scratch.Get().(*[]float64)
	x := t.schema.ExtractInto(*xp, k, iset, t.ann)
	t1 := flight.Now()
	rec.NumFeatures = int32(copy(rec.Features[:], x))
	predicted := int32(-1)
	chosen := t.base
	trailLen := 0
	if ps := t.src.Load().s.Projectors(); ps != nil {
		if ps.Policy != nil && ps.Chunk == nil && ps.Policy.Compiled() != nil {
			// Single compiled model: compact offset trail. The decoder
			// pointer doubles as the model-swap detector — one lock-free
			// load compares the compiled tree identity per launch.
			if d := fr.SiteDecoder(k.ID); d == nil || d.Tree != ps.Policy.Compiled() {
				registerDecoder(fr, k.ID, ps.Policy)
			}
			class, n := ps.Policy.PredictOffsets(x, rec.Offsets[:])
			rec.OffsetsLen = int32(n)
			predicted = int32(class)
			chosen.Policy = raja.Policy(class)
		} else {
			if ps.Policy != nil {
				class, steps := ps.Policy.PredictTrail(x, rec.Trail[:])
				trailLen = steps
				predicted = int32(class)
				chosen.Policy = raja.Policy(class)
			}
			if ps.Chunk != nil {
				class, steps := ps.Chunk.PredictTrail(x, rec.Trail[trailLen:])
				trailLen += steps
				if predicted < 0 {
					predicted = int32(class)
				}
				if class >= 0 && class < len(raja.ChunkSizes) {
					chosen.Chunk = raja.ChunkSizes[class]
				}
			}
		}
	}
	t2 := flight.Now()
	t.scratch.Put(xp)
	rec.Iterations = int64(iset.Len())
	rec.Policy = int32(p.Policy)
	rec.Chunk = int32(p.Chunk)
	rec.Predicted = predicted
	rec.TrailLen = int32(trailLen)
	rec.Explored = predicted >= 0 && chosen.Policy != p.Policy
	rec.ObservedNS = elapsedNS
	rec.PredictedNS = fr.PredictObserve(k.ID, int(p.Policy), elapsedNS)
	rec.FeatureNS = float64(t1 - t0)
	rec.ModelNS = float64(t2 - t1)
	fr.Commit(tok)
}

// registerDecoder publishes the flight-trail decoder for a site's
// current compiled policy model. It allocates, so it lives off the hot
// path behind emitFlight's pointer-identity check: once per model swap,
// never per launch.
//
//apollo:coldpath decoder registration runs once per site model swap
func registerDecoder(fr *flight.Recorder, id uint64, p *core.Projector) {
	fr.SetSiteDecoder(id, &flight.TrailDecoder{Tree: p.Compiled(), Src: p.SourceIndex()})
}

// UseTelemetry attaches (or, with nil, detaches) a telemetry recorder;
// End starts feeding it immediately, with no pause in launches.
func (t *Tuner) UseTelemetry(rec *telemetry.Recorder) *Tuner {
	t.telem.Store(rec)
	return t
}

// UseFlight attaches (or, with nil, detaches) a flight recorder; every
// subsequent launch emits a decision-provenance record from End.
func (t *Tuner) UseFlight(fr *flight.Recorder) *Tuner {
	t.fl.Store(fr)
	return t
}

// Flight returns the attached flight recorder (nil when detached).
func (t *Tuner) Flight() *flight.Recorder { return t.fl.Load() }

// ExploreEvery makes every n-th launch execute the opposite execution
// policy from the model's pick (0 disables). A small exploration rate is
// what gives the telemetry stream observations of both variants per
// feature vector — without it the closed loop could never learn that the
// deployed model's choice has become the slower one.
func (t *Tuner) ExploreEvery(n uint64) *Tuner {
	t.exploreEvery.Store(n)
	return t
}

// Explored returns how many launches ran an exploration variant.
func (t *Tuner) Explored() uint64 { return t.explored.Load() }

// Decisions returns how many launches the tuner has parameterized.
func (t *Tuner) Decisions() uint64 { return t.decisions.Load() }

// KernelStat accumulates the observed cost of one kernel.
type KernelStat struct {
	Name    string
	Count   int
	TotalNS float64
	MinNS   float64
	MaxNS   float64
}

// Collector wraps another Hooks implementation (or none) and accumulates
// per-kernel timing totals, which the harness uses to find each
// application's most time-consuming and most variable kernels.
type Collector struct {
	Inner raja.Hooks

	mu    sync.Mutex
	stats map[string]*KernelStat
}

// NewCollector returns a collector delegating to inner (which may be nil).
func NewCollector(inner raja.Hooks) *Collector {
	return &Collector{Inner: inner, stats: make(map[string]*KernelStat)}
}

// Begin delegates to the inner hooks.
func (c *Collector) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	if c.Inner != nil {
		return c.Inner.Begin(k, iset)
	}
	return raja.Params{}, false
}

// End records the sample and delegates.
func (c *Collector) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
	c.mu.Lock()
	st := c.stats[k.Name]
	if st == nil {
		st = &KernelStat{Name: k.Name, MinNS: elapsedNS, MaxNS: elapsedNS}
		c.stats[k.Name] = st
	}
	st.Count++
	st.TotalNS += elapsedNS
	if elapsedNS < st.MinNS {
		st.MinNS = elapsedNS
	}
	if elapsedNS > st.MaxNS {
		st.MaxNS = elapsedNS
	}
	c.mu.Unlock()
	if c.Inner != nil {
		c.Inner.End(k, iset, p, elapsedNS)
	}
}

// Stats returns a snapshot of the per-kernel statistics.
func (c *Collector) Stats() map[string]KernelStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]KernelStat, len(c.stats))
	for name, st := range c.stats {
		out[name] = *st
	}
	return out
}

// TotalNS returns the total observed kernel time.
func (c *Collector) TotalNS() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total float64
	for _, st := range c.stats {
		total += st.TotalNS
	}
	return total
}
