package tuner

import (
	"testing"

	"apollo/internal/caliper"
	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/flight"
	"apollo/internal/raja"
)

func newFlightRecorder(schema *features.Schema) *flight.Recorder {
	return flight.New(flight.Options{
		Shards:        2,
		ShardCapacity: 64,
		FeatureNames:  schema.Names(),
	})
}

func TestTunerEndEmitsFlight(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	fr := newFlightRecorder(schema)
	tn := NewTuner(schema, caliper.New(), raja.Params{}).UsePolicyModel(model).UseFlight(fr)

	k := raja.NewKernel("daxpy", nil)
	small := raja.NewRange(0, 50)
	large := raja.NewRange(0, 100000)
	for i, launch := range []struct {
		iset *raja.IndexSet
		ns   float64
	}{{small, 500}, {small, 700}, {large, 90000}} {
		p, _ := tn.Begin(k, launch.iset)
		tn.End(k, launch.iset, p, launch.ns)
		_ = i
	}

	recs := fr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d flight records, want 3", len(recs))
	}
	if name := fr.SiteName(recs[0].Site); name != "daxpy" {
		t.Fatalf("site name %q, want daxpy", name)
	}
	first := recs[0]
	if first.Predicted != int32(raja.SeqExec) || first.Policy != int32(raja.SeqExec) {
		t.Fatalf("small launch: predicted=%d policy=%d, want seq", first.Predicted, first.Policy)
	}
	if first.Explored {
		t.Fatal("non-explored launch marked Explored")
	}
	// A single compiled model records the compact offset trail, not
	// TrailSteps.
	if first.TrailLen != 0 {
		t.Fatalf("compiled site recorded %d TrailSteps, want compact offsets only", first.TrailLen)
	}
	if first.OffsetsLen == 0 {
		t.Fatal("no compact offset trail captured")
	}
	ni := schema.Index(features.NumIndices)
	if int(first.NumFeatures) <= ni || first.Features[ni] != 50 {
		t.Fatalf("feature snapshot wrong: n=%d num_indices=%g", first.NumFeatures, first.Features[ni])
	}
	// Decoding the offsets against the site's registered decoder must
	// reconstruct a trail that consults num_indices (the model's only
	// informative feature) in source-schema indexing.
	dec := fr.SiteDecoder(first.Site)
	if dec == nil || dec.Tree == nil {
		t.Fatal("compiled site did not register a trail decoder")
	}
	var steps [flight.MaxTrail]dtree.TrailStep
	n := dec.Tree.DecodeOffsets(first.Offsets[:first.OffsetsLen], dec.Src, first.Features[:first.NumFeatures], steps[:])
	if n == 0 {
		t.Fatal("offset trail decoded to zero steps")
	}
	found := false
	for _, st := range steps[:n] {
		if int(st.Feature) == ni && st.Value == 50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("decoded trail does not consult num_indices: %+v", steps[:n])
	}
	if first.ObservedNS != 500 || first.PredictedNS != 0 {
		t.Fatalf("first record predicted/observed = %g/%g, want 0/500", first.PredictedNS, first.ObservedNS)
	}
	// Second identical launch: the EWMA now predicts the first's runtime.
	if recs[1].PredictedNS != 500 || recs[1].ObservedNS != 700 {
		t.Fatalf("second record predicted/observed = %g/%g, want 500/700", recs[1].PredictedNS, recs[1].ObservedNS)
	}
	large3 := recs[2]
	if large3.Predicted != int32(raja.OmpParallelForExec) {
		t.Fatalf("large launch predicted %d, want omp", large3.Predicted)
	}
	if large3.Iterations != 100000 {
		t.Fatalf("iterations = %d, want 100000", large3.Iterations)
	}
	if large3.FeatureNS < 0 || large3.ModelNS < 0 {
		t.Fatalf("phase timings negative: feature=%g model=%g", large3.FeatureNS, large3.ModelNS)
	}
}

func TestTunerFlightMarksExploration(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	fr := newFlightRecorder(schema)
	tn := NewTuner(schema, caliper.New(), raja.Params{}).
		UsePolicyModel(model).UseFlight(fr).ExploreEvery(1)

	k := raja.NewKernel("explore", nil)
	iset := raja.NewRange(0, 50)
	p, _ := tn.Begin(k, iset) // every launch explores: policy flipped
	tn.End(k, iset, p, 100)

	recs := fr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.Explored {
		t.Fatal("exploration launch not marked Explored")
	}
	if rec.Policy == rec.Predicted {
		t.Fatalf("explored launch ran the predicted policy: %d", rec.Policy)
	}
}

func TestTunerFlightDetach(t *testing.T) {
	schema := features.TableI()
	fr := newFlightRecorder(schema)
	tn := NewTuner(schema, caliper.New(), raja.Params{}).UseFlight(fr)
	if tn.Flight() != fr {
		t.Fatal("Flight() does not return the attached recorder")
	}
	tn.UseFlight(nil)
	k := raja.NewKernel("k", nil)
	iset := raja.NewRange(0, 10)
	tn.End(k, iset, raja.Params{}, 100)
	if got := len(fr.Snapshot()); got != 0 {
		t.Fatalf("detached recorder received %d records", got)
	}
}

// TestTunerEndFlightZeroAlloc is the acceptance criterion for always-on
// flight recording: a full-provenance emission (feature re-extraction,
// trail-capturing model replay, EWMA update, ring write) must allocate
// nothing.
func TestTunerEndFlightZeroAlloc(t *testing.T) {
	schema := features.TableI()
	model := trainPolicyModel(t, schema)
	fr := newFlightRecorder(schema)
	tn := NewTuner(schema, caliper.New(), raja.Params{}).UsePolicyModel(model).UseFlight(fr)
	k := raja.NewKernel("alloc", nil)
	iset := raja.NewRange(0, 100)
	p := raja.Params{Policy: raja.SeqExec}
	if allocs := testing.AllocsPerRun(1000, func() { tn.End(k, iset, p, 100) }); allocs != 0 {
		t.Errorf("flight End: %v allocs/run, want 0", allocs)
	}
}

// BenchmarkTunerEndFlight measures the always-on flight-recording cost
// per launch: telemetry off, flight on (EXPERIMENTS.md).
func BenchmarkTunerEndFlight(b *testing.B) {
	schema := features.TableI()
	model := trainPolicyModel(b, schema)
	fr := newFlightRecorder(schema)
	tn := NewTuner(schema, caliper.New(), raja.Params{}).UsePolicyModel(model).UseFlight(fr)
	k := raja.NewKernel("bench", nil)
	iset := raja.NewRange(0, 100)
	p := raja.Params{Policy: raja.SeqExec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.End(k, iset, p, 100)
	}
}
