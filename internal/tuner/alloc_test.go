package tuner

import (
	"testing"

	"apollo/internal/caliper"
	"apollo/internal/features"
	"apollo/internal/instmix"
	"apollo/internal/raja"
	"apollo/internal/telemetry"
)

// The launch hot path carries //apollo:hotpath annotations checked
// statically by apollo-vet; these guards pin the same invariant at
// runtime with the allocator's own accounting.

func TestBeginAllocationFree(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	ann.Set(features.Timestep, 1)
	ann.SetString(features.ProblemName, "allocguard")
	tn := NewTuner(schema, ann, raja.Params{Policy: raja.SeqExec})
	tn.UsePolicyModel(trainPolicyModel(t, schema))
	k := raja.NewKernel("allocguard", instmix.NewMix().With(instmix.Add, 4))
	iset := raja.NewRange(0, 4096)

	allocs := testing.AllocsPerRun(200, func() {
		tn.Begin(k, iset)
	})
	if allocs != 0 {
		t.Errorf("Tuner.Begin allocates %.1f objects per launch, want 0", allocs)
	}
}

func TestEndUnsampledAllocationFree(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	tn := NewTuner(schema, ann, raja.Params{Policy: raja.SeqExec})
	// A huge sampling interval keeps Record on its unsampled path
	// (two atomic ops) for every call the guard measures.
	rec := telemetry.NewRecorder(schema, ann, telemetry.Options{SampleEvery: 1 << 40})
	tn.UseTelemetry(rec)
	k := raja.NewKernel("allocguard", instmix.NewMix().With(instmix.Add, 4))
	iset := raja.NewRange(0, 4096)
	p := raja.Params{Policy: raja.SeqExec}

	allocs := testing.AllocsPerRun(200, func() {
		tn.End(k, iset, p, 1234)
	})
	if allocs != 0 {
		t.Errorf("Tuner.End (unsampled) allocates %.1f objects per launch, want 0", allocs)
	}
}
