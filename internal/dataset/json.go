package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonHeader is the first line of the JSONL frame format.
type jsonHeader struct {
	Format  string   `json:"format"`
	Columns []string `json:"columns"`
}

const frameFormatID = "apollo-frame-v1"

// WriteJSONL writes the frame in a line-delimited JSON format: a header
// object with the column names, then one array of values per row. The
// format streams (no whole-frame buffering) and appends cheaply, which
// suits long recording sessions better than CSV's quoting rules.
func (f *Frame) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonHeader{Format: frameFormatID, Columns: f.cols}); err != nil {
		return err
	}
	for _, row := range f.rows {
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a frame written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Frame, error) {
	dec := json.NewDecoder(r)
	var hdr jsonHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("dataset: reading JSONL header: %w", err)
	}
	if hdr.Format != frameFormatID {
		return nil, fmt.Errorf("dataset: unknown frame format %q (want %q)", hdr.Format, frameFormatID)
	}
	f := NewFrame(hdr.Columns...)
	for line := 2; ; line++ {
		var row []float64
		if err := dec.Decode(&row); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("dataset: JSONL line %d: %w", line, err)
		}
		if len(row) != len(hdr.Columns) {
			return nil, fmt.Errorf("dataset: JSONL line %d has %d values, want %d", line, len(row), len(hdr.Columns))
		}
		f.AddRow(row)
	}
	return f, nil
}

// SaveJSONL writes the frame to the named file.
func (f *Frame) SaveJSONL(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSONL(file); err != nil {
		file.Close() //apollo:errok Close on the error path; the write error is already being returned
		return err
	}
	return file.Close()
}

// LoadJSONL reads a frame from the named file.
func LoadJSONL(path string) (*Frame, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return ReadJSONL(file)
}
