// Package dataset provides the tabular data handling Apollo's off-line
// training pipeline needs: a small columnar frame (the pandas/NumPy
// substitute), CSV persistence for recorded training samples, and
// deterministic shuffling and k-fold splitting for cross-validation.
package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Frame is a dense table of float64 values with named columns.
type Frame struct {
	cols  []string
	index map[string]int
	rows  [][]float64
}

// NewFrame returns an empty frame with the given columns.
func NewFrame(cols ...string) *Frame {
	f := &Frame{cols: append([]string(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range f.cols {
		if _, dup := f.index[c]; dup {
			panic(fmt.Sprintf("dataset: duplicate column %q", c))
		}
		f.index[c] = i
	}
	return f
}

// Cols returns the column names in order.
func (f *Frame) Cols() []string { return append([]string(nil), f.cols...) }

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// Len returns the number of rows.
func (f *Frame) Len() int { return len(f.rows) }

// Col returns the index of the named column, or -1.
func (f *Frame) Col(name string) int {
	if i, ok := f.index[name]; ok {
		return i
	}
	return -1
}

// MustCol returns the index of the named column, panicking if absent.
func (f *Frame) MustCol(name string) int {
	i := f.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("dataset: no column %q", name))
	}
	return i
}

// AddRow appends a row, which must have exactly NumCols values. The row
// is copied.
func (f *Frame) AddRow(row []float64) {
	if len(row) != len(f.cols) {
		panic(fmt.Sprintf("dataset: row has %d values, frame has %d columns", len(row), len(f.cols)))
	}
	f.rows = append(f.rows, append([]float64(nil), row...))
}

// Row returns the i-th row. The returned slice is the frame's storage;
// callers must not modify it.
func (f *Frame) Row(i int) []float64 { return f.rows[i] }

// At returns the value at row i, column name.
func (f *Frame) At(i int, name string) float64 { return f.rows[i][f.MustCol(name)] }

// Column returns a copy of the named column's values.
func (f *Frame) Column(name string) []float64 {
	j := f.MustCol(name)
	out := make([]float64, len(f.rows))
	for i, r := range f.rows {
		out[i] = r[j]
	}
	return out
}

// Append copies all rows of other (which must have identical columns in
// identical order) into f.
func (f *Frame) Append(other *Frame) {
	if len(other.cols) != len(f.cols) {
		panic("dataset: Append with mismatched columns")
	}
	for i, c := range other.cols {
		if f.cols[i] != c {
			panic(fmt.Sprintf("dataset: Append column mismatch at %d: %q vs %q", i, f.cols[i], c))
		}
	}
	for _, r := range other.rows {
		f.AddRow(r)
	}
}

// Clone returns a deep copy of the frame: same columns, copied rows.
// Mutating either frame afterwards leaves the other untouched.
func (f *Frame) Clone() *Frame {
	out := NewFrame(f.cols...)
	out.rows = make([][]float64, 0, len(f.rows))
	for _, r := range f.rows {
		out.rows = append(out.rows, append([]float64(nil), r...))
	}
	return out
}

// Filter returns a new frame holding the rows for which keep returns true.
func (f *Frame) Filter(keep func(row []float64) bool) *Frame {
	out := NewFrame(f.cols...)
	for _, r := range f.rows {
		if keep(r) {
			out.AddRow(r)
		}
	}
	return out
}

// SelectRows returns a new frame holding the rows at the given indices.
func (f *Frame) SelectRows(idx []int) *Frame {
	out := NewFrame(f.cols...)
	for _, i := range idx {
		out.AddRow(f.rows[i])
	}
	return out
}

// Project returns a new frame with only the named columns, in that order.
func (f *Frame) Project(cols ...string) *Frame {
	js := make([]int, len(cols))
	for k, c := range cols {
		js[k] = f.MustCol(c)
	}
	out := NewFrame(cols...)
	row := make([]float64, len(cols))
	for _, r := range f.rows {
		for k, j := range js {
			row[k] = r[j]
		}
		out.AddRow(row)
	}
	return out
}

// WriteCSV writes the frame with a header row.
func (f *Frame) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(f.cols); err != nil {
		return err
	}
	rec := make([]string, len(f.cols))
	for _, r := range f.rows {
		for j, v := range r {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV reads a frame written by WriteCSV.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	f := NewFrame(header...)
	row := make([]float64, len(header))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), len(header))
		}
		for j, s := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %q: %w", line, header[j], err)
			}
			row[j] = v
		}
		f.AddRow(row)
	}
	return f, nil
}

// SaveCSV writes the frame to the named file.
func (f *Frame) SaveCSV(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteCSV(file); err != nil {
		file.Close() //apollo:errok Close on the error path; the write error is already being returned
		return err
	}
	return file.Close()
}

// LoadCSV reads a frame from the named file.
func LoadCSV(path string) (*Frame, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return ReadCSV(file)
}

// RNG is a small deterministic xorshift64* generator used for shuffling
// and fold assignment, so cross-validation results are reproducible.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dataset: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fold is one train/test split of a k-fold cross-validation.
type Fold struct {
	Train, Test []int
}

// KFold partitions n row indices into k folds after a deterministic
// shuffle with the given seed, returning the k train/test splits used for
// the paper's 10-fold cross-validation.
func KFold(n, k int, seed uint64) []Fold {
	if k < 2 {
		panic("dataset: KFold requires k >= 2")
	}
	if n < k {
		k = n
	}
	perm := NewRNG(seed).Perm(n)
	folds := make([]Fold, k)
	// Distribute indices round-robin so fold sizes differ by at most 1.
	buckets := make([][]int, k)
	for i, p := range perm {
		buckets[i%k] = append(buckets[i%k], p)
	}
	for f := 0; f < k; f++ {
		folds[f].Test = buckets[f]
		for g := 0; g < k; g++ {
			if g != f {
				folds[f].Train = append(folds[f].Train, buckets[g]...)
			}
		}
	}
	return folds
}
