package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleFrame() *Frame {
	f := NewFrame("x", "y", "label")
	f.AddRow([]float64{1, 2, 0})
	f.AddRow([]float64{3.5, -1, 1})
	f.AddRow([]float64{0.001, 1e9, 1})
	return f
}

func TestFrameBasics(t *testing.T) {
	f := sampleFrame()
	if f.Len() != 3 || f.NumCols() != 3 {
		t.Fatalf("Len=%d NumCols=%d", f.Len(), f.NumCols())
	}
	if f.At(1, "x") != 3.5 {
		t.Errorf("At(1,x) = %g", f.At(1, "x"))
	}
	if !reflect.DeepEqual(f.Column("label"), []float64{0, 1, 1}) {
		t.Errorf("Column(label) = %v", f.Column("label"))
	}
	if f.Col("nope") != -1 {
		t.Error("Col of missing column should be -1")
	}
}

func TestAddRowWrongWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong width should panic")
		}
	}()
	sampleFrame().AddRow([]float64{1})
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate column should panic")
		}
	}()
	NewFrame("a", "a")
}

func TestFilterProjectSelectRows(t *testing.T) {
	f := sampleFrame()
	pos := f.Filter(func(row []float64) bool { return row[2] == 1 })
	if pos.Len() != 2 {
		t.Errorf("Filter kept %d rows, want 2", pos.Len())
	}
	proj := f.Project("label", "x")
	if !reflect.DeepEqual(proj.Cols(), []string{"label", "x"}) {
		t.Errorf("Project cols = %v", proj.Cols())
	}
	if proj.At(1, "x") != 3.5 {
		t.Errorf("projected value wrong")
	}
	sel := f.SelectRows([]int{2, 0})
	if sel.Len() != 2 || sel.At(0, "y") != 1e9 {
		t.Error("SelectRows wrong")
	}
}

func TestAppendChecksColumns(t *testing.T) {
	f := sampleFrame()
	g := NewFrame("x", "y", "label")
	g.AddRow([]float64{9, 9, 0})
	f.Append(g)
	if f.Len() != 4 {
		t.Errorf("Append gave %d rows", f.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("Append with mismatched columns should panic")
		}
	}()
	f.Append(NewFrame("x", "label", "y"))
}

func TestCSVRoundTrip(t *testing.T) {
	f := sampleFrame()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Cols(), f.Cols()) || g.Len() != f.Len() {
		t.Fatal("round trip changed shape")
	}
	for i := 0; i < f.Len(); i++ {
		if !reflect.DeepEqual(g.Row(i), f.Row(i)) {
			t.Errorf("row %d: %v != %v", i, g.Row(i), f.Row(i))
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "samples.csv")
	f := sampleFrame()
	if err := f.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() {
		t.Errorf("loaded %d rows, want %d", g.Len(), f.Len())
	}
}

func TestReadCSVBadData(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,notanumber\n")); err == nil {
		t.Error("non-numeric cell should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty input should fail (no header)")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Error("zero seed should be remapped")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKFoldPartitions(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 10
		folds := KFold(n, 10, seed)
		covered := make([]int, n)
		for _, fold := range folds {
			for _, i := range fold.Test {
				covered[i]++
			}
			// Train and test must not overlap.
			inTest := map[int]bool{}
			for _, i := range fold.Test {
				inTest[i] = true
			}
			for _, i := range fold.Train {
				if inTest[i] {
					return false
				}
			}
			if len(fold.Train)+len(fold.Test) != n {
				return false
			}
		}
		// Every sample appears in exactly one test fold.
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKFoldBalanced(t *testing.T) {
	folds := KFold(105, 10, 1)
	if len(folds) != 10 {
		t.Fatalf("got %d folds", len(folds))
	}
	for _, fold := range folds {
		if len(fold.Test) < 10 || len(fold.Test) > 11 {
			t.Errorf("fold size %d not balanced", len(fold.Test))
		}
	}
}

func TestKFoldSmallN(t *testing.T) {
	folds := KFold(3, 10, 1)
	if len(folds) != 3 {
		t.Errorf("KFold(3,10) made %d folds, want 3", len(folds))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	f := sampleFrame()
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Cols(), f.Cols()) || g.Len() != f.Len() {
		t.Fatal("JSONL round trip changed shape")
	}
	for i := 0; i < f.Len(); i++ {
		if !reflect.DeepEqual(g.Row(i), f.Row(i)) {
			t.Errorf("row %d differs", i)
		}
	}
}

func TestJSONLFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frame.jsonl")
	f := sampleFrame()
	if err := f.SaveJSONL(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() {
		t.Error("file round trip lost rows")
	}
}

func TestJSONLRejectsBadInput(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString(`{"format":"other","columns":["a"]}` + "\n")); err == nil {
		t.Error("wrong format accepted")
	}
	bad := `{"format":"apollo-frame-v1","columns":["a","b"]}` + "\n[1]\n"
	if _, err := ReadJSONL(bytes.NewBufferString(bad)); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadJSONL(bytes.NewBufferString("")); err == nil {
		t.Error("empty input accepted")
	}
}
