package raja

import (
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"

	"apollo/internal/instmix"
	"apollo/internal/platform"
	"apollo/internal/team"
)

func TestRangeSegment(t *testing.T) {
	s := RangeSegment{Begin: 3, End: 8}
	if s.Len() != 5 || s.At(0) != 3 || s.At(4) != 7 || s.Stride() != 1 {
		t.Errorf("RangeSegment misbehaves: len=%d at0=%d", s.Len(), s.At(0))
	}
	if (RangeSegment{Begin: 5, End: 5}).Len() != 0 {
		t.Error("empty range should have Len 0")
	}
	if (RangeSegment{Begin: 9, End: 2}).Len() != 0 {
		t.Error("inverted range should have Len 0")
	}
}

func TestStridedRangeSegment(t *testing.T) {
	s := StridedRangeSegment{Begin: 0, End: 10, Str: 3}
	want := []int{0, 3, 6, 9}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for k, w := range want {
		if s.At(k) != w {
			t.Errorf("At(%d) = %d, want %d", k, s.At(k), w)
		}
	}
	if (StridedRangeSegment{Begin: 0, End: 10, Str: 0}).Len() != 0 {
		t.Error("zero stride should yield empty segment")
	}
}

func TestListSegment(t *testing.T) {
	s := ListSegment{Indices: []int{7, 2, 9}}
	if s.Len() != 3 || s.At(1) != 2 || s.Stride() != 0 || s.Type() != ListIndex {
		t.Error("ListSegment misbehaves")
	}
}

func TestIndexSetAggregates(t *testing.T) {
	is := NewIndexSet(
		RangeSegment{Begin: 0, End: 10},
		ListSegment{Indices: []int{100, 200}},
	)
	if is.Len() != 12 {
		t.Errorf("Len = %d, want 12", is.Len())
	}
	if is.NumSegments() != 2 {
		t.Errorf("NumSegments = %d, want 2", is.NumSegments())
	}
	if is.Type() != MixedIndex {
		t.Errorf("Type = %v, want mixed", is.Type())
	}
	if is.Stride() != 1 {
		t.Errorf("Stride = %d, want 1 (first segment)", is.Stride())
	}
}

func TestIndexSetForEachOrder(t *testing.T) {
	is := NewIndexSet(
		RangeSegment{Begin: 2, End: 5},
		StridedRangeSegment{Begin: 10, End: 16, Str: 2},
		ListSegment{Indices: []int{99}},
	)
	want := []int{2, 3, 4, 10, 12, 14, 99}
	if got := is.Indices(); !reflect.DeepEqual(got, want) {
		t.Errorf("Indices() = %v, want %v", got, want)
	}
}

func TestIndexSetTypeClassification(t *testing.T) {
	if NewRange(0, 5).Type() != RangeIndex {
		t.Error("range set should classify as range")
	}
	if NewList([]int{1, 2}).Type() != ListIndex {
		t.Error("list set should classify as list")
	}
	if NewIndexSet().Type() != RangeIndex {
		t.Error("empty set defaults to range")
	}
}

func TestPolicyNames(t *testing.T) {
	for p := Policy(0); p < NumPolicies; p++ {
		name := p.String()
		got, ok := PolicyByName(name)
		if !ok || got != p {
			t.Errorf("PolicyByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := PolicyByName("cuda_exec"); ok {
		t.Error("unknown policy name accepted")
	}
}

func TestParamsString(t *testing.T) {
	if s := (Params{Policy: SeqExec}).String(); s != "seq_exec" {
		t.Errorf("seq params = %q", s)
	}
	if s := (Params{Policy: OmpParallelForExec, Chunk: 64}).String(); s != "omp_parallel_for_exec/chunk=64" {
		t.Errorf("omp params = %q", s)
	}
	if s := (Params{Policy: OmpParallelForExec}).String(); s != "omp_parallel_for_exec/chunk=default" {
		t.Errorf("default-chunk params = %q", s)
	}
}

func TestPolicySwitcherSeqAndOMPProduceSameResult(t *testing.T) {
	tm := team.New(4)
	defer tm.Close()
	is := NewIndexSet(
		RangeSegment{Begin: 0, End: 500},
		ListSegment{Indices: []int{600, 601, 602}},
	)
	run := func(p Params) []int64 {
		out := make([]int64, 1000)
		PolicySwitcher(p, tm, is, func(i int) {
			if i < len(out) {
				out[i] = int64(i) * 3
			}
		})
		return out
	}
	seq := run(Params{Policy: SeqExec})
	for _, chunk := range []int{0, 1, 7, 64, 10000} {
		omp := run(Params{Policy: OmpParallelForExec, Chunk: chunk})
		if !reflect.DeepEqual(seq, omp) {
			t.Errorf("chunk=%d: parallel result differs from sequential", chunk)
		}
	}
}

func TestPolicySwitcherNilTeamFallsBackToSeq(t *testing.T) {
	is := NewRange(0, 10)
	count := 0
	PolicySwitcher(Params{Policy: OmpParallelForExec}, nil, is, func(i int) { count++ })
	if count != 10 {
		t.Errorf("nil-team parallel executed %d iterations, want 10", count)
	}
}

func TestNewKernelAssignsUniqueIDs(t *testing.T) {
	a := NewKernel("a", nil)
	b := NewKernel("b", nil)
	if a.ID == b.ID || a.ID == 0 {
		t.Errorf("kernel IDs not unique: %d %d", a.ID, b.ID)
	}
	if a.Mix == nil {
		t.Error("nil mix should be replaced with empty mix")
	}
}

type fakeHooks struct {
	params   Params
	begins   int
	ends     int
	lastTime float64
	override bool
}

func (h *fakeHooks) Begin(k *Kernel, iset *IndexSet) (Params, bool) {
	h.begins++
	return h.params, h.override
}

func (h *fakeHooks) End(k *Kernel, iset *IndexSet, p Params, elapsedNS float64) {
	h.ends++
	h.lastTime = elapsedNS
}

func TestForAllCallsHooksAndRunsBody(t *testing.T) {
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := NewSimContext(clk, Params{Policy: SeqExec})
	h := &fakeHooks{params: Params{Policy: OmpParallelForExec}, override: true}
	ctx.Hooks = h
	k := NewKernel("test", instmix.NewMix().With(instmix.Add, 4))
	count := 0
	elapsed := ForAll(ctx, k, NewRange(0, 100), func(i int) { count++ })
	if count != 100 {
		t.Errorf("body ran %d times, want 100", count)
	}
	if h.begins != 1 || h.ends != 1 {
		t.Errorf("hooks called begin=%d end=%d, want 1/1", h.begins, h.ends)
	}
	if elapsed <= 0 || h.lastTime != elapsed {
		t.Errorf("elapsed %g not propagated to End (%g)", elapsed, h.lastTime)
	}
	if k.Invocations() != 1 {
		t.Errorf("Invocations = %d, want 1", k.Invocations())
	}
}

func TestForAllSimTimeFollowsPolicy(t *testing.T) {
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	mix := instmix.NewMix().With(instmix.Add, 8).With(instmix.Mulpd, 4)
	k := NewKernel("poly", mix)
	small := NewRange(0, 50)

	seqCtx := NewSimContext(clk, Params{Policy: SeqExec})
	ompCtx := NewSimContext(clk, Params{Policy: OmpParallelForExec})
	tSeq := ForAll(seqCtx, k, small, func(int) {})
	tOmp := ForAll(ompCtx, k, small, func(int) {})
	if tSeq >= tOmp {
		t.Errorf("small launch: seq (%g) should be faster than omp (%g)", tSeq, tOmp)
	}
}

func TestForAllWallClockPath(t *testing.T) {
	tm := team.New(2)
	defer tm.Close()
	ctx := &Context{Team: tm, Default: Params{Policy: OmpParallelForExec, Chunk: 16}}
	k := NewKernel("wall", nil)
	out := make([]int64, 1000)
	elapsed := ForAll(ctx, k, NewRange(0, 1000), func(i int) { out[i] = int64(i) })
	if elapsed < 0 {
		t.Errorf("negative wall elapsed %g", elapsed)
	}
}

func TestIndexSetLenMatchesIndicesProperty(t *testing.T) {
	f := func(b1, n1, b2, n2 uint8) bool {
		is := NewIndexSet(
			RangeSegment{Begin: int(b1), End: int(b1) + int(n1)},
			StridedRangeSegment{Begin: int(b2), End: int(b2) + int(n2), Str: 2},
		)
		return is.Len() == len(is.Indices())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// oddSegment is a custom Segment implementation exercising the generic
// fallback paths of ForEach and the parallel executor.
type oddSegment struct{ n int }

func (s oddSegment) Len() int        { return s.n }
func (s oddSegment) At(k int) int    { return 2*k + 1 }
func (s oddSegment) Stride() int     { return 2 }
func (s oddSegment) Type() IndexType { return ListIndex }

func TestCustomSegmentFallbackPaths(t *testing.T) {
	tm := team.New(2)
	defer tm.Close()
	is := NewIndexSet(oddSegment{n: 10})
	if is.Len() != 10 || is.Stride() != 2 {
		t.Fatal("custom segment metadata wrong")
	}
	want := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
	if got := is.Indices(); !reflect.DeepEqual(got, want) {
		t.Errorf("sequential fallback = %v", got)
	}
	hits := make([]int32, 20)
	PolicySwitcher(Params{Policy: OmpParallelForExec, Chunk: 3}, tm, is, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for _, w := range want {
		if hits[w] != 1 {
			t.Errorf("index %d executed %d times under parallel fallback", w, hits[w])
		}
	}
}
