package raja

import (
	"sync/atomic"
	"time"

	"apollo/internal/instmix"
	"apollo/internal/platform"
	"apollo/internal/team"
)

// kernelIDs allocates the loop_id feature: a unique address-like
// identifier per kernel launch site, as the paper derives from the
// kernel's code address.
var kernelIDs atomic.Uint64

// Kernel describes one forall launch site: its name (the func feature),
// its unique loop_id, and the instruction mix of its body (the paper's
// Dyninst-derived instruction features; see package instmix for the
// substitution).
type Kernel struct {
	Name string
	ID   uint64
	Mix  *instmix.Mix

	invocations atomic.Uint64
}

// NewKernel registers a kernel launch site with the given name and
// instruction mix and returns it. Kernels are typically package-level
// variables, one per source loop, like RAJA forall sites.
func NewKernel(name string, mix *instmix.Mix) *Kernel {
	if mix == nil {
		mix = instmix.NewMix()
	}
	return &Kernel{Name: name, ID: kernelIDs.Add(1), Mix: mix}
}

// Invocations returns how many times the kernel has been launched.
func (k *Kernel) Invocations() uint64 { return k.invocations.Load() }

// Hooks is the interface between ForAll and Apollo, corresponding to the
// apollo::begin / apollo::end calls the paper adds around each RAJA loop
// template. A Recorder implementation stores observed features and
// runtimes; a Tuner implementation evaluates a decision model and returns
// the execution parameters to use.
type Hooks interface {
	// Begin is called before the launch with the kernel and its index
	// set. If override is true, the returned Params replace the
	// context's default.
	Begin(k *Kernel, iset *IndexSet) (p Params, override bool)
	// End is called after the launch with the parameters used and the
	// measured (or modeled) elapsed time in nanoseconds.
	End(k *Kernel, iset *IndexSet, p Params, elapsedNS float64)
}

// Context carries the execution environment for ForAll: the worker team,
// the optional simulated clock, the Apollo hooks, and the static default
// execution parameters used when no hooks override them.
type Context struct {
	// Team executes parallel policies. May be nil in pure-simulation
	// contexts, in which case parallel launches run sequentially but
	// are still timed as parallel by the simulated clock.
	Team *team.Team
	// Sim, when non-nil, supplies kernel timings from the analytic
	// machine model instead of the wall clock (see package platform).
	Sim *platform.SimClock
	// Hooks is the installed Apollo component (recorder or tuner).
	// Nil means uninstrumented execution with Default parameters.
	Hooks Hooks
	// Default is the static parameter choice used when Hooks is nil or
	// declines to override — e.g. OpenMP-everywhere, the default the
	// paper compares against.
	Default Params
}

// NewSimContext returns a context that executes kernels under the analytic
// machine model with the given default parameters.
func NewSimContext(clock *platform.SimClock, def Params) *Context {
	return &Context{Sim: clock, Default: def}
}

// ForAll launches the kernel body over the index set, selecting execution
// parameters through the context's hooks, and returns the elapsed time in
// nanoseconds. It is the analogue of RAJA::forall with the paper's Apollo
// begin/end hooks inlined.
func ForAll(ctx *Context, k *Kernel, iset *IndexSet, body func(i int)) float64 {
	params := ctx.Default
	if ctx.Hooks != nil {
		if p, ok := ctx.Hooks.Begin(k, iset); ok {
			params = p
		}
	}
	inv := k.invocations.Add(1)

	var elapsed float64
	if ctx.Sim != nil {
		// Simulated platform: the body still executes (the
		// applications' numerics depend on it) but the reported time
		// is the machine model's prediction for the chosen policy.
		execSeq(iset, body)
		key := k.ID<<32 + inv
		elapsed = ctx.Sim.KernelTimeNS(k.Mix, iset.Len(), params.Policy.Parallel(), params.Chunk, key)
	} else {
		start := time.Now()
		PolicySwitcher(params, ctx.Team, iset, body)
		elapsed = float64(time.Since(start).Nanoseconds())
	}

	if ctx.Hooks != nil {
		ctx.Hooks.End(k, iset, params, elapsed)
	}
	return elapsed
}
