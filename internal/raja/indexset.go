// Package raja provides the RAJA-style performance-portability substrate
// this repository's applications are written against.
//
// As in the paper, kernels are single-source loop bodies handed to a
// generic ForAll execution method; the execution policy (sequential or
// parallel, plus the static-schedule chunk size) is decoupled from the body
// and can be fixed statically or chosen per launch by Apollo through the
// Hooks interface. The PolicySwitcher mirrors the paper's C++14
// apollo::policySwitcher: a switch statement that forwards the body to the
// distinct, statically compiled execution path for each policy.
package raja

import "fmt"

// IndexType classifies an IndexSet for the index_type feature of Table I.
type IndexType int

// Index set types, in increasing generality.
const (
	RangeIndex IndexType = iota // contiguous or strided ranges only
	ListIndex                   // explicit index lists only
	MixedIndex                  // both kinds of segment
)

// String returns the feature encoding name of the index type.
func (t IndexType) String() string {
	switch t {
	case RangeIndex:
		return "range"
	case ListIndex:
		return "list"
	case MixedIndex:
		return "mixed"
	}
	return fmt.Sprintf("indextype(%d)", int(t))
}

// Segment is one piece of an IndexSet's iteration space.
type Segment interface {
	// Len returns the number of indices in the segment.
	Len() int
	// At returns the k-th index, 0 <= k < Len().
	At(k int) int
	// Stride returns the stride between consecutive indices
	// (1 for contiguous ranges, 0 for irregular lists).
	Stride() int
	// Type reports whether the segment is a range or a list.
	Type() IndexType
}

// RangeSegment is a contiguous half-open range [Begin, End).
type RangeSegment struct {
	Begin, End int
}

// Len returns End-Begin (zero if the range is empty or inverted).
func (s RangeSegment) Len() int {
	if s.End <= s.Begin {
		return 0
	}
	return s.End - s.Begin
}

// At returns Begin+k.
func (s RangeSegment) At(k int) int { return s.Begin + k }

// Stride returns 1.
func (s RangeSegment) Stride() int { return 1 }

// Type returns RangeIndex.
func (s RangeSegment) Type() IndexType { return RangeIndex }

// StridedRangeSegment is a strided range: Begin, Begin+Str, ... < End.
type StridedRangeSegment struct {
	Begin, End, Str int
}

// Len returns the number of indices in the strided range.
func (s StridedRangeSegment) Len() int {
	if s.Str <= 0 || s.End <= s.Begin {
		return 0
	}
	return (s.End - s.Begin + s.Str - 1) / s.Str
}

// At returns Begin + k*Str.
func (s StridedRangeSegment) At(k int) int { return s.Begin + k*s.Str }

// Stride returns the segment stride.
func (s StridedRangeSegment) Stride() int { return s.Str }

// Type returns RangeIndex.
func (s StridedRangeSegment) Type() IndexType { return RangeIndex }

// ListSegment is an explicit list of indices, as produced for material
// regions or unstructured gather patterns.
type ListSegment struct {
	Indices []int
}

// Len returns the number of listed indices.
func (s ListSegment) Len() int { return len(s.Indices) }

// At returns the k-th listed index.
func (s ListSegment) At(k int) int { return s.Indices[k] }

// Stride returns 0: lists are irregular.
func (s ListSegment) Stride() int { return 0 }

// Type returns ListIndex.
func (s ListSegment) Type() IndexType { return ListIndex }

// IndexSet is an ordered collection of segments defining a kernel's
// iteration space, mirroring RAJA's IndexSet.
type IndexSet struct {
	segs []Segment
	len  int
}

// NewIndexSet builds an index set from the given segments.
func NewIndexSet(segs ...Segment) *IndexSet {
	s := &IndexSet{}
	for _, seg := range segs {
		s.Push(seg)
	}
	return s
}

// NewRange returns an index set holding the single range [begin, end).
func NewRange(begin, end int) *IndexSet {
	return NewIndexSet(RangeSegment{Begin: begin, End: end})
}

// NewList returns an index set holding the single explicit index list.
func NewList(indices []int) *IndexSet {
	return NewIndexSet(ListSegment{Indices: indices})
}

// Push appends a segment.
func (s *IndexSet) Push(seg Segment) {
	s.segs = append(s.segs, seg)
	s.len += seg.Len()
}

// Len returns the total number of indices, the paper's num_indices feature.
func (s *IndexSet) Len() int { return s.len }

// NumSegments returns the number of segments, the num_segments feature.
func (s *IndexSet) NumSegments() int { return len(s.segs) }

// Segment returns the i-th segment.
func (s *IndexSet) Segment(i int) Segment { return s.segs[i] }

// Stride returns a representative stride for the stride feature: the
// stride of the first segment (0 for an empty set).
func (s *IndexSet) Stride() int {
	if len(s.segs) == 0 {
		return 0
	}
	return s.segs[0].Stride()
}

// Type classifies the set for the index_type feature.
func (s *IndexSet) Type() IndexType {
	if len(s.segs) == 0 {
		return RangeIndex
	}
	t := s.segs[0].Type()
	for _, seg := range s.segs[1:] {
		if seg.Type() != t {
			return MixedIndex
		}
	}
	return t
}

// ForEach applies body to every index sequentially, in segment order.
func (s *IndexSet) ForEach(body func(i int)) {
	for _, seg := range s.segs {
		switch sg := seg.(type) {
		case RangeSegment:
			for i := sg.Begin; i < sg.End; i++ {
				body(i)
			}
		case StridedRangeSegment:
			for i := sg.Begin; i < sg.End; i += sg.Str {
				body(i)
			}
		case ListSegment:
			for _, i := range sg.Indices {
				body(i)
			}
		default:
			n := seg.Len()
			for k := 0; k < n; k++ {
				body(seg.At(k))
			}
		}
	}
}

// Indices returns every index of the set in iteration order. It is
// intended for tests and debugging, not hot paths.
func (s *IndexSet) Indices() []int {
	out := make([]int, 0, s.len)
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}
