package raja

import (
	"fmt"

	"apollo/internal/team"
)

// Policy selects the execution backend for a kernel launch, the paper's
// primary tuning parameter. RAJA exposes many policies; as in the paper's
// evaluation, the tuned choice is sequential versus OpenMP-style parallel.
type Policy int

// Execution policies, named after their RAJA counterparts.
const (
	// SeqExec runs segments and their iterations sequentially
	// (RAJA seq_segit_seq_exec).
	SeqExec Policy = iota
	// OmpParallelForExec runs each segment's iterations on the worker
	// team with a static schedule (RAJA seq_segit_omp_parallel_for_exec).
	OmpParallelForExec
	// NumPolicies is the number of selectable policies.
	NumPolicies
)

// String returns the RAJA-style policy name.
func (p Policy) String() string {
	switch p {
	case SeqExec:
		return "seq_exec"
	case OmpParallelForExec:
		return "omp_parallel_for_exec"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// PolicyByName parses a policy name as produced by String.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "seq_exec":
		return SeqExec, true
	case "omp_parallel_for_exec":
		return OmpParallelForExec, true
	}
	return 0, false
}

// Parallel reports whether the policy uses the worker team.
func (p Policy) Parallel() bool { return p == OmpParallelForExec }

// DefaultChunk is the sentinel chunk value selecting the OpenMP default
// schedule of ceil(N/threads).
const DefaultChunk = 0

// ChunkSizes is the grid of OpenMP static-schedule chunk sizes explored in
// the paper's training runs.
var ChunkSizes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Params is the full set of tunable execution parameters for one launch:
// the model writes a Params to the blackboard and ForAll consumes it, as
// RAJA::apollo::set_model_params does in the paper.
type Params struct {
	Policy Policy
	Chunk  int // static-schedule chunk; DefaultChunk = ceil(N/threads)
}

// String renders the params, e.g. "omp_parallel_for_exec/chunk=128".
func (p Params) String() string {
	if p.Policy.Parallel() {
		if p.Chunk == DefaultChunk {
			return p.Policy.String() + "/chunk=default"
		}
		return fmt.Sprintf("%s/chunk=%d", p.Policy, p.Chunk)
	}
	return p.Policy.String()
}

// PolicySwitcher dispatches the kernel body to the statically compiled
// execution path selected by params, mirroring the paper's
// apollo::policySwitcher. Each case is a distinct function, so the per-
// policy code remains separately optimizable — the property the paper
// preserves with C++ templates.
func PolicySwitcher(params Params, tm *team.Team, iset *IndexSet, body func(i int)) {
	switch params.Policy {
	case SeqExec:
		execSeq(iset, body)
	case OmpParallelForExec:
		execOMP(tm, iset, params.Chunk, body)
	default:
		panic(fmt.Sprintf("raja: unknown policy %v", params.Policy))
	}
}

// execSeq is the sequential execution path.
func execSeq(iset *IndexSet, body func(i int)) {
	iset.ForEach(body)
}

// execOMP is the parallel execution path: segments run in order (seq_segit)
// and each segment's iterations are spread across the team with a static
// chunked schedule.
func execOMP(tm *team.Team, iset *IndexSet, chunk int, body func(i int)) {
	if tm == nil {
		// No team configured (pure-simulation contexts): preserve
		// semantics by running sequentially.
		execSeq(iset, body)
		return
	}
	for si := 0; si < iset.NumSegments(); si++ {
		switch seg := iset.Segment(si).(type) {
		case RangeSegment:
			tm.ParallelFor(seg.Begin, seg.End, chunk, body)
		case StridedRangeSegment:
			n := seg.Len()
			tm.ParallelFor(0, n, chunk, func(k int) { body(seg.At(k)) })
		case ListSegment:
			ind := seg.Indices
			tm.ParallelFor(0, len(ind), chunk, func(k int) { body(ind[k]) })
		default:
			n := seg.Len()
			s := seg
			tm.ParallelFor(0, n, chunk, func(k int) { body(s.At(k)) })
		}
	}
}
