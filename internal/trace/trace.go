// Package trace records a per-launch timeline of kernel executions and
// tuning decisions, exportable in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto). It is the observability layer an
// application team uses to see *which* launches Apollo switched to
// sequential execution and what that did to the timeline — the
// per-kernel evidence behind the paper's Figs. 2 and 6.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"apollo/internal/raja"
)

// Event is one recorded kernel launch.
type Event struct {
	// Kernel is the launch site name.
	Kernel string
	// StartNS is the launch's start on the virtual (or wall) timeline.
	StartNS float64
	// DurationNS is the launch's duration.
	DurationNS float64
	// Iterations is the launch's trip count.
	Iterations int
	// Params is the parameter assignment used.
	Params raja.Params
	// Cat, when non-empty, overrides the exported trace-event category
	// (default "kernel"). The flight recorder uses "decision" for
	// tuning-overhead spans so they land on their own Perfetto track.
	Cat string
	// Args are extra key/value pairs merged into the exported args
	// (overriding the default iterations/params entries on key clash).
	Args map[string]string
}

// Tracer wraps an inner raja.Hooks and records every launch.
type Tracer struct {
	// Inner is the wrapped component (tuner, recorder, or nil).
	Inner raja.Hooks

	mu     sync.Mutex
	nowNS  float64
	events []Event
	limit  int
}

// New returns a tracer delegating to inner. A limit > 0 caps the number
// of retained events (the earliest are kept).
func New(inner raja.Hooks, limit int) *Tracer {
	return &Tracer{Inner: inner, limit: limit}
}

// Begin delegates to the inner hooks.
func (t *Tracer) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	if t.Inner != nil {
		return t.Inner.Begin(k, iset)
	}
	return raja.Params{}, false
}

// End records the launch on a contiguous virtual timeline and delegates.
func (t *Tracer) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
	t.mu.Lock()
	if t.limit <= 0 || len(t.events) < t.limit {
		t.events = append(t.events, Event{
			Kernel:     k.Name,
			StartNS:    t.nowNS,
			DurationNS: elapsedNS,
			Iterations: iset.Len(),
			Params:     p,
		})
	}
	t.nowNS += elapsedNS
	t.mu.Unlock()
	if t.Inner != nil {
		t.Inner.End(k, iset, p, elapsedNS)
	}
}

// Events returns a snapshot of the recorded launches.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of recorded launches.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Summary aggregates the trace per kernel: launches, total time, and the
// split between sequential and parallel decisions.
type Summary struct {
	Kernel    string
	Launches  int
	TotalNS   float64
	SeqCount  int
	ParCount  int
	MinIter   int
	MaxIter   int
	MeanIters float64
}

// Summarize aggregates events per kernel, sorted by descending total time.
func Summarize(events []Event) []Summary {
	byKernel := map[string]*Summary{}
	var order []string
	for _, e := range events {
		s := byKernel[e.Kernel]
		if s == nil {
			s = &Summary{Kernel: e.Kernel, MinIter: e.Iterations, MaxIter: e.Iterations}
			byKernel[e.Kernel] = s
			order = append(order, e.Kernel)
		}
		s.Launches++
		s.TotalNS += e.DurationNS
		s.MeanIters += float64(e.Iterations)
		if e.Params.Policy.Parallel() {
			s.ParCount++
		} else {
			s.SeqCount++
		}
		if e.Iterations < s.MinIter {
			s.MinIter = e.Iterations
		}
		if e.Iterations > s.MaxIter {
			s.MaxIter = e.Iterations
		}
	}
	out := make([]Summary, 0, len(byKernel))
	for _, name := range order {
		s := byKernel[name]
		if s.Launches > 0 {
			s.MeanIters /= float64(s.Launches)
		}
		out = append(out, *s)
	}
	// Insertion sort by total time descending (traces are small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TotalNS > out[j-1].TotalNS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event; timestamps in microseconds).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the events as a Chrome trace-event JSON array,
// loadable in chrome://tracing or Perfetto. Sequential and parallel
// launches land on separate tracks (tid 0/1) so the policy mix is
// visible at a glance.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		tid := 0
		if e.Params.Policy.Parallel() {
			tid = 1
		}
		cat := e.Cat
		if cat == "" {
			cat = "kernel"
		}
		args := map[string]string{
			"iterations": fmt.Sprintf("%d", e.Iterations),
			"params":     e.Params.String(),
		}
		for k, v := range e.Args {
			args[k] = v
		}
		out = append(out, chromeEvent{
			Name: e.Kernel,
			Cat:  cat,
			Ph:   "X",
			Ts:   e.StartNS / 1e3,
			Dur:  e.DurationNS / 1e3,
			PID:  1,
			TID:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SaveChromeTrace writes the trace to the named file.
func SaveChromeTrace(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, events); err != nil {
		f.Close() //apollo:errok Close on the error path; the write error is already being returned
		return err
	}
	return f.Close()
}
