package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"apollo/internal/instmix"
	"apollo/internal/platform"
	"apollo/internal/raja"
)

func tracedRun(t *testing.T, limit int) *Tracer {
	t.Helper()
	tr := New(nil, limit)
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{Policy: raja.SeqExec})
	ctx.Hooks = tr
	kSmall := raja.NewKernel("trace::small", instmix.NewMix().With(instmix.Add, 2))
	kBig := raja.NewKernel("trace::big", instmix.NewMix().With(instmix.Add, 2))
	for i := 0; i < 3; i++ {
		raja.ForAll(ctx, kSmall, raja.NewRange(0, 10), func(int) {})
	}
	ctxPar := raja.NewSimContext(clk, raja.Params{Policy: raja.OmpParallelForExec})
	ctxPar.Hooks = tr
	raja.ForAll(ctxPar, kBig, raja.NewRange(0, 100000), func(int) {})
	return tr
}

func TestTracerRecordsTimeline(t *testing.T) {
	tr := tracedRun(t, 0)
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("recorded %d events, want 4", len(events))
	}
	// Events must be contiguous: each starts where the previous ended.
	for i := 1; i < len(events); i++ {
		wantStart := events[i-1].StartNS + events[i-1].DurationNS
		if events[i].StartNS != wantStart {
			t.Errorf("event %d starts at %g, want %g", i, events[i].StartNS, wantStart)
		}
	}
	if events[0].Params.Policy != raja.SeqExec {
		t.Error("first event should be sequential")
	}
	if events[3].Params.Policy != raja.OmpParallelForExec {
		t.Error("last event should be parallel")
	}
	if events[3].Iterations != 100000 {
		t.Errorf("iterations = %d", events[3].Iterations)
	}
}

func TestTracerLimit(t *testing.T) {
	tr := tracedRun(t, 2)
	if tr.Len() != 2 {
		t.Errorf("limit not enforced: %d events", tr.Len())
	}
}

func TestSummarize(t *testing.T) {
	tr := tracedRun(t, 0)
	sums := Summarize(tr.Events())
	if len(sums) != 2 {
		t.Fatalf("got %d summaries", len(sums))
	}
	// Sorted by total time: the big parallel kernel first.
	if sums[0].Kernel != "trace::big" {
		t.Errorf("first summary = %s", sums[0].Kernel)
	}
	small := sums[1]
	if small.Launches != 3 || small.SeqCount != 3 || small.ParCount != 0 {
		t.Errorf("small summary wrong: %+v", small)
	}
	if small.MinIter != 10 || small.MaxIter != 10 || small.MeanIters != 10 {
		t.Errorf("iteration stats wrong: %+v", small)
	}
}

func TestChromeTraceFormat(t *testing.T) {
	tr := tracedRun(t, 0)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(decoded) != 4 {
		t.Fatalf("trace has %d entries", len(decoded))
	}
	first := decoded[0]
	if first["ph"] != "X" || first["name"] != "trace::small" {
		t.Errorf("first entry wrong: %v", first)
	}
	// Sequential and parallel launches use separate tracks.
	tids := map[float64]bool{}
	for _, e := range decoded {
		tids[e["tid"].(float64)] = true
	}
	if !tids[0] || !tids[1] {
		t.Error("expected both seq (tid 0) and parallel (tid 1) tracks")
	}
}

func TestSaveChromeTrace(t *testing.T) {
	tr := tracedRun(t, 0)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveChromeTrace(path, tr.Events()); err != nil {
		t.Fatal(err)
	}
}

func TestSaveChromeTraceUnwritablePath(t *testing.T) {
	tr := tracedRun(t, 0)
	// A path whose parent directory does not exist must surface the
	// filesystem error, not panic or silently drop the trace.
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "trace.json")
	if err := SaveChromeTrace(path, tr.Events()); err == nil {
		t.Fatal("SaveChromeTrace to a missing directory reported success")
	}
}

func TestSaveChromeTraceRoundTrip(t *testing.T) {
	tr := tracedRun(t, 0)
	events := tr.Events()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveChromeTrace(path, events); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("saved trace is not valid JSON: %v", err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("saved %d entries, want %d", len(decoded), len(events))
	}
	for i, e := range decoded {
		src := events[i]
		if e.Name != src.Kernel || e.Cat != "kernel" || e.Ph != "X" {
			t.Errorf("entry %d identity wrong: %+v", i, e)
		}
		// Timestamps are exported in microseconds.
		if e.Ts != src.StartNS/1e3 || e.Dur != src.DurationNS/1e3 {
			t.Errorf("entry %d timing: ts=%g dur=%g, want %g/%g", i, e.Ts, e.Dur, src.StartNS/1e3, src.DurationNS/1e3)
		}
		wantTID := 0
		if src.Params.Policy.Parallel() {
			wantTID = 1
		}
		if e.TID != wantTID {
			t.Errorf("entry %d on track %d, want %d", i, e.TID, wantTID)
		}
		if e.Args["iterations"] != fmt.Sprintf("%d", src.Iterations) || e.Args["params"] != src.Params.String() {
			t.Errorf("entry %d args wrong: %v", i, e.Args)
		}
	}
}

func TestTracerDelegates(t *testing.T) {
	inner := &countingHooks{}
	tr := New(inner, 0)
	k := raja.NewKernel("trace::delegate", nil)
	if p, ok := tr.Begin(k, raja.NewRange(0, 5)); !ok || p.Policy != raja.SeqExec {
		t.Error("Begin not delegated")
	}
	tr.End(k, raja.NewRange(0, 5), raja.Params{}, 10)
	if inner.begins != 1 || inner.ends != 1 {
		t.Error("inner hooks not called")
	}
}

type countingHooks struct{ begins, ends int }

func (h *countingHooks) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	h.begins++
	return raja.Params{Policy: raja.SeqExec}, true
}

func (h *countingHooks) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, ns float64) {
	h.ends++
}

// TestTracerConcurrentLaunchesRaceFree drives one tracer from many
// goroutines at once — the shape of an application tracing concurrent
// contexts — and verifies (under -race) that the timeline stays
// internally consistent: no lost events, no overlapping virtual spans.
func TestTracerConcurrentLaunchesRaceFree(t *testing.T) {
	tr := New(nil, 0)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := raja.NewKernel(fmt.Sprintf("trace::worker%d", w), nil)
			iset := raja.NewRange(0, 10)
			for i := 0; i < perWorker; i++ {
				p, _ := tr.Begin(k, iset)
				tr.End(k, iset, p, 5)
			}
		}(w)
	}
	wg.Wait()
	events := tr.Events()
	if len(events) != workers*perWorker {
		t.Fatalf("recorded %d events, want %d", len(events), workers*perWorker)
	}
	// The virtual timeline is contiguous regardless of interleaving:
	// every End advances the clock by its duration under the lock.
	starts := map[float64]bool{}
	for _, e := range events {
		if starts[e.StartNS] {
			t.Fatalf("two events share virtual start %g", e.StartNS)
		}
		starts[e.StartNS] = true
	}
}

// TestTracerLimitKeepsEarliest pins down which side of the trace the
// cap discards: the earliest events are retained (the startup timeline,
// which is what a bounded trace is for), later ones are dropped, and
// the virtual clock still advances past the cap.
func TestTracerLimitKeepsEarliest(t *testing.T) {
	tr := New(nil, 3)
	k := raja.NewKernel("trace::capped", nil)
	iset := raja.NewRange(0, 10)
	for i := 0; i < 10; i++ {
		tr.End(k, iset, raja.Params{}, float64(100 + i))
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("cap kept %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.DurationNS != float64(100+i) {
			t.Fatalf("event %d has duration %g: cap did not keep the earliest", i, e.DurationNS)
		}
	}
	// Still contiguous from zero.
	if events[0].StartNS != 0 || events[2].StartNS != 201 {
		t.Fatalf("starts %g, %g: timeline broken by cap", events[0].StartNS, events[2].StartNS)
	}
}

// TestChromeTraceMergesArgsAndCat covers the exporter extensions the
// flight recorder relies on: per-event category override and extra args
// merged over the defaults.
func TestChromeTraceMergesArgsAndCat(t *testing.T) {
	events := []Event{{
		Kernel:     "k",
		StartNS:    1000,
		DurationNS: 2000,
		Iterations: 7,
		Params:     raja.Params{Policy: raja.SeqExec},
		Cat:        "decision",
		Args:       map[string]string{"explored": "true", "params": "overridden"},
	}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Cat  string            `json:"cat"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded[0].Cat != "decision" {
		t.Errorf("cat = %q, want decision", decoded[0].Cat)
	}
	args := decoded[0].Args
	if args["iterations"] != "7" || args["explored"] != "true" || args["params"] != "overridden" {
		t.Errorf("args not merged: %v", args)
	}
}
