// Package trainer closes Apollo's training loop. It tails a telemetry
// spool, aggregates sampled launch measurements into a sliding window,
// asks the drift detector whether the deployed champion still matches
// the machine, and — when it does not — retrains a challenger on the
// window and publishes it only if it would not regress the fleet:
// champion and challenger are both scored on a held-out slice of the
// telemetry by the measured runtime of the variants they pick, and the
// challenger ships only when its predicted time is within MaxRegression
// of the champion's. A model service with no champion yet is
// bootstrapped from the first labelable window.
package trainer

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"apollo/internal/client"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/drift"
	"apollo/internal/features"
	"apollo/internal/looptrace"
	"apollo/internal/registry"
)

// Cursor is the trainer's telemetry input: anything that yields the
// rows appended since the previous poll. *telemetry.Cursor tails one
// spool; fleet.MergedCursor unions a whole fleet's spools so the
// trainer learns from every replica's clients at once (collective
// training).
type Cursor interface {
	Poll() (*dataset.Frame, error)
}

// Publisher is where champions live: the trainer reads the current one
// and pushes challengers. Implementations wrap the HTTP client (a
// trainer daemon beside the service) or a registry directly (in-process
// tests, single-binary deployments).
type Publisher interface {
	// Champion returns the current model and version for name, or
	// (nil, 0, nil) when none has ever been published.
	Champion(name string) (*core.Model, int, error)
	// Publish installs m as the new current version of name.
	Publish(name string, m *core.Model) (int, error)
}

// LineagePublisher is the provenance-aware extension of Publisher: a
// publish that also carries the lineage block describing how the model
// was produced. The trainer type-asserts for it so plain Publisher
// implementations (test fakes, older embeddings) keep working — they
// just publish without provenance.
type LineagePublisher interface {
	PublishLineage(name string, m *core.Model, lin *core.Lineage) (int, error)
}

// publish routes through PublishLineage when the publisher supports it.
func publish(p Publisher, name string, m *core.Model, lin *core.Lineage) (int, error) {
	if lp, ok := p.(LineagePublisher); ok && lin != nil {
		return lp.PublishLineage(name, m, lin)
	}
	return p.Publish(name, m)
}

// NewClientPublisher publishes through a model-service client.
func NewClientPublisher(c *client.Client) Publisher { return clientPublisher{c} }

type clientPublisher struct{ c *client.Client }

func (p clientPublisher) Champion(name string) (*core.Model, int, error) {
	got, err := p.c.Fetch(name)
	if errors.Is(err, client.ErrNotFound) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	return got.Model, got.Version, nil
}

func (p clientPublisher) Publish(name string, m *core.Model) (int, error) {
	return p.c.Push(name, m)
}

func (p clientPublisher) PublishLineage(name string, m *core.Model, lin *core.Lineage) (int, error) {
	return p.c.PushLineage(name, m, lin)
}

// NewRegistryPublisher publishes straight into an in-process registry.
func NewRegistryPublisher(reg *registry.Registry) Publisher { return registryPublisher{reg} }

type registryPublisher struct{ reg *registry.Registry }

func (p registryPublisher) Champion(name string) (*core.Model, int, error) {
	e, ok := p.reg.Get(name)
	if !ok {
		return nil, 0, nil
	}
	return e.Model, e.Version, nil
}

func (p registryPublisher) Publish(name string, m *core.Model) (int, error) {
	e, err := p.reg.Publish(name, m)
	if err != nil {
		return 0, err
	}
	return e.Version, nil
}

func (p registryPublisher) PublishLineage(name string, m *core.Model, lin *core.Lineage) (int, error) {
	e, err := p.reg.PublishLineage(name, m, lin)
	if err != nil {
		return 0, err
	}
	return e.Version, nil
}

// Config tunes a Trainer; zero values pick defaults.
type Config struct {
	// Name is the model's registry name (required).
	Name string
	// Param is the tuning parameter to train (default ExecutionPolicy).
	Param core.Parameter
	// Schema is the telemetry feature schema (required).
	Schema *features.Schema
	// Drift configures the staleness tripwire.
	Drift drift.Config
	// MaxWindowRows bounds the telemetry window; the oldest rows fall
	// off (default 100000).
	MaxWindowRows int
	// Holdout is the fraction of labeled vectors held out to score
	// champion vs challenger (default 0.25, at least 1 vector).
	Holdout float64
	// MaxRegression is the tolerated predicted-time regression: the
	// challenger publishes when challengerNS <= championNS *
	// (1+MaxRegression) (default 0.02).
	MaxRegression float64
	// Seed fixes the holdout split (default 1).
	Seed uint64
	// Incumbents are additional champions the challenger must not
	// regress: in a fleet, one Publisher per replica, so a collectively
	// trained model publishes only when it beats (within MaxRegression)
	// every replica-local incumbent on the holdout — not just the
	// champion of the replica it happens to publish through. An
	// incumbent that cannot be read (replica down) is skipped with a log
	// line rather than blocking training; the health checker owns dead
	// replicas.
	Incumbents []Publisher
	// Train is passed through to core.Train.
	Train core.TrainConfig
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
	// ID names this trainer in lineage blocks (default "trainer"); a
	// daemon sets it to something host-unique so a published model says
	// which process produced it.
	ID string
	// Trace (optional) receives loop events — drift-fired,
	// retrain-start/end, duel, publish — correlated by the loop ID the
	// step mints when drift fires. A nil tracer disables emission.
	Trace *looptrace.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxWindowRows <= 0 {
		c.MaxWindowRows = 100000
	}
	if c.Holdout <= 0 || c.Holdout >= 1 {
		c.Holdout = 0.25
	}
	if c.MaxRegression <= 0 {
		c.MaxRegression = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.ID == "" {
		c.ID = "trainer"
	}
	return c
}

// Result reports what one Step did.
type Result struct {
	// NewRows is how many spool rows the step ingested.
	NewRows int
	// WindowRows is the telemetry window size after ingestion.
	WindowRows int
	// Trigger is the drift decision that caused a retrain (nil when the
	// champion still matches the telemetry).
	Trigger *drift.Trigger
	// Retrained reports that a challenger was trained this step.
	Retrained bool
	// Published reports that the challenger (or bootstrap model) was
	// installed; Version is its registry version.
	Published bool
	Version   int
	// ChampionNS and ChallengerNS are the holdout predicted times that
	// decided a champion/challenger duel (0 when no duel ran).
	ChampionNS   float64
	ChallengerNS float64
	// Vetoed reports that a fleet incumbent (Config.Incumbents) beat the
	// challenger on the holdout, blocking the publish.
	Vetoed bool
	// LoopID identifies the retrain cycle this step started ("" when no
	// retrain ran); ParentVersion is the champion version the cycle
	// replaces (0 on bootstrap). Both are stamped into the published
	// model's lineage block.
	LoopID        string
	ParentVersion int
	// RetrainNS, DuelNS, and PublishNS are wall durations of the step's
	// stages (0 when the stage did not run), for the daemon's
	// apollo_loop_stage_seconds histograms.
	RetrainNS float64
	DuelNS    float64
	PublishNS float64
}

// Trainer drives the retrain loop for one model.
type Trainer struct {
	cfg    Config
	cursor Cursor
	pub    Publisher
	det    *drift.Detector
	window *dataset.Frame

	steps     atomic.Uint64
	triggers  atomic.Uint64
	retrains  atomic.Uint64
	publishes atomic.Uint64
	rejects   atomic.Uint64
	vetoes    atomic.Uint64
}

// New returns a trainer tailing cursor and publishing through pub.
func New(cursor Cursor, pub Publisher, cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		return nil, fmt.Errorf("trainer: Config.Name is required")
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("trainer: Config.Schema is required")
	}
	return &Trainer{
		cfg:    cfg,
		cursor: cursor,
		pub:    pub,
		det:    drift.NewDetector(cfg.Drift),
	}, nil
}

// Steps, Triggers, Retrains, Publishes, Rejects expose loop counters
// for the daemon's metrics endpoint.
func (t *Trainer) Steps() uint64     { return t.steps.Load() }
func (t *Trainer) Triggers() uint64  { return t.triggers.Load() }
func (t *Trainer) Retrains() uint64  { return t.retrains.Load() }
func (t *Trainer) Publishes() uint64 { return t.publishes.Load() }
func (t *Trainer) Rejects() uint64   { return t.rejects.Load() }

// Vetoes counts publishes blocked by a fleet incumbent.
func (t *Trainer) Vetoes() uint64 { return t.vetoes.Load() }

// Step runs one poll-check-retrain cycle. It never blocks on the spool:
// no new rows (or a window too thin to label) is a clean no-op result.
func (t *Trainer) Step() (*Result, error) {
	t.steps.Add(1)
	fresh, err := t.cursor.Poll()
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if fresh != nil {
		res.NewRows = fresh.Len()
		if t.window == nil {
			t.window = fresh
		} else {
			t.window.Append(fresh)
		}
		if over := t.window.Len() - t.cfg.MaxWindowRows; over > 0 {
			idx := make([]int, t.cfg.MaxWindowRows)
			for i := range idx {
				idx[i] = over + i
			}
			t.window = t.window.SelectRows(idx)
		}
	}
	if t.window == nil {
		return res, nil
	}
	res.WindowRows = t.window.Len()
	if res.NewRows == 0 {
		return res, nil
	}

	set, err := core.Label(t.window, t.cfg.Schema, t.cfg.Param)
	if err != nil {
		// Telemetry without counterfactuals (no vector observed under
		// two variants yet) cannot be labeled; keep accumulating.
		t.cfg.Logf("trainer: window not labelable yet: %v", err)
		return res, nil
	}

	champion, champVer, err := t.pub.Champion(t.cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("trainer: reading champion %s: %w", t.cfg.Name, err)
	}
	if champion == nil {
		// Bootstrap: no local champion to defend, ship the first model —
		// unless a fleet incumbent already beats it, in which case the
		// syncer pulling that incumbent is the better bootstrap.
		res.LoopID = looptrace.NewLoopID(t.cfg.Name, 0, time.Now().UnixNano())
		t.emit(looptrace.KindRetrainStart, res.LoopID, looptrace.Fields{Rows: int64(set.Len())})
		trainStart := time.Now()
		m, err := core.Train(set, t.cfg.Train)
		if err != nil {
			return nil, fmt.Errorf("trainer: bootstrap train: %w", err)
		}
		res.RetrainNS = float64(time.Since(trainStart))
		t.retrains.Add(1)
		res.Retrained = true
		t.emit(looptrace.KindRetrainEnd, res.LoopID,
			looptrace.Fields{Rows: int64(set.Len()), DurNS: res.RetrainNS})
		if by, incNS := t.incumbentVeto(drift.PredictedTimeNS(m, set), set); by != "" {
			t.vetoes.Add(1)
			res.Vetoed = true
			t.emit(looptrace.KindDuel, res.LoopID,
				looptrace.Fields{Peer: "veto", A: incNS, Rows: int64(set.Len())})
			t.cfg.Logf("trainer: %s: bootstrap vetoed by fleet incumbent %s (%.0fns)", t.cfg.Name, by, incNS)
			return res, nil
		}
		pubStart := time.Now()
		v, err := publish(t.pub, t.cfg.Name, m, t.lineage(res, set.Len(), 0, nil))
		if err != nil {
			return nil, fmt.Errorf("trainer: bootstrap publish: %w", err)
		}
		res.PublishNS = float64(time.Since(pubStart))
		t.publishes.Add(1)
		t.det.SetBaseline(drift.SnapshotSet(set))
		res.Published, res.Version = true, v
		t.emit(looptrace.KindPublish, res.LoopID,
			looptrace.Fields{Version: int32(v), DurNS: res.PublishNS})
		t.cfg.Logf("trainer: bootstrapped %s v%d from %d vectors", t.cfg.Name, v, set.Len())
		return res, nil
	}

	trig := t.det.Check(champion, set)
	if trig == nil {
		return res, nil
	}
	t.triggers.Add(1)
	res.Trigger = trig
	res.LoopID = looptrace.NewLoopID(t.cfg.Name, champVer, time.Now().UnixNano())
	res.ParentVersion = champVer
	t.emit(looptrace.KindDriftFired, res.LoopID, looptrace.Fields{
		Parent: int32(champVer), Rows: int64(trig.Rows),
		A: trig.MispredictRate, B: trig.Shift,
	})
	t.cfg.Logf("trainer: %s: %s", t.cfg.Name, trig)

	trainSet, holdout := split(set, t.cfg.Holdout, t.cfg.Seed)
	t.emit(looptrace.KindRetrainStart, res.LoopID,
		looptrace.Fields{Parent: int32(champVer), Rows: int64(trainSet.Len())})
	trainStart := time.Now()
	challenger, err := core.Train(trainSet, t.cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("trainer: retrain: %w", err)
	}
	res.RetrainNS = float64(time.Since(trainStart))
	t.retrains.Add(1)
	res.Retrained = true
	t.emit(looptrace.KindRetrainEnd, res.LoopID,
		looptrace.Fields{Parent: int32(champVer), Rows: int64(trainSet.Len()), DurNS: res.RetrainNS})
	duelStart := time.Now()
	res.ChampionNS = drift.PredictedTimeNS(champion, holdout)
	res.ChallengerNS = drift.PredictedTimeNS(challenger, holdout)
	res.DuelNS = float64(time.Since(duelStart))
	duel := looptrace.Fields{
		Parent: int32(champVer), Rows: int64(holdout.Len()), DurNS: res.DuelNS,
		A: res.ChampionNS, B: res.ChallengerNS,
	}
	if res.ChallengerNS > res.ChampionNS*(1+t.cfg.MaxRegression) {
		t.rejects.Add(1)
		duel.Peer = "reject"
		t.emit(looptrace.KindDuel, res.LoopID, duel)
		t.cfg.Logf("trainer: %s: challenger rejected (%.0fns vs champion %.0fns on %d holdout vectors)",
			t.cfg.Name, res.ChallengerNS, res.ChampionNS, holdout.Len())
		return res, nil
	}
	if by, incNS := t.incumbentVeto(res.ChallengerNS, holdout); by != "" {
		t.vetoes.Add(1)
		res.Vetoed = true
		duel.Peer = "veto"
		t.emit(looptrace.KindDuel, res.LoopID, duel)
		t.cfg.Logf("trainer: %s: challenger vetoed by fleet incumbent %s (%.0fns vs challenger %.0fns)",
			t.cfg.Name, by, incNS, res.ChallengerNS)
		return res, nil
	}
	duel.Peer = "publish"
	t.emit(looptrace.KindDuel, res.LoopID, duel)
	pubStart := time.Now()
	v, err := publish(t.pub, t.cfg.Name, challenger, t.lineage(res, trainSet.Len(), holdout.Len(), trig))
	if err != nil {
		return nil, fmt.Errorf("trainer: publish: %w", err)
	}
	res.PublishNS = float64(time.Since(pubStart))
	t.publishes.Add(1)
	t.det.SetBaseline(drift.SnapshotSet(set))
	res.Published, res.Version = true, v
	t.emit(looptrace.KindPublish, res.LoopID,
		looptrace.Fields{Version: int32(v), Parent: int32(champVer), DurNS: res.PublishNS})
	t.cfg.Logf("trainer: published %s v%d (%.0fns vs champion %.0fns on %d holdout vectors)",
		t.cfg.Name, v, res.ChallengerNS, res.ChampionNS, holdout.Len())
	return res, nil
}

// emit routes one loop event for this trainer's model through the
// configured tracer (a no-op without one).
func (t *Trainer) emit(kind looptrace.Kind, loop string, f looptrace.Fields) {
	t.cfg.Trace.Emit(kind, t.cfg.Name, loop, f)
}

// RowSourcer is implemented by cursors that can attribute their rows to
// upstream sources (fleet.MergedCursor reports cumulative rows per
// replica spool); lineage sample counts use it when available.
type RowSourcer interface {
	SourceRows() map[string]uint64
}

// lineage assembles the provenance block for a model about to publish.
func (t *Trainer) lineage(res *Result, windowRows, holdoutRows int, trig *drift.Trigger) *core.Lineage {
	lin := &core.Lineage{
		LoopID:        res.LoopID,
		ParentVersion: res.ParentVersion,
		Trainer:       t.cfg.ID,
		TrainedAtNS:   time.Now().UnixNano(),
		WindowRows:    windowRows,
		HoldoutRows:   holdoutRows,
	}
	if rs, ok := t.cursor.(RowSourcer); ok {
		counts := rs.SourceRows()
		if len(counts) > 0 {
			lin.SampleCounts = make(map[string]int, len(counts))
			for src, n := range counts {
				lin.SampleCounts[src] = int(n)
			}
		}
	} else {
		lin.SampleCounts = map[string]int{"local": windowRows}
	}
	if trig != nil {
		lin.DriftReason = trig.Reason
		lin.DriftMispredict = trig.MispredictRate
		lin.DriftShift = trig.Shift
		lin.DriftShiftFeature = trig.ShiftFeature
		lin.DuelChampionNS = res.ChampionNS
		lin.DuelChallengerNS = res.ChallengerNS
	} else {
		lin.DriftReason = "bootstrap"
	}
	return lin
}

// incumbentVeto scores every fleet incumbent's champion on eval and
// returns the index (as a label) and predicted time of the first one the
// challenger fails to beat within MaxRegression. An unreadable incumbent
// (its replica is down) is skipped: the publish gate protects against
// regressing live replicas, and dead ones are the health checker's job.
func (t *Trainer) incumbentVeto(challengerNS float64, eval *core.LabeledSet) (by string, incNS float64) {
	for i, inc := range t.cfg.Incumbents {
		champ, _, err := inc.Champion(t.cfg.Name)
		if err != nil {
			t.cfg.Logf("trainer: %s: incumbent %d unreadable, skipping: %v", t.cfg.Name, i, err)
			continue
		}
		if champ == nil {
			continue
		}
		ns := drift.PredictedTimeNS(champ, eval)
		if challengerNS > ns*(1+t.cfg.MaxRegression) {
			return fmt.Sprintf("#%d", i), ns
		}
	}
	return "", 0
}

// Run steps every interval until ctx is done, reporting step errors to
// Logf (one bad poll must not kill the daemon).
func (t *Trainer) Run(ctx context.Context, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if _, err := t.Step(); err != nil {
				t.cfg.Logf("trainer: step: %v", err)
			}
		}
	}
}

// split partitions a labeled set into train and holdout slices by a
// seeded shuffle. Both sides keep at least one vector; a set too small
// to split is used whole on both sides (in-sample scoring beats a
// single-vector holdout).
func split(set *core.LabeledSet, holdout float64, seed uint64) (train, eval *core.LabeledSet) {
	n := set.Len()
	if n < 4 {
		return set, set
	}
	h := int(float64(n) * holdout)
	if h < 1 {
		h = 1
	}
	if h >= n {
		h = n - 1
	}
	perm := dataset.NewRNG(seed).Perm(n)
	return subset(set, perm[h:]), subset(set, perm[:h])
}

// subset selects labeled vectors by index.
func subset(set *core.LabeledSet, idx []int) *core.LabeledSet {
	out := &core.LabeledSet{Schema: set.Schema, Param: set.Param}
	for _, i := range idx {
		out.X = append(out.X, set.X[i])
		out.Y = append(out.Y, set.Y[i])
		out.MeanTimes = append(out.MeanTimes, set.MeanTimes[i])
		out.Weights = append(out.Weights, set.Weights[i])
	}
	return out
}
