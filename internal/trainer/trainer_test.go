package trainer

import (
	"fmt"
	"testing"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/drift"
	"apollo/internal/dtree"
	"apollo/internal/features"
	"apollo/internal/raja"
	"apollo/internal/registry"
	"apollo/internal/telemetry"
)

// obs is one observed feature vector with measured runtimes per policy.
type obs struct {
	n            float64
	seqNS, ompNS float64
}

// telemetryRows converts observations into capture-layout rows (one row
// per policy, so every vector carries its counterfactual).
func telemetryRows(schema *features.Schema, observations []obs) (cols []string, rows [][]float64) {
	cols = core.RecordColumns(schema)
	ni := schema.Index(features.NumIndices)
	for _, o := range observations {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, len(cols))
			row[ni] = o.n
			row[len(cols)-3] = float64(pol)
			if pol == raja.SeqExec {
				row[len(cols)-1] = o.seqNS
			} else {
				row[len(cols)-1] = o.ompNS
			}
			rows = append(rows, row)
		}
	}
	return cols, rows
}

func appendObs(t *testing.T, dir string, observations []obs) {
	t.Helper()
	sp, err := telemetry.OpenSpool(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := telemetryRows(features.TableI(), observations)
	if err := sp.Append(cols, rows); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

func trainModel(t *testing.T, observations []obs) *core.Model {
	t.Helper()
	schema := features.TableI()
	cols, rows := telemetryRows(schema, observations)
	frame := dataset.NewFrame(cols...)
	for _, r := range rows {
		frame.AddRow(r)
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// crossover: seq wins below ~914 indices, omp above.
func crossover(ns ...float64) []obs {
	var out []obs
	for _, n := range ns {
		out = append(out, obs{n: n, seqNS: n * 10, ompNS: 8000 + n*10/8})
	}
	return out
}

func newTrainer(t *testing.T, dir string, pub Publisher, cfg Config) *Trainer {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "app/policy"
	}
	if cfg.Schema == nil {
		cfg.Schema = features.TableI()
	}
	tr, err := New(telemetry.NewCursor(dir), pub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrainerBootstrapsFirstChampion(t *testing.T) {
	dir := t.TempDir()
	reg := registry.New()
	tr := newTrainer(t, dir, NewRegistryPublisher(reg), Config{})

	// Empty spool: clean no-op.
	res, err := tr.Step()
	if err != nil || res.NewRows != 0 || res.Published {
		t.Fatalf("empty step = %+v, %v", res, err)
	}

	appendObs(t, dir, crossover(32, 256, 2048, 16384, 131072))
	res, err = tr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Published || !res.Retrained || res.Version != 1 {
		t.Fatalf("bootstrap step = %+v", res)
	}
	e, ok := reg.Get("app/policy")
	if !ok || e.Version != 1 {
		t.Fatalf("registry after bootstrap: %+v ok=%v", e, ok)
	}
	// The bootstrapped model learned the crossover.
	proj := e.Model.NewProjector(features.TableI())
	x := make([]float64, features.TableI().Len())
	x[features.TableI().Index(features.NumIndices)] = 64
	if proj.Predict(x) != int(raja.SeqExec) {
		t.Error("bootstrapped model picks omp for 64 indices")
	}

	// No new rows: nothing happens, champion stays.
	res, err = tr.Step()
	if err != nil || res.Published || res.Trigger != nil {
		t.Fatalf("idle step = %+v, %v", res, err)
	}
	if tr.Publishes() != 1 {
		t.Errorf("publishes = %d", tr.Publishes())
	}
}

func TestTrainerRetrainsOnDriftAndPublishes(t *testing.T) {
	dir := t.TempDir()
	reg := registry.New()
	// Stale champion: trained when omp won everywhere.
	var ompWins []obs
	for _, n := range []float64{32, 256, 2048, 16384, 131072} {
		ompWins = append(ompWins, obs{n: n, seqNS: n * 100, ompNS: n})
	}
	if _, err := reg.Publish("app/policy", trainModel(t, ompWins)); err != nil {
		t.Fatal(err)
	}

	tr := newTrainer(t, dir, NewRegistryPublisher(reg), Config{
		Drift: drift.Config{MinRows: 4},
	})
	// The machine now shows the true crossover: small kernels want seq.
	appendObs(t, dir, crossover(32, 64, 128, 16384, 131072))
	res, err := tr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trigger == nil || res.Trigger.Reason != "mispredict" {
		t.Fatalf("trigger = %v", res.Trigger)
	}
	if !res.Retrained || !res.Published || res.Version != 2 {
		t.Fatalf("retrain step = %+v", res)
	}
	if res.ChallengerNS > res.ChampionNS {
		t.Errorf("challenger %.0fns regressed champion %.0fns", res.ChallengerNS, res.ChampionNS)
	}
	if tr.Triggers() != 1 || tr.Retrains() != 1 || tr.Publishes() != 1 || tr.Rejects() != 0 {
		t.Errorf("counters: triggers=%d retrains=%d publishes=%d rejects=%d",
			tr.Triggers(), tr.Retrains(), tr.Publishes(), tr.Rejects())
	}
	e, _ := reg.Get("app/policy")
	proj := e.Model.NewProjector(features.TableI())
	x := make([]float64, features.TableI().Len())
	x[features.TableI().Index(features.NumIndices)] = 64
	if proj.Predict(x) != int(raja.SeqExec) {
		t.Error("published challenger still picks omp for 64 indices")
	}
}

func TestTrainerRejectsWorseChallenger(t *testing.T) {
	dir := t.TempDir()
	reg := registry.New()
	// Champion: always-omp (trained when omp won everywhere).
	var ompWins []obs
	for _, n := range []float64{10, 30, 50, 70, 90, 110} {
		ompWins = append(ompWins, obs{n: n, seqNS: n * 100, ompNS: n})
	}
	if _, err := reg.Publish("app/policy", trainModel(t, ompWins)); err != nil {
		t.Fatal(err)
	}

	// New telemetry: seq is marginally faster on six interleaved sizes
	// (champion mispredicts them -> drift fires), while omp remains
	// vastly faster on four others. A depth-1 challenger cannot separate
	// the interleaved classes and inherits the catastrophic seq picks,
	// so the holdout duel must keep the champion.
	window := []obs{
		{n: 10, seqNS: 1, ompNS: 2}, {n: 30, seqNS: 1, ompNS: 2},
		{n: 50, seqNS: 1, ompNS: 2}, {n: 70, seqNS: 1, ompNS: 2},
		{n: 90, seqNS: 1, ompNS: 2}, {n: 110, seqNS: 1, ompNS: 2},
		{n: 20, seqNS: 10000, ompNS: 100}, {n: 40, seqNS: 10000, ompNS: 100},
		{n: 60, seqNS: 10000, ompNS: 100}, {n: 80, seqNS: 10000, ompNS: 100},
	}
	appendObs(t, dir, window)
	tr := newTrainer(t, dir, NewRegistryPublisher(reg), Config{
		Drift: drift.Config{MinRows: 4},
		Train: core.TrainConfig{Tree: dtree.Config{MaxDepth: 1}},
	})
	res, err := tr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trigger == nil {
		t.Fatal("drift did not fire")
	}
	if !res.Retrained || res.Published {
		t.Fatalf("gate failed: %+v", res)
	}
	if res.ChallengerNS <= res.ChampionNS {
		t.Fatalf("test premise broken: challenger %.0fns vs champion %.0fns",
			res.ChallengerNS, res.ChampionNS)
	}
	if tr.Rejects() != 1 || tr.Publishes() != 0 {
		t.Errorf("counters: rejects=%d publishes=%d", tr.Rejects(), tr.Publishes())
	}
	if e, _ := reg.Get("app/policy"); e.Version != 1 {
		t.Errorf("registry advanced to v%d despite rejection", e.Version)
	}
}

// errPublisher is an incumbent whose replica is unreachable.
type errPublisher struct{}

func (errPublisher) Champion(string) (*core.Model, int, error) {
	return nil, 0, fmt.Errorf("dial tcp: connection refused")
}
func (errPublisher) Publish(string, *core.Model) (int, error) {
	return 0, fmt.Errorf("dial tcp: connection refused")
}

func TestTrainerIncumbentVetoesBootstrap(t *testing.T) {
	dir := t.TempDir()
	local := registry.New()
	// Another replica already holds a full-depth champion that separates
	// the interleaved classes perfectly.
	incumbent := registry.New()
	window := []obs{
		{n: 10, seqNS: 1, ompNS: 50}, {n: 30, seqNS: 1, ompNS: 50},
		{n: 50, seqNS: 1, ompNS: 50}, {n: 70, seqNS: 1, ompNS: 50},
		{n: 90, seqNS: 1, ompNS: 50}, {n: 110, seqNS: 1, ompNS: 50},
		{n: 20, seqNS: 10000, ompNS: 100}, {n: 40, seqNS: 10000, ompNS: 100},
		{n: 60, seqNS: 10000, ompNS: 100}, {n: 80, seqNS: 10000, ompNS: 100},
	}
	if _, err := incumbent.Publish("app/policy", trainModel(t, window)); err != nil {
		t.Fatal(err)
	}

	// The local replica has no champion and can only train a depth-1
	// bootstrap, which cannot separate the interleaved classes: the fleet
	// incumbent must veto it so the syncer bootstraps this replica
	// instead.
	appendObs(t, dir, window)
	tr := newTrainer(t, dir, NewRegistryPublisher(local), Config{
		Train:      core.TrainConfig{Tree: dtree.Config{MaxDepth: 1}},
		Incumbents: []Publisher{NewRegistryPublisher(incumbent)},
	})
	res, err := tr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Retrained || !res.Vetoed || res.Published {
		t.Fatalf("veto step = %+v", res)
	}
	if tr.Vetoes() != 1 || tr.Publishes() != 0 {
		t.Errorf("counters: vetoes=%d publishes=%d", tr.Vetoes(), tr.Publishes())
	}
	if local.Len() != 0 {
		t.Error("vetoed bootstrap was published anyway")
	}
}

func TestTrainerSkipsUnreachableIncumbent(t *testing.T) {
	dir := t.TempDir()
	local := registry.New()
	empty := registry.New() // a replica with no champion yet: no opinion
	appendObs(t, dir, crossover(32, 256, 2048, 16384, 131072))
	tr := newTrainer(t, dir, NewRegistryPublisher(local), Config{
		Incumbents: []Publisher{errPublisher{}, NewRegistryPublisher(empty)},
	})
	res, err := tr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Published || res.Vetoed {
		t.Fatalf("dead/empty incumbents blocked the bootstrap: %+v", res)
	}
	if tr.Vetoes() != 0 {
		t.Errorf("vetoes = %d", tr.Vetoes())
	}
}
