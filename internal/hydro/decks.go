package hydro

import "math"

// Deck is an input problem: a name, a material count, and an initial
// condition over the unit square. The material index supports the ARES
// proxy's mixed-material capability; single-material decks return 0.
type Deck struct {
	// Name identifies the deck (the problem_name feature).
	Name string
	// NumMaterials is the number of distinct materials in the problem.
	NumMaterials int
	// Init returns primitive variables and the material index at
	// normalized coordinates (x, y) in [0,1]^2.
	Init func(x, y float64) (rho, u, v, p float64, mat int)
}

// Sedov is the Sedov blast-wave problem: cold uniform background with a
// finite-radius energy deposition at the domain center. Run in all three
// applications in the paper.
func Sedov() Deck {
	return Deck{
		Name:         "sedov",
		NumMaterials: 1,
		Init: func(x, y float64) (float64, float64, float64, float64, int) {
			dx, dy := x-0.5, y-0.5
			if dx*dx+dy*dy < 0.05*0.05 {
				return 1, 0, 0, 200, 0
			}
			return 1, 0, 0, 1e-3, 0
		},
	}
}

// SedovMix is the ARES variant of Sedov with the full mixed-material
// capability: the energy source sits in a second material.
func SedovMix() Deck {
	d := Sedov()
	d.Name = "sedov"
	d.NumMaterials = 2
	base := d.Init
	d.Init = func(x, y float64) (float64, float64, float64, float64, int) {
		rho, u, v, p, _ := base(x, y)
		mat := 0
		if p > 1 {
			mat = 1
		}
		return rho, u, v, p, mat
	}
	return d
}

// Sod is Sod's shock tube: a left/right discontinuity in density and
// pressure, run in CleverLeaf.
func Sod() Deck {
	return Deck{
		Name:         "sod",
		NumMaterials: 1,
		Init: func(x, y float64) (float64, float64, float64, float64, int) {
			if x < 0.5 {
				return 1, 0, 0, 1, 0
			}
			return 0.125, 0, 0, 0.1, 0
		},
	}
}

// TriplePt is the triple-point shock interaction problem (Galera et al.):
// a high-pressure driver against two stacked low-pressure states of
// different density, generating strong vorticity and a complex refined
// region.
func TriplePt() Deck {
	return Deck{
		Name:         "triple_pt",
		NumMaterials: 1,
		Init: func(x, y float64) (float64, float64, float64, float64, int) {
			switch {
			case x < 1.0/7.0:
				return 1, 0, 0, 1, 0
			case y > 0.5:
				return 0.125, 0, 0, 0.1, 0
			default:
				return 1, 0, 0, 0.1, 0
			}
		},
	}
}

// Jet is a simple shaped-charge deck (ARES): a dense, high-pressure
// driver column that jets into a light ambient material, with a third
// liner material between them.
func Jet() Deck {
	return Deck{
		Name:         "jet",
		NumMaterials: 3,
		Init: func(x, y float64) (float64, float64, float64, float64, int) {
			inLiner := x >= 0.15 && x < 0.2 && y > 0.35 && y < 0.65
			switch {
			case x < 0.15 && y > 0.35 && y < 0.65:
				return 4, 0.5, 0, 40, 1 // driver
			case inLiner:
				return 8, 0, 0, 1, 2 // liner
			default:
				return 0.5, 0, 0, 0.5, 0 // ambient
			}
		},
	}
}

// Hotspot simulates the ignition of an inertial-confinement-fusion
// capsule (ARES): a hot central spot inside dense fuel, surrounded by an
// ablator shell and a light exterior.
func Hotspot() Deck {
	return Deck{
		Name:         "hotspot",
		NumMaterials: 4,
		Init: func(x, y float64) (float64, float64, float64, float64, int) {
			dx, dy := x-0.5, y-0.5
			r := math.Sqrt(dx*dx + dy*dy)
			switch {
			case r < 0.08:
				return 2, 0, 0, 120, 3 // hot spot
			case r < 0.2:
				return 10, 0, 0, 2, 2 // dense fuel
			case r < 0.26:
				return 4, 0, 0, 1, 1 // ablator shell
			default:
				return 0.2, 0, 0, 0.2, 0 // exterior gas
			}
		},
	}
}

// DeckByName returns the named deck.
func DeckByName(name string) (Deck, bool) {
	for _, d := range AllDecks() {
		if d.Name == name {
			return d, true
		}
	}
	return Deck{}, false
}

// AllDecks lists every deck defined by the package. SedovMix shares
// Sedov's name and is resolved per application, so it is excluded.
func AllDecks() []Deck {
	return []Deck{Sedov(), Sod(), TriplePt(), Jet(), Hotspot()}
}
