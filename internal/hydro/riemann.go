package hydro

import "math"

// RiemannState is a primitive-variable state for the exact Riemann
// solver: density, normal velocity, pressure.
type RiemannState struct {
	Rho, U, P float64
}

// SolveRiemann computes the star-region pressure and velocity of the
// exact Riemann problem between left and right states for an ideal gas,
// following the classic pressure-function Newton iteration (Toro,
// "Riemann Solvers and Numerical Methods for Fluid Dynamics", ch. 4).
// It is the reference solution the solver-validation tests compare the
// finite-volume scheme against.
func SolveRiemann(l, r RiemannState) (pstar, ustar float64) {
	g := Gamma
	cl := math.Sqrt(g * l.P / l.Rho)
	cr := math.Sqrt(g * r.P / r.Rho)

	// fK(p): velocity change across the left/right wave.
	f := func(p float64, s RiemannState, c float64) (float64, float64) {
		if p > s.P {
			// Shock: Rankine-Hugoniot.
			a := 2 / ((g + 1) * s.Rho)
			b := (g - 1) / (g + 1) * s.P
			q := math.Sqrt(a / (p + b))
			fv := (p - s.P) * q
			dv := q * (1 - (p-s.P)/(2*(p+b)))
			return fv, dv
		}
		// Rarefaction: isentropic relation.
		pr := p / s.P
		fv := 2 * c / (g - 1) * (math.Pow(pr, (g-1)/(2*g)) - 1)
		dv := 1 / (s.Rho * c) * math.Pow(pr, -(g+1)/(2*g))
		return fv, dv
	}

	// Two-rarefaction initial guess, bounded away from vacuum.
	du := r.U - l.U
	pGuess := math.Pow(
		(cl+cr-0.5*(g-1)*du)/(cl/math.Pow(l.P, (g-1)/(2*g))+cr/math.Pow(r.P, (g-1)/(2*g))),
		2*g/(g-1))
	p := math.Max(pGuess, 1e-8)

	for iter := 0; iter < 50; iter++ {
		fl, dfl := f(p, l, cl)
		fr, dfr := f(p, r, cr)
		delta := (fl + fr + du) / (dfl + dfr)
		pNew := p - delta
		if pNew <= 0 {
			pNew = 0.5 * p
		}
		if math.Abs(pNew-p) < 1e-12*(p+pNew) {
			p = pNew
			break
		}
		p = pNew
	}
	fl, _ := f(p, l, cl)
	fr, _ := f(p, r, cr)
	return p, 0.5*(l.U+r.U) + 0.5*(fr-fl)
}

// SampleRiemann evaluates the exact Riemann solution at similarity
// coordinate xi = x/t (the discontinuity sits at xi = 0 at t = 0).
func SampleRiemann(l, r RiemannState, xi float64) RiemannState {
	g := Gamma
	pstar, ustar := SolveRiemann(l, r)
	cl := math.Sqrt(g * l.P / l.Rho)
	cr := math.Sqrt(g * r.P / r.Rho)

	if xi <= ustar {
		// Left of the contact.
		if pstar > l.P {
			// Left shock.
			sl := l.U - cl*math.Sqrt((g+1)/(2*g)*pstar/l.P+(g-1)/(2*g))
			if xi <= sl {
				return l
			}
			rho := l.Rho * (pstar/l.P + (g-1)/(g+1)) / ((g-1)/(g+1)*pstar/l.P + 1)
			return RiemannState{Rho: rho, U: ustar, P: pstar}
		}
		// Left rarefaction.
		head := l.U - cl
		cstar := cl * math.Pow(pstar/l.P, (g-1)/(2*g))
		tail := ustar - cstar
		switch {
		case xi <= head:
			return l
		case xi >= tail:
			rho := l.Rho * math.Pow(pstar/l.P, 1/g)
			return RiemannState{Rho: rho, U: ustar, P: pstar}
		default:
			u := 2 / (g + 1) * (cl + (g-1)/2*l.U + xi)
			c := 2 / (g + 1) * (cl + (g-1)/2*(l.U-xi))
			rho := l.Rho * math.Pow(c/cl, 2/(g-1))
			p := l.P * math.Pow(c/cl, 2*g/(g-1))
			return RiemannState{Rho: rho, U: u, P: p}
		}
	}
	// Right of the contact (mirror of the left logic).
	if pstar > r.P {
		sr := r.U + cr*math.Sqrt((g+1)/(2*g)*pstar/r.P+(g-1)/(2*g))
		if xi >= sr {
			return r
		}
		rho := r.Rho * (pstar/r.P + (g-1)/(g+1)) / ((g-1)/(g+1)*pstar/r.P + 1)
		return RiemannState{Rho: rho, U: ustar, P: pstar}
	}
	head := r.U + cr
	cstar := cr * math.Pow(pstar/r.P, (g-1)/(2*g))
	tail := ustar + cstar
	switch {
	case xi >= head:
		return r
	case xi <= tail:
		rho := r.Rho * math.Pow(pstar/r.P, 1/g)
		return RiemannState{Rho: rho, U: ustar, P: pstar}
	default:
		u := 2 / (g + 1) * (-cr + (g-1)/2*r.U + xi)
		c := 2 / (g + 1) * (cr - (g-1)/2*(r.U-xi))
		rho := r.Rho * math.Pow(c/cr, 2/(g-1))
		p := r.P * math.Pow(c/cr, 2*g/(g-1))
		return RiemannState{Rho: rho, U: u, P: p}
	}
}
