package hydro

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConservedPressureRoundTrip(t *testing.T) {
	f := func(rhoRaw, uRaw, vRaw, pRaw uint16) bool {
		rho := 0.1 + float64(rhoRaw)/6553.5 // (0.1, 10.1)
		u := (float64(uRaw) - 32768) / 16384
		v := (float64(vRaw) - 32768) / 16384
		p := 0.01 + float64(pRaw)/655.35 // (0.01, 100)
		st := Conserved(rho, u, v, p)
		got := Pressure(st)
		return math.Abs(got-p) < 1e-9*math.Max(1, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPressureFloors(t *testing.T) {
	// Negative internal energy must floor, not go negative.
	st := State{Rho: 1, Mu: 10, Mv: 0, E: 1} // kinetic 50 > total 1
	if p := Pressure(st); p != PFloor {
		t.Errorf("pressure %g, want floor %g", p, PFloor)
	}
	if p := Pressure(State{}); p != PFloor {
		t.Errorf("zero state pressure %g", p)
	}
}

func TestSoundSpeedPositive(t *testing.T) {
	if c := SoundSpeed(1, 1); math.Abs(c-math.Sqrt(Gamma)) > 1e-12 {
		t.Errorf("SoundSpeed(1,1) = %g", c)
	}
	if c := SoundSpeed(0, -1); c <= 0 || math.IsNaN(c) {
		t.Errorf("floored sound speed invalid: %g", c)
	}
}

func TestFluxOfUniformStateIsAdvective(t *testing.T) {
	// A state at rest has only the pressure term in the momentum flux.
	st := Conserved(2, 0, 0, 3)
	fx := FluxX(st)
	if fx.Rho != 0 || math.Abs(fx.Mu-3) > 1e-12 || fx.Mv != 0 || fx.E != 0 {
		t.Errorf("rest-state x-flux = %+v", fx)
	}
	fy := FluxY(st)
	if fy.Rho != 0 || fy.Mu != 0 || math.Abs(fy.Mv-3) > 1e-12 || fy.E != 0 {
		t.Errorf("rest-state y-flux = %+v", fy)
	}
}

func TestRusanovConsistency(t *testing.T) {
	// F(s, s) must equal the physical flux of s (consistency).
	st := Conserved(1.4, 0.3, -0.2, 2.1)
	f := FluxX(st)
	r := RusanovX(st, st)
	if math.Abs(r.Rho-f.Rho) > 1e-12 || math.Abs(r.Mu-f.Mu) > 1e-12 ||
		math.Abs(r.Mv-f.Mv) > 1e-12 || math.Abs(r.E-f.E) > 1e-12 {
		t.Errorf("RusanovX not consistent: %+v vs %+v", r, f)
	}
	fy := FluxY(st)
	ry := RusanovY(st, st)
	if math.Abs(ry.Rho-fy.Rho) > 1e-12 || math.Abs(ry.E-fy.E) > 1e-12 {
		t.Errorf("RusanovY not consistent")
	}
}

func TestRusanovUpwindsContactProperty(t *testing.T) {
	// For a stationary jump, the Rusanov flux must carry mass from the
	// dense side toward the light side (dissipation acts down-gradient).
	l := Conserved(1, 0, 0, 1)
	r := Conserved(0.125, 0, 0, 0.1)
	f := RusanovX(l, r)
	// flux = -0.5*a*(rho_r - rho_l) > 0 since rho_r < rho_l.
	if f.Rho <= 0 {
		t.Errorf("expected positive mass flux toward the light side, got %g", f.Rho)
	}
}

func TestWaveSpeedsBoundFluxJacobian(t *testing.T) {
	st := Conserved(1, 2, -1, 3)
	ws := WaveSpeedX(st)
	u := st.Mu / st.Rho
	c := SoundSpeed(st.Rho, Pressure(st))
	if math.Abs(ws-(math.Abs(u)+c)) > 1e-12 {
		t.Errorf("WaveSpeedX = %g, want |u|+c = %g", ws, math.Abs(u)+c)
	}
}

func TestDtCFL(t *testing.T) {
	if dt := Dt(10, 0.01); math.Abs(dt-CFL*0.001) > 1e-15 {
		t.Errorf("Dt = %g", dt)
	}
	if dt := Dt(0, 0.01); math.Abs(dt-CFL*0.01) > 1e-15 {
		t.Errorf("Dt with zero speed = %g", dt)
	}
}

func TestDecksResolveAndCoverDomain(t *testing.T) {
	for _, d := range AllDecks() {
		got, ok := DeckByName(d.Name)
		if !ok || got.Name != d.Name {
			t.Errorf("DeckByName(%q) failed", d.Name)
		}
		if d.NumMaterials < 1 || d.NumMaterials > 4 {
			t.Errorf("%s: materials %d out of range", d.Name, d.NumMaterials)
		}
		// Every point must yield physical values and a valid material.
		for _, xy := range [][2]float64{{0.01, 0.01}, {0.5, 0.5}, {0.99, 0.99}, {0.2, 0.8}} {
			rho, _, _, p, mat := d.Init(xy[0], xy[1])
			if rho <= 0 || p <= 0 {
				t.Errorf("%s at %v: rho=%g p=%g", d.Name, xy, rho, p)
			}
			if mat < 0 || mat >= d.NumMaterials {
				t.Errorf("%s at %v: material %d out of range", d.Name, xy, mat)
			}
		}
	}
	if _, ok := DeckByName("nonexistent"); ok {
		t.Error("unknown deck resolved")
	}
}

func TestSedovDepositsCentralEnergy(t *testing.T) {
	d := Sedov()
	_, _, _, pc, _ := d.Init(0.5, 0.5)
	_, _, _, pa, _ := d.Init(0.1, 0.1)
	if pc <= pa*1000 {
		t.Errorf("central pressure %g not >> ambient %g", pc, pa)
	}
}

func TestSodIsLeftRightSplit(t *testing.T) {
	d := Sod()
	rl, _, _, pl, _ := d.Init(0.25, 0.5)
	rr, _, _, pr, _ := d.Init(0.75, 0.5)
	if rl <= rr || pl <= pr {
		t.Error("Sod left state must be denser and at higher pressure")
	}
}

func TestSedovMixHasTwoMaterials(t *testing.T) {
	d := SedovMix()
	if d.NumMaterials != 2 {
		t.Fatalf("materials = %d", d.NumMaterials)
	}
	_, _, _, _, matC := d.Init(0.5, 0.5)
	_, _, _, _, matA := d.Init(0.1, 0.1)
	if matC != 1 || matA != 0 {
		t.Errorf("center material %d, ambient %d", matC, matA)
	}
}

func TestHotspotLayers(t *testing.T) {
	d := Hotspot()
	mats := map[int]bool{}
	for r := 0.02; r < 0.5; r += 0.01 {
		_, _, _, _, m := d.Init(0.5+r, 0.5)
		mats[m] = true
	}
	if len(mats) != 4 {
		t.Errorf("hotspot radial scan found %d materials, want 4", len(mats))
	}
}
