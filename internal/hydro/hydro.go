// Package hydro holds the compressible-flow numerics shared by the
// proxy applications: the ideal-gas equation of state, 2D Euler fluxes
// with a Rusanov (local Lax-Friedrichs) Riemann solver, CFL timestep
// logic, and the standard test decks (Sedov, Sod, triple point, plus the
// ARES Jet and Hotspot configurations).
package hydro

import "math"

// Gamma is the ideal-gas ratio of specific heats used throughout.
const Gamma = 1.4

// Floors keep the explicit scheme out of unphysical states.
const (
	RhoFloor = 1e-8
	PFloor   = 1e-10
)

// State holds the conserved variables of one cell: density, x- and
// y-momentum, and total energy density.
type State struct {
	Rho, Mu, Mv, E float64
}

// Pressure returns the ideal-gas pressure of a conserved state.
func Pressure(s State) float64 {
	rho := math.Max(s.Rho, RhoFloor)
	kin := 0.5 * (s.Mu*s.Mu + s.Mv*s.Mv) / rho
	p := (Gamma - 1) * (s.E - kin)
	return math.Max(p, PFloor)
}

// SoundSpeed returns the adiabatic sound speed.
func SoundSpeed(rho, p float64) float64 {
	return math.Sqrt(Gamma * math.Max(p, PFloor) / math.Max(rho, RhoFloor))
}

// Conserved assembles a conserved state from primitive variables.
func Conserved(rho, u, v, p float64) State {
	return State{
		Rho: rho,
		Mu:  rho * u,
		Mv:  rho * v,
		E:   p/(Gamma-1) + 0.5*rho*(u*u+v*v),
	}
}

// FluxX returns the x-direction Euler flux of a state.
func FluxX(s State) State {
	rho := math.Max(s.Rho, RhoFloor)
	u := s.Mu / rho
	p := Pressure(s)
	return State{
		Rho: s.Mu,
		Mu:  s.Mu*u + p,
		Mv:  s.Mv * u,
		E:   (s.E + p) * u,
	}
}

// FluxY returns the y-direction Euler flux of a state.
func FluxY(s State) State {
	rho := math.Max(s.Rho, RhoFloor)
	v := s.Mv / rho
	p := Pressure(s)
	return State{
		Rho: s.Mv,
		Mu:  s.Mu * v,
		Mv:  s.Mv*v + p,
		E:   (s.E + p) * v,
	}
}

// WaveSpeedX returns the maximum x-direction signal speed of a state.
func WaveSpeedX(s State) float64 {
	rho := math.Max(s.Rho, RhoFloor)
	return math.Abs(s.Mu/rho) + SoundSpeed(rho, Pressure(s))
}

// WaveSpeedY returns the maximum y-direction signal speed of a state.
func WaveSpeedY(s State) float64 {
	rho := math.Max(s.Rho, RhoFloor)
	return math.Abs(s.Mv/rho) + SoundSpeed(rho, Pressure(s))
}

// RusanovX returns the Rusanov numerical flux through the x-face between
// left and right states.
func RusanovX(l, r State) State {
	fl, fr := FluxX(l), FluxX(r)
	a := math.Max(WaveSpeedX(l), WaveSpeedX(r))
	return State{
		Rho: 0.5*(fl.Rho+fr.Rho) - 0.5*a*(r.Rho-l.Rho),
		Mu:  0.5*(fl.Mu+fr.Mu) - 0.5*a*(r.Mu-l.Mu),
		Mv:  0.5*(fl.Mv+fr.Mv) - 0.5*a*(r.Mv-l.Mv),
		E:   0.5*(fl.E+fr.E) - 0.5*a*(r.E-l.E),
	}
}

// RusanovY returns the Rusanov numerical flux through the y-face between
// bottom and top states.
func RusanovY(b, t State) State {
	fb, ft := FluxY(b), FluxY(t)
	a := math.Max(WaveSpeedY(b), WaveSpeedY(t))
	return State{
		Rho: 0.5*(fb.Rho+ft.Rho) - 0.5*a*(t.Rho-b.Rho),
		Mu:  0.5*(fb.Mu+ft.Mu) - 0.5*a*(t.Mu-b.Mu),
		Mv:  0.5*(fb.Mv+ft.Mv) - 0.5*a*(t.Mv-b.Mv),
		E:   0.5*(fb.E+ft.E) - 0.5*a*(t.E-b.E),
	}
}

// CFL is the Courant number used by the explicit schemes.
const CFL = 0.35

// Dt returns the stable timestep for the given maximum signal speed and
// cell width.
func Dt(maxSpeed, dx float64) float64 {
	if maxSpeed <= 0 {
		return CFL * dx
	}
	return CFL * dx / maxSpeed
}
