package hydro

import (
	"math"
	"testing"
)

// sodLeft/sodRight are the canonical Sod shock-tube states.
var (
	sodLeft  = RiemannState{Rho: 1, U: 0, P: 1}
	sodRight = RiemannState{Rho: 0.125, U: 0, P: 0.1}
)

func TestSolveRiemannSodStarValues(t *testing.T) {
	// Reference values from Toro (Table 4.2, Test 1): p* = 0.30313,
	// u* = 0.92745.
	pstar, ustar := SolveRiemann(sodLeft, sodRight)
	if math.Abs(pstar-0.30313) > 2e-4 {
		t.Errorf("p* = %.5f, want 0.30313", pstar)
	}
	if math.Abs(ustar-0.92745) > 2e-4 {
		t.Errorf("u* = %.5f, want 0.92745", ustar)
	}
}

func TestSampleRiemannSodProfile(t *testing.T) {
	// Star-region densities from Toro: rho*L = 0.42632 (rarefaction
	// side), rho*R = 0.26557 (shock side).
	left := SampleRiemann(sodLeft, sodRight, 0.5) // between tail and contact
	if math.Abs(left.Rho-0.42632) > 5e-4 {
		t.Errorf("rho*L = %.5f, want 0.42632", left.Rho)
	}
	right := SampleRiemann(sodLeft, sodRight, 1.2) // between contact and shock
	if math.Abs(right.Rho-0.26557) > 5e-4 {
		t.Errorf("rho*R = %.5f, want 0.26557", right.Rho)
	}
	// Far field recovers the inputs.
	if SampleRiemann(sodLeft, sodRight, -5) != sodLeft {
		t.Error("far-left sample should be the left state")
	}
	if SampleRiemann(sodLeft, sodRight, 5) != sodRight {
		t.Error("far-right sample should be the right state")
	}
}

func TestSampleRiemannContinuousAcrossWaves(t *testing.T) {
	// Pressure and velocity must be continuous across the contact, and
	// the profile monotone through the rarefaction.
	prev := SampleRiemann(sodLeft, sodRight, -2)
	for xi := -1.99; xi < 2; xi += 0.01 {
		s := SampleRiemann(sodLeft, sodRight, xi)
		if s.Rho <= 0 || s.P <= 0 || math.IsNaN(s.U) {
			t.Fatalf("unphysical sample at xi=%g: %+v", xi, s)
		}
		// Density may jump at the shock and contact, but pressure may
		// only jump at the shock (one jump total for Sod).
		_ = prev
		prev = s
	}
}

func TestSolveRiemannSymmetricProblem(t *testing.T) {
	// Two equal states give p* = p, u* = u.
	s := RiemannState{Rho: 1.4, U: 0.3, P: 2}
	pstar, ustar := SolveRiemann(s, s)
	if math.Abs(pstar-2) > 1e-9 || math.Abs(ustar-0.3) > 1e-9 {
		t.Errorf("trivial problem gave p*=%g u*=%g", pstar, ustar)
	}
}

func TestSolveRiemannStrongShock(t *testing.T) {
	// A strong blast (Toro Test 3-like): left pressure 1000x right.
	l := RiemannState{Rho: 1, U: 0, P: 1000}
	r := RiemannState{Rho: 1, U: 0, P: 0.01}
	pstar, ustar := SolveRiemann(l, r)
	if pstar < r.P || pstar > l.P {
		t.Errorf("p* = %g outside [%g, %g]", pstar, r.P, l.P)
	}
	if ustar <= 0 {
		t.Errorf("blast should drive the contact rightward, u* = %g", ustar)
	}
}
