package client

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apollo/internal/features"
	"apollo/internal/registry"
	"apollo/internal/server"
)

// TestSourceServesStaleThroughOutageAndSwapsOnce drives a Source through
// a mid-run service outage: the cached model keeps serving (Refresh stays
// clean), the client's backoff bounds network traffic to one probe, and
// when the service comes back with a new version the source swaps exactly
// once — not once per poll.
func TestSourceServesStaleThroughOutageAndSwapsOnce(t *testing.T) {
	reg := registry.New()
	inner := server.New(reg).Handler()
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "upstream gone", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL, Options{InitialBackoff: time.Second, MaxBackoff: time.Minute})
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	c.nowFn = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	c.rand = func() float64 { return 1 } // pin jitter

	if v, err := c.Push("lulesh/policy", testModel(t, true)); err != nil || v != 1 {
		t.Fatalf("push v1: v=%d err=%v", v, err)
	}
	src := NewSource(c, features.TableI(), "lulesh/policy", "")
	if err := src.Refresh(); err != nil {
		t.Fatal(err)
	}
	if src.Swaps() != 1 {
		t.Fatalf("swaps after first refresh = %d, want 1", src.Swaps())
	}

	// The service vanishes mid-run. Every poll keeps succeeding on the
	// cached model; only the first one hits the network before backoff
	// arms.
	down.Store(true)
	fetchesBefore := c.Fetches()
	for i := 0; i < 5; i++ {
		if err := src.Refresh(); err != nil {
			t.Fatalf("refresh %d during outage: %v (stale model must keep serving)", i, err)
		}
	}
	if got := c.Fetches() - fetchesBefore; got != 1 {
		t.Errorf("network fetches during outage = %d, want 1 (backoff must gate the rest)", got)
	}
	if src.Projectors().Policy == nil {
		t.Fatal("stale projector dropped during outage")
	}
	if src.Swaps() != 1 {
		t.Fatalf("swaps during outage = %d, want still 1", src.Swaps())
	}

	// A retrain lands while the tuner cannot see the service.
	if _, err := reg.Publish("lulesh/policy", testModel(t, false)); err != nil {
		t.Fatal(err)
	}

	// Recovery: the backoff window expires, the next refresh fetches v2
	// and swaps; the refreshes after it are 304s and must not re-swap.
	down.Store(false)
	advance(2 * time.Second)
	for i := 0; i < 3; i++ {
		if err := src.Refresh(); err != nil {
			t.Fatalf("refresh %d after recovery: %v", i, err)
		}
	}
	if src.Swaps() != 2 {
		t.Fatalf("swaps after recovery = %d, want exactly 2", src.Swaps())
	}
	if got := c.Cached("lulesh/policy"); got == nil || got.Version != 2 {
		t.Fatalf("cached after recovery = %+v, want version 2", got)
	}
}
