package client

import (
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"apollo/internal/caliper"
	"apollo/internal/features"
	"apollo/internal/registry"
	"apollo/internal/server"
	"apollo/internal/telemetry"
)

// newFleetService spins up n in-process replicas, each with its own
// registry and telemetry spool, and returns the fleet client over them
// plus the per-replica handles for the test to mutate.
func newFleetService(t *testing.T, n int) (*FleetClient, map[string]*httptest.Server, []*registry.Registry) {
	t.Helper()
	replicas := map[string]string{}
	servers := map[string]*httptest.Server{}
	var regs []*registry.Registry
	for i := 0; i < n; i++ {
		reg := registry.New()
		dir, err := os.MkdirTemp("", "fleet-spool-*")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(dir) })
		srv := server.New(reg, server.WithTelemetryDir(dir))
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		id := string(rune('a' + i))
		replicas[id] = ts.URL
		servers[id] = ts
		regs = append(regs, reg)
	}
	f, err := NewFleet(replicas, Options{
		InitialBackoff: time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, servers, regs
}

func TestFleetFetchFailsOverToNextRingMember(t *testing.T) {
	f, servers, regs := newFleetService(t, 3)
	m := testModel(t, false)
	for _, reg := range regs {
		if _, err := reg.Publish("lulesh/policy", m); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f.Fetch("lulesh/policy")
	if err != nil || got == nil {
		t.Fatalf("healthy-fleet fetch: %v", err)
	}
	if f.Failovers() != 0 {
		t.Fatalf("healthy fleet recorded %d failovers", f.Failovers())
	}

	// Kill the key's owner and its first successor; fetches must keep
	// succeeding off the surviving member and the failover counter must
	// move once the dead primary is skipped.
	order := f.prefer("lulesh/policy", nil)
	for _, id := range order[:2] {
		servers[id].Close()
	}
	for i := 0; i < 10; i++ {
		if got, err = f.Fetch("lulesh/policy"); err != nil || got == nil {
			t.Fatalf("fetch %d with 2/3 replicas dead: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond) // let per-replica backoffs expire between tries
	}
	if f.Failovers() == 0 {
		t.Fatal("no failover recorded with the primary dead")
	}
}

func TestFleetPredictZeroFailuresThroughReplicaKill(t *testing.T) {
	f, servers, regs := newFleetService(t, 3)
	m := testModel(t, false)
	for _, reg := range regs {
		if _, err := reg.Publish("lulesh/policy", m); err != nil {
			t.Fatal(err)
		}
	}
	x := make([]float64, m.Schema.Len())
	x[0] = 1024
	// Warm the owner's cache, then kill all but one replica mid-stream:
	// every decision must still be answered (cached model or failover).
	if _, err := f.Predict("lulesh/policy", x); err != nil {
		t.Fatal(err)
	}
	order := f.prefer("lulesh/policy", nil)
	servers[order[0]].Close()
	servers[order[1]].Close()
	for i := 0; i < 1000; i++ {
		x[0] = float64(i % 17)
		if _, err := f.Predict("lulesh/policy", x); err != nil {
			t.Fatalf("predict %d failed during replica kill: %v", i, err)
		}
	}
}

// testBatch records a few launches and wraps the drained frame.
func testBatch(t *testing.T) *telemetry.Batch {
	t.Helper()
	rec := telemetry.NewRecorder(features.TableI(), caliper.New(), telemetry.Options{SampleEvery: 1})
	fillRecorder(rec, 4)
	f := rec.Drain(0)
	if f == nil {
		t.Fatal("recorder drained empty")
	}
	return telemetry.NewBatch("lulesh/policy", f)
}

func TestFleetPostTelemetryFailsOver(t *testing.T) {
	f, servers, _ := newFleetService(t, 3)
	b := testBatch(t)
	if err := f.PostTelemetry(b); err != nil {
		t.Fatalf("healthy-fleet post: %v", err)
	}
	order := f.prefer("lulesh/policy", nil)
	servers[order[0]].Close()
	servers[order[1]].Close()
	if err := f.PostTelemetry(b); err != nil {
		t.Fatalf("post with 2/3 replicas dead: %v", err)
	}
	for _, ts := range servers {
		ts.Close()
	}
	if err := f.PostTelemetry(b); err == nil {
		t.Fatal("post with the whole fleet dead reported success")
	}
	if f.Exhausted() == 0 {
		t.Fatal("whole-fleet outage did not count as exhausted")
	}
}

func TestFleetRingRemovalReroutesWithoutError(t *testing.T) {
	f, _, regs := newFleetService(t, 3)
	m := testModel(t, false)
	for _, reg := range regs {
		if _, err := reg.Publish("lulesh/policy", m); err != nil {
			t.Fatal(err)
		}
	}
	owner := f.Ring().Lookup("lulesh/policy")
	f.Ring().Remove(owner) // health checker took the owner out
	if got := f.Ring().Lookup("lulesh/policy"); got == owner || got == "" {
		t.Fatalf("ring still routes to removed owner (%q -> %q)", owner, got)
	}
	x := make([]float64, m.Schema.Len())
	if _, err := f.Predict("lulesh/policy", x); err != nil {
		t.Fatalf("predict after ring removal: %v", err)
	}
	if _, err := f.Fetch("lulesh/policy"); err != nil {
		t.Fatalf("fetch after ring removal: %v", err)
	}
	f.Ring().Add(owner) // recovery restores the member
	if f.Ring().Len() != 3 {
		t.Fatalf("ring has %d members after recovery, want 3", f.Ring().Len())
	}
}
