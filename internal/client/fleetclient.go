// FleetClient routes model fetches, predictions, and telemetry uploads
// across an N-replica model-service fleet through a consistent-hash
// ring, failing over to the next ring member when a replica is
// unreachable. Each replica keeps its own single-service Client (with
// its own model cache, decision memo, and backoff schedule), so a
// replica outage degrades exactly like a single-server outage did —
// serve the cached model, back off the network — except the very next
// refresh lands on a healthy ring member instead of waiting out the
// exponential schedule against a dead one.

package client

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"apollo/internal/fleet/hashring"
	"apollo/internal/telemetry"

	"apollo/internal/core"
)

// Service is the narrow model-service surface a Source or Uploader
// consumes: a single replica (*Client) or a ring-routed fleet
// (*FleetClient). The unexported timing methods keep the uploader's
// backoff schedule identical whichever implementation is behind it.
type Service interface {
	// Fetch returns the current model for name (possibly a cached copy
	// during an outage; see Client.Fetch).
	Fetch(name string) (*Cached, error)
	// PostTelemetry ships one batch to the service.
	PostTelemetry(b *telemetry.Batch) error

	now() time.Time
	backoff(failures int) time.Duration
}

// FleetClient fans a Client out across replicas behind a hash ring.
// It has no mutex: the replica set is immutable after New, membership
// lives in the ring's own copy-on-write table, and the failover
// counters are atomics.
type FleetClient struct {
	ring    *hashring.Ring
	clients map[string]*Client
	order   []string // sorted replica ids, the last-resort try order

	initialBackoff time.Duration
	maxBackoff     time.Duration
	nowFn          func() time.Time
	randFn         func() float64

	failovers atomic.Uint64 // requests answered by a non-primary replica
	exhausted atomic.Uint64 // requests that failed on every replica
}

// NewFleet returns a fleet client over the replicas (id -> base URL).
// All replicas start as ring members; a health checker may Add/Remove
// them through Ring() as probes succeed or fail. Options apply to every
// per-replica client.
func NewFleet(replicas map[string]string, opts Options) (*FleetClient, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("client: a fleet needs at least one replica")
	}
	f := &FleetClient{
		ring:           hashring.New(0),
		clients:        make(map[string]*Client, len(replicas)),
		initialBackoff: opts.InitialBackoff,
		maxBackoff:     opts.MaxBackoff,
		nowFn:          time.Now,
		randFn:         rand.Float64,
	}
	if f.initialBackoff <= 0 {
		f.initialBackoff = 100 * time.Millisecond
	}
	if f.maxBackoff <= 0 {
		f.maxBackoff = 30 * time.Second
	}
	for id, base := range replicas {
		if id == "" || base == "" {
			return nil, fmt.Errorf("client: fleet replica with empty id or URL")
		}
		f.clients[id] = New(base, opts)
		f.order = append(f.order, id)
		f.ring.Add(id)
	}
	sort.Strings(f.order)
	return f, nil
}

// Ring exposes ring membership: a health checker removes replicas whose
// probes fail and re-adds them when they recover. The replica's Client
// (and its cached models) stays resident either way, so a recovered
// replica resumes serving instantly.
func (f *FleetClient) Ring() *hashring.Ring { return f.ring }

// Replicas returns the sorted ids of every configured replica (ring
// members and currently-unhealthy ones alike).
func (f *FleetClient) Replicas() []string { return append([]string(nil), f.order...) }

// ReplicaClient returns the per-replica client for id (nil if unknown).
func (f *FleetClient) ReplicaClient(id string) *Client { return f.clients[id] }

// Failovers returns how many requests were answered by a replica other
// than the key's primary owner.
func (f *FleetClient) Failovers() uint64 { return f.failovers.Load() }

// Exhausted returns how many requests failed on every tried replica.
func (f *FleetClient) Exhausted() uint64 { return f.exhausted.Load() }

func (f *FleetClient) now() time.Time { return f.nowFn() }

// backoff mirrors Client.backoff for the uploader's retry schedule.
func (f *FleetClient) backoff(failures int) time.Duration {
	d := f.initialBackoff << uint(failures)
	if d > f.maxBackoff || d <= 0 {
		d = f.maxBackoff
	}
	return time.Duration(f.randFn() * float64(d))
}

// prefer returns the failover try order for key: the ring's distinct
// preference walk, then any configured replicas the ring no longer
// holds (all-unhealthy fleets still get a last-ditch attempt each).
func (f *FleetClient) prefer(key string, dst []string) []string {
	dst = f.ring.LookupN(key, len(f.order), dst)
	if len(dst) == len(f.order) {
		return dst
	}
	for _, id := range f.order {
		seen := false
		for _, d := range dst {
			if d == id {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, id)
		}
	}
	return dst
}

// Fetch resolves name through the ring with failover. A replica whose
// round trip failed (Client.Fetch hides this by returning its cached
// copy) is detected through its armed backoff and the next preference
// member is tried; the freshest cached copy across tried replicas is
// returned when every replica is unreachable.
func (f *FleetClient) Fetch(name string) (*Cached, error) {
	var stale *Cached
	var firstErr error
	primary := true
	for _, id := range f.prefer(name, make([]string, 0, len(f.order))) {
		c := f.clients[id]
		got, err := c.Fetch(name)
		if err == nil && !c.backoffActive(name) {
			if !primary {
				f.failovers.Add(1)
			}
			return got, nil
		}
		if got != nil && (stale == nil || got.Version > stale.Version) {
			stale = got
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		primary = false
	}
	f.exhausted.Add(1)
	if stale != nil {
		return stale, nil
	}
	return nil, firstErr
}

// Push publishes a model through the first reachable replica in ring
// order; the fleet's delta syncers propagate it to the rest.
func (f *FleetClient) Push(name string, m *core.Model) (int, error) {
	var firstErr error
	primary := true
	for _, id := range f.prefer(name, make([]string, 0, len(f.order))) {
		v, err := f.clients[id].Push(name, m)
		if err == nil {
			if !primary {
				f.failovers.Add(1)
			}
			return v, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		primary = false
	}
	f.exhausted.Add(1)
	return 0, firstErr
}

// PostTelemetry ships the batch to the first reachable replica in the
// batch's ring order, so one model's telemetry concentrates on its
// owner's spool and a dead owner degrades to the next ring member
// instead of stranding samples behind exponential backoff.
func (f *FleetClient) PostTelemetry(b *telemetry.Batch) error {
	var firstErr error
	primary := true
	for _, id := range f.prefer(b.Model, make([]string, 0, len(f.order))) {
		if err := f.clients[id].PostTelemetry(b); err == nil {
			if !primary {
				f.failovers.Add(1)
			}
			return nil
		} else if firstErr == nil {
			firstErr = err
		}
		primary = false
	}
	f.exhausted.Add(1)
	return firstErr
}

// Predict evaluates name's model on x through the key's owning replica.
// The routing decision is one lock-free ring lookup; the owner's Client
// then answers from its memoized decision cache. A replica that cannot
// answer (no model cached anywhere and its service unreachable) falls
// over to the other replicas off the hot path.
//
//apollo:hotpath
func (f *FleetClient) Predict(name string, x []float64) (int, error) {
	if c, ok := f.clients[f.ring.Lookup(name)]; ok {
		class, err := c.Predict(name, x)
		if err == nil {
			return class, nil
		}
	}
	return f.predictFailover(name, x)
}

// predictFailover retries a failed decision on every other replica.
//
//apollo:coldpath only reached when the owning replica has no cached model and cannot fetch one
func (f *FleetClient) predictFailover(name string, x []float64) (int, error) {
	owner := f.ring.Lookup(name)
	var firstErr error
	for _, id := range f.prefer(name, make([]string, 0, len(f.order))) {
		if id == owner {
			continue // already tried on the hot path
		}
		class, err := f.clients[id].Predict(name, x)
		if err == nil {
			f.failovers.Add(1)
			return class, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	f.exhausted.Add(1)
	if firstErr == nil {
		firstErr = fmt.Errorf("client: no replica could answer %s", name)
	}
	return 0, firstErr
}

// backoffActive reports whether name's backoff window is armed on c —
// the fleet client's tell that the copy Fetch just returned was served
// through an outage rather than a fresh round trip.
func (c *Client) backoffActive(name string) bool {
	st := c.state(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	return st.nextAttempt.After(c.now())
}
