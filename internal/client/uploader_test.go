package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"apollo/internal/features"
	"apollo/internal/raja"
	"apollo/internal/telemetry"
)

func TestBackoffFullJitter(t *testing.T) {
	c := New("http://unused", Options{
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     time.Second,
	})
	// rand=1 gives the full exponential window, capped at MaxBackoff.
	c.rand = func() float64 { return 1 }
	for i, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	} {
		if got := c.backoff(i); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i, got, want)
		}
	}
	// The shift saturates rather than overflowing into a tiny delay.
	if got := c.backoff(63); got != time.Second {
		t.Errorf("backoff(63) = %v, want cap", got)
	}
	// rand=0.5 spreads the delay across the window (full jitter).
	c.rand = func() float64 { return 0.5 }
	if got := c.backoff(1); got != 100*time.Millisecond {
		t.Errorf("jittered backoff(1) = %v, want half the 200ms window", got)
	}
}

func TestFetchUnknownModelIsErrNotFound(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	if _, err := c.Fetch("no/such"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

// fillRecorder records n launches with distinguishable sizes.
func fillRecorder(rec *telemetry.Recorder, n int) {
	k := raja.NewKernel("upload_test", nil)
	for i := 0; i < n; i++ {
		rec.Record(k, raja.NewRange(0, 10+i), raja.Params{Policy: raja.SeqExec}, float64(i))
	}
}

func TestUploaderFlushesBatches(t *testing.T) {
	var mu sync.Mutex
	var got []*telemetry.Batch
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/telemetry" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		var b telemetry.Batch
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			t.Error(err)
		}
		mu.Lock()
		got = append(got, &b)
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	rec := telemetry.NewRecorder(features.TableI(), nil, telemetry.Options{})
	u := NewUploader(New(ts.URL, Options{}), "app/policy", rec, UploaderOptions{})

	if err := u.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty flush posted a batch")
	}
	fillRecorder(rec, 3)
	if err := u.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Model != "app/policy" || len(got[0].Rows) != 3 {
		t.Fatalf("posted %+v", got)
	}
	if err := got[0].Validate(); err != nil {
		t.Errorf("posted batch invalid: %v", err)
	}
	if u.Batches() != 1 || u.Rows() != 3 {
		t.Errorf("counters: batches=%d rows=%d", u.Batches(), u.Rows())
	}
}

// TestUploaderRetainsPendingAcrossOutage drives the uploader through a
// server outage: failed uploads keep the rows, arm the backoff (no
// network attempts inside the window), and the next attempt after
// recovery delivers everything in one batch.
func TestUploaderRetainsPendingAcrossOutage(t *testing.T) {
	var down sync.Map // "down" key present => 503
	var rows int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, bad := down.Load("down"); bad {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		var b telemetry.Batch
		json.NewDecoder(r.Body).Decode(&b)
		mu.Lock()
		rows += len(b.Rows)
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	c := New(ts.URL, Options{InitialBackoff: time.Minute})
	c.rand = func() float64 { return 1 }
	now := time.Now()
	var nmu sync.Mutex
	c.nowFn = func() time.Time { nmu.Lock(); defer nmu.Unlock(); return now }

	rec := telemetry.NewRecorder(features.TableI(), nil, telemetry.Options{})
	u := NewUploader(c, "app/policy", rec, UploaderOptions{})

	down.Store("down", true)
	fillRecorder(rec, 2)
	if err := u.Flush(); err == nil {
		t.Fatal("flush against a down service reported success")
	}
	// Inside the backoff window: more samples accumulate, no network.
	n := c.Fetches()
	fillRecorder(rec, 3)
	if err := u.Flush(); err != nil {
		t.Fatalf("backoff flush should be silent, got %v", err)
	}
	if c.Fetches() != n {
		t.Error("flush inside backoff window touched the network")
	}

	// Service recovers, window passes: one batch carries all 5 rows.
	down.Delete("down")
	nmu.Lock()
	now = now.Add(2 * time.Minute)
	nmu.Unlock()
	if err := u.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if rows != 5 {
		t.Errorf("service received %d rows, want 5", rows)
	}
	if u.Rows() != 5 {
		t.Errorf("uploader counted %d rows", u.Rows())
	}
}

func TestUploaderBoundsPendingDuringOutage(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{InitialBackoff: time.Nanosecond})
	c.rand = func() float64 { return 0 } // zero delay: every flush attempts
	rec := telemetry.NewRecorder(features.TableI(), nil, telemetry.Options{})
	u := NewUploader(c, "app/policy", rec, UploaderOptions{MaxPending: 4})

	for i := 0; i < 3; i++ {
		fillRecorder(rec, 3)
		u.Flush()
	}
	u.mu.Lock()
	pending := u.pending.Len()
	u.mu.Unlock()
	if pending != 4 {
		t.Errorf("pending = %d, want MaxPending 4", pending)
	}
	if u.Discarded() != 5 {
		t.Errorf("discarded = %d, want 5", u.Discarded())
	}
	// The newest rows survive: num_indices of the last fill (10,11,12).
	u.mu.Lock()
	last := u.pending.At(u.pending.Len()-1, features.NumIndices)
	u.mu.Unlock()
	if last != 12 {
		t.Errorf("newest pending row num_indices = %v, want 12", last)
	}
}

func TestUploaderStartFlushesOnShutdown(t *testing.T) {
	var rows int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b telemetry.Batch
		json.NewDecoder(r.Body).Decode(&b)
		mu.Lock()
		rows += len(b.Rows)
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()
	rec := telemetry.NewRecorder(features.TableI(), nil, telemetry.Options{})
	u := NewUploader(New(ts.URL, Options{}), "app/policy", rec, UploaderOptions{})

	ctx, cancel := context.WithCancel(context.Background())
	done := u.Start(ctx, time.Hour) // interval never fires in-test
	fillRecorder(rec, 2)
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if rows != 2 {
		t.Errorf("shutdown flush delivered %d rows, want 2", rows)
	}
}
