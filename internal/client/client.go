// Package client consumes the Apollo model service from inside an
// application process. It fetches models with conditional GETs (ETag /
// If-None-Match), compiles each fetched tree into its flat ctree form
// and installs the specialized predict closure behind an atomic pointer
// — every decision, first sight or not, is one lock-free map read plus a
// compiled array walk, with no per-vector memo to miss. Crucially for a
// tuner on an application's launch hot path the client also degrades
// gracefully: when the server is unreachable it serves the last fetched
// model, or nothing at all (the tuner then uses its base parameters),
// and retries on an exponential backoff schedule instead of hammering
// the network on every launch.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/core"
	"apollo/internal/ctree"
)

// ErrNotFound reports that the service has no model under the requested
// name. Callers bootstrapping a model (the continuous trainer publishing
// a first champion) test for it with errors.Is.
var ErrNotFound = errors.New("model not found")

// Cached is one fetched model version held in-process. Immutable.
type Cached struct {
	// Name is the registry name the model was fetched under.
	Name string
	// Version is the registry version.
	Version int
	// ETag is the server's entity tag, replayed in If-None-Match.
	ETag string
	// SchemaHash fingerprints the model's prediction contract.
	SchemaHash string
	// Model is the deserialized model.
	Model *core.Model
	// Compiled is the tree flattened at fetch time (nil only when the
	// compiler rejected it; predicts then fall back to the interpreted
	// walk).
	Compiled *ctree.Tree
	// Lineage is the provenance block from the fetched envelope (nil
	// for hand-published or legacy models); its loop ID lets the client
	// stamp swap events and telemetry batches with the retrain cycle
	// that produced the version it runs.
	Lineage *core.Lineage

	// predict is the specialized closure Compiled.Func built when this
	// version was installed — the one indirect call a hot decision makes.
	predict func(x []float64) int
}

// Options tunes a client; the zero value picks sensible defaults.
type Options struct {
	// HTTPClient overrides the transport (default: 5s-timeout client).
	HTTPClient *http.Client
	// InitialBackoff is the delay after the first failure (default 100ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential schedule (default 30s).
	MaxBackoff time.Duration
}

// Client talks to one model service.
type Client struct {
	base string
	hc   *http.Client

	initialBackoff time.Duration
	maxBackoff     time.Duration
	nowFn          func() time.Time // injectable for backoff tests
	rand           func() float64   // injectable jitter source in [0,1)

	// models is copy-on-write behind an atomic pointer: Predict reads it
	// on every launch decision, so the read path must not take mu. mu
	// serializes writers (map growth and backoff bookkeeping) only.
	mu     sync.Mutex //apollo:lockrank 10
	models atomic.Pointer[map[string]*modelState]

	fetches atomic.Uint64 // network round trips attempted
}

// modelState tracks one model name's cache and failure backoff.
type modelState struct {
	cur         atomic.Pointer[Cached]
	failures    int
	nextAttempt time.Time
}

// New returns a client for the service at base (e.g. "http://host:8080").
func New(base string, opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	}
	if opts.InitialBackoff <= 0 {
		opts.InitialBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 30 * time.Second
	}
	c := &Client{
		base:           base,
		hc:             opts.HTTPClient,
		initialBackoff: opts.InitialBackoff,
		maxBackoff:     opts.MaxBackoff,
		nowFn:          time.Now,
		rand:           rand.Float64,
	}
	c.models.Store(&map[string]*modelState{})
	return c
}

// Fetches returns how many network round trips the client has attempted
// (successful or not) — backoff keeps this bounded under outages.
func (c *Client) Fetches() uint64 { return c.fetches.Load() }

// state returns (creating if needed) the tracking record for name. The
// read path is one atomic load; a new name copies the map under mu.
func (c *Client) state(name string) *modelState {
	if st, ok := (*c.models.Load())[name]; ok {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := *c.models.Load()
	if st, ok := old[name]; ok {
		return st
	}
	next := make(map[string]*modelState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	st := &modelState{}
	next[name] = st
	c.models.Store(&next)
	return st
}

// Push publishes a model under name and returns its new version.
func (c *Client) Push(name string, m *core.Model) (int, error) {
	return c.PushLineage(name, m, nil)
}

// PushLineage is Push with a provenance block: lin (optional) rides in
// an envelope at version 0 (the service assigns the real version) and
// is persisted into the published artifact.
func (c *Client) PushLineage(name string, m *core.Model, lin *core.Lineage) (int, error) {
	var body []byte
	var err error
	if lin == nil {
		body, err = m.MarshalJSON()
	} else {
		env := core.WrapModel(name, 0, m)
		env.Lineage = lin
		body, err = env.MarshalJSON()
	}
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/models/"+name, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.fetches.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //apollo:errok best-effort error-body snippet; the status error is being built regardless
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("client: push %s: %s: %s", name, resp.Status, bytes.TrimSpace(data))
	}
	var out struct {
		Version int `json:"version"`
	}
	if err := unmarshal(data, &out); err != nil {
		return 0, err
	}
	return out.Version, nil
}

// Cached returns the in-process copy of name without touching the
// network, or nil if nothing has been fetched yet.
func (c *Client) Cached(name string) *Cached {
	return c.state(name).cur.Load()
}

// Fetch returns the current model for name, revalidating the in-process
// copy with a conditional GET. Behavior under failure:
//
//   - server answers 304: the cached copy is returned with no decode cost;
//   - network failure with a cached copy: the stale copy is returned
//     (err == nil — a tuner must keep launching) and the failure arms the
//     exponential backoff, so launches inside the backoff window skip the
//     network entirely;
//   - network failure with no cached copy: the error is returned and
//     backoff is armed the same way.
func (c *Client) Fetch(name string) (*Cached, error) {
	st := c.state(name)
	cur := st.cur.Load()

	c.mu.Lock()
	wait := st.nextAttempt.After(c.now())
	c.mu.Unlock()
	if wait {
		if cur != nil {
			return cur, nil
		}
		return nil, fmt.Errorf("client: %s unavailable, in backoff", name)
	}

	req, err := http.NewRequest(http.MethodGet, c.base+"/models/"+name, nil)
	if err != nil {
		return nil, err
	}
	if cur != nil && cur.ETag != "" {
		req.Header.Set("If-None-Match", cur.ETag)
	}
	c.fetches.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		c.fail(st)
		if cur != nil {
			return cur, nil
		}
		return nil, fmt.Errorf("client: fetching %s: %w", name, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		c.ok(st)
		return cur, nil
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			c.fail(st)
			if cur != nil {
				return cur, nil
			}
			return nil, err
		}
		env, err := core.ParseModelOrEnvelope(data)
		if err != nil {
			// The server sent garbage; treat as outage, keep serving.
			c.fail(st)
			if cur != nil {
				return cur, nil
			}
			return nil, err
		}
		version := env.Version
		if v, err := strconv.Atoi(resp.Header.Get("X-Apollo-Model-Version")); err == nil && v > 0 {
			version = v
		}
		next := &Cached{
			Name:       name,
			Version:    version,
			ETag:       resp.Header.Get("ETag"),
			SchemaHash: env.Model.SchemaHash(),
			Model:      env.Model,
			Lineage:    env.Lineage,
		}
		// Compile and specialize once per installed version, here on the
		// fetch (cold) path; every later Predict just calls the closure.
		if ct, err := env.Model.Compile(); err == nil {
			next.Compiled = ct
			next.predict = ct.Func()
		}
		st.cur.Store(next)
		c.ok(st)
		return next, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //apollo:errok best-effort drain so the connection can be reused
		c.fail(st)
		if cur != nil {
			return cur, nil
		}
		return nil, fmt.Errorf("client: fetching %s: %w", name, ErrNotFound)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //apollo:errok best-effort drain so the connection can be reused
		c.fail(st)
		if cur != nil {
			return cur, nil
		}
		return nil, fmt.Errorf("client: fetching %s: %s", name, resp.Status)
	}
}

// now reads the injectable clock (the Service interface's timing hook).
func (c *Client) now() time.Time { return c.nowFn() }

// ok clears the backoff after a successful round trip.
func (c *Client) ok(st *modelState) {
	c.mu.Lock()
	st.failures = 0
	st.nextAttempt = time.Time{}
	c.mu.Unlock()
}

// fail arms the backoff after a failed round trip.
func (c *Client) fail(st *modelState) {
	c.mu.Lock()
	st.nextAttempt = c.now().Add(c.backoff(st.failures))
	if st.failures < 30 {
		st.failures++
	}
	c.mu.Unlock()
}

// backoff returns the delay after the failures-th consecutive failure:
// full-jitter exponential backoff, rand() * min(MaxBackoff,
// InitialBackoff<<failures). Spreading each delay uniformly over the
// exponential window keeps a fleet of clients that all lost the server
// at once from retrying in synchronized waves.
func (c *Client) backoff(failures int) time.Duration {
	d := c.initialBackoff << uint(failures)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	return time.Duration(c.rand() * float64(d))
}

// Predict evaluates the named model on a vector laid out by the model's
// own schema. The decision path never blocks on the network: it uses
// whatever model Fetch last cached, and errors only if no model has ever
// been fetched. Every decision — there is no warm-up and no per-vector
// memo to miss — costs one atomic map load plus the compiled tree walk
// installed at fetch time: no locks, no allocation (apollo-vet and the
// zero-alloc guard test both enforce this).
//
//apollo:hotpath
func (c *Client) Predict(name string, x []float64) (int, error) {
	var cur *Cached
	if st, ok := (*c.models.Load())[name]; ok {
		cur = st.cur.Load()
	}
	if cur == nil {
		var err error
		if cur, err = c.predictBootstrap(name); err != nil {
			return 0, err
		}
	}
	if len(x) != cur.Model.Schema.Len() {
		return 0, sizeMismatch(name, len(x), cur.Model.Schema.Len())
	}
	if cur.predict != nil {
		return cur.predict(x), nil
	}
	return cur.Model.Predict(x), nil
}

// PredictN evaluates the named model on a batch of vectors, writing
// classes into out (len(out) >= len(X)). One compiled walk amortizes the
// name resolution and closure dispatch over the whole batch, so the
// per-launch cost is below a single Predict — the API a tuner uses when
// it decides a vector of queued launches at once. Allocation-free.
//
//apollo:hotpath
func (c *Client) PredictN(name string, X [][]float64, out []int) error {
	var cur *Cached
	if st, ok := (*c.models.Load())[name]; ok {
		cur = st.cur.Load()
	}
	if cur == nil {
		var err error
		if cur, err = c.predictBootstrap(name); err != nil {
			return err
		}
	}
	want := cur.Model.Schema.Len()
	for _, x := range X {
		if len(x) != want {
			return sizeMismatch(name, len(x), want)
		}
	}
	if cur.Compiled != nil {
		cur.Compiled.PredictN(X, out)
		return nil
	}
	for i, x := range X {
		out[i] = cur.Model.Predict(x)
	}
	return nil
}

// predictBootstrap resolves the first decision for a model name: fetch
// it (or surface why we cannot). Every later launch hits the atomic
// model cache and never lands here.
//
//apollo:coldpath first decision per model name; steady-state launches read the atomic cache
func (c *Client) predictBootstrap(name string) (*Cached, error) {
	if cur := c.state(name).cur.Load(); cur != nil {
		return cur, nil
	}
	return c.Fetch(name)
}

// sizeMismatch builds the vector-layout error off the hot path.
//
//apollo:coldpath error construction for malformed input vectors
func sizeMismatch(name string, got, want int) error {
	return fmt.Errorf("client: vector has %d features, model %s wants %d", got, name, want)
}

// unmarshal decodes JSON with a context-rich error.
func unmarshal(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("client: decoding %q: %w", bytes.TrimSpace(data), err)
	}
	return nil
}
