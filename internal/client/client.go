// Package client consumes the Apollo model service from inside an
// application process. It fetches models with conditional GETs (ETag /
// If-None-Match), caches the deserialized tree in-process behind an
// atomic pointer, memoizes decisions per unique feature vector, and —
// crucially for a tuner on an application's launch hot path — degrades
// gracefully: when the server is unreachable the client serves the last
// fetched model, or nothing at all (the tuner then uses its base
// parameters), and retries on an exponential backoff schedule instead of
// hammering the network on every launch.
package client

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/core"
)

// ErrNotFound reports that the service has no model under the requested
// name. Callers bootstrapping a model (the continuous trainer publishing
// a first champion) test for it with errors.Is.
var ErrNotFound = errors.New("model not found")

// Cached is one fetched model version held in-process. Immutable.
type Cached struct {
	// Name is the registry name the model was fetched under.
	Name string
	// Version is the registry version.
	Version int
	// ETag is the server's entity tag, replayed in If-None-Match.
	ETag string
	// SchemaHash fingerprints the model's prediction contract.
	SchemaHash string
	// Model is the deserialized model.
	Model *core.Model
}

// Options tunes a client; the zero value picks sensible defaults.
type Options struct {
	// HTTPClient overrides the transport (default: 5s-timeout client).
	HTTPClient *http.Client
	// InitialBackoff is the delay after the first failure (default 100ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential schedule (default 30s).
	MaxBackoff time.Duration
}

// Client talks to one model service.
type Client struct {
	base string
	hc   *http.Client

	initialBackoff time.Duration
	maxBackoff     time.Duration
	nowFn          func() time.Time // injectable for backoff tests
	rand           func() float64   // injectable jitter source in [0,1)

	// models is copy-on-write behind an atomic pointer: Predict reads it
	// on every launch decision, so the read path must not take mu. mu
	// serializes writers (map growth and backoff bookkeeping) only.
	mu     sync.Mutex //apollo:lockrank 10
	models atomic.Pointer[map[string]*modelState]

	// memo is the published decision memo (ETag+vector -> class),
	// copy-on-write behind an atomic pointer so the Predict hit path
	// reads it without any lock. memoMu guards memoDirty, an overlay
	// batching new decisions; it is folded into the published map every
	// memoPromoteBatch entries, so the per-miss cost is a short mutex
	// and the per-hit cost is one atomic load.
	memoMu    sync.Mutex //apollo:lockrank 11
	memo      atomic.Pointer[map[string]int]
	memoDirty map[string]int

	fetches  atomic.Uint64 // network round trips attempted
	memoHits atomic.Uint64
}

// memoCap bounds the decision memo; on overflow it resets.
const memoCap = 8192

// memoPromoteBatch is how many unpublished decisions accumulate before
// the memo republishes. Batching keeps promotion cost amortized: a full
// map copy every N misses instead of every miss.
const memoPromoteBatch = 64

// modelState tracks one model name's cache and failure backoff.
type modelState struct {
	cur         atomic.Pointer[Cached]
	failures    int
	nextAttempt time.Time
}

// New returns a client for the service at base (e.g. "http://host:8080").
func New(base string, opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	}
	if opts.InitialBackoff <= 0 {
		opts.InitialBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 30 * time.Second
	}
	c := &Client{
		base:           base,
		hc:             opts.HTTPClient,
		initialBackoff: opts.InitialBackoff,
		maxBackoff:     opts.MaxBackoff,
		nowFn:          time.Now,
		rand:           rand.Float64,
		memoDirty:      map[string]int{},
	}
	memo := map[string]int{}
	c.memo.Store(&memo)
	c.models.Store(&map[string]*modelState{})
	return c
}

// Fetches returns how many network round trips the client has attempted
// (successful or not) — backoff keeps this bounded under outages.
func (c *Client) Fetches() uint64 { return c.fetches.Load() }

// MemoHits returns how many predictions the decision memo answered.
func (c *Client) MemoHits() uint64 { return c.memoHits.Load() }

// state returns (creating if needed) the tracking record for name. The
// read path is one atomic load; a new name copies the map under mu.
func (c *Client) state(name string) *modelState {
	if st, ok := (*c.models.Load())[name]; ok {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := *c.models.Load()
	if st, ok := old[name]; ok {
		return st
	}
	next := make(map[string]*modelState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	st := &modelState{}
	next[name] = st
	c.models.Store(&next)
	return st
}

// Push publishes a model under name and returns its new version.
func (c *Client) Push(name string, m *core.Model) (int, error) {
	body, err := m.MarshalJSON()
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/models/"+name, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.fetches.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("client: push %s: %s: %s", name, resp.Status, bytes.TrimSpace(data))
	}
	var out struct {
		Version int `json:"version"`
	}
	if err := unmarshal(data, &out); err != nil {
		return 0, err
	}
	return out.Version, nil
}

// Cached returns the in-process copy of name without touching the
// network, or nil if nothing has been fetched yet.
func (c *Client) Cached(name string) *Cached {
	return c.state(name).cur.Load()
}

// Fetch returns the current model for name, revalidating the in-process
// copy with a conditional GET. Behavior under failure:
//
//   - server answers 304: the cached copy is returned with no decode cost;
//   - network failure with a cached copy: the stale copy is returned
//     (err == nil — a tuner must keep launching) and the failure arms the
//     exponential backoff, so launches inside the backoff window skip the
//     network entirely;
//   - network failure with no cached copy: the error is returned and
//     backoff is armed the same way.
func (c *Client) Fetch(name string) (*Cached, error) {
	st := c.state(name)
	cur := st.cur.Load()

	c.mu.Lock()
	wait := st.nextAttempt.After(c.now())
	c.mu.Unlock()
	if wait {
		if cur != nil {
			return cur, nil
		}
		return nil, fmt.Errorf("client: %s unavailable, in backoff", name)
	}

	req, err := http.NewRequest(http.MethodGet, c.base+"/models/"+name, nil)
	if err != nil {
		return nil, err
	}
	if cur != nil && cur.ETag != "" {
		req.Header.Set("If-None-Match", cur.ETag)
	}
	c.fetches.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		c.fail(st)
		if cur != nil {
			return cur, nil
		}
		return nil, fmt.Errorf("client: fetching %s: %w", name, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		c.ok(st)
		return cur, nil
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			c.fail(st)
			if cur != nil {
				return cur, nil
			}
			return nil, err
		}
		env, err := core.ParseModelOrEnvelope(data)
		if err != nil {
			// The server sent garbage; treat as outage, keep serving.
			c.fail(st)
			if cur != nil {
				return cur, nil
			}
			return nil, err
		}
		version := env.Version
		if v, err := strconv.Atoi(resp.Header.Get("X-Apollo-Model-Version")); err == nil && v > 0 {
			version = v
		}
		next := &Cached{
			Name:       name,
			Version:    version,
			ETag:       resp.Header.Get("ETag"),
			SchemaHash: env.Model.SchemaHash(),
			Model:      env.Model,
		}
		st.cur.Store(next)
		c.ok(st)
		return next, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		c.fail(st)
		if cur != nil {
			return cur, nil
		}
		return nil, fmt.Errorf("client: fetching %s: %w", name, ErrNotFound)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		c.fail(st)
		if cur != nil {
			return cur, nil
		}
		return nil, fmt.Errorf("client: fetching %s: %s", name, resp.Status)
	}
}

// now reads the injectable clock (the Service interface's timing hook).
func (c *Client) now() time.Time { return c.nowFn() }

// ok clears the backoff after a successful round trip.
func (c *Client) ok(st *modelState) {
	c.mu.Lock()
	st.failures = 0
	st.nextAttempt = time.Time{}
	c.mu.Unlock()
}

// fail arms the backoff after a failed round trip.
func (c *Client) fail(st *modelState) {
	c.mu.Lock()
	st.nextAttempt = c.now().Add(c.backoff(st.failures))
	if st.failures < 30 {
		st.failures++
	}
	c.mu.Unlock()
}

// backoff returns the delay after the failures-th consecutive failure:
// full-jitter exponential backoff, rand() * min(MaxBackoff,
// InitialBackoff<<failures). Spreading each delay uniformly over the
// exponential window keeps a fleet of clients that all lost the server
// at once from retrying in synchronized waves.
func (c *Client) backoff(failures int) time.Duration {
	d := c.initialBackoff << uint(failures)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	return time.Duration(c.rand() * float64(d))
}

// Predict evaluates the named model on a vector laid out by the model's
// own schema, memoizing per unique (model version, vector). The decision
// path never blocks on the network: it uses whatever model Fetch last
// cached, and errors only if no model has ever been fetched. A memoized
// decision costs one atomic load of the published memo map plus a pooled
// key build — no locks, no allocation (apollo-vet enforces this).
//
//apollo:hotpath
func (c *Client) Predict(name string, x []float64) (int, error) {
	var cur *Cached
	if st, ok := (*c.models.Load())[name]; ok {
		cur = st.cur.Load()
	}
	if cur == nil {
		var err error
		if cur, err = c.predictBootstrap(name); err != nil {
			return 0, err
		}
	}
	if len(x) != cur.Model.Schema.Len() {
		return 0, sizeMismatch(name, len(x), cur.Model.Schema.Len())
	}
	kb := keyPool.Get().(*[]byte)
	b := appendMemoKey((*kb)[:0], cur.ETag, x)
	class, hit := (*c.memo.Load())[string(b)] // string(b) in a map read does not allocate
	if hit {
		*kb = b
		keyPool.Put(kb)
		c.memoHits.Add(1)
		return class, nil
	}
	class = c.memoMiss(b, cur, x)
	*kb = b
	keyPool.Put(kb)
	return class, nil
}

// predictBootstrap resolves the first decision for a model name: fetch
// it (or surface why we cannot). Every later launch hits the atomic
// model cache and never lands here.
//
//apollo:coldpath first decision per model name; steady-state launches read the atomic cache
func (c *Client) predictBootstrap(name string) (*Cached, error) {
	if cur := c.state(name).cur.Load(); cur != nil {
		return cur, nil
	}
	return c.Fetch(name)
}

// sizeMismatch builds the vector-layout error off the hot path.
//
//apollo:coldpath error construction for malformed input vectors
func sizeMismatch(name string, got, want int) error {
	return fmt.Errorf("client: vector has %d features, model %s wants %d", got, name, want)
}

// memoMiss resolves a decision absent from the published memo: answer
// from the dirty overlay if a prior miss already computed it, otherwise
// walk the tree and record the result. The overlay republishes into the
// lock-free map every memoPromoteBatch fresh decisions, so each unique
// (model version, vector) takes this mutex a bounded number of times and
// then settles onto the published hit path.
//
//apollo:coldpath published-map misses are transient; every decision promotes to the lock-free map within memoPromoteBatch fresh misses
func (c *Client) memoMiss(key []byte, cur *Cached, x []float64) int {
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if class, ok := c.memoDirty[string(key)]; ok {
		c.memoHits.Add(1)
		return class
	}
	class := cur.Model.Predict(x)
	if len(*c.memo.Load())+len(c.memoDirty) >= memoCap {
		empty := map[string]int{}
		c.memo.Store(&empty)
		c.memoDirty = map[string]int{}
	}
	c.memoDirty[string(key)] = class
	if len(c.memoDirty) < memoPromoteBatch {
		return class
	}
	pub := *c.memo.Load()
	next := make(map[string]int, len(pub)+len(c.memoDirty))
	for k, v := range pub {
		next[k] = v
	}
	for k, v := range c.memoDirty {
		next[k] = v
	}
	c.memo.Store(&next)
	c.memoDirty = make(map[string]int, memoPromoteBatch)
	return class
}

// keyPool recycles memo-key scratch buffers. 512 bytes covers an ETag
// plus the full Table-I vector (41 features x 8 bytes), so a steady-state
// Predict never grows the buffer — apollo-vet's hotpath analyzer and the
// zero-alloc guard test both hold the path to zero allocations.
var keyPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// appendMemoKey appends the decision memo key — entity tag plus the
// exact bit pattern of every feature — to b.
func appendMemoKey(b []byte, etag string, x []float64) []byte {
	b = append(b, etag...) //apollo:allocok appends into a pooled 512-byte buffer sized for ETag + Table-I vector
	for _, v := range x {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// unmarshal decodes JSON with a context-rich error.
func unmarshal(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("client: decoding %q: %w", bytes.TrimSpace(data), err)
	}
	return nil
}
